package p2pmss

import (
	"fmt"
	"runtime"
	"testing"
)

// The benchmarks below are the regeneration harness for the paper's
// evaluation: one benchmark per figure/table. Each iteration performs a
// full (seed-reduced) sweep; the key measured values are attached as
// benchmark metrics so `go test -bench` output doubles as the
// reproduction record (see EXPERIMENTS.md). For the paper-scale sweep
// with seed averaging, run cmd/mssim.

// benchOptions returns a single-seed sweep sized for benchmarking. The
// figure benchmarks run on the worker pool; the sweep output is
// byte-identical to serial (asserted in internal/experiment), so the
// reproduction record is unaffected.
func benchOptions() ExperimentOptions {
	o := DefaultExperimentOptions()
	o.Seeds = 1
	o.Hs = []int{2, 10, 20, 40, 60, 80, 100}
	o.Parallel = runtime.NumCPU()
	return o
}

func findH(s Series, H int) (rounds, packets, rate float64) {
	for _, p := range s.Points {
		if p.H == H {
			return p.Rounds, p.ControlPackets, p.ReceiptRate
		}
	}
	return 0, 0, 0
}

// BenchmarkFigure10 regenerates "Rounds and number of control packets in
// DCoP" (paper: 2 rounds, ≈600 packets at H=60).
func BenchmarkFigure10(b *testing.B) {
	var s Series
	var err error
	for i := 0; i < b.N; i++ {
		s, err = Figure10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	rounds, packets, _ := findH(s, 60)
	b.ReportMetric(rounds, "rounds@H=60")
	b.ReportMetric(packets, "ctlpkts@H=60")
}

// BenchmarkFigure11 regenerates "Rounds and number of control packets in
// TCoP" (paper: 6 rounds, ≈7400 packets at H=60).
func BenchmarkFigure11(b *testing.B) {
	var s Series
	var err error
	for i := 0; i < b.N; i++ {
		s, err = Figure11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	rounds, packets, _ := findH(s, 60)
	b.ReportMetric(rounds, "rounds@H=60")
	b.ReportMetric(packets, "ctlpkts@H=60")
}

// BenchmarkFigure12 regenerates "Receipt rate of leaf peer" (paper:
// DCoP 1.019, TCoP 1.226 at H=60).
func BenchmarkFigure12(b *testing.B) {
	o := benchOptions()
	o.Hs = []int{20, 60, 100} // data-plane points are costly
	var d, t Series
	var err error
	for i := 0; i < b.N; i++ {
		d, t, err = Figure12(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	_, _, dr := findH(d, 60)
	_, _, tr := findH(t, 60)
	b.ReportMetric(dr, "dcop-rate@H=60")
	b.ReportMetric(tr, "tcop-rate@H=60")
}

// BenchmarkBaselines regenerates the §3.1 baseline comparison at H=10.
func BenchmarkBaselines(b *testing.B) {
	o := benchOptions()
	var rows []BaselineRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Baselines(o, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ControlPackets, "ctlpkts-"+r.Protocol)
	}
}

// BenchmarkFaultTolerance measures §3.2's reliability claim: delivery
// fraction with two crashed peers and 3% loss under DCoP with h=2
// parity.
func BenchmarkFaultTolerance(b *testing.B) {
	var delivered float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultSimConfig()
		cfg.N = 16
		cfg.H = 6
		cfg.Interval = 2
		cfg.DataPlane = true
		cfg.Loop = false
		cfg.TrackDelivery = true
		cfg.ContentLen = 600
		cfg.Rate = 10
		cfg.LossProb = 0.03
		cfg.CrashPeers = []PeerID{0, 5}
		cfg.CrashAt = 20
		cfg.Seed = int64(i + 1)
		res, err := Simulate(DCoP, cfg)
		if err != nil {
			b.Fatal(err)
		}
		delivered = float64(res.DeliveredData) / float64(cfg.ContentLen)
	}
	b.ReportMetric(delivered*100, "delivered-%")
}

// BenchmarkSweepSerial and BenchmarkSweepParallel run the same
// multi-seed data-plane sweep serially and on the NumCPU-bounded worker
// pool. The results are identical by construction; the ratio of the two
// wall-clock times is the experiment harness speedup.
func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, runtime.NumCPU()) }

func benchSweep(b *testing.B, workers int) {
	o := DefaultExperimentOptions()
	o.N = 60
	o.Hs = []int{10, 20, 30, 60}
	o.Seeds = 4
	o.ContentLen = 10000
	o.Window = 100
	o.Parallel = workers
	for i := 0; i < b.N; i++ {
		if _, _, err := Figure12(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCoPSync and BenchmarkTCoPSync measure raw coordination speed
// (control plane only) at the paper's n=100, H=60 point.
func BenchmarkDCoPSync(b *testing.B) {
	benchSync(b, DCoP)
}

func BenchmarkTCoPSync(b *testing.B) {
	benchSync(b, TCoP)
}

func benchSync(b *testing.B, proto string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultSimConfig()
		cfg.N = 100
		cfg.H = 60
		cfg.Seed = int64(i + 1)
		if _, err := Simulate(proto, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalability sweeps n upward at fixed H to show the flooding
// protocols' cost growth (the scalability the title claims).
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var packets float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultSimConfig()
				cfg.N = n
				cfg.H = 20
				cfg.Seed = int64(i + 1)
				res, err := Simulate(DCoP, cfg)
				if err != nil {
					b.Fatal(err)
				}
				packets = float64(res.ControlPackets)
			}
			b.ReportMetric(packets, "ctlpkts")
		})
	}
}
