// Heterogeneous environment example (§2 and the paper's §5 future work):
// contents peers with different bandwidths share one stream via the
// time-slot allocation algorithm, and a peer's bandwidth degrades
// mid-stream without breaking in-order delivery.
package main

import (
	"fmt"

	"p2pmss"
)

func main() {
	// The paper's Figure 1: three channels with bandwidth ratio 4:2:1.
	fmt.Println("Figure 1 reproduction — bw ratio 4:2:1, packets t1..t8:")
	al := p2pmss.Allocate(8, p2pmss.ProportionalChannels(4, 2, 1))
	for i, pkts := range al.PerChannel {
		fmt.Printf("  CP%d sends packets %v\n", i+1, pkts)
	}
	if v := al.InOrder(); v == 0 {
		fmt.Println("  packet allocation property holds: delivery is in order")
	} else {
		fmt.Printf("  property VIOLATED at t%d\n", v)
	}

	// Heterogeneous extension: CP2's bandwidth collapses mid-stream.
	fmt.Println("\nMid-stream degradation — CP2 drops from bw 2 to bw 0.25 after 6 packets:")
	a := p2pmss.NewAllocator(p2pmss.ProportionalChannels(4, 2, 1))
	for i := 0; i < 6; i++ {
		a.Next()
	}
	a.SetSlotLen(1, 4) // slot length 4 = bandwidth 1/4
	for i := 0; i < 10; i++ {
		a.Next()
	}
	res := a.Result()
	for i, pkts := range res.PerChannel {
		fmt.Printf("  CP%d sends packets %v\n", i+1, pkts)
	}
	if v := res.InOrder(); v == 0 {
		fmt.Println("  in-order delivery preserved across the rate change")
	} else {
		fmt.Printf("  property VIOLATED at t%d\n", v)
	}
	fmt.Printf("  stream finishes at t=%.2f time units\n", res.FinishTime())
}
