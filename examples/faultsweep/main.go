// Fault-tolerance sweep: quantifies §3.2's reliability claim on the
// simulator. For increasing numbers of crashed contents peers and
// increasing packet loss, how much of the content does the leaf still
// receive under DCoP, with and without parity?
package main

import (
	"fmt"
	"log"

	"p2pmss"
)

func main() {
	base := func() p2pmss.SimConfig {
		cfg := p2pmss.DefaultSimConfig()
		cfg.N = 16
		cfg.H = 6
		cfg.DataPlane = true
		cfg.Loop = false
		cfg.TrackDelivery = true
		cfg.ContentLen = 600
		cfg.Rate = 10
		return cfg
	}

	fmt.Println("Crashed peers vs delivery (n=16, H=6, DCoP):")
	fmt.Printf("%8s %12s %12s %12s\n", "crashes", "h=2", "h=5", "no parity*")
	for crashes := 0; crashes <= 4; crashes++ {
		fmt.Printf("%8d", crashes)
		for _, h := range []int{2, 5, 120} { // h ≥ ContentLen/H ≈ no parity
			cfg := base()
			cfg.Interval = h
			for i := 0; i < crashes; i++ {
				cfg.CrashPeers = append(cfg.CrashPeers, p2pmss.PeerID(i*3))
			}
			cfg.CrashAt = 20 // after coordination, mid-stream
			res, err := p2pmss.Simulate(p2pmss.DCoP, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.1f%%", 100*float64(res.DeliveredData)/float64(cfg.ContentLen))
		}
		fmt.Println()
	}
	fmt.Println("  (*h=120: parity interval larger than any subsequence)")

	fmt.Println("\nPacket loss vs delivery (n=16, H=6, DCoP):")
	fmt.Printf("%8s %12s %12s\n", "loss", "h=2", "h=8")
	for _, loss := range []float64{0, 0.01, 0.03, 0.05, 0.10} {
		fmt.Printf("%7.0f%%", loss*100)
		for _, h := range []int{2, 8} {
			cfg := base()
			cfg.Interval = h
			cfg.LossProb = loss
			res, err := p2pmss.Simulate(p2pmss.DCoP, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.1f%%", 100*float64(res.DeliveredData)/float64(cfg.ContentLen))
		}
		fmt.Println()
	}
	fmt.Println("\nSmaller parity intervals tolerate more loss and crashes, at")
	fmt.Println("the cost of a higher receipt rate — the §3.2 trade-off.")
}
