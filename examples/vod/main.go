// Video-on-demand example: the workload the paper's introduction
// motivates. A 256 KiB "movie" is streamed by eight contents peers to a
// leaf peer over the in-memory fabric; two peers crash mid-stream and the
// leaf still reassembles the movie byte-for-byte via parity recovery and
// a repair round.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"p2pmss"
)

func main() {
	// Synthesize the movie.
	movie := make([]byte, 256<<10)
	rand.New(rand.NewSource(42)).Read(movie)
	c := p2pmss.NewContent("big-buck-gopher", movie, 512)
	fmt.Printf("movie %q: %d KiB in %d packets\n", c.ID(), c.Size()>>10, c.NumPackets())

	// Eight contents peers on an in-memory fabric.
	fabric := p2pmss.NewFabric()
	roster := []string{"cp1", "cp2", "cp3", "cp4", "cp5", "cp6", "cp7", "cp8"}
	var peers []*p2pmss.LivePeer
	for i, name := range roster {
		p, err := p2pmss.StartLivePeer(p2pmss.LivePeerConfig{
			Content:  c,
			Roster:   roster,
			H:        4,
			Interval: 2, // one parity packet per two data packets
			Delta:    5 * time.Millisecond,
			Seed:     int64(i) + 1,
		}, p2pmss.WithFabric(fabric, name))
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
	}

	leaf, err := p2pmss.StartLiveLeaf(p2pmss.LiveLeafConfig{
		Roster:      roster,
		H:           4,
		Interval:    2,
		Rate:        3000,
		ContentSize: len(movie),
		PacketSize:  512,
		RepairAfter: 400 * time.Millisecond,
		Seed:        7,
	}, p2pmss.WithFabric(fabric, "leaf"))
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := leaf.Start(); err != nil {
		log.Fatal(err)
	}

	// Two peers die mid-movie.
	time.Sleep(200 * time.Millisecond)
	killed := 0
	for _, p := range peers {
		if p.Active() && killed < 2 {
			fmt.Printf("peer %s crashed after sending %d packets\n", p.Addr(), p.Sent())
			p.Close()
			killed++
		}
	}

	if err := leaf.Wait(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, movie) {
		log.Fatal("movie corrupted")
	}
	total, dup, recovered := leaf.Stats()
	fmt.Printf("movie delivered intact in %v (%d arrivals, %d duplicates, %d parity-recovered)\n",
		time.Since(start).Round(time.Millisecond), total, dup, recovered)

	for _, p := range peers {
		p.Close()
	}
	leaf.Close()
}
