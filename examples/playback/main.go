// Playback example: the real-time constraint of §1 made concrete. The
// leaf peer plays the content out at the content rate after a startup
// delay; a packet that has not arrived (or been parity-recovered) by its
// playout deadline is an underrun. The sweep shows how startup buffering
// and coordination speed trade against glitch-free playback.
package main

import (
	"fmt"
	"log"

	"p2pmss"
)

func main() {
	run := func(proto string, delay float64) (underruns int64, start float64) {
		cfg := p2pmss.DefaultSimConfig()
		cfg.N = 16
		cfg.H = 6
		cfg.Interval = 3
		cfg.DataPlane = true
		cfg.Loop = false
		cfg.Playback = true
		cfg.PlaybackDelay = delay
		cfg.ContentLen = 500
		cfg.Rate = 5
		res, err := p2pmss.Simulate(proto, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.Underruns, res.PlaybackStart
	}

	fmt.Println("Underruns vs startup delay (n=16, H=6, content 500 packets @ τ=5):")
	fmt.Printf("%14s %10s %10s %12s\n", "startup delay", "DCoP", "TCoP", "centralized")
	for _, delay := range []float64{0.1, 1, 2, 5, 10, 20} {
		d, _ := run(p2pmss.DCoP, delay)
		t, _ := run(p2pmss.TCoP, delay)
		c, _ := run(p2pmss.Centralized, delay)
		fmt.Printf("%13.1fδ %10d %10d %12d\n", delay, d, t, c)
	}
	fmt.Println("\nA short startup buffer causes underruns while the coordination")
	fmt.Println("protocols are still activating peers; a few δ of buffering makes")
	fmt.Println("playout glitch-free — the 'real-time constraints' of §1.")
}
