// Session-oriented streaming example: a population of nodes shares a
// catalog of contents and serves several concurrent sessions over one
// in-memory fabric. One serving node crashes mid-stream (the sessions
// recover via the churn-tolerant hand-off), and a late node joins an
// in-flight session and is handed a slice of the stream.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"p2pmss"
)

func main() {
	// A catalog of three "movies" every node holds.
	store := p2pmss.NewContentStore()
	movies := map[string][]byte{}
	for i, id := range []string{"alpha", "beta", "gamma"} {
		data := make([]byte, 96<<10)
		rand.New(rand.NewSource(int64(i) + 1)).Read(data)
		store.Put(p2pmss.NewContent(id, data, 512))
		movies[id] = data
	}

	// Ten nodes on one fabric.
	nc, err := p2pmss.StartLiveNodes(p2pmss.LiveNodesConfig{
		Nodes:    10,
		Store:    store,
		H:        3,
		Interval: 2,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer nc.Close()

	// Nodes 0..2 each open a session for a different movie.
	var leaves []*p2pmss.LiveLeafSession
	for i, id := range []string{"alpha", "beta", "gamma"} {
		ls, err := nc.Open(i, p2pmss.LiveSessionConfig{
			ContentID:   id,
			ContentSize: len(movies[id]),
			PacketSize:  512,
			Rate:        2000,
			RepairAfter: 300 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d streams %q as session %q\n", i, id, ls.ID)
		leaves = append(leaves, ls)
	}

	// Mid-stream churn: one serving-only node crashes, and another node
	// volunteers into the first session and is handed a stream slice.
	time.Sleep(150 * time.Millisecond)
	if killed := nc.CrashServing(1); killed > 0 {
		fmt.Printf("crash-stopped %d serving node mid-stream\n", killed)
	}
	if p, err := nc.Nodes[9].Join(leaves[0].ID, "alpha", 2*time.Second); err == nil {
		fmt.Printf("node %s joined session %q mid-stream\n", p.Addr(), leaves[0].ID)
	} else {
		fmt.Printf("join declined: %v\n", err)
	}

	// Every session still completes byte-for-byte.
	var wg sync.WaitGroup
	for i, ls := range leaves {
		wg.Add(1)
		go func(i int, ls *p2pmss.LiveLeafSession) {
			defer wg.Done()
			if err := ls.Wait(60 * time.Second); err != nil {
				log.Fatalf("session %q: %v", ls.ID, err)
			}
			id := []string{"alpha", "beta", "gamma"}[i]
			got, ok := ls.Bytes()
			if !ok || !bytes.Equal(got, movies[id]) {
				log.Fatalf("session %q delivered wrong bytes", ls.ID)
			}
			total, dup, recovered := ls.Stats()
			fmt.Printf("session %q complete (%d arrivals, %d duplicates, %d parity-recovered)\n",
				ls.ID, total, dup, recovered)
		}(i, ls)
	}
	wg.Wait()
	fmt.Println("all sessions delivered intact")
}
