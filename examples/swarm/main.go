// Swarm discovery example: a node population with NO static roster.
// Every node holds a different slice of the catalog and gossips signed
// announcements of what it serves; sessions resolve their serving peers
// from the swarm directory. One node then crash-stops and its directory
// records expire everywhere within a TTL — nobody had to be told.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"p2pmss"
)

func main() {
	// Twelve nodes; each movie is held by a different subset of four, so
	// discovery resolves genuinely different rosters per content.
	const nodes = 12
	movies := map[string][]byte{}
	stores := make([]*p2pmss.ContentStore, nodes)
	for i := range stores {
		stores[i] = p2pmss.NewContentStore()
	}
	for j, id := range []string{"alpha", "beta", "gamma", "delta"} {
		data := make([]byte, 64<<10)
		rand.New(rand.NewSource(int64(j) + 1)).Read(data)
		movies[id] = data
		for _, off := range []int{0, 3, 6, 9} {
			stores[(j+off)%nodes].Put(p2pmss.NewContent(id, data, 512))
		}
	}

	nc, err := p2pmss.StartLiveNodes(p2pmss.LiveNodesConfig{
		Nodes:            nodes,
		Stores:           stores,
		Discover:         true, // no Roster anywhere: the swarm discovers itself
		AnnounceInterval: 25 * time.Millisecond,
		DirectoryTTL:     400 * time.Millisecond,
		H:                3,
		Interval:         2,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer nc.Close()
	if err := nc.WaitDiscovery(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	dir := nc.Nodes[0].Directory()
	fmt.Printf("swarm converged: node0 sees %d nodes; %q served by %v\n",
		len(dir.Roster()), "alpha", dir.Lookup("alpha"))

	// Open one session per movie, each from a node that does NOT hold it.
	ids := []string{"alpha", "beta", "gamma", "delta"}
	var leaves []*p2pmss.LiveLeafSession
	for j, id := range ids {
		opener := (j + 1) % nodes // not in {j, j+3, j+6, j+9} mod 12
		ls, err := nc.Open(opener, p2pmss.LiveSessionConfig{
			ContentID:   id,
			ContentSize: len(movies[id]),
			PacketSize:  512,
			Rate:        2000,
			RepairAfter: 300 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d discovered and opened %q as session %q\n", opener, id, ls.ID)
		leaves = append(leaves, ls)
	}

	var wg sync.WaitGroup
	for j, ls := range leaves {
		wg.Add(1)
		go func(j int, ls *p2pmss.LiveLeafSession) {
			defer wg.Done()
			if err := ls.Wait(60 * time.Second); err != nil {
				log.Fatalf("session %q: %v", ls.ID, err)
			}
			got, ok := ls.Bytes()
			if !ok || !bytes.Equal(got, movies[ids[j]]) {
				log.Fatalf("session %q delivered wrong bytes", ls.ID)
			}
			fmt.Printf("session %q complete, byte-identical\n", ls.ID)
		}(j, ls)
	}
	wg.Wait()

	// Crash-stop the last node: its announcements cease and its records
	// age out of every surviving directory within the TTL.
	victim := nc.Nodes[nodes-1].Addr()
	nc.Nodes[nodes-1].Close()
	fmt.Printf("crash-stopped %s; waiting for its records to expire...\n", victim)
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := false
		for _, a := range nc.Nodes[0].Directory().Roster() {
			if a == victim {
				alive = true
			}
		}
		if !alive {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("%s never expired from the directory", victim)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("directory healed: node0 now sees %d nodes\n", len(nc.Nodes[0].Directory().Roster()))
}
