// Quickstart: simulate the paper's two coordination protocols at one
// setting and print the headline comparison — how many rounds and control
// packets each needs to synchronize 100 contents peers, and the leaf's
// receipt rate once they stream.
package main

import (
	"fmt"
	"log"

	"p2pmss"
)

func main() {
	cfg := p2pmss.DefaultSimConfig()
	cfg.N = 100 // contents peers CP_1..CP_100
	cfg.H = 60  // flooding fanout (the paper's quoted point)
	cfg.DataPlane = true
	cfg.Rate = 2 // content rate τ, packets per time unit

	fmt.Printf("n=%d contents peers, fanout H=%d, parity interval h=%d\n\n",
		cfg.N, cfg.H, cfg.H-1)

	for _, proto := range []string{p2pmss.DCoP, p2pmss.TCoP} {
		res, err := p2pmss.Simulate(proto, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s  rounds=%d  control packets=%d  sync time=%.2fδ  receipt rate=%.3fτ\n",
			proto, res.Rounds, res.ControlPackets, res.SyncTime, res.ReceiptRate)
	}

	fmt.Println("\nDCoP floods redundantly and quiesces fast; TCoP's 3-round")
	fmt.Println("handshake removes redundancy at the cost of more packets and")
	fmt.Println("rounds — the paper's Figures 10–12 in one line each.")
}
