package p2pmss_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"p2pmss"
)

// ExampleSimulate runs DCoP at the paper's quoted evaluation point
// (n = 100 contents peers, fanout H = 60) and reports the headline
// metrics of Figure 10.
func ExampleSimulate() {
	cfg := p2pmss.DefaultSimConfig()
	cfg.H = 60
	res, err := p2pmss.Simulate(p2pmss.DCoP, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds=%d active=%d/%d\n", res.Rounds, res.ActivePeers, cfg.N)
	// Output:
	// rounds=2 active=100/100
}

// ExampleAllocate reproduces the paper's Figure 1: three channels with
// bandwidth ratio 4:2:1 sharing packets t1..t7 under the §2 time-slot
// allocation.
func ExampleAllocate() {
	al := p2pmss.Allocate(7, p2pmss.ProportionalChannels(4, 2, 1))
	for i, pkts := range al.PerChannel {
		fmt.Printf("CP%d: %v\n", i+1, pkts)
	}
	// Output:
	// CP1: [1 2 4 5]
	// CP2: [3 6]
	// CP3: [7]
}

// ExampleStartLiveCluster streams a content through live goroutine peers
// over the in-memory fabric and verifies byte-exact delivery.
func ExampleStartLiveCluster() {
	data := bytes.Repeat([]byte("multimedia "), 400)
	cluster, err := p2pmss.StartLiveCluster(p2pmss.LiveClusterConfig{
		Content:  p2pmss.NewContent("movie", data, 64),
		Peers:    6,
		H:        3,
		Interval: 2,
		Rate:     500,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Wait(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	got, ok := cluster.Bytes()
	fmt.Println(ok && bytes.Equal(got, data))
	// Output:
	// true
}

// ExampleNewAssembler reassembles content bytes at a leaf peer from
// out-of-order packet arrivals.
func ExampleNewAssembler() {
	c := p2pmss.NewContent("clip", []byte("abcdef"), 2) // t1..t3
	a := p2pmss.NewAssembler(6, 2)
	a.Add(c.Packet(3))
	a.Add(c.Packet(1))
	fmt.Println(a.Complete(), a.Missing())
	a.Add(c.Packet(2))
	data, ok := a.Bytes()
	fmt.Println(ok, string(data))
	// Output:
	// false [2]
	// true abcdef
}
