// Command mssplay demonstrates live multi-source streaming over TCP
// loopback: it spins up n contents peers (each listening on its own
// socket), streams a synthetic content to a leaf peer with the tree-based
// coordination protocol, optionally crash-stops peers mid-stream, and
// reports delivery statistics.
//
// With -udp the peers run on UDP sockets instead (real datagram
// semantics), and with -mem on the in-process fabric; on either, the
// -loss/-burst/-dup/-reorder flags inject seeded impairment so §3.2
// parity recovery and stall repair do real work.
//
// With -listen the session also serves its observability endpoints over
// HTTP: Prometheus-format /metrics, /healthz, expvar on /debug/vars,
// net/http/pprof on /debug/pprof/, the live topology snapshot on
// /debug/overlay (?format=dot for Graphviz) and the per-peer flight log
// on /debug/flight. Sending the process SIGUSR1 dumps both to temp
// files at any time, and -flight-out writes the flight log on exit.
//
// With -sessions N the demo switches to the session-oriented node API:
// a node population shares a catalog of N contents and N leaf sessions
// stream concurrently over one set of sockets, surviving -kill node
// crashes via the churn-tolerant hand-off.
//
// With -discover the population drops the static roster entirely: every
// node gossips signed announcements of its catalog (-announce-interval
// tunes the cadence) and sessions resolve their serving peers from the
// swarm directory, inspectable on /debug/directory with -listen.
//
// Usage:
//
//	mssplay -peers 8 -h 3 -size 65536 -kill 2
//	mssplay -udp -loss 0.05 -reorder 0.05    # lossy UDP; parity covers the gaps
//	mssplay -peers 10 -sessions 4 -kill 1
//	mssplay -sessions 4 -discover            # roster-free: gossip discovery
//	mssplay -listen 127.0.0.1:9090   # then: curl localhost:9090/metrics
//	mssplay -sessions 4 -trace-out t.jsonl   # then: msstrace perfetto t.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"p2pmss"
)

func main() {
	var (
		nPeers   = flag.Int("peers", 8, "number of contents peers")
		fanout   = flag.Int("h", 3, "selection fanout H")
		interval = flag.Int("parity", 2, "parity interval h")
		size     = flag.Int("size", 64<<10, "content size in bytes")
		pktSize  = flag.Int("pkt", 256, "packet payload size in bytes")
		rate     = flag.Float64("rate", 800, "content rate in packets/second")
		kill     = flag.Int("kill", 0, "crash this many active peers mid-stream")
		proto    = flag.String("proto", p2pmss.TCoP, "live coordination protocol: tcop or dcop")
		timeout  = flag.Duration("timeout", 60*time.Second, "delivery deadline")
		seed     = flag.Int64("seed", 1, "random seed")
		sessions = flag.Int("sessions", 1, "stream this many concurrent sessions over one node population")
		discover = flag.Bool("discover", false,
			"no static roster: nodes gossip their catalogs and resolve session rosters from the swarm (needs -sessions)")
		announceEvery = flag.Duration("announce-interval", 200*time.Millisecond,
			"discovery announcement period (with -discover)")
		retries  = flag.Int("retries", 0, "alternate-peer retries per failed child slot (0 = per-peer default H)")
		hsTime   = flag.Duration("handshake-timeout", 0, "control/confirm handshake deadline (0 = per-peer default)")
		useUDP   = flag.Bool("udp", false, "run every peer on its own UDP socket (real datagram semantics; default is TCP)")
		useMem   = flag.Bool("mem", false, "run the session on the in-process fabric instead of sockets")
		loss     = flag.Float64("loss", 0, "impairment: drop each datagram with this probability (needs -udp or -mem)")
		burst    = flag.Int("burst", 0, "impairment: drop this many extra datagrams after each loss (bursty loss)")
		dup      = flag.Float64("dup", 0, "impairment: deliver each datagram twice with this probability")
		reorder  = flag.Float64("reorder", 0, "impairment: hold each datagram back behind later traffic with this probability")
		queueCap = flag.Int("queue-cap", 0, "in-process fabric pending-queue capacity (0 = default 4096, negative = unbounded)")
		queuePol = flag.String("queue-policy", "block", "full in-process queue policy: block (backpressure) or drop (newest)")
		listen   = flag.String("listen", "", "serve /metrics, /healthz and /debug/pprof/ on this address (off by default)")
		traceOut = flag.String("trace-out", "",
			"write causal coordination spans (JSONL) to this file; convert with msstrace perfetto/summary")
		flightOut = flag.String("flight-out", "",
			"write the per-peer flight log (JSONL) to this file on exit; inspect with msstrace flight")
	)
	flag.Parse()

	if *useUDP && *useMem {
		fatal(fmt.Errorf("-udp and -mem are mutually exclusive"))
	}
	impair := p2pmss.TransportImpairment{
		Seed: *seed, Loss: *loss, BurstLen: *burst, Duplicate: *dup, Reorder: *reorder,
	}
	if impair.Enabled() && !*useUDP && !*useMem {
		fatal(fmt.Errorf("impairment flags need -udp or -mem (a TCP stream cannot lose frames)"))
	}
	var policy p2pmss.TransportQueuePolicy
	switch *queuePol {
	case "block":
		policy = p2pmss.QueueBlock
	case "drop":
		policy = p2pmss.QueueDropNewest
	default:
		fatal(fmt.Errorf("-queue-policy %q: want block or drop", *queuePol))
	}

	var spanCol *p2pmss.SpanCollector
	if *traceOut != "" {
		spanCol = p2pmss.NewSpanCollector()
	}

	// Flight recording is on whenever it has a consumer: an explicit
	// -flight-out file, the /debug/flight endpoint, or the SIGUSR1 dump
	// (always armed, so any run can be inspected mid-flight).
	flightSet := p2pmss.NewFlightSet(0)

	// Metrics are registered only when they will be served. The mux is
	// late-bound: the server starts before the cluster exists and gains
	// /debug/overlay + /debug/flight once it does.
	var reg *p2pmss.MetricsRegistry
	var mux *lateMux
	if *listen != "" {
		reg = p2pmss.NewMetricsRegistry()
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability on http://%s/metrics (also /healthz, /debug/vars, /debug/pprof/, /debug/overlay, /debug/flight)\n", ln.Addr())
		mux = &lateMux{}
		mux.Set(p2pmss.MetricsDebugMux(reg))
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // shut down with the process
	}

	wire := wiring{useUDP: *useUDP, useMem: *useMem, impair: impair, queueCap: *queueCap, policy: policy}

	if *discover && *sessions <= 1 {
		fatal(fmt.Errorf("-discover needs the session-oriented node API: set -sessions"))
	}
	if *sessions > 1 {
		runSessions(*nPeers, *sessions, *fanout, *interval, *size, *pktSize, *rate,
			*kill, *proto, *timeout, *seed, *retries, *hsTime, wire, *discover, *announceEvery,
			reg, mux, flightSet, spanCol, *traceOut, *flightOut)
		return
	}

	data := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(data)
	c := p2pmss.NewContent("demo", data, *pktSize)
	fmt.Printf("content %s: %d bytes, %d packets of %d bytes\n",
		c.ID(), c.Size(), c.NumPackets(), c.PacketSize())

	start := time.Now()
	cl, err := p2pmss.StartLiveCluster(p2pmss.LiveClusterConfig{
		Content:          c,
		Peers:            *nPeers,
		H:                *fanout,
		Interval:         *interval,
		Rate:             *rate,
		Protocol:         *proto,
		UseTCP:           !wire.useUDP && !wire.useMem,
		UseUDP:           wire.useUDP,
		Impair:           wire.impair,
		QueueCap:         wire.queueCap,
		QueuePolicy:      wire.policy,
		HandshakeTimeout: *hsTime,
		Retries:          *retries,
		Seed:             *seed,
		Obs: p2pmss.Observability{
			Metrics: reg,
			Spans:   spanCol,
			Flight:  flightSet,
		},
	})
	if err != nil {
		fatal(err)
	}
	if mux != nil {
		mux.Set(p2pmss.MetricsDebugMux(reg, cl.DebugHandlers()...))
	}
	armFlightDump(func() string {
		return dumpIntrospection(flightSet, func(enc *json.Encoder) error { return enc.Encode(cl.Snapshot()) })
	})
	for i, p := range cl.Peers {
		fmt.Printf("peer %2d listening on %s\n", i, p.Addr())
	}
	fmt.Printf("leaf listening on %s; requesting from %d of %d peers\n\n",
		cl.Leaf.Addr(), *fanout, *nPeers)

	if *kill > 0 {
		go func() {
			time.Sleep(300 * time.Millisecond)
			killed := 0
			for _, p := range cl.Peers {
				if killed >= *kill {
					break
				}
				if p.Active() {
					fmt.Printf("!! crash-stopping peer %s (had sent %d packets)\n", p.Addr(), p.Sent())
					p.Close()
					killed++
				}
			}
		}()
	}

	// Progress ticker.
	doneCh := make(chan error, 1)
	go func() { doneCh <- cl.Wait(*timeout) }()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-doneCh:
			if err != nil {
				writeFlight(*flightOut, flightSet)
				fatal(err)
			}
			total, dup, recovered := cl.Leaf.Stats()
			got, ok := cl.Bytes()
			fmt.Printf("\ncomplete in %v: %d arrivals, %d duplicates, %d parity-recovered\n",
				time.Since(start).Round(time.Millisecond), total, dup, recovered)
			if !ok || len(got) != len(data) {
				fatal(fmt.Errorf("reassembly failed"))
			}
			for i := range got {
				if got[i] != data[i] {
					fatal(fmt.Errorf("content corrupted at byte %d", i))
				}
			}
			fmt.Println("content verified byte-for-byte ✓")
			cl.Close()
			writeTrace(*traceOut, spanCol)
			writeFlight(*flightOut, flightSet)
			return
		case <-tick.C:
			fmt.Printf("  %d/%d packets delivered\n", cl.Leaf.Progress(), c.NumPackets())
		}
	}
}

// runSessions streams `sessions` distinct contents concurrently over one
// node population on TCP loopback, optionally crash-stopping serving
// nodes mid-stream.
// wiring bundles the transport selection shared by both demo modes.
type wiring struct {
	useUDP, useMem bool
	impair         p2pmss.TransportImpairment
	queueCap       int
	policy         p2pmss.TransportQueuePolicy
}

func runSessions(nodes, sessions, fanout, interval, size, pktSize int, rate float64,
	kill int, proto string, timeout time.Duration, seed int64,
	retries int, hsTimeout time.Duration, wire wiring, discover bool,
	announceEvery time.Duration, reg *p2pmss.MetricsRegistry,
	mux *lateMux, flightSet *p2pmss.FlightSet,
	spanCol *p2pmss.SpanCollector, traceOut, flightOut string) {
	if sessions > nodes {
		fatal(fmt.Errorf("-sessions %d needs at least as many -peers (have %d)", sessions, nodes))
	}
	store := p2pmss.NewContentStore()
	contents := make(map[string][]byte, sessions)
	for i := 0; i < sessions; i++ {
		data := make([]byte, size)
		rand.New(rand.NewSource(seed + int64(i))).Read(data)
		id := fmt.Sprintf("demo%d", i)
		store.Put(p2pmss.NewContent(id, data, pktSize))
		contents[id] = data
	}
	nc, err := p2pmss.StartLiveNodes(p2pmss.LiveNodesConfig{
		Nodes:            nodes,
		Store:            store,
		Discover:         discover,
		AnnounceInterval: announceEvery,
		H:                fanout,
		Interval:         interval,
		Protocol:         proto,
		UseTCP:           !wire.useUDP && !wire.useMem,
		UseUDP:           wire.useUDP,
		Impair:           wire.impair,
		QueueCap:         wire.queueCap,
		QueuePolicy:      wire.policy,
		HandshakeTimeout: hsTimeout,
		Retries:          retries,
		Seed:             seed,
		Obs: p2pmss.Observability{
			Metrics: reg,
			Spans:   spanCol,
			Flight:  flightSet,
		},
	})
	if err != nil {
		fatal(err)
	}
	defer nc.Close()
	if mux != nil {
		mux.Set(p2pmss.MetricsDebugMux(reg, nc.DebugHandlers()...))
	}
	armFlightDump(func() string {
		return dumpIntrospection(flightSet, func(enc *json.Encoder) error {
			all := make(map[string]p2pmss.OverlaySnapshot)
			for _, sid := range nc.Sessions() {
				all[string(sid)] = nc.Snapshot(sid)
			}
			return enc.Encode(all)
		})
	})
	for i, nd := range nc.Nodes {
		fmt.Printf("node %2d listening on %s\n", i, nd.Addr())
	}
	if discover {
		fmt.Printf("discovery: no static roster; nodes announce every %s...\n", announceEvery)
		if err := nc.WaitDiscovery(30 * time.Second); err != nil {
			fatal(err)
		}
		fmt.Println("discovery converged: every node resolved the full swarm (inspect with -listen on /debug/directory)")
	}

	start := time.Now()
	// Datagram transports can lose the request itself; arm the leaf's
	// request-retry deadline there.
	var requestRetry time.Duration
	if wire.useUDP || wire.impair.Enabled() {
		requestRetry = 200 * time.Millisecond
	}
	leaves := make([]*p2pmss.LiveLeafSession, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("demo%d", i)
		ls, err := nc.Open(i, p2pmss.LiveSessionConfig{
			ContentID:    id,
			ContentSize:  size,
			PacketSize:   pktSize,
			Rate:         rate,
			RepairAfter:  400 * time.Millisecond,
			RequestRetry: requestRetry,
		})
		if err != nil {
			fatal(err)
		}
		leaves[i] = ls
		fmt.Printf("session %q opened on node %d\n", ls.ID, i)
	}

	if kill > 0 {
		go func() {
			time.Sleep(300 * time.Millisecond)
			killed := nc.CrashServing(kill)
			fmt.Printf("!! crash-stopped %d serving node(s)\n", killed)
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, ls := range leaves {
		wg.Add(1)
		go func(i int, ls *p2pmss.LiveLeafSession) {
			defer wg.Done()
			errs[i] = ls.Wait(timeout)
		}(i, ls)
	}
	wg.Wait()
	failed := 0
	for i, ls := range leaves {
		if errs[i] != nil {
			fmt.Printf("session %q FAILED: %v\n", ls.ID, errs[i])
			failed++
			continue
		}
		got, ok := ls.Bytes()
		want := contents[fmt.Sprintf("demo%d", i)]
		if !ok || len(got) != len(want) {
			fmt.Printf("session %q reassembly failed\n", ls.ID)
			failed++
			continue
		}
		verified := true
		for k := range got {
			if got[k] != want[k] {
				fmt.Printf("session %q corrupted at byte %d\n", ls.ID, k)
				failed++
				verified = false
				break
			}
		}
		if verified {
			total, dup, recovered := ls.Stats()
			fmt.Printf("session %q complete ✓ (%d arrivals, %d duplicates, %d parity-recovered)\n",
				ls.ID, total, dup, recovered)
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d/%d sessions failed", failed, sessions))
	}
	fmt.Printf("all %d sessions verified byte-for-byte in %v\n", sessions, time.Since(start).Round(time.Millisecond))
	// Close now (idempotent; the deferred call becomes a no-op) so every
	// open span is finalized before the trace is written.
	nc.Close()
	writeTrace(traceOut, spanCol)
	writeFlight(flightOut, flightSet)
}

// lateMux serves a swappable handler, so the observability server can
// accept scrapes before the cluster exists and gain /debug/overlay and
// /debug/flight the moment it does.
type lateMux struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateMux) Set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "session starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// armFlightDump makes SIGUSR1 dump the running session's flight log and
// topology snapshot to temp files, printing their paths — mid-flight
// forensics without stopping the stream.
func armFlightDump(dump func() string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			fmt.Printf("SIGUSR1: %s\n", dump())
		}
	}()
}

// dumpIntrospection writes the flight log (JSONL) and a topology
// snapshot (JSON, produced by writeOverlay) to temp files and names
// them. Failures are reported, never fatal.
func dumpIntrospection(flightSet *p2pmss.FlightSet, writeOverlay func(*json.Encoder) error) string {
	var parts []string
	if f, err := os.CreateTemp("", "mssplay-flight-*.jsonl"); err == nil {
		if werr := p2pmss.WriteFlightJSONL(f, flightSet.Events()); werr == nil {
			parts = append(parts, "flight "+f.Name())
		}
		f.Close()
	}
	if f, err := os.CreateTemp("", "mssplay-overlay-*.json"); err == nil {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if werr := writeOverlay(enc); werr == nil {
			parts = append(parts, "overlay "+f.Name())
		}
		f.Close()
	}
	if len(parts) == 0 {
		return "dump failed"
	}
	return "dumped " + strings.Join(parts, ", ")
}

// writeFlight flushes the flight log as JSONL. No-op when -flight-out
// is unset.
func writeFlight(path string, flightSet *p2pmss.FlightSet) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	events := flightSet.Events()
	if err := p2pmss.WriteFlightJSONL(f, events); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("flight log: %d events -> %s (inspect: msstrace flight %s)\n", len(events), path, path)
}

// writeTrace flushes the collected spans as JSONL. No-op when tracing is
// off; the file is written only after the session closed, so dangling
// spans are already finalized.
func writeTrace(path string, col *p2pmss.SpanCollector) {
	if path == "" {
		return
	}
	spans := col.Spans()
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := p2pmss.WriteSpansJSONL(f, spans); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("causal trace: %d spans -> %s (view: msstrace perfetto %s)\n", len(spans), path, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssplay:", err)
	os.Exit(1)
}
