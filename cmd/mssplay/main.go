// Command mssplay demonstrates live multi-source streaming over TCP
// loopback: it spins up n contents peers (each listening on its own
// socket), streams a synthetic content to a leaf peer with the tree-based
// coordination protocol, optionally crash-stops peers mid-stream, and
// reports delivery statistics.
//
// With -listen the session also serves its observability endpoints over
// HTTP: Prometheus-format /metrics, /healthz, expvar on /debug/vars and
// net/http/pprof on /debug/pprof/.
//
// Usage:
//
//	mssplay -peers 8 -h 3 -size 65536 -kill 2
//	mssplay -listen 127.0.0.1:9090   # then: curl localhost:9090/metrics
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"p2pmss"
)

func main() {
	var (
		nPeers   = flag.Int("peers", 8, "number of contents peers")
		fanout   = flag.Int("h", 3, "selection fanout H")
		interval = flag.Int("parity", 2, "parity interval h")
		size     = flag.Int("size", 64<<10, "content size in bytes")
		pktSize  = flag.Int("pkt", 256, "packet payload size in bytes")
		rate     = flag.Float64("rate", 800, "content rate in packets/second")
		kill     = flag.Int("kill", 0, "crash this many active peers mid-stream")
		proto    = flag.String("proto", p2pmss.LiveTCoP, "live coordination protocol: tcop or dcop")
		timeout  = flag.Duration("timeout", 60*time.Second, "delivery deadline")
		seed     = flag.Int64("seed", 1, "random seed")
		listen   = flag.String("listen", "", "serve /metrics, /healthz and /debug/pprof/ on this address (off by default)")
	)
	flag.Parse()

	data := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(data)
	c := p2pmss.NewContent("demo", data, *pktSize)
	fmt.Printf("content %s: %d bytes, %d packets of %d bytes\n",
		c.ID(), c.Size(), c.NumPackets(), c.PacketSize())

	// Metrics are registered only when they will be served.
	var reg *p2pmss.MetricsRegistry
	if *listen != "" {
		reg = p2pmss.NewMetricsRegistry()
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability on http://%s/metrics (also /healthz, /debug/vars, /debug/pprof/)\n", ln.Addr())
		srv := &http.Server{Handler: p2pmss.MetricsDebugMux(reg)}
		go srv.Serve(ln) //nolint:errcheck // shut down with the process
	}

	start := time.Now()
	cl, err := p2pmss.StartLiveCluster(p2pmss.LiveClusterConfig{
		Content:  c,
		Peers:    *nPeers,
		H:        *fanout,
		Interval: *interval,
		Rate:     *rate,
		Protocol: *proto,
		UseTCP:   true,
		Seed:     *seed,
		Metrics:  reg,
	})
	if err != nil {
		fatal(err)
	}
	for i, p := range cl.Peers {
		fmt.Printf("peer %2d listening on %s\n", i, p.Addr())
	}
	fmt.Printf("leaf listening on %s; requesting from %d of %d peers\n\n",
		cl.Leaf.Addr(), *fanout, *nPeers)

	if *kill > 0 {
		go func() {
			time.Sleep(300 * time.Millisecond)
			killed := 0
			for _, p := range cl.Peers {
				if killed >= *kill {
					break
				}
				if p.Active() {
					fmt.Printf("!! crash-stopping peer %s (had sent %d packets)\n", p.Addr(), p.Sent())
					p.Close()
					killed++
				}
			}
		}()
	}

	// Progress ticker.
	doneCh := make(chan error, 1)
	go func() { doneCh <- cl.Wait(*timeout) }()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-doneCh:
			if err != nil {
				fatal(err)
			}
			total, dup, recovered := cl.Leaf.Stats()
			got, ok := cl.Bytes()
			fmt.Printf("\ncomplete in %v: %d arrivals, %d duplicates, %d parity-recovered\n",
				time.Since(start).Round(time.Millisecond), total, dup, recovered)
			if !ok || len(got) != len(data) {
				fatal(fmt.Errorf("reassembly failed"))
			}
			for i := range got {
				if got[i] != data[i] {
					fatal(fmt.Errorf("content corrupted at byte %d", i))
				}
			}
			fmt.Println("content verified byte-for-byte ✓")
			cl.Close()
			return
		case <-tick.C:
			fmt.Printf("  %d/%d packets delivered\n", cl.Leaf.Progress(), c.NumPackets())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssplay:", err)
	os.Exit(1)
}
