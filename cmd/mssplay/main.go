// Command mssplay demonstrates live multi-source streaming over TCP
// loopback: it spins up n contents peers (each listening on its own
// socket), streams a synthetic content to a leaf peer with the tree-based
// coordination protocol, optionally crash-stops peers mid-stream, and
// reports delivery statistics.
//
// Usage:
//
//	mssplay -peers 8 -h 3 -size 65536 -kill 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"p2pmss"
)

func main() {
	var (
		nPeers   = flag.Int("peers", 8, "number of contents peers")
		fanout   = flag.Int("h", 3, "selection fanout H")
		interval = flag.Int("parity", 2, "parity interval h")
		size     = flag.Int("size", 64<<10, "content size in bytes")
		pktSize  = flag.Int("pkt", 256, "packet payload size in bytes")
		rate     = flag.Float64("rate", 800, "content rate in packets/second")
		kill     = flag.Int("kill", 0, "crash this many active peers mid-stream")
		proto    = flag.String("proto", p2pmss.LiveTCoP, "live coordination protocol: tcop or dcop")
		timeout  = flag.Duration("timeout", 60*time.Second, "delivery deadline")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	data := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(data)
	c := p2pmss.NewContent("demo", data, *pktSize)
	fmt.Printf("content %s: %d bytes, %d packets of %d bytes\n",
		c.ID(), c.Size(), c.NumPackets(), c.PacketSize())

	// Bind all peer listeners first so the roster is known.
	type lateHandler struct {
		ep p2pmss.TransportEndpoint
		h  p2pmss.TransportHandler
	}
	var lates []*lateHandler
	var roster []string
	for i := 0; i < *nPeers; i++ {
		lh := &lateHandler{}
		ep, err := p2pmss.ListenTCP("127.0.0.1:0", func(m p2pmss.TransportMsg) {
			if lh.h != nil {
				lh.h(m)
			}
		})
		if err != nil {
			fatal(err)
		}
		lh.ep = ep
		lates = append(lates, lh)
		roster = append(roster, ep.Name())
	}

	var peers []*p2pmss.LivePeer
	for i, lh := range lates {
		lh := lh
		p, err := p2pmss.NewLivePeer(p2pmss.LivePeerConfig{
			Content:  c,
			Roster:   roster,
			H:        *fanout,
			Interval: *interval,
			Delta:    10 * time.Millisecond,
			Protocol: *proto,
			Seed:     *seed + int64(i) + 1,
		}, func(h p2pmss.TransportHandler) (p2pmss.TransportEndpoint, error) {
			lh.h = h
			return lh.ep, nil
		})
		if err != nil {
			fatal(err)
		}
		peers = append(peers, p)
		fmt.Printf("peer %2d listening on %s\n", i, p.Addr())
	}

	leafLate := &lateHandler{}
	lep, err := p2pmss.ListenTCP("127.0.0.1:0", func(m p2pmss.TransportMsg) {
		if leafLate.h != nil {
			leafLate.h(m)
		}
	})
	if err != nil {
		fatal(err)
	}
	leafLate.ep = lep
	leaf, err := p2pmss.NewLiveLeaf(p2pmss.LiveLeafConfig{
		Roster:      roster,
		H:           *fanout,
		Interval:    *interval,
		Rate:        *rate,
		ContentSize: len(data),
		PacketSize:  *pktSize,
		RepairAfter: 500 * time.Millisecond,
		Seed:        *seed + 999,
	}, func(h p2pmss.TransportHandler) (p2pmss.TransportEndpoint, error) {
		leafLate.h = h
		return leafLate.ep, nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("leaf listening on %s; requesting from %d of %d peers\n\n", leaf.Addr(), *fanout, *nPeers)

	start := time.Now()
	if err := leaf.Start(); err != nil {
		fatal(err)
	}

	if *kill > 0 {
		go func() {
			time.Sleep(300 * time.Millisecond)
			killed := 0
			for _, p := range peers {
				if killed >= *kill {
					break
				}
				if p.Active() {
					fmt.Printf("!! crash-stopping peer %s (had sent %d packets)\n", p.Addr(), p.Sent())
					p.Close()
					killed++
				}
			}
		}()
	}

	// Progress ticker.
	doneCh := make(chan error, 1)
	go func() { doneCh <- leaf.Wait(*timeout) }()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-doneCh:
			if err != nil {
				fatal(err)
			}
			total, dup, recovered := leaf.Stats()
			got, ok := leaf.Bytes()
			fmt.Printf("\ncomplete in %v: %d arrivals, %d duplicates, %d parity-recovered\n",
				time.Since(start).Round(time.Millisecond), total, dup, recovered)
			if !ok || len(got) != len(data) {
				fatal(fmt.Errorf("reassembly failed"))
			}
			for i := range got {
				if got[i] != data[i] {
					fatal(fmt.Errorf("content corrupted at byte %d", i))
				}
			}
			fmt.Println("content verified byte-for-byte ✓")
			for _, p := range peers {
				p.Close()
			}
			leaf.Close()
			return
		case <-tick.C:
			fmt.Printf("  %d/%d packets delivered\n", leaf.Progress(), c.NumPackets())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssplay:", err)
	os.Exit(1)
}
