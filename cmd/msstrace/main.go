// Command msstrace runs one coordination simulation with event tracing
// and dumps the timeline: every activation, control packet, hand-off and
// crash in virtual-time order. Useful for understanding how DCoP's
// flooding or TCoP's handshake actually unfolds.
//
// Usage:
//
//	msstrace -proto dcop -n 20 -h 4
//	msstrace -proto tcop -n 12 -h 3 -kinds activate,crash
//	msstrace -proto dcop -json | jq .kind
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p2pmss"
)

func main() {
	var (
		proto   = flag.String("proto", p2pmss.DCoP, "protocol: dcop, tcop, broadcast, unicast, centralized, ams")
		n       = flag.Int("n", 20, "contents peers")
		fanout  = flag.Int("h", 4, "fanout H")
		seed    = flag.Int64("seed", 1, "random seed")
		kinds   = flag.String("kinds", "", "comma-separated event kinds to show (default all)")
		limit   = flag.Int("limit", 20000, "trace capacity (must be positive)")
		jsonOut = flag.Bool("json", false, "emit the timeline as JSON Lines (one event per line)")
	)
	flag.Parse()

	if *limit <= 0 {
		fmt.Fprintf(os.Stderr, "msstrace: -limit %d must be positive\n", *limit)
		flag.Usage()
		os.Exit(2)
	}

	tr := p2pmss.NewTracer(*limit)
	cfg := p2pmss.DefaultSimConfig()
	cfg.N = *n
	cfg.H = *fanout
	cfg.Seed = *seed
	cfg.Trace = tr

	res, err := p2pmss.Simulate(*proto, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msstrace:", err)
		os.Exit(1)
	}

	// Resolve the events to print: the full timeline, or only the
	// requested kinds (in their per-kind recording order, as before).
	var events []p2pmss.TraceEvent
	if *kinds == "" {
		events = tr.Events()
	} else {
		for _, k := range strings.Split(*kinds, ",") {
			events = append(events, tr.Filter(strings.TrimSpace(k))...)
		}
	}

	if *jsonOut {
		if err := p2pmss.WriteTraceJSONL(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "msstrace:", err)
			os.Exit(1)
		}
		// Keep stdout pure JSONL; the human summary goes to stderr.
		fmt.Fprintf(os.Stderr, "%s: %d/%d peers active, %d rounds, %d control packets, sync at t=%.2f\n",
			res.Protocol, res.ActivePeers, *n, res.Rounds, res.ControlPackets, res.SyncTime)
		return
	}

	if *kinds == "" {
		if err := tr.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "msstrace:", err)
			os.Exit(1)
		}
	} else {
		for _, e := range events {
			fmt.Println(e)
		}
	}
	fmt.Printf("\n%s: %d/%d peers active, %d rounds, %d control packets, sync at t=%.2f\n",
		res.Protocol, res.ActivePeers, *n, res.Rounds, res.ControlPackets, res.SyncTime)
}
