// Command msstrace runs one coordination simulation with event tracing
// and dumps the timeline: every activation, control packet, hand-off and
// crash in virtual-time order. Useful for understanding how DCoP's
// flooding or TCoP's handshake actually unfolds.
//
// It also post-processes causal span traces written by mssim/mssplay
// -trace-out: `msstrace perfetto` converts a span JSONL file to Chrome
// trace-event JSON (open in https://ui.perfetto.dev, one track per
// peer), and `msstrace summary` prints per-session latency quantiles.
//
// `msstrace flight` inspects per-peer flight logs (mssplay -flight-out,
// /debug/flight, or a SIGUSR1 dump): filtered event listings or a
// per-peer summary table.
//
// Usage:
//
//	msstrace -proto dcop -n 20 -h 4
//	msstrace -proto tcop -n 12 -h 3 -kinds activate,crash
//	msstrace -proto dcop -json | jq .kind
//	msstrace perfetto trace.jsonl -o trace.json
//	msstrace summary trace.jsonl
//	msstrace flight flight.jsonl -summary
//	msstrace flight flight.jsonl -peer 3 -type send_commit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"p2pmss"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "perfetto":
			runPerfetto(os.Args[2:])
			return
		case "summary":
			runSummary(os.Args[2:])
			return
		case "flight":
			runFlight(os.Args[2:])
			return
		}
	}
	runTimeline()
}

// splitInput peels a leading positional argument (the trace file) off
// the subcommand args, so flags may come before or after the file name
// (stdlib flag parsing stops at the first non-flag otherwise).
func splitInput(args []string) (input string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// readSpans loads a span JSONL trace ("-" or no path reads stdin).
func readSpans(path string) []p2pmss.Span {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	spans, err := p2pmss.ReadSpansJSONL(r)
	if err != nil {
		fatal(err)
	}
	return spans
}

// runPerfetto converts a span JSONL trace (mssim/mssplay -trace-out)
// into Chrome trace-event JSON for the Perfetto UI.
func runPerfetto(args []string) {
	fs := flag.NewFlagSet("msstrace perfetto", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: msstrace perfetto [-o out.json] [trace.jsonl]")
		fs.PrintDefaults()
	}
	input, rest := splitInput(args)
	fs.Parse(rest) //nolint:errcheck // ExitOnError
	if input == "" {
		input = fs.Arg(0)
	}
	spans := readSpans(input)
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := p2pmss.WriteSpansPerfetto(w, spans); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "msstrace: %d spans -> %s (open in https://ui.perfetto.dev)\n", len(spans), *out)
	}
}

// runSummary prints per-session latency quantiles (p50/p95/p99 per span
// name) for a span JSONL trace.
func runSummary(args []string) {
	fs := flag.NewFlagSet("msstrace summary", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: msstrace summary [trace.jsonl]")
		fs.PrintDefaults()
	}
	input, rest := splitInput(args)
	fs.Parse(rest) //nolint:errcheck // ExitOnError
	if input == "" {
		input = fs.Arg(0)
	}
	p2pmss.PrintSpanSummary(os.Stdout, p2pmss.SummarizeSpans(readSpans(input)))
}

// runFlight lists or summarizes a per-peer flight log (JSONL) written
// by mssplay -flight-out, /debug/flight, or a SIGUSR1 dump.
func runFlight(args []string) {
	fs := flag.NewFlagSet("msstrace flight", flag.ExitOnError)
	peer := fs.Int("peer", -1, "only events of this peer id (-1 = all)")
	sess := fs.String("session", "", "only events of this session id")
	typ := fs.String("type", "", "only events of this type (e.g. send_commit, timer_confirm)")
	limit := fs.Int("limit", 0, "print at most this many events (0 = all)")
	summary := fs.Bool("summary", false, "print a per-(peer, type) summary table instead of events")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: msstrace flight [-peer N] [-session S] [-type T] [-limit N] [-summary] [flight.jsonl]")
		fs.PrintDefaults()
	}
	input, rest := splitInput(args)
	fs.Parse(rest) //nolint:errcheck // ExitOnError
	if input == "" {
		input = fs.Arg(0)
	}

	var r io.Reader = os.Stdin
	if input != "" && input != "-" {
		f, err := os.Open(input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	all, err := p2pmss.ReadFlightJSONL(r)
	if err != nil {
		fatal(err)
	}
	events := all[:0:0]
	for _, e := range all {
		if *peer >= 0 && e.Peer != *peer {
			continue
		}
		if *sess != "" && e.Session != *sess {
			continue
		}
		if *typ != "" && e.Type != *typ {
			continue
		}
		events = append(events, e)
	}

	if *summary {
		fmt.Printf("%-10s %5s %-4s %-20s %8s %12s %12s\n",
			"session", "peer", "dir", "type", "count", "first", "last")
		for _, s := range p2pmss.SummarizeFlight(events) {
			fmt.Printf("%-10s %5d %-4s %-20s %8d %12.6f %12.6f\n",
				s.Session, s.Peer, s.Dir, s.Type, s.Count, s.First, s.Last)
		}
		fmt.Fprintf(os.Stderr, "msstrace: %d events (%d after filters)\n", len(all), len(events))
		return
	}

	shown := 0
	for _, e := range events {
		if *limit > 0 && shown >= *limit {
			fmt.Printf("... %d more (raise -limit)\n", len(events)-shown)
			break
		}
		sessPrefix := ""
		if e.Session != "" {
			sessPrefix = e.Session + "/"
		}
		fmt.Printf("%12.6f %speer%-3d %-4s %-20s other=%-3d round=%-2d n=%d\n",
			e.T, sessPrefix, e.Peer, e.Dir, e.Type, e.Other, e.Round, e.N)
		shown++
	}
	fmt.Fprintf(os.Stderr, "msstrace: %d events (%d after filters)\n", len(all), len(events))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msstrace:", err)
	os.Exit(1)
}

func runTimeline() {
	var (
		proto   = flag.String("proto", p2pmss.DCoP, "protocol: dcop, tcop, broadcast, unicast, centralized, ams")
		n       = flag.Int("n", 20, "contents peers")
		fanout  = flag.Int("h", 4, "fanout H")
		seed    = flag.Int64("seed", 1, "random seed")
		kinds   = flag.String("kinds", "", "comma-separated event kinds to show (default all)")
		limit   = flag.Int("limit", 20000, "trace capacity (must be positive)")
		jsonOut = flag.Bool("json", false, "emit the timeline as JSON Lines (one event per line)")
	)
	flag.Parse()

	if *limit <= 0 {
		fmt.Fprintf(os.Stderr, "msstrace: -limit %d must be positive\n", *limit)
		flag.Usage()
		os.Exit(2)
	}

	tr := p2pmss.NewTracer(*limit)
	cfg := p2pmss.DefaultSimConfig()
	cfg.N = *n
	cfg.H = *fanout
	cfg.Seed = *seed
	cfg.Obs.Trace = tr

	res, err := p2pmss.Simulate(*proto, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msstrace:", err)
		os.Exit(1)
	}

	// Resolve the events to print: the full timeline, or only the
	// requested kinds (in their per-kind recording order, as before).
	var events []p2pmss.TraceEvent
	if *kinds == "" {
		events = tr.Events()
	} else {
		for _, k := range strings.Split(*kinds, ",") {
			events = append(events, tr.Filter(strings.TrimSpace(k))...)
		}
	}

	if *jsonOut {
		if err := p2pmss.WriteTraceJSONL(os.Stdout, events); err != nil {
			fmt.Fprintln(os.Stderr, "msstrace:", err)
			os.Exit(1)
		}
		// Keep stdout pure JSONL; the human summary goes to stderr.
		fmt.Fprintf(os.Stderr, "%s: %d/%d peers active, %d rounds, %d control packets, sync at t=%.2f\n",
			res.Protocol, res.ActivePeers, *n, res.Rounds, res.ControlPackets, res.SyncTime)
		return
	}

	if *kinds == "" {
		if err := tr.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "msstrace:", err)
			os.Exit(1)
		}
	} else {
		for _, e := range events {
			fmt.Println(e)
		}
	}
	fmt.Printf("\n%s: %d/%d peers active, %d rounds, %d control packets, sync at t=%.2f\n",
		res.Protocol, res.ActivePeers, *n, res.Rounds, res.ControlPackets, res.SyncTime)
}
