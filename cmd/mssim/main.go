// Command mssim regenerates the paper's evaluation (§4) on the
// discrete-event simulator.
//
// Usage:
//
//	mssim -fig 10              # DCoP rounds & control packets vs H
//	mssim -fig 11              # TCoP rounds & control packets vs H
//	mssim -fig 12              # leaf receipt rate vs H (DCoP and TCoP)
//	mssim -fig baselines       # §3.1 baseline comparison at -h-fixed
//	mssim -fig scale -data-plane fluid   # receipt rate & rounds vs n up to 10⁵ peers
//	mssim -fig all             # everything (scale excluded; run it explicitly)
//	mssim -fig 10 -csv         # machine-readable output (averaged points)
//	mssim -fig 10 -json        # one JSON line per (H, seed) run, with metrics
//	mssim -fig 10 -n 100 -seeds 5 -hs 2,10,60,100
//	mssim -fig 10 -noshare     # leaf does not share its initial selection
//	mssim -fig 12 -parallel 1  # serial sweep (output identical to parallel)
//	mssim -fig 11 -trace-out t.jsonl   # also export causal spans (msstrace perfetto t.jsonl)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"p2pmss"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 10, 11, 12, baselines, all")
		n        = flag.Int("n", 100, "number of contents peers")
		seeds    = flag.Int("seeds", 5, "seeds averaged per point")
		hs       = flag.String("hs", "", "comma-separated H values (default paper sweep)")
		hFixed   = flag.Int("h-fixed", 10, "fanout for the baseline comparison")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut  = flag.Bool("json", false, "emit one JSON line per (H, seed) run — full result plus metrics snapshot")
		noshare  = flag.Bool("noshare", false, "leaf request does not carry the selected set")
		svgDir   = flag.String("svg", "", "also render figures as SVG into this directory")
		parallel = flag.Int("parallel", runtime.NumCPU(),
			"worker goroutines for sweep points (1 = serial; output is byte-identical at any setting)")
		retries = flag.Int("retries", 0,
			"alternate-peer retries per failed child slot (0 = coordination default)")
		hsTimeout = flag.Float64("handshake-timeout", 0,
			"control/confirm handshake deadline in virtual seconds (0 = coordination default)")
		traceOut = flag.String("trace-out", "",
			"write causal coordination spans (JSONL) to this file; convert with msstrace perfetto/summary")
		loss = flag.Float64("loss", 0,
			"independent per-message drop probability in [0,1); stamped into -json records as the run scenario")
		burst = flag.String("burst", "",
			"Gilbert–Elliott bursty loss as pGoodToBad,pBadToGood,lossGood,lossBad (e.g. 0.01,0.2,0,0.5)")
		dataPlane = flag.String("data-plane", "packet",
			"data-plane mode for data-plane figures (12, scale, baselines): packet (per-packet DES events) or fluid (closed-form flow rates; required for -fig scale ceilings)")
		ns = flag.String("ns", "10000,20000,50000,100000",
			"comma-separated overlay sizes for -fig scale")
	)
	flag.Parse()

	o := p2pmss.DefaultExperimentOptions()
	o.N = *n
	o.Seeds = *seeds
	o.LeafShares = !*noshare
	o.Parallel = *parallel
	o.Retries = *retries
	o.HandshakeTimeout = *hsTimeout
	o.LossProb = *loss
	if *burst != "" {
		bp, err := parseBurst(*burst)
		if err != nil {
			fatal(err)
		}
		o.Burst = bp
	}
	switch *dataPlane {
	case "", "packet":
		o.PlaneMode = p2pmss.PlanePacket
	case "fluid":
		o.PlaneMode = p2pmss.PlaneFluid
	default:
		fatal(fmt.Errorf("unknown -data-plane %q (want packet or fluid)", *dataPlane))
	}
	if *hs != "" {
		o.Hs = nil
		for _, part := range strings.Split(*hs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -hs entry %q: %w", part, err))
			}
			o.Hs = append(o.Hs, v)
		}
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }

	// Span collection is a side channel: the trace goes to -trace-out,
	// tables/records go to stdout unchanged (byte-identical to an
	// untraced run).
	o.CollectSpans = *traceOut != ""
	var spans []p2pmss.Span
	collect := func(recs []p2pmss.RunRecord) {
		if o.CollectSpans {
			spans = append(spans, p2pmss.Spans(recs)...)
		}
	}
	defer func() {
		if *traceOut == "" {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := p2pmss.WriteSpansJSONL(f, spans); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}()

	if *jsonOut {
		// JSONL mode: per-run records with metrics snapshots instead of
		// averaged tables. Deterministic: instrumentation never perturbs
		// the simulation and snapshots are sorted.
		o.Instrument = true
		emit := func(recs []p2pmss.RunRecord, err error) {
			if err != nil {
				fatal(err)
			}
			collect(recs)
			if err := p2pmss.WriteRunRecordsJSONL(os.Stdout, recs); err != nil {
				fatal(err)
			}
		}
		ran := false
		if run("10") {
			emit(p2pmss.SweepRecords(p2pmss.DCoP, o, false))
			ran = true
		}
		if run("11") {
			emit(p2pmss.SweepRecords(p2pmss.TCoP, o, false))
			ran = true
		}
		if run("12") {
			emit(p2pmss.SweepRecords(p2pmss.DCoP, o, true))
			emit(p2pmss.SweepRecords(p2pmss.TCoP, o, true))
			ran = true
		}
		if run("baselines") {
			emit(p2pmss.BaselineRecords(o, *hFixed))
			ran = true
		}
		if !ran {
			fatal(fmt.Errorf("-json supports -fig 10, 11, 12, baselines, all (got %q)", *fig))
		}
		return
	}

	// sweepSeries runs one protocol sweep via the records path, so one
	// grid run yields both the averaged table and the spans. Used only
	// when tracing; the untraced path keeps the historical Figure calls.
	sweepSeries := func(proto p2pmss.Protocol, dataPlane bool) (p2pmss.Series, error) {
		recs, err := p2pmss.SweepRecords(proto, o, dataPlane)
		if err != nil {
			return p2pmss.Series{}, err
		}
		collect(recs)
		return p2pmss.SeriesFromRecords(proto, o, recs), nil
	}

	if run("10") {
		var s p2pmss.Series
		var err error
		if o.CollectSpans {
			s, err = sweepSeries(p2pmss.DCoP, false)
		} else {
			s, err = p2pmss.Figure10(o)
		}
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(p2pmss.SeriesCSV(s))
		} else {
			p2pmss.PrintSeries(os.Stdout, "Figure 10: rounds and control packets in DCoP", s)
			fmt.Println()
		}
		if *svgDir != "" {
			if err := p2pmss.WriteRoundsSVG(*svgDir, "figure10", "Figure 10: DCoP", s); err != nil {
				fatal(err)
			}
		}
	}
	if run("11") {
		var s p2pmss.Series
		var err error
		if o.CollectSpans {
			s, err = sweepSeries(p2pmss.TCoP, false)
		} else {
			s, err = p2pmss.Figure11(o)
		}
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(p2pmss.SeriesCSV(s))
		} else {
			p2pmss.PrintSeries(os.Stdout, "Figure 11: rounds and control packets in TCoP", s)
			fmt.Println()
		}
		if *svgDir != "" {
			if err := p2pmss.WriteRoundsSVG(*svgDir, "figure11", "Figure 11: TCoP", s); err != nil {
				fatal(err)
			}
		}
	}
	if run("12") {
		var d, t p2pmss.Series
		var err error
		if o.CollectSpans {
			if d, err = sweepSeries(p2pmss.DCoP, true); err == nil {
				t, err = sweepSeries(p2pmss.TCoP, true)
			}
		} else {
			d, t, err = p2pmss.Figure12(o)
		}
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(p2pmss.SeriesCSV(d))
			fmt.Print(p2pmss.SeriesCSV(t))
		} else {
			p2pmss.PrintRateSeries(os.Stdout, "Figure 12: receipt rate of leaf peer", d, t)
			fmt.Println()
		}
		if *svgDir != "" {
			if err := p2pmss.WriteRateSVG(*svgDir, "figure12", "Figure 12: receipt rate of leaf peer", d, t); err != nil {
				fatal(err)
			}
		}
	}
	if run("baselines") {
		var rows []p2pmss.BaselineRow
		var err error
		if o.CollectSpans {
			var recs []p2pmss.RunRecord
			if recs, err = p2pmss.BaselineRecords(o, *hFixed); err == nil {
				collect(recs)
				rows = p2pmss.BaselinesFromRecords(o, recs)
			}
		} else {
			rows, err = p2pmss.Baselines(o, *hFixed)
		}
		if err != nil {
			fatal(err)
		}
		p2pmss.PrintBaselines(os.Stdout,
			fmt.Sprintf("Baseline comparison (§3.1) at n=%d, H=%d", o.N, *hFixed), rows)
		fmt.Println()
	}
	if run("gossip") {
		pts, err := p2pmss.GossipCoverage(o.N, nil, o.Seeds*2)
		if err != nil {
			fatal(err)
		}
		p2pmss.PrintGossipCoverage(os.Stdout, o.N, pts)
		fmt.Println()
	}
	// The scale sweep is explicitly requested, never part of -fig all: at
	// its default ceiling (n = 10⁵) a point takes tens of seconds even on
	// the fluid plane, and on the packet plane it is intentionally
	// unreachable.
	if *fig == "scale" {
		sizes, err := parseNs(*ns)
		if err != nil {
			fatal(err)
		}
		for _, proto := range []p2pmss.Protocol{p2pmss.DCoP, p2pmss.TCoP} {
			pts, err := p2pmss.ScaleCurve(proto, o, *hFixed, sizes)
			if err != nil {
				fatal(err)
			}
			if *csv {
				fmt.Print(p2pmss.ScaleCurveCSV(proto, pts))
			} else {
				p2pmss.PrintScaleCurve(os.Stdout,
					fmt.Sprintf("Scale sweep (%s, H=%d, %s plane): coordination and receipt rate vs n",
						proto, *hFixed, o.PlaneMode), pts)
				fmt.Println()
			}
		}
		return
	}
	if !run("10") && !run("11") && !run("12") && !run("baselines") && !run("gossip") {
		fatal(fmt.Errorf("unknown -fig %q (want 10, 11, 12, baselines, gossip, scale, all)", *fig))
	}
}

// parseNs decodes the -ns flag's comma-separated overlay sizes.
func parseNs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -ns entry %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseBurst decodes the -burst flag's four comma-separated
// Gilbert–Elliott parameters.
func parseBurst(s string) (*p2pmss.BurstParams, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("bad -burst %q: want pGoodToBad,pBadToGood,lossGood,lossBad", s)
	}
	vals := make([]float64, 4)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -burst entry %q: %w", part, err)
		}
		vals[i] = v
	}
	return &p2pmss.BurstParams{
		PGoodToBad: vals[0], PBadToGood: vals[1],
		LossGood: vals[2], LossBad: vals[3],
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssim:", err)
	os.Exit(1)
}
