// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout (or -o file), so CI can archive benchmark
// results as a machine-readable artifact (BENCH_engine.json,
// BENCH_span.json).
//
// With -assert-zero-allocs PREFIX it additionally fails (exit 1) if any
// benchmark whose name starts with PREFIX reports a non-zero allocs/op
// — the CI gate keeping the disabled-tracing path allocation-free.
//
// With -assert-max-allocs PREFIX=N[,PREFIX=N...] it fails (exit 1) if
// any benchmark whose name starts with PREFIX reports more than N
// allocs/op — the CI gate keeping the pooled coordination round
// near-zero-alloc without demanding literal zero.
//
//	go test -run='^$' -bench=. -benchmem ./internal/engine | benchjson -o BENCH_engine.json
//	go test -run='^$' -bench=SpanDisabled -benchmem ./internal/engine | \
//	    benchjson -assert-zero-allocs BenchmarkSpanDisabled -o BENCH_span.json
//	go test -run='^$' -bench='^BenchmarkEngine' -benchmem ./internal/engine | \
//	    benchjson -assert-max-allocs BenchmarkEngine=100 -o BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Package    string      `json:"package,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output. Lines look like:
//
//	BenchmarkEngineTCoP-8   228   5171434 ns/op   2138152 B/op   21523 allocs/op
func parse(lines []string) Report {
	var rep Report
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: f[0]}
		b.Iterations, _ = strconv.ParseInt(f[1], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(f[2], 64)
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep
}

// allocCap is one parsed -assert-max-allocs entry.
type allocCap struct {
	prefix string
	max    int64
}

// parseMaxAllocs parses "PREFIX=N[,PREFIX=N...]" (empty input → none).
func parseMaxAllocs(s string) ([]allocCap, error) {
	if s == "" {
		return nil, nil
	}
	var caps []allocCap
	for _, part := range strings.Split(s, ",") {
		prefix, limit, ok := strings.Cut(part, "=")
		if !ok || prefix == "" {
			return nil, fmt.Errorf("bad -assert-max-allocs entry %q (want PREFIX=N)", part)
		}
		max, err := strconv.ParseInt(limit, 10, 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("bad -assert-max-allocs limit in %q (want a non-negative integer)", part)
		}
		caps = append(caps, allocCap{prefix: prefix, max: max})
	}
	return caps, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	zeroAllocs := flag.String("assert-zero-allocs", "",
		"fail if any benchmark with this name prefix reports allocs/op > 0")
	maxAllocs := flag.String("assert-max-allocs", "",
		"PREFIX=N[,PREFIX=N...]: fail if any benchmark with a listed name prefix reports allocs/op > N")
	flag.Parse()

	caps, err := parseMaxAllocs(*maxAllocs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		fmt.Fprintln(os.Stderr, line) // echo so CI logs keep the raw output
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	rep := parse(lines)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	if *zeroAllocs != "" {
		matched, failed := 0, 0
		for _, b := range rep.Benchmarks {
			if !strings.HasPrefix(b.Name, *zeroAllocs) {
				continue
			}
			matched++
			if b.AllocsPerOp > 0 {
				failed++
				fmt.Fprintf(os.Stderr, "benchjson: %s allocates: %d allocs/op (want 0)\n",
					b.Name, b.AllocsPerOp)
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark matches -assert-zero-allocs %q\n", *zeroAllocs)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
	for _, cap := range caps {
		matched, failed := 0, 0
		for _, b := range rep.Benchmarks {
			if !strings.HasPrefix(b.Name, cap.prefix) {
				continue
			}
			matched++
			if b.AllocsPerOp > cap.max {
				failed++
				fmt.Fprintf(os.Stderr, "benchjson: %s allocates: %d allocs/op (max %d)\n",
					b.Name, b.AllocsPerOp, cap.max)
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark matches -assert-max-allocs prefix %q\n", cap.prefix)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}
