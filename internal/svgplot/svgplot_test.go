package svgplot

import (
	"strings"
	"testing"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "Figure 10",
		XLabel: "H",
		YLabel: "rounds",
		Series: []Series{
			{Name: "rounds", X: []float64{2, 10, 60, 100}, Y: []float64{10, 4, 2, 1}},
			{Name: "packets", X: []float64{2, 10, 60, 100}, Y: []float64{170, 1010, 2460, 100}, Dashed: true},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	var b strings.Builder
	if err := lineChart().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "Figure 10", "polyline", "stroke-dasharray", "rounds", "packets"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	// Two polylines, one per series.
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Errorf("polylines = %d", n)
	}
}

func TestRenderLogAxis(t *testing.T) {
	c := lineChart()
	c.YLog = true
	// Zero/negative values are skipped on a log axis, not rendered.
	c.Series[0].Y[0] = 0
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<polyline") {
		t.Error("log chart missing lines")
	}
}

func TestRenderErrors(t *testing.T) {
	var b strings.Builder
	empty := &Chart{Title: "x"}
	if err := empty.Render(&b); err == nil {
		t.Error("empty chart rendered")
	}
	mismatched := &Chart{Series: []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := mismatched.Render(&b); err == nil {
		t.Error("mismatched series rendered")
	}
	allNonPos := &Chart{YLog: true, Series: []Series{{Name: "z", X: []float64{1}, Y: []float64{0}}}}
	if err := allNonPos.Render(&b); err == nil {
		t.Error("undrawable log chart rendered")
	}
}

func TestEscape(t *testing.T) {
	c := lineChart()
	c.Title = `<&">`
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `<&">`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(b.String(), "&lt;&amp;&quot;&gt;") {
		t.Error("escaped form missing")
	}
}

func TestDegenerateRanges(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("flat series: %v", err)
	}
}
