// Package svgplot renders simple line charts as standalone SVG files —
// enough to regenerate the paper's Figures 10–12 as images from
// cmd/mssim without any dependency beyond the standard library.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline.
type Series struct {
	Name string
	X, Y []float64
	// Dashed draws a dashed line (the paper's dotted control-packet
	// curves).
	Dashed bool
}

// Chart is a set of series with axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height default to 720×480.
	Width, Height int
	// YLog uses a log10 y-axis (useful when packet counts span decades).
	YLog bool
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Render writes the chart as a standalone SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 480
	}
	const marginL, marginR, marginT, marginB = 70, 20, 40, 50
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("svgplot: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			y := s.Y[i]
			if c.YLog {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) || math.IsInf(ymin, 1) {
		return fmt.Errorf("svgplot: chart %q has no drawable points", c.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly.
	pad := (ymax - ymin) * 0.05
	ymin, ymax = ymin-pad, ymax+pad

	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 {
		if c.YLog {
			y = math.Log10(math.Max(y, 1e-12))
		}
		return float64(marginT) + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), escape(c.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/5
		x := px(fx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginB, x, height-marginB+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, height-marginB+16, fmtTick(fx))
		fy := ymin + (ymax-ymin)*float64(i)/5
		yv := fy
		if c.YLog {
			yv = math.Pow(10, fy)
		}
		y := float64(marginT) + plotH - (fy-ymin)/(ymax-ymin)*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+3, fmtTick(yv))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		var pts []string
		for j := range s.X {
			if c.YLog && s.Y[j] <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
			strings.Join(pts, " "), color, dash)
		for j := range s.X {
			if c.YLog && s.Y[j] <= 0 {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(s.X[j]), py(s.Y[j]), color)
		}
		// Legend entry.
		ly := marginT + 16 + 18*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			width-marginR-150, ly, width-marginR-120, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR-114, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
