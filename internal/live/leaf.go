package live

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/engine"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/span"
	"p2pmss/internal/transport"
)

// LeafConfig configures a live leaf peer.
type LeafConfig struct {
	// Roster lists the contents peers' addresses.
	Roster []string
	// SessionRoster, when non-nil, is the session's full membership
	// (typically Roster plus the leaf's own node) stamped into every
	// content request, so nodes that resolved nothing statically can
	// reconstruct the session's peer numbering from the request itself.
	// Leave nil for statically configured sessions — the requests stay
	// byte-identical to the pre-discovery wire format.
	SessionRoster []string
	// H is how many peers the leaf initially selects.
	H int
	// Interval is the parity interval h.
	Interval int
	// Rate is the content rate in packets per second.
	Rate float64
	// ContentID names the content to request (peers with a Store serve
	// by ID; empty matches a peer's single content).
	ContentID string
	// ContentSize and PacketSize describe the expected content.
	ContentSize, PacketSize int
	// RepairAfter is how long the leaf waits without progress before
	// asking surviving peers to retransmit missing packets. Zero
	// disables repair.
	RepairAfter time.Duration
	// RequestRetry, when positive, re-sends the initial content request
	// to every selected peer the leaf has not yet heard a data packet
	// from, once per interval. Start's send-error failover only covers
	// connection-oriented transports: a datagram transport loses a
	// request silently (Send returns nil), leaving the slot's whole
	// division untransmitted — more loss than parity can absorb.
	// Re-sent requests are idempotent at the peers (an already-active
	// peer ignores them). Zero disables the deadline.
	RequestRetry time.Duration
	// RequestRetries caps the re-send waves (default 5 when
	// RequestRetry is positive).
	RequestRetries int
	// Session scopes the leaf to one streaming session (see
	// PeerConfig.Session).
	Session SessionID
	// Seed seeds peer selection; 0 uses the clock.
	Seed int64
	// Obs bundles the leaf's observers in the struct shared with the
	// simulation. Non-nil members override the corresponding legacy
	// fields below; Obs.Trace and Obs.Flight are ignored (the leaf
	// runs no coordination engine to record). Prefer Obs for new code.
	Obs obs.Observability
	// Metrics, when non-nil, receives the leaf's counters (arrivals,
	// duplicates, repair requests, retries, failovers) and
	// delivery-progress gauges.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects the session's causal spans; the leaf
	// opens the root "session" span every member's spans nest under.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// SpanTrace identifies the session's trace; zero derives it from the
	// Session id (matching the peers' derivation).
	//
	// Deprecated: set via Obs.SpanTrace.
	SpanTrace span.TraceID
	// Introspect, when non-nil, is invoked on a Wait timeout; whatever
	// it returns is appended to the timeout error. StartCluster wires it
	// to an automatic flight+topology dump so a stalled session
	// self-diagnoses.
	Introspect func() string
}

// Leaf is a live leaf peer LP_s: it requests a content from H contents
// peers, reassembles arrivals (with parity recovery), and issues repair
// requests for stalled subsequences to the session members it most
// recently heard from (the likeliest survivors after churn).
type Leaf struct {
	cfg LeafConfig
	ep  transport.Endpoint
	met leafMetrics

	mu       sync.Mutex
	rng      *rand.Rand
	asm      *content.Assembler
	total    int64
	dup      int64
	seen     map[string]bool
	lastGain time.Time
	// lastHeard and maxIdx record, per sender, when the leaf last
	// received a data packet and the highest data index it carried —
	// the basis for survivor-aware repair targeting and for naming the
	// presumed-crashed peers in Wait's timeout error.
	lastHeard map[string]time.Time
	maxIdx    map[string]int64
	// repairFirst is the leading missing index of the previous repair
	// round; seeing it again means the round went unanswered (a retry).
	repairFirst int64
	// sessionSpan is the root span of the session's trace, opened at
	// Start; sessionStart/firstAt feed the session span and the
	// time-to-first-packet observation.
	sessionSpan  span.SpanID
	sessionStart float64
	gotFirst     bool
	done         chan struct{}
	doneOnce     sync.Once

	stopCh  chan struct{}
	stopped sync.Once
}

// NewLeaf creates a leaf on the given transport (WithFabric, WithTCP, or
// WithAttach for pre-bound endpoints).
func NewLeaf(cfg LeafConfig, tr Transport) (*Leaf, error) {
	if tr == nil {
		return nil, fmt.Errorf("live: leaf needs a transport")
	}
	if cfg.H <= 0 || cfg.H > len(cfg.Roster) {
		return nil, fmt.Errorf("live: H=%d must be in 1..len(roster)=%d", cfg.H, len(cfg.Roster))
	}
	if cfg.Interval <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("live: interval and rate must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.SpanTrace != 0 && cfg.SpanTrace == 0 {
		cfg.SpanTrace = cfg.Obs.SpanTrace
	}
	if cfg.Spans != nil && cfg.SpanTrace == 0 {
		cfg.SpanTrace = span.DeriveTrace("live/session=" + string(cfg.Session))
	}
	l := &Leaf{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		asm:       content.NewAssembler(cfg.ContentSize, cfg.PacketSize),
		seen:      make(map[string]bool),
		lastHeard: make(map[string]time.Time),
		maxIdx:    make(map[string]int64),
		lastGain:  time.Now(),
		done:      make(chan struct{}),
		stopCh:    make(chan struct{}),
	}
	ep, err := tr.open(l.handle)
	if err != nil {
		return nil, err
	}
	l.ep = ep
	l.met = newLeafMetrics(cfg.Metrics, cfg.Session)
	return l, nil
}

// Addr returns the leaf's transport address.
func (l *Leaf) Addr() string { return l.ep.Name() }

// Session returns the session this leaf consumes (empty when standalone).
func (l *Leaf) Session() SessionID { return l.cfg.Session }

// send encodes v, stamps the leaf's session, and transmits.
func (l *Leaf) send(to, typ string, v any) error {
	return l.sendCtx(to, typ, v, span.Context{})
}

// sendCtx is send with a causal span context stamped on the frame.
func (l *Leaf) sendCtx(to, typ string, v any, ctx span.Context) error {
	m, err := transport.Encode(typ, l.Addr(), v)
	if err != nil {
		return err
	}
	m.Session = string(l.cfg.Session)
	m.Trace = uint64(ctx.Trace)
	m.Span = uint64(ctx.Span)
	return l.ep.Send(to, m)
}

// Start sends the content request to H selected contents peers (DCoP/TCoP
// step 1) and begins the repair monitor. A peer whose request cannot be
// delivered (already crashed) is failed over to an alternate from the
// roster; Start errors only when the roster is exhausted before H peers
// accept delivery.
func (l *Leaf) Start() error {
	l.mu.Lock()
	selIdx, spareIdx := engine.SelectInitial(l.rng, len(l.cfg.Roster), l.cfg.H)
	l.sessionStart = liveNow()
	var root span.Context
	if l.cfg.Spans != nil {
		// Root "session" span on the leaf track (-1); closed in Close.
		// Requests carry its context so every member's handshake nests
		// under it.
		l.sessionSpan = l.cfg.Spans.NextID()
		root = span.Context{Trace: l.cfg.SpanTrace, Span: l.sessionSpan}
	}
	l.mu.Unlock()
	sel := make([]string, len(selIdx))
	for i, id := range selIdx {
		sel[i] = l.cfg.Roster[id]
	}
	spare := make([]string, len(spareIdx))
	for i, id := range spareIdx {
		spare[i] = l.cfg.Roster[id]
	}
	var lastErr error
	for idx := 0; idx < len(sel); idx++ {
		for {
			body := requestBody{
				ContentID: l.cfg.ContentID,
				Rate:      l.cfg.Rate,
				H:         l.cfg.H,
				Interval:  l.cfg.Interval,
				Index:     idx,
				Selected:  sel,
				Leaf:      l.Addr(),
				Roster:    l.cfg.SessionRoster,
			}
			err := l.sendCtx(sel[idx], typeRequest, body, root)
			if err == nil {
				break
			}
			lastErr = err
			l.met.failovers.Inc()
			if len(spare) == 0 {
				return fmt.Errorf("live: request slot %d: roster exhausted: %w", idx, lastErr)
			}
			sel[idx] = spare[0]
			spare = spare[1:]
		}
	}
	if l.cfg.RequestRetry > 0 {
		go l.requestLoop(sel, root)
	}
	if l.cfg.RepairAfter > 0 {
		go l.repairLoop()
	}
	return nil
}

// requestLoop is the datagram-side counterpart of Start's send-error
// failover: every RequestRetry it re-sends the content request to each
// selected peer that has not yet delivered a single data packet, until
// all have or the retry budget is spent. Without it a lost request
// datagram silently killed the slot for the whole session (the
// engine's own deadlines guard the later handshake rounds, but nothing
// guarded round 1's request).
func (l *Leaf) requestLoop(sel []string, root span.Context) {
	retries := l.cfg.RequestRetries
	if retries <= 0 {
		retries = 5
	}
	tick := time.NewTicker(l.cfg.RequestRetry)
	defer tick.Stop()
	for wave := 0; wave < retries; wave++ {
		select {
		case <-l.done:
			return
		case <-l.stopCh:
			return
		case <-tick.C:
		}
		quiet := 0
		for idx, peer := range sel {
			l.mu.Lock()
			heard := !l.lastHeard[peer].IsZero()
			l.mu.Unlock()
			if heard {
				continue
			}
			quiet++
			l.met.retries.Inc()
			body := requestBody{
				ContentID: l.cfg.ContentID,
				Rate:      l.cfg.Rate,
				H:         l.cfg.H,
				Interval:  l.cfg.Interval,
				Index:     idx,
				Selected:  sel,
				Leaf:      l.Addr(),
				Roster:    l.cfg.SessionRoster,
			}
			// Errors are ignored: on a connected transport Start already
			// failed over, and on datagrams there is nothing to hear.
			_ = l.sendCtx(peer, typeRequest, body, root)
		}
		if quiet == 0 {
			return // every slot is streaming
		}
	}
}

// handle processes data packets.
func (l *Leaf) handle(m transport.Msg) {
	if m.Type != typeData {
		return
	}
	var b dataBody
	if m.Decode(&b) != nil {
		return
	}
	l.mu.Lock()
	l.total++
	l.met.arrivals.Inc()
	if !l.gotFirst {
		l.gotFirst = true
		now := liveNow()
		l.met.timeToFirstPacket.Observe(now - l.sessionStart)
		if l.cfg.Spans != nil {
			l.cfg.Spans.Add(span.Span{
				Trace: l.cfg.SpanTrace, ID: l.cfg.Spans.NextID(), Parent: l.sessionSpan,
				Name: "first_packet", Peer: -1, Start: now, End: now,
			})
		}
	}
	l.lastHeard[m.From] = time.Now()
	if b.Pkt.IsData() && b.Pkt.Index > l.maxIdx[m.From] {
		l.maxIdx[m.From] = b.Pkt.Index
	}
	key := b.Pkt.Key()
	if l.seen[key] {
		l.dup++
		l.met.dups.Inc()
		l.mu.Unlock()
		return
	}
	l.seen[key] = true
	before := l.asm.Have()
	l.asm.Add(b.Pkt)
	if l.asm.Have() > before {
		l.lastGain = time.Now()
	}
	l.met.delivered.Set(float64(l.asm.Have()))
	l.met.recovered.Set(float64(l.asm.Recovered()))
	complete := l.asm.Complete()
	l.mu.Unlock()
	if complete {
		l.doneOnce.Do(func() { close(l.done) })
	}
}

// repairTargets orders the roster by how recently each member was heard
// from, most recent first — after churn, the peers still streaming are
// the ones worth asking. Never-heard members sort last in random order.
func (l *Leaf) repairTargets() []string {
	targets := append([]string{}, l.cfg.Roster...)
	l.rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	sort.SliceStable(targets, func(i, j int) bool {
		return l.lastHeard[targets[i]].After(l.lastHeard[targets[j]])
	})
	return targets
}

// repairLoop watches for stalled progress and requests retransmission of
// missing data packets from surviving session members, rotating to an
// alternate when a target is unreachable.
func (l *Leaf) repairLoop() {
	tick := time.NewTicker(l.cfg.RepairAfter / 2)
	defer tick.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-l.stopCh:
			return
		case <-tick.C:
		}
		l.mu.Lock()
		stalled := time.Since(l.lastGain) >= l.cfg.RepairAfter
		var missing []int64
		var targets []string
		if stalled {
			missing = l.asm.Missing()
			stalledFor := time.Since(l.lastGain).Seconds()
			l.lastGain = time.Now() // back off until the next stall
			if len(missing) > 0 {
				l.met.stallDuration.Observe(stalledFor)
				if l.cfg.Spans != nil {
					now := liveNow()
					l.cfg.Spans.Add(span.Span{
						Trace: l.cfg.SpanTrace, ID: l.cfg.Spans.NextID(), Parent: l.sessionSpan,
						Name: "stall", Peer: -1, Start: now - stalledFor, End: now,
						Detail: fmt.Sprintf("%d missing", len(missing)),
					})
				}
				if missing[0] == l.repairFirst {
					// The previous round's leading gap is still open:
					// this is a retry of an unanswered request.
					l.met.retries.Inc()
				}
				l.repairFirst = missing[0]
				targets = l.repairTargets()
			}
		}
		l.mu.Unlock()
		if len(missing) == 0 {
			continue
		}
		const batch = 64
		t := 0
		for off := 0; off < len(missing); off += batch {
			end := off + batch
			if end > len(missing) {
				end = len(missing)
			}
			body := repairBody{ContentID: l.cfg.ContentID, Indices: missing[off:end], Leaf: l.Addr()}
			// Try targets in survivor order until one accepts delivery.
			for tries := 0; tries < len(targets); tries++ {
				peer := targets[t%len(targets)]
				t++
				l.met.repairRequests.Inc()
				if err := l.send(peer, typeRepair, body); err == nil {
					break
				}
				l.met.failovers.Inc()
			}
		}
	}
}

// formatRanges compresses sorted packet indices into "a-b" spans,
// capping the output at a few spans.
func formatRanges(idx []int64, maxSpans int) string {
	if len(idx) == 0 {
		return "none"
	}
	var spans []string
	start, prev := idx[0], idx[0]
	flush := func() {
		if start == prev {
			spans = append(spans, fmt.Sprintf("%d", start))
		} else {
			spans = append(spans, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, k := range idx[1:] {
		if k == prev+1 {
			prev = k
			continue
		}
		flush()
		start, prev = k, k
	}
	flush()
	if len(spans) > maxSpans {
		spans = append(spans[:maxSpans], fmt.Sprintf("+%d more spans", len(spans)-maxSpans))
	}
	return strings.Join(spans, ",")
}

// Wait blocks until the content is complete or the timeout elapses. The
// timeout error names the missing subsequences and the session members
// last seen serving them (with how long ago they went silent), so a test
// or operator can tell churn from congestion.
func (l *Leaf) Wait(timeout time.Duration) error {
	select {
	case <-l.done:
		return nil
	case <-time.After(timeout):
		l.mu.Lock()
		defer l.mu.Unlock()
		want := (int64(l.cfg.ContentSize) + int64(l.cfg.PacketSize) - 1) / int64(l.cfg.PacketSize)
		missing := l.asm.Missing()
		// Peers that served packets but have been silent longest are the
		// presumed-crashed sources of the gaps.
		type src struct {
			addr  string
			ago   time.Duration
			maxIx int64
		}
		var silent []src
		for a, ts := range l.lastHeard {
			silent = append(silent, src{a, time.Since(ts).Round(time.Millisecond), l.maxIdx[a]})
		}
		sort.Slice(silent, func(i, j int) bool { return silent[i].ago > silent[j].ago })
		if len(silent) > 4 {
			silent = silent[:4]
		}
		var who []string
		for _, s := range silent {
			who = append(who, fmt.Sprintf("%s (last heard %s ago, served up to #%d)", s.addr, s.ago, s.maxIx))
		}
		served := "no data packets received"
		if len(who) > 0 {
			served = strings.Join(who, "; ")
		}
		err := fmt.Errorf("live: timeout with %d/%d packets (%d arrivals, %d dup); missing %s; sources: %s",
			l.asm.Have(), want, l.total, l.dup, formatRanges(missing, 6), served)
		if l.cfg.Introspect != nil {
			if extra := l.cfg.Introspect(); extra != "" {
				err = fmt.Errorf("%w; %s", err, extra)
			}
		}
		return err
	}
}

// Done returns a channel closed when reassembly completes. The leaf's
// results (Bytes, Stats) stay readable afterwards, even if the session
// state is reaped from its node.
func (l *Leaf) Done() <-chan struct{} { return l.done }

// Bytes returns the reassembled content once complete.
func (l *Leaf) Bytes() ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.asm.Bytes()
}

// Stats reports arrivals, duplicates and parity recoveries so far.
func (l *Leaf) Stats() (total, dup int64, recovered int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.dup, l.asm.Recovered()
}

// Progress returns how many data packets are present.
func (l *Leaf) Progress() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.asm.Have()
}

// Close stops the leaf, ending the session's root span.
func (l *Leaf) Close() error {
	l.stopped.Do(func() {
		close(l.stopCh)
		l.mu.Lock()
		if l.sessionSpan != 0 {
			l.cfg.Spans.Add(span.Span{
				Trace: l.cfg.SpanTrace, ID: l.sessionSpan,
				Name: "session", Peer: -1, Start: l.sessionStart, End: liveNow(),
				Detail: string(l.cfg.Session),
			})
		}
		l.mu.Unlock()
	})
	return l.ep.Close()
}
