package live

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
	"p2pmss/internal/transport"
)

// LeafConfig configures a live leaf peer.
type LeafConfig struct {
	// Roster lists the contents peers' addresses.
	Roster []string
	// H is how many peers the leaf initially selects.
	H int
	// Interval is the parity interval h.
	Interval int
	// Rate is the content rate in packets per second.
	Rate float64
	// ContentID names the content to request (peers with a Store serve
	// by ID; empty matches a peer's single content).
	ContentID string
	// ContentSize and PacketSize describe the expected content.
	ContentSize, PacketSize int
	// RepairAfter is how long the leaf waits without progress before
	// asking a random peer to retransmit missing packets. Zero disables
	// repair.
	RepairAfter time.Duration
	// Seed seeds peer selection; 0 uses the clock.
	Seed int64
	// Metrics, when non-nil, receives the leaf's counters (arrivals,
	// duplicates, repair requests) and delivery-progress gauges.
	Metrics *metrics.Registry
}

// Leaf is a live leaf peer LP_s: it requests a content from H contents
// peers, reassembles arrivals (with parity recovery), and optionally
// issues repair requests for stragglers.
type Leaf struct {
	cfg LeafConfig
	ep  transport.Endpoint
	rng *rand.Rand
	met leafMetrics

	mu       sync.Mutex
	asm      *content.Assembler
	total    int64
	dup      int64
	seen     map[string]bool
	lastGain time.Time
	done     chan struct{}
	doneOnce sync.Once

	stopCh  chan struct{}
	stopped sync.Once
}

// NewLeaf creates a leaf attached via the given transport constructor.
func NewLeaf(cfg LeafConfig, attach func(transport.Handler) (transport.Endpoint, error)) (*Leaf, error) {
	if cfg.H <= 0 || cfg.H > len(cfg.Roster) {
		return nil, fmt.Errorf("live: H=%d must be in 1..len(roster)=%d", cfg.H, len(cfg.Roster))
	}
	if cfg.Interval <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("live: interval and rate must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	l := &Leaf{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		asm:      content.NewAssembler(cfg.ContentSize, cfg.PacketSize),
		seen:     make(map[string]bool),
		lastGain: time.Now(),
		done:     make(chan struct{}),
		stopCh:   make(chan struct{}),
	}
	ep, err := attach(l.handle)
	if err != nil {
		return nil, err
	}
	l.ep = ep
	l.met = newLeafMetrics(cfg.Metrics)
	return l, nil
}

// Addr returns the leaf's transport address.
func (l *Leaf) Addr() string { return l.ep.Name() }

// Start sends the content request to H randomly selected contents peers
// (DCoP/TCoP step 1) and begins the repair monitor.
func (l *Leaf) Start() error {
	roster := append([]string{}, l.cfg.Roster...)
	l.rng.Shuffle(len(roster), func(i, j int) { roster[i], roster[j] = roster[j], roster[i] })
	sel := roster[:l.cfg.H]
	for idx, addr := range sel {
		body := requestBody{
			ContentID: l.cfg.ContentID,
			Rate:      l.cfg.Rate,
			H:         l.cfg.H,
			Interval:  l.cfg.Interval,
			Index:     idx,
			Selected:  sel,
			Leaf:      l.Addr(),
		}
		m, err := transport.Encode(typeRequest, l.Addr(), body)
		if err != nil {
			return err
		}
		if err := l.ep.Send(addr, m); err != nil {
			return fmt.Errorf("live: request to %s: %w", addr, err)
		}
	}
	if l.cfg.RepairAfter > 0 {
		go l.repairLoop()
	}
	return nil
}

// handle processes data packets.
func (l *Leaf) handle(m transport.Msg) {
	if m.Type != typeData {
		return
	}
	var b dataBody
	if m.Decode(&b) != nil {
		return
	}
	l.mu.Lock()
	l.total++
	l.met.arrivals.Inc()
	key := b.Pkt.Key()
	if l.seen[key] {
		l.dup++
		l.met.dups.Inc()
		l.mu.Unlock()
		return
	}
	l.seen[key] = true
	before := l.asm.Have()
	l.asm.Add(b.Pkt)
	if l.asm.Have() > before {
		l.lastGain = time.Now()
	}
	l.met.delivered.Set(float64(l.asm.Have()))
	l.met.recovered.Set(float64(l.asm.Recovered()))
	complete := l.asm.Complete()
	l.mu.Unlock()
	if complete {
		l.doneOnce.Do(func() { close(l.done) })
	}
}

// repairLoop watches for stalled progress and requests retransmission of
// missing data packets from randomly chosen peers.
func (l *Leaf) repairLoop() {
	tick := time.NewTicker(l.cfg.RepairAfter / 2)
	defer tick.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-l.stopCh:
			return
		case <-tick.C:
		}
		l.mu.Lock()
		stalled := time.Since(l.lastGain) >= l.cfg.RepairAfter
		var missing []int64
		if stalled {
			missing = l.asm.Missing()
			l.lastGain = time.Now() // back off until the next stall
		}
		l.mu.Unlock()
		if len(missing) == 0 {
			continue
		}
		const batch = 64
		for off := 0; off < len(missing); off += batch {
			end := off + batch
			if end > len(missing) {
				end = len(missing)
			}
			peer := l.cfg.Roster[l.rng.Intn(len(l.cfg.Roster))]
			m, err := transport.Encode(typeRepair, l.Addr(), repairBody{ContentID: l.cfg.ContentID, Indices: missing[off:end], Leaf: l.Addr()})
			if err == nil {
				l.met.repairRequests.Inc()
				l.ep.Send(peer, m) //nolint:errcheck // dead peers are retried on the next stall
			}
		}
	}
}

// Wait blocks until the content is complete or the timeout elapses.
func (l *Leaf) Wait(timeout time.Duration) error {
	select {
	case <-l.done:
		return nil
	case <-time.After(timeout):
		l.mu.Lock()
		defer l.mu.Unlock()
		return fmt.Errorf("live: timeout with %d/%d packets (%d arrivals, %d dup)",
			l.asm.Have(), (int64(l.cfg.ContentSize)+int64(l.cfg.PacketSize)-1)/int64(l.cfg.PacketSize), l.total, l.dup)
	}
}

// Bytes returns the reassembled content once complete.
func (l *Leaf) Bytes() ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.asm.Bytes()
}

// Stats reports arrivals, duplicates and parity recoveries so far.
func (l *Leaf) Stats() (total, dup int64, recovered int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.dup, l.asm.Recovered()
}

// Progress returns how many data packets are present.
func (l *Leaf) Progress() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.asm.Have()
}

// Close stops the leaf.
func (l *Leaf) Close() error {
	l.stopped.Do(func() { close(l.stopCh) })
	return l.ep.Close()
}
