package live

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

// Regression for the effect-recycling contract: dispatchCtx releases the
// engine's effect nodes BEFORE the transmissions they produced are
// performed, relying on encodeLocked having copied everything a send
// needs out of the pooled nodes. A bounded blocking fabric keeps those
// sends in flight (parked on a full queue, outside the peer lock) while
// timers and deliveries keep dispatching into the same peer — every such
// dispatch reuses the just-released nodes and overwrites their fields.
// If any outSend still aliased pooled memory, the race detector would
// flag the concurrent write (and the leaf would reassemble corrupted
// bytes); the session must instead complete exactly.
func TestEffectRecycleWithQueuedSendsInFlight(t *testing.T) {
	for _, proto := range []Protocol{protocol.DCoP, protocol.TCoP} {
		t.Run(string(proto), func(t *testing.T) {
			data := randomData(6000, 53)
			c, err := StartCluster(ClusterConfig{
				Content:     content.New("m", data, 64),
				Peers:       8,
				H:           3,
				Interval:    2,
				Rate:        600,
				Protocol:    proto,
				QueueCap:    1, // every burst of sends blocks mid-flight
				QueuePolicy: transport.QueueBlock,
				Seed:        5,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Wait(20 * time.Second); err != nil {
				t.Fatal(err)
			}
			got, ok := c.Bytes()
			if !ok || !bytes.Equal(got, data) {
				t.Fatal("content corrupted under queued sends + effect recycling")
			}
		})
	}
}

// The same window under drop-newest: a full queue must only lose whole
// messages (repair recovers them), never deliver frames assembled from
// recycled effect memory.
func TestEffectRecycleWithDroppingQueue(t *testing.T) {
	data := randomData(4000, 54)
	c, err := StartCluster(ClusterConfig{
		Content:     content.New("m", data, 64),
		Peers:       6,
		H:           3,
		Interval:    2,
		Rate:        400,
		Protocol:    protocol.DCoP,
		QueueCap:    64,
		QueuePolicy: transport.QueueDropNewest,
		RepairAfter: 250 * time.Millisecond,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Wait(20 * time.Second); err != nil {
		t.Fatal(fmt.Errorf("session did not complete under dropping queue: %w", err))
	}
	got, ok := c.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("content corrupted under dropping queue + effect recycling")
	}
}
