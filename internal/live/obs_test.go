package live

import (
	"bytes"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/span"
	"p2pmss/internal/transport"
)

// A cluster configured through the consolidated Obs bundle must stream
// to completion with every observer live: the registry fills with
// counters, the collector with spans, and the flight set with per-peer
// engine events.
func TestClusterObsBundle(t *testing.T) {
	data := randomData(5000, 47)
	o := obs.Observability{
		Metrics: metrics.New(),
		Spans:   span.NewCollector(),
		Flight:  flight.NewSet(256),
	}
	c, err := StartCluster(ClusterConfig{
		Content:  content.New("m", data, 64),
		Peers:    6,
		H:        3,
		Interval: 2,
		Rate:     400,
		Seed:     3,
		Obs:      o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("cluster content mismatch")
	}
	if snap := o.Metrics.Snapshot(); len(snap.Counters) == 0 {
		t.Error("Obs.Metrics recorded nothing")
	}
	if len(o.Spans.Spans()) == 0 {
		t.Error("Obs.Spans recorded nothing")
	}
	if len(o.Flight.Events()) == 0 {
		t.Error("Obs.Flight recorded nothing")
	}
}

// A standalone peer given Obs.Flight (a whole set) resolves its own
// per-(session, roster-index) recorder at start — the set ends up with
// events from every peer without any caller-side Recorder plumbing.
func TestPeerObsFlightResolution(t *testing.T) {
	data := randomData(2000, 48)
	f := transport.NewFabric()
	c := content.New("movie", data, 64)
	names := []string{"a", "b", "c", "d", "e"}
	set := flight.NewSet(256)
	var peers []*Peer
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content:  c,
			Roster:   names,
			H:        3,
			Interval: 2,
			Delta:    5 * time.Millisecond,
			Seed:     int64(i) + 1,
			Obs:      obs.Observability{Flight: set},
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	leaf, err := NewLeaf(LeafConfig{
		Roster:      names,
		H:           3,
		Interval:    2,
		Rate:        400,
		ContentSize: len(data),
		PacketSize:  64,
		RepairAfter: 300 * time.Millisecond,
		Seed:        99,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	events := set.Events()
	if len(events) == 0 {
		t.Fatal("Obs.Flight recorded nothing")
	}
	recorded := make(map[int]bool)
	for _, e := range events {
		recorded[e.Peer] = true
	}
	// The leaf selects H=3 of 5 peers; at minimum those participated and
	// must have resolved distinct recorders from the shared set.
	if len(recorded) < 3 {
		t.Fatalf("events from %d peers, want >= 3 (got %v)", len(recorded), recorded)
	}
}
