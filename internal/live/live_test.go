package live

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

// buildFabricSession wires n peers and a leaf over an in-memory fabric.
func buildFabricSession(t *testing.T, n, H, interval int, data []byte, packetSize int, seed int64) (*transport.Fabric, []*Peer, *Leaf) {
	t.Helper()
	f := transport.NewFabric()
	c := content.New("movie", data, packetSize)

	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	peers := make([]*Peer, n)
	for i, name := range names {
		cfg := PeerConfig{
			Content:  c,
			Roster:   names,
			H:        H,
			Interval: interval,
			Delta:    5 * time.Millisecond,
			Seed:     seed + int64(i) + 1,
		}
		p, err := NewPeer(cfg, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	leaf, err := NewLeaf(LeafConfig{
		Roster:      names,
		H:           H,
		Interval:    interval,
		Rate:        400, // packets per second
		ContentSize: len(data),
		PacketSize:  packetSize,
		RepairAfter: 300 * time.Millisecond,
		Seed:        seed + 1000,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	return f, peers, leaf
}

func randomData(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestLiveStreamingComplete(t *testing.T) {
	data := randomData(6000, 1)
	_, peers, leaf := buildFabricSession(t, 8, 3, 2, data, 64, 10)
	defer leaf.Close()
	defer closeAll(peers)

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ")
	}
	// Multiple peers should actually have transmitted.
	active := 0
	for _, p := range peers {
		if p.Sent() > 0 {
			active++
		}
	}
	if active < 3 {
		t.Errorf("only %d peers transmitted", active)
	}
}

func TestLiveStreamingSurvivesPeerCrash(t *testing.T) {
	data := randomData(8000, 2)
	_, peers, leaf := buildFabricSession(t, 8, 4, 2, data, 64, 20)
	defer leaf.Close()
	defer closeAll(peers)

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	// Crash two transmitting peers shortly after streaming begins.
	time.Sleep(150 * time.Millisecond)
	crashed := 0
	for _, p := range peers {
		if p.Active() && crashed < 2 {
			p.Close()
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("no active peer to crash")
	}
	if err := leaf.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ after crash")
	}
}

func TestLiveStreamingWithLoss(t *testing.T) {
	data := randomData(5000, 3)
	f, peers, leaf := buildFabricSession(t, 6, 3, 2, data, 64, 30)
	defer leaf.Close()
	defer closeAll(peers)

	// 5% message loss on the fabric (control and data alike). Drop is
	// called from many sender goroutines, so the RNG needs a lock.
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(99))
	f.Drop = func(from, to string) bool {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < 0.05
	}

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ under loss")
	}
}

func TestLiveOverTCP(t *testing.T) {
	data := randomData(3000, 4)
	c := content.New("movie", data, 128)
	const n, H, interval = 5, 3, 2

	// First bind all peer listeners to learn their addresses.
	var eps []*tcpLate
	var roster []string
	for i := 0; i < n; i++ {
		late := &tcpLate{}
		ep, err := transport.ListenTCP("127.0.0.1:0", late.dispatch)
		if err != nil {
			t.Fatal(err)
		}
		late.ep = ep
		eps = append(eps, late)
		roster = append(roster, ep.Name())
	}
	var peers []*Peer
	for i, late := range eps {
		p, err := NewPeer(PeerConfig{
			Content:  c,
			Roster:   roster,
			H:        H,
			Interval: interval,
			Delta:    10 * time.Millisecond,
			Seed:     int64(i) + 1,
		}, WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
			late.set(h)
			return late.ep, nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)

	leafLate := &tcpLate{}
	lep, err := transport.ListenTCP("127.0.0.1:0", leafLate.dispatch)
	if err != nil {
		t.Fatal(err)
	}
	leafLate.ep = lep
	leaf, err := NewLeaf(LeafConfig{
		Roster:      roster,
		H:           H,
		Interval:    interval,
		Rate:        400,
		ContentSize: len(data),
		PacketSize:  128,
		RepairAfter: 400 * time.Millisecond,
		Seed:        77,
	}, WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
		leafLate.set(h)
		return leafLate.ep, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("TCP reassembly differs")
	}
}

// tcpLate lets the TCP listener start before the peer exists by swapping
// the handler in afterwards.
type tcpLate struct {
	ep *transport.TCPEndpoint
	mu chan struct{}
	h  transport.Handler
}

func (l *tcpLate) set(h transport.Handler) { l.h = h }
func (l *tcpLate) dispatch(m transport.Msg) {
	if l.h != nil {
		l.h(m)
	}
}

func TestLeafConfigValidation(t *testing.T) {
	attach := WithFabric(transport.NewFabric(), "x")
	if _, err := NewLeaf(LeafConfig{Roster: []string{"a"}, H: 2, Interval: 1, Rate: 1}, attach); err == nil {
		t.Error("H > roster accepted")
	}
	if _, err := NewLeaf(LeafConfig{Roster: []string{"a"}, H: 1, Interval: 0, Rate: 1}, attach); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestPeerConfigValidation(t *testing.T) {
	attach := WithFabric(transport.NewFabric(), "x")
	if _, err := NewPeer(PeerConfig{H: 1, Interval: 1}, attach); err == nil {
		t.Error("nil content accepted")
	}
	c := content.New("x", []byte("data"), 2)
	if _, err := NewPeer(PeerConfig{Content: c, H: 0, Interval: 1}, attach); err == nil {
		t.Error("zero H accepted")
	}
}

func closeAll(peers []*Peer) {
	for _, p := range peers {
		p.Close()
	}
}

// Live DCoP: redundant single-round assignment with merge semantics
// still delivers the content byte-for-byte.
func TestLiveDCoPStreamingComplete(t *testing.T) {
	data := randomData(6000, 11)
	f := transport.NewFabric()
	c := content.New("movie", data, 64)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var peers []*Peer
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content:  c,
			Roster:   names,
			H:        3,
			Interval: 2,
			Delta:    5 * time.Millisecond,
			Protocol: protocol.DCoP,
			Seed:     int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)
	leaf, err := NewLeaf(LeafConfig{
		Roster:      names,
		H:           3,
		Interval:    2,
		Rate:        400,
		ContentSize: len(data),
		PacketSize:  64,
		RepairAfter: 300 * time.Millisecond,
		Seed:        123,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("DCoP live reassembly differs")
	}
}

func TestLivePeerProtocolValidation(t *testing.T) {
	attach := WithFabric(transport.NewFabric(), "x")
	c := content.New("x", []byte("data"), 2)
	if _, err := NewPeer(PeerConfig{Content: c, H: 1, Interval: 1, Protocol: "bogus"}, attach); err == nil {
		t.Error("bogus protocol accepted")
	}
	p, err := NewPeer(PeerConfig{Content: c, H: 1, Interval: 1}, attach)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.cfg.Protocol != protocol.TCoP {
		t.Errorf("default protocol = %q", p.cfg.Protocol)
	}
}
