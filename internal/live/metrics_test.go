package live

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
)

// scrape GETs url and returns each non-comment sample line as
// series -> value.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumSeries totals all series of one metric family (any label set).
func sumSeries(samples map[string]float64, family string) (total float64, n int) {
	for series, v := range samples {
		if series == family || strings.HasPrefix(series, family+"{") {
			total += v
			n++
		}
	}
	return total, n
}

// TestClusterMetricsScrapeMidStream is the issue's acceptance test: a
// live session instrumented on a shared registry serves Prometheus-format
// /metrics over HTTP, and a scrape taken while the stream is in flight
// shows non-zero data-packets-sent and leaf-delivery counters.
func TestClusterMetricsScrapeMidStream(t *testing.T) {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	reg := metrics.New()
	cl, err := StartCluster(ClusterConfig{
		Content:  content.New("movie", data, 256),
		Peers:    8,
		H:        3,
		Interval: 4,
		Rate:     600,
		Seed:     42,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	srv := httptest.NewServer(metrics.DebugMux(reg))
	defer srv.Close()

	// Wait until the stream is demonstrably mid-flight: the leaf holds
	// some packets but (typically) not yet all of them.
	deadline := time.Now().Add(10 * time.Second)
	for cl.Leaf.Progress() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no delivery progress within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}

	samples := scrape(t, srv.URL+"/metrics")
	sent, series := sumSeries(samples, "live_data_packets_sent_total")
	if sent <= 0 || series == 0 {
		t.Errorf("live_data_packets_sent_total: want >0 across >0 series, got %v across %d", sent, series)
	}
	if v := samples["live_leaf_delivered_packets"]; v <= 0 {
		t.Errorf("live_leaf_delivered_packets = %v, want > 0", v)
	}
	if v, _ := sumSeries(samples, "live_leaf_arrivals_total"); v <= 0 {
		t.Errorf("live_leaf_arrivals_total = %v, want > 0", v)
	}
	if v, _ := sumSeries(samples, "transport_messages_sent_total"); v <= 0 {
		t.Errorf("transport_messages_sent_total = %v, want > 0", v)
	}

	// The sidecar endpoints serve too.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Errorf("/healthz = %q, want ok", body)
	}

	if err := cl.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// After completion the delivered gauge matches the leaf's own count.
	final := scrape(t, srv.URL+"/metrics")
	if v := final["live_leaf_delivered_packets"]; int64(v) != cl.Leaf.Progress() {
		t.Errorf("delivered gauge %v != leaf progress %d", v, cl.Leaf.Progress())
	}
}

// TestClusterMetricsTCP exercises the TCP transport counters end to end.
func TestClusterMetricsTCP(t *testing.T) {
	data := make([]byte, 8<<10)
	for i := range data {
		data[i] = byte(i)
	}
	reg := metrics.New()
	cl, err := StartCluster(ClusterConfig{
		Content:  content.New("clip", data, 256),
		Peers:    4,
		H:        2,
		Interval: 4,
		Rate:     2000,
		UseTCP:   true,
		Seed:     7,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var sent, received int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "transport_messages_sent_total":
			sent += c.Value
		case "transport_messages_received_total":
			received += c.Value
		}
	}
	if sent == 0 || received == 0 {
		t.Errorf("tcp transport counters: sent=%d received=%d, want both > 0", sent, received)
	}
}
