package live

import (
	"fmt"

	"p2pmss/internal/transport"
)

// Transport selects how a live peer, leaf or node attaches to the
// network. Construct one with WithFabric, WithTCP or WithAttach and pass
// it to NewPeer, NewLeaf or NewNode; the option hides the
// handler-inversion plumbing the old attach-callback API exposed.
type Transport interface {
	// open registers the participant's inbound handler and returns its
	// endpoint. The method is unexported so the option set stays closed.
	open(h transport.Handler) (transport.Endpoint, error)
}

// transportFunc adapts a plain attach function to the Transport option.
type transportFunc func(transport.Handler) (transport.Endpoint, error)

func (f transportFunc) open(h transport.Handler) (transport.Endpoint, error) { return f(h) }

// WithFabric attaches the participant to the in-memory fabric under the
// given endpoint name.
func WithFabric(f *transport.Fabric, name string) Transport {
	return transportFunc(func(h transport.Handler) (transport.Endpoint, error) {
		if f == nil {
			return nil, fmt.Errorf("live: WithFabric(nil)")
		}
		return f.Endpoint(name, h), nil
	})
}

// WithTCP attaches the participant to its own TCP listener on addr
// (e.g. "127.0.0.1:0"); the endpoint's name is the bound address.
func WithTCP(addr string) Transport {
	return transportFunc(func(h transport.Handler) (transport.Endpoint, error) {
		return transport.ListenTCP(addr, h)
	})
}

// WithUDP attaches the participant to its own UDP socket on addr
// (e.g. "127.0.0.1:0"); the endpoint's name is the bound address.
// Datagram semantics apply: sends never report delivery failure, so the
// participant's liveness rests on its timer deadlines and §3.2 parity,
// not on transport errors.
func WithUDP(addr string) Transport {
	return transportFunc(func(h transport.Handler) (transport.Endpoint, error) {
		return transport.ListenUDP(addr, h)
	})
}

// WithAttach adapts the legacy attach-callback form (the function
// receives the participant's handler and returns its endpoint). It
// exists so pre-Transport callers and endpoints bound before their
// participant (e.g. TCP listeners whose address the roster needs) keep
// working.
func WithAttach(attach func(transport.Handler) (transport.Endpoint, error)) Transport {
	if attach == nil {
		return transportFunc(func(transport.Handler) (transport.Endpoint, error) {
			return nil, fmt.Errorf("live: WithAttach(nil)")
		})
	}
	return transportFunc(attach)
}
