package live

import (
	"fmt"
	"runtime/metrics"
	"sync"
	"testing"

	"p2pmss/internal/transport"
)

// mutexWaitSeconds reads the runtime's cumulative mutex-blocking time —
// the direct measure of lock contention, independent of how many cores
// the machine has.
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

// BenchmarkNodeSessionLookup measures the hot demultiplexing path of a
// node hosting many concurrent sessions: every inbound message performs
// one session lookup. The sharded table is compared against the
// single-mutex design it replaced (one lock in front of the session
// maps) under full parallelism. Besides ns/op, each variant reports
// mutex-wait-ns/op — time goroutines spent blocked on the table locks —
// which is the contention the shard split exists to remove.
func BenchmarkNodeSessionLookup(b *testing.B) {
	const population = 1024
	sids := make([]SessionID, population)
	for i := range sids {
		sids[i] = SessionID(fmt.Sprintf("bench-session-%04d", i))
	}

	b.Run("sharded", func(b *testing.B) {
		store, _ := chaosStore(1, 1<<10, 64, 42)
		f := transport.NewFabric()
		nd, err := NewNode(NodeConfig{
			Store: store, Roster: []string{"b0"}, H: 1, Interval: 2, ReapAfter: -1,
		}, WithFabric(f, "b0"))
		if err != nil {
			b.Fatal(err)
		}
		defer nd.Close()
		// The placeholder leaves are lookup fodder, not real sessions:
		// pull them back out before Close tries to stop them.
		defer func() {
			for _, sid := range sids {
				sh := &nd.shards[shardIndex(sid)]
				sh.mu.Lock()
				delete(sh.leaves, sid)
				sh.mu.Unlock()
			}
		}()
		for _, sid := range sids {
			sh := &nd.shards[shardIndex(sid)]
			sh.mu.Lock()
			sh.leaves[sid] = &Leaf{}
			sh.mu.Unlock()
		}
		b.ResetTimer()
		start := mutexWaitSeconds()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := nd.Leaf(sids[i%population]); !ok {
					b.Fatal("session lost")
				}
				i++
			}
		})
		b.ReportMetric((mutexWaitSeconds()-start)*1e9/float64(b.N), "mutex-wait-ns/op")
	})

	b.Run("single-mutex", func(b *testing.B) {
		base := &singleMutexTable{leaves: make(map[SessionID]*Leaf, population)}
		for _, sid := range sids {
			base.leaves[sid] = &Leaf{}
		}
		b.ResetTimer()
		start := mutexWaitSeconds()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := base.Leaf(sids[i%population]); !ok {
					b.Fatal("session lost")
				}
				i++
			}
		})
		b.ReportMetric((mutexWaitSeconds()-start)*1e9/float64(b.N), "mutex-wait-ns/op")
	})
}

// singleMutexTable replicates the pre-shard Node session table: one
// mutex in front of the maps. Kept as the benchmark baseline.
type singleMutexTable struct {
	mu     sync.Mutex
	leaves map[SessionID]*Leaf
}

func (t *singleMutexTable) Leaf(sid SessionID) (*Leaf, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leaves[sid]
	return l, ok
}
