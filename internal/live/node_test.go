package live

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
	"p2pmss/internal/transport"
)

// chaosStore builds a catalog of n distinct contents.
func chaosStore(n, size, pktSize int, seed int64) (*content.Store, map[string][]byte) {
	store := content.NewStore()
	data := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%d", i)
		b := randomData(size, seed+int64(i))
		store.Put(content.New(id, b, pktSize))
		data[id] = b
	}
	return store, data
}

// TestNodeSessionsChaos is the issue's acceptance test: one node
// population serves 8 concurrent leaf sessions over a single fabric;
// two serving-only nodes crash mid-stream; every session still delivers
// byte-for-byte — via retry/failover, not luck — and the shared registry
// reports per-session retry/failover series.
func TestNodeSessionsChaos(t *testing.T) {
	const sessions = 8
	store, data := chaosStore(sessions, 24<<10, 128, 900)
	reg := metrics.New()
	nc, err := StartNodes(NodesConfig{
		Nodes:            12,
		Store:            store,
		H:                3,
		Interval:         2,
		Delta:            5 * time.Millisecond,
		HandshakeTimeout: 80 * time.Millisecond,
		Seed:             901,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	leaves := make([]*LeafSession, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("c%d", i)
		ls, err := nc.Open(i, SessionConfig{
			ContentID:   id,
			ContentSize: len(data[id]),
			PacketSize:  128,
			Rate:        600,
			RepairAfter: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open session %d: %v", i, err)
		}
		leaves[i] = ls
	}

	// Crash two nodes that serve sessions but host no leaf, while the
	// streams are in flight.
	time.Sleep(250 * time.Millisecond)
	killed := nc.CrashServing(2)
	if killed == 0 {
		t.Fatal("no serving-only node was active to crash")
	}
	t.Logf("crashed %d serving nodes mid-stream", killed)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, ls := range leaves {
		wg.Add(1)
		go func(i int, ls *LeafSession) {
			defer wg.Done()
			errs[i] = ls.Wait(60 * time.Second)
		}(i, ls)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		got, ok := leaves[i].Bytes()
		if !ok || !bytes.Equal(got, data[fmt.Sprintf("c%d", i)]) {
			t.Fatalf("session %d delivered wrong bytes", i)
		}
	}

	// The registry shows per-session series, and the injected churn left
	// retry/failover evidence.
	snap := reg.Snapshot()
	label := func(labels []metrics.Label, key string) string {
		for _, l := range labels {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}
	sessionSeries := map[string]bool{}
	var churnHandled int64
	for _, c := range snap.Counters {
		if sid := label(c.Labels, "session"); sid != "" {
			sessionSeries[sid] = true
			switch c.Name {
			case "live_session_retries_total", "live_session_failovers_total":
				churnHandled += c.Value
			}
		}
	}
	if len(sessionSeries) < sessions {
		t.Errorf("metrics cover %d sessions, want >= %d", len(sessionSeries), sessions)
	}
	if churnHandled == 0 {
		t.Error("no per-session retries/failovers recorded despite injected crashes")
	}
	// The node gauges saw the sessions. Completed leaves are reaped, so
	// every session is either still active or counted by the reaper:
	// active + reaped must account for exactly the sessions opened, and
	// the gauge must never go negative (no double decrement).
	var leafGauge, leafReaped float64
	for _, g := range snap.Gauges {
		if g.Name == "live_node_sessions_active" && label(g.Labels, "role") == "leaf" {
			if g.Value < 0 {
				t.Errorf("live_node_sessions_active{role=leaf,%v} went negative: %v", g.Labels, g.Value)
			}
			leafGauge += g.Value
		}
	}
	for _, c := range snap.Counters {
		if c.Name == "live_node_sessions_reaped_total" && label(c.Labels, "role") == "leaf" {
			leafReaped += float64(c.Value)
		}
	}
	if leafGauge+leafReaped != sessions {
		t.Errorf("leaf sessions active(%v) + reaped(%v) = %v, want %d",
			leafGauge, leafReaped, leafGauge+leafReaped, sessions)
	}
}

// TestNodeJoinMidStream: a node volunteers into an in-flight session and
// is handed a slice of the stream; the session still completes.
func TestNodeJoinMidStream(t *testing.T) {
	store, data := chaosStore(1, 48<<10, 128, 950)
	nc, err := StartNodes(NodesConfig{
		Nodes:    6,
		Store:    store,
		H:        2,
		Interval: 2,
		Delta:    5 * time.Millisecond,
		Seed:     951,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	ls, err := nc.Open(0, SessionConfig{
		ContentID:   "c0",
		ContentSize: len(data["c0"]),
		PacketSize:  128,
		Rate:        800,
		RepairAfter: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// The last node is (very likely) not yet serving this session; even
	// if it is, Join returns its active peer.
	joiner := nc.Nodes[5]
	p, err := joiner.Join(ls.ID, "c0", 5*time.Second)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if !p.Active() {
		t.Fatal("joined peer is not active")
	}
	if err := ls.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := ls.Bytes()
	if !ok || !bytes.Equal(got, data["c0"]) {
		t.Fatal("joined session delivered wrong bytes")
	}
}

// TestMidHandshakeDisconnect closes two candidate children right as the
// TCoP handshake starts: parents must fail over to alternates (or absorb
// the share) and the stream still completes.
func TestMidHandshakeDisconnect(t *testing.T) {
	data := randomData(8000, 5)
	reg := metrics.New()
	f := transport.NewFabric()
	c := content.New("movie", data, 64)
	names := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7", "h8", "h9"}
	var peers []*Peer
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content:          c,
			Roster:           names,
			H:                3,
			Interval:         2,
			Delta:            5 * time.Millisecond,
			HandshakeTimeout: 60 * time.Millisecond,
			Seed:             int64(i) + 1,
			Metrics:          reg,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)
	leaf, err := NewLeaf(LeafConfig{
		Roster:      names,
		H:           3,
		Interval:    2,
		Rate:        400,
		ContentSize: len(data),
		PacketSize:  64,
		RepairAfter: 200 * time.Millisecond,
		Seed:        52,
		Metrics:     reg,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	// Immediately disconnect two peers that have not activated: they are
	// handshake candidates, so controls or commits addressed to them
	// fail mid-round.
	closed := 0
	for _, p := range peers {
		if closed >= 2 {
			break
		}
		if !p.Active() {
			p.Close()
			closed++
		}
	}
	if closed != 2 {
		t.Fatalf("closed %d peers, want 2", closed)
	}
	if err := leaf.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembly differs after mid-handshake disconnects")
	}
	snap := reg.Snapshot()
	var handled int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "live_session_retries_total", "live_session_failovers_total":
			handled += c.Value
		}
	}
	if handled == 0 {
		t.Error("no retries/failovers recorded despite mid-handshake disconnects")
	}
}

// TestWaitTimeoutNamesMissing: when delivery stalls for good, the timeout
// error names the missing subsequences and the peers last seen serving
// them.
func TestWaitTimeoutNamesMissing(t *testing.T) {
	data := randomData(16<<10, 6)
	f := transport.NewFabric()
	c := content.New("movie", data, 64)
	names := []string{"w0", "w1", "w2", "w3"}
	var peers []*Peer
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content: c, Roster: names, H: 2, Interval: 2,
			Delta: 5 * time.Millisecond, Seed: int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)
	leaf, err := NewLeaf(LeafConfig{
		Roster: names, H: 2, Interval: 2, Rate: 400,
		ContentSize: len(data), PacketSize: 64,
		// Repair disabled: a mid-stream wipeout must surface in Wait.
		Seed: 61,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for leaf.Progress() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no progress before crash injection")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, p := range peers {
		p.Close()
	}
	err = leaf.Wait(400 * time.Millisecond)
	if err == nil {
		t.Fatal("Wait succeeded with every peer crashed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "missing") {
		t.Errorf("timeout error lacks missing subsequences: %q", msg)
	}
	if !strings.Contains(msg, "last heard") {
		t.Errorf("timeout error lacks per-peer last-heard info: %q", msg)
	}
	named := false
	for _, name := range names {
		if strings.Contains(msg, name) {
			named = true
			break
		}
	}
	if !named {
		t.Errorf("timeout error names no peer: %q", msg)
	}
}

// TestClusterCloseIdempotent: Close is safe to call repeatedly,
// concurrently with itself, and after CrashActive already stopped peers.
func TestClusterCloseIdempotent(t *testing.T) {
	data := randomData(4000, 7)
	c, err := StartCluster(ClusterConfig{
		Content:  content.New("m", data, 64),
		Peers:    5,
		H:        2,
		Interval: 2,
		Rate:     400,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	c.CrashActive(2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close()
		}()
	}
	wg.Wait()
	c.Close() // and once more after everything stopped
}

// TestNodeCloseIdempotent: Node and NodeCluster Close are idempotent.
func TestNodeCloseIdempotent(t *testing.T) {
	store, _ := chaosStore(1, 1<<10, 64, 970)
	nc, err := StartNodes(NodesConfig{Nodes: 3, Store: store, H: 2, Interval: 2, Seed: 971})
	if err != nil {
		t.Fatal(err)
	}
	nc.Nodes[0].Close()
	nc.Close()
	nc.Close()
	if _, err := nc.Nodes[1].Open(SessionConfig{ContentID: "c0", ContentSize: 1 << 10, PacketSize: 64, Rate: 10}); err == nil {
		t.Error("Open succeeded on a closed node")
	}
}

// TestTCPSendToCrashedEndpointErrors: a send to a crashed (closed) TCP
// endpoint surfaces an error to the caller — the signal the live layer's
// failover logic relies on.
func TestTCPSendToCrashedEndpointErrors(t *testing.T) {
	var mu sync.Mutex
	var got []transport.Msg
	a, err := transport.ListenTCP("127.0.0.1:0", func(m transport.Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenTCP("127.0.0.1:0", func(m transport.Msg) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := transport.Encode("ping", a.Name(), map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Name(), m); err != nil {
		t.Fatalf("send to live endpoint: %v", err)
	}
	addr := b.Name()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// The crashed endpoint must be reported, not silently swallowed —
	// whether the cached connection fails on write or the redial is
	// refused.
	var sendErr error
	for i := 0; i < 10; i++ {
		if sendErr = a.Send(addr, m); sendErr != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("sends to a crashed TCP endpoint kept succeeding")
	}
}
