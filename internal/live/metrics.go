package live

import "p2pmss/internal/metrics"

// withSession appends the session label when the participant is bound to
// one. Standalone (single-session) peers and leaves keep the historical
// unlabeled series, so pre-session dashboards and tests are unaffected.
func withSession(sid SessionID, labels ...string) []string {
	if sid == "" {
		return labels
	}
	return append(labels, "session", string(sid))
}

// peerMetrics holds a contents peer's instrument handles, looked up once
// at construction. The zero value (all nil) records nothing, which is
// what a peer without PeerConfig.Metrics uses.
type peerMetrics struct {
	// sent is labeled by peer address so per-peer transmit load is
	// visible on /metrics; the rest aggregate across the cluster (and,
	// for session-bound peers, per session).
	sent         *metrics.Counter
	handoffs     *metrics.Counter
	activations  *metrics.Counter
	repairServed *metrics.Counter
	// retries counts alternate children contacted after a refusal,
	// unreachable peer, or confirmation-round timeout; failovers counts
	// hand-offs re-absorbed (or join grants abandoned) because the
	// counterpart could not be reached.
	retries   *metrics.Counter
	failovers *metrics.Counter
	// memoEvictions counts payload-memo entries dropped by the LRU bound.
	memoEvictions *metrics.Counter
	// Coordination-latency histograms (seconds), fed by the engine span
	// tracker.
	handshakeRTT   *metrics.Histogram
	commitLatency  *metrics.Histogram
	retryWaveDepth *metrics.Histogram
}

// latencyBounds are the wall-clock histogram buckets (seconds) shared
// by the live coordination-latency series.
var latencyBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

func newPeerMetrics(reg *metrics.Registry, addr string, sid SessionID) peerMetrics {
	return peerMetrics{
		sent:          reg.Counter("live_data_packets_sent_total", withSession(sid, "peer", addr)...),
		handoffs:      reg.Counter("live_handoffs_total", withSession(sid)...),
		activations:   reg.Counter("live_activations_total", withSession(sid)...),
		repairServed:  reg.Counter("live_repair_packets_served_total", withSession(sid)...),
		retries:       reg.Counter("live_session_retries_total", withSession(sid, "role", "peer")...),
		failovers:     reg.Counter("live_session_failovers_total", withSession(sid, "role", "peer")...),
		memoEvictions: reg.Counter("live_payload_memo_evictions_total", withSession(sid)...),

		handshakeRTT:   reg.Histogram("live_handshake_rtt_seconds", latencyBounds, withSession(sid)...),
		commitLatency:  reg.Histogram("live_control_commit_latency_seconds", latencyBounds, withSession(sid)...),
		retryWaveDepth: reg.Histogram("live_retry_wave_depth", []float64{1, 2, 3, 4, 6, 8}, withSession(sid)...),
	}
}

// leafMetrics holds the leaf's instrument handles; same nil-is-disabled
// convention as peerMetrics.
type leafMetrics struct {
	arrivals       *metrics.Counter
	dups           *metrics.Counter
	repairRequests *metrics.Counter
	delivered      *metrics.Gauge
	recovered      *metrics.Gauge
	// retries counts stall rounds that re-requested an already-requested
	// leading gap; failovers counts requests redirected to an alternate
	// peer after a send error (crashed or unknown endpoint).
	retries   *metrics.Counter
	failovers *metrics.Counter
	// timeToFirstPacket observes request→first-data latency;
	// stallDuration observes how long each detected stall lasted before
	// the repair round fired (both in seconds).
	timeToFirstPacket *metrics.Histogram
	stallDuration     *metrics.Histogram
}

func newLeafMetrics(reg *metrics.Registry, sid SessionID) leafMetrics {
	return leafMetrics{
		arrivals:       reg.Counter("live_leaf_arrivals_total", withSession(sid)...),
		dups:           reg.Counter("live_leaf_duplicates_total", withSession(sid)...),
		repairRequests: reg.Counter("live_repair_requests_total", withSession(sid)...),
		delivered:      reg.Gauge("live_leaf_delivered_packets", withSession(sid)...),
		recovered:      reg.Gauge("live_leaf_recovered_packets", withSession(sid)...),
		retries:        reg.Counter("live_session_retries_total", withSession(sid, "role", "leaf")...),
		failovers:      reg.Counter("live_session_failovers_total", withSession(sid, "role", "leaf")...),

		timeToFirstPacket: reg.Histogram("live_time_to_first_packet_seconds", latencyBounds, withSession(sid)...),
		stallDuration:     reg.Histogram("live_stall_duration_seconds", latencyBounds, withSession(sid)...),
	}
}

// nodeMetrics instruments a Node's session multiplexing.
type nodeMetrics struct {
	servingSessions *metrics.Gauge
	leafSessions    *metrics.Gauge
	// servingReaped/leafReaped count idle sessions torn down by the
	// node's reaper (finished leaves; quiesced serving peers).
	servingReaped *metrics.Counter
	leafReaped    *metrics.Counter
	// admissionRejected counts sessions refused by the MaxSessions
	// budget (dropped requests and failed Opens).
	admissionRejected *metrics.Counter
}

func newNodeMetrics(reg *metrics.Registry, addr string) nodeMetrics {
	return nodeMetrics{
		servingSessions:   reg.Gauge("live_node_sessions_active", "node", addr, "role", "peer"),
		leafSessions:      reg.Gauge("live_node_sessions_active", "node", addr, "role", "leaf"),
		servingReaped:     reg.Counter("live_node_sessions_reaped_total", "node", addr, "role", "peer"),
		leafReaped:        reg.Counter("live_node_sessions_reaped_total", "node", addr, "role", "leaf"),
		admissionRejected: reg.Counter("live_node_admission_rejected_total", "node", addr),
	}
}
