package live

import "p2pmss/internal/metrics"

// peerMetrics holds a contents peer's instrument handles, looked up once
// at construction. The zero value (all nil) records nothing, which is
// what a peer without PeerConfig.Metrics uses.
type peerMetrics struct {
	// sent is labeled by peer address so per-peer transmit load is
	// visible on /metrics; the rest aggregate across the cluster.
	sent         *metrics.Counter
	handoffs     *metrics.Counter
	activations  *metrics.Counter
	repairServed *metrics.Counter
}

func newPeerMetrics(reg *metrics.Registry, addr string) peerMetrics {
	return peerMetrics{
		sent:         reg.Counter("live_data_packets_sent_total", "peer", addr),
		handoffs:     reg.Counter("live_handoffs_total"),
		activations:  reg.Counter("live_activations_total"),
		repairServed: reg.Counter("live_repair_packets_served_total"),
	}
}

// leafMetrics holds the leaf's instrument handles; same nil-is-disabled
// convention as peerMetrics.
type leafMetrics struct {
	arrivals       *metrics.Counter
	dups           *metrics.Counter
	repairRequests *metrics.Counter
	delivered      *metrics.Gauge
	recovered      *metrics.Gauge
}

func newLeafMetrics(reg *metrics.Registry) leafMetrics {
	return leafMetrics{
		arrivals:       reg.Counter("live_leaf_arrivals_total"),
		dups:           reg.Counter("live_leaf_duplicates_total"),
		repairRequests: reg.Counter("live_repair_requests_total"),
		delivered:      reg.Gauge("live_leaf_delivered_packets"),
		recovered:      reg.Gauge("live_leaf_recovered_packets"),
	}
}
