package live

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"p2pmss/internal/span"
)

// TestConcurrentSessionsShareOneCollector streams 8 concurrent sessions
// over one node population into a single shared span collector — the
// mssplay -sessions -trace-out configuration. Run under -race this is
// the tracing data-race check; functionally it pins that every session
// lands in its own trace with a session root, member handshakes, and a
// first-packet mark.
func TestConcurrentSessionsShareOneCollector(t *testing.T) {
	const sessions = 8
	store, data := chaosStore(sessions, 8<<10, 128, 700)
	col := span.NewCollector()
	nc, err := StartNodes(NodesConfig{
		Nodes:    10,
		Store:    store,
		H:        3,
		Interval: 2,
		Delta:    5 * time.Millisecond,
		Seed:     701,
		Spans:    col,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	leaves := make([]*LeafSession, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("c%d", i)
		ls, err := nc.Open(i, SessionConfig{
			ContentID:   id,
			ContentSize: len(data[id]),
			PacketSize:  128,
			Rate:        600,
			RepairAfter: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open session %d: %v", i, err)
		}
		leaves[i] = ls
	}
	var wg sync.WaitGroup
	for i, ls := range leaves {
		wg.Add(1)
		go func(i int, ls *LeafSession) {
			defer wg.Done()
			if err := ls.Wait(60 * time.Second); err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			id := fmt.Sprintf("c%d", i)
			if got, ok := ls.Bytes(); !ok || !bytes.Equal(got, data[id]) {
				t.Errorf("session %d delivered wrong bytes", i)
			}
		}(i, ls)
	}
	wg.Wait()
	nc.Close() // finalize dangling spans before reading the collector

	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	type perTrace struct{ session, handshake, firstPacket int }
	byTrace := map[span.TraceID]*perTrace{}
	for _, s := range spans {
		if s.Trace == 0 {
			t.Fatalf("span %+v collected without a trace", s)
		}
		pt := byTrace[s.Trace]
		if pt == nil {
			pt = &perTrace{}
			byTrace[s.Trace] = pt
		}
		switch s.Name {
		case "session":
			pt.session++
		case "handshake":
			pt.handshake++
		case "first_packet":
			pt.firstPacket++
		}
	}
	if len(byTrace) != sessions {
		t.Fatalf("spans span %d traces, want %d (one per session)", len(byTrace), sessions)
	}
	for tr, pt := range byTrace {
		if pt.session != 1 {
			t.Errorf("trace %x: %d session roots, want 1", uint64(tr), pt.session)
		}
		if pt.handshake == 0 {
			t.Errorf("trace %x: no handshake spans", uint64(tr))
		}
		if pt.firstPacket != 1 {
			t.Errorf("trace %x: %d first_packet marks, want 1", uint64(tr), pt.firstPacket)
		}
	}
}
