package live

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
	"p2pmss/internal/transport"
)

// TestPayloadMemoLRU exercises the memo in isolation: recently-used
// entries survive, the oldest entry is evicted at capacity, and every
// eviction is counted.
func TestPayloadMemoLRU(t *testing.T) {
	reg := metrics.New()
	evict := reg.Counter("test_evictions")
	m := payloadMemo{cap: 3, evictions: evict}

	for i := 0; i < 3; i++ {
		m.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if m.len() != 3 {
		t.Fatalf("len = %d, want 3", m.len())
	}
	// Touch k0 so k1 becomes the LRU entry.
	if b, ok := m.get("k0"); !ok || !bytes.Equal(b, []byte{0}) {
		t.Fatalf("get k0 = %v, %v", b, ok)
	}
	m.put("k3", []byte{3})
	if m.len() != 3 {
		t.Fatalf("len after eviction = %d, want 3", m.len())
	}
	if _, ok := m.get("k1"); ok {
		t.Error("k1 survived eviction despite being least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := m.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if got := evict.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Refreshing an existing key must not evict or grow.
	m.put("k2", []byte{42})
	if m.len() != 3 || evict.Value() != 1 {
		t.Errorf("after refresh: len = %d evictions = %d, want 3, 1", m.len(), evict.Value())
	}
	if b, _ := m.get("k2"); !bytes.Equal(b, []byte{42}) {
		t.Errorf("refresh did not replace value: %v", b)
	}
}

// TestPayloadMemoBoundedDuringStreaming streams a content whose packet
// count far exceeds a tiny memo capacity and checks that (a) delivery
// still completes — the memo is a cache, not correctness state — and
// (b) no peer's memo ever ends above its bound, with evictions counted
// in live_payload_memo_evictions_total.
func TestPayloadMemoBoundedDuringStreaming(t *testing.T) {
	const memoCap = 8
	data := randomData(6000, 7) // ~94 packets of 64 bytes
	reg := metrics.New()
	f := transport.NewFabric()
	c := content.New("movie", data, 64)
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	peers := make([]*Peer, len(names))
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content:        c,
			Roster:         names,
			H:              3,
			Interval:       2,
			Delta:          5 * time.Millisecond,
			Seed:           int64(31 + i),
			Metrics:        reg,
			PayloadMemoCap: memoCap,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	leaf, err := NewLeaf(LeafConfig{
		Roster:      names,
		H:           3,
		Interval:    2,
		Rate:        400,
		ContentSize: len(data),
		PacketSize:  64,
		RepairAfter: 300 * time.Millisecond,
		Seed:        1030,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	defer closeAll(peers)

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ under a bounded memo")
	}

	evictions := int64(0)
	for _, p := range peers {
		p.mu.Lock()
		n := p.payloads.len()
		p.mu.Unlock()
		if n > memoCap {
			t.Errorf("peer %s memo holds %d entries, cap %d", p.Addr(), n, memoCap)
		}
		evictions += p.met.memoEvictions.Value()
	}
	if evictions == 0 {
		t.Error("no evictions counted despite packets >> memo capacity")
	}
}
