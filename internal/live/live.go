// Package live runs the paper's multi-source streaming on real
// goroutines and wall-clock time: contents peers are concurrent
// processes exchanging JSON control packets over a transport (in-memory
// or TCP), coordinating with TCoP (§3.5, the default) or DCoP (§3.4) and
// streaming packet payloads to a leaf peer, which reassembles the content
// bytes with parity recovery and a repair round for anything still
// missing (e.g. after a peer crash).
//
// TCoP is the default live protocol because its confirm/commit handshake
// makes stream hand-offs exact — no packet is delegated to a child that
// declines, so the peers' subsequences partition the enhanced content
// and delivery is complete without relying on duplicates. DCoP trades
// duplicates (deduplicated at the leaf) for one-round coordination.
package live

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
	"p2pmss/internal/seq"
	"p2pmss/internal/transport"
)

// Message type tags.
const (
	typeRequest = "request"
	typeControl = "control"
	typeConfirm = "confirm"
	typeCommit  = "commit"
	typeData    = "data"
	typeRepair  = "repair"
)

// requestBody is the leaf's content request.
type requestBody struct {
	ContentID string   `json:"content_id"`
	Rate      float64  `json:"rate"` // packets per second
	H         int      `json:"h"`
	Interval  int      `json:"interval"`
	Index     int      `json:"index"`
	Selected  []string `json:"selected"`
	Leaf      string   `json:"leaf"`
}

// controlBody is TCoP's c1.
type controlBody struct {
	Parent string   `json:"parent"`
	View   []string `json:"view"`
	Leaf   string   `json:"leaf"`
}

// confirmBody is TCoP's confirmation.
type confirmBody struct {
	Child  string `json:"child"`
	Accept bool   `json:"accept"`
}

// commitBody is TCoP's c2 carrying the child's complete derivation.
type commitBody struct {
	Parent    string            `json:"parent"`
	ContentID string            `json:"content_id"`
	Deriv     []content.DivStep `json:"deriv"`
	Rate      float64           `json:"rate"`
	Leaf      string            `json:"leaf"`
}

// dataBody carries one packet.
type dataBody struct {
	Pkt seq.Packet `json:"pkt"`
}

// repairBody asks a peer to retransmit specific data packets.
type repairBody struct {
	ContentID string  `json:"content_id"`
	Indices   []int64 `json:"indices"`
	Leaf      string  `json:"leaf"`
}

// Live protocol names.
const (
	// ProtocolTCoP coordinates with the three-round handshake (§3.5) —
	// hand-offs are exact, so delivery never depends on repair.
	ProtocolTCoP = "tcop"
	// ProtocolDCoP coordinates with single-round redundant flooding
	// (§3.4): children may be assigned by several parents and merge
	// (union) their streams; duplicates are deduplicated at the leaf.
	ProtocolDCoP = "dcop"
)

// PeerConfig configures a live contents peer.
type PeerConfig struct {
	// Content is the peer's copy of the content (every contents peer
	// holds it, per the MSS model). Alternatively (or additionally) set
	// Store to serve a whole catalog of contents by ID.
	Content *content.Content
	// Store is an optional catalog; requests name a ContentID and the
	// peer serves whichever content it holds under that ID.
	Store *content.Store
	// Roster lists the addresses of all contents peers (including this
	// one).
	Roster []string
	// H is the selection fanout.
	H int
	// Interval is the parity interval h for the initial enhancement.
	Interval int
	// Delta is the assumed one-way latency used for marking.
	Delta time.Duration
	// Protocol selects the coordination protocol: ProtocolTCoP
	// (default) or ProtocolDCoP.
	Protocol string
	// Seed seeds the peer's random selection; 0 uses the clock.
	Seed int64
	// Metrics, when non-nil, receives the peer's counters (data packets
	// sent, hand-offs, activations, repair packets served). Several
	// peers may share one registry.
	Metrics *metrics.Registry
}

// Peer is a live contents peer: a TCoP state machine plus a streaming
// goroutine.
type Peer struct {
	cfg PeerConfig
	ep  transport.Endpoint
	rng *rand.Rand
	met peerMetrics

	mu        sync.Mutex
	content   *content.Content // the content currently being served
	view      map[string]bool
	active    bool
	parent    string
	deriv     []content.DivStep
	stream    seq.Sequence
	pos       int
	rate      float64
	leaf      string
	await     int
	confirmed []string
	ctlSent   bool
	final     bool

	// A planned hand-off: applied when pos reaches pendingMark.
	pendingStream seq.Sequence
	pendingMark   int
	pendingRate   float64

	stopCh  chan struct{}
	stopped sync.Once
	wake    chan struct{}

	// Sent counts data packets transmitted (for tests/metrics).
	sent int64
}

// NewPeer creates a live peer attached to the fabric-or-TCP endpoint
// produced by attach. The attach function receives the peer's message
// handler and returns its endpoint (this inversion lets the caller pick
// the transport and address).
func NewPeer(cfg PeerConfig, attach func(transport.Handler) (transport.Endpoint, error)) (*Peer, error) {
	if cfg.Content == nil && cfg.Store == nil {
		return nil, fmt.Errorf("live: peer needs a content or a store")
	}
	if cfg.H <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("live: H=%d and Interval=%d must be positive", cfg.H, cfg.Interval)
	}
	switch cfg.Protocol {
	case "":
		cfg.Protocol = ProtocolTCoP
	case ProtocolTCoP, ProtocolDCoP:
	default:
		return nil, fmt.Errorf("live: unknown protocol %q", cfg.Protocol)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p := &Peer{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		view:   make(map[string]bool),
		stopCh: make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	ep, err := attach(p.handle)
	if err != nil {
		return nil, err
	}
	p.ep = ep
	p.met = newPeerMetrics(cfg.Metrics, ep.Name())
	go p.streamLoop()
	return p, nil
}

// Addr returns the peer's transport address.
func (p *Peer) Addr() string { return p.ep.Name() }

// Sent returns the number of data packets transmitted so far.
func (p *Peer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Active reports whether the peer is transmitting.
func (p *Peer) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Close stops the peer (crash-stop: no goodbye messages).
func (p *Peer) Close() error {
	p.stopped.Do(func() { close(p.stopCh) })
	return p.ep.Close()
}

// handle dispatches inbound messages. It runs on transport goroutines.
func (p *Peer) handle(m transport.Msg) {
	switch m.Type {
	case typeRequest:
		var b requestBody
		if m.Decode(&b) == nil {
			p.onRequest(b)
		}
	case typeControl:
		var b controlBody
		if m.Decode(&b) == nil {
			p.onControl(b)
		}
	case typeConfirm:
		var b confirmBody
		if m.Decode(&b) == nil {
			p.onConfirm(b)
		}
	case typeCommit:
		var b commitBody
		if m.Decode(&b) == nil {
			p.onCommit(b)
		}
	case typeRepair:
		var b repairBody
		if m.Decode(&b) == nil {
			p.onRepair(b)
		}
	}
}

// resolveContent finds the content to serve for a request's ID.
func (p *Peer) resolveContent(id string) (*content.Content, bool) {
	if p.cfg.Store != nil {
		if c, ok := p.cfg.Store.Get(id); ok {
			return c, true
		}
	}
	if c := p.cfg.Content; c != nil && (id == "" || id == c.ID()) {
		return c, true
	}
	return nil, false
}

func (p *Peer) onRequest(b requestBody) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return // we do not hold that content
	}
	p.mu.Lock()
	if p.active {
		p.mu.Unlock()
		return
	}
	p.content = c
	p.leaf = b.Leaf
	p.view[p.Addr()] = true
	for _, s := range b.Selected {
		p.view[s] = true
	}
	p.parent = "leaf"
	p.deriv = []content.DivStep{{Mark: 0, Interval: b.Interval, Parts: b.H, Index: b.Index}}
	p.stream = content.Materialize(c.Sequence(), p.deriv)
	p.pos = 0
	p.rate = b.Rate * float64(b.Interval+1) / float64(b.Interval*b.H)
	p.active = true
	p.mu.Unlock()
	p.met.activations.Inc()
	p.kick()
	p.selectChildren()
}

// selectChildren starts child selection: TCoP's three-round handshake,
// or DCoP's single-round redundant assignment.
func (p *Peer) selectChildren() {
	p.mu.Lock()
	if p.ctlSent {
		p.mu.Unlock()
		return
	}
	var cands []string
	for _, a := range p.cfg.Roster {
		if a != p.Addr() && !p.view[a] {
			cands = append(cands, a)
		}
	}
	p.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > p.cfg.H {
		cands = cands[:p.cfg.H]
	}
	if len(cands) == 0 {
		p.mu.Unlock()
		return
	}
	if p.cfg.Protocol == ProtocolDCoP {
		// DCoP: assign directly, no handshake; children merge.
		p.ctlSent = true
		for _, c := range cands {
			p.view[c] = true
		}
		p.confirmed = cands
		p.final = true
		p.mu.Unlock()
		p.commitShares()
		return
	}
	p.ctlSent = true
	p.await = len(cands)
	for _, c := range cands {
		p.view[c] = true
	}
	vm := []string{p.Addr()}
	vm = append(vm, cands...)
	leaf := p.leaf
	p.mu.Unlock()

	for _, c := range cands {
		m, err := transport.Encode(typeControl, p.Addr(), controlBody{Parent: p.Addr(), View: vm, Leaf: leaf})
		if err == nil {
			p.ep.Send(c, m) //nolint:errcheck // unreachable peers count as refusals via timeout
		}
	}
	// Timeout: finalize with whatever confirmed.
	go func() {
		select {
		case <-time.After(4*p.cfg.Delta + 50*time.Millisecond):
			p.finalize()
		case <-p.stopCh:
		}
	}()
}

func (p *Peer) onControl(b controlBody) {
	p.mu.Lock()
	accept := !p.active && p.parent == ""
	if accept {
		p.parent = b.Parent
		p.leaf = b.Leaf
	}
	p.view[b.Parent] = true
	for _, v := range b.View {
		p.view[v] = true
	}
	p.mu.Unlock()
	m, err := transport.Encode(typeConfirm, p.Addr(), confirmBody{Child: p.Addr(), Accept: accept})
	if err == nil {
		p.ep.Send(b.Parent, m) //nolint:errcheck
	}
}

func (p *Peer) onConfirm(b confirmBody) {
	p.mu.Lock()
	if p.final || p.await == 0 {
		p.mu.Unlock()
		return
	}
	p.await--
	if b.Accept {
		p.confirmed = append(p.confirmed, b.Child)
	}
	done := p.await == 0
	p.mu.Unlock()
	if done {
		p.finalize()
	}
}

// finalize closes TCoP's confirmation phase exactly once.
func (p *Peer) finalize() {
	p.mu.Lock()
	if p.final {
		p.mu.Unlock()
		return
	}
	p.final = true
	p.mu.Unlock()
	p.commitShares()
}

// commitShares splits the stream among this peer and its (confirmed or,
// under DCoP, directly assigned) children exactly at the mark: the
// parent's own switch applies when the transmit position reaches the
// mark, so hand-offs are gap- and duplicate-free.
func (p *Peer) commitShares() {
	p.mu.Lock()
	confirmed := p.confirmed
	if len(confirmed) == 0 {
		p.mu.Unlock()
		return
	}
	k := len(confirmed) + 1
	// Mark far enough ahead that the commit reaches children before
	// their share begins.
	ahead := int(p.rate*p.cfg.Delta.Seconds()*2) + 1
	mark := p.pos + ahead
	step := content.DivStep{Mark: mark, Interval: k, Parts: k}
	parentDeriv := append(append([]content.DivStep{}, p.deriv...), step)
	rate := p.rate * float64(k+1) / float64(k*k)
	leaf := p.leaf
	served := p.content
	p.mu.Unlock()
	if served == nil {
		return
	}

	for u, c := range confirmed {
		d := append([]content.DivStep{}, parentDeriv...)
		d[len(d)-1].Index = u + 1
		m, err := transport.Encode(typeCommit, p.Addr(), commitBody{
			Parent: p.Addr(), ContentID: served.ID(), Deriv: d, Rate: rate, Leaf: leaf,
		})
		if err == nil {
			p.ep.Send(c, m) //nolint:errcheck
		}
	}
	// The parent's own share: applied when pos reaches the mark.
	own := append([]content.DivStep{}, parentDeriv...)
	own[len(own)-1].Index = 0
	ownStream := content.Materialize(served.Sequence(), own)
	p.mu.Lock()
	p.pendingMark = mark
	p.pendingStream = ownStream
	p.pendingRate = rate
	p.mu.Unlock()
	p.met.handoffs.Add(int64(len(confirmed)))
}

// Under DCoP a commit may arrive at an already-active peer (redundant
// parent): the assigned subsequence is merged (unioned) into the unsent
// remainder and the rates add (§3.3's pkt_i := pkt_i ∪ pkt_ji).
func (p *Peer) onCommit(b commitBody) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return
	}
	p.mu.Lock()
	p.content = c
	if p.cfg.Protocol == ProtocolDCoP {
		assigned := content.Materialize(c.Sequence(), b.Deriv)
		if p.active {
			var remaining seq.Sequence
			if p.pos < len(p.stream) {
				remaining = p.stream[p.pos:].Clone()
			}
			p.stream = seq.Union(remaining, assigned)
			p.pos = 0
			p.rate += b.Rate
			p.mu.Unlock()
			p.kick()
			return
		}
		p.leaf = b.Leaf
		p.deriv = b.Deriv
		p.stream = assigned
		p.pos = 0
		p.rate = b.Rate
		p.active = true
		p.mu.Unlock()
		p.met.activations.Inc()
		p.kick()
		p.selectChildren()
		return
	}
	if p.active || p.parent != b.Parent {
		p.mu.Unlock()
		return
	}
	p.leaf = b.Leaf
	p.deriv = b.Deriv
	p.stream = content.Materialize(c.Sequence(), b.Deriv)
	p.pos = 0
	p.rate = b.Rate
	p.active = true
	p.mu.Unlock()
	p.met.activations.Inc()
	p.kick()
	p.selectChildren()
}

// onRepair retransmits the requested data packets immediately.
func (p *Peer) onRepair(b repairBody) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return
	}
	for _, k := range b.Indices {
		if k < 1 || k > c.NumPackets() {
			continue
		}
		m, err := transport.Encode(typeData, p.Addr(), dataBody{Pkt: c.Packet(k)})
		if err == nil {
			p.ep.Send(b.Leaf, m) //nolint:errcheck
			p.mu.Lock()
			p.sent++
			p.mu.Unlock()
			p.met.sent.Inc()
			p.met.repairServed.Inc()
		}
	}
}

// kick wakes the streaming loop after an assignment change.
func (p *Peer) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// streamLoop transmits the current stream at the current rate.
func (p *Peer) streamLoop() {
	for {
		p.mu.Lock()
		active := p.active && p.pos < len(p.stream)
		rate := p.rate
		p.mu.Unlock()
		if !active {
			select {
			case <-p.stopCh:
				return
			case <-p.wake:
				continue
			}
		}
		interval := time.Duration(float64(time.Second) / rate)
		if interval < 50*time.Microsecond {
			interval = 50 * time.Microsecond
		}
		select {
		case <-p.stopCh:
			return
		case <-time.After(interval):
		}
		p.sendOne()
	}
}

func (p *Peer) sendOne() {
	p.mu.Lock()
	// Apply a pending hand-off exactly at its mark.
	if p.pendingStream != nil && p.pos >= p.pendingMark {
		p.stream = p.pendingStream
		p.pos = 0
		p.rate = p.pendingRate
		p.pendingStream = nil
	}
	if p.pos >= len(p.stream) {
		p.mu.Unlock()
		return
	}
	pkt := p.stream[p.pos]
	p.pos++
	p.sent++
	leaf := p.leaf
	p.mu.Unlock()
	p.met.sent.Inc()
	m, err := transport.Encode(typeData, p.Addr(), dataBody{Pkt: pkt})
	if err == nil {
		p.ep.Send(leaf, m) //nolint:errcheck
	}
}
