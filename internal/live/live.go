// Package live runs the paper's multi-source streaming on real
// goroutines and wall-clock time: contents peers are concurrent
// processes exchanging JSON control packets over a transport (in-memory
// or TCP), coordinating with TCoP (§3.5, the default) or DCoP (§3.4) and
// streaming packet payloads to a leaf peer, which reassembles the content
// bytes with parity recovery and a repair round for anything still
// missing (e.g. after a peer crash).
//
// TCoP is the default live protocol because its confirm/commit handshake
// makes stream hand-offs exact — no packet is delegated to a child that
// declines, so the peers' subsequences partition the enhanced content
// and delivery is complete without relying on duplicates. DCoP trades
// duplicates (deduplicated at the leaf) for one-round coordination.
//
// Coordination is churn-tolerant: every handshake round has an explicit
// deadline, a child that refuses, cannot be reached, or stays silent is
// replaced by an alternate peer under a bounded retry budget, a hand-off
// whose commit cannot be delivered is re-absorbed by the parent, and a
// peer may join an in-flight stream (Node.Join) and be handed a slice.
//
// The protocol transitions themselves live in internal/engine, shared
// with the simulator; this package is the wall-clock driver. A Peer
// decodes transport messages into engine events, translates roster
// addresses to engine peer ids, hydrates payload-stripped sequences from
// its content copy, and applies the engine's effects: Send becomes a
// JSON message, SetTimer a time.AfterFunc, Activate/Merge/Handoff
// operations on the streaming goroutine's sequence.
//
// A Node hosts a content.Store on one endpoint and multiplexes many
// concurrent sessions — serving some as a contents peer and consuming
// others as a leaf — keyed by the SessionID carried in transport.Msg.
package live

import (
	"container/list"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/engine"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/parity"
	"p2pmss/internal/protocol"
	"p2pmss/internal/seq"
	"p2pmss/internal/span"
	"p2pmss/internal/transport"
)

// liveEpoch anchors span timestamps: every participant in the process
// measures span time as seconds since this instant, so the tracks of
// one session (and of concurrent sessions) share a time base in the
// exported trace.
var liveEpoch = time.Now()

// liveNow returns the current span timestamp (seconds since liveEpoch).
func liveNow() float64 { return time.Since(liveEpoch).Seconds() }

// Message type tags.
const (
	typeRequest = "request"
	typeControl = "control"
	typeConfirm = "confirm"
	typeCommit  = "commit"
	typeData    = "data"
	typeRepair  = "repair"
	typeJoin    = "join"
	// typeAnnounce is session-less node traffic: a discovery catalog
	// announcement (internal/disco) riding the node's endpoint.
	typeAnnounce = "announce"
)

// requestBody is the leaf's content request. Roster carries the
// session's resolved membership when it was discovered dynamically
// (gossip directory) instead of configured statically: the receiving
// node cannot otherwise know which peer numbering the session runs
// under. Static sessions leave it empty, keeping their wire bytes
// identical to the pre-discovery protocol.
type requestBody struct {
	ContentID string   `json:"content_id"`
	Rate      float64  `json:"rate"` // packets per second
	H         int      `json:"h"`
	Interval  int      `json:"interval"`
	Index     int      `json:"index"`
	Selected  []string `json:"selected"`
	Leaf      string   `json:"leaf"`
	Roster    []string `json:"roster,omitempty"`
}

// controlBody is the control packet c1 — engine.MsgControl on the wire,
// with peers named by address and the assigned sequence payload-stripped
// (the receiver re-derives payloads from its own content copy).
type controlBody struct {
	Parent    string       `json:"parent"`
	View      []string     `json:"view"`
	Leaf      string       `json:"leaf"`
	ContentID string       `json:"content_id,omitempty"`
	SeqOffset int          `json:"seq_offset"`
	Rate      float64      `json:"rate"`
	ChildRate float64      `json:"child_rate,omitempty"`
	Children  int          `json:"children"`
	ChildIdx  int          `json:"child_idx,omitempty"`
	Assigned  seq.Sequence `json:"assigned,omitempty"`
	Round     int          `json:"round"`
	// Roster propagates a discovered session membership (see
	// requestBody.Roster); empty on static sessions.
	Roster []string `json:"roster,omitempty"`
}

// confirmBody is TCoP's confirmation cc1.
type confirmBody struct {
	Child  string `json:"child"`
	Accept bool   `json:"accept"`
	Round  int    `json:"round"`
}

// commitBody is TCoP's c2 (and the mid-stream join grant), carrying the
// child's payload-stripped subsequence.
type commitBody struct {
	Parent    string       `json:"parent"`
	ContentID string       `json:"content_id"`
	Leaf      string       `json:"leaf"`
	Streams   int          `json:"streams"`
	SeqOffset int          `json:"seq_offset"`
	Rate      float64      `json:"rate"`
	ChildIdx  int          `json:"child_idx"`
	Assigned  seq.Sequence `json:"assigned,omitempty"`
	Round     int          `json:"round"`
	// Roster propagates a discovered session membership (see
	// requestBody.Roster); empty on static sessions.
	Roster []string `json:"roster,omitempty"`
}

// dataBody carries one packet.
type dataBody struct {
	Pkt seq.Packet `json:"pkt"`
}

// repairBody asks a peer to retransmit specific data packets.
type repairBody struct {
	ContentID string  `json:"content_id"`
	Indices   []int64 `json:"indices"`
	Leaf      string  `json:"leaf"`
}

// joinBody volunteers a peer for an in-flight session: an active member
// receiving it hands the joiner a slice of its remaining stream.
type joinBody struct {
	ContentID string `json:"content_id"`
	Joiner    string `json:"joiner"`
}

// Protocol identifies a live coordination protocol; the names are shared
// with the simulation layer via internal/protocol.
type Protocol = protocol.Protocol

// The live-only ProtocolTCoP / ProtocolDCoP aliases are gone: the sim
// and live layers accept the same shared protocol.TCoP / protocol.DCoP
// values (p2pmss.TCoP / p2pmss.DCoP), so the parallel names only
// invited drift.

// PeerConfig configures a live contents peer.
type PeerConfig struct {
	// Content is the peer's copy of the content (every contents peer
	// holds it, per the MSS model). Alternatively (or additionally) set
	// Store to serve a whole catalog of contents by ID.
	Content *content.Content
	// Store is an optional catalog; requests name a ContentID and the
	// peer serves whichever content it holds under that ID.
	Store *content.Store
	// Roster lists the addresses of all contents peers (including this
	// one). Its order defines the engine's peer numbering, so every
	// session member must use the same roster order.
	Roster []string
	// CarryRoster stamps Roster into outgoing control and commit bodies,
	// so a node that has never seen this session can reconstruct the
	// membership (and hence the peer numbering) from the first message
	// that reaches it. Set for sessions whose roster was resolved from a
	// dynamic directory; static sessions leave it off, keeping the wire
	// byte-identical to the pre-discovery protocol.
	CarryRoster bool
	// H is the selection fanout (§3.3): the per-round handshake width
	// and the lifetime cap on children per parent.
	H int
	// Interval is the parity interval h for the initial enhancement.
	Interval int
	// Delta is the assumed one-way latency used for marking.
	Delta time.Duration
	// Protocol selects the coordination protocol: TCoP (default) or
	// DCoP.
	Protocol Protocol
	// Session scopes the peer to one streaming session: outgoing
	// messages are stamped with it and per-session metrics are labeled
	// by it. Empty for standalone single-session peers.
	Session SessionID
	// HandshakeTimeout bounds each TCoP confirmation round; children
	// silent past the deadline are presumed crashed and replaced.
	// Zero means 4·Delta + 50 ms (normalize resolves it).
	HandshakeTimeout time.Duration
	// Retries bounds how many alternate peers this peer contacts when a
	// selected child refuses, is unreachable, or times out. Zero means
	// H; negative disables retries (normalize resolves it).
	Retries int
	// Seed seeds the peer's random selection; 0 uses the clock.
	Seed int64
	// Obs bundles the peer's observers in the struct shared with the
	// simulation. Non-nil members override the corresponding legacy
	// fields below; Obs.Trace is ignored (sim-only) and Obs.Flight is
	// resolved to this peer's per-(session, index) recorder at start.
	// Prefer Obs for new code.
	Obs obs.Observability
	// Metrics, when non-nil, receives the peer's counters (data packets
	// sent, hand-offs, activations, repair packets served, per-session
	// retries and failovers). Several peers may share one registry.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects causal coordination spans (handshake
	// rounds, confirmation waves, commits, hand-offs, streaming). All
	// members of a session should share one collector.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// SpanTrace identifies the session's trace; zero derives it from the
	// Session id so every member agrees without coordination.
	//
	// Deprecated: set via Obs.SpanTrace.
	SpanTrace span.TraceID
	// Flight, when non-nil, records the peer's engine event/effect
	// stream into the given flight ring with wall-clock (seconds since
	// process start) stamps; nil disables recording at zero cost.
	//
	// Deprecated: set via Obs.Flight (a *flight.Set; the peer resolves
	// its own recorder from it).
	Flight *flight.Recorder
	// PayloadMemoCap bounds the derived-payload memo (entries); the memo
	// is LRU-evicted past the cap. Zero means 4096.
	PayloadMemoCap int
}

// normalize validates the config and resolves every defaulted knob in
// place (mirroring coord.Config.normalize), so the engine and the
// driver read already-resolved values.
func (cfg *PeerConfig) normalize() error {
	if cfg.Content == nil && cfg.Store == nil {
		return fmt.Errorf("live: peer needs a content or a store")
	}
	if cfg.H <= 0 || cfg.Interval <= 0 {
		return fmt.Errorf("live: H=%d and Interval=%d must be positive", cfg.H, cfg.Interval)
	}
	switch cfg.Protocol {
	case "":
		cfg.Protocol = protocol.TCoP
	case protocol.TCoP, protocol.DCoP:
	default:
		return fmt.Errorf("live: unknown protocol %q", cfg.Protocol)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 4*cfg.Delta + 50*time.Millisecond
	}
	switch {
	case cfg.Retries < 0:
		cfg.Retries = 0
	case cfg.Retries == 0:
		cfg.Retries = cfg.H
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	// Obs.Flight is per-set, not per-recorder; NewPeer resolves it once
	// the peer knows its roster index.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.SpanTrace != 0 && cfg.SpanTrace == 0 {
		cfg.SpanTrace = cfg.Obs.SpanTrace
	}
	if cfg.Spans != nil && cfg.SpanTrace == 0 {
		cfg.SpanTrace = span.DeriveTrace("live/session=" + string(cfg.Session))
	}
	if cfg.PayloadMemoCap <= 0 {
		cfg.PayloadMemoCap = 4096
	}
	return nil
}

// pendingHandoff is a planned stream switch: applied when the transmit
// position reaches mark, it drops the keys handed to children from the
// unsent remainder, unions in the kept share, and adjusts the rate.
type pendingHandoff struct {
	keep    seq.Sequence
	given   map[string]bool
	oldRate float64
	newRate float64
	mark    int
}

// Peer is a live contents peer: the shared coordination engine plus a
// streaming goroutine and the address/payload codec between them.
type Peer struct {
	cfg PeerConfig
	ep  transport.Endpoint
	met peerMetrics

	mu   sync.Mutex
	core *engine.Peer
	// spans derives causal spans from the engine's event/effect stream;
	// nil (tracing and latency metrics both off) is the no-op tracker.
	spans *engine.SpanTracker
	// flight records the engine's event/effect stream; nil when off.
	flight *engine.FlightObserver
	// names/ids map engine peer ids to transport addresses and back.
	// Roster order defines ids 0..N-1; out-of-roster senders (mid-stream
	// joiners) get ephemeral ids >= N, which the engine tracks but never
	// adds to its bounded view.
	names []string
	ids   map[string]engine.PeerID

	content  *content.Content // the content currently being served
	payloads payloadMemo
	leaf     string
	active   bool
	stream   seq.Sequence
	pos      int
	rate     float64
	pending  *pendingHandoff

	// repairTo is the reply address of the repair request currently
	// being dispatched (the engine's ServeRepair effect has no driver
	// addressing).
	repairTo      string
	repairContent *content.Content

	lastRetried int

	// lastTouch is when the peer last received a message or transmitted
	// a data packet — the idle clock Quiesced reads for session reaping.
	lastTouch time.Time

	stopCh  chan struct{}
	stopped sync.Once
	wake    chan struct{}

	// Sent counts data packets transmitted (for tests/metrics).
	sent int64
}

// NewPeer creates a live peer on the given transport (WithFabric,
// WithTCP, or WithAttach for pre-bound endpoints).
func NewPeer(cfg PeerConfig, tr Transport) (*Peer, error) {
	if tr == nil {
		return nil, fmt.Errorf("live: peer needs a transport")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	p := &Peer{
		cfg:       cfg,
		ids:       make(map[string]engine.PeerID, len(cfg.Roster)),
		stopCh:    make(chan struct{}),
		wake:      make(chan struct{}, 1),
		lastTouch: time.Now(),
	}
	ep, err := tr.open(p.handle)
	if err != nil {
		return nil, err
	}
	p.ep = ep
	n := len(cfg.Roster)
	if n == 0 {
		n = 1 // a standalone peer is its own one-peer universe
	}
	ecfg := engine.Config{
		N:                n,
		H:                cfg.H,
		Interval:         cfg.Interval,
		MarkDelta:        (2 * cfg.Delta).Seconds(),
		HandshakeTimeout: cfg.HandshakeTimeout.Seconds(),
		CommitRelease:    (4 * cfg.HandshakeTimeout).Seconds(),
		Retries:          cfg.Retries,
		DCoP:             cfg.Protocol == protocol.DCoP,
	}
	if err := ecfg.Normalize(); err != nil {
		return nil, err
	}
	p.met = newPeerMetrics(cfg.Metrics, ep.Name(), cfg.Session)
	p.payloads.cap = cfg.PayloadMemoCap
	p.payloads.evictions = p.met.memoEvictions
	p.mu.Lock()
	for _, a := range cfg.Roster {
		p.idOfLocked(a)
	}
	self := p.idOfLocked(ep.Name())
	p.core = engine.NewPeer(ecfg, self, rand.New(rand.NewSource(cfg.Seed)))
	p.spans = engine.NewSpanTracker(cfg.Spans, cfg.SpanTrace, int(self), engine.SpanMetrics{
		HandshakeRTT:   p.met.handshakeRTT,
		CommitLatency:  p.met.commitLatency,
		RetryWaveDepth: p.met.retryWaveDepth,
	})
	if cfg.Flight == nil {
		// Obs carries the whole flight set; the per-peer recorder can
		// only be resolved here, once the roster index is known.
		cfg.Flight = cfg.Obs.Flight.Recorder(string(cfg.Session), int(self))
	}
	p.flight = engine.NewFlightObserver(cfg.Flight)
	p.mu.Unlock()
	go p.streamLoop()
	return p, nil
}

// Addr returns the peer's transport address.
func (p *Peer) Addr() string { return p.ep.Name() }

// Session returns the session this peer serves (empty for standalone
// single-session peers).
func (p *Peer) Session() SessionID { return p.cfg.Session }

// Sent returns the number of data packets transmitted so far.
func (p *Peer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Active reports whether the peer is transmitting.
func (p *Peer) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Quiesced reports whether this peer's work is visibly over: it was
// activated, transmitted its whole stream (no hand-off pending), and
// neither received a message nor sent a packet for at least grace.
// Never-activated peers do not quiesce — they may be mid-handshake, and
// coordination deadlines already bound how long that can take. Node
// session reaping polls this.
func (p *Peer) Quiesced(now time.Time, grace time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active || p.pending != nil || p.pos < len(p.stream) {
		return false
	}
	return now.Sub(p.lastTouch) >= grace
}

// Outcome returns the peer's coordination outcome (parent, children,
// assignment union) with peers numbered by roster order — the live side
// of the sim/live conformance comparison.
func (p *Peer) Outcome() engine.Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.core.Outcome()
}

// Close stops the peer (crash-stop: no goodbye messages).
func (p *Peer) Close() error {
	p.stopped.Do(func() {
		close(p.stopCh)
		p.mu.Lock()
		p.spans.Finish(liveNow())
		p.mu.Unlock()
	})
	return p.ep.Close()
}

// send encodes v, stamps the peer's session, and transmits. The error is
// surfaced so callers can fail over to an alternate peer.
func (p *Peer) send(to, typ string, v any) error {
	return p.sendCtx(to, typ, v, span.Context{})
}

// sendCtx is send with a causal span context stamped on the frame (the
// zero context leaves the frame untouched, byte-identical to an
// untraced send).
func (p *Peer) sendCtx(to, typ string, v any, ctx span.Context) error {
	m, err := transport.Encode(typ, p.Addr(), v)
	if err != nil {
		return err
	}
	m.Session = string(p.cfg.Session)
	m.Trace = uint64(ctx.Trace)
	m.Span = uint64(ctx.Span)
	return p.ep.Send(to, m)
}

// ---- address/id codec ---------------------------------------------------

// idOfLocked resolves an address to an engine peer id, appending an
// ephemeral id for addresses outside the roster. Callers hold p.mu.
func (p *Peer) idOfLocked(addr string) engine.PeerID {
	if id, ok := p.ids[addr]; ok {
		return id
	}
	id := engine.PeerID(len(p.names))
	p.names = append(p.names, addr)
	p.ids[addr] = id
	return id
}

// addrOfLocked resolves an engine peer id back to its address.
func (p *Peer) addrOfLocked(id engine.PeerID) string {
	if id >= 0 && int(id) < len(p.names) {
		return p.names[id]
	}
	return ""
}

func (p *Peer) idsOfLocked(addrs []string) []engine.PeerID {
	out := make([]engine.PeerID, len(addrs))
	for i, a := range addrs {
		out[i] = p.idOfLocked(a)
	}
	return out
}

func (p *Peer) addrsOfLocked(ids []engine.PeerID) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if a := p.addrOfLocked(id); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// ---- payload codec ------------------------------------------------------

// stripPayloads returns a copy of s with payloads removed, for the wire:
// the receiver holds the content and re-derives every payload locally,
// so control traffic stays proportional to sequence length, not content
// size.
func stripPayloads(s seq.Sequence) seq.Sequence {
	if s == nil {
		return nil
	}
	out := make(seq.Sequence, len(s))
	for i, pkt := range s {
		pkt.Payload = nil
		out[i] = pkt
	}
	return out
}

// hydrateLocked fills in the payloads of a decoded sequence from the
// peer's own content copy: data packets by index, parity packets by
// XORing the payloads of the packets their key says they cover
// (recursively, since re-enhancement nests parity over parity). Callers
// hold p.mu.
func (p *Peer) hydrateLocked(c *content.Content, s seq.Sequence) seq.Sequence {
	if c == nil || s == nil {
		return s
	}
	out := make(seq.Sequence, len(s))
	for i, pkt := range s {
		if pkt.Payload == nil {
			pkt.Payload = p.payloadOfLocked(c, pkt.Key())
		}
		out[i] = pkt
	}
	return out
}

// payloadOfLocked derives (and memoizes) the payload of the packet with
// the given identity key.
func (p *Peer) payloadOfLocked(c *content.Content, key string) []byte {
	if pl, ok := p.payloads.get(key); ok {
		return pl
	}
	var pl []byte
	if k, ok := parity.DataIndexOf(key); ok {
		if k >= 1 && k <= c.NumPackets() {
			pl = c.Packet(k).Payload
		}
	} else if covers, ok := parity.CoversOf(key); ok {
		bufs := make([][]byte, 0, len(covers))
		for _, ck := range covers {
			bufs = append(bufs, p.payloadOfLocked(c, ck))
		}
		pl = parity.XOR(bufs)
	}
	p.payloads.put(key, pl)
	return pl
}

// payloadMemo is the bounded LRU cache of derived payloads keyed by
// packet identity. Hydration of long control sequences revisits the
// same keys (data payloads feed the parity XORs), so the memo is hot;
// bounding it keeps a long-lived multi-session peer's memory
// proportional to the working set, not to every content it ever served.
// The zero value (cap 0) stores nothing; callers are expected to set
// cap before use (normalize defaults it).
type payloadMemo struct {
	cap       int
	evictions *metrics.Counter
	ll        *list.List // front = most recently used
	idx       map[string]*list.Element
}

type memoEntry struct {
	key     string
	payload []byte
}

// get returns the memoized payload and marks it most recently used.
func (m *payloadMemo) get(key string) ([]byte, bool) {
	e, ok := m.idx[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(e)
	return e.Value.(*memoEntry).payload, true
}

// put inserts (or refreshes) a memo entry, evicting the least recently
// used entries past the cap.
func (m *payloadMemo) put(key string, pl []byte) {
	if m.cap <= 0 {
		return
	}
	if m.ll == nil {
		m.ll = list.New()
		m.idx = make(map[string]*list.Element, m.cap)
	}
	if e, ok := m.idx[key]; ok {
		e.Value.(*memoEntry).payload = pl
		m.ll.MoveToFront(e)
		return
	}
	m.idx[key] = m.ll.PushFront(&memoEntry{key: key, payload: pl})
	for m.ll.Len() > m.cap {
		last := m.ll.Back()
		delete(m.idx, last.Value.(*memoEntry).key)
		m.ll.Remove(last)
		m.evictions.Inc()
	}
}

// len reports how many payloads are memoized (for tests).
func (m *payloadMemo) len() int {
	if m.ll == nil {
		return 0
	}
	return m.ll.Len()
}

// ---- engine driver ------------------------------------------------------

// outSend is one Send effect translated to the wire, remembered so a
// transport error can be fed back to the engine as SendFailed.
type outSend struct {
	to   string
	typ  string
	body any
	toID engine.PeerID
	msg  any          // the engine message, nil for data-plane sends
	ctx  span.Context // causal context stamped on the frame
}

// dispatch feeds one event into the engine under the lock and applies
// the effects; transmissions happen after the lock is released, and
// their failures are fed back as SendFailed events. Events with no
// carried causal context (timers, repair, join) enter with the zero
// context.
func (p *Peer) dispatch(ev engine.Event) {
	p.dispatchCtx(ev, span.Context{})
}

// dispatchCtx is dispatch with the causal context the triggering
// message carried; the span tracker derives spans from the event/effect
// pair and stamps outgoing messages before they are encoded.
func (p *Peer) dispatchCtx(ev engine.Event, parent span.Context) {
	p.mu.Lock()
	if p.core == nil {
		p.mu.Unlock()
		return
	}
	snap := engine.Snapshot{Offset: p.pos, Stream: p.stream, Rate: p.rate, Pending: p.pending != nil}
	effs := p.core.Handle(ev, snap)
	p.spans.Observe(p.core, liveNow(), ev, parent, effs)
	p.flight.Observe(liveNow(), ev, effs)
	sends := p.applyLocked(effs)
	// The batch is consumed: applyLocked copied out everything a send
	// needs (addresses, stripped payload copies), so the effect nodes
	// can be recycled before the transmissions even start.
	p.core.Release(effs)
	p.mu.Unlock()
	for _, s := range sends {
		err := p.sendCtx(s.to, s.typ, s.body, s.ctx)
		if err != nil {
			if s.msg != nil {
				p.dispatchCtx(&engine.SendFailed{To: s.toID, Msg: s.msg}, engine.MsgSpan(s.msg))
			}
			continue
		}
		if s.typ == typeData {
			p.mu.Lock()
			p.sent++
			p.mu.Unlock()
			p.met.sent.Inc()
			p.met.repairServed.Inc()
		}
	}
	if len(sends) > 0 {
		// Message nodes are recycled under the lock: the engine (and its
		// pools) only ever run under p.mu, and every consumer — encoder,
		// failure feedback — is done with them by now.
		p.mu.Lock()
		for _, s := range sends {
			engine.ReleaseMsg(s.msg)
		}
		p.mu.Unlock()
	}
}

// applyLocked executes the engine's effects in order, buffering the
// hand-off so Absorb effects fold into it, and returns the sends to
// perform once the lock is released. Callers hold p.mu.
func (p *Peer) applyLocked(effs []engine.Effect) []outSend {
	var sends []outSend
	var handoff *engine.Handoff
	for _, eff := range effs {
		switch e := eff.(type) {
		case *engine.Send:
			sends = append(sends, p.encodeLocked(e))
		case *engine.SetTimer:
			p.armTimer(e)
		case *engine.Activate:
			p.activateLocked(e.Seq, e.Rate)
		case *engine.Merge:
			p.mergeLocked(e.Seq, e.Rate)
		case *engine.Handoff:
			handoff = e
		case *engine.Absorb:
			p.met.failovers.Inc()
			switch {
			case handoff != nil:
				handoff.Keep = seq.Union(handoff.Keep, e.Seq)
				handoff.NewRate += e.RateDelta
			case p.pending != nil:
				p.pending.keep = seq.Union(p.pending.keep, e.Seq)
				p.pending.newRate += e.RateDelta
			default:
				p.mergeLocked(e.Seq, e.RateDelta)
			}
		case *engine.ServeRepair:
			sends = append(sends, p.repairSendsLocked(e.Indices)...)
		}
	}
	if handoff != nil {
		p.installHandoffLocked(handoff)
	}
	if used := p.core.RetriesUsed(); used > p.lastRetried {
		p.met.retries.Add(int64(used - p.lastRetried))
		p.lastRetried = used
	}
	return sends
}

// encodeLocked translates an engine Send into a wire message.
func (p *Peer) encodeLocked(e *engine.Send) outSend {
	to := p.addrOfLocked(e.To)
	var cid string
	if p.content != nil {
		cid = p.content.ID()
	}
	var carried []string
	if p.cfg.CarryRoster {
		carried = p.cfg.Roster
	}
	switch m := e.Msg.(type) {
	case *engine.MsgControl:
		return outSend{to: to, typ: typeControl, toID: e.To, msg: e.Msg, ctx: m.Span, body: controlBody{
			Parent: p.Addr(), View: p.addrsOfLocked(m.View), Leaf: p.leaf, ContentID: cid,
			SeqOffset: m.SeqOffset, Rate: m.Rate, ChildRate: m.ChildRate,
			Children: m.Children, ChildIdx: m.ChildIdx,
			Assigned: stripPayloads(m.AssignedSeq), Round: m.Round, Roster: carried,
		}}
	case *engine.MsgConfirm:
		return outSend{to: to, typ: typeConfirm, toID: e.To, msg: e.Msg, ctx: m.Span, body: confirmBody{
			Child: p.Addr(), Accept: m.Accept, Round: m.Round,
		}}
	case *engine.MsgCommit:
		return outSend{to: to, typ: typeCommit, toID: e.To, msg: e.Msg, ctx: m.Span, body: commitBody{
			Parent: p.Addr(), ContentID: cid, Leaf: p.leaf,
			Streams: m.Streams, SeqOffset: m.SeqOffset, Rate: m.Rate,
			ChildIdx: m.ChildIdx, Assigned: stripPayloads(m.AssignedSeq), Round: m.Round,
			Roster: carried,
		}}
	}
	return outSend{to: to}
}

// armTimer schedules TimerFired delivery on the wall clock.
func (p *Peer) armTimer(e *engine.SetTimer) {
	id := e.ID
	time.AfterFunc(time.Duration(e.Delay*float64(time.Second)), func() {
		select {
		case <-p.stopCh:
			return
		default:
		}
		p.dispatch(&engine.TimerFired{Timer: id})
	})
}

// activateLocked installs the peer's first stream.
func (p *Peer) activateLocked(s seq.Sequence, rate float64) {
	p.stream = s
	p.pos = 0
	p.rate = rate
	if !p.active {
		p.active = true
		p.met.activations.Inc()
	}
	p.kick()
}

// mergeLocked unions an additional share into the unsent remainder and
// adds its rate (DCoP's pkt_i := pkt_i ∪ pkt_ji).
func (p *Peer) mergeLocked(s seq.Sequence, rate float64) {
	var remaining seq.Sequence
	if p.pos < len(p.stream) {
		remaining = p.stream[p.pos:].Clone()
	}
	p.stream = seq.Union(remaining, s)
	p.pos = 0
	p.rate += rate
	p.kick()
}

// installHandoffLocked plans the parent's own switch, copying what it
// needs out of the effect node (which is recycled right after the
// batch is applied). If a hand-off is already pending (a redundant
// DCoP parent re-selected before the first mark), the older one is
// applied immediately — the subtraction is key-based, so early
// application loses nothing — before the new one is installed.
func (p *Peer) installHandoffLocked(h *engine.Handoff) {
	if p.pending != nil {
		p.applyPendingLocked()
	}
	given := make(map[string]bool)
	for _, g := range h.Given {
		for _, pkt := range g {
			given[pkt.Key()] = true
		}
	}
	p.pending = &pendingHandoff{
		keep: h.Keep, given: given,
		oldRate: h.OldRate, newRate: h.NewRate, mark: h.Mark,
	}
	p.met.handoffs.Add(int64(len(h.Given)))
}

// applyPendingLocked executes the planned switch: the unsent remainder
// minus the keys handed to children, unioned with the kept share.
func (p *Peer) applyPendingLocked() {
	h := p.pending
	p.pending = nil
	var rest seq.Sequence
	if p.pos < len(p.stream) {
		for _, pkt := range p.stream[p.pos:] {
			if !h.given[pkt.Key()] {
				rest = append(rest, pkt)
			}
		}
	}
	p.stream = seq.Union(rest, h.keep)
	p.pos = 0
	rate := p.rate - h.oldRate + h.newRate
	if rate <= 0 {
		rate = h.newRate
	}
	p.rate = rate
	p.kick()
}

// repairSendsLocked materializes a ServeRepair effect into data sends.
func (p *Peer) repairSendsLocked(indices []int64) []outSend {
	c, to := p.repairContent, p.repairTo
	if c == nil || to == "" {
		return nil
	}
	var out []outSend
	for _, k := range indices {
		if k < 1 || k > c.NumPackets() {
			continue
		}
		out = append(out, outSend{to: to, typ: typeData, body: dataBody{Pkt: c.Packet(k)}})
	}
	return out
}

// ---- inbound messages ---------------------------------------------------

// handle dispatches inbound messages. It runs on transport goroutines.
func (p *Peer) handle(m transport.Msg) {
	p.mu.Lock()
	p.lastTouch = time.Now()
	p.mu.Unlock()
	// The frame's causal context (zero when the sender traces nothing)
	// parents whatever spans handling this message opens.
	parent := span.Context{Trace: span.TraceID(m.Trace), Span: span.SpanID(m.Span)}
	switch m.Type {
	case typeRequest:
		var b requestBody
		if m.Decode(&b) == nil {
			p.onRequest(b, parent)
		}
	case typeControl:
		var b controlBody
		if m.Decode(&b) == nil {
			p.onControl(b, parent)
		}
	case typeConfirm:
		var b confirmBody
		if m.Decode(&b) == nil {
			p.onConfirm(b, parent)
		}
	case typeCommit:
		var b commitBody
		if m.Decode(&b) == nil {
			p.onCommit(b, parent)
		}
	case typeRepair:
		var b repairBody
		if m.Decode(&b) == nil {
			p.onRepair(b, parent)
		}
	case typeJoin:
		var b joinBody
		if m.Decode(&b) == nil {
			p.onJoin(b, parent)
		}
	}
}

// resolveContent finds the content to serve for a request's ID.
func (p *Peer) resolveContent(id string) (*content.Content, bool) {
	if p.cfg.Store != nil {
		if c, ok := p.cfg.Store.Get(id); ok {
			return c, true
		}
	}
	if c := p.cfg.Content; c != nil && (id == "" || id == c.ID()) {
		return c, true
	}
	return nil, false
}

// onRequest is activation by the leaf (§3.4/§3.5 step 2). The driver
// computes the initial assignment — Div(Esq(content, h), H, index) at
// rate τ(h+1)/(hH), exactly the simulator's — because only the driver
// holds the content; the engine does the rest.
func (p *Peer) onRequest(b requestBody, parent span.Context) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok || b.H <= 0 || b.Interval <= 0 {
		return
	}
	assigned := seq.Div(parity.Enhance(c.Sequence(), b.Interval), b.H, b.Index)
	rate := parity.PerPeerRate(b.Rate, b.Interval, b.H)
	p.mu.Lock()
	p.content = c
	p.leaf = b.Leaf
	sel := p.idsOfLocked(b.Selected)
	p.mu.Unlock()
	p.dispatchCtx(&engine.Request{Assigned: assigned, Rate: rate, Selected: sel, Round: 1}, parent)
}

func (p *Peer) onControl(b controlBody, parent span.Context) {
	p.mu.Lock()
	if c, ok := p.resolveContent(b.ContentID); ok && p.content == nil {
		p.content = c
	}
	if p.leaf == "" {
		p.leaf = b.Leaf
	}
	msg := &engine.MsgControl{
		Parent: p.idOfLocked(b.Parent), View: p.idsOfLocked(b.View),
		SeqOffset: b.SeqOffset, Rate: b.Rate, ChildRate: b.ChildRate,
		Children: b.Children, ChildIdx: b.ChildIdx,
		AssignedSeq: p.hydrateLocked(p.content, b.Assigned), Round: b.Round,
	}
	p.mu.Unlock()
	p.dispatchCtx(&engine.Control{Msg: msg}, parent)
}

func (p *Peer) onConfirm(b confirmBody, parent span.Context) {
	p.mu.Lock()
	msg := &engine.MsgConfirm{Child: p.idOfLocked(b.Child), Accept: b.Accept, Round: b.Round}
	p.mu.Unlock()
	p.dispatchCtx(&engine.Confirm{Msg: msg}, parent)
}

func (p *Peer) onCommit(b commitBody, parent span.Context) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return
	}
	p.mu.Lock()
	p.content = c
	if p.leaf == "" {
		p.leaf = b.Leaf
	}
	msg := &engine.MsgCommit{
		Parent: p.idOfLocked(b.Parent), Streams: b.Streams,
		SeqOffset: b.SeqOffset, Rate: b.Rate, ChildIdx: b.ChildIdx,
		AssignedSeq: p.hydrateLocked(c, b.Assigned), Round: b.Round,
	}
	p.mu.Unlock()
	p.dispatchCtx(&engine.Commit{Msg: msg}, parent)
}

// onRepair retransmits the requested data packets immediately.
func (p *Peer) onRepair(b repairBody, parent span.Context) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return
	}
	p.mu.Lock()
	p.repairContent = c
	p.repairTo = b.Leaf
	p.mu.Unlock()
	p.dispatchCtx(&engine.Repair{Indices: b.Indices}, parent)
}

// onJoin hands a mid-stream joiner a slice of the remaining stream (the
// engine declines when inactive or when a hand-off is already pending).
func (p *Peer) onJoin(b joinBody, parent span.Context) {
	p.mu.Lock()
	ok := b.Joiner != "" && b.Joiner != p.Addr() && p.content != nil &&
		(b.ContentID == "" || b.ContentID == p.content.ID())
	var joiner engine.PeerID
	if ok {
		joiner = p.idOfLocked(b.Joiner)
	}
	p.mu.Unlock()
	if !ok {
		return
	}
	p.dispatchCtx(&engine.Join{Joiner: joiner}, parent)
}

// ---- streaming ----------------------------------------------------------

// kick wakes the streaming loop after an assignment change.
func (p *Peer) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// streamLoop transmits the current stream at the current rate.
func (p *Peer) streamLoop() {
	for {
		p.mu.Lock()
		active := p.active && p.pos < len(p.stream)
		rate := p.rate
		p.mu.Unlock()
		if !active {
			select {
			case <-p.stopCh:
				return
			case <-p.wake:
				continue
			}
		}
		interval := time.Duration(float64(time.Second) / rate)
		if interval < 50*time.Microsecond {
			interval = 50 * time.Microsecond
		}
		select {
		case <-p.stopCh:
			return
		case <-time.After(interval):
		}
		p.sendOne()
	}
}

func (p *Peer) sendOne() {
	p.mu.Lock()
	// Apply a pending hand-off exactly at its mark.
	if p.pending != nil && p.pos >= p.pending.mark {
		p.applyPendingLocked()
	}
	if p.pos >= len(p.stream) {
		p.mu.Unlock()
		return
	}
	pkt := p.stream[p.pos]
	p.pos++
	p.sent++
	p.lastTouch = time.Now()
	leaf := p.leaf
	p.mu.Unlock()
	p.met.sent.Inc()
	p.send(leaf, typeData, dataBody{Pkt: pkt}) //nolint:errcheck // a vanished leaf ends the session; repair handles the rest
}
