// Package live runs the paper's multi-source streaming on real
// goroutines and wall-clock time: contents peers are concurrent
// processes exchanging JSON control packets over a transport (in-memory
// or TCP), coordinating with TCoP (§3.5, the default) or DCoP (§3.4) and
// streaming packet payloads to a leaf peer, which reassembles the content
// bytes with parity recovery and a repair round for anything still
// missing (e.g. after a peer crash).
//
// TCoP is the default live protocol because its confirm/commit handshake
// makes stream hand-offs exact — no packet is delegated to a child that
// declines, so the peers' subsequences partition the enhanced content
// and delivery is complete without relying on duplicates. DCoP trades
// duplicates (deduplicated at the leaf) for one-round coordination.
//
// Coordination is churn-tolerant: every handshake round has an explicit
// deadline, a child that refuses, cannot be reached, or stays silent is
// replaced by an alternate peer under a bounded retry budget, a hand-off
// whose commit cannot be delivered is re-absorbed by the parent, and a
// peer may join an in-flight stream (Node.Join) and be handed a slice.
//
// A Node hosts a content.Store on one endpoint and multiplexes many
// concurrent sessions — serving some as a contents peer and consuming
// others as a leaf — keyed by the SessionID carried in transport.Msg.
package live

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
	"p2pmss/internal/protocol"
	"p2pmss/internal/seq"
	"p2pmss/internal/transport"
)

// Message type tags.
const (
	typeRequest = "request"
	typeControl = "control"
	typeConfirm = "confirm"
	typeCommit  = "commit"
	typeData    = "data"
	typeRepair  = "repair"
	typeJoin    = "join"
)

// requestBody is the leaf's content request.
type requestBody struct {
	ContentID string   `json:"content_id"`
	Rate      float64  `json:"rate"` // packets per second
	H         int      `json:"h"`
	Interval  int      `json:"interval"`
	Index     int      `json:"index"`
	Selected  []string `json:"selected"`
	Leaf      string   `json:"leaf"`
}

// controlBody is TCoP's c1.
type controlBody struct {
	Parent string   `json:"parent"`
	View   []string `json:"view"`
	Leaf   string   `json:"leaf"`
}

// confirmBody is TCoP's confirmation.
type confirmBody struct {
	Child  string `json:"child"`
	Accept bool   `json:"accept"`
}

// commitBody is TCoP's c2 carrying the child's complete derivation.
type commitBody struct {
	Parent    string            `json:"parent"`
	ContentID string            `json:"content_id"`
	Deriv     []content.DivStep `json:"deriv"`
	Rate      float64           `json:"rate"`
	Leaf      string            `json:"leaf"`
}

// dataBody carries one packet.
type dataBody struct {
	Pkt seq.Packet `json:"pkt"`
}

// repairBody asks a peer to retransmit specific data packets.
type repairBody struct {
	ContentID string  `json:"content_id"`
	Indices   []int64 `json:"indices"`
	Leaf      string  `json:"leaf"`
}

// joinBody volunteers a peer for an in-flight session: an active member
// receiving it hands the joiner a slice of its remaining stream.
type joinBody struct {
	ContentID string `json:"content_id"`
	Joiner    string `json:"joiner"`
}

// Protocol identifies a live coordination protocol; the names are shared
// with the simulation layer via internal/protocol.
type Protocol = protocol.Protocol

// Live protocol names.
const (
	// ProtocolTCoP coordinates with the three-round handshake (§3.5) —
	// hand-offs are exact, so delivery never depends on repair.
	//
	// Deprecated: use the shared protocol.TCoP (p2pmss.TCoP); the sim and
	// live layers accept the same Protocol values.
	ProtocolTCoP = protocol.TCoP
	// ProtocolDCoP coordinates with single-round redundant flooding
	// (§3.4): children may be assigned by several parents and merge
	// (union) their streams; duplicates are deduplicated at the leaf.
	//
	// Deprecated: use the shared protocol.DCoP (p2pmss.DCoP).
	ProtocolDCoP = protocol.DCoP
)

// PeerConfig configures a live contents peer.
type PeerConfig struct {
	// Content is the peer's copy of the content (every contents peer
	// holds it, per the MSS model). Alternatively (or additionally) set
	// Store to serve a whole catalog of contents by ID.
	Content *content.Content
	// Store is an optional catalog; requests name a ContentID and the
	// peer serves whichever content it holds under that ID.
	Store *content.Store
	// Roster lists the addresses of all contents peers (including this
	// one).
	Roster []string
	// H is the selection fanout.
	H int
	// Interval is the parity interval h for the initial enhancement.
	Interval int
	// Delta is the assumed one-way latency used for marking.
	Delta time.Duration
	// Protocol selects the coordination protocol: TCoP (default) or
	// DCoP.
	Protocol Protocol
	// Session scopes the peer to one streaming session: outgoing
	// messages are stamped with it and per-session metrics are labeled
	// by it. Empty for standalone single-session peers.
	Session SessionID
	// HandshakeTimeout bounds each TCoP confirmation round; children
	// silent past the deadline are presumed crashed and replaced.
	// Zero means 4·Delta + 50 ms.
	HandshakeTimeout time.Duration
	// Retries bounds how many alternate peers this peer contacts when a
	// selected child refuses, is unreachable, or times out. Zero means
	// H; negative disables retries.
	Retries int
	// Seed seeds the peer's random selection; 0 uses the clock.
	Seed int64
	// Metrics, when non-nil, receives the peer's counters (data packets
	// sent, hand-offs, activations, repair packets served, per-session
	// retries and failovers). Several peers may share one registry.
	Metrics *metrics.Registry
}

// Peer is a live contents peer: a TCoP state machine plus a streaming
// goroutine.
type Peer struct {
	cfg PeerConfig
	ep  transport.Endpoint
	rng *rand.Rand
	met peerMetrics

	mu      sync.Mutex
	content *content.Content // the content currently being served
	view    map[string]bool
	active  bool
	parent  string
	deriv   []content.DivStep
	// derivOK records whether deriv still describes stream exactly;
	// DCoP merges (stream unions) invalidate it, after which the peer
	// cannot hand out derivation-based slices (joins are declined).
	derivOK bool
	stream  seq.Sequence
	pos     int
	rate    float64
	leaf    string
	ctlSent bool
	final   bool

	// TCoP confirmation-round state: how many children we want, the
	// controls still unanswered, the alternates not yet contacted, the
	// remaining retry budget, and a generation counter that invalidates
	// stale round timers.
	wanted      int
	outstanding map[string]bool
	candQueue   []string
	retryLeft   int
	ctlGen      int
	confirmed   []string

	// A planned hand-off: applied when pos reaches pendingMark.
	pendingStream seq.Sequence
	pendingDeriv  []content.DivStep
	pendingMark   int
	pendingRate   float64

	stopCh  chan struct{}
	stopped sync.Once
	wake    chan struct{}

	// Sent counts data packets transmitted (for tests/metrics).
	sent int64
}

// NewPeer creates a live peer on the given transport (WithFabric,
// WithTCP, or WithAttach for pre-bound endpoints).
func NewPeer(cfg PeerConfig, tr Transport) (*Peer, error) {
	if tr == nil {
		return nil, fmt.Errorf("live: peer needs a transport")
	}
	if cfg.Content == nil && cfg.Store == nil {
		return nil, fmt.Errorf("live: peer needs a content or a store")
	}
	if cfg.H <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("live: H=%d and Interval=%d must be positive", cfg.H, cfg.Interval)
	}
	switch cfg.Protocol {
	case "":
		cfg.Protocol = protocol.TCoP
	case protocol.TCoP, protocol.DCoP:
	default:
		return nil, fmt.Errorf("live: unknown protocol %q", cfg.Protocol)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p := &Peer{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		view:   make(map[string]bool),
		stopCh: make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	ep, err := tr.open(p.handle)
	if err != nil {
		return nil, err
	}
	p.ep = ep
	p.met = newPeerMetrics(cfg.Metrics, ep.Name(), cfg.Session)
	go p.streamLoop()
	return p, nil
}

// Addr returns the peer's transport address.
func (p *Peer) Addr() string { return p.ep.Name() }

// Session returns the session this peer serves (empty for standalone
// single-session peers).
func (p *Peer) Session() SessionID { return p.cfg.Session }

// Sent returns the number of data packets transmitted so far.
func (p *Peer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Active reports whether the peer is transmitting.
func (p *Peer) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Close stops the peer (crash-stop: no goodbye messages).
func (p *Peer) Close() error {
	p.stopped.Do(func() { close(p.stopCh) })
	return p.ep.Close()
}

// send encodes v, stamps the peer's session, and transmits. The error is
// surfaced so callers can fail over to an alternate peer.
func (p *Peer) send(to, typ string, v any) error {
	m, err := transport.Encode(typ, p.Addr(), v)
	if err != nil {
		return err
	}
	m.Session = string(p.cfg.Session)
	return p.ep.Send(to, m)
}

// handshakeTimeout returns the confirmation-round deadline.
func (p *Peer) handshakeTimeout() time.Duration {
	if p.cfg.HandshakeTimeout > 0 {
		return p.cfg.HandshakeTimeout
	}
	return 4*p.cfg.Delta + 50*time.Millisecond
}

// retryBudget returns how many alternate peers may be contacted in total.
func (p *Peer) retryBudget() int {
	if p.cfg.Retries < 0 {
		return 0
	}
	if p.cfg.Retries > 0 {
		return p.cfg.Retries
	}
	return p.cfg.H
}

// handle dispatches inbound messages. It runs on transport goroutines.
func (p *Peer) handle(m transport.Msg) {
	switch m.Type {
	case typeRequest:
		var b requestBody
		if m.Decode(&b) == nil {
			p.onRequest(b)
		}
	case typeControl:
		var b controlBody
		if m.Decode(&b) == nil {
			p.onControl(b)
		}
	case typeConfirm:
		var b confirmBody
		if m.Decode(&b) == nil {
			p.onConfirm(b)
		}
	case typeCommit:
		var b commitBody
		if m.Decode(&b) == nil {
			p.onCommit(b)
		}
	case typeRepair:
		var b repairBody
		if m.Decode(&b) == nil {
			p.onRepair(b)
		}
	case typeJoin:
		var b joinBody
		if m.Decode(&b) == nil {
			p.onJoin(b)
		}
	}
}

// resolveContent finds the content to serve for a request's ID.
func (p *Peer) resolveContent(id string) (*content.Content, bool) {
	if p.cfg.Store != nil {
		if c, ok := p.cfg.Store.Get(id); ok {
			return c, true
		}
	}
	if c := p.cfg.Content; c != nil && (id == "" || id == c.ID()) {
		return c, true
	}
	return nil, false
}

func (p *Peer) onRequest(b requestBody) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return // we do not hold that content
	}
	p.mu.Lock()
	if p.active {
		p.mu.Unlock()
		return
	}
	p.content = c
	p.leaf = b.Leaf
	p.view[p.Addr()] = true
	for _, s := range b.Selected {
		p.view[s] = true
	}
	p.parent = "leaf"
	p.deriv = []content.DivStep{{Mark: 0, Interval: b.Interval, Parts: b.H, Index: b.Index}}
	p.derivOK = true
	p.stream = content.Materialize(c.Sequence(), p.deriv)
	p.pos = 0
	p.rate = b.Rate * float64(b.Interval+1) / float64(b.Interval*b.H)
	p.active = true
	p.mu.Unlock()
	p.met.activations.Inc()
	p.kick()
	p.selectChildren()
}

// viewSnapshotLocked lists the peer's current view in sorted order (for
// deterministic control packets). Callers hold p.mu.
func (p *Peer) viewSnapshotLocked() []string {
	vm := make([]string, 0, len(p.view))
	for a := range p.view {
		vm = append(vm, a)
	}
	sort.Strings(vm)
	return vm
}

// selectChildren starts child selection: TCoP's three-round handshake
// with per-round deadlines and alternate-peer retries, or DCoP's
// single-round redundant assignment.
func (p *Peer) selectChildren() {
	p.mu.Lock()
	if p.ctlSent {
		p.mu.Unlock()
		return
	}
	var cands []string
	for _, a := range p.cfg.Roster {
		if a != p.Addr() && !p.view[a] {
			cands = append(cands, a)
		}
	}
	p.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) == 0 {
		p.mu.Unlock()
		return
	}
	if p.cfg.Protocol == protocol.DCoP {
		// DCoP: assign directly, no handshake; children merge.
		if len(cands) > p.cfg.H {
			cands = cands[:p.cfg.H]
		}
		p.ctlSent = true
		for _, c := range cands {
			p.view[c] = true
		}
		p.confirmed = cands
		p.final = true
		p.mu.Unlock()
		p.commitShares()
		return
	}
	p.ctlSent = true
	p.wanted = p.cfg.H
	if p.wanted > len(cands) {
		p.wanted = len(cands)
	}
	wave := append([]string{}, cands[:p.wanted]...)
	p.candQueue = append([]string{}, cands[p.wanted:]...)
	p.retryLeft = p.retryBudget()
	p.outstanding = make(map[string]bool, len(wave))
	for _, c := range wave {
		p.outstanding[c] = true
		p.view[c] = true
	}
	gen := p.ctlGen
	d := p.handshakeTimeout()
	p.mu.Unlock()

	p.sendControls(wave)
	go p.confirmTimer(d, gen)
}

// sendControls delivers c1 to each target. A send error (crashed or
// unreachable peer) counts as an immediate refusal: the target is
// replaced by an alternate while the retry budget lasts.
func (p *Peer) sendControls(wave []string) {
	for len(wave) > 0 {
		c := wave[0]
		wave = wave[1:]
		p.mu.Lock()
		body := controlBody{Parent: p.Addr(), View: p.viewSnapshotLocked(), Leaf: p.leaf}
		p.mu.Unlock()
		if err := p.send(c, typeControl, body); err != nil {
			if repl, ok := p.replaceChild(c); ok {
				wave = append(wave, repl)
			}
		}
	}
	p.maybeFinalize()
}

// replaceChild drops a failed or refusing child from the outstanding set
// and, budget permitting, returns an alternate to contact in its place.
func (p *Peer) replaceChild(c string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.outstanding, c)
	if p.final || p.retryLeft <= 0 || len(p.candQueue) == 0 {
		return "", false
	}
	repl := p.candQueue[0]
	p.candQueue = p.candQueue[1:]
	p.retryLeft--
	p.outstanding[repl] = true
	p.view[repl] = true
	p.met.retries.Inc()
	return repl, true
}

// confirmTimer enforces one confirmation round's deadline: children
// still silent are presumed crashed, and a fresh wave of alternates is
// contacted (with doubled deadline) while the budget lasts.
func (p *Peer) confirmTimer(d time.Duration, gen int) {
	select {
	case <-time.After(d):
	case <-p.stopCh:
		return
	}
	p.mu.Lock()
	if p.final || gen != p.ctlGen {
		p.mu.Unlock()
		return
	}
	need := p.wanted - len(p.confirmed)
	var wave []string
	for need > len(wave) && p.retryLeft > 0 && len(p.candQueue) > 0 {
		c := p.candQueue[0]
		p.candQueue = p.candQueue[1:]
		p.retryLeft--
		p.view[c] = true
		wave = append(wave, c)
		p.met.retries.Inc()
	}
	p.outstanding = make(map[string]bool, len(wave))
	for _, c := range wave {
		p.outstanding[c] = true
	}
	if len(wave) == 0 {
		p.mu.Unlock()
		p.finalize()
		return
	}
	p.ctlGen++
	gen = p.ctlGen
	p.mu.Unlock()
	p.sendControls(wave)
	go p.confirmTimer(2*d, gen)
}

func (p *Peer) onControl(b controlBody) {
	p.mu.Lock()
	accept := !p.active && p.parent == ""
	if accept {
		p.parent = b.Parent
		p.leaf = b.Leaf
	}
	p.view[b.Parent] = true
	for _, v := range b.View {
		p.view[v] = true
	}
	p.mu.Unlock()
	p.send(b.Parent, typeConfirm, confirmBody{Child: p.Addr(), Accept: accept}) //nolint:errcheck // an unreachable parent needs no answer
}

func (p *Peer) onConfirm(b confirmBody) {
	p.mu.Lock()
	if p.final {
		p.mu.Unlock()
		return
	}
	delete(p.outstanding, b.Child)
	if b.Accept {
		for _, c := range p.confirmed {
			if c == b.Child { // duplicate confirmation
				p.mu.Unlock()
				p.maybeFinalize()
				return
			}
		}
		p.confirmed = append(p.confirmed, b.Child)
		p.mu.Unlock()
		p.maybeFinalize()
		return
	}
	p.mu.Unlock()
	if repl, ok := p.replaceChild(b.Child); ok {
		p.sendControls([]string{repl})
		return
	}
	p.maybeFinalize()
}

// maybeFinalize closes the confirmation phase once every contacted child
// has answered (or been given up on) and no further alternates can be
// tried.
func (p *Peer) maybeFinalize() {
	p.mu.Lock()
	done := p.ctlSent && !p.final && len(p.outstanding) == 0 &&
		(len(p.confirmed) >= p.wanted || len(p.candQueue) == 0 || p.retryLeft <= 0)
	p.mu.Unlock()
	if done {
		p.finalize()
	}
}

// finalize closes TCoP's confirmation phase exactly once.
func (p *Peer) finalize() {
	p.mu.Lock()
	if p.final {
		p.mu.Unlock()
		return
	}
	p.final = true
	p.mu.Unlock()
	p.commitShares()
}

// commitShares splits the stream among this peer and its (confirmed or,
// under DCoP, directly assigned) children exactly at the mark: the
// parent's own switch applies when the transmit position reaches the
// mark, so hand-offs are gap- and duplicate-free. A child whose commit
// cannot be delivered (crashed between confirm and commit) is failed
// over: the parent re-absorbs that share into its own stream.
func (p *Peer) commitShares() {
	p.mu.Lock()
	confirmed := p.confirmed
	if len(confirmed) == 0 {
		p.mu.Unlock()
		return
	}
	k := len(confirmed) + 1
	// Mark far enough ahead that the commit reaches children before
	// their share begins.
	ahead := int(p.rate*p.cfg.Delta.Seconds()*2) + 1
	mark := p.pos + ahead
	step := content.DivStep{Mark: mark, Interval: k, Parts: k}
	parentDeriv := append(append([]content.DivStep{}, p.deriv...), step)
	rate := p.rate * float64(k+1) / float64(k*k)
	leaf := p.leaf
	served := p.content
	p.mu.Unlock()
	if served == nil {
		return
	}

	var absorbed seq.Sequence
	failed := 0
	for u, c := range confirmed {
		d := append([]content.DivStep{}, parentDeriv...)
		d[len(d)-1].Index = u + 1
		err := p.send(c, typeCommit, commitBody{
			Parent: p.Addr(), ContentID: served.ID(), Deriv: d, Rate: rate, Leaf: leaf,
		})
		if err != nil {
			// Hand-off failover: the unreachable child's share is
			// re-absorbed so delivery does not depend on repair.
			absorbed = seq.Union(absorbed, content.Materialize(served.Sequence(), d))
			failed++
			p.met.failovers.Inc()
		}
	}
	// The parent's own share: applied when pos reaches the mark.
	own := append([]content.DivStep{}, parentDeriv...)
	own[len(own)-1].Index = 0
	ownStream := content.Materialize(served.Sequence(), own)
	ownDeriv := own
	ownRate := rate
	if failed > 0 {
		ownStream = seq.Union(ownStream, absorbed)
		ownDeriv = nil // the union is no longer a pure derivation
		ownRate = rate * float64(1+failed)
	}
	p.mu.Lock()
	p.pendingMark = mark
	p.pendingStream = ownStream
	p.pendingDeriv = ownDeriv
	p.pendingRate = ownRate
	p.mu.Unlock()
	p.met.handoffs.Add(int64(len(confirmed) - failed))
}

// Under DCoP a commit may arrive at an already-active peer (redundant
// parent): the assigned subsequence is merged (unioned) into the unsent
// remainder and the rates add (§3.3's pkt_i := pkt_i ∪ pkt_ji).
func (p *Peer) onCommit(b commitBody) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return
	}
	p.mu.Lock()
	p.content = c
	if p.cfg.Protocol == protocol.DCoP {
		assigned := content.Materialize(c.Sequence(), b.Deriv)
		if p.active {
			var remaining seq.Sequence
			if p.pos < len(p.stream) {
				remaining = p.stream[p.pos:].Clone()
			}
			p.stream = seq.Union(remaining, assigned)
			p.derivOK = false
			p.pos = 0
			p.rate += b.Rate
			p.mu.Unlock()
			p.kick()
			return
		}
		p.leaf = b.Leaf
		p.deriv = b.Deriv
		p.derivOK = true
		p.stream = assigned
		p.pos = 0
		p.rate = b.Rate
		p.active = true
		p.mu.Unlock()
		p.met.activations.Inc()
		p.kick()
		p.selectChildren()
		return
	}
	// TCoP: accept from the parent we confirmed, or — when we never saw
	// a control packet (mid-stream join grant, or the control was lost
	// to churn) — adopt the committing peer as parent.
	if p.active || (p.parent != "" && p.parent != b.Parent) {
		p.mu.Unlock()
		return
	}
	p.parent = b.Parent
	p.view[b.Parent] = true
	p.leaf = b.Leaf
	p.deriv = b.Deriv
	p.derivOK = true
	p.stream = content.Materialize(c.Sequence(), b.Deriv)
	p.pos = 0
	p.rate = b.Rate
	p.active = true
	p.mu.Unlock()
	p.met.activations.Inc()
	p.kick()
	p.selectChildren()
}

// onRepair retransmits the requested data packets immediately.
func (p *Peer) onRepair(b repairBody) {
	c, ok := p.resolveContent(b.ContentID)
	if !ok {
		return
	}
	for _, k := range b.Indices {
		if k < 1 || k > c.NumPackets() {
			continue
		}
		if err := p.send(b.Leaf, typeData, dataBody{Pkt: c.Packet(k)}); err == nil {
			p.mu.Lock()
			p.sent++
			p.mu.Unlock()
			p.met.sent.Inc()
			p.met.repairServed.Inc()
		}
	}
}

// onJoin hands a mid-stream joiner a slice: the remaining stream is
// divided in two at a mark, the joiner is committed the second half, and
// this peer keeps the first. Declined when inactive, when a hand-off is
// already pending, or when the stream can no longer be expressed as a
// derivation (DCoP merges).
func (p *Peer) onJoin(b joinBody) {
	p.mu.Lock()
	ok := p.active && p.content != nil && p.derivOK && p.pendingStream == nil &&
		b.Joiner != "" && b.Joiner != p.Addr() &&
		(b.ContentID == "" || b.ContentID == p.content.ID())
	if !ok {
		p.mu.Unlock()
		return
	}
	ahead := int(p.rate*p.cfg.Delta.Seconds()*2) + 1
	mark := p.pos + ahead
	if mark >= len(p.stream)-1 {
		p.mu.Unlock()
		return // too little left to be worth sharing
	}
	step := content.DivStep{Mark: mark, Interval: 0, Parts: 2}
	deriv := append(append([]content.DivStep{}, p.deriv...), step)
	rate := p.rate / 2
	leaf := p.leaf
	served := p.content
	p.view[b.Joiner] = true
	p.mu.Unlock()

	child := append([]content.DivStep{}, deriv...)
	child[len(child)-1].Index = 1
	err := p.send(b.Joiner, typeCommit, commitBody{
		Parent: p.Addr(), ContentID: served.ID(), Deriv: child, Rate: rate, Leaf: leaf,
	})
	if err != nil {
		p.met.failovers.Inc()
		return // joiner unreachable; keep the whole stream
	}
	own := append([]content.DivStep{}, deriv...)
	own[len(own)-1].Index = 0
	ownStream := content.Materialize(served.Sequence(), own)
	p.mu.Lock()
	// Re-check: another hand-off may have been planned meanwhile.
	if p.active && p.pendingStream == nil {
		p.pendingMark = mark
		p.pendingStream = ownStream
		p.pendingDeriv = own
		p.pendingRate = rate
	}
	p.mu.Unlock()
	p.met.handoffs.Inc()
}

// kick wakes the streaming loop after an assignment change.
func (p *Peer) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// streamLoop transmits the current stream at the current rate.
func (p *Peer) streamLoop() {
	for {
		p.mu.Lock()
		active := p.active && p.pos < len(p.stream)
		rate := p.rate
		p.mu.Unlock()
		if !active {
			select {
			case <-p.stopCh:
				return
			case <-p.wake:
				continue
			}
		}
		interval := time.Duration(float64(time.Second) / rate)
		if interval < 50*time.Microsecond {
			interval = 50 * time.Microsecond
		}
		select {
		case <-p.stopCh:
			return
		case <-time.After(interval):
		}
		p.sendOne()
	}
}

func (p *Peer) sendOne() {
	p.mu.Lock()
	// Apply a pending hand-off exactly at its mark.
	if p.pendingStream != nil && p.pos >= p.pendingMark {
		p.stream = p.pendingStream
		p.deriv = p.pendingDeriv
		p.derivOK = p.pendingDeriv != nil
		p.pos = 0
		p.rate = p.pendingRate
		p.pendingStream = nil
		p.pendingDeriv = nil
	}
	if p.pos >= len(p.stream) {
		p.mu.Unlock()
		return
	}
	pkt := p.stream[p.pos]
	p.pos++
	p.sent++
	leaf := p.leaf
	p.mu.Unlock()
	p.met.sent.Inc()
	p.send(leaf, typeData, dataBody{Pkt: pkt}) //nolint:errcheck // a vanished leaf ends the session; repair handles the rest
}
