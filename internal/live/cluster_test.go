package live

import (
	"bytes"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

func TestClusterFabric(t *testing.T) {
	data := randomData(5000, 41)
	c, err := StartCluster(ClusterConfig{
		Content:  content.New("m", data, 64),
		Peers:    6,
		H:        3,
		Interval: 2,
		Rate:     400,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("cluster content mismatch")
	}
}

func TestClusterTCPWithCrash(t *testing.T) {
	data := randomData(6000, 42)
	c, err := StartCluster(ClusterConfig{
		Content:  content.New("m", data, 128),
		Peers:    6,
		H:        3,
		Interval: 2,
		Rate:     600,
		UseTCP:   true,
		Protocol: protocol.DCoP,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(150 * time.Millisecond)
	if killed := c.CrashActive(1); killed != 1 {
		t.Logf("no active peer yet; continuing without crash")
	}
	if err := c.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("TCP cluster content mismatch")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := StartCluster(ClusterConfig{Peers: 3, H: 2, Interval: 2, Rate: 100}); err == nil {
		t.Error("nil content accepted")
	}
	if _, err := StartCluster(ClusterConfig{Content: content.New("x", []byte("ab"), 1), Peers: 0, H: 1, Interval: 1, Rate: 1}); err == nil {
		t.Error("zero peers accepted")
	}
	if _, err := StartCluster(ClusterConfig{Content: content.New("x", []byte("ab"), 1), Peers: 2, H: 1, Interval: 1, Rate: 1, Protocol: "bogus"}); err == nil {
		t.Error("bogus protocol accepted")
	}
}

// A catalog of contents: peers hold a Store and the leaf requests one
// content by ID.
func TestStoreBackedPeers(t *testing.T) {
	movieA := randomData(3000, 51)
	movieB := randomData(2000, 52)
	store := content.NewStore()
	store.Put(content.New("alpha", movieA, 64))
	store.Put(content.New("beta", movieB, 64))

	f := newFabricFor(t)
	roster := []string{"s0", "s1", "s2", "s3", "s4"}
	var peers []*Peer
	for i, name := range roster {
		p, err := NewPeer(PeerConfig{
			Store:    store,
			Roster:   roster,
			H:        3,
			Interval: 2,
			Delta:    5 * time.Millisecond,
			Seed:     int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)

	leaf, err := NewLeaf(LeafConfig{
		Roster:      roster,
		H:           3,
		Interval:    2,
		Rate:        400,
		ContentID:   "beta",
		ContentSize: len(movieB),
		PacketSize:  64,
		RepairAfter: 300 * time.Millisecond,
		Seed:        9,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, movieB) {
		t.Fatal("store-backed session delivered wrong bytes")
	}
}

// Requesting a content nobody holds: peers ignore the request and the
// leaf times out rather than receiving garbage.
func TestUnknownContentIgnored(t *testing.T) {
	store := content.NewStore()
	store.Put(content.New("alpha", randomData(500, 53), 64))
	f := newFabricFor(t)
	roster := []string{"u0", "u1"}
	var peers []*Peer
	for i, name := range roster {
		p, err := NewPeer(PeerConfig{
			Store: store, Roster: roster, H: 2, Interval: 2,
			Delta: 5 * time.Millisecond, Seed: int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)
	leaf, err := NewLeaf(LeafConfig{
		Roster: roster, H: 2, Interval: 2, Rate: 100,
		ContentID: "missing", ContentSize: 500, PacketSize: 64, Seed: 3,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(400 * time.Millisecond); err == nil {
		t.Fatal("delivery of a content nobody holds")
	}
	if leaf.Progress() != 0 {
		t.Errorf("progress = %d for unknown content", leaf.Progress())
	}
}

func newFabricFor(t *testing.T) *transport.Fabric {
	t.Helper()
	return transport.NewFabric()
}
