package live

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/protocol"
	"p2pmss/internal/span"
	"p2pmss/internal/transport"
)

// NodeConfig configures a session-multiplexing live node.
type NodeConfig struct {
	// Store is the node's content catalog: it serves any session
	// requesting a content it holds.
	Store *content.Store
	// Roster lists every node's address (including this one).
	Roster []string
	// H is the selection fanout; Interval the parity interval h.
	H, Interval int
	// Delta is the assumed one-way latency for marking (default 10 ms).
	Delta time.Duration
	// Protocol selects TCoP (default) or DCoP for sessions this node
	// serves.
	Protocol Protocol
	// HandshakeTimeout and Retries tune the churn tolerance of serving
	// peers (see PeerConfig).
	HandshakeTimeout time.Duration
	Retries          int
	// Seed seeds per-session randomness deterministically; 0 uses the
	// clock.
	Seed int64
	// Obs bundles the node's observers in the struct shared with the
	// simulation. Non-nil members override the corresponding legacy
	// fields below; Obs.Trace and Obs.SpanTrace are ignored (trace IDs
	// are derived per session). Prefer Obs for new code.
	Obs obs.Observability
	// Metrics, when non-nil, instruments the node and all its sessions.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects causal spans for every session this
	// node participates in; each session gets its own trace, derived
	// from the session id so all nodes agree.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// Flight, when non-nil, records every serving peer's engine
	// event/effect stream into per-(session, peer) flight rings; all
	// nodes of a population share one set.
	//
	// Deprecated: set via Obs.Flight.
	Flight *flight.Set
}

// Node hosts a content store on one transport endpoint and participates
// in many concurrent streaming sessions — serving some as a contents
// peer and consuming others as a leaf. Inbound traffic is demultiplexed
// by the SessionID carried in every message; a request, control, or
// commit for an unknown session lazily creates the serving-peer state
// for it.
type Node struct {
	cfg NodeConfig
	ep  transport.Endpoint
	met nodeMetrics

	mu      sync.Mutex
	serving map[SessionID]*Peer
	leaves  map[SessionID]*Leaf
	nextID  int
	closed  bool

	closeOnce sync.Once
}

// NewNode creates a node on the given transport.
func NewNode(cfg NodeConfig, tr Transport) (*Node, error) {
	if tr == nil {
		return nil, fmt.Errorf("live: node needs a transport")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("live: node needs a store")
	}
	if cfg.H <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("live: H=%d and Interval=%d must be positive", cfg.H, cfg.Interval)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 10 * time.Millisecond
	}
	switch cfg.Protocol {
	case "":
		cfg.Protocol = protocol.TCoP
	case protocol.TCoP, protocol.DCoP:
	default:
		return nil, fmt.Errorf("live: unknown protocol %q", cfg.Protocol)
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.Flight != nil {
		cfg.Flight = cfg.Obs.Flight
	}
	n := &Node{
		cfg:     cfg,
		serving: make(map[SessionID]*Peer),
		leaves:  make(map[SessionID]*Leaf),
	}
	ep, err := tr.open(n.handle)
	if err != nil {
		return nil, err
	}
	// A datagram transport can dispatch n.handle the moment open binds
	// it, concurrently with this constructor; publish the endpoint under
	// n.mu, which handle acquires before touching node state.
	n.mu.Lock()
	n.ep = ep
	n.met = newNodeMetrics(cfg.Metrics, ep.Name())
	n.mu.Unlock()
	return n, nil
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.ep.Name() }

// handle demultiplexes inbound traffic by session: data goes to the
// session's leaf; coordination goes to the session's serving peer,
// lazily created when a request, control, or commit opens a session this
// node has not seen.
func (n *Node) handle(m transport.Msg) {
	sid := SessionID(m.Session)
	if sid == "" {
		return // node traffic is always session-scoped
	}
	n.mu.Lock()
	if n.closed || n.ep == nil {
		// ep == nil: the message beat the constructor; drop it like any
		// datagram for a process still booting.
		n.mu.Unlock()
		return
	}
	if m.Type == typeData {
		l := n.leaves[sid]
		n.mu.Unlock()
		if l != nil {
			l.handle(m)
		}
		return
	}
	p := n.serving[sid]
	if p == nil {
		switch m.Type {
		case typeRequest, typeControl, typeCommit:
			p = n.newServingPeerLocked(sid)
		}
		// Confirm, repair, and join only make sense for sessions the
		// node already participates in.
	}
	n.mu.Unlock()
	if p != nil {
		p.handle(m)
	}
}

// rosterIndex returns this node's position in the roster — the engine
// peer id its serving peers run under — or -1 when the node is not on
// its own roster.
func (n *Node) rosterIndex() int {
	self := n.ep.Name()
	for i, a := range n.cfg.Roster {
		if a == self {
			return i
		}
	}
	return -1
}

// sessionSeed derives a deterministic per-session seed.
func (n *Node) sessionSeed(sid SessionID) int64 {
	if n.cfg.Seed == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(n.ep.Name()))
	h.Write([]byte(sid))
	return n.cfg.Seed + int64(h.Sum64()&0x7fffffff)
}

// newServingPeerLocked creates per-session serving state. Callers hold
// n.mu. The config was validated at NewNode, so construction cannot
// fail.
func (n *Node) newServingPeerLocked(sid SessionID) *Peer {
	se := &sessionEndpoint{n: n, sid: sid}
	p, err := NewPeer(PeerConfig{
		Store:            n.cfg.Store,
		Roster:           n.cfg.Roster,
		H:                n.cfg.H,
		Interval:         n.cfg.Interval,
		Delta:            n.cfg.Delta,
		Protocol:         n.cfg.Protocol,
		Session:          sid,
		HandshakeTimeout: n.cfg.HandshakeTimeout,
		Retries:          n.cfg.Retries,
		Seed:             n.sessionSeed(sid),
		Metrics:          n.cfg.Metrics,
		Spans:            n.cfg.Spans,
		Flight:           n.cfg.Flight.Recorder(string(sid), n.rosterIndex()),
	}, WithAttach(func(transport.Handler) (transport.Endpoint, error) { return se, nil }))
	if err != nil {
		return nil
	}
	n.serving[sid] = p
	n.met.servingSessions.Add(1)
	return p
}

// SessionConfig describes one leaf session a node opens.
type SessionConfig struct {
	// ID names the session; empty generates a unique one.
	ID SessionID
	// ContentID names the content to stream.
	ContentID string
	// ContentSize and PacketSize describe the expected content.
	ContentSize, PacketSize int
	// Rate is the content rate in packets per second.
	Rate float64
	// H and Interval override the node defaults when positive.
	H, Interval int
	// RepairAfter is the leaf's stall-detection period; zero disables
	// repair.
	RepairAfter time.Duration
	// RequestRetry re-sends the session's content requests whose delivery
	// was never confirmed by data, for datagram transports that lose a
	// request without a send error; zero disables the retry loop.
	RequestRetry time.Duration
	// Seed overrides the node-derived per-session seed when non-zero.
	Seed int64
}

// LeafSession is a leaf session hosted on a node.
type LeafSession struct {
	ID SessionID
	*Leaf
}

// Open starts a leaf session on the node: the content is requested from
// the other nodes and reassembled here. Many sessions may be open
// concurrently on one node.
func (n *Node) Open(sc SessionConfig) (*LeafSession, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("live: node closed")
	}
	sid := sc.ID
	if sid == "" {
		n.nextID++
		sid = makeSessionID(n.ep.Name(), sc.ContentID, n.nextID)
	}
	if _, dup := n.leaves[sid]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("live: session %q already open", sid)
	}
	n.mu.Unlock()

	h := sc.H
	if h <= 0 {
		h = n.cfg.H
	}
	interval := sc.Interval
	if interval <= 0 {
		interval = n.cfg.Interval
	}
	var roster []string
	for _, a := range n.cfg.Roster {
		if a != n.Addr() {
			roster = append(roster, a)
		}
	}
	seed := sc.Seed
	if seed == 0 {
		seed = n.sessionSeed(sid)
	}
	se := &sessionEndpoint{n: n, sid: sid, leaf: true}
	l, err := NewLeaf(LeafConfig{
		Roster:       roster,
		H:            h,
		Interval:     interval,
		Rate:         sc.Rate,
		ContentID:    sc.ContentID,
		ContentSize:  sc.ContentSize,
		PacketSize:   sc.PacketSize,
		RepairAfter:  sc.RepairAfter,
		RequestRetry: sc.RequestRetry,
		Session:      sid,
		Seed:         seed,
		Metrics:      n.cfg.Metrics,
		Spans:        n.cfg.Spans,
	}, WithAttach(func(transport.Handler) (transport.Endpoint, error) { return se, nil }))
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.Close()
		return nil, fmt.Errorf("live: node closed")
	}
	n.leaves[sid] = l
	n.met.leafSessions.Add(1)
	n.mu.Unlock()
	if err := l.Start(); err != nil {
		l.Close()
		return nil, err
	}
	return &LeafSession{ID: sid, Leaf: l}, nil
}

// Join volunteers this node for an in-flight session: it asks the other
// nodes, round-robin, to hand over a slice of their remaining stream,
// and returns the node's serving peer once a member commits one. It
// errors when no member hands a slice before the timeout (e.g. the
// session already ended, or every member's stream is merged beyond
// slicing).
func (n *Node) Join(sid SessionID, contentID string, timeout time.Duration) (*Peer, error) {
	if sid == "" {
		return nil, fmt.Errorf("live: join needs a session id")
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("live: node closed")
	}
	p := n.serving[sid]
	if p == nil {
		p = n.newServingPeerLocked(sid)
	}
	n.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("live: node closed")
	}
	poll := n.cfg.Delta / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for i := 0; ; i++ {
		if p.Active() {
			return p, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("live: join %q: no member handed a slice within %s", sid, timeout)
		}
		target := n.cfg.Roster[i%len(n.cfg.Roster)]
		if target == n.Addr() {
			continue
		}
		p.send(target, typeJoin, joinBody{ContentID: contentID, Joiner: n.Addr()}) //nolint:errcheck // crashed members are skipped; the next roster entry is tried
		// Give the member a handshake period to commit a slice.
		round := time.Now().Add(4*n.cfg.Delta + 20*time.Millisecond)
		for time.Now().Before(round) {
			if p.Active() {
				return p, nil
			}
			time.Sleep(poll)
		}
	}
}

// Serving returns a snapshot of the sessions this node serves as a
// contents peer.
func (n *Node) Serving() map[SessionID]*Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[SessionID]*Peer, len(n.serving))
	for sid, p := range n.serving {
		out[sid] = p
	}
	return out
}

// Leaf returns the leaf for a session this node hosts, if any.
func (n *Node) Leaf(sid SessionID) (*Leaf, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.leaves[sid]
	return l, ok
}

// LeafCount returns how many leaf sessions the node hosts.
func (n *Node) LeafCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.leaves)
}

// Close stops every session and the node's endpoint. It is idempotent
// and safe to call concurrently or after individual sessions closed.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		n.closed = true
		peers := make([]*Peer, 0, len(n.serving))
		for _, p := range n.serving {
			peers = append(peers, p)
		}
		leaves := make([]*Leaf, 0, len(n.leaves))
		for _, l := range n.leaves {
			leaves = append(leaves, l)
		}
		n.mu.Unlock()
		for _, p := range peers {
			p.Close()
		}
		for _, l := range leaves {
			l.Close()
		}
		n.ep.Close()
	})
	return nil
}

// sessionEndpoint is the per-session view of a node's endpoint: sends
// delegate to the node (messages are already session-stamped by the
// participant), and Close detaches only this session, never the node.
type sessionEndpoint struct {
	n    *Node
	sid  SessionID
	leaf bool
}

func (e *sessionEndpoint) Name() string                          { return e.n.ep.Name() }
func (e *sessionEndpoint) Send(to string, m transport.Msg) error { return e.n.ep.Send(to, m) }

func (e *sessionEndpoint) Close() error {
	n := e.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.leaf {
		if _, ok := n.leaves[e.sid]; ok {
			delete(n.leaves, e.sid)
			n.met.leafSessions.Add(-1)
		}
	} else {
		if _, ok := n.serving[e.sid]; ok {
			delete(n.serving, e.sid)
			n.met.servingSessions.Add(-1)
		}
	}
	return nil
}

// ---- node cluster ---------------------------------------------------------

// NodesConfig wires a population of nodes sharing a catalog, over the
// in-memory fabric, TCP loopback, or UDP loopback.
type NodesConfig struct {
	// Nodes is the population size.
	Nodes int
	// Store is the catalog every node holds (per the MSS model, every
	// contents peer has the content).
	Store *content.Store
	// H, Interval, Protocol, Delta, HandshakeTimeout, Retries: see
	// NodeConfig.
	H, Interval      int
	Protocol         Protocol
	Delta            time.Duration
	HandshakeTimeout time.Duration
	Retries          int
	// UseTCP runs every node on its own TCP loopback socket.
	UseTCP bool
	// UseUDP runs every node on its own UDP loopback socket (real
	// datagram semantics; mutually exclusive with UseTCP).
	UseUDP bool
	// Impair injects seeded loss/duplication/reordering into every send
	// on the in-memory fabric or the UDP sockets; see transport.Impairment.
	Impair transport.Impairment
	// QueueCap and QueuePolicy bound the in-memory fabric's queue; see
	// ClusterConfig.
	QueueCap    int
	QueuePolicy transport.QueuePolicy
	// Seed seeds all nodes deterministically; 0 uses the clock.
	Seed int64
	// Obs bundles the population's observers in the struct shared with
	// the simulation. Non-nil members override the corresponding legacy
	// fields below; Obs.Trace and Obs.SpanTrace are ignored. Prefer
	// Obs for new code.
	Obs obs.Observability
	// Metrics instruments all nodes and the transport when non-nil.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects causal spans across every node and
	// session on one shared collector.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// Flight, when non-nil, records every serving peer's engine
	// event/effect stream across all nodes and sessions on one shared
	// set, served on /debug/flight via DebugHandlers.
	//
	// Deprecated: set via Obs.Flight.
	Flight *flight.Set
}

// NodeCluster is a running node population.
type NodeCluster struct {
	Nodes  []*Node
	fabric *transport.Fabric
	flight *flight.Set

	closeOnce sync.Once
}

// StartNodes builds a node population ready to open sessions.
func StartNodes(cfg NodesConfig) (*NodeCluster, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("live: nodes need a store")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("live: need at least one node")
	}
	if cfg.UseTCP && cfg.UseUDP {
		return nil, fmt.Errorf("live: UseTCP and UseUDP are mutually exclusive")
	}
	if cfg.UseTCP && cfg.Impair.Enabled() {
		return nil, fmt.Errorf("live: impairment needs a datagram transport (in-memory fabric or UDP), not TCP")
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.Flight != nil {
		cfg.Flight = cfg.Obs.Flight
	}
	nc := &NodeCluster{flight: cfg.Flight}
	var roster []string
	trs := make([]Transport, cfg.Nodes)
	if cfg.UseTCP {
		for i := range trs {
			lb := &lateBinder{}
			ep, err := transport.ListenTCP("127.0.0.1:0", lb.dispatch)
			if err != nil {
				nc.Close()
				return nil, err
			}
			lb.ep = ep
			ep.Instrument(cfg.Metrics)
			roster = append(roster, ep.Name())
			trs[i] = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
				lb.bind(h)
				return lb.ep, nil
			})
		}
	} else if cfg.UseUDP {
		delta := cfg.Delta
		if delta == 0 {
			delta = 10 * time.Millisecond
		}
		imp := udpImpairment(cfg.Impair, delta)
		for i := range trs {
			lb := &lateBinder{}
			ep, err := transport.ListenUDP("127.0.0.1:0", lb.dispatch)
			if err != nil {
				nc.Close()
				return nil, err
			}
			lb.ep = ep
			ep.Instrument(cfg.Metrics)
			ep.SetImpairment(imp)
			roster = append(roster, ep.Name())
			trs[i] = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
				lb.bind(h)
				return lb.ep, nil
			})
		}
	} else {
		nc.fabric = clusterFabric(cfg.QueueCap, cfg.QueuePolicy)
		nc.fabric.Instrument(cfg.Metrics)
		nc.fabric.SetImpairment(cfg.Impair)
		for i := range trs {
			name := fmt.Sprintf("node%d", i)
			roster = append(roster, name)
			trs[i] = WithFabric(nc.fabric, name)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		seed := cfg.Seed
		if seed != 0 {
			seed += int64(i) + 1
		}
		nd, err := NewNode(NodeConfig{
			Store:            cfg.Store,
			Roster:           roster,
			H:                cfg.H,
			Interval:         cfg.Interval,
			Delta:            cfg.Delta,
			Protocol:         cfg.Protocol,
			HandshakeTimeout: cfg.HandshakeTimeout,
			Retries:          cfg.Retries,
			Seed:             seed,
			Metrics:          cfg.Metrics,
			Spans:            cfg.Spans,
			Flight:           cfg.Flight,
		}, trs[i])
		if err != nil {
			nc.Close()
			return nil, err
		}
		nc.Nodes = append(nc.Nodes, nd)
	}
	return nc, nil
}

// Fabric exposes the in-memory fabric (nil under TCP) for fault
// injection in tests.
func (nc *NodeCluster) Fabric() *transport.Fabric { return nc.fabric }

// Open starts a leaf session on node i.
func (nc *NodeCluster) Open(i int, sc SessionConfig) (*LeafSession, error) {
	if i < 0 || i >= len(nc.Nodes) {
		return nil, fmt.Errorf("live: node %d out of range", i)
	}
	return nc.Nodes[i].Open(sc)
}

// CrashServing crash-stops up to k nodes that are actively serving at
// least one session as a contents peer while hosting no leaf session
// (so the injected churn hits servers, not consumers), and returns how
// many were stopped.
func (nc *NodeCluster) CrashServing(k int) int {
	killed := 0
	for _, nd := range nc.Nodes {
		if killed >= k {
			break
		}
		if nd.LeafCount() > 0 {
			continue
		}
		active := false
		for _, p := range nd.Serving() {
			if p.Active() {
				active = true
				break
			}
		}
		if active {
			nd.Close()
			killed++
		}
	}
	return killed
}

// Close stops every node. Idempotent.
func (nc *NodeCluster) Close() {
	nc.closeOnce.Do(func() {
		for _, nd := range nc.Nodes {
			nd.Close()
		}
	})
}
