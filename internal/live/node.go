package live

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/disco"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/protocol"
	"p2pmss/internal/span"
	"p2pmss/internal/transport"
)

// NodeConfig configures a session-multiplexing live node.
type NodeConfig struct {
	// Store is the node's content catalog: it serves any session
	// requesting a content it holds.
	Store *content.Store
	// Roster lists every node's address (including this one). It may be
	// empty when Discover (or Directory) resolves the membership
	// dynamically.
	Roster []string
	// Directory, when non-nil, resolves which peers serve a content for
	// session establishment, replacing the static Roster. The node does
	// not close an injected directory (it may be shared).
	Directory disco.Directory
	// Discover makes the node build its own gossip-backed directory
	// (internal/disco): it announces the Store's catalog over the node's
	// endpoint and resolves session rosters from the swarm, so Roster
	// can stay empty. Ignored when Directory is set.
	Discover bool
	// Bootstrap lists initial announcement contacts for Discover.
	Bootstrap []string
	// AnnounceInterval is the discovery announcement period (default
	// 500 ms); DirectoryTTL is how long an un-refreshed directory entry
	// lives (default 6×AnnounceInterval).
	AnnounceInterval time.Duration
	DirectoryTTL     time.Duration
	// DirectorySeed seeds the discovery gossip and signs announcements —
	// it is the swarm's shared secret, so every node must use the same
	// value (unlike Seed, which is perturbed per node). Zero falls back
	// to Seed.
	DirectorySeed int64
	// MaxSessions bounds the sessions (serving peers plus leaves) the
	// node admits concurrently; 0 is unlimited. Past the budget, inbound
	// session-opening traffic is dropped (the requesting leaf fails over
	// to another peer) and local Opens error.
	MaxSessions int
	// ReapAfter is how long a finished serving peer may sit idle before
	// its session state is reaped. Zero defaults to 5 s; negative
	// disables serving-peer reaping. Completed leaf sessions are always
	// reaped promptly (their results stay readable via the returned
	// LeafSession).
	ReapAfter time.Duration
	// H is the selection fanout; Interval the parity interval h.
	H, Interval int
	// Delta is the assumed one-way latency for marking (default 10 ms).
	Delta time.Duration
	// Protocol selects TCoP (default) or DCoP for sessions this node
	// serves.
	Protocol Protocol
	// HandshakeTimeout and Retries tune the churn tolerance of serving
	// peers (see PeerConfig).
	HandshakeTimeout time.Duration
	Retries          int
	// Seed seeds per-session randomness deterministically; 0 uses the
	// clock.
	Seed int64
	// Obs bundles the node's observers in the struct shared with the
	// simulation. Non-nil members override the corresponding legacy
	// fields below; Obs.Trace and Obs.SpanTrace are ignored (trace IDs
	// are derived per session). Prefer Obs for new code.
	Obs obs.Observability
	// Metrics, when non-nil, instruments the node and all its sessions.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects causal spans for every session this
	// node participates in; each session gets its own trace, derived
	// from the session id so all nodes agree.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// Flight, when non-nil, records every serving peer's engine
	// event/effect stream into per-(session, peer) flight rings; all
	// nodes of a population share one set.
	//
	// Deprecated: set via Obs.Flight.
	Flight *flight.Set
}

// sessionShards fixes the width of the node's session table. Power of
// two so the shard index is a mask of the session-id hash.
const sessionShards = 32

// sessionShard is one slice of a node's session table: its own lock,
// its own maps. Demultiplexing a thousand concurrent sessions through
// one node mutex made every data packet of every session contend on
// the same cache line; hashing the SessionID over fixed shards keeps
// unrelated sessions on unrelated locks.
type sessionShard struct {
	mu      sync.Mutex
	closed  bool
	serving map[SessionID]*Peer
	leaves  map[SessionID]*Leaf
}

// shardIndex hashes a session id (inline FNV-1a, no allocation) onto a
// shard slot.
func shardIndex(sid SessionID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(sid); i++ {
		h ^= uint32(sid[i])
		h *= 16777619
	}
	return h & (sessionShards - 1)
}

// nodeRuntime is the node state assembled during construction and
// published with a single atomic store: a handler that races the
// constructor (datagram transports dispatch the moment open binds)
// either sees all of it or none of it.
type nodeRuntime struct {
	ep      transport.Endpoint
	met     nodeMetrics
	dir     disco.Directory
	catalog *disco.Catalog // non-nil only when this node runs discovery
	ownDir  bool           // the node built dir and closes it
}

// Node hosts a content store on one transport endpoint and participates
// in many concurrent streaming sessions — serving some as a contents
// peer and consuming others as a leaf. Inbound traffic is demultiplexed
// by the SessionID carried in every message onto a sharded session
// table; a request, control, or commit for an unknown session lazily
// creates the serving-peer state for it.
type Node struct {
	cfg NodeConfig
	rt  atomic.Pointer[nodeRuntime]

	closed   atomic.Bool
	sessions atomic.Int64 // admitted sessions, serving + leaf
	shards   [sessionShards]sessionShard
	carry    bool // sessions resolve rosters dynamically; stamp them on the wire

	mu     sync.Mutex // guards nextID
	nextID int

	reapStop  chan struct{}
	reapDone  chan struct{}
	closeOnce sync.Once
}

// NewNode creates a node on the given transport.
func NewNode(cfg NodeConfig, tr Transport) (*Node, error) {
	if tr == nil {
		return nil, fmt.Errorf("live: node needs a transport")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("live: node needs a store")
	}
	if cfg.H <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("live: H=%d and Interval=%d must be positive", cfg.H, cfg.Interval)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 10 * time.Millisecond
	}
	if cfg.ReapAfter == 0 {
		cfg.ReapAfter = 5 * time.Second
	}
	switch cfg.Protocol {
	case "":
		cfg.Protocol = protocol.TCoP
	case protocol.TCoP, protocol.DCoP:
	default:
		return nil, fmt.Errorf("live: unknown protocol %q", cfg.Protocol)
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.Flight != nil {
		cfg.Flight = cfg.Obs.Flight
	}
	n := &Node{
		cfg:      cfg,
		carry:    cfg.Directory != nil || cfg.Discover,
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	if _, static := cfg.Directory.(*disco.Static); static {
		// An injected static directory is the configured-roster model;
		// its sessions need no wire roster.
		n.carry = false
	}
	for i := range n.shards {
		n.shards[i].serving = make(map[SessionID]*Peer)
		n.shards[i].leaves = make(map[SessionID]*Leaf)
	}
	ep, err := tr.open(n.handle)
	if err != nil {
		return nil, err
	}
	rt := &nodeRuntime{ep: ep, met: newNodeMetrics(cfg.Metrics, ep.Name())}
	switch {
	case cfg.Directory != nil:
		rt.dir = cfg.Directory
	case cfg.Discover:
		dseed := cfg.DirectorySeed
		if dseed == 0 {
			dseed = cfg.Seed
		}
		cat, err := disco.NewCatalog(disco.CatalogConfig{
			Self:      ep.Name(),
			Contents:  cfg.Store.IDs,
			Bootstrap: cfg.Bootstrap,
			Send: func(to string, payload []byte) {
				ep.Send(to, transport.Msg{Type: typeAnnounce, From: ep.Name(), Payload: payload}) //nolint:errcheck // gossip redundancy is the retry
			},
			Interval: cfg.AnnounceInterval,
			TTL:      cfg.DirectoryTTL,
			Seed:     dseed,
			Metrics:  cfg.Metrics,
		})
		if err != nil {
			ep.Close()
			return nil, err
		}
		rt.catalog = cat
		rt.dir = cat
		rt.ownDir = true
	default:
		rt.dir = disco.NewStatic(cfg.Roster)
		rt.ownDir = true
	}
	// Messages that beat this store are dropped, like any datagram
	// arriving while a process is still booting.
	n.rt.Store(rt)
	go n.reaper()
	return n, nil
}

// runtime returns the node's published runtime (never nil after NewNode
// returns).
func (n *Node) runtime() *nodeRuntime { return n.rt.Load() }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.runtime().ep.Name() }

// Directory returns the directory this node resolves session rosters
// from (a static roster wrapper unless discovery is configured).
func (n *Node) Directory() disco.Directory { return n.runtime().dir }

// handle demultiplexes inbound traffic by session: data goes to the
// session's leaf; coordination goes to the session's serving peer,
// lazily created when a request, control, or commit opens a session this
// node has not seen. Session-less announce traffic feeds the discovery
// catalog.
func (n *Node) handle(m transport.Msg) {
	rt := n.rt.Load()
	if rt == nil || n.closed.Load() {
		// The message beat the constructor (or the node is going down);
		// drop it like any datagram for a process still booting.
		return
	}
	sid := SessionID(m.Session)
	if sid == "" {
		if m.Type == typeAnnounce && rt.catalog != nil {
			rt.catalog.Deliver(m.From, []byte(m.Payload))
		}
		return // all other node traffic is session-scoped
	}
	sh := &n.shards[shardIndex(sid)]
	if m.Type == typeData {
		sh.mu.Lock()
		l := sh.leaves[sid]
		sh.mu.Unlock()
		if l != nil {
			l.handle(m)
		}
		return
	}
	sh.mu.Lock()
	p := sh.serving[sid]
	sh.mu.Unlock()
	if p == nil {
		switch m.Type {
		case typeRequest, typeControl, typeCommit:
			p = n.openServingPeer(rt, sh, sid, m)
			// Confirm, repair, and join only make sense for sessions the
			// node already participates in.
		}
	}
	if p != nil {
		p.handle(m)
	}
}

// sessionRosterFrom resolves the roster a session-opening message runs
// under: the roster carried on the wire when present (dynamically
// discovered sessions), else the node's static roster. Returns nil when
// neither exists — the session has no derivable peer numbering and the
// message must be dropped.
func (n *Node) sessionRosterFrom(m transport.Msg) []string {
	if n.carry {
		var probe struct {
			Roster []string `json:"roster"`
		}
		if m.Decode(&probe) == nil && len(probe.Roster) > 0 {
			return probe.Roster
		}
	}
	if len(n.cfg.Roster) > 0 {
		return n.cfg.Roster
	}
	return nil
}

// openServingPeer creates per-session serving state for an inbound
// session-opening message, enforcing the admission budget.
func (n *Node) openServingPeer(rt *nodeRuntime, sh *sessionShard, sid SessionID, m transport.Msg) *Peer {
	roster := n.sessionRosterFrom(m)
	if roster == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p := sh.serving[sid]; p != nil {
		return p // lost the race to a concurrent creator
	}
	if sh.closed {
		return nil
	}
	return n.newServingPeerLocked(rt, sh, sid, roster)
}

// admit claims one slot of the session budget, or rejects.
func (n *Node) admit(rt *nodeRuntime) bool {
	if n.cfg.MaxSessions > 0 && n.sessions.Add(1) > int64(n.cfg.MaxSessions) {
		n.sessions.Add(-1)
		rt.met.admissionRejected.Inc()
		return false
	}
	if n.cfg.MaxSessions <= 0 {
		n.sessions.Add(1)
	}
	return true
}

// rosterIndex returns the node's position in a session roster — the
// engine peer id its serving peer runs under — or -1 when off-roster.
func rosterIndex(roster []string, self string) int {
	for i, a := range roster {
		if a == self {
			return i
		}
	}
	return -1
}

// sessionSeed derives a deterministic per-session seed.
func (n *Node) sessionSeed(sid SessionID) int64 {
	if n.cfg.Seed == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(n.Addr()))
	h.Write([]byte(sid))
	return n.cfg.Seed + int64(h.Sum64()&0x7fffffff)
}

// newServingPeerLocked creates per-session serving state under the
// session roster. Callers hold sh.mu. The config was validated at
// NewNode, so construction cannot fail.
func (n *Node) newServingPeerLocked(rt *nodeRuntime, sh *sessionShard, sid SessionID, roster []string) *Peer {
	if !n.admit(rt) {
		return nil
	}
	se := &sessionEndpoint{n: n, sid: sid}
	p, err := NewPeer(PeerConfig{
		Store:            n.cfg.Store,
		Roster:           roster,
		CarryRoster:      n.carry,
		H:                n.cfg.H,
		Interval:         n.cfg.Interval,
		Delta:            n.cfg.Delta,
		Protocol:         n.cfg.Protocol,
		Session:          sid,
		HandshakeTimeout: n.cfg.HandshakeTimeout,
		Retries:          n.cfg.Retries,
		Seed:             n.sessionSeed(sid),
		Metrics:          n.cfg.Metrics,
		Spans:            n.cfg.Spans,
		Flight:           n.cfg.Flight.Recorder(string(sid), rosterIndex(roster, rt.ep.Name())),
	}, WithAttach(func(transport.Handler) (transport.Endpoint, error) { return se, nil }))
	if err != nil {
		n.sessions.Add(-1)
		return nil
	}
	sh.serving[sid] = p
	rt.met.servingSessions.Add(1)
	return p
}

// SessionConfig describes one leaf session a node opens.
type SessionConfig struct {
	// ID names the session; empty generates a unique one.
	ID SessionID
	// ContentID names the content to stream.
	ContentID string
	// ContentSize and PacketSize describe the expected content.
	ContentSize, PacketSize int
	// Rate is the content rate in packets per second.
	Rate float64
	// H and Interval override the node defaults when positive.
	H, Interval int
	// RepairAfter is the leaf's stall-detection period; zero disables
	// repair.
	RepairAfter time.Duration
	// RequestRetry re-sends the session's content requests whose delivery
	// was never confirmed by data, for datagram transports that lose a
	// request without a send error; zero disables the retry loop.
	RequestRetry time.Duration
	// Seed overrides the node-derived per-session seed when non-zero.
	Seed int64
}

// LeafSession is a leaf session hosted on a node.
type LeafSession struct {
	ID SessionID
	*Leaf
}

// Open starts a leaf session on the node: the serving peers are
// resolved from the node's directory (which peers announce the
// content), the content is requested from them, and reassembled here.
// Many sessions may be open concurrently on one node.
func (n *Node) Open(sc SessionConfig) (*LeafSession, error) {
	if n.closed.Load() {
		return nil, fmt.Errorf("live: node closed")
	}
	rt := n.runtime()
	sid := sc.ID
	if sid == "" {
		n.mu.Lock()
		n.nextID++
		sid = makeSessionID(rt.ep.Name(), sc.ContentID, n.nextID)
		n.mu.Unlock()
	}
	sh := &n.shards[shardIndex(sid)]
	sh.mu.Lock()
	_, dup := sh.leaves[sid]
	sh.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("live: session %q already open", sid)
	}

	h := sc.H
	if h <= 0 {
		h = n.cfg.H
	}
	interval := sc.Interval
	if interval <= 0 {
		interval = n.cfg.Interval
	}
	full := rt.dir.Lookup(sc.ContentID)
	var roster []string
	for _, a := range full {
		if a != rt.ep.Name() {
			roster = append(roster, a)
		}
	}
	if len(roster) == 0 {
		return nil, fmt.Errorf("live: no peers serve content %q", sc.ContentID)
	}
	seed := sc.Seed
	if seed == 0 {
		seed = n.sessionSeed(sid)
	}
	if !n.admit(rt) {
		return nil, fmt.Errorf("live: session budget exhausted (%d of %d open)", n.sessions.Load(), n.cfg.MaxSessions)
	}
	var sessionRoster []string
	if n.carry {
		sessionRoster = full
	}
	se := &sessionEndpoint{n: n, sid: sid, leaf: true}
	l, err := NewLeaf(LeafConfig{
		Roster:        roster,
		SessionRoster: sessionRoster,
		H:             h,
		Interval:      interval,
		Rate:          sc.Rate,
		ContentID:     sc.ContentID,
		ContentSize:   sc.ContentSize,
		PacketSize:    sc.PacketSize,
		RepairAfter:   sc.RepairAfter,
		RequestRetry:  sc.RequestRetry,
		Session:       sid,
		Seed:          seed,
		Metrics:       n.cfg.Metrics,
		Spans:         n.cfg.Spans,
	}, WithAttach(func(transport.Handler) (transport.Endpoint, error) { return se, nil }))
	if err != nil {
		n.sessions.Add(-1)
		return nil, err
	}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		n.sessions.Add(-1)
		l.Close()
		return nil, fmt.Errorf("live: node closed")
	}
	if _, dup := sh.leaves[sid]; dup {
		sh.mu.Unlock()
		n.sessions.Add(-1)
		l.Close()
		return nil, fmt.Errorf("live: session %q already open", sid)
	}
	sh.leaves[sid] = l
	rt.met.leafSessions.Add(1)
	sh.mu.Unlock()
	if err := l.Start(); err != nil {
		l.Close()
		return nil, err
	}
	return &LeafSession{ID: sid, Leaf: l}, nil
}

// Join volunteers this node for an in-flight session: it asks the other
// nodes serving the content, round-robin, to hand over a slice of their
// remaining stream, and returns the node's serving peer once a member
// commits one. It errors when no member hands a slice before the
// timeout (e.g. the session already ended, or every member's stream is
// merged beyond slicing).
func (n *Node) Join(sid SessionID, contentID string, timeout time.Duration) (*Peer, error) {
	if sid == "" {
		return nil, fmt.Errorf("live: join needs a session id")
	}
	if n.closed.Load() {
		return nil, fmt.Errorf("live: node closed")
	}
	rt := n.runtime()
	full := rt.dir.Lookup(contentID)
	if len(full) == 0 {
		full = n.cfg.Roster
	}
	var targets []string
	for _, a := range full {
		if a != rt.ep.Name() {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("live: join %q: no peers serve content %q", sid, contentID)
	}
	sh := &n.shards[shardIndex(sid)]
	sh.mu.Lock()
	p := sh.serving[sid]
	if p == nil && !sh.closed {
		p = n.newServingPeerLocked(rt, sh, sid, full)
	}
	sh.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("live: node closed or session budget exhausted")
	}
	poll := n.cfg.Delta / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for i := 0; ; i++ {
		if p.Active() {
			return p, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("live: join %q: no member handed a slice within %s", sid, timeout)
		}
		target := targets[i%len(targets)]
		p.send(target, typeJoin, joinBody{ContentID: contentID, Joiner: n.Addr()}) //nolint:errcheck // crashed members are skipped; the next roster entry is tried
		// Give the member a handshake period to commit a slice.
		round := time.Now().Add(4*n.cfg.Delta + 20*time.Millisecond)
		for time.Now().Before(round) {
			if p.Active() {
				return p, nil
			}
			time.Sleep(poll)
		}
	}
}

// Serving returns a snapshot of the sessions this node serves as a
// contents peer.
func (n *Node) Serving() map[SessionID]*Peer {
	out := make(map[SessionID]*Peer)
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for sid, p := range sh.serving {
			out[sid] = p
		}
		sh.mu.Unlock()
	}
	return out
}

// Leaf returns the leaf for a session this node hosts, if any.
func (n *Node) Leaf(sid SessionID) (*Leaf, bool) {
	sh := &n.shards[shardIndex(sid)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l, ok := sh.leaves[sid]
	return l, ok
}

// LeafCount returns how many leaf sessions the node hosts.
func (n *Node) LeafCount() int {
	count := 0
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		count += len(sh.leaves)
		sh.mu.Unlock()
	}
	return count
}

// SessionCount returns the sessions currently admitted (serving plus
// leaf), the number the MaxSessions budget meters.
func (n *Node) SessionCount() int { return int(n.sessions.Load()) }

// reaper periodically tears down idle session state: leaves whose
// reassembly completed, and serving peers that finished their stream
// and have been quiet for ReapAfter. Without it a long-lived node
// accretes one Peer (goroutine, engine, maps) per session it ever
// served.
func (n *Node) reaper() {
	defer close(n.reapDone)
	grace := n.cfg.ReapAfter
	tick := 50 * time.Millisecond
	if grace > 0 && grace/4 < tick {
		tick = grace / 4
		if tick < 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.reapStop:
			return
		case <-t.C:
		}
		n.reap(time.Now())
	}
}

// reap sweeps every shard once, removing and closing idle sessions.
// Removal happens here, under the shard lock, so the Close calls (which
// funnel into sessionEndpoint.Close) find the maps already clean and
// the gauges are decremented exactly once.
func (n *Node) reap(now time.Time) {
	rt := n.runtime()
	grace := n.cfg.ReapAfter
	for i := range n.shards {
		sh := &n.shards[i]
		var lvs []*Leaf
		var prs []*Peer
		sh.mu.Lock()
		for sid, l := range sh.leaves {
			select {
			case <-l.Done():
				delete(sh.leaves, sid)
				lvs = append(lvs, l)
			default:
			}
		}
		if grace > 0 {
			for sid, p := range sh.serving {
				if p.Quiesced(now, grace) {
					delete(sh.serving, sid)
					prs = append(prs, p)
				}
			}
		}
		sh.mu.Unlock()
		for _, l := range lvs {
			l.Close()
			rt.met.leafSessions.Add(-1)
			rt.met.leafReaped.Inc()
			n.sessions.Add(-1)
		}
		for _, p := range prs {
			p.Close()
			rt.met.servingSessions.Add(-1)
			rt.met.servingReaped.Inc()
			n.sessions.Add(-1)
		}
	}
}

// Close stops every session and the node's endpoint. It is idempotent
// and safe to call concurrently or after individual sessions closed.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		close(n.reapStop)
		<-n.reapDone
		rt := n.runtime()
		var peers []*Peer
		var leaves []*Leaf
		for i := range n.shards {
			sh := &n.shards[i]
			sh.mu.Lock()
			sh.closed = true
			for _, p := range sh.serving {
				peers = append(peers, p)
			}
			for _, l := range sh.leaves {
				leaves = append(leaves, l)
			}
			sh.mu.Unlock()
		}
		for _, p := range peers {
			p.Close()
		}
		for _, l := range leaves {
			l.Close()
		}
		if rt.ownDir {
			rt.dir.Close()
		}
		rt.ep.Close()
	})
	return nil
}

// sessionEndpoint is the per-session view of a node's endpoint: sends
// delegate to the node (messages are already session-stamped by the
// participant), and Close detaches only this session, never the node.
type sessionEndpoint struct {
	n    *Node
	sid  SessionID
	leaf bool
}

func (e *sessionEndpoint) Name() string { return e.n.runtime().ep.Name() }
func (e *sessionEndpoint) Send(to string, m transport.Msg) error {
	return e.n.runtime().ep.Send(to, m)
}

func (e *sessionEndpoint) Close() error {
	n := e.n
	rt := n.runtime()
	sh := &n.shards[shardIndex(e.sid)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.leaf {
		if _, ok := sh.leaves[e.sid]; ok {
			delete(sh.leaves, e.sid)
			rt.met.leafSessions.Add(-1)
			n.sessions.Add(-1)
		}
	} else {
		if _, ok := sh.serving[e.sid]; ok {
			delete(sh.serving, e.sid)
			rt.met.servingSessions.Add(-1)
			n.sessions.Add(-1)
		}
	}
	return nil
}

// ---- node cluster ---------------------------------------------------------

// NodesConfig wires a population of nodes sharing a catalog, over the
// in-memory fabric, TCP loopback, or UDP loopback.
type NodesConfig struct {
	// Nodes is the population size.
	Nodes int
	// Store is the catalog every node holds (per the MSS model, every
	// contents peer has the content). Ignored when Stores is set.
	Store *content.Store
	// Stores, when non-nil, gives each node its own catalog (len must
	// equal Nodes) — with Discover, nodes then announce genuinely
	// different contents and sessions resolve only the serving subset.
	Stores []*content.Store
	// Discover replaces the static roster wiring with gossip discovery:
	// every node runs its own directory catalog, bootstrapped off the
	// first node, and NodeConfig.Roster stays empty. Wait for
	// WaitDiscovery before opening sessions.
	Discover bool
	// AnnounceInterval and DirectoryTTL tune discovery (see NodeConfig).
	AnnounceInterval time.Duration
	DirectoryTTL     time.Duration
	// MaxSessions bounds each node's admitted sessions; 0 is unlimited.
	MaxSessions int
	// ReapAfter tunes idle serving-peer reaping (see NodeConfig).
	ReapAfter time.Duration
	// H, Interval, Protocol, Delta, HandshakeTimeout, Retries: see
	// NodeConfig.
	H, Interval      int
	Protocol         Protocol
	Delta            time.Duration
	HandshakeTimeout time.Duration
	Retries          int
	// UseTCP runs every node on its own TCP loopback socket.
	UseTCP bool
	// UseUDP runs every node on its own UDP loopback socket (real
	// datagram semantics; mutually exclusive with UseTCP).
	UseUDP bool
	// Impair injects seeded loss/duplication/reordering into every send
	// on the in-memory fabric or the UDP sockets; see transport.Impairment.
	Impair transport.Impairment
	// QueueCap and QueuePolicy bound the in-memory fabric's queue; see
	// ClusterConfig.
	QueueCap    int
	QueuePolicy transport.QueuePolicy
	// Seed seeds all nodes deterministically; 0 uses the clock.
	Seed int64
	// Obs bundles the population's observers in the struct shared with
	// the simulation. Non-nil members override the corresponding legacy
	// fields below; Obs.Trace and Obs.SpanTrace are ignored. Prefer
	// Obs for new code.
	Obs obs.Observability
	// Metrics instruments all nodes and the transport when non-nil.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects causal spans across every node and
	// session on one shared collector.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// Flight, when non-nil, records every serving peer's engine
	// event/effect stream across all nodes and sessions on one shared
	// set, served on /debug/flight via DebugHandlers.
	//
	// Deprecated: set via Obs.Flight.
	Flight *flight.Set
}

// NodeCluster is a running node population.
type NodeCluster struct {
	Nodes  []*Node
	fabric *transport.Fabric
	flight *flight.Set

	closeOnce sync.Once
}

// StartNodes builds a node population ready to open sessions.
func StartNodes(cfg NodesConfig) (*NodeCluster, error) {
	if cfg.Store == nil && cfg.Stores == nil {
		return nil, fmt.Errorf("live: nodes need a store")
	}
	if cfg.Stores != nil && len(cfg.Stores) != cfg.Nodes {
		return nil, fmt.Errorf("live: %d stores for %d nodes", len(cfg.Stores), cfg.Nodes)
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("live: need at least one node")
	}
	if cfg.UseTCP && cfg.UseUDP {
		return nil, fmt.Errorf("live: UseTCP and UseUDP are mutually exclusive")
	}
	if cfg.UseTCP && cfg.Impair.Enabled() {
		return nil, fmt.Errorf("live: impairment needs a datagram transport (in-memory fabric or UDP), not TCP")
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.Flight != nil {
		cfg.Flight = cfg.Obs.Flight
	}
	nc := &NodeCluster{flight: cfg.Flight}
	var roster []string
	trs := make([]Transport, cfg.Nodes)
	if cfg.UseTCP {
		for i := range trs {
			lb := &lateBinder{}
			ep, err := transport.ListenTCP("127.0.0.1:0", lb.dispatch)
			if err != nil {
				nc.Close()
				return nil, err
			}
			lb.ep = ep
			ep.Instrument(cfg.Metrics)
			roster = append(roster, ep.Name())
			trs[i] = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
				lb.bind(h)
				return lb.ep, nil
			})
		}
	} else if cfg.UseUDP {
		delta := cfg.Delta
		if delta == 0 {
			delta = 10 * time.Millisecond
		}
		imp := udpImpairment(cfg.Impair, delta)
		for i := range trs {
			lb := &lateBinder{}
			ep, err := transport.ListenUDP("127.0.0.1:0", lb.dispatch)
			if err != nil {
				nc.Close()
				return nil, err
			}
			lb.ep = ep
			ep.Instrument(cfg.Metrics)
			ep.SetImpairment(imp)
			roster = append(roster, ep.Name())
			trs[i] = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
				lb.bind(h)
				return lb.ep, nil
			})
		}
	} else {
		nc.fabric = clusterFabric(cfg.QueueCap, cfg.QueuePolicy)
		nc.fabric.Instrument(cfg.Metrics)
		nc.fabric.SetImpairment(cfg.Impair)
		for i := range trs {
			name := fmt.Sprintf("node%d", i)
			roster = append(roster, name)
			trs[i] = WithFabric(nc.fabric, name)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		seed := cfg.Seed
		if seed != 0 {
			seed += int64(i) + 1
		}
		store := cfg.Store
		if cfg.Stores != nil {
			store = cfg.Stores[i]
		}
		ncfg := NodeConfig{
			Store:            store,
			H:                cfg.H,
			Interval:         cfg.Interval,
			Delta:            cfg.Delta,
			Protocol:         cfg.Protocol,
			HandshakeTimeout: cfg.HandshakeTimeout,
			Retries:          cfg.Retries,
			MaxSessions:      cfg.MaxSessions,
			ReapAfter:        cfg.ReapAfter,
			Seed:             seed,
			Metrics:          cfg.Metrics,
			Spans:            cfg.Spans,
			Flight:           cfg.Flight,
		}
		if cfg.Discover {
			// No static roster: each node announces its own catalog and
			// resolves sessions from the swarm, bootstrapped off node 0.
			ncfg.Discover = true
			ncfg.Bootstrap = []string{roster[0]}
			ncfg.AnnounceInterval = cfg.AnnounceInterval
			ncfg.DirectoryTTL = cfg.DirectoryTTL
			// The announcement signature is a swarm-wide shared secret:
			// use the unperturbed population seed, not the per-node one.
			ncfg.DirectorySeed = cfg.Seed
		} else {
			ncfg.Roster = roster
		}
		nd, err := NewNode(ncfg, trs[i])
		if err != nil {
			nc.Close()
			return nil, err
		}
		nc.Nodes = append(nc.Nodes, nd)
	}
	return nc, nil
}

// Fabric exposes the in-memory fabric (nil under TCP) for fault
// injection in tests.
func (nc *NodeCluster) Fabric() *transport.Fabric { return nc.fabric }

// Open starts a leaf session on node i.
func (nc *NodeCluster) Open(i int, sc SessionConfig) (*LeafSession, error) {
	if i < 0 || i >= len(nc.Nodes) {
		return nil, fmt.Errorf("live: node %d out of range", i)
	}
	return nc.Nodes[i].Open(sc)
}

// WaitDiscovery blocks until every node's discovery directory has
// converged on the full population, or errors at the timeout. A no-op
// (nil) for statically wired clusters.
func (nc *NodeCluster) WaitDiscovery(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i, nd := range nc.Nodes {
		cat := nd.runtime().catalog
		if cat == nil {
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		if err := cat.WaitRoster(len(nc.Nodes), remaining); err != nil {
			return fmt.Errorf("live: node %d (%s): %w", i, nd.Addr(), err)
		}
	}
	return nil
}

// CrashServing crash-stops up to k nodes that are actively serving at
// least one session as a contents peer while hosting no leaf session
// (so the injected churn hits servers, not consumers), and returns how
// many were stopped.
func (nc *NodeCluster) CrashServing(k int) int {
	killed := 0
	for _, nd := range nc.Nodes {
		if killed >= k {
			break
		}
		if nd.LeafCount() > 0 {
			continue
		}
		active := false
		for _, p := range nd.Serving() {
			if p.Active() {
				active = true
				break
			}
		}
		if active {
			nd.Close()
			killed++
		}
	}
	return killed
}

// Close stops every node. Idempotent.
func (nc *NodeCluster) Close() {
	nc.closeOnce.Do(func() {
		for _, nd := range nc.Nodes {
			nd.Close()
		}
	})
}
