package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/metrics"
	"p2pmss/internal/transport"
)

// TestSwarmDiscoveryAcceptance is the issue's acceptance test: a node
// population with NO static roster — every node announces its own
// catalog over gossip and resolves session rosters from the swarm —
// sustains 1,000 concurrent sessions over a 32-content catalog in one
// process. Every session reconstructs its content byte-for-byte, and
// the /metrics endpoint serves per-session coordination-latency
// histograms plus the disco_* directory series.
func TestSwarmDiscoveryAcceptance(t *testing.T) {
	const (
		nodes    = 16
		contents = 32
		sessions = 1000
		pktSize  = 128
	)
	// Each content is held by 4 of the 16 nodes: discovery has to
	// resolve a genuinely different serving subset per content.
	data := make(map[string][]byte, contents)
	stores := make([]*content.Store, nodes)
	for i := range stores {
		stores[i] = content.NewStore()
	}
	for j := 0; j < contents; j++ {
		id := fmt.Sprintf("c%d", j)
		b := randomData(2048, 7000+int64(j))
		data[id] = b
		for _, off := range []int{0, 5, 9, 13} {
			stores[(j+off)%nodes].Put(content.New(id, b, pktSize))
		}
	}
	reg := metrics.New()
	nc, err := StartNodes(NodesConfig{
		Nodes:            nodes,
		Stores:           stores,
		Discover:         true,
		AnnounceInterval: 25 * time.Millisecond,
		// No churn here: a generous TTL keeps the directory stable while
		// announcement rounds queue behind a thousand sessions' data.
		DirectoryTTL:     30 * time.Second,
		H:                3,
		Interval:         2,
		Delta:            5 * time.Millisecond,
		HandshakeTimeout: 100 * time.Millisecond,
		ReapAfter:        300 * time.Millisecond,
		Seed:             7001,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := nc.WaitDiscovery(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// All sessions run concurrently: each goroutine opens, waits, and
	// byte-verifies one session.
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id := fmt.Sprintf("c%d", s%contents)
			ls, err := nc.Open(s%nodes, SessionConfig{
				ContentID:   id,
				ContentSize: len(data[id]),
				PacketSize:  pktSize,
				Rate:        800,
				RepairAfter: 400 * time.Millisecond,
			})
			if err != nil {
				errs[s] = fmt.Errorf("open: %w", err)
				return
			}
			if err := ls.Wait(120 * time.Second); err != nil {
				errs[s] = err
				return
			}
			got, ok := ls.Bytes()
			if !ok || !bytes.Equal(got, data[id]) {
				errs[s] = fmt.Errorf("content %s reconstructed wrong bytes", id)
			}
		}(s)
	}
	wg.Wait()
	failed := 0
	for s, err := range errs {
		if err != nil {
			failed++
			if failed <= 3 {
				t.Errorf("session %d: %v", s, err)
			}
		}
	}
	if failed > 0 {
		t.Fatalf("%d of %d sessions failed", failed, sessions)
	}

	// Verify the observability surface the way an operator would: scrape
	// /metrics over HTTP and count per-session latency histograms.
	mux := metrics.DebugMux(reg, nc.DebugHandlers()...)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	sessionHistograms := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "live_control_commit_latency_seconds_count{") &&
			strings.Contains(line, `session="`) {
			_, rest, _ := strings.Cut(line, `session="`)
			sid, _, _ := strings.Cut(rest, `"`)
			sessionHistograms[sid] = true
		}
	}
	if len(sessionHistograms) < sessions {
		t.Errorf("/metrics serves commit-latency histograms for %d sessions, want >= %d",
			len(sessionHistograms), sessions)
	}
	if !strings.Contains(body, "disco_records{") {
		t.Error("/metrics lacks the disco_records directory gauge")
	}
	// And the directory debug endpoint reports every node's swarm view.
	var dir map[string]json.RawMessage
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/directory")), &dir); err != nil {
		t.Fatalf("/debug/directory is not JSON: %v", err)
	}
	if len(dir) != nodes {
		t.Errorf("/debug/directory reports %d nodes, want %d", len(dir), nodes)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSwarmDiscoveryChurn: when a node crash-stops mid-swarm, its
// directory records expire from every surviving node after the TTL — no
// static roster ever knew about it, and no goodbye was sent.
func TestSwarmDiscoveryChurn(t *testing.T) {
	store, _ := chaosStore(2, 1<<10, 64, 7100)
	const ttl = 200 * time.Millisecond
	nc, err := StartNodes(NodesConfig{
		Nodes:            8,
		Store:            store,
		Discover:         true,
		AnnounceInterval: 20 * time.Millisecond,
		DirectoryTTL:     ttl,
		H:                2,
		Interval:         2,
		Seed:             7101,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := nc.WaitDiscovery(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := nc.Nodes[7].Addr()
	nc.Nodes[7].Close()
	deadline := time.Now().Add(10*ttl + time.Second)
	for _, nd := range nc.Nodes[:7] {
		for {
			alive := false
			for _, a := range nd.Directory().Lookup("c0") {
				if a == victim {
					alive = true
				}
			}
			if !alive {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s still in %s's directory long after the TTL", victim, nd.Addr())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if got := len(nd.Directory().Lookup("c0")); got != 7 {
			t.Errorf("%s: %d peers after crash, want 7", nd.Addr(), got)
		}
	}
}

// TestNodeReapsIdleSessions pins the reaping contract: finished leaf
// sessions and quiesced serving peers are torn down, the
// live_node_sessions_active gauges return to zero (never negative), the
// reaped counters account for every session — and the session results
// stay readable after the reap.
func TestNodeReapsIdleSessions(t *testing.T) {
	const sessions = 3
	store, data := chaosStore(sessions, 4<<10, 64, 7200)
	reg := metrics.New()
	nc, err := StartNodes(NodesConfig{
		Nodes:     4,
		Store:     store,
		H:         2,
		Interval:  2,
		Delta:     5 * time.Millisecond,
		ReapAfter: 50 * time.Millisecond,
		Seed:      7201,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	leaves := make([]*LeafSession, sessions)
	for i := range leaves {
		id := fmt.Sprintf("c%d", i)
		ls, err := nc.Open(i, SessionConfig{
			ContentID: id, ContentSize: len(data[id]), PacketSize: 64, Rate: 800,
		})
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = ls
	}
	for i, ls := range leaves {
		if err := ls.Wait(30 * time.Second); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	// The reaper must drain every node's session table without any
	// explicit Close from the application.
	gaugeSum := func(role string) float64 {
		var sum float64
		for _, g := range reg.Snapshot().Gauges {
			if g.Name != "live_node_sessions_active" {
				continue
			}
			for _, l := range g.Labels {
				if l.Key == "role" && l.Value == role {
					sum += g.Value
				}
			}
		}
		return sum
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := 0
		for _, nd := range nc.Nodes {
			total += nd.SessionCount()
		}
		if total == 0 && gaugeSum("leaf") == 0 && gaugeSum("peer") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never reaped: %d admitted, leaf gauge %v, peer gauge %v",
				total, gaugeSum("leaf"), gaugeSum("peer"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	var leafReaped, peerReaped int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name != "live_node_sessions_reaped_total" {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == "role" {
				switch l.Value {
				case "leaf":
					leafReaped += c.Value
				case "peer":
					peerReaped += c.Value
				}
			}
		}
	}
	if leafReaped != sessions {
		t.Errorf("leaf sessions reaped = %d, want %d", leafReaped, sessions)
	}
	if peerReaped == 0 {
		t.Error("no quiesced serving peers were reaped")
	}
	// Reaping tears down session state, not session results.
	for i, ls := range leaves {
		got, ok := ls.Bytes()
		if !ok || !bytes.Equal(got, data[fmt.Sprintf("c%d", i)]) {
			t.Errorf("session %d results unreadable after reap", i)
		}
	}
}

// TestNodeAdmissionBudget: MaxSessions bounds what a node admits; the
// rejection is observable, and closing a session frees its slot.
func TestNodeAdmissionBudget(t *testing.T) {
	store, data := chaosStore(2, 1<<10, 64, 7300)
	reg := metrics.New()
	f := transport.NewFabric()
	roster := []string{"a0", "a1", "a2"}
	mk := func(name string, maxSessions int) *Node {
		nd, err := NewNode(NodeConfig{
			Store:       store,
			Roster:      roster,
			H:           2,
			Interval:    2,
			MaxSessions: maxSessions,
			ReapAfter:   -1, // manual lifecycle: the budget, not the reaper, frees slots
			Seed:        7301,
			Metrics:     reg,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		return nd
	}
	n0 := mk("a0", 1)
	mk("a1", 0)
	mk("a2", 0)

	sc := func(id string) SessionConfig {
		return SessionConfig{ContentID: id, ContentSize: len(data[id]), PacketSize: 64, Rate: 800}
	}
	ls, err := n0.Open(sc("c0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n0.Open(sc("c1")); err == nil {
		t.Fatal("second session admitted past MaxSessions=1")
	}
	if v := reg.Counter("live_node_admission_rejected_total", "node", "a0").Value(); v == 0 {
		t.Error("admission rejection not counted")
	}
	if err := ls.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	ls.Close() // frees the slot
	if _, err := n0.Open(sc("c1")); err != nil {
		t.Fatalf("slot not freed after close: %v", err)
	}
}

// TestStaticRosterStillDefault pins the migration contract: a cluster
// without Discover resolves sessions through the static-roster shim and
// behaves exactly as before — the Directory accessor reports the
// configured roster verbatim.
func TestStaticRosterStillDefault(t *testing.T) {
	store, data := chaosStore(1, 2<<10, 64, 7400)
	nc, err := StartNodes(NodesConfig{Nodes: 4, Store: store, H: 2, Interval: 2, Seed: 7401})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if got := nc.Nodes[0].Directory().Roster(); len(got) != 4 || got[0] != "node0" {
		t.Fatalf("static directory roster = %v", got)
	}
	ls, err := nc.Open(0, SessionConfig{
		ContentID: "c0", ContentSize: len(data["c0"]), PacketSize: 64, Rate: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := ls.Bytes()
	if !ok || !bytes.Equal(got, data["c0"]) {
		t.Fatal("static-roster session reconstructed wrong bytes")
	}
}
