package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/overlay"
	"p2pmss/internal/transport"
)

// scrapeBody GETs a path from the debug server and returns the body.
func scrapeBody(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	return body
}

// TestClusterOverlayEdgesMatchOutcomes is the introspection acceptance
// test: a 100-peer live session under 5% injected loss completes, and
// the /debug/overlay snapshot's edges exactly match the edges derived
// from the peers' own committed engine outcomes — the snapshot reports
// the overlay that actually exists, not an approximation of it.
func TestClusterOverlayEdgesMatchOutcomes(t *testing.T) {
	data := make([]byte, 12000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	reg := metrics.New()
	fl := flight.NewSet(0)
	cl, err := StartCluster(ClusterConfig{
		Content:     content.New("accept", data, 128),
		Peers:       100,
		H:           10,
		Interval:    3,
		Rate:        2000,
		Impair:      transport.Impairment{Seed: 424, Loss: 0.05, Reorder: 0.02, ReorderWindow: 4},
		RepairAfter: 250 * time.Millisecond,
		Seed:        424,
		Metrics:     reg,
		Flight:      fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Quiesce: Close stops every peer, so outcomes and the snapshot are
	// frozen for the comparison.
	cl.Close()

	srv := httptest.NewServer(metrics.DebugMux(reg, cl.DebugHandlers()...))
	defer srv.Close()

	var snap overlay.Snapshot
	if err := json.Unmarshal(scrapeBody(t, srv.URL, "/debug/overlay"), &snap); err != nil {
		t.Fatalf("overlay snapshot is not JSON: %v", err)
	}
	if snap.Version != overlay.SnapshotVersion || len(snap.Nodes) != 100 {
		t.Fatalf("snapshot version=%d nodes=%d", snap.Version, len(snap.Nodes))
	}

	// The committed truth: every peer's engine outcome, edges derived the
	// same way the snapshotter must derive them (children lists, deduped).
	var wantEdges []overlay.Edge
	active := 0
	for _, p := range cl.Peers {
		o := p.Outcome()
		if o.Active {
			active++
		}
		seen := make(map[int]bool, len(o.Children))
		for _, c := range o.Children {
			if !seen[int(c)] {
				seen[int(c)] = true
				wantEdges = append(wantEdges, overlay.Edge{Parent: int(o.ID), Child: int(c)})
			}
		}
	}
	if active == 0 || len(wantEdges) == 0 {
		t.Fatalf("vacuous run: %d active peers, %d edges", active, len(wantEdges))
	}
	if len(snap.Edges) != len(wantEdges) {
		t.Fatalf("snapshot has %d edges, outcomes commit %d", len(snap.Edges), len(wantEdges))
	}
	for i, e := range wantEdges {
		if snap.Edges[i] != e {
			t.Errorf("edge %d: snapshot %v, outcome %v", i, snap.Edges[i], e)
		}
	}
	if snap.Health.ActivePeers != active {
		t.Errorf("snapshot active=%d, outcomes say %d", snap.Health.ActivePeers, active)
	}
	if snap.Health.Coverage <= 0 || snap.Health.Coverage > 1.0001 {
		t.Errorf("coverage = %v, want (0, 1]", snap.Health.Coverage)
	}

	// DOT rendering of the same snapshot.
	dot := string(scrapeBody(t, srv.URL, "/debug/overlay?format=dot"))
	if !strings.HasPrefix(dot, "digraph overlay {") || !strings.Contains(dot, "->") {
		t.Errorf("DOT output malformed:\n%.200s", dot)
	}

	// Flight log served and non-empty.
	flightBody := scrapeBody(t, srv.URL, "/debug/flight")
	events, err := flight.ReadJSONL(strings.NewReader(string(flightBody)))
	if err != nil {
		t.Fatalf("flight body: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("flight endpoint returned no events")
	}

	// The run went through 5% loss: the impairment verdict counters and
	// the overlay gauges must both have landed in the registry.
	ms := reg.Snapshot()
	var drops int64
	for _, c := range ms.Counters {
		if c.Name == "transport_impaired_total" {
			for _, l := range c.Labels {
				if l.Key == "verdict" && l.Value == "drop" {
					drops += c.Value
				}
			}
		}
	}
	if drops == 0 {
		t.Error("transport_impaired_total{verdict=drop} never incremented under 5% loss")
	}
	foundGauge := false
	for _, g := range ms.Gauges {
		if g.Name == "overlay_active_peers" && g.Value == float64(active) {
			foundGauge = true
		}
	}
	if !foundGauge {
		t.Errorf("overlay_active_peers gauge missing or wrong (want %d)", active)
	}
}

// TestNodeClusterDebugEndpointsUnderChaos scrapes /debug/overlay and
// /debug/flight continuously while 8 concurrent sessions stream and two
// serving nodes crash mid-run — the endpoints must stay consistent and
// race-clean under churn, and the final snapshots must cover every
// session.
func TestNodeClusterDebugEndpointsUnderChaos(t *testing.T) {
	const sessions = 8
	store := content.NewStore()
	data := make(map[string][]byte, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("c%d", i)
		b := make([]byte, 16<<10)
		for j := range b {
			b[j] = byte(j*7 + i)
		}
		store.Put(content.New(id, b, 128))
		data[id] = b
	}
	reg := metrics.New()
	fl := flight.NewSet(0)
	nc, err := StartNodes(NodesConfig{
		Nodes:            12,
		Store:            store,
		H:                3,
		Interval:         2,
		Delta:            5 * time.Millisecond,
		HandshakeTimeout: 80 * time.Millisecond,
		Seed:             717,
		Metrics:          reg,
		Flight:           fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	srv := httptest.NewServer(metrics.DebugMux(reg, nc.DebugHandlers()...))
	defer srv.Close()

	leaves := make([]*LeafSession, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("c%d", i)
		ls, err := nc.Open(i, SessionConfig{
			ContentID:   id,
			ContentSize: len(data[id]),
			PacketSize:  128,
			Rate:        600,
			RepairAfter: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open session %d: %v", i, err)
		}
		leaves[i] = ls
	}

	// Scrapers hammer both endpoints while streams run and nodes crash.
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 3; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/debug/overlay", "/debug/flight", "/debug/overlay?session=c0&format=dot"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						continue // server shutting down
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain only
					resp.Body.Close()
				}
			}
		}()
	}

	// Mid-run assertion scrapes: serving entries vanish when a session
	// completes, so the all-sessions map must be sampled while streams
	// are live. Accumulate across polls until every session has shown up.
	all := make(map[string]overlay.Snapshot)
	deadline := time.Now().Add(5 * time.Second)
	for len(all) < sessions && time.Now().Before(deadline) {
		var one map[string]overlay.Snapshot
		if err := json.Unmarshal(scrapeBody(t, srv.URL, "/debug/overlay"), &one); err != nil {
			t.Fatalf("all-sessions overlay: %v", err)
		}
		for sid, snap := range one {
			all[sid] = snap
		}
		time.Sleep(10 * time.Millisecond)
	}

	killed := nc.CrashServing(2)
	t.Logf("crashed %d serving nodes mid-stream", killed)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, ls := range leaves {
		wg.Add(1)
		go func(i int, ls *LeafSession) {
			defer wg.Done()
			errs[i] = ls.Wait(60 * time.Second)
		}(i, ls)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}

	// Every session must have appeared in a mid-run overlay scrape and
	// left events in the (persistent) flight log.
	events, err := flight.ReadJSONL(strings.NewReader(string(scrapeBody(t, srv.URL, "/debug/flight"))))
	if err != nil {
		t.Fatal(err)
	}
	bySession := make(map[string]int)
	for _, e := range events {
		bySession[e.Session]++
	}
	// Session ids are node/contentID#n; find each content's session.
	for i := 0; i < sessions; i++ {
		marker := fmt.Sprintf("/c%d#", i)
		found := ""
		for sid := range all {
			if strings.Contains(sid, marker) {
				found = sid
				break
			}
		}
		if found == "" {
			t.Errorf("content c%d never appeared in a mid-run /debug/overlay scrape (have %d sessions)", i, len(all))
			continue
		}
		snap := all[found]
		if snap.Session != found || len(snap.Nodes) == 0 {
			t.Errorf("session %s snapshot = %d nodes, session label %q", found, len(snap.Nodes), snap.Session)
		}
		if bySession[found] == 0 {
			t.Errorf("session %s has no flight events", found)
		}
	}
}

// TestServeFlightDisabled pins the 404 contract when recording is off.
func TestServeFlightDisabled(t *testing.T) {
	rec := httptest.NewRecorder()
	serveFlight(rec, httptest.NewRequest("GET", "/debug/flight", nil), nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("disabled flight endpoint returned %d, want 404", rec.Code)
	}
}
