package live

import "fmt"

// SessionID identifies one streaming session on a Node. Every message a
// session participant sends carries the ID (transport.Msg.Session) so a
// node endpoint hosting many concurrent sessions can demultiplex, and
// per-session metrics series are labeled by it.
type SessionID string

// makeSessionID derives a deterministic session ID from a node address,
// content ID and a per-node counter.
func makeSessionID(node, contentID string, n int) SessionID {
	return SessionID(fmt.Sprintf("%s/%s#%d", node, contentID, n))
}
