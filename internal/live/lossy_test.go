package live

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

// buildLossySession builds an n-peer session plus a leaf on fabric f,
// letting the caller adjust the leaf's knobs before it binds.
func buildLossySession(t *testing.T, f *transport.Fabric, n, H, interval int, proto Protocol, data []byte, packetSize int, seed int64, adjust func(*LeafConfig)) ([]*Peer, *Leaf) {
	t.Helper()
	c := content.New("movie", data, packetSize)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("cp%d", i)
	}
	peers := make([]*Peer, n)
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content: c, Roster: names, H: H, Interval: interval,
			Protocol: proto, Delta: 5 * time.Millisecond, Seed: seed + int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	cfg := LeafConfig{
		Roster: names, H: H, Interval: interval, Rate: 400,
		ContentSize: len(data), PacketSize: packetSize,
		RepairAfter: 300 * time.Millisecond, Seed: seed + 1000,
	}
	if adjust != nil {
		adjust(&cfg)
	}
	leaf, err := NewLeaf(cfg, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	return peers, leaf
}

// TestLeafRequestRetryAfterLostRequest: regression for the silent-
// request-loss bug. Start's failover only reacts to Send errors, but a
// datagram transport loses a request without one — the selected peer
// never activates and its whole division goes missing, which is more
// loss than parity covers. Here the fabric swallows the leaf's first
// request (returning nil, as UDP would); with repair disabled, only the
// RequestRetry deadline can revive the slot.
func TestLeafRequestRetryAfterLostRequest(t *testing.T) {
	data := randomData(4000, 8)
	f := transport.NewFabric()
	var swallowed int32
	f.Drop = func(from, to string) bool {
		// The leaf's first send is the request for slot 0.
		return from == "leaf" && atomic.AddInt32(&swallowed, 1) == 1
	}
	peers, leaf := buildLossySession(t, f, 6, 3, 2, protocol.DCoP, data, 64, 21, func(cfg *LeafConfig) {
		cfg.RepairAfter = 0 // isolate: only the request deadline may save this
		cfg.RequestRetry = 150 * time.Millisecond
	})
	defer leaf.Close()
	defer closeAll(peers)

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatalf("leaf never completed after a silently lost request: %v", err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ after request retry")
	}
	if atomic.LoadInt32(&swallowed) < 2 {
		t.Fatal("the request was never re-sent")
	}
}

// TestLeafDuplicateRepairDelivery: regression for duplicate-delivery
// handling on the stall/re-request path. Heavy duplication (every other
// message delivered twice) combined with loss forces repair rounds whose
// retransmissions also arrive in duplicate; progress accounting must
// count each packet once, complete exactly when all are present, and
// reconstruct byte-identical content.
func TestLeafDuplicateRepairDelivery(t *testing.T) {
	data := randomData(4000, 9)
	f := transport.NewFabric()
	f.SetImpairment(transport.Impairment{Seed: 31, Loss: 0.10, Duplicate: 0.5})
	peers, leaf := buildLossySession(t, f, 6, 3, 2, protocol.TCoP, data, 64, 33, func(cfg *LeafConfig) {
		cfg.RepairAfter = 250 * time.Millisecond
		cfg.RequestRetry = 250 * time.Millisecond
	})
	defer leaf.Close()
	defer closeAll(peers)

	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ under duplication")
	}
	_, dup, _ := leaf.Stats()
	if dup == 0 {
		t.Fatal("no duplicate ever reached the leaf; the regression went unexercised")
	}
	want := int64(len(data)+63) / 64
	if have := leaf.Progress(); have != want {
		t.Fatalf("progress counted %d packets of %d — duplicates double-counted", have, want)
	}
}

// TestLiveLossAcceptance is the §3.2 acceptance matrix: for both
// protocols, a leaf receiving at rate τ(h+1)/h reconstructs
// byte-identical content through 1%, 5%, and bursty 20% injected loss
// (with reordering and duplication on top), race-clean.
func TestLiveLossAcceptance(t *testing.T) {
	data := randomData(6000, 12)
	cases := []struct {
		name string
		imp  transport.Impairment
	}{
		{"loss1pct", transport.Impairment{Seed: 101, Loss: 0.01, Reorder: 0.05, ReorderWindow: 4}},
		{"loss5pct", transport.Impairment{Seed: 102, Loss: 0.05, Duplicate: 0.02, Reorder: 0.05, ReorderWindow: 4}},
		{"burst20pct", transport.Impairment{Seed: 103, Loss: 0.05, BurstLen: 3, Reorder: 0.03, ReorderWindow: 6}},
	}
	for _, proto := range []Protocol{protocol.DCoP, protocol.TCoP} {
		proto := proto
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("%v/%s", proto, tc.name), func(t *testing.T) {
				t.Parallel()
				f := transport.NewFabric()
				f.SetImpairment(tc.imp)
				peers, leaf := buildLossySession(t, f, 8, 3, 3, proto, data, 64, tc.imp.Seed, func(cfg *LeafConfig) {
					cfg.RepairAfter = 250 * time.Millisecond
					cfg.RequestRetry = 250 * time.Millisecond
				})
				defer leaf.Close()
				defer closeAll(peers)
				if err := leaf.Start(); err != nil {
					t.Fatal(err)
				}
				if err := leaf.Wait(60 * time.Second); err != nil {
					t.Fatal(err)
				}
				got, ok := leaf.Bytes()
				if !ok || !bytes.Equal(got, data) {
					t.Fatalf("%v/%s: reassembled bytes differ", proto, tc.name)
				}
			})
		}
	}
}

// TestLiveOverUDPWithLoss is the tentpole acceptance test: a full session
// over real UDP sockets — every peer and the leaf on its own datagram
// socket — with 5% injected loss plus reordering on every link, for both
// protocols. No send ever reports failure on UDP, so completion proves
// the coordination plane survives on timer deadlines alone and the data
// plane on §3.2 parity plus repair, ending byte-identical.
func TestLiveOverUDPWithLoss(t *testing.T) {
	data := randomData(6000, 5)
	for _, proto := range []Protocol{protocol.DCoP, protocol.TCoP} {
		proto := proto
		t.Run(fmt.Sprintf("%v", proto), func(t *testing.T) {
			t.Parallel()
			cl, err := StartCluster(ClusterConfig{
				Content:     content.New("movie", data, 64),
				Peers:       8,
				H:           3,
				Interval:    3,
				Rate:        400,
				Protocol:    proto,
				UseUDP:      true,
				Impair:      transport.Impairment{Seed: 7, Loss: 0.05, Reorder: 0.05, ReorderWindow: 4},
				Delta:       5 * time.Millisecond,
				RepairAfter: 250 * time.Millisecond,
				Seed:        11,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if err := cl.Wait(60 * time.Second); err != nil {
				t.Fatal(err)
			}
			got, ok := cl.Bytes()
			if !ok || !bytes.Equal(got, data) {
				t.Fatal("reassembled bytes differ over lossy UDP")
			}
		})
	}
}

// TestNodesOverUDPWithLoss runs the session-multiplexing node layer on
// real UDP sockets with injected loss and reordering: two concurrent
// sessions over one node population, each reconstructing byte-identical
// content.
func TestNodesOverUDPWithLoss(t *testing.T) {
	const sessions = 2
	store, data := chaosStore(sessions, 4000, 64, 60)
	nc, err := StartNodes(NodesConfig{
		Nodes:    8,
		Store:    store,
		H:        3,
		Interval: 3,
		Delta:    5 * time.Millisecond,
		UseUDP:   true,
		Impair:   transport.Impairment{Seed: 55, Loss: 0.03, Reorder: 0.03, ReorderWindow: 4},
		Seed:     70,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	leaves := make([]*LeafSession, sessions)
	for i := range leaves {
		id := fmt.Sprintf("c%d", i)
		ls, err := nc.Open(i, SessionConfig{
			ContentID:    id,
			ContentSize:  len(data[id]),
			PacketSize:   64,
			Rate:         400,
			RepairAfter:  250 * time.Millisecond,
			RequestRetry: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("open session %d: %v", i, err)
		}
		leaves[i] = ls
	}
	for i, ls := range leaves {
		if err := ls.Wait(60 * time.Second); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		got, ok := ls.Bytes()
		if !ok || !bytes.Equal(got, data[fmt.Sprintf("c%d", i)]) {
			t.Fatalf("session %d delivered wrong bytes over lossy UDP", i)
		}
	}
}

// Seeded-impairment determinism on the in-process fabric is pinned at
// the transport layer (TestFabricImpairmentDeterministic), where the
// send sequence is scripted. A full live session cannot assert count
// determinism: streaming is wall-clock paced, so hand-off marks — and
// with them how many data packets each peer emits — legitimately vary
// between runs even when every impairment verdict is reproducible.
