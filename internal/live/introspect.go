package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"p2pmss/internal/engine"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/overlay"
)

// This file is the live layer's introspection surface: topology
// snapshots built from the peers' engine outcomes, flight-log access,
// the /debug/overlay and /debug/flight handlers mounted on
// metrics.DebugMux, and the automatic dump a stalled Leaf.Wait
// triggers.

// Snapshot walks every peer's coordination outcome into a versioned
// overlay snapshot (slot assignments, hand-off edges, per-peer
// role/depth, tree health). It is safe mid-run and after Close — peer
// outcomes are mutex-guarded — and refreshes the overlay_* gauges when
// the cluster is instrumented.
func (c *Cluster) Snapshot() overlay.Snapshot {
	outs := make([]engine.Outcome, 0, len(c.Peers))
	for _, p := range c.Peers {
		outs = append(outs, p.Outcome())
	}
	s := engine.TopologySnapshot(outs, engine.TopologyInfo{
		Protocol:   c.protoName,
		Time:       liveNow(),
		ContentLen: c.contentLen,
		Addr: func(id engine.PeerID) string {
			if id >= 0 && int(id) < len(c.roster) {
				return c.roster[id]
			}
			return ""
		},
	})
	engine.PublishTopology(c.metrics, s)
	return s
}

// Flight returns the cluster's flight recorder set (nil when
// ClusterConfig.Flight was unset).
func (c *Cluster) Flight() *flight.Set { return c.flight }

// DumpFlight writes the cluster's flight log as JSONL in deterministic
// (peer, seq) order; a disabled recorder writes nothing.
func (c *Cluster) DumpFlight(w io.Writer) error {
	return c.flight.DumpJSONL(w)
}

// DebugHandlers returns the cluster's extra debug endpoints, ready to
// mount on metrics.DebugMux:
//
//	/debug/overlay  topology snapshot (JSON; ?format=dot for Graphviz)
//	/debug/flight   flight log (JSONL; 404 when recording is off)
func (c *Cluster) DebugHandlers() []metrics.DebugHandler {
	return []metrics.DebugHandler{
		{Pattern: "/debug/overlay", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			serveOverlay(w, r, c.Snapshot())
		})},
		{Pattern: "/debug/flight", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			serveFlight(w, r, c.flight)
		})},
	}
}

// introspect is the Leaf.Wait timeout hook: it dumps the topology
// snapshot (JSON) and the flight log (JSONL) to temp files and returns
// a one-line diagnosis naming them plus the tree-health summary, so a
// stalled session's error already points at the forensics.
func (c *Cluster) introspect() string {
	s := c.Snapshot()
	summary := healthLine(s)
	paths := dumpIntrospection(s, c.flight)
	if paths != "" {
		return summary + "; dumped " + paths
	}
	return summary
}

// healthLine renders a snapshot's health as one line, naming orphans.
func healthLine(s overlay.Snapshot) string {
	var orphans []string
	hasParent := make(map[int]bool, len(s.Edges))
	for _, e := range s.Edges {
		hasParent[e.Child] = true
	}
	for _, n := range s.Nodes {
		if n.Active && n.Depth > 1 && !hasParent[n.ID] {
			orphans = append(orphans, fmt.Sprintf("cp%d", n.ID))
		}
	}
	line := fmt.Sprintf("overlay: active=%d/%d depth=%d fanout=%d orphans=%d coverage=%.2f",
		s.Health.ActivePeers, len(s.Nodes), s.Health.Depth, s.Health.MaxFanout,
		s.Health.OrphanedLeaves, s.Health.Coverage)
	if len(orphans) > 0 {
		line += " (" + strings.Join(orphans, ",") + ")"
	}
	return line
}

// dumpIntrospection writes the snapshot and flight log to temp files,
// returning a "path, path" description (or "" when nothing could be
// written — introspection must never turn a timeout into a crash).
func dumpIntrospection(s overlay.Snapshot, fl *flight.Set) string {
	var parts []string
	if f, err := os.CreateTemp("", "p2pmss-overlay-*.json"); err == nil {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if enc.Encode(s) == nil {
			parts = append(parts, "overlay "+f.Name())
		}
		f.Close()
	}
	if fl != nil {
		if f, err := os.CreateTemp("", "p2pmss-flight-*.jsonl"); err == nil {
			if fl.DumpJSONL(f) == nil {
				parts = append(parts, "flight "+f.Name())
			}
			f.Close()
		}
	}
	return strings.Join(parts, ", ")
}

// serveOverlay writes a snapshot as indented JSON, or as Graphviz DOT
// when the request asks for ?format=dot.
func serveOverlay(w http.ResponseWriter, r *http.Request, s overlay.Snapshot) {
	if r.URL.Query().Get("format") == "dot" {
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		fmt.Fprint(w, s.DOT()) //nolint:errcheck // client went away
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s) //nolint:errcheck // client went away
}

// serveFlight writes a flight set as JSONL, optionally filtered by
// ?session= and ?peer=.
func serveFlight(w http.ResponseWriter, r *http.Request, fl *flight.Set) {
	if fl == nil {
		http.Error(w, "flight recording disabled (set Flight on the cluster config)", http.StatusNotFound)
		return
	}
	events := fl.Events()
	q := r.URL.Query()
	if sess := q.Get("session"); sess != "" {
		events = filterEvents(events, func(e flight.Event) bool { return e.Session == sess })
	}
	if peer := q.Get("peer"); peer != "" {
		events = filterEvents(events, func(e flight.Event) bool { return fmt.Sprint(e.Peer) == peer })
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	flight.WriteJSONL(w, events) //nolint:errcheck // client went away
}

func filterEvents(events []flight.Event, keep func(flight.Event) bool) []flight.Event {
	out := events[:0:0]
	for _, e := range events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ---- node-cluster introspection -------------------------------------------

// Sessions lists every session any node currently serves, sorted.
func (nc *NodeCluster) Sessions() []SessionID {
	seen := make(map[SessionID]bool)
	for _, nd := range nc.Nodes {
		for sid := range nd.Serving() {
			seen[sid] = true
		}
	}
	out := make([]SessionID, 0, len(seen))
	for sid := range seen {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot builds the topology of one session across the node
// population from the serving peers' engine outcomes. Nodes that never
// served the session contribute nothing; crashed nodes still report
// their last coordination state.
func (nc *NodeCluster) Snapshot(sid SessionID) overlay.Snapshot {
	var outs []engine.Outcome
	var roster []string
	for _, nd := range nc.Nodes {
		if p, ok := nd.Serving()[sid]; ok {
			outs = append(outs, p.Outcome())
			if roster == nil {
				// Engine peer ids are positions in the session's roster —
				// which, under discovery, is the resolved serving subset,
				// not the node-population order.
				roster = p.cfg.Roster
			}
		}
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].ID < outs[j].ID })
	return engine.TopologySnapshot(outs, engine.TopologyInfo{
		Protocol: nc.protoName(),
		Session:  string(sid),
		Time:     liveNow(),
		Addr: func(id engine.PeerID) string {
			if id >= 0 && int(id) < len(roster) {
				return roster[id]
			}
			return ""
		},
	})
}

// Directory renders every node's directory view: a JSON object keyed by
// node address, listing the records (discovery) or the static roster.
func (nc *NodeCluster) Directory() map[string]any {
	out := make(map[string]any, len(nc.Nodes))
	for _, nd := range nc.Nodes {
		rt := nd.runtime()
		if rt.catalog != nil {
			out[nd.Addr()] = rt.catalog.Records()
		} else {
			out[nd.Addr()] = rt.dir.Roster()
		}
	}
	return out
}

// protoName returns the population's protocol label.
func (nc *NodeCluster) protoName() string {
	if len(nc.Nodes) > 0 && nc.Nodes[0].cfg.Protocol != "" {
		return string(nc.Nodes[0].cfg.Protocol)
	}
	return ""
}

// Flight returns the population's shared flight recorder set (nil when
// NodesConfig.Flight was unset).
func (nc *NodeCluster) Flight() *flight.Set { return nc.flight }

// DebugHandlers returns the population's extra debug endpoints, ready
// to mount on metrics.DebugMux:
//
//	/debug/overlay  all sessions' topologies as a JSON object keyed by
//	                session id; ?session=S narrows to one (with
//	                ?format=dot for Graphviz)
//	/debug/flight   flight log (JSONL; ?session= and ?peer= filter)
//	/debug/directory  every node's directory view (JSON keyed by node)
func (nc *NodeCluster) DebugHandlers() []metrics.DebugHandler {
	return []metrics.DebugHandler{
		{Pattern: "/debug/directory", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(nc.Directory()) //nolint:errcheck // client went away
		})},
		{Pattern: "/debug/overlay", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if sid := r.URL.Query().Get("session"); sid != "" {
				serveOverlay(w, r, nc.Snapshot(SessionID(sid)))
				return
			}
			all := make(map[string]overlay.Snapshot)
			for _, sid := range nc.Sessions() {
				all[string(sid)] = nc.Snapshot(sid)
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(all) //nolint:errcheck // client went away
		})},
		{Pattern: "/debug/flight", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			serveFlight(w, r, nc.flight)
		})},
	}
}
