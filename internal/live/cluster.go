package live

import (
	"fmt"
	"sync"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/protocol"
	"p2pmss/internal/span"
	"p2pmss/internal/transport"
)

// ClusterConfig wires a whole live session — n contents peers plus one
// leaf — in one call, over the in-memory fabric, TCP loopback, or UDP
// loopback.
type ClusterConfig struct {
	// Content is the content every contents peer holds.
	Content *content.Content
	// Peers is the number of contents peers.
	Peers int
	// H is the selection fanout; Interval the parity interval h.
	H, Interval int
	// Rate is the content rate in packets per second.
	Rate float64
	// Protocol selects TCoP (default) or DCoP.
	Protocol Protocol
	// UseTCP runs every peer on its own TCP loopback socket instead of
	// the in-memory fabric.
	UseTCP bool
	// UseUDP runs every peer on its own UDP loopback socket: real
	// datagram semantics — loss, duplication, and reordering are possible
	// and never reported to the sender. Mutually exclusive with UseTCP.
	UseUDP bool
	// Impair, when enabled, injects seeded loss/duplication/reordering
	// into every send — on the in-memory fabric or on each UDP socket
	// (TCP cannot be impaired; its stream would desynchronize). See
	// transport.Impairment.
	Impair transport.Impairment
	// QueueCap bounds the in-memory fabric's pending queue (default
	// 4096; negative leaves it unbounded) and QueuePolicy picks whether
	// a full queue blocks senders (default) or drops the newest message.
	// Ignored under TCP/UDP, where the kernel's socket buffers bound the
	// queue instead.
	QueueCap    int
	QueuePolicy transport.QueuePolicy
	// Delta is the assumed one-way latency for marking (default 10 ms).
	Delta time.Duration
	// RepairAfter is the leaf's stall-detection period (default 500 ms).
	RepairAfter time.Duration
	// RequestRetry is the leaf's request re-send deadline for requests a
	// datagram transport may silently lose. Zero defaults to half of
	// RepairAfter when the session runs on UDP or with impairment
	// enabled, and disables the retry loop otherwise (the fabric and TCP
	// report send failures, which Start's failover already handles).
	RequestRetry time.Duration
	// HandshakeTimeout and Retries tune the peers' churn tolerance (see
	// PeerConfig); zero picks the per-peer defaults.
	HandshakeTimeout time.Duration
	Retries          int
	// Seed seeds all peers deterministically; 0 uses the clock.
	Seed int64
	// Obs bundles the session's observers in the struct shared with
	// the simulation. Non-nil members override the corresponding
	// legacy fields below; Obs.Trace and Obs.SpanTrace are ignored
	// (the cluster derives per-session trace IDs itself). Prefer Obs
	// for new code.
	Obs obs.Observability
	// Metrics, when non-nil, instruments the whole session — every
	// peer, the leaf, and the transport — on one shared registry,
	// ready to serve via metrics.DebugMux.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects the session's causal spans on one
	// shared collector, ready to export via span.WritePerfetto.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// Flight, when non-nil, records every peer's engine event/effect
	// stream into per-peer flight rings (see internal/flight), dumpable
	// via Cluster.DumpFlight and served on /debug/flight.
	//
	// Deprecated: set via Obs.Flight.
	Flight *flight.Set
}

// Cluster is a running live session.
type Cluster struct {
	Peers  []*Peer
	Leaf   *Leaf
	fabric *transport.Fabric

	// Introspection state: the roster (peer id -> address), the run
	// labels, and the optional flight set, for Snapshot/DumpFlight and
	// the /debug/overlay and /debug/flight handlers.
	roster     []string
	protoName  string
	contentLen int
	flight     *flight.Set
	metrics    *metrics.Registry

	closeOnce sync.Once
}

// StartCluster builds and starts a live session: it wires the peers,
// creates the leaf, and sends the content request.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Content == nil {
		return nil, fmt.Errorf("live: cluster needs a content")
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if cfg.Obs.Metrics != nil {
		cfg.Metrics = cfg.Obs.Metrics
	}
	if cfg.Obs.Spans != nil {
		cfg.Spans = cfg.Obs.Spans
	}
	if cfg.Obs.Flight != nil {
		cfg.Flight = cfg.Obs.Flight
	}
	if cfg.Peers <= 0 {
		return nil, fmt.Errorf("live: cluster needs at least one peer")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 10 * time.Millisecond
	}
	if cfg.RepairAfter == 0 {
		cfg.RepairAfter = 500 * time.Millisecond
	}
	if cfg.UseTCP && cfg.UseUDP {
		return nil, fmt.Errorf("live: UseTCP and UseUDP are mutually exclusive")
	}
	if cfg.UseTCP && cfg.Impair.Enabled() {
		return nil, fmt.Errorf("live: impairment needs a datagram transport (in-memory fabric or UDP), not TCP")
	}
	if cfg.RequestRetry == 0 && (cfg.UseUDP || cfg.Impair.Enabled()) {
		cfg.RequestRetry = cfg.RepairAfter / 2
	}

	c := &Cluster{}
	var roster []string
	transports := make([]Transport, cfg.Peers)
	var leafTransport Transport

	if cfg.UseTCP {
		// Bind listeners first so the roster is known before peers start.
		for i := range transports {
			lb := &lateBinder{}
			ep, err := transport.ListenTCP("127.0.0.1:0", lb.dispatch)
			if err != nil {
				c.Close()
				return nil, err
			}
			lb.ep = ep
			ep.Instrument(cfg.Metrics)
			roster = append(roster, ep.Name())
			transports[i] = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
				lb.bind(h)
				return lb.ep, nil
			})
		}
		leafLB := &lateBinder{}
		lep, err := transport.ListenTCP("127.0.0.1:0", leafLB.dispatch)
		if err != nil {
			c.Close()
			return nil, err
		}
		leafLB.ep = lep
		lep.Instrument(cfg.Metrics)
		leafTransport = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
			leafLB.bind(h)
			return leafLB.ep, nil
		})
	} else if cfg.UseUDP {
		imp := udpImpairment(cfg.Impair, cfg.Delta)
		for i := range transports {
			lb := &lateBinder{}
			ep, err := transport.ListenUDP("127.0.0.1:0", lb.dispatch)
			if err != nil {
				c.Close()
				return nil, err
			}
			lb.ep = ep
			ep.Instrument(cfg.Metrics)
			ep.SetImpairment(imp)
			roster = append(roster, ep.Name())
			transports[i] = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
				lb.bind(h)
				return lb.ep, nil
			})
		}
		leafLB := &lateBinder{}
		lep, err := transport.ListenUDP("127.0.0.1:0", leafLB.dispatch)
		if err != nil {
			c.Close()
			return nil, err
		}
		leafLB.ep = lep
		lep.Instrument(cfg.Metrics)
		lep.SetImpairment(imp)
		leafTransport = WithAttach(func(h transport.Handler) (transport.Endpoint, error) {
			leafLB.bind(h)
			return leafLB.ep, nil
		})
	} else {
		c.fabric = clusterFabric(cfg.QueueCap, cfg.QueuePolicy)
		c.fabric.Instrument(cfg.Metrics)
		c.fabric.SetImpairment(cfg.Impair)
		for i := 0; i < cfg.Peers; i++ {
			name := fmt.Sprintf("cp%d", i)
			roster = append(roster, name)
			transports[i] = WithFabric(c.fabric, name)
		}
		leafTransport = WithFabric(c.fabric, "leaf")
	}

	c.roster = roster
	c.flight = cfg.Flight
	c.metrics = cfg.Metrics
	c.protoName = string(cfg.Protocol)
	if c.protoName == "" {
		c.protoName = string(protocol.TCoP)
	}
	c.contentLen = int(cfg.Content.NumPackets())

	for i := 0; i < cfg.Peers; i++ {
		seed := cfg.Seed
		if seed != 0 {
			seed += int64(i) + 1
		}
		p, err := NewPeer(PeerConfig{
			Content:          cfg.Content,
			Roster:           roster,
			H:                cfg.H,
			Interval:         cfg.Interval,
			Delta:            cfg.Delta,
			Protocol:         cfg.Protocol,
			HandshakeTimeout: cfg.HandshakeTimeout,
			Retries:          cfg.Retries,
			Seed:             seed,
			Metrics:          cfg.Metrics,
			Spans:            cfg.Spans,
			Flight:           cfg.Flight.Recorder("", i),
		}, transports[i])
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Peers = append(c.Peers, p)
	}

	leafSeed := cfg.Seed
	if leafSeed != 0 {
		leafSeed += 1000003
	}
	leaf, err := NewLeaf(LeafConfig{
		Roster:       roster,
		H:            cfg.H,
		Interval:     cfg.Interval,
		Rate:         cfg.Rate,
		ContentSize:  cfg.Content.Size(),
		PacketSize:   cfg.Content.PacketSize(),
		RepairAfter:  cfg.RepairAfter,
		RequestRetry: cfg.RequestRetry,
		Seed:         leafSeed,
		Metrics:      cfg.Metrics,
		Spans:        cfg.Spans,
		Introspect:   c.introspect,
	}, leafTransport)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Leaf = leaf
	if err := leaf.Start(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// CrashActive crash-stops up to n currently transmitting peers and
// returns how many were stopped.
func (c *Cluster) CrashActive(n int) int {
	killed := 0
	for _, p := range c.Peers {
		if killed >= n {
			break
		}
		if p.Active() {
			p.Close()
			killed++
		}
	}
	return killed
}

// Wait blocks until the leaf holds the whole content or the timeout
// elapses.
func (c *Cluster) Wait(timeout time.Duration) error { return c.Leaf.Wait(timeout) }

// Bytes returns the reassembled content once complete.
func (c *Cluster) Bytes() ([]byte, bool) { return c.Leaf.Bytes() }

// Close stops every peer and the leaf. It is idempotent and safe after
// CrashActive already stopped some peers (closing a closed peer is a
// no-op).
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for _, p := range c.Peers {
			p.Close()
		}
		if c.Leaf != nil {
			c.Leaf.Close()
		}
	})
}

// clusterFabric builds the cluster's default in-process fabric: bounded
// FIFO queue (backpressure at 4096 pending messages) rather than a
// goroutine per message, so a runaway sender saturates a queue instead
// of the scheduler. queueCap <= -1 restores the unbounded queue; 0 picks
// the default.
func clusterFabric(queueCap int, policy transport.QueuePolicy) *transport.Fabric {
	if queueCap == 0 {
		queueCap = 4096
	}
	return transport.NewBoundedQueuedFabric(queueCap, policy)
}

// udpImpairment adapts an impairment policy for real sockets: a held
// (reordered) datagram on a link that goes quiet would otherwise never
// be released, so a wall-clock MaxHold of a few deltas is imposed when
// the caller left it unset.
func udpImpairment(imp transport.Impairment, delta time.Duration) transport.Impairment {
	if imp.Enabled() && imp.MaxHold == 0 {
		imp.MaxHold = 5 * delta
	}
	return imp
}

// lateBinder lets a listener (TCP or UDP) start before its peer exists:
// frames arriving before bind are dropped, as a real socket would drop
// traffic for a process still booting.
type lateBinder struct {
	ep transport.Endpoint

	mu sync.Mutex
	h  transport.Handler
}

func (l *lateBinder) bind(h transport.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateBinder) dispatch(m transport.Msg) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h != nil {
		h(m)
	}
}
