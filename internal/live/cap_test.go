package live

import (
	"bytes"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

// Regression for the §3.3 lifetime fanout cap in the live runtime: under
// DCoP with a small H, redundant selection makes a merged peer re-select
// on every merge, and before the shared engine the live layer would take
// fresh children each time, unbounded. Every peer must end with at most
// H children over its whole lifetime — and delivery must still complete.
func TestLiveDCoPChildrenCapSmallH(t *testing.T) {
	data := randomData(3000, 17)
	const capH = 2
	f := transport.NewFabric()
	c := content.New("capped", data, 64)
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	var peers []*Peer
	for i, name := range names {
		p, err := NewPeer(PeerConfig{
			Content:  c,
			Roster:   names,
			H:        capH,
			Interval: 2,
			Delta:    5 * time.Millisecond,
			Protocol: protocol.DCoP,
			Seed:     int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer closeAll(peers)
	leaf, err := NewLeaf(LeafConfig{
		Roster:      names,
		H:           capH,
		Interval:    2,
		Rate:        400,
		ContentSize: len(data),
		PacketSize:  64,
		RepairAfter: 300 * time.Millisecond,
		Seed:        99,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("capped DCoP live reassembly differs")
	}
	for i, p := range peers {
		if n := len(p.Outcome().Children); n > capH {
			t.Errorf("peer %s took %d children over its lifetime, cap is %d", names[i], n, capH)
		}
	}
}
