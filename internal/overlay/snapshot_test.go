package overlay

import (
	"strings"
	"testing"
)

// fixtureSnapshot is a small TCoP-shaped overlay: peer 0 leaf-rooted
// with children 1 and 2, peer 3 orphaned (active at depth 2, incoming
// edge gone), peer 4 inactive.
func fixtureSnapshot() Snapshot {
	return Snapshot{
		Version:  SnapshotVersion,
		Protocol: "TCoP",
		Time:     1.5,
		Nodes: []Node{
			{ID: 0, Addr: "127.0.0.1:9000", Active: true, Parent: 0, Children: []int{1, 2}, Depth: 1, Assigned: 20, Covered: 13},
			{ID: 1, Active: true, Committed: true, Parent: 0, Depth: 2, Assigned: 7, Covered: 5},
			{ID: 2, Active: true, Committed: true, Parent: 0, Depth: 2, Assigned: 6, Covered: 4},
			{ID: 3, Active: true, Depth: 2, Assigned: 4, Covered: 3},
			{ID: 4, Active: false, Parent: -1, Depth: 0},
		},
		Edges:  []Edge{{Parent: 0, Child: 1}, {Parent: 0, Child: 2}},
		Health: Health{Coverage: 0.75},
	}
}

func TestComputeHealth(t *testing.T) {
	s := fixtureSnapshot()
	s.ComputeHealth()
	want := Health{ActivePeers: 4, Depth: 2, MaxFanout: 2, OrphanedLeaves: 1, Coverage: 0.75}
	if s.Health != want {
		t.Errorf("health = %+v, want %+v", s.Health, want)
	}
}

func TestComputeHealthIgnoresDepthOneWithoutEdge(t *testing.T) {
	// Leaf-selected peers (depth 1) have no incoming hand-off edge by
	// construction; they must not count as orphans.
	s := Snapshot{Nodes: []Node{{ID: 0, Active: true, Depth: 1}}}
	s.ComputeHealth()
	if s.Health.OrphanedLeaves != 0 {
		t.Errorf("depth-1 peer counted as orphan: %+v", s.Health)
	}
}

// TestDOTGolden pins the renderer's exact output: deterministic node
// and edge order, dimmed inactive peers, red orphans. A deliberate
// change here means updating the golden string.
func TestDOTGolden(t *testing.T) {
	s := fixtureSnapshot()
	s.ComputeHealth()
	got := s.DOT()
	want := `digraph overlay {
  rankdir=TB;
  node [shape=box, fontsize=10];
  label="TCoP t=1.500 depth=2 coverage=0.75";
  n0 [label="cp0\n127.0.0.1:9000\nslot=20 depth=1"];
  n1 [label="cp1\nslot=7 depth=2"];
  n2 [label="cp2\nslot=6 depth=2"];
  n3 [label="cp3\nslot=4 depth=2", color=red];
  n4 [label="cp4\nslot=0 depth=0", style=dashed, color=gray];
  n0 -> n1;
  n0 -> n2;
}
`
	if got != want {
		t.Errorf("DOT output changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDOTDeterministicUnderShuffledInput(t *testing.T) {
	s := fixtureSnapshot()
	s.ComputeHealth()
	want := s.DOT()
	// Reverse nodes and edges; the renderer must sort them back.
	for i, j := 0, len(s.Nodes)-1; i < j; i, j = i+1, j-1 {
		s.Nodes[i], s.Nodes[j] = s.Nodes[j], s.Nodes[i]
	}
	s.Edges[0], s.Edges[1] = s.Edges[1], s.Edges[0]
	if got := s.DOT(); got != want {
		t.Errorf("DOT depends on input order:\n%s", got)
	}
	if !strings.HasPrefix(want, "digraph overlay {") {
		t.Error("not a digraph")
	}
}
