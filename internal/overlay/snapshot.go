package overlay

import (
	"fmt"
	"sort"
	"strings"
)

// SnapshotVersion is the schema version stamped on every Snapshot, so
// dumps written by one build remain identifiable to readers from
// another.
const SnapshotVersion = 1

// Snapshot is a versioned point-in-time picture of the coordination
// overlay: which peers hold which transmission slots, the parent/child
// edges the hand-offs created, and the tree-health summary. Drivers
// build snapshots from engine outcomes (engine.TopologySnapshot); this
// package owns the schema and the renderers so any layer can consume a
// snapshot without importing the engine.
type Snapshot struct {
	Version  int    `json:"version"`
	Protocol string `json:"protocol,omitempty"`
	Session  string `json:"session,omitempty"`
	// Time is the capturing driver's clock: virtual time in the
	// simulator, seconds since process start in the live runtime.
	Time   float64 `json:"time"`
	Nodes  []Node  `json:"nodes"`
	Edges  []Edge  `json:"edges"`
	Health Health  `json:"health"`
}

// Node is one contents peer's place in the overlay.
type Node struct {
	ID int `json:"id"`
	// Addr is the live transport address (empty in the simulator).
	Addr   string `json:"addr,omitempty"`
	Active bool   `json:"active"`
	// Committed reports a completed TCoP adoption.
	Committed bool `json:"committed,omitempty"`
	// Parent is the adopting parent (TCoP), the peer itself when
	// leaf-rooted, or -1 (none; DCoP peers never record one).
	Parent int `json:"parent"`
	// Children lists the peers this peer handed shares to, in hand-off
	// order.
	Children []int `json:"children,omitempty"`
	// Depth is the activation round (leaf-selected peers are depth 1).
	Depth int `json:"depth"`
	// Assigned is the size of the peer's transmission slot: how many
	// packets (data + parity) were ever assigned to it.
	Assigned int `json:"assigned_packets"`
	// Covered is how many distinct content (data) packets the slot
	// covers.
	Covered int `json:"covered_packets,omitempty"`
	// Retried and Absorbed mirror the engine's churn-tolerance counters.
	Retried  int `json:"retried,omitempty"`
	Absorbed int `json:"absorbed,omitempty"`
}

// Edge is one hand-off edge: Parent delegated a division to Child.
type Edge struct {
	Parent int `json:"parent"`
	Child  int `json:"child"`
}

// Health summarizes tree shape — the gauges published as
// overlay_depth, overlay_fanout, overlay_orphaned_leaves and
// overlay_coverage_ratio.
type Health struct {
	// ActivePeers counts activated peers.
	ActivePeers int `json:"active_peers"`
	// Depth is the maximum activation round among active peers.
	Depth int `json:"depth"`
	// MaxFanout is the widest child list.
	MaxFanout int `json:"max_fanout"`
	// OrphanedLeaves counts active peers of depth > 1 with no surviving
	// incoming edge: they activated via a parent that has since crashed,
	// absorbed the share back, or vanished.
	OrphanedLeaves int `json:"orphaned_leaves"`
	// Coverage is the division coverage ratio: distinct content packets
	// assigned across active peers over the content length (0 when the
	// content length is unknown).
	Coverage float64 `json:"coverage"`
}

// ComputeHealth fills the structural health fields (ActivePeers, Depth,
// MaxFanout, OrphanedLeaves) from Nodes and Edges. Coverage is left
// untouched — only the snapshot builder holds the assigned sequences.
func (s *Snapshot) ComputeHealth() {
	h := Health{Coverage: s.Health.Coverage}
	hasParent := make(map[int]bool, len(s.Edges))
	for _, e := range s.Edges {
		hasParent[e.Child] = true
	}
	for _, n := range s.Nodes {
		if len(n.Children) > h.MaxFanout {
			h.MaxFanout = len(n.Children)
		}
		if !n.Active {
			continue
		}
		h.ActivePeers++
		if n.Depth > h.Depth {
			h.Depth = n.Depth
		}
		if n.Depth > 1 && !hasParent[n.ID] {
			h.OrphanedLeaves++
		}
	}
	s.Health = h
}

// DOT renders the snapshot as a Graphviz digraph: one box per peer
// (label: id/addr, slot size, depth), solid edges for hand-offs, with
// inactive peers dimmed and orphaned active peers outlined red. The
// output is deterministic: nodes ascend by id, edges by (parent,
// child).
func (s *Snapshot) DOT() string {
	nodes := append([]Node(nil), s.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	edges := append([]Edge(nil), s.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Parent != edges[j].Parent {
			return edges[i].Parent < edges[j].Parent
		}
		return edges[i].Child < edges[j].Child
	})
	hasParent := make(map[int]bool, len(edges))
	for _, e := range edges {
		hasParent[e.Child] = true
	}

	var b strings.Builder
	b.WriteString("digraph overlay {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")
	title := s.Protocol
	if s.Session != "" {
		title += " " + s.Session
	}
	fmt.Fprintf(&b, "  label=%q;\n", strings.TrimSpace(fmt.Sprintf("%s t=%.3f depth=%d coverage=%.2f",
		title, s.Time, s.Health.Depth, s.Health.Coverage)))
	for _, n := range nodes {
		label := fmt.Sprintf("cp%d", n.ID)
		if n.Addr != "" {
			label = fmt.Sprintf("cp%d\\n%s", n.ID, n.Addr)
		}
		label += fmt.Sprintf("\\nslot=%d depth=%d", n.Assigned, n.Depth)
		attrs := fmt.Sprintf("label=\"%s\"", label)
		switch {
		case !n.Active:
			attrs += ", style=dashed, color=gray"
		case n.Depth > 1 && !hasParent[n.ID]:
			attrs += ", color=red" // orphaned: parent edge lost
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.Parent, e.Child)
	}
	b.WriteString("}\n")
	return b.String()
}
