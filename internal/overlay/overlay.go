// Package overlay provides the membership primitives of §3.3–3.5: peer
// identifiers, views (the bit vector VW_i each contents peer maintains
// over the n contents peers), and the random child-selection functions
// Select and Aselect.
package overlay

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// PeerID identifies a contents peer; contents peers are numbered 0..n-1.
type PeerID int

// View is the bit vector VW_i = ⟨VW_i1, …, VW_in⟩ of §3.4: bit k is set
// when peer k is perceived active (selected/transmitting). Views are
// value types; operations return new views unless suffixed In.
type View struct {
	n    int
	bits []uint64
}

// NewView returns an empty view over n contents peers.
func NewView(n int) View {
	if n < 0 {
		panic(fmt.Sprintf("overlay: view size %d", n))
	}
	return View{n: n, bits: make([]uint64, (n+63)/64)}
}

// Size returns n, the total number of contents peers.
func (v View) Size() int { return v.n }

// Clone returns an independent copy of the view.
func (v View) Clone() View {
	c := View{n: v.n, bits: make([]uint64, len(v.bits))}
	copy(c.bits, v.bits)
	return c
}

// Add sets bit p. It panics if p is out of range.
func (v *View) Add(p PeerID) {
	v.check(p)
	v.bits[p/64] |= 1 << (uint(p) % 64)
}

// AddAll sets every bit in ps.
func (v *View) AddAll(ps []PeerID) {
	for _, p := range ps {
		v.Add(p)
	}
}

// Has reports whether bit p is set.
func (v View) Has(p PeerID) bool {
	v.check(p)
	return v.bits[p/64]&(1<<(uint(p)%64)) != 0
}

func (v View) check(p PeerID) {
	if p < 0 || int(p) >= v.n {
		panic(fmt.Sprintf("overlay: peer %d outside view of size %d", p, v.n))
	}
}

// Count returns |VW| — the number of set bits.
func (v View) Count() int {
	c := 0
	for _, w := range v.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether all n bits are set (|VW_i| = n, DCoP's stopping
// condition).
func (v View) Full() bool { return v.Count() == v.n }

// UnionIn merges o into v (VW_i := VW_i ∪ c.VW). Both views must have the
// same size.
func (v *View) UnionIn(o View) {
	if v.n != o.n {
		panic(fmt.Sprintf("overlay: union of views with sizes %d and %d", v.n, o.n))
	}
	for i := range v.bits {
		v.bits[i] |= o.bits[i]
	}
}

// Union returns VW_i ∪ VW_j as a new view.
func (v View) Union(o View) View {
	c := v.Clone()
	c.UnionIn(o)
	return c
}

// Members returns the set peers in ascending order.
func (v View) Members() []PeerID {
	out := make([]PeerID, 0, v.Count())
	for p := PeerID(0); int(p) < v.n; p++ {
		if v.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// Missing returns the unset peers in ascending order.
func (v View) Missing() []PeerID {
	out := make([]PeerID, 0, v.n-v.Count())
	for p := PeerID(0); int(p) < v.n; p++ {
		if !v.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// String renders the view as the set of active peers.
func (v View) String() string {
	ms := v.Members()
	parts := make([]string, len(ms))
	for i, p := range ms {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Select implements the paper's Select(CP, CP_i, m): it returns up to m
// distinct contents peers drawn uniformly at random from the peers NOT in
// view (CP − {CP_k | CP_k ∈ VW_i}). If the view is full it returns nil
// (the paper's φ). The caller's own ID should already be in its view.
func Select(rng *rand.Rand, view View, m int) []PeerID {
	if m <= 0 {
		return nil
	}
	cand := view.Missing()
	if len(cand) == 0 {
		return nil
	}
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if m < len(cand) {
		cand = cand[:m]
	}
	return cand
}

// SelectWithSpares is Select, also returning the candidates that did
// NOT make the cut, in shuffled order — the failover preference list
// for churn-tolerant retry. It consumes the RNG identically to Select
// (one shuffle of the full candidate list), so a caller that ignores
// the spares observes the same random stream.
func SelectWithSpares(rng *rand.Rand, view View, m int) (sel, spares []PeerID) {
	if m <= 0 {
		return nil, nil
	}
	cand := view.Missing()
	if len(cand) == 0 {
		return nil, nil
	}
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if m < len(cand) {
		return cand[:m], cand[m:]
	}
	return cand, nil
}

// SelectFrom returns up to m distinct peers drawn uniformly at random
// from the 0..n-1 universe excluding `exclude` — used by TCoP's Aselect,
// where the exclusion set is the peers CP_i knows to have been selected,
// and by the leaf peer's initial selection (exclude empty).
func SelectFrom(rng *rand.Rand, n int, exclude View, m int) []PeerID {
	v := exclude
	if v.n == 0 && n > 0 {
		v = NewView(n)
	}
	return Select(rng, v, m)
}
