// Package overlay provides the membership primitives of §3.3–3.5: peer
// identifiers, views (the bit vector VW_i each contents peer maintains
// over the n contents peers), and the random child-selection functions
// Select and Aselect.
package overlay

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// PeerID identifies a contents peer; contents peers are numbered 0..n-1.
type PeerID int

// View is the bit vector VW_i = ⟨VW_i1, …, VW_in⟩ of §3.4: bit k is set
// when peer k is perceived active (selected/transmitting). Views are
// value types; operations return new views unless suffixed In.
type View struct {
	n    int
	bits []uint64
}

// NewView returns an empty view over n contents peers.
func NewView(n int) View {
	if n < 0 {
		panic(fmt.Sprintf("overlay: view size %d", n))
	}
	return View{n: n, bits: make([]uint64, (n+63)/64)}
}

// Size returns n, the total number of contents peers.
func (v View) Size() int { return v.n }

// Clear resets every bit, so a long-lived view can be reused across
// coordination rounds without reallocating its word array.
func (v *View) Clear() {
	for i := range v.bits {
		v.bits[i] = 0
	}
}

// Clone returns an independent copy of the view.
func (v View) Clone() View {
	c := View{n: v.n, bits: make([]uint64, len(v.bits))}
	copy(c.bits, v.bits)
	return c
}

// Add sets bit p. It panics if p is out of range.
func (v *View) Add(p PeerID) {
	v.check(p)
	v.bits[p/64] |= 1 << (uint(p) % 64)
}

// AddAll sets every bit in ps.
func (v *View) AddAll(ps []PeerID) {
	for _, p := range ps {
		v.Add(p)
	}
}

// Has reports whether bit p is set.
func (v View) Has(p PeerID) bool {
	v.check(p)
	return v.bits[p/64]&(1<<(uint(p)%64)) != 0
}

func (v View) check(p PeerID) {
	if p < 0 || int(p) >= v.n {
		panic(fmt.Sprintf("overlay: peer %d outside view of size %d", p, v.n))
	}
}

// Count returns |VW| — the number of set bits.
func (v View) Count() int {
	c := 0
	for _, w := range v.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether all n bits are set (|VW_i| = n, DCoP's stopping
// condition).
func (v View) Full() bool { return v.Count() == v.n }

// UnionIn merges o into v (VW_i := VW_i ∪ c.VW). Both views must have the
// same size.
func (v *View) UnionIn(o View) {
	if v.n != o.n {
		panic(fmt.Sprintf("overlay: union of views with sizes %d and %d", v.n, o.n))
	}
	for i := range v.bits {
		v.bits[i] |= o.bits[i]
	}
}

// Union returns VW_i ∪ VW_j as a new view.
func (v View) Union(o View) View {
	c := v.Clone()
	c.UnionIn(o)
	return c
}

// Members returns the set peers in ascending order.
func (v View) Members() []PeerID {
	return v.MembersInto(make([]PeerID, 0, v.Count()))
}

// MembersInto appends the set peers to buf in ascending order and
// returns it — the zero-steady-state-allocation form of Members for
// callers that retain a scratch buffer.
func (v View) MembersInto(buf []PeerID) []PeerID {
	for wi, w := range v.bits {
		base := PeerID(wi * 64)
		for w != 0 {
			buf = append(buf, base+PeerID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return buf
}

// Missing returns the unset peers in ascending order.
func (v View) Missing() []PeerID {
	return v.MissingInto(make([]PeerID, 0, v.n-v.Count()))
}

// MissingInto appends the unset peers to buf in ascending order and
// returns it.
func (v View) MissingInto(buf []PeerID) []PeerID {
	for wi, w := range v.bits {
		w = ^w
		base := int(wi * 64)
		for w != 0 {
			p := base + bits.TrailingZeros64(w)
			if p >= v.n {
				break
			}
			buf = append(buf, PeerID(p))
			w &= w - 1
		}
	}
	return buf
}

// String renders the view as the set of active peers.
func (v View) String() string {
	ms := v.Members()
	parts := make([]string, len(ms))
	for i, p := range ms {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// selectSampleThreshold switches Select to rejection sampling: when the
// complement of the view is larger than this, materializing and
// shuffling the full candidate list costs O(n) per call — quadratic
// over a sweep — so large overlays sample candidates directly instead.
// Below the threshold the historical shuffle is kept bit-for-bit, so
// seeded runs at the paper's scales (n ≤ a few thousand) reproduce
// results recorded before the fast path existed.
const selectSampleThreshold = 4096

// Select implements the paper's Select(CP, CP_i, m): it returns up to m
// distinct contents peers drawn uniformly at random from the peers NOT in
// view (CP − {CP_k | CP_k ∈ VW_i}). If the view is full it returns nil
// (the paper's φ). The caller's own ID should already be in its view.
func Select(rng *rand.Rand, view View, m int) []PeerID {
	sel, _ := SelectWithSparesInto(rng, view, m, nil, false)
	return sel
}

// SelectWithSpares is Select, also returning the candidates that did
// NOT make the cut, in shuffled order — the failover preference list
// for churn-tolerant retry. It consumes the RNG identically to Select
// (one shuffle of the full candidate list), so a caller that ignores
// the spares observes the same random stream.
func SelectWithSpares(rng *rand.Rand, view View, m int) (sel, spares []PeerID) {
	return SelectWithSparesInto(rng, view, m, nil, true)
}

// SelectWithSparesInto is SelectWithSpares writing into buf (the
// returned slices alias it), so steady-state callers that retain a
// scratch buffer select without allocating. withSpares=false skips the
// spare list (it still consumes the RNG identically on the shuffle
// path). Above selectSampleThreshold missing peers, candidates are
// rejection-sampled instead of shuffled — the RNG stream differs from
// the small-overlay path, and the spare list is truncated to at most m
// entries (a full preference list over ~n peers is useless at that
// scale and would cost O(n) to build).
func SelectWithSparesInto(rng *rand.Rand, view View, m int, buf []PeerID, withSpares bool) (sel, spares []PeerID) {
	if m <= 0 {
		return nil, nil
	}
	missing := view.n - view.Count()
	if missing == 0 {
		return nil, nil
	}
	if missing > selectSampleThreshold && missing >= 8*m {
		return selectSampled(rng, view, m, buf, withSpares)
	}
	cand := view.MissingInto(buf[:0])
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if m < len(cand) {
		if withSpares {
			return cand[:m], cand[m:]
		}
		return cand[:m], nil
	}
	return cand, nil
}

// selectSampled draws want = m (+ up to m spares) distinct out-of-view
// peers by uniform rejection sampling. Picks are transiently marked in
// the view's own bit array to keep the draw distinct without an
// auxiliary set, and unmarked before returning.
func selectSampled(rng *rand.Rand, view View, m int, buf []PeerID, withSpares bool) (sel, spares []PeerID) {
	want := m
	if withSpares {
		want += m
	}
	out := buf[:0]
	for len(out) < want {
		p := PeerID(rng.Intn(view.n))
		if view.Has(p) {
			continue
		}
		view.bits[p/64] |= 1 << (uint(p) % 64) // transient: undone below
		out = append(out, p)
	}
	for _, p := range out {
		view.bits[p/64] &^= 1 << (uint(p) % 64)
	}
	if withSpares {
		return out[:m], out[m:]
	}
	return out[:m], nil
}

// SelectFrom returns up to m distinct peers drawn uniformly at random
// from the 0..n-1 universe excluding `exclude` — used by TCoP's Aselect,
// where the exclusion set is the peers CP_i knows to have been selected,
// and by the leaf peer's initial selection (exclude empty).
func SelectFrom(rng *rand.Rand, n int, exclude View, m int) []PeerID {
	v := exclude
	if v.n == 0 && n > 0 {
		v = NewView(n)
	}
	return Select(rng, v, m)
}
