package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestViewBasics(t *testing.T) {
	v := NewView(100)
	if v.Count() != 0 || v.Full() {
		t.Error("fresh view not empty")
	}
	v.Add(0)
	v.Add(63)
	v.Add(64)
	v.Add(99)
	if v.Count() != 4 {
		t.Errorf("Count = %d", v.Count())
	}
	for _, p := range []PeerID{0, 63, 64, 99} {
		if !v.Has(p) {
			t.Errorf("Has(%d) = false", p)
		}
	}
	if v.Has(1) || v.Has(98) {
		t.Error("spurious bits set")
	}
	if v.Size() != 100 {
		t.Errorf("Size = %d", v.Size())
	}
}

func TestViewFull(t *testing.T) {
	v := NewView(70)
	for p := PeerID(0); int(p) < 70; p++ {
		v.Add(p)
	}
	if !v.Full() {
		t.Error("Full = false after adding all")
	}
}

func TestViewUnion(t *testing.T) {
	a, b := NewView(10), NewView(10)
	a.AddAll([]PeerID{1, 2, 3})
	b.AddAll([]PeerID{3, 4})
	u := a.Union(b)
	if u.Count() != 4 {
		t.Errorf("union count = %d", u.Count())
	}
	// Union must not mutate a.
	if a.Count() != 3 {
		t.Error("Union mutated receiver")
	}
	a.UnionIn(b)
	if a.Count() != 4 {
		t.Error("UnionIn failed")
	}
}

func TestViewMembersMissing(t *testing.T) {
	v := NewView(5)
	v.AddAll([]PeerID{0, 2, 4})
	got := v.Members()
	want := []PeerID{0, 2, 4}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Members = %v", got)
	}
	miss := v.Missing()
	if len(miss) != 2 || miss[0] != 1 || miss[1] != 3 {
		t.Errorf("Missing = %v", miss)
	}
	if v.String() != "{0,2,4}" {
		t.Errorf("String = %q", v.String())
	}
}

func TestViewCloneIndependent(t *testing.T) {
	a := NewView(10)
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("Clone shares storage")
	}
}

func TestViewPanics(t *testing.T) {
	v := NewView(4)
	for name, fn := range map[string]func(){
		"out of range add": func() { v.Add(4) },
		"negative has":     func() { v.Has(-1) },
		"mismatched union": func() { o := NewView(5); v.UnionIn(o) },
		"negative NewView": func() { NewView(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSelectExcludesView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView(10)
	v.AddAll([]PeerID{0, 1, 2, 3, 4})
	for trial := 0; trial < 50; trial++ {
		got := Select(rng, v, 3)
		if len(got) != 3 {
			t.Fatalf("len = %d", len(got))
		}
		seen := map[PeerID]bool{}
		for _, p := range got {
			if v.Has(p) {
				t.Fatalf("selected %d from view", p)
			}
			if seen[p] {
				t.Fatalf("duplicate selection %d", p)
			}
			seen[p] = true
		}
	}
}

func TestSelectCapsAtAvailable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView(5)
	v.AddAll([]PeerID{0, 1, 2})
	got := Select(rng, v, 10)
	if len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
}

func TestSelectFullViewReturnsNil(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView(3)
	v.AddAll([]PeerID{0, 1, 2})
	if got := Select(rng, v, 2); got != nil {
		t.Errorf("Select from full view = %v", got)
	}
	if got := Select(rng, NewView(3), 0); got != nil {
		t.Errorf("Select m=0 = %v", got)
	}
}

func TestSelectUniformish(t *testing.T) {
	// Every candidate should be selected a reasonable share of the time.
	rng := rand.New(rand.NewSource(99))
	v := NewView(10)
	counts := make(map[PeerID]int)
	const trials = 5000
	for i := 0; i < trials; i++ {
		for _, p := range Select(rng, v, 3) {
			counts[p]++
		}
	}
	for p := PeerID(0); p < 10; p++ {
		frac := float64(counts[p]) / trials
		if frac < 0.2 || frac > 0.4 { // expect 0.3
			t.Errorf("peer %d selected fraction %v, want ≈0.3", p, frac)
		}
	}
}

func TestSelectFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := SelectFrom(rng, 6, View{}, 6)
	if len(got) != 6 {
		t.Errorf("len = %d, want all 6", len(got))
	}
	ex := NewView(6)
	ex.AddAll([]PeerID{0, 1})
	got = SelectFrom(rng, 6, ex, 10)
	if len(got) != 4 {
		t.Errorf("len = %d, want 4", len(got))
	}
}

// Property: views form a join-semilattice — union is commutative,
// associative, idempotent, and monotone in Count.
func TestViewLatticeProperty(t *testing.T) {
	mk := func(sel uint16) View {
		v := NewView(16)
		for p := 0; p < 16; p++ {
			if sel&(1<<p) != 0 {
				v.Add(PeerID(p))
			}
		}
		return v
	}
	f := func(x, y, z uint16) bool {
		a, b, c := mk(x), mk(y), mk(z)
		if !viewEq(a.Union(b), b.Union(a)) {
			return false
		}
		if !viewEq(a.Union(b).Union(c), a.Union(b.Union(c))) {
			return false
		}
		if !viewEq(a.Union(a), a) {
			return false
		}
		return a.Union(b).Count() >= a.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func viewEq(a, b View) bool {
	if a.n != b.n || a.Count() != b.Count() {
		return false
	}
	for _, p := range a.Members() {
		if !b.Has(p) {
			return false
		}
	}
	return true
}
