package disco

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"p2pmss/internal/metrics"
)

// loopback wires catalogs together in-process: sends become direct
// Deliver calls on the destination catalog. Deliveries run on the
// sender's goroutine, like the in-memory fabric's synchronous mode.
type loopback struct {
	mu   sync.Mutex
	cats map[string]*Catalog
}

func newLoopback() *loopback { return &loopback{cats: make(map[string]*Catalog)} }

func (lb *loopback) send(from string) func(to string, payload []byte) {
	return func(to string, payload []byte) {
		lb.mu.Lock()
		dst := lb.cats[to]
		lb.mu.Unlock()
		if dst != nil {
			dst.Deliver(from, payload)
		}
	}
}

func (lb *loopback) add(c *Catalog, addr string) {
	lb.mu.Lock()
	lb.cats[addr] = c
	lb.mu.Unlock()
}

func (lb *loopback) remove(addr string) {
	lb.mu.Lock()
	delete(lb.cats, addr)
	lb.mu.Unlock()
}

// startSwarm builds n interconnected catalogs bootstrapped off the
// first one, each serving the given contents.
func startSwarm(t *testing.T, lb *loopback, n int, contents func(i int) []string, interval, ttl time.Duration, reg *metrics.Registry) []*Catalog {
	t.Helper()
	cats := make([]*Catalog, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("cat%02d", i)
		cids := contents(i)
		var boot []string
		if i > 0 {
			boot = []string{"cat00"}
		}
		c, err := NewCatalog(CatalogConfig{
			Self:      addr,
			Contents:  func() []string { return cids },
			Bootstrap: boot,
			Send:      lb.send(addr),
			Fanout:    3,
			Interval:  interval,
			TTL:       ttl,
			Seed:      77,
			Metrics:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		lb.add(c, addr)
		cats[i] = c
	}
	t.Cleanup(func() {
		for _, c := range cats {
			c.Close()
		}
	})
	return cats
}

func TestStaticDirectory(t *testing.T) {
	roster := []string{"n2", "n0", "n1"} // order is meaningful, not sorted
	s := NewStatic(roster)
	if got := s.Roster(); len(got) != 3 || got[0] != "n2" || got[2] != "n1" {
		t.Errorf("static roster reordered: %v", got)
	}
	if got := s.Lookup("anything"); len(got) != 3 || got[0] != "n2" {
		t.Errorf("static lookup = %v", got)
	}
	got := s.Lookup("x")
	got[0] = "mutated"
	if s.Lookup("x")[0] != "n2" {
		t.Error("lookup result aliases the roster")
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// All catalogs converge to the full membership and per-content views.
func TestCatalogConverges(t *testing.T) {
	lb := newLoopback()
	reg := metrics.New()
	cats := startSwarm(t, lb, 8, func(i int) []string {
		return []string{fmt.Sprintf("content%d", i%2), "shared"}
	}, 10*time.Millisecond, 200*time.Millisecond, reg)
	for i, c := range cats {
		if err := c.WaitRoster(8, 5*time.Second); err != nil {
			t.Fatalf("catalog %d: %v", i, err)
		}
	}
	// Every converged node resolves the same sorted roster per content.
	want := cats[0].Lookup("shared")
	if len(want) != 8 {
		t.Fatalf("shared content served by %d peers, want 8", len(want))
	}
	for i, c := range cats {
		got := c.Lookup("shared")
		if len(got) != len(want) {
			t.Fatalf("catalog %d sees %d peers, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("catalog %d roster order diverged: %v vs %v", i, got, want)
			}
		}
		if got := c.Lookup("content0"); len(got) != 4 {
			t.Errorf("catalog %d: content0 served by %d peers, want 4", i, len(got))
		}
		if got := c.Lookup("no-such-content"); len(got) != 0 {
			t.Errorf("catalog %d: phantom peers %v for unknown content", i, got)
		}
	}
	// The disco_* series are populated (same identity returns the same
	// instrument, so this reads the catalog's own gauge).
	if v := reg.Gauge("disco_records", "node", "cat00").Value(); v != 8 {
		t.Errorf("disco_records{cat00} = %v, want 8", v)
	}
	if reg.Counter("disco_announce_received_total", "node", "cat00").Value() == 0 {
		t.Error("disco_announce_received_total never incremented")
	}
}

// A crashed node's records expire from every directory after the TTL:
// the catalog answers must shrink even though nobody was told about the
// crash (mid-announcement: the victim dies with its records still
// circulating in other nodes' pushes).
func TestCrashExpiresAfterTTL(t *testing.T) {
	lb := newLoopback()
	const ttl = 150 * time.Millisecond
	cats := startSwarm(t, lb, 6, func(int) []string { return []string{"movie"} },
		10*time.Millisecond, ttl, nil)
	for i, c := range cats {
		if err := c.WaitRoster(6, 5*time.Second); err != nil {
			t.Fatalf("catalog %d: %v", i, err)
		}
	}
	// Crash-stop catalog 5: no goodbye, its transport address vanishes.
	victim := "cat05"
	lb.remove(victim)
	cats[5].Close()
	deadline := time.Now().Add(10*ttl + time.Second)
	for _, c := range cats[:5] {
		for {
			alive := false
			for _, a := range c.Lookup("movie") {
				if a == victim {
					alive = true
				}
			}
			if !alive {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s still in %s's directory %s after crash", victim, c.cfg.Self, 10*ttl)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if got := len(c.Lookup("movie")); got != 5 {
			t.Errorf("%s: %d peers after crash, want 5", c.cfg.Self, got)
		}
	}
}

// A node joining a converged swarm learns the full catalog within a
// bounded number of gossip rounds (the welcome push makes it ~one round
// for its own view), and the swarm learns about it.
func TestLateJoinerConverges(t *testing.T) {
	lb := newLoopback()
	const interval = 10 * time.Millisecond
	cats := startSwarm(t, lb, 8, func(i int) []string {
		return []string{fmt.Sprintf("content%d", i)}
	}, interval, time.Second, nil)
	for i, c := range cats {
		if err := c.WaitRoster(8, 5*time.Second); err != nil {
			t.Fatalf("catalog %d: %v", i, err)
		}
	}
	start := time.Now()
	late, err := NewCatalog(CatalogConfig{
		Self:      "late",
		Contents:  func() []string { return []string{"latecontent"} },
		Bootstrap: []string{"cat03"},
		Send:      lb.send("late"),
		Fanout:    3,
		Interval:  interval,
		TTL:       time.Second,
		Seed:      77,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	lb.add(late, "late")
	// Bounded convergence: well under the TTL, within ~a few dozen
	// rounds even on a loaded machine.
	const rounds = 100
	if err := late.WaitRoster(9, rounds*interval); err != nil {
		t.Fatalf("late joiner never converged: %v", err)
	}
	t.Logf("late joiner converged in %s (%d rounds budget)", time.Since(start), rounds)
	for i, c := range cats {
		if err := c.WaitContent("latecontent", 1, 5*time.Second); err != nil {
			t.Errorf("catalog %d never learned the late joiner: %v", i, err)
		}
	}
}

// Announcements are signed by the shared seed: records forged under a
// different seed are rejected, leaving the directory untouched.
func TestBadSignatureRejected(t *testing.T) {
	c, err := NewCatalog(CatalogConfig{
		Self:      "honest",
		Contents:  func() []string { return []string{"movie"} },
		Send:      func(string, []byte) {},
		Bootstrap: []string{"sink"},
		Interval:  time.Hour,
		TTL:       time.Second,
		Seed:      1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An attacker with the wrong seed announces a bogus peer.
	forged, err := NewCatalog(CatalogConfig{
		Self:      "attacker",
		Contents:  func() []string { return []string{"movie"} },
		Send:      func(string, []byte) {},
		Bootstrap: []string{"honest"},
		Interval:  time.Hour,
		TTL:       time.Second,
		Seed:      9999, // wrong shared secret
	})
	if err != nil {
		t.Fatal(err)
	}
	defer forged.Close()
	c.Deliver("attacker", forged.payload(true))
	if got := c.Lookup("movie"); len(got) != 1 || got[0] != "honest" {
		t.Errorf("forged record accepted: %v", got)
	}
	// The same record signed under the right seed is accepted.
	genuine, err := NewCatalog(CatalogConfig{
		Self:     "friend",
		Contents: func() []string { return []string{"movie"} },
		Send:     func(string, []byte) {},
		Interval: time.Hour,
		TTL:      time.Second,
		Seed:     1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer genuine.Close()
	c.Deliver("friend", genuine.payload(true))
	if got := c.Lookup("movie"); len(got) != 2 {
		t.Errorf("genuine record rejected: %v", got)
	}
	// Garbage payloads are rejected without panicking.
	c.Deliver("noise", []byte("{not json"))
}

// A version refresh replaces the record contents everywhere it reaches.
func TestNewerVersionWins(t *testing.T) {
	var catalog []string
	var mu sync.Mutex
	getContents := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), catalog...)
	}
	announcer, err := NewCatalog(CatalogConfig{
		Self: "announcer", Contents: getContents,
		Send: func(string, []byte) {}, Interval: time.Hour, TTL: time.Second, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer announcer.Close()
	watcher, err := NewCatalog(CatalogConfig{
		Self: "watcher", Send: func(string, []byte) {}, Interval: time.Hour, TTL: time.Second, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	mu.Lock()
	catalog = []string{"old"}
	mu.Unlock()
	p1 := announcer.payload(true)
	mu.Lock()
	catalog = []string{"new"}
	mu.Unlock()
	p2 := announcer.payload(true)

	// Deliver newer first, then the stale one: the stale must not win.
	watcher.Deliver("announcer", p2)
	watcher.Deliver("announcer", p1)
	if got := watcher.Lookup("new"); len(got) != 1 {
		t.Errorf("newer catalog lost: lookup(new) = %v", got)
	}
	if got := watcher.Lookup("old"); len(got) != 0 {
		t.Errorf("stale catalog resurrected: lookup(old) = %v", got)
	}
}
