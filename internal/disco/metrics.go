package disco

import "p2pmss/internal/metrics"

// catalogMetrics holds a catalog node's instrument handles; the zero
// value (nil registry) records nothing, matching the package-wide
// nil-is-disabled convention.
type catalogMetrics struct {
	// records gauges the live directory entries (own announcement
	// included); expired counts entries dropped by TTL.
	records *metrics.Gauge
	expired *metrics.Counter
	// sent/received count announcement payloads; rejected counts
	// payloads or records refused (undecodable, bad signature).
	sent     *metrics.Counter
	received *metrics.Counter
	rejected *metrics.Counter
	// lookups counts directory queries.
	lookups *metrics.Counter
}

func newCatalogMetrics(reg *metrics.Registry, self string) catalogMetrics {
	return catalogMetrics{
		records:  reg.Gauge("disco_records", "node", self),
		expired:  reg.Counter("disco_records_expired_total", "node", self),
		sent:     reg.Counter("disco_announce_sent_total", "node", self),
		received: reg.Counter("disco_announce_received_total", "node", self),
		rejected: reg.Counter("disco_announce_rejected_total", "node", self),
		lookups:  reg.Counter("disco_lookups_total", "node", self),
	}
}
