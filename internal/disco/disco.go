// Package disco is the decentralized discovery layer: it answers "which
// peers serve content C" so a leaf can resolve a session roster without
// static wiring. The Directory interface has two implementations — Static
// wraps a fixed roster (the original configuration model, where every
// contents peer holds every content), and Catalog is a gossip-backed
// directory in which nodes periodically push signed announcements
// (addr, contentIDs, bandwidth) with per-entry TTL/expiry over the
// internal/gossip live driver.
//
// Roster order matters downstream: the coordination engine numbers peers
// by roster position, so every member of a session must resolve the same
// order. Static preserves the configured order; Catalog returns sorted
// addresses, which every converged node agrees on.
package disco

// Directory answers content-to-peers lookups for session establishment.
// Implementations must be safe for concurrent use.
type Directory interface {
	// Lookup returns the addresses currently serving contentID, in the
	// directory's canonical order (identical on every converged node).
	Lookup(contentID string) []string
	// Roster returns every known serving address, canonically ordered.
	Roster() []string
	// Close releases any background machinery (a no-op for Static).
	Close() error
}

// Static is the fixed-roster directory: every peer serves every content,
// exactly the pre-discovery configuration model. It adapts a configured
// roster to the Directory interface so static setups keep working
// unchanged through the same resolution path as gossip discovery.
type Static struct {
	roster []string
}

// NewStatic wraps a fixed roster (order preserved — it defines the
// engine's peer numbering).
func NewStatic(roster []string) *Static {
	return &Static{roster: append([]string(nil), roster...)}
}

// Lookup returns the whole roster: a static population serves everything.
func (s *Static) Lookup(string) []string { return append([]string(nil), s.roster...) }

// Roster returns the configured roster.
func (s *Static) Roster() []string { return append([]string(nil), s.roster...) }

// Close is a no-op.
func (s *Static) Close() error { return nil }
