package disco

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"p2pmss/internal/gossip"
	"p2pmss/internal/metrics"
)

// Record is one directory entry: a node's announcement of what it
// serves. Version is the announcer's monotonic announcement counter;
// newer versions replace older ones everywhere, so a node's latest
// catalog wins and a crashed node's last record ages out by TTL.
type Record struct {
	Addr      string    `json:"addr"`
	Contents  []string  `json:"contents,omitempty"`
	Bandwidth int       `json:"bandwidth,omitempty"`
	Version   uint64    `json:"version"`
	Expires   time.Time `json:"expires"`
}

// wireRecord is a record on the wire. TTLMs is the remaining lifetime at
// the forwarder — it decays hop by hop, so a record that stops being
// refreshed by its owner expires everywhere within one TTL. Sig
// authenticates the owner-controlled fields under the population's
// shared seed; TTL is excluded (it legitimately changes per hop) and a
// receiver caps it at its own configured TTL, so a forged TTL cannot
// pin a record forever.
type wireRecord struct {
	Addr      string   `json:"addr"`
	Contents  []string `json:"contents,omitempty"`
	Bandwidth int      `json:"bandwidth,omitempty"`
	Version   uint64   `json:"version"`
	TTLMs     int64    `json:"ttl_ms"`
	Sig       uint64   `json:"sig"`
}

// announceBody is the gossip payload: a full-state batch of every
// non-expired record the sender holds (anti-entropy push).
type announceBody struct {
	Records []wireRecord `json:"records"`
}

// CatalogConfig parameterizes a gossip-backed directory node.
type CatalogConfig struct {
	// Self is this node's address (the Addr of its announcements).
	Self string
	// Contents returns the content IDs this node currently serves; nil
	// (or an empty return) announces nothing — the node still relays
	// other nodes' records and can look contents up (a pure consumer).
	Contents func() []string
	// Bandwidth is announced alongside the catalog (advisory; selection
	// hooks may rank by it).
	Bandwidth int
	// Bootstrap lists initial contact addresses; a new node pushes its
	// first announcements there and is welcomed back with the full
	// directory state.
	Bootstrap []string
	// Send delivers one announcement payload to a peer (required). It
	// must not block indefinitely; delivery failures are acceptable —
	// gossip's redundancy is the retry.
	Send func(to string, payload []byte)
	// Fanout is the per-round push width (default 3).
	Fanout int
	// Interval is the announcement round period (default 500 ms).
	Interval time.Duration
	// TTL is how long a record lives without a refresh from its owner
	// (default 6×Interval). It also caps the TTL accepted from the wire.
	TTL time.Duration
	// Seed is the population's shared secret: announcements are signed
	// by it (signed-by-seed), and each node's gossip target selection
	// derives a deterministic per-node stream from it. 0 signs with the
	// zero key and selects from the clock.
	Seed int64
	// Metrics, when non-nil, registers the disco_* series labeled by
	// this node's address.
	Metrics *metrics.Registry
}

// entry is a remote record plus its local expiry.
type entry struct {
	rec Record
	sig uint64
}

// Catalog is the gossip-backed Directory: it accumulates signed
// announcements into a local view of who serves what, refreshes its own
// announcement every round, and expires records whose owner went silent.
type Catalog struct {
	cfg CatalogConfig
	met catalogMetrics

	mu      sync.Mutex
	own     Record // Addr == cfg.Self; Version 0 until first announcement
	ownSig  uint64
	entries map[string]*entry // remote records by address
	closed  bool

	loop *gossip.Live
}

// NewCatalog starts a catalog node: its announcement loop begins
// immediately (with one prompt round so bootstrap contacts learn about
// it without waiting a full interval).
func NewCatalog(cfg CatalogConfig) (*Catalog, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("disco: catalog needs a self address")
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("disco: catalog needs a send function")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 6 * cfg.Interval
	}
	c := &Catalog{
		cfg:     cfg,
		met:     newCatalogMetrics(cfg.Metrics, cfg.Self),
		entries: make(map[string]*entry),
		own:     Record{Addr: cfg.Self, Bandwidth: cfg.Bandwidth},
	}
	// Sign the initial announcement synchronously so the directory is
	// self-aware (Lookup finds our own contents) before the first round.
	c.payload(false)
	loop, err := gossip.StartLive(gossip.LiveConfig{
		Self:        cfg.Self,
		Peers:       c.candidates,
		Payload:     func() []byte { return c.payload(true) },
		Send:        c.send,
		Fanout:      cfg.Fanout,
		Interval:    cfg.Interval,
		Directional: true,
		Seed:        gossipSeed(cfg.Seed, cfg.Self),
	})
	if err != nil {
		return nil, err
	}
	c.loop = loop
	loop.Poke()
	return c, nil
}

// gossipSeed derives a deterministic per-node selection stream from the
// shared seed, so discovery outcomes reproduce run to run.
func gossipSeed(seed int64, self string) int64 {
	if seed == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(self))
	return seed + int64(h.Sum64()&0x7fffffff)
}

// sign authenticates a record's owner-controlled fields under the
// population's shared seed (FNV-1a; a stand-in for a real MAC with the
// same wire shape).
func sign(seed int64, addr string, contents []string, bandwidth int, version uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(addr))
	h.Write([]byte{0})
	for _, cid := range contents {
		h.Write([]byte(cid))
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint64(b[:], uint64(bandwidth))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], version)
	h.Write(b[:])
	return h.Sum64()
}

// candidates is the gossip loop's membership view: everyone we hold a
// live record for, plus the bootstrap contacts.
func (c *Catalog) candidates() []string {
	now := time.Now()
	c.mu.Lock()
	seen := make(map[string]bool, len(c.entries)+len(c.cfg.Bootstrap))
	out := make([]string, 0, len(c.entries)+len(c.cfg.Bootstrap))
	for addr, e := range c.entries {
		if e.rec.Expires.After(now) {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	c.mu.Unlock()
	for _, a := range c.cfg.Bootstrap {
		if !seen[a] && a != c.cfg.Self {
			out = append(out, a)
		}
	}
	sort.Strings(out) // deterministic base order for the seeded shuffle
	return out
}

// send delivers one payload, counting it.
func (c *Catalog) send(to string, payload []byte) {
	c.met.sent.Inc()
	c.cfg.Send(to, payload)
}

// payload snapshots the full directory state for one push. When refresh
// is set (the periodic rounds) the node re-announces itself under a new
// version; the welcome path reuses the current version so it cannot race
// ahead of the owner's own refresh cadence.
func (c *Catalog) payload(refresh bool) []byte {
	now := time.Now()
	c.mu.Lock()
	c.sweepLocked(now)
	if refresh || c.own.Version == 0 {
		var contents []string
		if c.cfg.Contents != nil {
			contents = append([]string(nil), c.cfg.Contents()...)
			sort.Strings(contents)
		}
		if len(contents) > 0 {
			c.own.Version++
			c.own.Contents = contents
			c.ownSig = sign(c.cfg.Seed, c.own.Addr, contents, c.own.Bandwidth, c.own.Version)
		}
	}
	body := announceBody{Records: make([]wireRecord, 0, len(c.entries)+1)}
	if c.own.Version > 0 {
		body.Records = append(body.Records, wireRecord{
			Addr: c.own.Addr, Contents: c.own.Contents, Bandwidth: c.own.Bandwidth,
			Version: c.own.Version, TTLMs: c.cfg.TTL.Milliseconds(), Sig: c.ownSig,
		})
	}
	for _, e := range c.entries {
		ttl := time.Until(e.rec.Expires).Milliseconds()
		if ttl <= 0 {
			continue
		}
		body.Records = append(body.Records, wireRecord{
			Addr: e.rec.Addr, Contents: e.rec.Contents, Bandwidth: e.rec.Bandwidth,
			Version: e.rec.Version, TTLMs: ttl, Sig: e.sig,
		})
	}
	c.met.records.Set(float64(c.recordsLocked()))
	c.mu.Unlock()
	if len(body.Records) == 0 {
		return nil
	}
	b, err := json.Marshal(body)
	if err != nil {
		return nil
	}
	return b
}

// sweepLocked drops expired remote records. Callers hold c.mu.
func (c *Catalog) sweepLocked(now time.Time) {
	for addr, e := range c.entries {
		if !e.rec.Expires.After(now) {
			delete(c.entries, addr)
			c.met.expired.Inc()
		}
	}
}

// recordsLocked counts live records including our own announcement.
func (c *Catalog) recordsLocked() int {
	n := len(c.entries)
	if c.own.Version > 0 {
		n++
	}
	return n
}

// Deliver ingests one announcement payload received from the transport.
// from is the sender's address (used to welcome newly-seen nodes with a
// direct full-state push, which is what lets a late joiner converge in
// one round instead of waiting to be randomly selected).
func (c *Catalog) Deliver(from string, payload []byte) {
	var body announceBody
	if json.Unmarshal(payload, &body) != nil {
		c.met.rejected.Inc()
		return
	}
	c.met.received.Inc()
	now := time.Now()
	maxExpiry := now.Add(c.cfg.TTL)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	_, knewSender := c.entries[from]
	for _, wr := range body.Records {
		if wr.Addr == c.cfg.Self || wr.TTLMs <= 0 {
			continue
		}
		if sign(c.cfg.Seed, wr.Addr, wr.Contents, wr.Bandwidth, wr.Version) != wr.Sig {
			c.met.rejected.Inc()
			continue
		}
		expires := now.Add(time.Duration(wr.TTLMs) * time.Millisecond)
		if expires.After(maxExpiry) {
			expires = maxExpiry
		}
		e := c.entries[wr.Addr]
		switch {
		case e == nil:
			c.entries[wr.Addr] = &entry{rec: Record{
				Addr: wr.Addr, Contents: wr.Contents, Bandwidth: wr.Bandwidth,
				Version: wr.Version, Expires: expires,
			}, sig: wr.Sig}
		case wr.Version > e.rec.Version:
			e.rec = Record{
				Addr: wr.Addr, Contents: wr.Contents, Bandwidth: wr.Bandwidth,
				Version: wr.Version, Expires: expires,
			}
			e.sig = wr.Sig
		case wr.Version == e.rec.Version && expires.After(e.rec.Expires):
			e.rec.Expires = expires
		}
	}
	_, knowSender := c.entries[from]
	c.met.records.Set(float64(c.recordsLocked()))
	c.mu.Unlock()
	if from != "" && from != c.cfg.Self && !knewSender && knowSender {
		// A node we had never heard from announced itself: push it our
		// full state so it does not have to wait to be sampled.
		if b := c.payload(false); b != nil {
			c.send(from, b)
		}
	}
}

// Lookup returns the addresses currently announcing contentID, sorted.
func (c *Catalog) Lookup(contentID string) []string {
	c.met.lookups.Inc()
	now := time.Now()
	var out []string
	c.mu.Lock()
	c.sweepLocked(now)
	if c.own.Version > 0 && containsContent(c.own.Contents, contentID) {
		out = append(out, c.own.Addr)
	}
	for addr, e := range c.entries {
		if containsContent(e.rec.Contents, contentID) {
			out = append(out, addr)
		}
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

func containsContent(contents []string, id string) bool {
	for _, cid := range contents {
		if cid == id {
			return true
		}
	}
	return false
}

// Roster returns every address with a live announcement, sorted.
func (c *Catalog) Roster() []string {
	now := time.Now()
	var out []string
	c.mu.Lock()
	c.sweepLocked(now)
	if c.own.Version > 0 {
		out = append(out, c.own.Addr)
	}
	for addr := range c.entries {
		out = append(out, addr)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// Records snapshots the directory (own announcement included), sorted
// by address — the /debug/directory surface.
func (c *Catalog) Records() []Record {
	now := time.Now()
	var out []Record
	c.mu.Lock()
	c.sweepLocked(now)
	if c.own.Version > 0 {
		own := c.own
		own.Contents = append([]string(nil), c.own.Contents...)
		own.Expires = now.Add(c.cfg.TTL)
		out = append(out, own)
	}
	for _, e := range c.entries {
		rec := e.rec
		rec.Contents = append([]string(nil), e.rec.Contents...)
		out = append(out, rec)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Poke triggers an immediate announcement round.
func (c *Catalog) Poke() { c.loop.Poke() }

// WaitRoster blocks until the directory knows at least n serving
// addresses, or errors at the timeout.
func (c *Catalog) WaitRoster(n int, timeout time.Duration) error {
	return c.waitFor(timeout, func() (int, bool) {
		got := len(c.Roster())
		return got, got >= n
	}, fmt.Sprintf("%d roster entries", n))
}

// WaitContent blocks until at least n peers announce contentID, or
// errors at the timeout.
func (c *Catalog) WaitContent(contentID string, n int, timeout time.Duration) error {
	return c.waitFor(timeout, func() (int, bool) {
		got := len(c.Lookup(contentID))
		return got, got >= n
	}, fmt.Sprintf("%d peers for content %q", n, contentID))
}

func (c *Catalog) waitFor(timeout time.Duration, cond func() (int, bool), what string) error {
	deadline := time.Now().Add(timeout)
	for {
		got, ok := cond()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("disco: %s not reached within %s (have %d)", what, timeout, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the announcement loop. The directory stays readable
// (lookups keep answering from the last view) but no longer refreshes,
// so its own record ages out of the swarm within one TTL — exactly what
// a crash looks like to everyone else.
func (c *Catalog) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.loop.Close()
}
