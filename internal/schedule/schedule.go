// Package schedule implements the time-slot transmission model of §2 of
// the paper and its packet-allocation algorithm for heterogeneous
// contents peers.
//
// Data transmission on channel CC_i is a sequence of time slots
// CL_i^1, CL_i^2, … of length τ_i, where τ_i is the time to transmit one
// packet (τ_i ∝ 1/bw_i). Slot CL precedes CL' (CL → CL') iff
// et(CL) < et(CL'). A slot is initial iff no slot precedes it.
//
// Packets t_1 … t_l are allocated one at a time to the initial slot with
// the largest start time (the paper's step 1–2), which yields the packet
// allocation property: when the leaf receives t_h, every t_k with k < h
// has already been delivered (all earlier packets sit in slots with
// earlier-or-equal end times).
package schedule

import (
	"container/heap"
	"fmt"
)

// Channel models a logical channel CC_i between a contents peer and the
// leaf peer.
type Channel struct {
	// ID identifies the channel (and its contents peer).
	ID int
	// SlotLen is τ_i, the time to transmit one packet on this channel.
	SlotLen float64
}

// SlotLenFromBandwidth converts a relative bandwidth into a slot length:
// a channel with twice the bandwidth has half the slot length.
func SlotLenFromBandwidth(bw float64) float64 {
	if bw <= 0 {
		panic(fmt.Sprintf("schedule: bandwidth %v must be positive", bw))
	}
	return 1 / bw
}

// Slot is one time slot CL_i^k.
type Slot struct {
	// Channel is the channel ID owning the slot.
	Channel int
	// K is the 1-based slot number on its channel.
	K int
	// Start and End are st(CL) and et(CL).
	Start, End float64
}

// Allocation is the result of allocating a packet sequence to channels.
type Allocation struct {
	// PerChannel[i] lists, in transmission order, the 1-based content
	// packet indices assigned to channels[i] (the subsequence pkt_i).
	PerChannel [][]int64
	// Slots[k-1] is the slot carrying packet t_k.
	Slots []Slot
}

// slotHeap orders candidate next-slots by (End asc, Start desc, Channel asc),
// implementing "the initial slot with the largest start time".
type slotEntry struct {
	channel int // index into the channels slice
	id      int // channel ID
	k       int
	start   float64
	end     float64
}

type slotHeap []slotEntry

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	if h[i].start != h[j].start {
		return h[i].start > h[j].start
	}
	return h[i].id < h[j].id
}
func (h slotHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)          { *h = append(*h, x.(slotEntry)) }
func (h *slotHeap) Pop() any            { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h slotHeap) peek() slotEntry      { return h[0] }
func (h *slotHeap) replace(e slotEntry) { (*h)[0] = e; heap.Fix(h, 0) }

// Allocate assigns packets t_1 … t_l to the given channels using the
// paper's allocation algorithm. At least one channel is required and all
// slot lengths must be positive.
func Allocate(l int, channels []Channel) Allocation {
	a := NewAllocator(channels)
	for k := 0; k < l; k++ {
		a.Next()
	}
	return a.Result()
}

// Allocator allocates packets incrementally and supports mid-stream slot
// length (bandwidth) changes — the heterogeneous "future work" extension
// of §5. Changing a channel's rate affects its slots from the channel's
// current position onward.
type Allocator struct {
	channels []Channel
	h        slotHeap
	next     int64 // next content packet index to allocate (1-based)
	result   Allocation
}

// NewAllocator returns an Allocator over the given channels.
func NewAllocator(channels []Channel) *Allocator {
	if len(channels) == 0 {
		panic("schedule: Allocate requires at least one channel")
	}
	a := &Allocator{
		channels: channels,
		next:     1,
		result:   Allocation{PerChannel: make([][]int64, len(channels))},
	}
	for i, c := range channels {
		if c.SlotLen <= 0 {
			panic(fmt.Sprintf("schedule: channel %d slot length %v must be positive", c.ID, c.SlotLen))
		}
		a.h = append(a.h, slotEntry{channel: i, id: c.ID, k: 1, start: 0, end: c.SlotLen})
	}
	heap.Init(&a.h)
	return a
}

// Next allocates the next packet and returns its slot.
func (a *Allocator) Next() Slot {
	e := a.h.peek()
	s := Slot{Channel: e.id, K: e.k, Start: e.start, End: e.end}
	a.result.PerChannel[e.channel] = append(a.result.PerChannel[e.channel], a.next)
	a.result.Slots = append(a.result.Slots, s)
	a.next++
	tau := a.channels[e.channel].SlotLen
	a.h.replace(slotEntry{channel: e.channel, id: e.id, k: e.k + 1, start: e.end, end: e.end + tau})
	return s
}

// SetSlotLen changes channel ch's slot length for all not-yet-allocated
// slots (the channel's bandwidth changed mid-stream). The pending slot's
// end time is recomputed from its start.
func (a *Allocator) SetSlotLen(chID int, slotLen float64) {
	if slotLen <= 0 {
		panic(fmt.Sprintf("schedule: slot length %v must be positive", slotLen))
	}
	for i := range a.channels {
		if a.channels[i].ID != chID {
			continue
		}
		a.channels[i].SlotLen = slotLen
		for j := range a.h {
			if a.h[j].channel == i {
				a.h[j].end = a.h[j].start + slotLen
				heap.Fix(&a.h, j)
				return
			}
		}
		return
	}
	panic(fmt.Sprintf("schedule: unknown channel %d", chID))
}

// Allocated returns how many packets have been allocated so far.
func (a *Allocator) Allocated() int { return len(a.result.Slots) }

// Result returns the allocation so far. The returned value shares state
// with the allocator; callers should stop allocating before using it.
func (a *Allocator) Result() Allocation { return a.result }

// InOrder verifies the packet allocation property on an allocation:
// delivery (slot end) times are non-decreasing in packet index, so on
// receipt of t_h every t_k (k < h) has been delivered. It returns the
// first violating packet index, or 0 if the property holds.
func (al Allocation) InOrder() int64 {
	for k := 1; k < len(al.Slots); k++ {
		if al.Slots[k].End < al.Slots[k-1].End {
			return int64(k + 1)
		}
	}
	return 0
}

// FinishTime returns the end time of the last allocated slot, or 0.
func (al Allocation) FinishTime() float64 {
	if len(al.Slots) == 0 {
		return 0
	}
	return al.Slots[len(al.Slots)-1].End
}

// ProportionalChannels builds channels whose slot lengths realize the
// given relative bandwidths (e.g. 4:2:1 in Figure 1), with IDs 0..n-1.
func ProportionalChannels(bandwidths ...float64) []Channel {
	chs := make([]Channel, len(bandwidths))
	for i, bw := range bandwidths {
		chs[i] = Channel{ID: i, SlotLen: SlotLenFromBandwidth(bw)}
	}
	return chs
}
