package schedule

import "testing"

func BenchmarkAllocate(b *testing.B) {
	chs := ProportionalChannels(8, 4, 4, 2, 2, 1, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Allocate(10000, chs)
	}
}

func BenchmarkAllocatorNext(b *testing.B) {
	a := NewAllocator(ProportionalChannels(4, 2, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Next()
	}
}
