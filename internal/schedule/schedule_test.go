package schedule

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// §2 / Figure 1: bw_1:bw_2:bw_3 = 4:2:1 and pkt = ⟨t1…t7⟩ for one time
// unit gives pkt_1 = ⟨t1,t2,t4,t5⟩, pkt_2 = ⟨t3,t6⟩, pkt_3 = ⟨t7⟩.
func TestPaperAllocationExample(t *testing.T) {
	al := Allocate(7, ProportionalChannels(4, 2, 1))
	want := [][]int64{{1, 2, 4, 5}, {3, 6}, {7}}
	if !reflect.DeepEqual(al.PerChannel, want) {
		t.Errorf("PerChannel = %v, want %v", al.PerChannel, want)
	}
	if v := al.InOrder(); v != 0 {
		t.Errorf("allocation violates in-order property at t_%d", v)
	}
	if al.FinishTime() != 1 {
		t.Errorf("FinishTime = %v, want 1 (one time unit)", al.FinishTime())
	}
}

// Continuing past one time unit, t8 goes to the fastest channel.
func TestAllocationContinues(t *testing.T) {
	al := Allocate(8, ProportionalChannels(4, 2, 1))
	want := [][]int64{{1, 2, 4, 5, 8}, {3, 6}, {7}}
	if !reflect.DeepEqual(al.PerChannel, want) {
		t.Errorf("PerChannel = %v, want %v", al.PerChannel, want)
	}
}

func TestHomogeneousRoundRobin(t *testing.T) {
	// Equal bandwidths: packets spread one per channel per slot epoch.
	al := Allocate(6, ProportionalChannels(1, 1, 1))
	for i, pkts := range al.PerChannel {
		if len(pkts) != 2 {
			t.Errorf("channel %d got %d packets, want 2", i, len(pkts))
		}
	}
	if v := al.InOrder(); v != 0 {
		t.Errorf("violates property at t_%d", v)
	}
}

func TestSingleChannel(t *testing.T) {
	al := Allocate(5, ProportionalChannels(2))
	if len(al.PerChannel[0]) != 5 {
		t.Errorf("single channel got %v", al.PerChannel[0])
	}
	if al.FinishTime() != 2.5 {
		t.Errorf("FinishTime = %v, want 2.5", al.FinishTime())
	}
}

// |pkt_i| ≥ |pkt_j| whenever bw_i ≥ bw_j (§2).
func TestProportionalityProperty(t *testing.T) {
	f := func(seed int64, nn, ll uint8) bool {
		n := int(nn%6) + 1
		l := int(ll%120) + n
		rng := rand.New(rand.NewSource(seed))
		bws := make([]float64, n)
		for i := range bws {
			bws[i] = float64(rng.Intn(8) + 1)
		}
		al := Allocate(l, ProportionalChannels(bws...))
		if al.InOrder() != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if bws[i] > bws[j] && len(al.PerChannel[i]) < len(al.PerChannel[j]) {
					return false
				}
			}
		}
		// Completeness: every packet allocated exactly once.
		seen := make(map[int64]bool)
		for _, pkts := range al.PerChannel {
			for _, k := range pkts {
				if seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return len(seen) == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The packet allocation property holds for arbitrary channel mixes.
func TestInOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		chs := make([]Channel, n)
		for i := range chs {
			chs[i] = Channel{ID: i, SlotLen: rng.Float64()*2 + 0.05}
		}
		al := Allocate(rng.Intn(200)+1, chs)
		return al.InOrder() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSlotNumbersAndTimes(t *testing.T) {
	al := Allocate(4, ProportionalChannels(2, 1))
	// τ = 0.5, 1.0. Expected slots: t1 CC0[0,.5], t2 CC0[.5,1],
	// t3 CC1[0,1] (tie at et=1 goes to larger start → CC0? No: at
	// allocation of t3 the initial slots are CC0 slot3 [1,1.5] and CC1
	// slot1 [0,1]; minimal end time is CC1's 1.0.)
	wantCh := []int{0, 0, 1, 0}
	for i, s := range al.Slots {
		if s.Channel != wantCh[i] {
			t.Errorf("t%d on channel %d, want %d (slots=%v)", i+1, s.Channel, wantCh[i], al.Slots)
			break
		}
	}
	if al.Slots[0].K != 1 || al.Slots[1].K != 2 {
		t.Errorf("slot numbers wrong: %v", al.Slots[:2])
	}
	if al.Slots[1].Start != 0.5 || al.Slots[1].End != 1.0 {
		t.Errorf("t2 slot = %v", al.Slots[1])
	}
}

func TestTieBreakLargestStart(t *testing.T) {
	// Two channels 2:1 — at et=1.0 both CC0 slot2 (st=.5) and CC1 slot1
	// (st=0) are initial; the algorithm must pick the larger start time.
	al := Allocate(3, ProportionalChannels(2, 1))
	// t1→CC0[0,.5]; then initial = CC0[.5,1] and CC1[0,1]: tie at et=1 →
	// largest start → CC0 gets t2, CC1 gets t3.
	if al.Slots[1].Channel != 0 || al.Slots[2].Channel != 1 {
		t.Errorf("tie-break wrong: %v", al.Slots)
	}
}

// Mid-stream bandwidth change (heterogeneous extension, §5 future work).
func TestDynamicRateChange(t *testing.T) {
	a := NewAllocator(ProportionalChannels(1, 1))
	a.Next() // t1 → CC0 [0,1]
	a.Next() // t2 → CC1 [0,1]
	// CC1 degrades to quarter bandwidth before its next slot.
	a.SetSlotLen(1, 4)
	for i := 0; i < 4; i++ {
		a.Next()
	}
	al := a.Result()
	// After the change CC0 should absorb most packets.
	if len(al.PerChannel[0]) < 4 {
		t.Errorf("fast channel got %v packets: %v", len(al.PerChannel[0]), al.PerChannel)
	}
	if v := al.InOrder(); v != 0 {
		t.Errorf("violates property at t_%d after rate change", v)
	}
}

func TestSetSlotLenUnknownChannelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetSlotLen(unknown) did not panic")
		}
	}()
	a := NewAllocator(ProportionalChannels(1))
	a.SetSlotLen(9, 1)
}

func TestAllocatePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no channels":  func() { Allocate(1, nil) },
		"zero slotlen": func() { Allocate(1, []Channel{{ID: 0, SlotLen: 0}}) },
		"neg bw":       func() { SlotLenFromBandwidth(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAllocatedCount(t *testing.T) {
	a := NewAllocator(ProportionalChannels(1))
	if a.Allocated() != 0 {
		t.Error("fresh allocator not empty")
	}
	a.Next()
	a.Next()
	if a.Allocated() != 2 {
		t.Errorf("Allocated = %d", a.Allocated())
	}
}

func TestEmptyAllocation(t *testing.T) {
	al := Allocate(0, ProportionalChannels(1, 2))
	if al.FinishTime() != 0 || al.InOrder() != 0 {
		t.Error("empty allocation misbehaves")
	}
}
