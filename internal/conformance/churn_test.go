package conformance_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/coord"
	"p2pmss/internal/engine"
	"p2pmss/internal/live"
	"p2pmss/internal/overlay"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

// crashVictims picks `count` peers outside the leaf's initial selection
// for the seed. Crashing non-selected peers keeps the leaf's slot
// failover out of play (the live leaf replaces unreachable selected
// members synchronously, which the simulated leaf does not model) and
// isolates the mirrored path: member-level SendFailed failover.
func crashVictims(seed int64, count int) []engine.PeerID {
	rng := rand.New(rand.NewSource(engine.PeerSeed(seed, engine.LeafID)))
	sel, _ := engine.SelectInitial(rng, confN, confH)
	selected := make(map[engine.PeerID]bool, len(sel))
	for _, id := range sel {
		selected[id] = true
	}
	var victims []engine.PeerID
	for id := engine.PeerID(0); int(id) < confN && len(victims) < count; id++ {
		if !selected[id] {
			victims = append(victims, id)
		}
	}
	return victims
}

// simChurnOutcomes runs the simulator with the victims crash-stopped
// before the run (coord.Config.CrashPeers with CrashAt zero) and
// member-level retries enabled, mirroring the live driver's defaults.
func simChurnOutcomes(t *testing.T, proto protocol.Protocol, seed int64, victims []engine.PeerID) []engine.Outcome {
	t.Helper()
	crash := make([]overlay.PeerID, len(victims))
	for i, v := range victims {
		crash[i] = overlay.PeerID(v)
	}
	res, err := coord.Run(proto, coord.Config{
		N: confN, H: confH, Interval: confInterval,
		Rate: confRate, Delta: 1,
		LeafShares: true,
		DataPlane:  true, ContentLen: confPackets,
		Settle: 1, Window: 1,
		Seed:       seed,
		CrashPeers: crash,
		Retries:    confH,
	})
	if err != nil {
		t.Fatalf("sim %s seed %d: %v", proto, seed, err)
	}
	return res.Outcomes
}

// liveChurnOutcomes mirrors the scripted crash on the live runtime: the
// victims' endpoints are closed before the leaf starts, so sends to
// them fail synchronously and feed SendFailed into the surviving
// engines — the same failover the simulator derives from
// coord.Config.CrashPeers. The fabric is the bounded queued variant, so
// the churn run also exercises the capped FIFO path end to end.
func liveChurnOutcomes(t *testing.T, proto protocol.Protocol, seed int64, victims []engine.PeerID) []engine.Outcome {
	t.Helper()
	data := make([]byte, confPackets*16)
	for i := range data {
		data[i] = byte(i)
	}
	c := content.New("conf", data, 16)

	fab := transport.NewBoundedQueuedFabric(64, transport.QueueBlock)
	roster := make([]string, confN)
	for i := range roster {
		roster[i] = fmt.Sprintf("p%d", i)
	}
	peers := make([]*live.Peer, confN)
	for i := range roster {
		p, err := live.NewPeer(live.PeerConfig{
			Content:  c,
			Roster:   roster,
			H:        confH,
			Interval: confInterval,
			Delta:    time.Millisecond,
			Protocol: proto,
			Retries:  confH,
			Seed:     engine.PeerSeed(seed, engine.PeerID(i)),
		}, live.WithFabric(fab, roster[i]))
		if err != nil {
			t.Fatalf("live peer %d: %v", i, err)
		}
		peers[i] = p
		defer p.Close()
	}
	for _, v := range victims {
		peers[v].Close() // scripted crash: fail before participating
	}
	leaf, err := live.NewLeaf(live.LeafConfig{
		Roster: roster, H: confH, Interval: confInterval,
		Rate: confRate, ContentID: c.ID(),
		ContentSize: len(data), PacketSize: 16,
		Seed: engine.PeerSeed(seed, engine.LeafID),
	}, live.WithFabric(fab, "leaf"))
	if err != nil {
		t.Fatalf("live leaf: %v", err)
	}
	defer leaf.Close()

	if err := leaf.Start(); err != nil {
		t.Fatalf("live start: %v", err)
	}
	fab.Wait()

	outs := make([]engine.Outcome, confN)
	for i, p := range peers {
		outs[i] = p.Outcome()
	}
	return outs
}

// TestSimLiveConformanceUnderChurn byte-compares the two drivers with
// two peers crash-stopped before the run. The surviving peers must
// agree on the repaired tree / assignment unions, and the victims must
// end inactive on both sides.
func TestSimLiveConformanceUnderChurn(t *testing.T) {
	for _, proto := range []protocol.Protocol{protocol.TCoP, protocol.DCoP} {
		for seed := int64(1); seed <= 5; seed++ {
			victims := crashVictims(seed, 2)
			if len(victims) != 2 {
				t.Fatalf("seed %d: got %d victims", seed, len(victims))
			}
			sim := outcomeLines(simChurnOutcomes(t, proto, seed, victims))
			lv := outcomeLines(liveChurnOutcomes(t, proto, seed, victims))
			if sim != lv {
				t.Errorf("%s seed %d crash=%v: drivers diverged\n--- sim ---\n%s\n--- live ---\n%s",
					proto, seed, victims, sim, lv)
			}
		}
	}
}

// TestChurnConformanceIsNotVacuous pins that the scripted crash
// actually bites: the victims end inactive while the majority of the
// swarm still activates, on the simulator side of the comparison.
func TestChurnConformanceIsNotVacuous(t *testing.T) {
	victims := crashVictims(1, 2)
	outs := simChurnOutcomes(t, protocol.TCoP, 1, victims)
	crashed := make(map[engine.PeerID]bool)
	for _, v := range victims {
		crashed[v] = true
	}
	active := 0
	for _, o := range outs {
		if crashed[o.ID] {
			if o.Active {
				t.Fatalf("victim %d still active", o.ID)
			}
			continue
		}
		if o.Active {
			active++
		}
	}
	if active < confN-len(victims)-1 {
		t.Fatalf("only %d/%d survivors active", active, confN-len(victims))
	}
}
