package conformance_test

import (
	"strings"
	"testing"

	"p2pmss/internal/flight"
	"p2pmss/internal/protocol"
)

// TestFirstDivergenceOnAgreeingRuns is the control: a sim run and its
// live twin from the same seed must produce flight logs with no
// divergence — otherwise the divergence reporter would cry wolf on
// every conformance failure.
func TestFirstDivergenceOnAgreeingRuns(t *testing.T) {
	for _, proto := range []protocol.Protocol{protocol.TCoP, protocol.DCoP} {
		simFl, liveFl := flight.NewSet(0), flight.NewSet(0)
		simOutcomes(t, proto, 1, simFl)
		liveOutcomes(t, proto, 1, liveFl)
		if len(simFl.Events()) == 0 || len(liveFl.Events()) == 0 {
			t.Fatalf("%s: empty flight log (sim %d, live %d events) — comparison is vacuous",
				proto, len(simFl.Events()), len(liveFl.Events()))
		}
		d := flight.FirstDivergence(
			flight.Log{Label: "sim", Events: simFl.Events()},
			flight.Log{Label: "live", Events: liveFl.Events()},
			flight.DiffOptions{},
		)
		if d != nil {
			t.Errorf("%s: conformant drivers reported divergent:\n%s", proto, d)
		}
	}
}

// TestFirstDivergenceNamesOffendingPeer feeds the reporter a known-
// divergent pair — a sim run against a live run from a different seed,
// so their coordination unfolds differently by construction — and
// requires a report naming the offending peer, the event type, and both
// sides' timestamps (virtual time on the sim track, wall time on the
// live track). This is the fixture the CI divergence job runs.
func TestFirstDivergenceNamesOffendingPeer(t *testing.T) {
	simFl, liveFl := flight.NewSet(0), flight.NewSet(0)
	simOutcomes(t, protocol.TCoP, 1, simFl)
	liveOutcomes(t, protocol.TCoP, 2, liveFl)

	d := flight.FirstDivergence(
		flight.Log{Label: "sim", Events: simFl.Events()},
		flight.Log{Label: "live", Events: liveFl.Events()},
		flight.DiffOptions{},
	)
	if d == nil {
		t.Fatal("different-seed runs reported conformant — the divergence reporter is blind")
	}
	if d.Peer < 0 || d.Peer >= confN {
		t.Errorf("divergence names peer %d, outside the population 0..%d", d.Peer, confN-1)
	}
	if d.A == nil && d.B == nil {
		t.Fatal("divergence carries neither side's event")
	}
	report := d.String()
	for _, want := range []string{"first divergence", "peer", "sim", "live", "t="} {
		if !strings.Contains(report, want) {
			t.Errorf("report %q missing %q", report, want)
		}
	}
	// Whichever side's event exists must carry a concrete type; the
	// timestamps are rendered by String (checked via "t=" above).
	if d.A != nil && d.A.Type == "" {
		t.Error("sim-side event has no type")
	}
	if d.B != nil && d.B.Type == "" {
		t.Error("live-side event has no type")
	}
	t.Logf("divergence fixture report:\n%s", report)
}
