// Package conformance_test checks that the discrete-event simulator and
// the live runtime — two drivers of the same internal/engine core —
// produce identical coordination results when fed identical randomness
// under zero churn: the same tree (TCoP) and the same assignment unions
// (DCoP), byte-compared as sorted (peer, parent, children, subsequence)
// lines over several seeds.
//
// The drivers are conformant because (a) every peer's engine RNG is
// seeded PeerSeed(seed, id) and the leaf's PeerSeed(seed, LeafID) on
// both sides, (b) both compute the initial assignment as
// Div(Enhance(content, h), H, index) at rate τ(h+1)/(hH), and (c) the
// live fabric's queued mode delivers messages in global FIFO order —
// the same breadth-first order the simulator's uniform latency yields.
// The content rate is set so low that no data-plane packet is sent and
// every mark stays at offset 0, removing wall-clock position from the
// comparison.
package conformance_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"p2pmss/internal/content"
	"p2pmss/internal/coord"
	"p2pmss/internal/engine"
	"p2pmss/internal/flight"
	"p2pmss/internal/live"
	"p2pmss/internal/obs"
	"p2pmss/internal/protocol"
	"p2pmss/internal/transport"
)

const (
	confN        = 6
	confH        = 3
	confInterval = 2
	confPackets  = 40
	confRate     = 1e-6 // so slow that no data packet moves during coordination
)

// outcomeLines formats per-peer outcomes into canonical comparison
// lines. Rates are excluded: the sim plans hand-offs δ after the mark
// while the live runtime applies them at the transmit position, so
// in-flight rate bookkeeping may differ transiently; tree shape and
// assignment unions are the protocol-level result.
func outcomeLines(outs []engine.Outcome) string {
	lines := make([]string, 0, len(outs))
	for _, o := range outs {
		kids := append([]engine.PeerID(nil), o.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		keys := o.Assigned.Keys()
		sort.Strings(keys)
		lines = append(lines, fmt.Sprintf("peer=%d active=%v parent=%d children=%v assigned=%v",
			o.ID, o.Active, o.Parent, kids, keys))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// simOutcomes runs the simulator and returns its per-peer outcomes,
// recording the engine event/effect stream into fl when non-nil.
func simOutcomes(t *testing.T, proto protocol.Protocol, seed int64, fl *flight.Set) []engine.Outcome {
	t.Helper()
	res, err := coord.Run(proto, coord.Config{
		N: confN, H: confH, Interval: confInterval,
		Rate: confRate, Delta: 1,
		LeafShares: true,
		DataPlane:  true, ContentLen: confPackets,
		Settle: 1, Window: 1,
		Seed: seed,
		Obs:  obs.Observability{Flight: fl},
	})
	if err != nil {
		t.Fatalf("sim %s seed %d: %v", proto, seed, err)
	}
	if len(res.Outcomes) != confN {
		t.Fatalf("sim %s seed %d: %d outcomes, want %d", proto, seed, len(res.Outcomes), confN)
	}
	return res.Outcomes
}

// liveOutcomes runs the live runtime on a queued (deterministic FIFO)
// fabric and returns its per-peer outcomes in roster order, recording
// the engine event/effect stream into fl when non-nil.
func liveOutcomes(t *testing.T, proto protocol.Protocol, seed int64, fl *flight.Set) []engine.Outcome {
	t.Helper()
	data := make([]byte, confPackets*16)
	for i := range data {
		data[i] = byte(i)
	}
	c := content.New("conf", data, 16)

	fab := transport.NewQueuedFabric()
	roster := make([]string, confN)
	for i := range roster {
		roster[i] = fmt.Sprintf("p%d", i)
	}
	peers := make([]*live.Peer, confN)
	for i := range roster {
		p, err := live.NewPeer(live.PeerConfig{
			Content:  c,
			Roster:   roster,
			H:        confH,
			Interval: confInterval,
			Delta:    time.Millisecond,
			Protocol: proto,
			Seed:     engine.PeerSeed(seed, engine.PeerID(i)),
			Obs:      obs.Observability{Flight: fl},
		}, live.WithFabric(fab, roster[i]))
		if err != nil {
			t.Fatalf("live peer %d: %v", i, err)
		}
		peers[i] = p
		defer p.Close()
	}
	leaf, err := live.NewLeaf(live.LeafConfig{
		Roster: roster, H: confH, Interval: confInterval,
		Rate: confRate, ContentID: c.ID(),
		ContentSize: len(data), PacketSize: 16,
		Seed: engine.PeerSeed(seed, engine.LeafID),
	}, live.WithFabric(fab, "leaf"))
	if err != nil {
		t.Fatalf("live leaf: %v", err)
	}
	defer leaf.Close()

	if err := leaf.Start(); err != nil {
		t.Fatalf("live start: %v", err)
	}
	// The queued pump runs every handler to completion before the next
	// delivery; when the fabric quiesces, coordination has finished
	// (timers only fire later, and are stale by then).
	fab.Wait()

	outs := make([]engine.Outcome, confN)
	for i, p := range peers {
		outs[i] = p.Outcome()
	}
	return outs
}

// TestSimLiveConformance runs both drivers from the same seed and
// requires byte-identical canonical outcomes, for five seeds and both
// protocols. Both sides record flight logs, so a mismatch is reported
// with the first divergent engine event — the offending peer and event,
// not just two differing outcome dumps.
func TestSimLiveConformance(t *testing.T) {
	for _, proto := range []protocol.Protocol{protocol.TCoP, protocol.DCoP} {
		for seed := int64(1); seed <= 5; seed++ {
			simFl, liveFl := flight.NewSet(0), flight.NewSet(0)
			sim := outcomeLines(simOutcomes(t, proto, seed, simFl))
			lv := outcomeLines(liveOutcomes(t, proto, seed, liveFl))
			if sim != lv {
				report := "flight logs agree (divergence is in post-coordination state)"
				if d := flight.FirstDivergence(
					flight.Log{Label: "sim", Events: simFl.Events()},
					flight.Log{Label: "live", Events: liveFl.Events()},
					flight.DiffOptions{},
				); d != nil {
					report = d.String()
				}
				t.Errorf("%s seed %d: drivers diverged\n%s\n--- sim ---\n%s\n--- live ---\n%s",
					proto, seed, report, sim, lv)
			}
		}
	}
}

// TestSimLiveConformanceCoversContent spot-checks that the agreed-upon
// assignment unions actually cover the enhanced content (a vacuous
// conformance pass — both sides empty — would slip through the byte
// comparison).
func TestSimLiveConformanceCoversContent(t *testing.T) {
	outs := simOutcomes(t, protocol.TCoP, 1, nil)
	covered := make(map[string]bool)
	total := 0
	for _, o := range outs {
		if !o.Active {
			t.Fatalf("peer %d inactive under zero churn", o.ID)
		}
		for _, k := range o.Assigned.Keys() {
			covered[k] = true
		}
		total += len(o.Assigned)
	}
	if total == 0 {
		t.Fatal("no assignments at all — conformance would be vacuous")
	}
	for k := int64(1); k <= confPackets; k++ {
		if !covered[fmt.Sprintf("t%d", k)] {
			t.Fatalf("data packet t%d assigned to nobody", k)
		}
	}
}
