// Fluid-vs-packet data-plane conformance: the flow-level plane
// (coord.PlaneFluid, internal/fluid) must reproduce the per-packet
// plane's results at small n, where running both is cheap.
//
// The contract has two tiers. With zero jitter and zero loss the fluid
// plane mirrors every eng.Rand() draw of the packet plane (transmitter
// phase draws are the only data-plane draws), so the control trajectory
// is event-identical: sync time, rounds, control packets and active
// peers must be exactly equal, per-peer send counts equal up to one
// boundary slot, and the receipt rate equal up to the packet plane's
// accumulated floating-point slot drift. With loss and jitter the two
// planes consume randomness differently (every per-packet send draws),
// so only the seed-averaged receipt rate is comparable, within a pinned
// tolerance.
package conformance_test

import (
	"math"
	"testing"

	"p2pmss/internal/coord"
	"p2pmss/internal/overlay"
)

// fluidBaseConfig is the small-n data-plane setting both planes run.
func fluidBaseConfig(n, h int, seed int64) coord.Config {
	cfg := coord.DefaultConfig()
	cfg.N, cfg.H = n, h
	cfg.DataPlane = true
	cfg.Jitter = 0
	cfg.Rate = 2
	cfg.ContentLen = 30000
	cfg.Settle, cfg.Window = 10, 100
	cfg.Seed = seed
	return cfg
}

// receiptRateTol is the relative slack for the exact tier: the packet
// plane reaches each slot by repeated After(1/rate) hops, so a send can
// drift across a window boundary by accumulated float error; one slot
// out of a >100-packet window is well under 2%.
const receiptRateTol = 0.02

func TestFluidConformanceExactWithoutImpairments(t *testing.T) {
	for _, proto := range []coord.Protocol{coord.DCoP, coord.TCoP} {
		for _, h := range []int{5, 10} {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := fluidBaseConfig(40, h, seed)
				pk, err := coord.Run(proto, cfg)
				if err != nil {
					t.Fatalf("%s packet run: %v", proto, err)
				}
				cfg.PlaneMode = coord.PlaneFluid
				fl, err := coord.Run(proto, cfg)
				if err != nil {
					t.Fatalf("%s fluid run: %v", proto, err)
				}
				id := func(what string) string { return proto + "/" + what }
				if fl.SyncTime != pk.SyncTime {
					t.Errorf("%s h=%d seed=%d: SyncTime fluid %v != packet %v", id("sync"), h, seed, fl.SyncTime, pk.SyncTime)
				}
				if fl.Rounds != pk.Rounds || fl.SyncRounds != pk.SyncRounds {
					t.Errorf("%s h=%d seed=%d: rounds fluid %d/%d != packet %d/%d",
						id("rounds"), h, seed, fl.Rounds, fl.SyncRounds, pk.Rounds, pk.SyncRounds)
				}
				if fl.ControlPackets != pk.ControlPackets {
					t.Errorf("%s h=%d seed=%d: ControlPackets fluid %d != packet %d",
						id("ctl"), h, seed, fl.ControlPackets, pk.ControlPackets)
				}
				if fl.ActivePeers != pk.ActivePeers {
					t.Errorf("%s h=%d seed=%d: ActivePeers fluid %d != packet %d",
						id("active"), h, seed, fl.ActivePeers, pk.ActivePeers)
				}
				if pk.ReceiptRate == 0 {
					t.Fatalf("%s h=%d seed=%d: packet plane measured no arrivals; the comparison is vacuous", proto, h, seed)
				}
				if rel := math.Abs(fl.ReceiptRate-pk.ReceiptRate) / pk.ReceiptRate; rel > receiptRateTol {
					t.Errorf("%s h=%d seed=%d: ReceiptRate fluid %.5f vs packet %.5f (rel %.4f > %v)",
						id("rate"), h, seed, fl.ReceiptRate, pk.ReceiptRate, rel, receiptRateTol)
				}
				for i := range pk.PeerSent {
					if d := fl.PeerSent[i] - pk.PeerSent[i]; d < -1 || d > 1 {
						t.Errorf("%s h=%d seed=%d: PeerSent[%d] fluid %d vs packet %d",
							id("sent"), h, seed, i, fl.PeerSent[i], pk.PeerSent[i])
					}
				}
			}
		}
	}
}

// With Bernoulli loss (and the default jitter) the planes no longer
// share a trajectory: the fluid receipt rate is the expectation, the
// packet one a sample. Averaged over seeds they must agree within 10%.
func TestFluidConformanceUnderLoss(t *testing.T) {
	const seeds = 5
	const tol = 0.10
	for _, proto := range []coord.Protocol{coord.DCoP, coord.TCoP} {
		var pkSum, flSum float64
		for seed := int64(1); seed <= seeds; seed++ {
			cfg := fluidBaseConfig(40, 8, seed)
			cfg.Jitter = 0.05
			cfg.LossProb = 0.05
			pk, err := coord.Run(proto, cfg)
			if err != nil {
				t.Fatalf("%s packet run: %v", proto, err)
			}
			cfg.PlaneMode = coord.PlaneFluid
			fl, err := coord.Run(proto, cfg)
			if err != nil {
				t.Fatalf("%s fluid run: %v", proto, err)
			}
			pkSum += pk.ReceiptRate
			flSum += fl.ReceiptRate
		}
		pkMean, flMean := pkSum/seeds, flSum/seeds
		if pkMean == 0 {
			t.Fatalf("%s: packet plane measured no arrivals under loss", proto)
		}
		if rel := math.Abs(flMean-pkMean) / pkMean; rel > tol {
			t.Errorf("%s: mean ReceiptRate fluid %.4f vs packet %.4f (rel %.3f > %v)",
				proto, flMean, pkMean, rel, tol)
		}
	}
}

// A mid-run crash must thin the fluid arrival integral the same way the
// packet plane's dropped sends thin its window counts.
func TestFluidConformanceWithCrash(t *testing.T) {
	cfg := fluidBaseConfig(40, 8, 1)
	cfg.CrashPeers = []overlay.PeerID{3, 7}
	cfg.CrashAt = 40 // mid-window: flows are up, then two go dark
	pk, err := coord.Run(coord.DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PlaneMode = coord.PlaneFluid
	fl, err := coord.Run(coord.DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pk.ReceiptRate == 0 {
		t.Fatal("packet plane measured no arrivals; crash comparison is vacuous")
	}
	if rel := math.Abs(fl.ReceiptRate-pk.ReceiptRate) / pk.ReceiptRate; rel > receiptRateTol {
		t.Errorf("ReceiptRate with crash: fluid %.5f vs packet %.5f (rel %.4f)",
			fl.ReceiptRate, pk.ReceiptRate, rel)
	}
	// The crash must actually bite, or the test proves nothing.
	nocrash := fluidBaseConfig(40, 8, 1)
	nocrash.PlaneMode = coord.PlaneFluid
	whole, err := coord.Run(coord.DCoP, nocrash)
	if err != nil {
		t.Fatal(err)
	}
	if fl.ReceiptRate >= whole.ReceiptRate {
		t.Errorf("crashed run's rate %.5f not below un-crashed %.5f", fl.ReceiptRate, whole.ReceiptRate)
	}
}

// The fluid plane models flows, not packet identities; configurations
// that need per-packet state must be rejected up front.
func TestFluidRejectsPacketOnlyFeatures(t *testing.T) {
	base := func() coord.Config {
		cfg := fluidBaseConfig(10, 3, 1)
		cfg.PlaneMode = coord.PlaneFluid
		return cfg
	}
	cases := map[string]func(*coord.Config){
		"no data plane": func(c *coord.Config) { c.DataPlane = false },
		"no loop":       func(c *coord.Config) { c.Loop = false },
		"track":         func(c *coord.Config) { c.TrackDelivery = true },
		"playback":      func(c *coord.Config) { c.Playback = true },
		"repair":        func(c *coord.Config) { c.Repair = true },
		"leaf rate":     func(c *coord.Config) { c.LeafMaxRate = 1 },
		"burst":         func(c *coord.Config) { c.Burst = &coord.BurstParams{PGoodToBad: 0.1, PBadToGood: 0.5, LossBad: 0.9} },
	}
	for name, mutate := range cases {
		cfg := base()
		mutate(&cfg)
		if _, err := coord.Run(coord.DCoP, cfg); err == nil {
			t.Errorf("%s: fluid run accepted a packet-only feature", name)
		}
	}
	if _, err := coord.Run(coord.DCoP, base()); err != nil {
		t.Errorf("baseline fluid config must be accepted: %v", err)
	}
}
