// Package span is the runtime's causal tracing subsystem: every
// coordination unit the paper names — handshake rounds, confirmation
// retry waves, commit/absorb, hand-off, per-peer streaming, leaf
// recovery — can be recorded as a Span with a parent link, so a whole
// session unrolls into a tree ("which retry wave delayed this
// commit?") instead of a flat event log.
//
// The design mirrors internal/metrics:
//
//   - Disabled is free. A nil *Collector is the disabled collector:
//     NextID returns 0, Add does nothing, and every caller guards with
//     a single nil check — no allocation, no atomic, nothing on the
//     engine hot path.
//
//   - Reads are deterministic. Spans() returns spans sorted by
//     (Trace, ID, Peer); under the single-threaded DES driver span IDs
//     are allocated in event order, so a seeded simulation produces a
//     byte-identical trace at any experiment worker count (each run
//     gets its own collector, merged in grid order).
//
// Time is driver-defined: the simulator records virtual seconds, the
// live runtime records wall-clock seconds since the collector's epoch.
// Both export to the same two formats — span JSONL for tooling and
// Chrome trace-event JSON loadable in Perfetto (one track per peer).
package span

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one session (one coordination run): all spans of
// a run share it. Zero means "no trace".
type TraceID uint64

// SpanID identifies one span within its collector. Zero means "none":
// it is both the nil parent and the ID the nil collector hands out.
type SpanID uint64

// Context is the causal context carried alongside an event: the trace
// it belongs to and the span under which work triggered by the event
// should nest. It is a 16-byte value — embedding it in a message or
// passing it through a call chain never allocates.
type Context struct {
	Trace TraceID `json:"trace,omitempty"`
	Span  SpanID  `json:"span,omitempty"`
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Span is one recorded unit of work. Start and End are in the driver's
// clock domain (virtual seconds for the simulator, wall seconds since
// the collector epoch for the live runtime); instant spans have
// End == Start.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	// Name is the unit kind: "session", "handshake", "confirm_wave",
	// "commit", "absorb", "handoff", "activate", "select", "adopt",
	// "stream", "repair_wave", "stall", ...
	Name string `json:"name"`
	// Peer is the track the span belongs to: a peer index, or -1 for
	// the leaf/driver track.
	Peer  int     `json:"peer"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Detail is optional free-form context ("wave 2", "child 7", ...).
	Detail string `json:"detail,omitempty"`
}

// Duration returns End-Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// shardCount spreads concurrent Add calls (live runtime: many peer
// goroutines) over independent locks. Power of two for cheap masking.
const shardCount = 16

type shard struct {
	mu    sync.Mutex
	spans []Span
	_     [40]byte // keep shards on separate cache lines
}

// Collector accumulates spans in memory, lock-sharded so concurrent
// emitters rarely contend. A nil *Collector is the disabled collector;
// all methods are no-ops on it.
type Collector struct {
	ids    atomic.Uint64
	epoch  time.Time
	shards [shardCount]shard
}

// NewCollector returns an empty collector whose wall-clock epoch
// (see Now) is the moment of creation.
func NewCollector() *Collector {
	return &Collector{epoch: time.Now()}
}

// NextID allocates a fresh span ID, or 0 on a nil collector. IDs are
// dense and start at 1, so a single-threaded driver allocates them in
// event order and the resulting trace is reproducible.
func (c *Collector) NextID() SpanID {
	if c == nil {
		return 0
	}
	return SpanID(c.ids.Add(1))
}

// Add records a finished span. No-op on a nil collector or a span
// without a trace.
func (c *Collector) Add(s Span) {
	if c == nil || s.Trace == 0 {
		return
	}
	sh := &c.shards[uint64(s.ID)&(shardCount-1)]
	sh.mu.Lock()
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// Now returns wall-clock seconds since the collector epoch — the time
// base live drivers stamp spans with. 0 on a nil collector.
func (c *Collector) Now() float64 {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch).Seconds()
}

// Len returns the number of collected spans.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.spans)
		sh.mu.Unlock()
	}
	return n
}

// Spans returns a copy of every collected span, sorted by
// (Trace, ID, Peer) so equal collector states compare byte-equal.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	var out []Span
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans by (Trace, ID, Peer). Insertion via shards is
// unordered, so exports always sort first.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Peer < b.Peer
	})
}

// DeriveTrace maps a stable run label (e.g. "tcop/H=10/seed=3" or a
// live session ID) to a non-zero TraceID via FNV-1a, so traces are
// reproducible without a global ID allocator.
func DeriveTrace(label string) TraceID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return TraceID(h)
}
