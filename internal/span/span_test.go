package span

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilCollectorIsDisabled pins the disabled contract every driver
// relies on: a nil collector hands out span ID 0, accepts Add silently,
// and reports no spans.
func TestNilCollectorIsDisabled(t *testing.T) {
	var c *Collector
	if id := c.NextID(); id != 0 {
		t.Errorf("nil NextID = %d, want 0", id)
	}
	c.Add(Span{Trace: 1, ID: 1, Name: "x"}) // must not panic
	if got := c.Spans(); got != nil {
		t.Errorf("nil Spans = %v, want nil", got)
	}
	if c.Len() != 0 || c.Now() != 0 {
		t.Errorf("nil Len/Now = %d/%v, want 0/0", c.Len(), c.Now())
	}
}

// TestCollectorIDsAreDense pins that a single-threaded driver sees
// 1, 2, 3, ... — the property that makes seeded traces reproducible.
func TestCollectorIDsAreDense(t *testing.T) {
	c := NewCollector()
	for want := SpanID(1); want <= 100; want++ {
		if got := c.NextID(); got != want {
			t.Fatalf("NextID = %d, want %d", got, want)
		}
	}
}

// TestCollectorDropsTracelessSpans: Add without a trace is a no-op, so
// a driver can stamp spans unconditionally and let the zero context
// filter itself out.
func TestCollectorDropsTracelessSpans(t *testing.T) {
	c := NewCollector()
	c.Add(Span{ID: 1, Name: "orphan"})
	if c.Len() != 0 {
		t.Errorf("traceless span was collected")
	}
}

// TestCollectorConcurrentAddsSortedReads hammers the sharded collector
// from many goroutines and checks Spans() returns every span exactly
// once in (Trace, ID, Peer) order.
func TestCollectorConcurrentAddsSortedReads(t *testing.T) {
	c := NewCollector()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := c.NextID()
				c.Add(Span{Trace: TraceID(1 + w%2), ID: id, Peer: w, Name: "s"})
			}
		}(w)
	}
	wg.Wait()
	spans := c.Spans()
	if len(spans) != workers*per {
		t.Fatalf("len = %d, want %d", len(spans), workers*per)
	}
	seen := map[SpanID]bool{}
	for i, s := range spans {
		if seen[s.ID] {
			t.Fatalf("span ID %d collected twice", s.ID)
		}
		seen[s.ID] = true
		if i > 0 {
			prev := spans[i-1]
			if s.Trace < prev.Trace || (s.Trace == prev.Trace && s.ID < prev.ID) {
				t.Fatalf("spans out of order at %d: %+v after %+v", i, s, prev)
			}
		}
	}
}

// TestDeriveTrace pins determinism, non-zero-ness, and label
// sensitivity of the FNV trace derivation.
func TestDeriveTrace(t *testing.T) {
	if DeriveTrace("tcop/H=10/seed=3") != DeriveTrace("tcop/H=10/seed=3") {
		t.Error("DeriveTrace not deterministic")
	}
	if DeriveTrace("a") == DeriveTrace("b") {
		t.Error("distinct labels collided")
	}
	for _, label := range []string{"", "x", "tcop/H=2/seed=0"} {
		if DeriveTrace(label) == 0 {
			t.Errorf("DeriveTrace(%q) = 0; zero means no-trace", label)
		}
	}
}

// TestJSONLRoundTrip writes spans and reads them back unchanged,
// including blank-line tolerance.
func TestJSONLRoundTrip(t *testing.T) {
	in := []Span{
		{Trace: 7, ID: 1, Name: "session", Peer: -1, Start: 0, End: 2.5, Detail: "s1"},
		{Trace: 7, ID: 2, Parent: 1, Name: "handshake", Peer: 3, Start: 0.5, End: 1.25},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	withBlank := strings.Replace(buf.String(), "\n", "\n\n", 1)
	out, err := ReadJSONL(strings.NewReader(withBlank))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("span %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

// TestReadJSONLBadLine reports the failing line number.
func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"trace\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse failure", err)
	}
}

// TestPerfettoExport checks the trace-event output is valid JSON with
// one process per trace, a metadata track per (trace, peer), the leaf
// on tid 0, and instant spans floored to 1 µs so Perfetto shows them.
func TestPerfettoExport(t *testing.T) {
	spans := []Span{
		{Trace: 5, ID: 1, Name: "session", Peer: -1, Start: 0, End: 1},
		{Trace: 5, ID: 2, Parent: 1, Name: "commit", Peer: 2, Start: 0.5, End: 0.5},
		{Trace: 9, ID: 1, Name: "session", Peer: -1, Start: 0, End: 2},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("perfetto output is not a JSON array: %v", err)
	}
	procs := map[float64]bool{}
	var sawCommit, sawLeafTrack bool
	for _, e := range events {
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				procs[e["pid"].(float64)] = true
			}
			if e["name"] == "thread_name" && e["tid"].(float64) == 0 {
				sawLeafTrack = true
			}
		case "X":
			if e["name"] == "commit" {
				sawCommit = true
				if dur := e["dur"].(float64); dur < 1 {
					t.Errorf("instant span dur = %v µs, want >= 1", dur)
				}
				if tid := e["tid"].(float64); tid != 3 { // peer 2 -> tid 3
					t.Errorf("commit tid = %v, want 3", tid)
				}
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if len(procs) != 2 {
		t.Errorf("process_name metadata for %d traces, want 2", len(procs))
	}
	if !sawCommit || !sawLeafTrack {
		t.Errorf("missing events: commit=%v leafTrack=%v", sawCommit, sawLeafTrack)
	}
}

// TestSummarizeQuantiles pins the nearest-rank quantiles on a known
// duration set.
func TestSummarizeQuantiles(t *testing.T) {
	var spans []Span
	for i := 1; i <= 100; i++ {
		spans = append(spans, Span{
			Trace: 3, ID: SpanID(i), Name: "handshake",
			Start: 0, End: float64(i), // durations 1..100
		})
	}
	spans = append(spans, Span{Trace: 3, ID: 101, Name: "commit", Start: 1, End: 1})
	rows := Summarize(spans)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	// Sorted by name within the trace: commit first.
	if rows[0].Name != "commit" || rows[0].Count != 1 || rows[0].Max != 0 {
		t.Errorf("commit row = %+v", rows[0])
	}
	hs := rows[1]
	if hs.Name != "handshake" || hs.Count != 100 {
		t.Fatalf("handshake row = %+v", hs)
	}
	for _, q := range []struct {
		name string
		got  float64
		want float64
	}{{"p50", hs.P50, 50}, {"p95", hs.P95, 95}, {"p99", hs.P99, 99}, {"max", hs.Max, 100}} {
		if q.got != q.want {
			t.Errorf("%s = %v, want %v", q.name, q.got, q.want)
		}
	}
	var buf bytes.Buffer
	FprintSummary(&buf, rows)
	if !strings.Contains(buf.String(), "handshake") || !strings.Contains(buf.String(), fmt.Sprintf("%x", 3)) {
		t.Errorf("summary table missing rows:\n%s", buf.String())
	}
}
