package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteJSONL writes one JSON object per span. Callers pass the sorted
// output of Collector.Spans so the file is deterministic.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span JSONL stream written by WriteJSONL. Blank
// lines are skipped.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// perfettoEvent is one Chrome trace-event JSON object. Perfetto (and
// chrome://tracing) load arrays of these; "X" is a complete duration
// event, "M" is track metadata. Timestamps and durations are in
// microseconds.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto renders spans as Chrome trace-event JSON loadable in
// Perfetto: one process per trace (session), one thread track per
// peer (the leaf/driver track, Peer == -1, is shown as tid 0 and real
// peers as tid = peer+1 so every track ID is non-negative). Span times
// are scaled from seconds to microseconds; virtual and wall clocks
// render identically.
func WritePerfetto(w io.Writer, spans []Span) error {
	events := make([]perfettoEvent, 0, len(spans)+16)

	// Track metadata first: name every (trace, peer) pair that appears.
	type track struct {
		trace TraceID
		peer  int
	}
	seen := map[track]bool{}
	sorted := append([]Span(nil), spans...)
	sortSpans(sorted)
	for _, s := range sorted {
		t := track{s.Trace, s.Peer}
		if seen[t] {
			continue
		}
		seen[t] = true
		name := fmt.Sprintf("peer %d", s.Peer)
		if s.Peer < 0 {
			name = "leaf"
		}
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M",
			Pid: uint64(s.Trace), Tid: tid(s.Peer),
			Args: map[string]any{"name": name},
		})
	}
	tracesNamed := map[TraceID]bool{}
	for _, s := range sorted {
		if tracesNamed[s.Trace] {
			continue
		}
		tracesNamed[s.Trace] = true
		events = append(events, perfettoEvent{
			Name: "process_name", Ph: "M",
			Pid: uint64(s.Trace), Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("trace %x", uint64(s.Trace))},
		})
	}

	for _, s := range sorted {
		args := map[string]any{
			"trace": fmt.Sprintf("%x", uint64(s.Trace)),
			"id":    uint64(s.ID),
		}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		dur := (s.End - s.Start) * 1e6
		if dur < 1 {
			// Perfetto hides zero-width slices; floor at 1 µs so
			// instant spans (commit, absorb, handoff) stay visible.
			dur = 1
		}
		events = append(events, perfettoEvent{
			Name: s.Name, Ph: "X",
			Ts: s.Start * 1e6, Dur: dur,
			Pid: uint64(s.Trace), Tid: tid(s.Peer),
			Args: args,
		})
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i := range events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(&events[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// tid maps a span's peer index to a non-negative Perfetto thread ID.
func tid(peer int) int64 {
	if peer < 0 {
		return 0
	}
	return int64(peer) + 1
}

// SummaryRow aggregates the durations of one span name within one
// trace: count and latency quantiles, in the trace's clock units
// (virtual or wall seconds).
type SummaryRow struct {
	Trace TraceID `json:"trace"`
	Name  string  `json:"name"`
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summarize groups spans by (trace, name) and computes duration
// quantiles per group, sorted by (trace, name) for stable output.
func Summarize(spans []Span) []SummaryRow {
	type key struct {
		trace TraceID
		name  string
	}
	groups := map[key][]float64{}
	for _, s := range spans {
		k := key{s.Trace, s.Name}
		groups[k] = append(groups[k], s.Duration())
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].trace != keys[j].trace {
			return keys[i].trace < keys[j].trace
		}
		return keys[i].name < keys[j].name
	})
	rows := make([]SummaryRow, 0, len(keys))
	for _, k := range keys {
		ds := groups[k]
		sort.Float64s(ds)
		rows = append(rows, SummaryRow{
			Trace: k.trace, Name: k.name, Count: len(ds),
			P50: quantile(ds, 0.50),
			P95: quantile(ds, 0.95),
			P99: quantile(ds, 0.99),
			Max: ds[len(ds)-1],
		})
	}
	return rows
}

// quantile returns the q-quantile of sorted ds (nearest-rank).
func quantile(ds []float64, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(ds)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(ds) {
		i = len(ds) - 1
	}
	return ds[i]
}

// FprintSummary renders summary rows as an aligned text table.
func FprintSummary(w io.Writer, rows []SummaryRow) {
	fmt.Fprintf(w, "%-16s  %-14s  %7s  %12s  %12s  %12s  %12s\n",
		"trace", "span", "count", "p50", "p95", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16x  %-14s  %7d  %12.6f  %12.6f  %12.6f  %12.6f\n",
			uint64(r.Trace), r.Name, r.Count, r.P50, r.P95, r.P99, r.Max)
	}
}
