package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample not zero")
	}
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Known dataset: sample stddev = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if d := s.Stddev() - want; d > 1e-12 || d < -1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if s.Quantile(0.5) != 3 {
		t.Errorf("median = %v", s.Quantile(0.5))
	}
	if q := s.Quantile(0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if s.Quantile(-1) != 1 || s.Quantile(2) != 5 {
		t.Error("clamping failed")
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI of the mean should contain the true mean ~95% of the
	// time; check it is at least roughly calibrated.
	rng := rand.New(rand.NewSource(1))
	hits := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 30; j++ {
			s.Add(rng.NormFloat64()*2 + 10)
		}
		if math.Abs(s.Mean()-10) <= s.CI95() {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.88 || frac > 0.99 {
		t.Errorf("CI coverage %.3f, want ≈0.95", frac)
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Sample
	s.AddAll(1, 1, 1)
	if !strings.Contains(s.Summary(), "±") {
		t.Errorf("Summary = %q", s.Summary())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.99, -5, 100} {
		h.Add(x)
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d", h.Total())
	}
	// -5 clamps into bin 0; 100 into bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9, 9.99, and the clamped 100
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if f := h.Fraction(0); math.Abs(f-3.0/9.0) > 1e-12 {
		t.Errorf("Fraction(0) = %v", f)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestRateEstimator(t *testing.T) {
	r := NewRateEstimator(10)
	for i := 0; i < 20; i++ {
		r.Tick(float64(i))
	}
	// Events at t=10..19 fall in window (9, 19]: 10 events / 10 units.
	if rate := r.Rate(19); math.Abs(rate-1.0) > 0.11 {
		t.Errorf("rate = %v, want ≈1", rate)
	}
	// Long silence: rate decays to 0.
	if rate := r.Rate(100); rate != 0 {
		t.Errorf("stale rate = %v", rate)
	}
}

func TestRateEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewRateEstimator(0)
}

// Property: mean is within [min, max], stddev non-negative, quantiles
// monotone.
func TestSampleProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			// Exclude non-finite and astronomically large inputs whose
			// sums overflow float64 — out of scope for metric data.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				s.Add(x)
			}
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		if s.Stddev() < 0 {
			return false
		}
		return s.Quantile(0.25) <= s.Quantile(0.75)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
