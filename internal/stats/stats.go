// Package stats provides the summary statistics the experiment harness
// reports: means, standard deviations, confidence intervals, histograms
// and rate estimators. Stdlib-only, allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddAll records many observations.
func (s *Sample) AddAll(xs ...float64) { s.xs = append(s.xs, xs...) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var sum float64
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 for empty samples).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64{}, s.xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// using the normal approximation (adequate for the harness's ≥5 seeds).
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(n))
}

// Summary formats "mean ± ci95".
func (s *Sample) Summary() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean(), s.CI95())
}

// Histogram counts observations into fixed-width bins over [Lo, Hi);
// out-of-range observations land in the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v)/%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// RateEstimator measures an event rate over a sliding window of virtual
// or wall-clock time, used for instantaneous receipt-rate traces.
type RateEstimator struct {
	window float64
	times  []float64
}

// NewRateEstimator builds an estimator with the given window length.
func NewRateEstimator(window float64) *RateEstimator {
	if window <= 0 {
		panic(fmt.Sprintf("stats: window %v must be positive", window))
	}
	return &RateEstimator{window: window}
}

// Tick records an event at time t (non-decreasing).
func (r *RateEstimator) Tick(t float64) {
	r.times = append(r.times, t)
	r.trim(t)
}

// Rate returns events per unit time over the window ending at t.
func (r *RateEstimator) Rate(t float64) float64 {
	r.trim(t)
	return float64(len(r.times)) / r.window
}

func (r *RateEstimator) trim(t float64) {
	cut := t - r.window
	i := 0
	for i < len(r.times) && r.times[i] < cut {
		i++
	}
	if i > 0 {
		r.times = append(r.times[:0], r.times[i:]...)
	}
}
