package groupcomm

import (
	"math/rand"
	"testing"
)

func TestCausalDeliveryInOrder(t *testing.T) {
	var got []int
	p1 := NewProcess(1, 3, func(m Message) { got = append(got, m.Body.(int)) })
	p0 := NewProcess(0, 3, nil)

	m1 := p0.Send(10)
	m2 := p0.Send(20)
	// Deliver out of order: m2 must wait for m1.
	if err := p1.Receive(m2); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("m2 delivered before m1: %v", got)
	}
	if p1.Pending() != 1 {
		t.Errorf("pending = %d", p1.Pending())
	}
	if err := p1.Receive(m1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("delivery order = %v", got)
	}
	if p1.Pending() != 0 {
		t.Errorf("pending = %d after drain", p1.Pending())
	}
}

func TestCausalChainAcrossProcesses(t *testing.T) {
	// p0 sends a; p1 delivers a then sends b (b causally after a);
	// p2 receives b first and must delay it until a arrives.
	var p2got []string
	p0 := NewProcess(0, 3, nil)
	p1 := NewProcess(1, 3, nil)
	p2 := NewProcess(2, 3, func(m Message) { p2got = append(p2got, m.Body.(string)) })

	a := p0.Send("a")
	p1.Receive(a)
	b := p1.Send("b")

	p2.Receive(b)
	if len(p2got) != 0 {
		t.Fatalf("b delivered before its cause: %v", p2got)
	}
	p2.Receive(a)
	if len(p2got) != 2 || p2got[0] != "a" || p2got[1] != "b" {
		t.Errorf("order = %v", p2got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	n := 0
	p1 := NewProcess(1, 2, func(Message) { n++ })
	p0 := NewProcess(0, 2, nil)
	m := p0.Send(1)
	p1.Receive(m)
	p1.Receive(m)
	p1.Receive(m)
	if n != 1 {
		t.Errorf("delivered %d times", n)
	}
	if p1.Delivered() != 1 {
		t.Errorf("Delivered() = %d", p1.Delivered())
	}
}

func TestOwnEchoIgnored(t *testing.T) {
	n := 0
	p0 := NewProcess(0, 2, func(Message) { n++ })
	m := p0.Send(1)
	p0.Receive(m)
	if n != 0 {
		t.Error("own echo delivered")
	}
}

func TestMalformed(t *testing.T) {
	p := NewProcess(0, 2, nil)
	if err := p.Receive(Message{From: 5, Vector: []int{0, 0}}); err == nil {
		t.Error("bad origin accepted")
	}
	if err := p.Receive(Message{From: 1, Vector: []int{0}}); err == nil {
		t.Error("short vector accepted")
	}
}

func TestNewProcessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad id did not panic")
		}
	}()
	NewProcess(5, 3, nil)
}

// Property: under arbitrary per-receiver reordering, every process
// delivers every message exactly once and in an order consistent with
// causality (a message from j is delivered after all messages it
// causally depends on).
func TestCausalOrderPropertyUnderShuffling(t *testing.T) {
	const n = 4
	const perProc = 6
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		type rec struct {
			m Message
		}
		procs := make([]*Process, n)
		logs := make([][]Message, n)
		for i := 0; i < n; i++ {
			i := i
			procs[i] = NewProcess(i, n, func(m Message) { logs[i] = append(logs[i], m) })
		}
		// Generate interleaved sends; each process occasionally receives
		// some pending traffic first (building causal chains).
		var wire []rec
		queue := make([][]Message, n) // per receiver
		for round := 0; round < perProc; round++ {
			for i := 0; i < n; i++ {
				// Receive a random prefix of the queued traffic.
				rng.Shuffle(len(queue[i]), func(a, b int) { queue[i][a], queue[i][b] = queue[i][b], queue[i][a] })
				k := rng.Intn(len(queue[i]) + 1)
				for _, m := range queue[i][:k] {
					procs[i].Receive(m)
				}
				queue[i] = queue[i][k:]
				m := procs[i].Send([2]int{i, round})
				wire = append(wire, rec{m})
				for j := 0; j < n; j++ {
					if j != i {
						queue[j] = append(queue[j], m)
					}
				}
			}
		}
		// Flush the remainder in random order.
		for i := 0; i < n; i++ {
			rng.Shuffle(len(queue[i]), func(a, b int) { queue[i][a], queue[i][b] = queue[i][b], queue[i][a] })
			for _, m := range queue[i] {
				procs[i].Receive(m)
			}
		}
		for i := 0; i < n; i++ {
			want := (n - 1) * perProc
			if len(logs[i]) != want {
				t.Fatalf("seed %d: proc %d delivered %d of %d", seed, i, len(logs[i]), want)
			}
			// Causal consistency: for each delivered message, all its
			// causal predecessors (per vector) must already be delivered.
			seen := make([]int, n)
			for _, m := range logs[i] {
				for k := 0; k < n; k++ {
					if k == i {
						continue
					}
					limit := m.Vector[k]
					if k == m.From && seen[k]+1 != limit {
						t.Fatalf("seed %d: proc %d delivered %v out of FIFO order", seed, i, m)
					}
					if k != m.From && seen[k] < limit {
						t.Fatalf("seed %d: proc %d delivered %v before causal predecessor from %d", seed, i, m, k)
					}
				}
				seen[m.From] = m.Vector[m.From]
			}
		}
		_ = wire
	}
}

func TestHappensBeforeAndConcurrent(t *testing.T) {
	a := []int{1, 0, 0}
	b := []int{1, 1, 0}
	c := []int{0, 2, 0}
	if !HappensBefore(a, b) {
		t.Error("a < b expected")
	}
	if HappensBefore(b, a) {
		t.Error("b < a unexpected")
	}
	if !Concurrent(a, c) {
		t.Error("a || c expected")
	}
	if Concurrent(a, a) {
		t.Error("a || a unexpected")
	}
	if HappensBefore([]int{1}, []int{1, 2}) {
		t.Error("mismatched lengths compared")
	}
}

func BenchmarkCausalBroadcast(b *testing.B) {
	const n = 8
	procs := make([]*Process, n)
	for i := 0; i < n; i++ {
		procs[i] = NewProcess(i, n, func(Message) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := procs[i%n]
		m := src.Send(i)
		for j := 0; j < n; j++ {
			if j != src.ID() {
				procs[j].Receive(m)
			}
		}
	}
}
