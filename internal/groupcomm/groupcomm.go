// Package groupcomm implements a causally ordering broadcast protocol in
// the style of the paper's reference [10] (Nakamura & Takizawa, "Causally
// Ordering Broadcast Protocol", ICDCS-14). The asynchronous multi-source
// streaming (AMS) models [3–5] that precede DCoP/TCoP have every contents
// peer exchange state information with all the others "by using a simple
// type of group communication protocol" — this package is that substrate,
// and internal/coord's AMS baseline uses its ordering guarantees.
//
// Each process stamps broadcasts with a vector clock; receivers delay
// delivery until all causal predecessors have been delivered (the
// standard causal broadcast delivery condition: for a message m from j
// with vector V, deliver at i once V[j] = delivered_i[j]+1 and
// V[k] ≤ delivered_i[k] for all k ≠ j).
package groupcomm

import (
	"fmt"
)

// Message is a causally stamped broadcast.
type Message struct {
	// From is the sending process.
	From int
	// Vector is the sender's vector clock at send time (inclusive of
	// this message).
	Vector []int
	// Body is the application payload.
	Body any
}

// Process is one member of the causal broadcast group. Processes are not
// safe for concurrent use; drive each from one goroutine (or the DES).
type Process struct {
	id        int
	n         int
	vector    []int // messages delivered per origin (own sends count as delivered)
	pending   []Message
	deliver   func(Message)
	delivered int64
	sent      int64
}

// NewProcess creates group member id of n, delivering ordered messages to
// the given callback.
func NewProcess(id, n int, deliver func(Message)) *Process {
	if id < 0 || id >= n {
		panic(fmt.Sprintf("groupcomm: id %d outside 0..%d", id, n-1))
	}
	return &Process{id: id, n: n, vector: make([]int, n), deliver: deliver}
}

// ID returns the process id.
func (p *Process) ID() int { return p.id }

// Vector returns a copy of the current delivered-vector.
func (p *Process) Vector() []int {
	v := make([]int, p.n)
	copy(v, p.vector)
	return v
}

// Delivered returns how many messages have been delivered (excluding own
// sends).
func (p *Process) Delivered() int64 { return p.delivered }

// Pending returns how many received messages await causal predecessors.
func (p *Process) Pending() int { return len(p.pending) }

// Send stamps a broadcast of body and returns the message to disseminate
// to all other members. The sender delivers its own message immediately
// (FIFO self-delivery).
func (p *Process) Send(body any) Message {
	p.vector[p.id]++
	p.sent++
	v := make([]int, p.n)
	copy(v, p.vector)
	return Message{From: p.id, Vector: v, Body: body}
}

// Receive accepts a message from the network, delivering it and any
// unblocked pending messages in causal order.
func (p *Process) Receive(m Message) error {
	if m.From < 0 || m.From >= p.n || len(m.Vector) != p.n {
		return fmt.Errorf("groupcomm: malformed message from %d with vector len %d", m.From, len(m.Vector))
	}
	if m.From == p.id {
		return nil // own broadcast echoes are ignored
	}
	if p.obsolete(m) {
		return nil // duplicate: already delivered
	}
	p.pending = append(p.pending, m)
	p.drain()
	return nil
}

// obsolete reports whether m was already delivered.
func (p *Process) obsolete(m Message) bool {
	return m.Vector[m.From] <= p.vector[m.From]
}

// deliverable implements the causal delivery condition.
func (p *Process) deliverable(m Message) bool {
	for k := 0; k < p.n; k++ {
		if k == m.From {
			if m.Vector[k] != p.vector[k]+1 {
				return false
			}
		} else if m.Vector[k] > p.vector[k] {
			return false
		}
	}
	return true
}

// drain delivers every pending message whose predecessors have arrived.
func (p *Process) drain() {
	progress := true
	for progress {
		progress = false
		for i := 0; i < len(p.pending); i++ {
			m := p.pending[i]
			if p.obsolete(m) {
				p.pending = append(p.pending[:i], p.pending[i+1:]...)
				i--
				continue
			}
			if p.deliverable(m) {
				p.vector[m.From] = m.Vector[m.From]
				p.delivered++
				p.pending = append(p.pending[:i], p.pending[i+1:]...)
				if p.deliver != nil {
					p.deliver(m)
				}
				progress = true
				break // restart: delivery may unblock earlier entries
			}
		}
	}
}

// HappensBefore reports whether the event stamped a causally precedes b
// (a < b in vector-clock order: a ≤ b pointwise and a ≠ b).
func HappensBefore(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Concurrent reports whether two vector stamps are causally unrelated.
func Concurrent(a, b []int) bool {
	return !HappensBefore(a, b) && !HappensBefore(b, a) && !equal(a, b)
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
