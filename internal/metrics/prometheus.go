package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's current state in the
// Prometheus text exposition format (version 0.0.4): one # TYPE line
// per metric family, instruments in sorted (name, labels) order. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

// WritePrometheus renders a snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, s)
}

func writePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	lastType := ""
	typeLine := func(name, typ string) {
		if name != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
			lastType = name
		}
	}
	for _, c := range s.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, labelString(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, labelString(g.Labels, "", ""), formatValue(g.Value))
	}
	for _, h := range s.Histograms {
		typeLine(h.Name, "histogram")
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				h.Name, labelString(h.Labels, "le", formatBound(bk.UpperBound)), bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, labelString(h.Labels, "", ""), formatValue(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, labelString(h.Labels, "", ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...} (sorted by key, with an optional
// extra pair appended last), or "" when there are no labels at all.
func labelString(labels []Label, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	// %q escapes quotes, backslashes and newlines exactly as the
	// exposition format requires.
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(sorted) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
