package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
	// Same identity returns the same instrument.
	if r.Counter("reqs_total") != c {
		t.Error("re-registration returned a different counter")
	}
	// Different labels are a different instrument.
	if r.Counter("reqs_total", "peer", "a") == c {
		t.Error("labeled counter aliased the unlabeled one")
	}
	if r.Counter("reqs_total", "peer", "a") != r.Counter("reqs_total", "peer", "a") {
		t.Error("same labeled identity returned different counters")
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", b.String(), err)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("value = %v, want 1.5", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 16 {
		t.Errorf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	// Cumulative buckets: ≤1: 2 (0.5, 1), ≤2: 3, ≤5: 4, +Inf: 5.
	wantCounts := []int64{2, 3, 4, 5}
	if len(hv.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(hv.Buckets))
	}
	for i, b := range hv.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(hv.Buckets[3].UpperBound, 1) {
		t.Error("final bucket bound is not +Inf")
	}
}

func TestIdentityValidation(t *testing.T) {
	r := New()
	for name, fn := range map[string]func(){
		"empty name": func() { r.Counter("") },
		"odd labels": func() { r.Counter("x", "k") },
		"bad bounds": func() { r.Histogram("h", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Label values are part of the identity, not just the key set.
func TestLabelValueDistinguishesIdentity(t *testing.T) {
	r := New()
	a := r.Counter("c", "peer", "a")
	b := r.Counter("c", "peer", "b")
	if a == b {
		t.Fatal("distinct label values aliased")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 2 {
		t.Fatalf("counters = %d", len(snap.Counters))
	}
	if snap.Counters[0].Labels[0].Value != "a" || snap.Counters[0].Value != 1 {
		t.Errorf("snapshot[0] = %+v", snap.Counters[0])
	}
	if snap.Counters[1].Labels[0].Value != "b" || snap.Counters[1].Value != 0 {
		t.Errorf("snapshot[1] = %+v", snap.Counters[1])
	}
}

// Snapshots are deterministic: same operations, same snapshot — and
// JSON round-trips including the +Inf bucket bound.
func TestSnapshotDeterministicAndJSON(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b_total", "x", "1").Add(2)
		r.Counter("a_total").Inc()
		r.Gauge("g").Set(3.25)
		h := r.Histogram("h", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(100)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	// Sorted by name.
	if s1.Counters[0].Name != "a_total" || s1.Counters[1].Name != "b_total" {
		t.Errorf("counter order = %v, %v", s1.Counters[0].Name, s1.Counters[1].Name)
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	j2, _ := json.Marshal(s2)
	if string(j1) != string(j2) {
		t.Error("JSON renderings differ")
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, s1) {
		t.Errorf("JSON round-trip changed the snapshot:\n%+v\n%+v", back, s1)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("msgs_total", "transport", "tcp").Add(7)
	r.Counter("msgs_total", "transport", "mem").Add(3)
	r.Gauge("depth").Set(2)
	r.Histogram("lat_seconds", []float64{0.5}).Observe(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE msgs_total counter",
		`msgs_total{transport="mem"} 3`,
		`msgs_total{transport="tcp"} 7`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.25",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several label sets.
	if strings.Count(out, "# TYPE msgs_total") != 1 {
		t.Errorf("duplicated TYPE line:\n%s", out)
	}
}

// Concurrent lookups and updates are safe (run under -race) and lose
// no increments.
func TestConcurrentUse(t *testing.T) {
	r := New()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("h", []float64{1, 2, 4}).Observe(float64(i % 5))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*each {
		t.Errorf("counter = %d, want %d", got, goroutines*each)
	}
	if got := r.Gauge("depth").Value(); got != goroutines*each {
		t.Errorf("gauge = %v, want %d", got, goroutines*each)
	}
	if got := r.Histogram("h", nil).Count(); got != goroutines*each {
		t.Errorf("histogram count = %d, want %d", got, goroutines*each)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := New()
	r.Counter("up_total").Inc()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d (memstats missing)", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}
