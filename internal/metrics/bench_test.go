package metrics

import "testing"

// The contract the data plane relies on: an increment through a held
// handle is a single atomic op, and the disabled (nil) path is a single
// nil check — both allocation-free — so per-packet code can keep its
// metrics hooks unconditionally.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("pkts_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncLabeled(b *testing.B) {
	c := New().Counter("pkts_total", "peer", "cp0", "transport", "tcp")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("pkts_total") // nil
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := New().Gauge("depth")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("lat", []float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&7) * 0.05)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("lat", []float64{1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1)
	}
}

// Lookup cost, for code that cannot hold a handle. The labeled lookup
// allocates (it builds the identity key); hot paths should hold handles
// instead — this bench exists to keep that cost visible.
func BenchmarkRegistryLookup(b *testing.B) {
	r := New()
	r.Counter("pkts_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("pkts_total").Inc()
	}
}

func BenchmarkRegistryLookupLabeled(b *testing.B) {
	r := New()
	r.Counter("pkts_total", "peer", "cp0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("pkts_total", "peer", "cp0").Inc()
	}
}
