package metrics

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format. It works (serving an empty body)
// on a nil registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

// DebugHandler is one extra endpoint to mount on a DebugMux — the hook
// the live layer uses to add /debug/overlay and /debug/flight without
// the metrics package knowing about overlays or flight logs.
type DebugHandler struct {
	// Pattern is the mux pattern, e.g. "/debug/overlay".
	Pattern string
	Handler http.Handler
}

// DebugMux builds the live runtime's observability endpoint set:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness probe ("ok")
//	/debug/vars    expvar (cmdline, memstats, anything published)
//	/debug/pprof/  the standard pprof index, profiles and traces
//
// plus any extra handlers (the live layer mounts /debug/overlay and
// /debug/flight here). The mux is self-contained (nothing is registered
// on http.DefaultServeMux), so callers can serve it on a dedicated
// listener without inheriting global handlers.
func DebugMux(r *Registry, extras ...DebugHandler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extras {
		if e.Handler != nil {
			mux.Handle(e.Pattern, e.Handler)
		}
	}
	return mux
}
