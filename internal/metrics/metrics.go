// Package metrics is the runtime's zero-dependency observability
// registry: named counters, gauges and fixed-bucket histograms with
// optional label pairs, safe for concurrent use and cheap enough for
// data-plane hot paths.
//
// Two properties shape the design:
//
//   - Disabled is free. A nil *Registry hands out nil instruments, and
//     every instrument method is a no-op on a nil receiver — a single
//     predictable branch, no allocation — so packet-per-packet code can
//     keep its metrics hooks unconditionally.
//
//   - Reads are deterministic. Snapshot (and the Prometheus text
//     rendering derived from it) lists instruments in sorted
//     (name, labels) order, so the snapshot of a seeded simulation run
//     is itself reproducible and can be asserted byte-for-byte in tests.
//
// Instruments are identified by name plus an optional flat list of
// label key/value pairs; registering the same identity twice returns
// the same instrument, so independent components may share a counter
// (e.g. every TCP endpoint of a process aggregates into one
// "transport_messages_sent_total"). Look instruments up once and keep
// the handle: the lookup takes the registry lock, the handle is a bare
// atomic.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value pair attached to an instrument.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Registry holds named instruments. The zero value is not usable; call
// New. A nil *Registry is the disabled registry: every lookup returns a
// nil instrument whose methods do nothing.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// identity builds the canonical map key for name plus label pairs, and
// the parsed label list. Labels must come in key/value pairs.
func identity(name string, labels []string) (string, []Label) {
	if name == "" {
		panic("metrics: empty instrument name")
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %q", name, labels))
	}
	if len(labels) == 0 {
		return name, nil
	}
	ls := make([]Label, len(labels)/2)
	var b strings.Builder
	b.WriteString(name)
	for i := range ls {
		ls[i] = Label{Key: labels[2*i], Value: labels[2*i+1]}
		b.WriteByte(0xff)
		b.WriteString(ls[i].Key)
		b.WriteByte(0xfe)
		b.WriteString(ls[i].Value)
	}
	return b.String(), ls
}

// Counter returns (registering on first use) the monotonically
// increasing counter with the given name and label pairs. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key, ls := identity(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	r.counters[key] = c
	return c
}

// Gauge returns (registering on first use) the gauge with the given
// name and label pairs. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key, ls := identity(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	r.gauges[key] = g
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket upper bounds (ascending; an implicit +Inf bucket is
// appended) and label pairs. Re-registering an existing identity returns
// the existing histogram and ignores the bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bucket bounds %v not ascending", name, bounds))
		}
	}
	key, ls := identity(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[key]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		labels: ls,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[key] = h
	return h
}

// ---- instruments ---------------------------------------------------------

// Counter is a monotonically increasing int64. All methods are no-ops
// on a nil receiver.
type Counter struct {
	v      atomic.Int64
	name   string
	labels []Label
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. All methods are no-ops on a
// nil receiver.
type Gauge struct {
	bits   atomic.Uint64 // float64 bits
	name   string
	labels []Label
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative on
// export, like Prometheus). All methods are no-ops on a nil receiver.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ---- snapshot ------------------------------------------------------------

// CounterValue is one counter's state in a Snapshot.
type CounterValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeValue is one gauge's state in a Snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Bucket is one cumulative histogram bucket: the count of observations
// ≤ UpperBound. It marshals the bound as a string ("+Inf" for the final
// bucket) because encoding/json rejects infinite floats.
type Bucket struct {
	UpperBound float64
	Count      int64
}

// MarshalJSON renders {"le":"<bound>","count":n} with the bound in
// Prometheus string form.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatBound(b.UpperBound), b.Count)), nil
}

// UnmarshalJSON parses the string-bound form written by MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("metrics: bad bucket bound %q: %w", raw.LE, err)
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	return nil
}

// formatBound renders a bucket bound the way Prometheus does.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramValue is one histogram's state in a Snapshot. Buckets are
// cumulative; the final bucket's bound is +Inf and its count equals
// Count.
type HistogramValue struct {
	Name    string   `json:"name"`
	Labels  []Label  `json:"labels,omitempty"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by
// (name, labels) so equal registry states produce equal snapshots.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// labelsLess orders two label lists lexicographically.
func labelsLess(a, b []Label) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Key != b[i].Key {
			return a[i].Key < b[i].Key
		}
		if a[i].Value != b[i].Value {
			return a[i].Value < b[i].Value
		}
	}
	return len(a) < len(b)
}

// Snapshot copies the registry's current state. A nil registry yields a
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return labelsLess(s.Counters[i].Labels, s.Counters[j].Labels)
	})
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return labelsLess(s.Gauges[i].Labels, s.Gauges[j].Labels)
	})
	for _, h := range hists {
		hv := HistogramValue{Name: h.name, Labels: h.labels, Count: h.Count(), Sum: h.Sum()}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			bound := math.Inf(1)
			if i < len(h.bounds) {
				bound = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, Bucket{UpperBound: bound, Count: cum})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return labelsLess(s.Histograms[i].Labels, s.Histograms[j].Labels)
	})
	return s
}
