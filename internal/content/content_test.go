package content

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"p2pmss/internal/parity"
	"p2pmss/internal/seq"
)

func TestContentPacketization(t *testing.T) {
	data := []byte("hello, multi-source streaming world")
	c := New("movie", data, 8)
	if c.ID() != "movie" || c.Size() != len(data) || c.PacketSize() != 8 {
		t.Errorf("basic accessors wrong: %v %v %v", c.ID(), c.Size(), c.PacketSize())
	}
	want := int64((len(data) + 7) / 8)
	if c.NumPackets() != want {
		t.Errorf("NumPackets = %d, want %d", c.NumPackets(), want)
	}
	p1 := c.Packet(1)
	if !bytes.Equal(p1.Payload, data[:8]) {
		t.Errorf("packet 1 payload = %q", p1.Payload)
	}
	last := c.Packet(c.NumPackets())
	if len(last.Payload) != len(data)%8 && len(data)%8 != 0 {
		t.Errorf("last payload len = %d", len(last.Payload))
	}
	s := c.Sequence()
	if int64(len(s)) != c.NumPackets() {
		t.Errorf("sequence len = %d", len(s))
	}
}

func TestContentDefaultID(t *testing.T) {
	a := New("", []byte("abc"), 4)
	b := New("", []byte("abc"), 4)
	if a.ID() == "" || a.ID() != b.ID() {
		t.Errorf("digest IDs: %q vs %q", a.ID(), b.ID())
	}
	if New("", []byte("abd"), 4).ID() == a.ID() {
		t.Error("different data same ID")
	}
}

func TestContentPanics(t *testing.T) {
	c := New("x", []byte("abcd"), 2)
	for name, fn := range map[string]func(){
		"zero packet size": func() { New("x", nil, 0) },
		"packet 0":         func() { c.Packet(0) },
		"packet beyond":    func() { c.Packet(3) },
		"assembler size":   func() { NewAssembler(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAssemblerRoundTrip(t *testing.T) {
	data := make([]byte, 999)
	rand.New(rand.NewSource(1)).Read(data)
	c := New("m", data, 16)
	a := NewAssembler(len(data), 16)
	if a.Complete() {
		t.Error("empty assembler complete")
	}
	for _, p := range c.Sequence() {
		a.Add(p)
	}
	got, ok := a.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: ok=%v", ok)
	}
	if len(a.Missing()) != 0 {
		t.Errorf("Missing = %v", a.Missing())
	}
}

func TestAssemblerWithParityLoss(t *testing.T) {
	data := make([]byte, 640)
	rand.New(rand.NewSource(2)).Read(data)
	c := New("m", data, 32)
	enh := parity.Enhance(c.Sequence(), 3)
	a := NewAssembler(len(data), 32)
	// Drop one packet per enhanced segment.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < len(enh); i += 4 {
		end := i + 4
		if end > len(enh) {
			end = len(enh)
		}
		drop := i + rng.Intn(end-i)
		for j := i; j < end; j++ {
			if j != drop {
				a.Add(enh[j])
			}
		}
	}
	got, ok := a.Bytes()
	if !ok {
		t.Fatalf("incomplete: missing %v", a.Missing())
	}
	if !bytes.Equal(got, data) {
		t.Error("recovered bytes differ")
	}
	if a.Recovered() == 0 {
		t.Error("no recovery happened")
	}
}

func TestAssemblerIncomplete(t *testing.T) {
	c := New("m", []byte("0123456789"), 2)
	a := NewAssembler(10, 2)
	a.Add(c.Packet(1))
	a.Add(c.Packet(3))
	if a.Complete() {
		t.Error("complete with gaps")
	}
	if _, ok := a.Bytes(); ok {
		t.Error("Bytes ok with gaps")
	}
	if a.Have() != 2 {
		t.Errorf("Have = %d", a.Have())
	}
	miss := a.Missing()
	if len(miss) != 3 || miss[0] != 2 {
		t.Errorf("Missing = %v", miss)
	}
}

func TestMaterializeMatchesDirectComputation(t *testing.T) {
	root := seq.Range(1, 120)
	// Level 1: leaf division — Div(Esq(pkt, 3), 4, 1).
	lvl1 := content1(root)
	got := Materialize(root, []DivStep{{Mark: 0, Interval: 3, Parts: 4, Index: 1}})
	if !seq.Equal(got, lvl1) {
		t.Fatalf("level 1 mismatch:\n got %v\nwant %v", got, lvl1)
	}
	// Level 2: child of that peer — mark 5, interval 2, 3 parts, index 2.
	tail := parity.Enhance(lvl1[5:].Clone(), 2)
	want := seq.Div(tail, 3, 2)
	got = Materialize(root, []DivStep{
		{Mark: 0, Interval: 3, Parts: 4, Index: 1},
		{Mark: 5, Interval: 2, Parts: 3, Index: 2},
	})
	if !seq.Equal(got, want) {
		t.Fatalf("level 2 mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestMaterializeEdgeCases(t *testing.T) {
	root := seq.Range(1, 10)
	// Mark beyond the end yields an empty subsequence.
	got := Materialize(root, []DivStep{{Mark: 99, Interval: 2, Parts: 2, Index: 0}})
	if len(got) != 0 {
		t.Errorf("mark past end: %v", got)
	}
	// Interval 0: plain division.
	got = Materialize(root, []DivStep{{Mark: 0, Interval: 0, Parts: 2, Index: 0}})
	if got.CountParity() != 0 || got.CountData() != 5 {
		t.Errorf("plain division: %v", got)
	}
	// Negative mark clamps to 0.
	got = Materialize(root, []DivStep{{Mark: -3, Interval: 0, Parts: 1, Index: 0}})
	if !seq.Equal(got, root) {
		t.Errorf("negative mark: %v", got)
	}
}

func TestMaterializeBadStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad step did not panic")
		}
	}()
	Materialize(seq.Range(1, 5), []DivStep{{Parts: 2, Index: 5}})
}

func content1(root seq.Sequence) seq.Sequence {
	return seq.Div(parity.Enhance(root, 3), 4, 1)
}

// Property: sibling derivations partition the parent's enhanced tail —
// materializing every index of a step covers each packet exactly once.
func TestMaterializeSiblingPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := seq.Range(1, int64(rng.Intn(80)+20))
		mark := rng.Intn(10)
		h := rng.Intn(4) + 1
		parts := rng.Intn(4) + 2
		var union seq.Sequence
		for i := 0; i < parts; i++ {
			s := Materialize(root, []DivStep{{Mark: mark, Interval: h, Parts: parts, Index: i}})
			if len(seq.Intersect(union, s)) != 0 {
				return false
			}
			union = seq.Union(union, s)
		}
		want := parity.Enhance(root[mark:].Clone(), h)
		return len(union) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
