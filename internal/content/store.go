package content

import (
	"fmt"
	"sort"
	"sync"
)

// Store is a contents peer's catalog: the multimedia contents it can
// serve, keyed by content ID. The MSS model's premise is that contents
// are "distributed to peers in various ways like downloading and caching"
// (§2) — a peer may hold many contents and serve any of them. Store is
// safe for concurrent use (the live runtime reads it from several
// goroutines).
type Store struct {
	mu   sync.RWMutex
	byID map[string]*Content
}

// NewStore returns an empty catalog.
func NewStore() *Store {
	return &Store{byID: make(map[string]*Content)}
}

// Put adds (or replaces) a content.
func (s *Store) Put(c *Content) {
	if c == nil {
		panic("content: Put(nil)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[c.ID()] = c
}

// Get returns the content with the given ID.
func (s *Store) Get(id string) (*Content, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.byID[id]
	return c, ok
}

// MustGet returns the content or an error naming the missing ID.
func (s *Store) MustGet(id string) (*Content, error) {
	if c, ok := s.Get(id); ok {
		return c, nil
	}
	return nil, fmt.Errorf("content: %q not in store", id)
}

// Remove deletes a content from the catalog.
func (s *Store) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byID, id)
}

// IDs lists the held content IDs in sorted order.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byID))
	for id := range s.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of held contents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}
