// Package content maps multimedia content bytes to and from the packet
// model of §2: a content is decomposed into a sequence of fixed-size
// packets t_1 … t_l, and an Assembler reconstructs the original bytes at
// the leaf peer from (possibly reordered, duplicated, parity-recovered)
// packet arrivals.
package content

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"p2pmss/internal/parity"
	"p2pmss/internal/seq"
)

// Content is a multimedia content held by a contents peer.
type Content struct {
	id         string
	data       []byte
	packetSize int
}

// New wraps data as a content with the given packet size. The ID defaults
// to a digest of the data when empty.
func New(id string, data []byte, packetSize int) *Content {
	if packetSize <= 0 {
		panic(fmt.Sprintf("content: packet size %d must be positive", packetSize))
	}
	if id == "" {
		sum := sha256.Sum256(data)
		id = hex.EncodeToString(sum[:8])
	}
	return &Content{id: id, data: data, packetSize: packetSize}
}

// ID returns the content identifier.
func (c *Content) ID() string { return c.id }

// Size returns the content length in bytes.
func (c *Content) Size() int { return len(c.data) }

// PacketSize returns the packet payload size in bytes.
func (c *Content) PacketSize() int { return c.packetSize }

// NumPackets returns l, the number of packets in the sequence.
func (c *Content) NumPackets() int64 {
	if len(c.data) == 0 {
		return 0
	}
	return int64((len(c.data) + c.packetSize - 1) / c.packetSize)
}

// Packet returns data packet t_k (1-based) with its payload slice.
func (c *Content) Packet(k int64) seq.Packet {
	if k < 1 || k > c.NumPackets() {
		panic(fmt.Sprintf("content: packet %d outside 1..%d", k, c.NumPackets()))
	}
	lo := int(k-1) * c.packetSize
	hi := lo + c.packetSize
	if hi > len(c.data) {
		hi = len(c.data)
	}
	return seq.NewDataPayload(k, c.data[lo:hi])
}

// Sequence returns the full payload-backed packet sequence ⟨t_1 … t_l⟩.
func (c *Content) Sequence() seq.Sequence {
	l := c.NumPackets()
	s := make(seq.Sequence, 0, l)
	for k := int64(1); k <= l; k++ {
		s = append(s, c.Packet(k))
	}
	return s
}

// Assembler reconstructs content bytes at a leaf peer. Feed it every
// received packet (data or parity, any order, duplicates fine); parity
// recovery runs automatically.
type Assembler struct {
	size       int // total bytes
	packetSize int
	numPackets int64
	recov      *parity.Recoverer
	// have counts the distinct in-range data packets present, maintained
	// incrementally from the recoverer's data hook. The leaf consults
	// Have around every arrival; a per-arrival scan of all l packets
	// made delivery O(l²) and fell behind the τ(h+1)/h receipt rate on
	// large contents.
	have int64
}

// NewAssembler prepares reassembly of a content with the given byte size
// and packet size.
func NewAssembler(size, packetSize int) *Assembler {
	if packetSize <= 0 {
		panic(fmt.Sprintf("content: packet size %d must be positive", packetSize))
	}
	n := int64(0)
	if size > 0 {
		n = int64((size + packetSize - 1) / packetSize)
	}
	a := &Assembler{size: size, packetSize: packetSize, numPackets: n, recov: parity.NewRecoverer()}
	a.recov.OnData(func(k int64) {
		// The hook fires once per index; out-of-range indices (a peer
		// serving a different content) must not count toward completion.
		if k >= 1 && k <= a.numPackets {
			a.have++
		}
	})
	return a
}

// Add feeds one received packet.
func (a *Assembler) Add(p seq.Packet) { a.recov.Add(p) }

// Have returns how many of the content's data packets are present
// (received or recovered). O(1): maintained incrementally as packets
// arrive or are derived.
func (a *Assembler) Have() int64 { return a.have }

// Missing lists the content indices still absent.
func (a *Assembler) Missing() []int64 {
	var out []int64
	for k := int64(1); k <= a.numPackets; k++ {
		if !a.recov.HasData(k) {
			out = append(out, k)
		}
	}
	return out
}

// Complete reports whether every data packet is present.
func (a *Assembler) Complete() bool { return a.Have() == a.numPackets }

// Recovered returns how many packets parity recovery derived.
func (a *Assembler) Recovered() int { return a.recov.Recovered() }

// Bytes reconstructs the content. ok is false while packets are missing.
func (a *Assembler) Bytes() (data []byte, ok bool) {
	if !a.Complete() {
		return nil, false
	}
	out := make([]byte, 0, a.size)
	for k := int64(1); k <= a.numPackets; k++ {
		b, _ := a.recov.DataPayload(k)
		out = append(out, b...)
	}
	if len(out) < a.size {
		return nil, false // truncated payloads (corrupt stream)
	}
	return out[:a.size], true
}

// Materialize computes the packet subsequence a peer must transmit from
// the root content sequence and a derivation path — the chain of
// (mark, enhance, divide) steps applied by successive coordination levels
// (§3.3/§3.4). Parent and child compute identical subsequences from the
// same derivation, which is what the live runtime ships in control
// packets instead of whole sequences.
func Materialize(root seq.Sequence, steps []DivStep) seq.Sequence {
	s := root
	for _, st := range steps {
		mark := st.Mark
		if mark > len(s) {
			mark = len(s)
		}
		if mark < 0 {
			mark = 0
		}
		tail := s[mark:]
		if st.Interval > 0 {
			tail = parity.Enhance(tail, st.Interval)
		} else {
			tail = tail.Clone()
		}
		if st.Parts <= 0 || st.Index < 0 || st.Index >= st.Parts {
			panic(fmt.Sprintf("content: bad derivation step %+v", st))
		}
		s = seq.Div(tail, st.Parts, st.Index)
	}
	return s
}

// DivStep is one level of a derivation: start at the Mark-th packet of
// the parent subsequence, enhance with parity interval Interval (0 = no
// enhancement), divide into Parts subsequences and take the Index-th.
type DivStep struct {
	Mark     int `json:"mark"`
	Interval int `json:"interval"`
	Parts    int `json:"parts"`
	Index    int `json:"index"`
}
