package content

import (
	"sync"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Error("fresh store not empty")
	}
	a := New("alpha", []byte("aaaa"), 2)
	b := New("beta", []byte("bbbb"), 2)
	s.Put(a)
	s.Put(b)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	got, ok := s.Get("alpha")
	if !ok || got != a {
		t.Error("Get(alpha) failed")
	}
	if _, ok := s.Get("gamma"); ok {
		t.Error("Get(gamma) found")
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Errorf("IDs = %v", ids)
	}
	if _, err := s.MustGet("gamma"); err == nil {
		t.Error("MustGet(gamma) succeeded")
	}
	if c, err := s.MustGet("beta"); err != nil || c != b {
		t.Error("MustGet(beta) failed")
	}
	s.Remove("alpha")
	if s.Len() != 1 {
		t.Error("Remove failed")
	}
	// Replacing by same ID.
	b2 := New("beta", []byte("BBBB"), 2)
	s.Put(b2)
	if got, _ := s.Get("beta"); got != b2 {
		t.Error("Put did not replace")
	}
}

func TestStorePutNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Put(nil) did not panic")
		}
	}()
	NewStore().Put(nil)
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := New("", []byte{byte(g), byte(i)}, 1)
				s.Put(c)
				s.Get(c.ID())
				s.IDs()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("store empty after concurrent puts")
	}
}
