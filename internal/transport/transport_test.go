package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type inbox struct {
	mu   sync.Mutex
	msgs []Msg
}

func (b *inbox) handler() Handler {
	return func(m Msg) {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.msgs = append(b.msgs, m)
	}
}

func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.msgs)
}

func (b *inbox) first() Msg {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.msgs[0]
}

func TestEncodeDecode(t *testing.T) {
	type body struct {
		X int      `json:"x"`
		S []string `json:"s"`
	}
	m, err := Encode("control", "a", body{X: 7, S: []string{"p", "q"}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "control" || m.From != "a" {
		t.Errorf("header = %+v", m)
	}
	var got body
	if err := m.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.X != 7 || len(got.S) != 2 {
		t.Errorf("body = %+v", got)
	}
	if err := m.Decode(&[]int{}); err == nil {
		t.Error("mismatched decode succeeded")
	}
}

func TestFabricDelivery(t *testing.T) {
	f := NewFabric()
	var b inbox
	f.Endpoint("bob", b.handler())
	a := f.Endpoint("alice", func(Msg) {})
	m, _ := Encode("hello", "alice", map[string]int{"v": 1})
	if err := a.Send("bob", m); err != nil {
		t.Fatal(err)
	}
	f.Wait()
	if b.len() != 1 || b.first().Type != "hello" {
		t.Fatalf("inbox = %+v", b.msgs)
	}
}

func TestFabricUnknownEndpoint(t *testing.T) {
	f := NewFabric()
	a := f.Endpoint("a", func(Msg) {})
	if err := a.Send("ghost", Msg{}); err == nil {
		t.Error("send to unknown endpoint succeeded")
	}
}

func TestFabricClose(t *testing.T) {
	f := NewFabric()
	var b inbox
	ep := f.Endpoint("b", b.handler())
	a := f.Endpoint("a", func(Msg) {})
	ep.Close()
	if err := a.Send("b", Msg{Type: "x"}); err == nil {
		t.Error("send to closed endpoint succeeded")
	}
	f.Wait()
	if b.len() != 0 {
		t.Error("closed endpoint received")
	}
}

func TestFabricDrop(t *testing.T) {
	f := NewFabric()
	var n atomic.Int32
	f.Drop = func(from, to string) bool { n.Add(1); return n.Load()%2 == 1 }
	var b inbox
	f.Endpoint("b", b.handler())
	a := f.Endpoint("a", func(Msg) {})
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Msg{Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	f.Wait()
	if b.len() != 5 {
		t.Errorf("delivered %d of 10 with 50%% drop", b.len())
	}
}

func TestFabricLatency(t *testing.T) {
	f := NewFabric()
	f.Latency = 30 * time.Millisecond
	var b inbox
	f.Endpoint("b", b.handler())
	a := f.Endpoint("a", func(Msg) {})
	start := time.Now()
	a.Send("b", Msg{Type: "x"})
	f.Wait()
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= latency", d)
	}
	if b.len() != 1 {
		t.Error("not delivered")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var b inbox
	srv, err := ListenTCP("127.0.0.1:0", b.handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenTCP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	m, _ := Encode("data", cli.Name(), map[string]string{"k": "t1"})
	for i := 0; i < 50; i++ {
		if err := cli.Send(srv.Name(), m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for b.len() < 50 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.len() != 50 {
		t.Fatalf("received %d of 50", b.len())
	}
	if b.first().From != cli.Name() {
		t.Errorf("from = %q", b.first().From)
	}
}

func TestTCPBidirectional(t *testing.T) {
	var ab, bb inbox
	a, err := ListenTCP("127.0.0.1:0", ab.handler())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", bb.handler())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Send(b.Name(), Msg{Type: "ping", From: a.Name()})
	deadline := time.Now().Add(2 * time.Second)
	for bb.len() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if bb.len() == 0 {
		t.Fatal("ping not received")
	}
	b.Send(a.Name(), Msg{Type: "pong", From: b.Name()})
	for ab.len() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if ab.len() == 0 || ab.first().Type != "pong" {
		t.Fatal("pong not received")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	e, err := ListenTCP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := e.Send("127.0.0.1:1", Msg{}); err == nil {
		t.Error("send after close succeeded")
	}
	if err := e.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	e, err := ListenTCP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Port 1 should refuse immediately.
	if err := e.Send("127.0.0.1:1", Msg{Type: "x"}); err == nil {
		t.Error("dial to dead port succeeded")
	}
}
