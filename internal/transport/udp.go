package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"p2pmss/internal/metrics"
)

// ---- UDP fabric -----------------------------------------------------------

// udpMagic prefixes every datagram so stray traffic arriving on the port
// is rejected before JSON decoding.
var udpMagic = [4]byte{'p', '2', 'p', '1'}

// MaxDatagram bounds one encoded message to the IPv4 UDP payload ceiling.
// Unlike TCP frames there is no streaming escape hatch: a message that
// does not fit in one datagram cannot be sent. At the packet sizes the
// streaming layer uses (content packets of a few KiB, JSON-inflated)
// this leaves ample headroom.
const MaxDatagram = 65507

// UDPEndpoint is an endpoint bound to a UDP socket; peers are addressed
// by host:port. Every Msg is one self-contained datagram (magic prefix +
// JSON), so the codec survives loss, duplication, and reordering by
// construction — each datagram decodes independently or is discarded.
//
// UDP gives true datagram semantics: a Send whose datagram is lost —
// whether in flight or at the local socket — returns nil. The engine's
// SendFailed event therefore never fires on this transport; §3.4/§3.5
// coordination must rely on its timer deadlines, and the data plane on
// §3.2 parity recovery.
type UDPEndpoint struct {
	name string
	conn *net.UDPConn
	h    Handler

	mu     sync.Mutex
	addrs  map[string]*net.UDPAddr // resolved peer addresses
	impair *Impairer
	closed bool
	wg     sync.WaitGroup
	met    fabricMetrics
	// reg is retained from Instrument so an impairment installed later
	// gets its verdict counters on the same registry.
	reg *metrics.Registry
}

// ListenUDP binds an endpoint to addr (e.g. "127.0.0.1:0"); its Name is
// the bound address.
func ListenUDP(addr string, h Handler) (*UDPEndpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	// Large kernel buffers absorb the bursts a τ(h+1)/h fan-in produces;
	// best effort — an unadjustable buffer just means more genuine loss,
	// which the parity scheme exists to cover.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	e := &UDPEndpoint{
		name:  conn.LocalAddr().String(),
		conn:  conn,
		h:     h,
		addrs: make(map[string]*net.UDPAddr),
	}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

func (e *UDPEndpoint) Name() string { return e.name }

// Instrument registers the endpoint's traffic counters on reg. All UDP
// endpoints instrumented on the same registry aggregate into shared
// transport_*{transport="udp"} series. Call before traffic starts.
func (e *UDPEndpoint) Instrument(reg *metrics.Registry) {
	e.mu.Lock()
	e.met = newTransportMetrics(reg, "udp")
	e.reg = reg
	imp := e.impair
	e.mu.Unlock()
	imp.Instrument(reg, "udp")
}

// SetImpairment installs a seeded Impairment policy on the endpoint's
// outbound sends, for rehearsing loss/reorder/duplication scenarios over
// real sockets. Call before traffic starts; a policy with nothing
// enabled clears it. Held (reordered) messages are released either by
// later traffic on their link or by the policy's MaxHold timer — set
// MaxHold on UDP so a quiet link cannot strand them forever.
func (e *UDPEndpoint) SetImpairment(cfg Impairment) *Impairer {
	e.mu.Lock()
	if !cfg.Enabled() {
		e.impair = nil
		e.mu.Unlock()
		return nil
	}
	imp := NewImpairer(cfg, func(to string, m Msg) {
		e.mu.Lock()
		ua := e.addrs[to]
		closed := e.closed
		met := e.met
		e.mu.Unlock()
		if closed || ua == nil {
			return
		}
		_ = e.write(ua, m, met)
	})
	e.impair = imp
	reg := e.reg
	e.mu.Unlock()
	imp.Instrument(reg, "udp")
	return imp
}

// Send encodes m as one datagram and fires it at the named address. Only
// local, permanent failures (unresolvable address, oversize message)
// return an error; a datagram the socket accepted may still be lost
// anywhere downstream with no signal, and one the socket rejected is
// counted as dropped and reported as success — to the protocol the two
// are indistinguishable.
func (e *UDPEndpoint) Send(to string, m Msg) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("transport: endpoint closed")
	}
	ua, ok := e.addrs[to]
	imp := e.impair
	met := e.met
	e.mu.Unlock()
	if !ok {
		ra, err := net.ResolveUDPAddr("udp", to)
		if err != nil {
			return fmt.Errorf("transport: resolve %s: %w", to, err)
		}
		e.mu.Lock()
		e.addrs[to] = ra
		e.mu.Unlock()
		ua = ra
	}
	if imp != nil {
		due, dropped := imp.Admit(e.name, to, m)
		if dropped {
			met.dropped.Inc()
		}
		var firstErr error
		for _, dm := range due {
			if err := e.write(ua, dm, met); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return e.write(ua, m, met)
}

// write puts one encoded datagram on the wire.
func (e *UDPEndpoint) write(ua *net.UDPAddr, m Msg, met fabricMetrics) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: encode datagram: %w", err)
	}
	if len(udpMagic)+len(b) > MaxDatagram {
		return fmt.Errorf("transport: datagram of %d bytes exceeds %d", len(udpMagic)+len(b), MaxDatagram)
	}
	pkt := make([]byte, 0, len(udpMagic)+len(b))
	pkt = append(pkt, udpMagic[:]...)
	pkt = append(pkt, b...)
	if _, err := e.conn.WriteToUDP(pkt, ua); err != nil {
		met.dropped.Inc()
		return nil // lost locally ≈ lost in flight; datagrams don't report
	}
	met.msgs.Inc()
	met.bytes.Add(int64(len(pkt)))
	return nil
}

// readLoop decodes datagrams and hands them to the handler. Anything
// that is not a well-formed magic-prefixed message — foreign traffic,
// truncation, corruption — is silently discarded, exactly as a lossy
// network would have discarded it.
func (e *UDPEndpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, MaxDatagram+1)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < len(udpMagic) || !bytes.Equal(buf[:len(udpMagic)], udpMagic[:]) {
			continue
		}
		var m Msg
		if json.Unmarshal(buf[len(udpMagic):n], &m) != nil {
			continue
		}
		e.mu.Lock()
		closed := e.closed
		met := e.met
		e.mu.Unlock()
		if closed {
			return
		}
		met.received.Inc()
		e.h(m)
	}
}

// Close shuts the socket; the endpoint stops receiving.
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}
