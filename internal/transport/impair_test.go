package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// script runs n messages through a fresh impairer on link a→b and
// returns the verdict trace: for each admitted message, which messages
// came out (by their Type tag) and whether it was dropped.
func script(cfg Impairment, link string, n int) []string {
	im := NewImpairer(cfg, nil)
	var trace []string
	for i := 0; i < n; i++ {
		due, dropped := im.Admit("a"+link, "b"+link, Msg{Type: fmt.Sprintf("m%d", i)})
		ev := ""
		if dropped {
			ev = "X"
		}
		for _, d := range due {
			ev += d.Type + ";"
		}
		trace = append(trace, ev)
	}
	return trace
}

// A fixed seed reproduces the exact same loss/duplicate/reorder verdict
// sequence run after run — the determinism contract of the tentpole.
func TestImpairerDeterministicForFixedSeed(t *testing.T) {
	cfg := Impairment{Seed: 42, Loss: 0.2, BurstLen: 2, Duplicate: 0.1, Reorder: 0.15, ReorderWindow: 3}
	first := script(cfg, "", 500)
	second := script(cfg, "", 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run diverged at message %d: %q vs %q", i, first[i], second[i])
		}
	}
	diff := script(Impairment{Seed: 43, Loss: 0.2, BurstLen: 2, Duplicate: 0.1, Reorder: 0.15, ReorderWindow: 3}, "", 500)
	same := true
	for i := range first {
		if first[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical traces; RNG not seeded")
	}
}

// Each link's verdict stream depends only on the seed and that link's
// own message order — interleaving traffic on other links between its
// messages must not perturb it.
func TestImpairerPerLinkIsolation(t *testing.T) {
	cfg := Impairment{Seed: 7, Loss: 0.3, Duplicate: 0.2, Reorder: 0.1}
	solo := script(cfg, "1", 200)
	im := NewImpairer(cfg, nil)
	var interleaved []string
	for i := 0; i < 200; i++ {
		// Noise on an unrelated link before every admit.
		im.Admit("noiseFrom", "noiseTo", Msg{Type: "noise"})
		due, dropped := im.Admit("a1", "b1", Msg{Type: fmt.Sprintf("m%d", i)})
		ev := ""
		if dropped {
			ev = "X"
		}
		for _, d := range due {
			ev += d.Type + ";"
		}
		interleaved = append(interleaved, ev)
	}
	for i := range solo {
		if solo[i] != interleaved[i] {
			t.Fatalf("link verdicts diverged at message %d with cross-traffic: %q vs %q", i, solo[i], interleaved[i])
		}
	}
}

// Observed loss tracks the configured rate, and BurstLen yields runs of
// consecutive drops.
func TestImpairerLossRateAndBursts(t *testing.T) {
	const n = 5000
	im := NewImpairer(Impairment{Seed: 1, Loss: 0.05, BurstLen: 3}, nil)
	drops, runLen, maxRun := 0, 0, 0
	for i := 0; i < n; i++ {
		_, dropped := im.Admit("a", "b", Msg{})
		if dropped {
			drops++
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else {
			runLen = 0
		}
	}
	// Loss=0.05 with BurstLen=3 quadruples each loss event: ~18% overall.
	rate := float64(drops) / n
	if rate < 0.10 || rate > 0.30 {
		t.Fatalf("observed loss rate %.3f implausible for Loss=0.05 BurstLen=3", rate)
	}
	if maxRun < 4 {
		t.Fatalf("longest drop run %d; bursts of >=4 expected", maxRun)
	}
	if got := im.Stats().Dropped; got != int64(drops) {
		t.Fatalf("Stats().Dropped = %d, want %d", got, drops)
	}
}

// A held message is released after at most ReorderWindow subsequent
// messages overtake it, and arrives after the message that released it.
func TestImpairerReorderWindowRelease(t *testing.T) {
	im := NewImpairer(Impairment{Seed: 3, Reorder: 0.25, ReorderWindow: 4}, nil)
	pending := map[string]int{} // held type → messages admitted since hold
	var order []string
	for i := 0; i < 2000; i++ {
		typ := fmt.Sprintf("m%d", i)
		due, _ := im.Admit("a", "b", Msg{Type: typ})
		for k := range pending {
			pending[k]++
		}
		held := true
		for _, d := range due {
			order = append(order, d.Type)
			if d.Type == typ {
				held = false
			} else {
				age, ok := pending[d.Type]
				if !ok {
					t.Fatalf("released %q which was never held", d.Type)
				}
				if age > 4 {
					t.Fatalf("%q overtaken by %d messages, window is 4", d.Type, age)
				}
				delete(pending, d.Type)
			}
		}
		if held {
			pending[typ] = 0
		}
	}
	st := im.Stats()
	if st.Held == 0 {
		t.Fatal("no messages were ever held; Reorder=0.25 over 2000 messages")
	}
	if st.Held-st.Released != int64(len(pending)) {
		t.Fatalf("held %d released %d but %d still pending", st.Held, st.Released, len(pending))
	}
	if len(order) == 0 {
		t.Fatal("nothing delivered")
	}
}

// Duplicate emits the same message twice back to back.
func TestImpairerDuplicate(t *testing.T) {
	im := NewImpairer(Impairment{Seed: 5, Duplicate: 0.3}, nil)
	dups := 0
	for i := 0; i < 1000; i++ {
		due, _ := im.Admit("a", "b", Msg{Type: fmt.Sprintf("m%d", i)})
		if len(due) == 2 {
			if due[0].Type != due[1].Type {
				t.Fatalf("duplicate pair differs: %q vs %q", due[0].Type, due[1].Type)
			}
			dups++
		}
	}
	if dups < 200 || dups > 400 {
		t.Fatalf("%d duplicates out of 1000 at rate 0.3", dups)
	}
	if got := im.Stats().Duplicated; got != int64(dups) {
		t.Fatalf("Stats().Duplicated = %d, want %d", got, dups)
	}
}

// MaxHold force-releases held messages through the release hook when no
// later traffic overtakes them, so a quiet link cannot strand a reorder
// hold forever.
func TestImpairerMaxHoldReleases(t *testing.T) {
	var mu sync.Mutex
	var released []string
	im := NewImpairer(
		Impairment{Seed: 2, Reorder: 1.0, ReorderWindow: 100, MaxHold: 20 * time.Millisecond},
		func(to string, m Msg) {
			mu.Lock()
			released = append(released, m.Type)
			mu.Unlock()
		})
	trafficReleased := 0
	for i := 0; i < 5; i++ {
		due, dropped := im.Admit("a", "b", Msg{Type: fmt.Sprintf("m%d", i)})
		// Reorder=1.0: the current message is always held; an earlier hold
		// may ride out here if its window counter ran down.
		if dropped {
			t.Fatalf("message %d dropped with Loss=0", i)
		}
		trafficReleased += len(due)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(released)
		mu.Unlock()
		if n+trafficReleased == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/5 held messages released (MaxHold hook %d, traffic %d)", n+trafficReleased, n, trafficReleased)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := im.Stats(); st.Held != 5 || st.Released != 5 {
		t.Fatalf("stats %+v, want Held=5 Released=5", st)
	}
}

// Flush drains every held message exactly once, and the MaxHold timer
// firing afterwards must not double-release.
func TestImpairerFlushIdempotentWithMaxHold(t *testing.T) {
	var mu sync.Mutex
	count := map[string]int{}
	im := NewImpairer(
		Impairment{Seed: 2, Reorder: 1.0, ReorderWindow: 100, MaxHold: 10 * time.Millisecond},
		func(to string, m Msg) {
			mu.Lock()
			count[m.Type]++
			mu.Unlock()
		})
	for i := 0; i < 8; i++ {
		im.Admit("a", "b", Msg{Type: fmt.Sprintf("m%d", i)})
	}
	im.Flush()
	time.Sleep(50 * time.Millisecond) // let stale MaxHold timers fire
	mu.Lock()
	defer mu.Unlock()
	if len(count) != 8 {
		t.Fatalf("flushed %d distinct messages, want 8", len(count))
	}
	for k, n := range count {
		if n != 1 {
			t.Fatalf("%q released %d times", k, n)
		}
	}
}

// On a queued fabric with a fixed impairment seed, the delivered message
// sequence is byte-for-byte reproducible — the acceptance criterion for
// deterministic in-process injection.
func TestFabricImpairmentDeterministic(t *testing.T) {
	run := func() []string {
		f := NewQueuedFabric()
		var mu sync.Mutex
		var got []string
		f.Endpoint("dst", func(m Msg) {
			mu.Lock()
			got = append(got, m.Type)
			mu.Unlock()
		})
		src := f.Endpoint("src", func(Msg) {})
		f.SetImpairment(Impairment{Seed: 99, Loss: 0.1, BurstLen: 1, Duplicate: 0.05, Reorder: 0.1, ReorderWindow: 3})
		for i := 0; i < 400; i++ {
			if err := src.Send("dst", Msg{Type: fmt.Sprintf("m%d", i)}); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		f.Wait()
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	if len(a) == 400 {
		t.Fatal("no message was impaired at Loss=0.1 over 400 sends")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
