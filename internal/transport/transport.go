// Package transport provides the live runtime's message fabric: named
// endpoints exchanging length-prefixed JSON frames. Two implementations
// are provided — an in-process memory fabric for tests and single-binary
// demos, and a TCP fabric where every peer listens on a socket.
//
// The simulator (internal/simnet) models the same role under virtual
// time; this package is the real-time counterpart used by internal/live.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"p2pmss/internal/metrics"
)

// fabricMetrics holds a transport's instrument handles; the zero value
// (all nil) records nothing at no cost. Counters are registered under
// one identity per transport kind ("mem" or "tcp"), so several
// endpoints sharing a registry aggregate into the same series.
type fabricMetrics struct {
	msgs, bytes, dropped, received *metrics.Counter
	queueDropped                   *metrics.Counter
	inflight                       *metrics.Gauge
}

func newTransportMetrics(reg *metrics.Registry, kind string) fabricMetrics {
	return fabricMetrics{
		msgs:         reg.Counter("transport_messages_sent_total", "transport", kind),
		bytes:        reg.Counter("transport_bytes_sent_total", "transport", kind),
		dropped:      reg.Counter("transport_messages_dropped_total", "transport", kind),
		received:     reg.Counter("transport_messages_received_total", "transport", kind),
		queueDropped: reg.Counter("transport_queue_dropped_total", "transport", kind),
		inflight:     reg.Gauge("transport_inflight_messages", "transport", kind),
	}
}

// Msg is one framed wire message.
type Msg struct {
	// Type tags the payload (e.g. "request", "control", "data").
	Type string `json:"type"`
	// From names the sending endpoint.
	From string `json:"from"`
	// Session scopes the message to one streaming session when an
	// endpoint participates in several concurrently (live.Node); empty
	// on single-session traffic.
	Session string `json:"session,omitempty"`
	// Trace and Span carry the sender's causal span context
	// (internal/span) so the receiver can parent its own spans under the
	// coordination step that triggered the message. Zero when tracing is
	// disabled — omitted from the frame, keeping the wire byte-identical
	// to an untraced run.
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
	// Payload is the JSON-encoded body.
	Payload json.RawMessage `json:"payload"`
}

// Encode builds a message of the given type from body v.
func Encode(typ, from string, v any) (Msg, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return Msg{}, fmt.Errorf("transport: encode %s: %w", typ, err)
	}
	return Msg{Type: typ, From: from, Payload: b}, nil
}

// Decode unmarshals the message body into v.
func (m Msg) Decode(v any) error {
	if err := json.Unmarshal(m.Payload, v); err != nil {
		return fmt.Errorf("transport: decode %s: %w", m.Type, err)
	}
	return nil
}

// Handler processes an inbound message. Handlers may be invoked
// concurrently and must be safe for concurrent use.
type Handler func(m Msg)

// Endpoint sends messages to named peers.
type Endpoint interface {
	// Name returns this endpoint's address.
	Name() string
	// Send delivers m to the named endpoint.
	Send(to string, m Msg) error
	// Close releases resources; the endpoint stops receiving.
	Close() error
}

// ---- in-memory fabric ----------------------------------------------------

// Fabric is an in-process message fabric connecting named endpoints.
// Optional latency and loss emulate a WAN inside tests.
type Fabric struct {
	mu       sync.Mutex
	handlers map[string]Handler
	closed   map[string]bool
	// Latency delays every delivery (applied in the sender goroutine's
	// timer, preserving per-pair ordering is NOT guaranteed under jitter).
	Latency time.Duration
	// Drop, when non-nil, decides per message whether to lose it. It may
	// be invoked concurrently from many sender goroutines and must be
	// safe for concurrent use. For seeded deterministic loss, bursts,
	// duplication, and reordering prefer SetImpairment, which generalizes
	// this hook.
	Drop func(from, to string) bool
	// impair, when set (SetImpairment), applies a seeded Impairment
	// policy to every send after the Drop hook.
	impair *Impairer
	// queued, when set (NewQueuedFabric), delivers messages one at a
	// time from a single pump goroutine in global enqueue order instead
	// of spawning a goroutine per message. Handlers run synchronously on
	// the pump, so a handler's own sends enqueue behind everything
	// already in flight — the breadth-first order a discrete-event
	// simulator with uniform latency produces. Latency is ignored; Drop
	// is still honored at enqueue time.
	queued  bool
	queue   []queuedMsg
	pumping bool
	// Bounded-queue state (NewBoundedQueuedFabric): queueCap caps the
	// pending queue, policy picks what a full queue does to new sends,
	// space wakes blocked senders, pumpID identifies the pump goroutine
	// (whose own enqueues must never block — they would deadlock the
	// drain), and queueDrops counts messages lost to QueueDropNewest.
	queueCap   int
	policy     QueuePolicy
	space      *sync.Cond
	pumpID     uint64
	queueDrops int64
	wg         sync.WaitGroup
	met        fabricMetrics
	// reg is retained from Instrument so an impairment installed later
	// gets its verdict counters on the same registry.
	reg *metrics.Registry
}

// QueuePolicy selects what a bounded queued fabric does with a send
// arriving while the queue is at capacity.
type QueuePolicy int

const (
	// QueueBlock applies backpressure: the sender waits until the pump
	// frees a slot. Sends issued from inside a handler (i.e. on the pump
	// goroutine itself) are exempt and may transiently exceed the cap,
	// since blocking them would deadlock the drain.
	QueueBlock QueuePolicy = iota
	// QueueDropNewest drops the arriving message, counting it in the
	// transport_queue_dropped_total metric and QueueDrops.
	QueueDropNewest
)

type queuedMsg struct {
	to string
	m  Msg
}

// Instrument registers the fabric's traffic counters (messages/bytes
// sent, drops, deliveries, in-flight queue depth) on reg. Call before
// traffic starts; a nil registry leaves the fabric uninstrumented. The
// registry is retained so an impairment installed later (or already
// installed) gets its verdict counters too.
func (f *Fabric) Instrument(reg *metrics.Registry) {
	f.mu.Lock()
	f.met = newTransportMetrics(reg, "mem")
	f.reg = reg
	imp := f.impair
	f.mu.Unlock()
	imp.Instrument(reg, "mem")
}

// NewFabric returns an empty in-memory fabric.
func NewFabric() *Fabric {
	return &Fabric{handlers: make(map[string]Handler), closed: make(map[string]bool)}
}

// NewQueuedFabric returns a fabric with deterministic FIFO delivery: one
// pump goroutine delivers messages in global enqueue order, running each
// handler to completion before the next delivery. Used by conformance
// tests that compare a live run against the discrete-event simulator.
// The queue is unbounded; see NewBoundedQueuedFabric for a capped one.
func NewQueuedFabric() *Fabric {
	f := NewFabric()
	f.queued = true
	return f
}

// NewBoundedQueuedFabric is NewQueuedFabric with the pending queue
// capped at capacity messages. policy selects backpressure (QueueBlock)
// or loss (QueueDropNewest) when the queue is full; drops are counted
// in QueueDrops and the transport_queue_dropped_total metric. A
// capacity <= 0 leaves the queue unbounded.
func NewBoundedQueuedFabric(capacity int, policy QueuePolicy) *Fabric {
	f := NewQueuedFabric()
	f.queueCap = capacity
	f.policy = policy
	f.space = sync.NewCond(&f.mu)
	return f
}

// SetImpairment installs a seeded Impairment policy applied to every
// send after the legacy Drop hook. Call before traffic starts; a policy
// with nothing enabled clears it. On a queued fabric, impairment
// verdicts and deliveries stay deterministic for a fixed seed because
// each link consumes its own RNG stream in its own send order. The
// returned Impairer exposes Stats and Flush; it is nil when the policy
// was cleared.
func (f *Fabric) SetImpairment(cfg Impairment) *Impairer {
	f.mu.Lock()
	if !cfg.Enabled() {
		f.impair = nil
		f.mu.Unlock()
		return nil
	}
	imp := NewImpairer(cfg, f.deliverOne)
	f.impair = imp
	reg := f.reg
	f.mu.Unlock()
	imp.Instrument(reg, "mem")
	return imp
}

// QueueDrops reports how many messages a bounded queued fabric dropped
// because the queue was at capacity.
func (f *Fabric) QueueDrops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queueDrops
}

// Endpoint registers name with the handler and returns its endpoint.
func (f *Fabric) Endpoint(name string, h Handler) Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[name] = h
	delete(f.closed, name)
	return &memEndpoint{f: f, name: name}
}

// Wait blocks until all in-flight deliveries complete.
func (f *Fabric) Wait() { f.wg.Wait() }

type memEndpoint struct {
	f    *Fabric
	name string
}

func (e *memEndpoint) Name() string { return e.name }

func (e *memEndpoint) Send(to string, m Msg) error {
	f := e.f
	f.mu.Lock()
	_, ok := f.handlers[to]
	closed := f.closed[to]
	drop := f.Drop
	imp := f.impair
	met := f.met
	f.mu.Unlock()
	if !ok || closed {
		return fmt.Errorf("transport: no endpoint %q", to)
	}
	met.msgs.Inc()
	met.bytes.Add(int64(len(m.Payload)))
	if drop != nil && drop(e.name, to) {
		met.dropped.Inc()
		return nil // silently lost, like the network would
	}
	if imp != nil {
		due, dropped := imp.Admit(e.name, to, m)
		if dropped {
			met.dropped.Inc()
		}
		for _, dm := range due {
			f.deliverOne(to, dm)
		}
		return nil
	}
	f.deliverOne(to, m)
	return nil
}

// deliverOne dispatches one message past the loss/impairment stage:
// enqueued on a queued fabric, or delivered from a fresh goroutine
// (after Latency) otherwise. Also the release path for impairment-held
// messages whose reorder window expires.
func (f *Fabric) deliverOne(to string, m Msg) {
	f.mu.Lock()
	h, ok := f.handlers[to]
	closed := f.closed[to]
	lat := f.Latency
	met := f.met
	f.mu.Unlock()
	if !ok || closed {
		met.dropped.Inc()
		return
	}
	if f.queued {
		f.enqueue(to, m)
		return
	}
	f.wg.Add(1)
	met.inflight.Add(1)
	go func() {
		defer f.wg.Done()
		defer met.inflight.Add(-1)
		if lat > 0 {
			time.Sleep(lat)
		}
		f.mu.Lock()
		stillClosed := f.closed[to]
		f.mu.Unlock()
		if stillClosed {
			met.dropped.Inc()
			return
		}
		met.received.Inc()
		h(m)
	}()
}

// enqueue appends to the FIFO queue and starts the pump if idle. On a
// bounded fabric a full queue either drops the message (QueueDropNewest)
// or blocks the sender until the pump frees a slot (QueueBlock) — except
// when the sender IS the pump (a handler sending mid-delivery), which
// may exceed the cap rather than deadlock the drain.
func (f *Fabric) enqueue(to string, m Msg) {
	f.mu.Lock()
	if f.queueCap > 0 && len(f.queue) >= f.queueCap {
		if f.policy == QueueDropNewest {
			f.queueDrops++
			f.met.queueDropped.Inc()
			f.mu.Unlock()
			return
		}
		if f.pumpID != goid() {
			for len(f.queue) >= f.queueCap {
				f.space.Wait()
			}
		}
	}
	f.queue = append(f.queue, queuedMsg{to, m})
	f.wg.Add(1)
	f.met.inflight.Add(1)
	start := !f.pumping
	if start {
		f.pumping = true
	}
	f.mu.Unlock()
	if start {
		go f.pump()
	}
}

// pump drains the queue in order, one delivery at a time.
func (f *Fabric) pump() {
	f.mu.Lock()
	f.pumpID = goid()
	f.mu.Unlock()
	for {
		f.mu.Lock()
		if len(f.queue) == 0 {
			f.pumping = false
			f.pumpID = 0
			f.mu.Unlock()
			return
		}
		qm := f.queue[0]
		f.queue = f.queue[1:]
		h := f.handlers[qm.to]
		closed := f.closed[qm.to]
		met := f.met
		if f.space != nil {
			f.space.Broadcast()
		}
		f.mu.Unlock()
		if h != nil && !closed {
			met.received.Inc()
			h(qm.m)
		} else {
			met.dropped.Inc()
		}
		met.inflight.Add(-1)
		f.wg.Done()
	}
}

// goid parses the running goroutine's id from its stack header; used
// only on the bounded-queue slow path to recognize the pump goroutine.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	// "goroutine 123 [...":  skip "goroutine ", parse digits.
	const prefix = "goroutine "
	var id uint64
	for i := len(prefix); i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			break
		}
		id = id*10 + uint64(s[i]-'0')
	}
	return id
}

func (e *memEndpoint) Close() error {
	e.f.mu.Lock()
	defer e.f.mu.Unlock()
	e.f.closed[e.name] = true
	return nil
}

// ---- TCP fabric -----------------------------------------------------------

// TCPEndpoint is an endpoint listening on a TCP address; peers are
// addressed by their host:port. Frames are 4-byte big-endian length +
// JSON.
type TCPEndpoint struct {
	name string
	ln   net.Listener
	h    Handler

	mu       sync.Mutex
	conns    map[string]net.Conn // outbound, by remote address
	accepted map[net.Conn]bool   // inbound, closed on shutdown
	closed   bool
	wg       sync.WaitGroup
	met      fabricMetrics
}

// Instrument registers the endpoint's traffic counters on reg. All TCP
// endpoints instrumented on the same registry aggregate into shared
// transport_*{transport="tcp"} series. Call before traffic starts.
func (e *TCPEndpoint) Instrument(reg *metrics.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.met = newTransportMetrics(reg, "tcp")
}

// MaxFrame bounds a frame's size (16 MiB) to fail fast on corrupt input.
const MaxFrame = 16 << 20

// ListenTCP starts an endpoint on addr (e.g. "127.0.0.1:0"); its Name is
// the bound address.
func ListenTCP(addr string, h Handler) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		name:     ln.Addr().String(),
		ln:       ln,
		h:        h,
		conns:    make(map[string]net.Conn),
		accepted: make(map[net.Conn]bool),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

func (e *TCPEndpoint) Name() string { return e.name }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.accepted[c] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				e.mu.Lock()
				delete(e.accepted, c)
				e.mu.Unlock()
				c.Close()
			}()
			e.readLoop(c)
		}()
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	for {
		m, err := readFrame(c)
		if err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		met := e.met
		e.mu.Unlock()
		if closed {
			return
		}
		met.received.Inc()
		e.h(m)
	}
}

// Send dials (or reuses) a connection to the named address and writes one
// frame.
func (e *TCPEndpoint) Send(to string, m Msg) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("transport: endpoint closed")
	}
	c, ok := e.conns[to]
	met := e.met
	e.mu.Unlock()
	if !ok {
		nc, err := net.DialTimeout("tcp", to, 2*time.Second)
		if err != nil {
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		e.mu.Lock()
		if prev, exists := e.conns[to]; exists {
			nc.Close()
			c = prev
		} else {
			e.conns[to] = nc
			c = nc
		}
		e.mu.Unlock()
	}
	n, err := writeFrame(c, m)
	if err != nil {
		// Connection went bad: drop it so the next send redials.
		met.dropped.Inc()
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		c.Close()
		return err
	}
	met.msgs.Inc()
	met.bytes.Add(int64(n))
	return nil
}

// Close stops the listener and closes cached connections.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[string]net.Conn{}
	inbound := make([]net.Conn, 0, len(e.accepted))
	for c := range e.accepted {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	err := e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, c := range inbound {
		c.Close() // unblocks the readLoop so wg.Wait can return
	}
	e.wg.Wait()
	return err
}

// writeFrame writes one frame and reports the bytes put on the wire.
func writeFrame(w io.Writer, m Msg) (int, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return 0, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(b); err != nil {
		return 0, err
	}
	return len(hdr) + len(b), nil
}

func readFrame(r io.Reader) (Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Msg{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return Msg{}, err
	}
	var m Msg
	if err := json.Unmarshal(b, &m); err != nil {
		return Msg{}, err
	}
	return m, nil
}
