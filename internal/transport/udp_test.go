package transport

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// collect returns a handler appending message types to a shared slice.
func collect() (Handler, func() []string) {
	var mu sync.Mutex
	var got []string
	h := func(m Msg) {
		mu.Lock()
		got = append(got, m.Type)
		mu.Unlock()
	}
	return h, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Messages round-trip over real UDP sockets in both directions, with
// payloads intact.
func TestUDPRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got []Msg
	a, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0", func(m Msg) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	body, _ := json.Marshal(map[string]int{"k": 7})
	for i := 0; i < 20; i++ {
		if err := a.Send(b.Name(), Msg{Type: fmt.Sprintf("m%d", i), From: a.Name(), Payload: body}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Loopback UDP is reliable in practice; tolerate stray loss anyway.
	waitFor(t, "most datagrams", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 15
	})
	mu.Lock()
	defer mu.Unlock()
	for _, m := range got {
		if m.From != a.Name() || string(m.Payload) != string(body) {
			t.Fatalf("corrupted message: %+v", m)
		}
	}
}

// Sending to a vanished peer returns nil: datagram loss is silent, so
// the engine's SendFailed machinery never fires on UDP and retries must
// come from timer deadlines instead.
func TestUDPSendToVanishedPeerIsSilent(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	gone := b.Name()
	b.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(gone, Msg{Type: "req"}); err != nil {
			t.Fatalf("send to vanished peer returned error: %v", err)
		}
	}
}

// Oversize messages are rejected locally with an error (there is no
// fragmentation escape hatch), and resolution failures surface too.
func TestUDPSendErrors(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	big := Msg{Type: "data", Payload: json.RawMessage(`"` + strings.Repeat("x", MaxDatagram) + `"`)}
	if err := a.Send(a.Name(), big); err == nil {
		t.Fatal("oversize datagram accepted")
	}
	if err := a.Send("no-such-host-zzz:port", Msg{}); err == nil {
		t.Fatal("unresolvable address accepted")
	}
}

// Foreign and corrupt datagrams on the port are discarded without
// reaching the handler or killing the read loop.
func TestUDPIgnoresForeignDatagrams(t *testing.T) {
	h, got := collect()
	e, err := ListenUDP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	raw, err := net.Dial("udp", e.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte("not a p2pmss datagram"))
	raw.Write([]byte{})
	raw.Write(append(append([]byte{}, udpMagic[:]...), []byte("{garbage")...))

	src, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Send(e.Name(), Msg{Type: "real"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the real message", func() bool { return len(got()) >= 1 })
	for _, typ := range got() {
		if typ != "real" {
			t.Fatalf("foreign datagram reached handler as %q", typ)
		}
	}
}

// An Impairment on the UDP endpoint drops outbound datagrams at the
// configured rate.
func TestUDPImpairmentDrops(t *testing.T) {
	h, got := collect()
	dst, err := ListenUDP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	imp := src.SetImpairment(Impairment{Seed: 11, Loss: 0.5})
	const n = 200
	for i := 0; i < n; i++ {
		if err := src.Send(dst.Name(), Msg{Type: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	st := imp.Stats()
	if st.Dropped < n/4 || st.Dropped > 3*n/4 {
		t.Fatalf("impairer dropped %d of %d at Loss=0.5", st.Dropped, n)
	}
	waitFor(t, "surviving datagrams", func() bool { return int64(len(got())) >= (n-st.Dropped)*3/4 })
}
