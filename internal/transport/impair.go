package transport

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"p2pmss/internal/metrics"
)

// Impairment configures deterministic network-impairment injection:
// per-link loss (optionally bursty), duplication, and reordering. It
// generalizes the Fabric's legacy Drop hook and is honored by both the
// in-process fabric (Fabric.SetImpairment) and the UDP endpoint
// (UDPEndpoint.SetImpairment), so a test can rehearse a loss scenario
// deterministically in memory and then replay it over real sockets.
//
// Every (from, to) link owns an independent RNG stream derived from Seed
// and the link's names, so the verdict sequence on a link depends only
// on the seed and the order of that link's own messages — concurrent
// traffic on other links cannot perturb it.
type Impairment struct {
	// Seed seeds the per-link RNG streams. A zero seed is valid (and
	// deterministic); two impairers with equal Seed and equal per-link
	// message orders produce identical verdicts.
	Seed int64
	// Loss is the per-message drop probability in [0,1].
	Loss float64
	// BurstLen extends each loss event to a burst: after a message is
	// lost, the next BurstLen messages on the same link are lost too
	// (Gilbert-style correlated loss). Zero means independent losses.
	BurstLen int
	// Duplicate is the probability a delivered message is delivered
	// twice, back to back.
	Duplicate float64
	// Reorder is the probability a delivered message is held back and
	// overtaken by later traffic on its link.
	Reorder float64
	// ReorderWindow bounds how many subsequent messages may overtake a
	// held message before it is released. Zero with Reorder > 0 defaults
	// to 4.
	ReorderWindow int
	// MaxHold bounds how long a held message may wait for overtaking
	// traffic on the wall clock; on expiry it is released out of band.
	// Zero holds indefinitely (purely traffic-driven release — the
	// deterministic choice for the in-process fabric; a quiet link then
	// turns a held message into one more loss, which the coordination
	// deadlines and leaf repair already cover).
	MaxHold time.Duration
}

// Enabled reports whether the policy impairs anything at all.
func (im Impairment) Enabled() bool {
	return im.Loss > 0 || im.Duplicate > 0 || im.Reorder > 0
}

// window resolves the reorder window default.
func (im Impairment) window() int {
	if im.ReorderWindow > 0 {
		return im.ReorderWindow
	}
	return 4
}

// ImpairStats counts what an Impairer did so far.
type ImpairStats struct {
	// Dropped is how many messages were lost (burst losses included).
	Dropped int64
	// Duplicated is how many extra copies were injected.
	Duplicated int64
	// Held is how many messages were delayed for reordering; Released is
	// how many of those have been delivered again (by overtaking traffic
	// or the MaxHold timer).
	Held, Released int64
}

// Impairer applies an Impairment policy message by message. It is safe
// for concurrent use; per-link state is keyed by the (from, to) pair.
type Impairer struct {
	cfg Impairment
	// release delivers a formerly-held message once its reorder window
	// expires on the MaxHold timer (traffic-driven releases flow through
	// Admit's return value instead). Nil drops timed-out holds.
	release func(to string, m Msg)

	mu    sync.Mutex
	links map[string]*linkState
	stats ImpairStats
	met   impairMetrics
}

// impairMetrics are the transport_impaired_total{verdict=...} counters,
// one per verdict the policy can hand down. Nil counters (no registry)
// are no-ops.
type impairMetrics struct {
	drop, dup, reorder, burst *metrics.Counter
}

// newImpairMetrics registers the verdict counters on reg, labeled by
// transport kind so fabric and UDP impairment stay distinguishable.
func newImpairMetrics(reg *metrics.Registry, kind string) impairMetrics {
	c := func(verdict string) *metrics.Counter {
		return reg.Counter("transport_impaired_total", "transport", kind, "verdict", verdict)
	}
	return impairMetrics{drop: c("drop"), dup: c("dup"), reorder: c("reorder"), burst: c("burst")}
}

// Instrument registers the impairer's per-verdict counters
// (transport_impaired_total{verdict=drop|dup|reorder|burst}) on reg,
// labeled with the transport kind. Call before traffic starts; the
// fabric and UDP endpoints call it for their own impairers when both an
// impairment and a registry are installed.
func (im *Impairer) Instrument(reg *metrics.Registry, kind string) {
	if im == nil {
		return
	}
	im.mu.Lock()
	im.met = newImpairMetrics(reg, kind)
	im.mu.Unlock()
}

type linkState struct {
	rng       *rand.Rand
	burstLeft int
	held      []*heldMsg
}

type heldMsg struct {
	remaining int // messages that still get to overtake
	to        string
	m         Msg
	released  bool
}

// NewImpairer compiles an Impairment policy. release, which may be nil,
// is invoked (without internal locks held) for messages whose reorder
// hold expires via MaxHold rather than via later traffic.
func NewImpairer(cfg Impairment, release func(to string, m Msg)) *Impairer {
	return &Impairer{cfg: cfg, release: release, links: make(map[string]*linkState)}
}

// Stats returns a snapshot of the impairer's counters.
func (im *Impairer) Stats() ImpairStats {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.stats
}

// linkLocked returns (creating if needed) the state of link from→to.
func (im *Impairer) linkLocked(from, to string) *linkState {
	key := from + "\x00" + to
	if l, ok := im.links[key]; ok {
		return l
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	l := &linkState{rng: rand.New(rand.NewSource(im.cfg.Seed ^ int64(h.Sum64()&0x7fffffffffffffff)))}
	im.links[key] = l
	return l
}

// Admit runs the policy for one message on link from→to. deliver lists
// the messages now due on the link, in order: the current message (twice
// when duplicated), followed by any formerly-held messages whose reorder
// window just expired. A dropped or held current message yields deliver
// without it; dropped reports a loss verdict (held messages are not
// drops — they surface later).
func (im *Impairer) Admit(from, to string, m Msg) (deliver []Msg, dropped bool) {
	im.mu.Lock()
	l := im.linkLocked(from, to)
	// This message overtakes every held one; release the expired.
	var expired []*heldMsg
	if len(l.held) > 0 {
		keep := l.held[:0]
		for _, h := range l.held {
			h.remaining--
			if h.remaining <= 0 {
				h.released = true
				expired = append(expired, h)
			} else {
				keep = append(keep, h)
			}
		}
		l.held = keep
	}
	switch {
	case l.burstLeft > 0:
		l.burstLeft--
		dropped = true
		im.met.burst.Inc()
	case im.cfg.Loss > 0 && l.rng.Float64() < im.cfg.Loss:
		l.burstLeft = im.cfg.BurstLen
		dropped = true
		im.met.drop.Inc()
	case im.cfg.Reorder > 0 && l.rng.Float64() < im.cfg.Reorder:
		h := &heldMsg{remaining: 1 + l.rng.Intn(im.cfg.window()), to: to, m: m}
		l.held = append(l.held, h)
		im.stats.Held++
		im.met.reorder.Inc()
		if im.cfg.MaxHold > 0 {
			time.AfterFunc(im.cfg.MaxHold, func() { im.expire(h) })
		}
	default:
		deliver = append(deliver, m)
		if im.cfg.Duplicate > 0 && l.rng.Float64() < im.cfg.Duplicate {
			deliver = append(deliver, m)
			im.stats.Duplicated++
			im.met.dup.Inc()
		}
	}
	if dropped {
		im.stats.Dropped++
	}
	for _, h := range expired {
		deliver = append(deliver, h.m)
		im.stats.Released++
	}
	im.mu.Unlock()
	return deliver, dropped
}

// expire force-releases a held message whose MaxHold elapsed before
// enough traffic overtook it.
func (im *Impairer) expire(h *heldMsg) {
	im.mu.Lock()
	if h.released {
		im.mu.Unlock()
		return
	}
	h.released = true
	for _, l := range im.links {
		for i, hh := range l.held {
			if hh == h {
				l.held = append(l.held[:i], l.held[i+1:]...)
				break
			}
		}
	}
	im.stats.Released++
	release := im.release
	im.mu.Unlock()
	if release != nil {
		release(h.to, h.m)
	}
}

// Flush releases every held message immediately (delivered via the
// release hook), e.g. when a test wants the tail of a quiet link.
func (im *Impairer) Flush() {
	im.mu.Lock()
	var pending []*heldMsg
	for _, l := range im.links {
		for _, h := range l.held {
			h.released = true
			pending = append(pending, h)
		}
		l.held = nil
	}
	im.stats.Released += int64(len(pending))
	release := im.release
	im.mu.Unlock()
	if release == nil {
		return
	}
	for _, h := range pending {
		release(h.to, h.m)
	}
}
