package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"p2pmss/internal/metrics"
)

// TestBoundedQueueDropNewest fills the queue while the pump is wedged in
// a handler and checks that overflow messages are dropped and counted —
// both in QueueDrops and the transport_queue_dropped_total metric.
func TestBoundedQueueDropNewest(t *testing.T) {
	reg := metrics.New()
	f := NewBoundedQueuedFabric(2, QueueDropNewest)
	f.Instrument(reg)

	gate := make(chan struct{})
	var delivered atomic.Int64
	f.Endpoint("sink", func(Msg) {
		delivered.Add(1)
		<-gate
	})
	src := f.Endpoint("src", func(Msg) {})

	// Wedge the pump inside the first delivery so queue occupancy is
	// deterministic, then fill the queue to capacity and overflow it.
	if err := src.Send("sink", Msg{Type: "m0"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for delivered.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() == 0 {
		t.Fatal("pump never delivered m0")
	}
	for i := 1; i < 5; i++ { // m1, m2 queue; m3, m4 overflow
		if err := src.Send("sink", Msg{Type: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := f.QueueDrops(); got != 2 {
		t.Errorf("QueueDrops = %d, want 2", got)
	}
	close(gate)
	f.Wait()
	if got := delivered.Load(); got != 3 {
		t.Errorf("delivered = %d, want 3 (2 dropped)", got)
	}
	snap := reg.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "transport_queue_dropped_total" {
			found = true
			if c.Value != 2 {
				t.Errorf("transport_queue_dropped_total = %d, want 2", c.Value)
			}
		}
	}
	if !found {
		t.Error("transport_queue_dropped_total not in snapshot")
	}
}

// TestBoundedQueueBlockBackpressure checks that a sender hitting a full
// queue blocks until the pump frees a slot, and that nothing is lost.
func TestBoundedQueueBlockBackpressure(t *testing.T) {
	f := NewBoundedQueuedFabric(1, QueueBlock)
	gate := make(chan struct{})
	var delivered atomic.Int64
	f.Endpoint("sink", func(Msg) {
		delivered.Add(1)
		<-gate
	})
	src := f.Endpoint("src", func(Msg) {})

	// m0 wedges the pump, m1 occupies the single queue slot.
	src.Send("sink", Msg{Type: "m0"})
	src.Send("sink", Msg{Type: "m1"})

	blocked := make(chan struct{})
	sent := make(chan struct{})
	go func() {
		close(blocked)
		src.Send("sink", Msg{Type: "m2"}) // must block: queue full
		close(sent)
	}()
	<-blocked
	select {
	case <-sent:
		// m2 may legitimately squeeze in if the pump dequeued m1 between
		// our sends; only fail if it returned while the queue was full.
		if delivered.Load() == 0 {
			t.Fatal("send returned with the queue still full")
		}
	case <-time.After(50 * time.Millisecond):
		// Still blocked, as expected under backpressure.
	}
	close(gate) // release the pump; the blocked sender must now finish
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("sender still blocked after the pump drained")
	}
	f.Wait()
	if got := delivered.Load(); got != 3 {
		t.Errorf("delivered = %d, want 3 (QueueBlock must not lose messages)", got)
	}
	if got := f.QueueDrops(); got != 0 {
		t.Errorf("QueueDrops = %d, want 0 under QueueBlock", got)
	}
}

// TestBoundedQueuePumpExempt checks the deadlock guard: a handler
// (running on the pump goroutine) sending more messages than the queue
// capacity must not block, or the drain would never progress.
func TestBoundedQueuePumpExempt(t *testing.T) {
	f := NewBoundedQueuedFabric(1, QueueBlock)
	var fanout Endpoint
	var received atomic.Int64
	f.Endpoint("sink", func(Msg) { received.Add(1) })
	fanout = f.Endpoint("fan", func(Msg) {
		// 3 sends from inside a handler against capacity 1: only the
		// pump-exemption keeps this from deadlocking.
		for i := 0; i < 3; i++ {
			fanout.Send("sink", Msg{Type: fmt.Sprintf("f%d", i)})
		}
	})
	src := f.Endpoint("src", func(Msg) {})

	done := make(chan struct{})
	go func() {
		src.Send("fan", Msg{Type: "go"})
		f.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("bounded queued fabric deadlocked on handler fan-out")
	}
	if got := received.Load(); got != 3 {
		t.Errorf("received = %d, want 3", got)
	}
}

// TestBoundedQueueUnboundedWhenCapZero pins that capacity <= 0 means
// unbounded: a large burst is fully delivered with no drops.
func TestBoundedQueueUnboundedWhenCapZero(t *testing.T) {
	f := NewBoundedQueuedFabric(0, QueueDropNewest)
	var received atomic.Int64
	f.Endpoint("sink", func(Msg) { received.Add(1) })
	src := f.Endpoint("src", func(Msg) {})
	for i := 0; i < 500; i++ {
		src.Send("sink", Msg{Type: "b"})
	}
	f.Wait()
	if got := received.Load(); got != 500 {
		t.Errorf("received = %d, want 500", got)
	}
	if f.QueueDrops() != 0 {
		t.Errorf("drops on an unbounded queue: %d", f.QueueDrops())
	}
}
