package transport

import (
	"encoding/json"
	"sync/atomic"
	"testing"
)

// benchMsg builds a message with a data-plane-sized payload (a few
// hundred JSON bytes, like one content packet).
func benchMsg() Msg {
	body, _ := json.Marshal(map[string]any{
		"idx": 12345, "payload": string(make([]byte, 256)),
	})
	return Msg{Type: "data", From: "tx", Payload: body}
}

// benchFabric pushes b.N messages through one link of f and waits for
// every delivery, so the measured cost covers the full send→handler path.
func benchFabric(b *testing.B, f *Fabric) {
	b.Helper()
	var got atomic.Int64
	f.Endpoint("rx", func(m Msg) { got.Add(1) })
	tx := f.Endpoint("tx", func(Msg) {})
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send("rx", m); err != nil {
			b.Fatal(err)
		}
	}
	f.Wait()
	if int(got.Load()) != b.N {
		b.Fatalf("delivered %d of %d", got.Load(), b.N)
	}
}

func BenchmarkTransportFabricSend(b *testing.B) {
	benchFabric(b, NewFabric())
}

func BenchmarkTransportBoundedQueuedFabricSend(b *testing.B) {
	benchFabric(b, NewBoundedQueuedFabric(4096, QueueBlock))
}

// BenchmarkTransportFabricImpairedSend measures the seeded impairment
// policy on the hot path (loss + duplication + reordering enabled).
func BenchmarkTransportFabricImpairedSend(b *testing.B) {
	f := NewBoundedQueuedFabric(4096, QueueBlock)
	f.SetImpairment(Impairment{Seed: 1, Loss: 0.01, Duplicate: 0.01, Reorder: 0.05, ReorderWindow: 4})
	f.Endpoint("rx", func(Msg) {})
	tx := f.Endpoint("tx", func(Msg) {})
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send("rx", m); err != nil {
			b.Fatal(err)
		}
	}
	f.Wait()
}

// BenchmarkTransportUDPSend measures the datagram send path — JSON
// encode, magic prefix, one WriteToUDP — against a live loopback socket
// draining on the other end. Receipt is not awaited: datagram sends
// complete at the socket, and under benchmark load the kernel may shed
// some, which is the semantics being measured.
func BenchmarkTransportUDPSend(b *testing.B) {
	rx, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	tx, err := ListenUDP("127.0.0.1:0", func(Msg) {})
	if err != nil {
		b.Fatal(err)
	}
	defer tx.Close()
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(rx.Name(), m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportImpairerAdmit isolates the per-message cost of the
// impairment verdict itself (RNG draws, held-queue bookkeeping).
func BenchmarkTransportImpairerAdmit(b *testing.B) {
	im := NewImpairer(Impairment{Seed: 9, Loss: 0.05, Duplicate: 0.02, Reorder: 0.05, ReorderWindow: 4}, func(string, Msg) {})
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Admit("tx", "rx", m)
	}
}
