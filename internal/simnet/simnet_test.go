package simnet

import (
	"testing"

	"p2pmss/internal/des"
)

type sink struct {
	got []Message
	at  []float64
	eng *des.Engine
}

func (s *sink) Receive(from NodeID, m Message) {
	s.got = append(s.got, m)
	s.at = append(s.at, s.eng.Now())
}

func TestDeliveryWithLatency(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{Latency: 0.5})
	s := &sink{eng: eng}
	nw.Attach(1, s)
	nw.AttachFunc(0, func(NodeID, Message) {})
	nw.Send(0, 1, "hello")
	eng.Run()
	if len(s.got) != 1 || s.got[0] != "hello" {
		t.Fatalf("got = %v", s.got)
	}
	if s.at[0] != 0.5 {
		t.Errorf("delivered at %v, want 0.5", s.at[0])
	}
	st := nw.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkOverride(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{Latency: 1})
	nw.SetLink(0, 1, LinkParams{Latency: 3})
	s := &sink{eng: eng}
	nw.Attach(1, s)
	nw.Send(0, 1, "x")
	eng.Run()
	if s.at[0] != 3 {
		t.Errorf("delivered at %v, want 3", s.at[0])
	}
	if got := nw.Link(1, 0).Latency; got != 1 {
		t.Errorf("reverse link latency = %v, want default 1", got)
	}
}

func TestLoss(t *testing.T) {
	eng := des.New(7)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{LossProb: 0.5})
	s := &sink{eng: eng}
	nw.Attach(1, s)
	const N = 2000
	for i := 0; i < N; i++ {
		nw.Send(0, 1, i)
	}
	eng.Run()
	st := nw.Stats()
	if st.Sent != N || st.Delivered+st.Dropped != N {
		t.Fatalf("stats = %+v", st)
	}
	frac := float64(st.Dropped) / N
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("loss fraction = %v, want ≈0.5", frac)
	}
}

func TestBurstLossHook(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	drop := true
	nw.BurstLoss = func(from, to NodeID) bool { return drop }
	s := &sink{eng: eng}
	nw.Attach(1, s)
	nw.Send(0, 1, "a")
	drop = false
	nw.Send(0, 1, "b")
	eng.Run()
	if len(s.got) != 1 || s.got[0] != "b" {
		t.Errorf("got = %v", s.got)
	}
}

func TestCrash(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	s := &sink{eng: eng}
	nw.Attach(1, s)
	nw.Attach(2, s)
	nw.Crash(1)
	if !nw.Crashed(1) {
		t.Error("Crashed(1) = false")
	}
	nw.Send(0, 1, "to crashed")   // discarded at delivery
	nw.Send(1, 2, "from crashed") // ignored at send
	eng.Run()
	if len(s.got) != 0 {
		t.Errorf("got = %v", s.got)
	}
	st := nw.Stats()
	if st.ToCrashed != 1 {
		t.Errorf("ToCrashed = %d", st.ToCrashed)
	}
	nw.Recover(1)
	nw.Send(0, 1, "after recover")
	eng.Run()
	if len(s.got) != 1 {
		t.Errorf("after recover got = %v", s.got)
	}
}

// A message in flight when the destination crashes is lost — crash takes
// effect at delivery time.
func TestCrashInFlight(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{Latency: 2})
	s := &sink{eng: eng}
	nw.Attach(1, s)
	nw.Send(0, 1, "x")
	eng.After(1, func() { nw.Crash(1) })
	eng.Run()
	if len(s.got) != 0 {
		t.Errorf("got = %v", s.got)
	}
}

func TestJitterBounds(t *testing.T) {
	eng := des.New(3)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{Latency: 1, Jitter: 0.5})
	s := &sink{eng: eng}
	nw.Attach(1, s)
	for i := 0; i < 100; i++ {
		nw.Send(0, 1, i)
	}
	eng.Run()
	for _, at := range s.at {
		if at < 1 || at >= 1.5 {
			t.Fatalf("delivery at %v outside [1,1.5)", at)
		}
	}
}

func TestBroadcast(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	s1, s2, s3 := &sink{eng: eng}, &sink{eng: eng}, &sink{eng: eng}
	nw.Attach(1, s1)
	nw.Attach(2, s2)
	nw.Attach(3, s3)
	nw.Broadcast(1, "hi")
	eng.Run()
	if len(s1.got) != 0 {
		t.Error("broadcast delivered to sender")
	}
	if len(s2.got) != 1 || len(s3.got) != 1 {
		t.Errorf("broadcast missed: %v %v", s2.got, s3.got)
	}
}

func TestUnattachedPanics(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	nw.Send(0, 9, "x")
	defer func() {
		if recover() == nil {
			t.Error("delivery to unattached node did not panic")
		}
	}()
	eng.Run()
}

// Finite bandwidth: messages serialize FIFO at 1/bw spacing.
func TestBandwidthSerialization(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{Latency: 1, Bandwidth: 2}) // 0.5/unit per msg
	s := &sink{eng: eng}
	nw.Attach(1, s)
	for i := 0; i < 4; i++ {
		nw.Send(0, 1, i)
	}
	eng.Run()
	want := []float64{1.5, 2.0, 2.5, 3.0}
	if len(s.at) != 4 {
		t.Fatalf("delivered %d", len(s.at))
	}
	for i, at := range s.at {
		if diff := at - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("msg %d at %v, want %v", i, at, want[i])
		}
	}
}

// Bandwidth limits are per directed link: reverse traffic is unaffected,
// and an idle link does not accumulate credit debt.
func TestBandwidthPerLink(t *testing.T) {
	eng := des.New(1)
	nw := New(eng)
	nw.SetDefaultLink(LinkParams{Bandwidth: 1})
	a, b := &sink{eng: eng}, &sink{eng: eng}
	nw.Attach(0, a)
	nw.Attach(1, b)
	nw.Send(0, 1, "x")
	nw.Send(1, 0, "y")
	eng.Run()
	if len(a.at) != 1 || len(b.at) != 1 {
		t.Fatal("both directions should deliver")
	}
	if a.at[0] != 1 || b.at[0] != 1 {
		t.Errorf("deliveries at %v/%v, want 1/1", a.at[0], b.at[0])
	}
	// After idling, the next message only waits its own slot.
	eng.RunUntil(10)
	nw.Send(0, 1, "z")
	eng.Run()
	if got := b.at[1]; got != 11 {
		t.Errorf("post-idle delivery at %v, want 11", got)
	}
}
