// Package simnet models the P2P overlay's underlying network on top of
// the discrete-event engine: logical channels with propagation latency,
// jitter, loss probability and bandwidth, plus crash-stop node failures.
//
// The paper assumes "reliable high-speed communication like 10 Gbps
// Ethernet" between contents peers and the leaf (§4) for the coordination
// experiments, and separately studies packet loss and peer faults for the
// data plane (§3.2); both regimes are expressible with LinkParams.
package simnet

import (
	"fmt"

	"p2pmss/internal/des"
	"p2pmss/internal/metrics"
)

// NodeID identifies a node in the simulated overlay. By convention the
// experiment layer uses 0..n-1 for contents peers and LeafID for the leaf.
type NodeID int

// Message is anything a node sends to another.
type Message any

// Handler receives messages delivered to a node.
type Handler interface {
	Receive(from NodeID, m Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, m Message)

// Receive calls f(from, m).
func (f HandlerFunc) Receive(from NodeID, m Message) { f(from, m) }

// LinkParams describes one direction of a logical channel.
type LinkParams struct {
	// Latency is the fixed propagation delay (the paper's δ).
	Latency float64
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter float64
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// Bandwidth, when positive, limits the link to that many messages
	// per time unit: messages serialize FIFO, each occupying the link
	// for 1/Bandwidth (the §2 slot model at the network layer). Zero
	// means unlimited.
	Bandwidth float64
}

// Stats aggregates network-wide delivery counters.
type Stats struct {
	Sent      int64 // messages handed to Send
	Delivered int64 // messages delivered to a handler
	Dropped   int64 // lost to LossProb
	ToCrashed int64 // discarded because the destination had crashed
}

// Network simulates message exchange between nodes.
type Network struct {
	eng     *des.Engine
	nodes   map[NodeID]Handler
	crashed map[NodeID]bool
	def     LinkParams
	links   map[[2]NodeID]LinkParams
	// busyUntil tracks per-directed-link FIFO serialization when the
	// link has finite bandwidth.
	busyUntil map[[2]NodeID]float64
	stats     Stats
	// BurstLoss, when non-nil, is consulted per message in addition to
	// LossProb; it enables correlated (bursty) loss models from the
	// failure package.
	BurstLoss func(from, to NodeID) bool
	met       netMetrics
}

// netMetrics holds the network's instrument handles. The zero value
// (all nil) is fully functional and free: every method no-ops.
type netMetrics struct {
	sent, delivered, dropped, toCrashed *metrics.Counter
	inflight                            *metrics.Gauge
	latency                             *metrics.Histogram
}

// Instrument registers the network's counters on reg (messages sent /
// delivered / dropped / to-crashed, in-flight queue depth, delivery
// latency). A nil registry leaves the network uninstrumented; metrics
// never influence simulation behavior, so instrumented and bare runs
// are event-for-event identical.
func (n *Network) Instrument(reg *metrics.Registry) {
	n.met = netMetrics{
		sent:      reg.Counter("simnet_messages_sent_total"),
		delivered: reg.Counter("simnet_messages_delivered_total"),
		dropped:   reg.Counter("simnet_messages_dropped_total"),
		toCrashed: reg.Counter("simnet_messages_to_crashed_total"),
		inflight:  reg.Gauge("simnet_inflight_messages"),
		latency:   reg.Histogram("simnet_delivery_latency", []float64{0.5, 1, 1.5, 2, 3, 5, 10}),
	}
}

// New returns a network over the given engine with zero-latency,
// loss-free default links.
func New(eng *des.Engine) *Network {
	return &Network{
		eng:       eng,
		nodes:     make(map[NodeID]Handler),
		crashed:   make(map[NodeID]bool),
		links:     make(map[[2]NodeID]LinkParams),
		busyUntil: make(map[[2]NodeID]float64),
	}
}

// Engine returns the underlying discrete-event engine.
func (n *Network) Engine() *des.Engine { return n.eng }

// Attach registers the handler for a node ID, replacing any previous one.
func (n *Network) Attach(id NodeID, h Handler) { n.nodes[id] = h }

// AttachFunc registers a function handler for a node ID.
func (n *Network) AttachFunc(id NodeID, f func(from NodeID, m Message)) {
	n.Attach(id, HandlerFunc(f))
}

// SetDefaultLink sets the parameters used for node pairs without an
// explicit link override.
func (n *Network) SetDefaultLink(p LinkParams) { n.def = p }

// SetLink overrides the parameters of the directed link from → to.
func (n *Network) SetLink(from, to NodeID, p LinkParams) {
	n.links[[2]NodeID{from, to}] = p
}

// Link returns the effective parameters of the directed link from → to.
func (n *Network) Link(from, to NodeID) LinkParams {
	if p, ok := n.links[[2]NodeID{from, to}]; ok {
		return p
	}
	return n.def
}

// Crash marks a node as crash-stopped: it no longer sends or receives.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Recover clears a node's crashed state.
func (n *Network) Recover(id NodeID) { delete(n.crashed, id) }

// Crashed reports whether a node is crash-stopped.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// Stats returns a snapshot of the delivery counters.
func (n *Network) Stats() Stats { return n.stats }

// Send transmits m from → to over the simulated link. Sends from crashed
// nodes are ignored; messages to crashed or unknown nodes are discarded at
// delivery time (matching a real network, where the sender cannot tell).
func (n *Network) Send(from, to NodeID, m Message) {
	if n.crashed[from] {
		return
	}
	n.stats.Sent++
	n.met.sent.Inc()
	p := n.Link(from, to)
	if p.LossProb > 0 && n.eng.Rand().Float64() < p.LossProb {
		n.stats.Dropped++
		n.met.dropped.Inc()
		return
	}
	if n.BurstLoss != nil && n.BurstLoss(from, to) {
		n.stats.Dropped++
		n.met.dropped.Inc()
		return
	}
	d := p.Latency
	if p.Jitter > 0 {
		d += n.eng.Rand().Float64() * p.Jitter
	}
	if p.Bandwidth > 0 {
		// FIFO serialization: the message occupies the link for
		// 1/Bandwidth starting when the link frees up.
		key := [2]NodeID{from, to}
		start := n.eng.Now()
		if busy := n.busyUntil[key]; busy > start {
			start = busy
		}
		done := start + 1/p.Bandwidth
		n.busyUntil[key] = done
		d += done - n.eng.Now()
	}
	n.met.latency.Observe(d)
	n.met.inflight.Add(1)
	n.eng.After(d, func() {
		n.met.inflight.Add(-1)
		if n.crashed[to] {
			n.stats.ToCrashed++
			n.met.toCrashed.Inc()
			return
		}
		h, ok := n.nodes[to]
		if !ok {
			panic(fmt.Sprintf("simnet: message %T delivered to unattached node %d", m, to))
		}
		n.stats.Delivered++
		n.met.delivered.Inc()
		h.Receive(from, m)
	})
}

// Broadcast sends m from the given node to every other attached node.
func (n *Network) Broadcast(from NodeID, m Message) {
	for id := range n.nodes {
		if id != from {
			n.Send(from, id, m)
		}
	}
}
