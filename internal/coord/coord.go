// Package coord implements the paper's coordination protocols for
// multi-source streaming: the primary contributions DCoP (§3.4, redundant
// flooding) and TCoP (§3.5, non-redundant tree), plus the three baselines
// of §3.1 — broadcast, unicast chain, and the centralized 2PC-style
// controller protocol of reference [5].
//
// Each protocol runs over the discrete-event simulator (internal/des +
// internal/simnet). Contents peers are simnet nodes 0..N-1 and the leaf
// peer is node N. A Runner wires a protocol onto the network, executes it,
// optionally simulates the data plane (per-packet transmission at the
// §3.2 rates with parity enhancement), and collects the metrics the
// paper's evaluation reports: rounds, control packets, synchronization
// time, and leaf receipt rate.
package coord

import (
	"fmt"

	"p2pmss/internal/des"
	"p2pmss/internal/engine"
	"p2pmss/internal/failure"
	"p2pmss/internal/flight"
	"p2pmss/internal/fluid"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/overlay"
	"p2pmss/internal/parity"
	"p2pmss/internal/protocol"
	"p2pmss/internal/schedule"
	"p2pmss/internal/seq"
	"p2pmss/internal/simnet"
	"p2pmss/internal/span"
	"p2pmss/internal/trace"
)

// Protocol identifies a coordination protocol; the names are shared with
// the live layer via internal/protocol.
type Protocol = protocol.Protocol

// Protocol names accepted by Run, aliased from the shared registry.
const (
	DCoP        = protocol.DCoP
	TCoP        = protocol.TCoP
	Broadcast   = protocol.Broadcast
	Unicast     = protocol.Unicast
	Centralized = protocol.Centralized
	// AMS is the asynchronous multi-source streaming precursor of [3–5]:
	// asynchronous start plus periodic all-to-all state exchange via
	// causal group communication.
	AMS = protocol.AMS
)

// Protocols lists all implemented coordination protocols.
var Protocols = protocol.All

// Config parameterizes one coordination run.
type Config struct {
	// N is the number of contents peers CP_1..CP_n.
	N int
	// H is the flooding fanout: the number of contents peers the leaf
	// initially selects and each parent tries to select (§3.3).
	H int
	// Interval is the parity interval h used by DCoP and the initial
	// division (§3.2). Zero means H-1 (one parity packet per H-1 data
	// packets, the paper's h = H-1 setting). TCoP re-enhancements use
	// the per-node interval c2.n from the pseudocode regardless.
	Interval int
	// Rate is the content rate τ in packets per time unit.
	Rate float64
	// Delta is the one-way control/data latency δ between any two peers.
	Delta float64
	// Jitter adds uniform extra latency in [0, Jitter).
	Jitter float64
	// LossProb drops each message independently with this probability.
	LossProb float64
	// LeafShares controls whether the leaf's content request carries the
	// identities of the other initially selected peers (the paper leaves
	// this unspecified; see DESIGN.md §2). Default true via DefaultConfig.
	LeafShares bool
	// FirstFanout is the number of children a leaf-selected peer selects
	// (§3.4 prose says H-1, pseudocode says H). Zero means H.
	FirstFanout int
	// DataPlane enables per-packet data transmission so receipt rate and
	// delivery can be measured. Figures 10 and 11 run with it off.
	DataPlane bool
	// PlaneMode selects how the data plane is simulated when DataPlane is
	// on: PlanePacket (the default, also selected by the empty string)
	// schedules one DES event per data packet; PlaneFluid models each
	// transmitter as a closed-form slot grid (internal/fluid), so run
	// cost scales with coordination events instead of rate × time and a
	// sweep can reach n = 10⁵ peers. Fluid runs require Loop and reject
	// the per-packet-only features (TrackDelivery, Playback, Repair,
	// LeafMaxRate, Burst); at zero Jitter and LossProb their control
	// trajectory is event-identical to the packet plane's and the receipt
	// rate agrees up to floating-point slot drift, with impairments the
	// fluid rate is the expectation. See DESIGN.md §11.
	PlaneMode DataPlaneMode
	// ContentLen is the content length in packets (data plane only).
	ContentLen int64
	// Loop makes transmitters wrap around at the end of their sequence,
	// modeling an unbounded stream for steady-state rate measurement.
	Loop bool
	// Settle and Window delimit the receipt-rate measurement: the window
	// opens Settle time units after the last peer activation and spans
	// Window time units.
	Settle, Window float64
	// LeafMaxRate is ρ_s, the leaf's maximum receipt rate in packets per
	// time unit (0 = unlimited). Arrivals beyond the buffer overrun.
	LeafMaxRate float64
	// LeafBuffer is the leaf buffer capacity in packets when LeafMaxRate
	// is set.
	LeafBuffer int
	// TrackDelivery makes the leaf feed every arrival into a parity
	// recoverer so Result reports how much of the content was delivered
	// (directly or via parity recovery). Use with Loop=false and a small
	// ContentLen; the run then executes to quiescence.
	TrackDelivery bool
	// Retries bounds how many alternate peers a TCoP parent contacts
	// when a selected child refuses, is unreachable, or stays silent —
	// the simulated counterpart of the live layer's churn-tolerant
	// failover. Zero (the default) disables retry waves, matching the
	// paper's base protocol.
	Retries int
	// HandshakeTimeout bounds each TCoP confirmation round; it doubles
	// on every retry wave. Zero means 2(δ+jitter)+ε, just past the
	// worst-case control+confirm round trip.
	HandshakeTimeout float64
	// CommitRelease is how long an adopted child waits for the commit
	// before releasing the adoption. Zero means 4(δ+jitter)+ε.
	CommitRelease float64
	// Seed seeds all randomness of the run.
	Seed int64
	// CrashPeers crash-stops the listed peers before the run starts.
	CrashPeers []overlay.PeerID
	// CrashAt, when >0 with CrashPeers set, delays the crashes to that
	// virtual time instead (peers participate, then fail).
	CrashAt float64
	// Churn, when non-nil, installs a deterministic crash/rejoin
	// schedule on top of (or instead of) CrashPeers — the sim-side
	// counterpart of the live layer's churn injection.
	Churn *failure.ChurnSchedule
	// Burst enables Gilbert–Elliott bursty loss on every directed
	// channel (§3.2's "lost … in a bursty manner").
	Burst *BurstParams
	// Bandwidths, when it has N entries, gives each contents peer a
	// relative bandwidth; the initial division then uses the §2
	// time-slot allocation instead of round-robin, and per-peer rates
	// are proportional (the heterogeneous-environment extension).
	// Requires LeafShares so the selected peers know each other.
	Bandwidths []float64
	// StatePeriod and StatePeriods drive the AMS baseline's periodic
	// state exchange (defaults: 2δ, 3 periods).
	StatePeriod  float64
	StatePeriods int
	// Playback simulates continuous playout at the leaf: consumption of
	// data packets in order at rate Rate, starting PlaybackDelay after
	// the first arrival. Underruns are counted in the Result. Implies
	// TrackDelivery; use with Loop=false.
	Playback      bool
	PlaybackDelay float64
	// Repair enables the leaf-driven retransmission protocol: when
	// delivery stalls (no new data packet for RepairInterval), the leaf
	// asks a random live peer to retransmit the missing packets — the
	// recovery of last resort when parity cannot cover a crash. Requires
	// TrackDelivery (enabled automatically).
	Repair bool
	// RepairInterval is the stall-detection period (default 5δ).
	RepairInterval float64
	// RepairMaxRounds bounds repair attempts (default 20).
	RepairMaxRounds int
	// Obs bundles the run's observers (metrics, trace, spans, flight
	// rings) in the struct shared with the live runtime. Non-nil
	// members override the corresponding legacy fields below during
	// normalization. Prefer Obs for new code.
	Obs obs.Observability
	// Trace, when non-nil, records activations, control packets and
	// hand-offs.
	//
	// Deprecated: set via Obs.Trace.
	Trace *trace.Tracer
	// Metrics, when non-nil, registers and updates the run's counters,
	// gauges and histograms (control packets by type, activations,
	// arrivals, network traffic) on the registry. Metrics never feed
	// back into the simulation: an instrumented run is event-for-event
	// identical to a bare one, and the snapshot of a seeded run is
	// itself deterministic.
	//
	// Deprecated: set via Obs.Metrics.
	Metrics *metrics.Registry
	// Spans, when non-nil, collects causal spans (handshake rounds,
	// confirmation waves, commits, hand-offs, streaming, leaf stalls)
	// with virtual-time timestamps. Like Metrics, span collection never
	// feeds back into the simulation, and because the DES is
	// single-threaded, span IDs are allocated in event order — the
	// trace of a seeded run is byte-identical across repetitions.
	//
	// Deprecated: set via Obs.Spans.
	Spans *span.Collector
	// SpanTrace is the trace (session) ID spans are recorded under.
	// Zero derives one from the seed.
	//
	// Deprecated: set via Obs.SpanTrace.
	SpanTrace span.TraceID
	// Flight, when non-nil, records every peer's engine event/effect
	// stream into per-peer flight rings with virtual-time stamps, for
	// topology forensics and sim-vs-live divergence diffing. Like Spans,
	// recording never feeds back into the simulation.
	//
	// Deprecated: set via Obs.Flight.
	Flight *flight.Set
}

// DataPlaneMode selects the data-plane simulation strategy.
type DataPlaneMode string

const (
	// PlanePacket schedules one DES event per data packet (the default).
	PlanePacket DataPlaneMode = "packet"
	// PlaneFluid evaluates per-flow packet counts in closed form.
	PlaneFluid DataPlaneMode = "fluid"
)

// fluid reports whether the run uses the flow-level data plane.
func (c *Config) fluid() bool { return c.DataPlane && c.PlaneMode == PlaneFluid }

// BurstParams parameterizes the per-channel Gilbert–Elliott loss model.
// The json tags shape the scenario stamp in experiment JSONL archives.
type BurstParams struct {
	PGoodToBad float64 `json:"p_good_to_bad"`
	PBadToGood float64 `json:"p_bad_to_good"`
	LossGood   float64 `json:"loss_good"`
	LossBad    float64 `json:"loss_bad"`
}

// DefaultConfig returns the paper's evaluation setting: n = 100 contents
// peers, reliable zero-loss links (§4 assumes 10 Gbps Ethernet), δ = 1
// time unit, content rate 1.
func DefaultConfig() Config {
	return Config{
		N:          100,
		H:          10,
		Rate:       1,
		Delta:      1,
		Jitter:     0.05,
		LeafShares: true,
		ContentLen: 100000,
		Loop:       true,
		Settle:     10,
		Window:     100,
		Seed:       1,
	}
}

func (c *Config) normalize() error {
	if c.N <= 0 {
		return fmt.Errorf("coord: N=%d must be positive", c.N)
	}
	if c.H <= 0 || c.H > c.N {
		return fmt.Errorf("coord: H=%d must be in 1..N=%d", c.H, c.N)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("coord: rate %v must be positive", c.Rate)
	}
	if c.Interval == 0 {
		c.Interval = c.H - 1
	}
	if c.Interval < 0 {
		return fmt.Errorf("coord: parity interval %d must be >= 0", c.Interval)
	}
	if c.Interval == 0 { // H == 1
		c.Interval = 1
	}
	if c.FirstFanout == 0 {
		c.FirstFanout = c.H
	}
	if c.DataPlane {
		if c.ContentLen <= 0 {
			return fmt.Errorf("coord: ContentLen %d must be positive with DataPlane", c.ContentLen)
		}
		if c.Window <= 0 {
			return fmt.Errorf("coord: Window %v must be positive with DataPlane", c.Window)
		}
	}
	switch c.PlaneMode {
	case "", PlanePacket:
		c.PlaneMode = PlanePacket
	case PlaneFluid:
		if !c.DataPlane {
			return fmt.Errorf("coord: PlaneMode fluid requires DataPlane")
		}
		if !c.Loop {
			return fmt.Errorf("coord: PlaneMode fluid requires Loop (steady-state streams)")
		}
		if c.TrackDelivery || c.Playback || c.Repair {
			return fmt.Errorf("coord: PlaneMode fluid models flow rates, not packet identities; TrackDelivery/Playback/Repair need the packet plane")
		}
		if c.LeafMaxRate > 0 {
			return fmt.Errorf("coord: PlaneMode fluid does not model the leaf buffer; LeafMaxRate needs the packet plane")
		}
		if c.Burst != nil {
			return fmt.Errorf("coord: PlaneMode fluid folds loss in as a thinning factor; Burst needs the packet plane")
		}
	default:
		return fmt.Errorf("coord: unknown PlaneMode %q (want %q or %q)", c.PlaneMode, PlanePacket, PlaneFluid)
	}
	if len(c.Bandwidths) > 0 {
		if len(c.Bandwidths) != c.N {
			return fmt.Errorf("coord: %d bandwidths for %d peers", len(c.Bandwidths), c.N)
		}
		for i, bw := range c.Bandwidths {
			if bw <= 0 {
				return fmt.Errorf("coord: bandwidth %v of peer %d must be positive", bw, i)
			}
		}
		if !c.LeafShares {
			return fmt.Errorf("coord: heterogeneous bandwidths require LeafShares")
		}
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	// Fold the consolidated observability bundle into the legacy
	// per-observer fields, which stay the internally-consumed ones.
	if c.Obs.Metrics != nil {
		c.Metrics = c.Obs.Metrics
	}
	if c.Obs.Trace != nil {
		c.Trace = c.Obs.Trace
	}
	if c.Obs.Spans != nil {
		c.Spans = c.Obs.Spans
	}
	if c.Obs.SpanTrace != 0 && c.SpanTrace == 0 {
		c.SpanTrace = c.Obs.SpanTrace
	}
	if c.Obs.Flight != nil {
		c.Flight = c.Obs.Flight
	}
	if c.Spans != nil && c.SpanTrace == 0 {
		c.SpanTrace = span.DeriveTrace(fmt.Sprintf("coord/seed=%d", c.Seed))
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 2*(c.Delta+c.Jitter) + 0.001
	}
	if c.HandshakeTimeout < 0 {
		return fmt.Errorf("coord: HandshakeTimeout %v must be positive", c.HandshakeTimeout)
	}
	if c.CommitRelease == 0 {
		c.CommitRelease = 4*(c.Delta+c.Jitter) + 0.001
	}
	if c.CommitRelease < 0 {
		return fmt.Errorf("coord: CommitRelease %v must be positive", c.CommitRelease)
	}
	if c.StatePeriod == 0 {
		c.StatePeriod = 2 * c.Delta
		if c.StatePeriod <= 0 {
			c.StatePeriod = 1 // δ = 0 (instantaneous links): any period works
		}
	}
	if c.StatePeriod < 0 {
		return fmt.Errorf("coord: StatePeriod %v must be positive", c.StatePeriod)
	}
	if c.StatePeriods == 0 {
		c.StatePeriods = 3
	}
	if c.Playback {
		c.TrackDelivery = true
		if !c.DataPlane {
			return fmt.Errorf("coord: Playback requires DataPlane")
		}
	}
	if c.Repair {
		c.TrackDelivery = true
		if !c.DataPlane {
			return fmt.Errorf("coord: Repair requires DataPlane")
		}
		if c.RepairInterval == 0 {
			c.RepairInterval = 5 * c.Delta
			if c.RepairInterval <= 0 {
				c.RepairInterval = 1
			}
		}
		if c.RepairInterval < 0 {
			return fmt.Errorf("coord: RepairInterval %v must be positive", c.RepairInterval)
		}
		if c.RepairMaxRounds == 0 {
			c.RepairMaxRounds = 20
		}
	}
	return nil
}

// Result carries the metrics of one run.
type Result struct {
	// Protocol is the protocol name.
	Protocol string
	// Rounds is the highest round number of any coordination message
	// sent — how many message rounds it takes until coordination
	// quiesces (Figures 10/11's "rounds").
	Rounds int
	// SyncRounds is the round at which the last peer activated.
	SyncRounds int
	// ControlPackets counts every coordination message: content requests,
	// control, confirmation and commit packets (Figures 10/11's
	// "number of control packets").
	ControlPackets int64
	// ActivePeers is how many contents peers ended up transmitting.
	ActivePeers int
	// SyncTime is the virtual time of the last activation.
	SyncTime float64
	// ReceiptRate is the measured leaf arrival rate divided by the
	// content rate τ (Figure 12's "receipt rate"; 1 = exactly the
	// content rate). Zero when the data plane is off.
	ReceiptRate float64
	// DataPackets / ParityPackets / DupPackets break down leaf arrivals
	// inside the measurement window.
	DataPackets, ParityPackets, DupPackets int64
	// Overruns counts packets the leaf dropped to buffer overrun.
	Overruns int64
	// DeliveredData is how many of the ContentLen data packets the leaf
	// holds after the run — received directly or recovered from parity
	// (TrackDelivery only).
	DeliveredData int64
	// RecoveredData is how many packets parity recovery derived
	// (TrackDelivery only).
	RecoveredData int64
	// StateMessages counts the AMS baseline's periodic state broadcasts
	// (already included in ControlPackets).
	StateMessages int64
	// Underruns counts playback deadlines missed at the leaf
	// (Playback only).
	Underruns int64
	// RepairRequests counts leaf-issued retransmission requests.
	RepairRequests int64
	// PeerSent[i] is how many data-plane packets contents peer i
	// transmitted over the whole run (data plane only) — the per-peer
	// load, proportional to bandwidth under the heterogeneous division.
	PeerSent []int64
	// PlaybackStart is when playout began (Playback only).
	PlaybackStart float64
	// Outcomes is the per-peer coordination outcome from the shared
	// engine — tree shape, assignment unions, retry/absorb counters —
	// for DCoP and TCoP runs (nil for the baselines). Indexed by peer.
	Outcomes []engine.Outcome
	// NetStats is the raw network counterset.
	NetStats simnet.Stats
}

// ---- messages ----------------------------------------------------------

// reqMsg is the leaf's content request c (§3.4 step 1).
type reqMsg struct {
	Rate     float64          // c.τ, the content rate
	Index    int              // which of the H initial divisions the recipient takes
	Selected []overlay.PeerID // initial selection when Config.LeafShares
	Round    int
	Span     span.Context // causal context (zero when tracing is off)
}

// ctlMsg, confirmMsg and commitMsg are the engine's wire vocabulary:
// the control packet c1, TCoP's confirmation cc1 and the commit c2 are
// defined once in internal/engine and aliased here so the simulator's
// codec-free messages are the engine's structs themselves.
type (
	ctlMsg     = engine.MsgControl
	confirmMsg = engine.MsgConfirm
	commitMsg  = engine.MsgCommit
)

// stateMsg is the broadcast baseline's group-communication state exchange.
type stateMsg struct {
	Peer  overlay.PeerID
	Round int
}

// prepMsg, ackMsg and startMsg implement the centralized 2PC-style
// baseline of [5]: controller → peers, peers → controller, controller →
// peers.
type prepMsg struct {
	Index int // division index assigned by the controller
	Round int
}
type ackMsg struct {
	Peer  overlay.PeerID
	Round int
}
type startMsg struct {
	Index int // division index, repeated so a lost prepMsg is harmless
	Round int
}

// dataMsg carries one content or parity packet to the leaf peer.
type dataMsg struct {
	Pkt seq.Packet
}

// repairMsg is the leaf's retransmission request for missing data
// packets (Config.Repair).
type repairMsg struct {
	Indices []int64
}

// ---- runner -------------------------------------------------------------

type protocolImpl interface {
	// start performs the leaf peer's step 1.
	start()
	// deliver handles a coordination message at contents peer p.
	deliver(p *peerNode, from simnet.NodeID, m simnet.Message)
}

type runner struct {
	cfg     Config
	eng     *des.Engine
	nw      *simnet.Network
	peers   []*peerNode
	leaf    *leafNode
	impl    protocolImpl
	content seq.Sequence

	res          Result
	met          coordMetrics
	enhanced     seq.Sequence // memoized Enhance(content, Interval)
	activeCount  int
	measureEv    [2]*des.Event
	measureDone  bool
	measureOpen  bool
	quiesceRound int

	// fl is the flow ledger of a fluid run (Config.PlaneMode); nil on
	// the packet plane. winStart/winEnd record when the measurement
	// window actually opened and closed, so the fluid result can
	// integrate arrivals over exactly the window the packet plane counts.
	fl               *fluid.Ledger
	winStart, winEnd float64

	// batchBuf is applyEffects' reusable worklist of effect batches.
	batchBuf [][]engine.Effect

	// Root "session" span (engine-backed protocols with Config.Spans).
	sessionSpan  span.SpanID
	sessionStart float64
}

// leafID returns the simnet node ID of the leaf peer.
func (r *runner) leafID() simnet.NodeID { return simnet.NodeID(r.cfg.N) }

// peerNode is the per-contents-peer state shared by all protocols. The
// DCoP/TCoP transition state lives in core (the shared engine); the
// node keeps only driver state — the transmitter, the view-independent
// bookkeeping the baselines use, and mirrors of the engine's outcome
// filled in after the run for the tests.
type peerNode struct {
	r      *runner
	id     overlay.PeerID
	view   overlay.View
	active bool
	depth  int // activation round
	tx     *transmitter

	// core is the peer's coordination state machine (DCoP/TCoP runs).
	core *engine.Peer
	// spans derives causal spans and latency observations from core's
	// event/effect stream; nil when both spans and metrics are off.
	spans *engine.SpanTracker
	// flight records core's event/effect stream; nil when recording is
	// off.
	flight *engine.FlightObserver

	// tcopCommitted/tcopConfirmed mirror the engine's outcome after the
	// run (tree well-formedness assertions in tests).
	tcopCommitted bool
	tcopConfirmed []overlay.PeerID

	// tcopFinal/tcopGen are a generic finalize-once/generation pair the
	// centralized baseline reuses for its commit-timeout guard.
	tcopFinal bool
	tcopGen   int

	// Centralized baseline state.
	prepIdx int

	// Broadcast baseline state.
	statesSeen int
}

func newRunner(cfg Config) (*runner, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eng := des.New(cfg.Seed)
	nw := simnet.New(eng)
	nw.SetDefaultLink(simnet.LinkParams{Latency: cfg.Delta, Jitter: cfg.Jitter, LossProb: cfg.LossProb})
	nw.Instrument(cfg.Metrics)
	r := &runner{cfg: cfg, eng: eng, nw: nw, met: newCoordMetrics(cfg.Metrics)}
	r.res.Protocol = "?"
	if cfg.fluid() {
		// The fluid plane never materializes the content: assignments are
		// rates, not sequences, which is what makes n = 10⁵ sweeps cheap.
		r.fl = fluid.NewLedger(cfg.N)
	} else if cfg.DataPlane {
		r.content = seq.Range(1, cfg.ContentLen)
	}
	if cfg.Burst != nil {
		cs := failure.NewChannelSet(cfg.Burst.PGoodToBad, cfg.Burst.PBadToGood,
			cfg.Burst.LossGood, cfg.Burst.LossBad, cfg.Seed+7919)
		nw.BurstLoss = cs.Hook
	}
	for i := 0; i < cfg.N; i++ {
		p := &peerNode{r: r, id: overlay.PeerID(i), view: overlay.NewView(cfg.N)}
		p.tx = newTransmitter(r, simnet.NodeID(i))
		r.peers = append(r.peers, p)
		nw.AttachFunc(simnet.NodeID(i), func(from simnet.NodeID, m simnet.Message) {
			if rm, ok := m.(repairMsg); ok {
				r.onRepair(p, rm)
				return
			}
			r.impl.deliver(p, from, m)
			// The message is fully consumed (the engine copies what it
			// keeps); pooled engine messages go back to their sender,
			// baseline value messages and reqMsg are no-ops.
			engine.ReleaseMsg(m)
		})
	}
	r.leaf = newLeaf(r)
	nw.Attach(r.leafID(), r.leaf)
	for _, cp := range cfg.CrashPeers {
		if cfg.CrashAt > 0 {
			cp := cp
			eng.At(cfg.CrashAt, func() {
				nw.Crash(simnet.NodeID(cp))
				if r.fl != nil {
					// The transmitter's slot grid keeps ticking, but the
					// network drops sends from a crashed node.
					r.fl.Mask(int(cp), eng.Now())
				}
				r.trace(int(cp), "crash", "crash-stop")
			})
		} else {
			nw.Crash(simnet.NodeID(cp))
		}
	}
	if cfg.Churn != nil {
		err := cfg.Churn.Install(nw, func(e failure.ChurnEvent) {
			what := "crash-stop"
			if e.Join {
				what = "rejoin"
			}
			if r.fl != nil {
				if e.Join {
					r.fl.Unmask(int(e.Peer), eng.Now())
				} else {
					r.fl.Mask(int(e.Peer), eng.Now())
				}
			}
			r.trace(int(e.Peer), "churn", what)
		})
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

// sendCtl transmits a coordination message and accounts for it.
func (r *runner) sendCtl(from, to simnet.NodeID, m simnet.Message, round int) {
	r.res.ControlPackets++
	r.met.ctl[ctlTypeName(m)].Inc()
	if round > r.res.Rounds {
		r.res.Rounds = round
		r.met.rounds.Set(float64(round))
	}
	r.trace(int(from), "control", "%T to %d (round %d)", m, to, round)
	r.nw.Send(from, to, m)
}

// trace records an event when tracing is enabled.
func (r *runner) trace(node int, kind, format string, args ...any) {
	if r.cfg.Trace != nil {
		r.cfg.Trace.Record(r.eng.Now(), node, kind, format, args...)
	}
}

// activate marks peer p active at the given round and (data plane)
// installs its first stream.
func (p *peerNode) activate(round int, s seq.Sequence, rate float64) {
	wasActive := p.active
	p.active = true
	if round > p.depth {
		p.depth = round
	}
	if !wasActive {
		p.r.activeCount++
		if round > p.r.res.SyncRounds {
			p.r.res.SyncRounds = round
			p.r.met.syncRounds.Set(float64(round))
		}
		p.r.res.SyncTime = p.r.eng.Now()
		p.r.res.ActivePeers = p.r.activeCount
		p.r.met.activations.Inc()
		p.r.met.activePeers.Set(float64(p.r.activeCount))
		p.r.met.activationRound.Observe(float64(round))
		p.r.trace(int(p.id), "activate", "round %d, rate %.4f, %d packets", round, rate, len(s))
		p.r.scheduleMeasurement()
	}
	if p.r.cfg.DataPlane {
		if wasActive {
			p.tx.merge(s, rate)
		} else {
			p.tx.assign(s, rate)
		}
	} else if !wasActive {
		// Rate bookkeeping still matters for SEQ estimation.
		p.tx.rate = rate
		p.tx.startedAt = p.r.eng.Now()
	}
}

// scheduleMeasurement (re)schedules the receipt-rate window after the most
// recent activation.
func (r *runner) scheduleMeasurement() {
	if !r.cfg.DataPlane || r.measureDone {
		return
	}
	for _, ev := range r.measureEv {
		if ev != nil {
			ev.Cancel()
		}
	}
	r.measureOpen = false
	r.measureEv[0] = r.eng.After(r.cfg.Settle, func() {
		r.measureOpen = true
		r.winStart = r.eng.Now()
		r.leaf.resetWindow()
	})
	r.measureEv[1] = r.eng.After(r.cfg.Settle+r.cfg.Window, func() {
		r.measureOpen = false
		r.measureDone = true
		r.winEnd = r.eng.Now()
		r.leaf.closeWindow()
	})
}

// onRepair retransmits the requested content packets to the leaf. For
// engine-backed runs (DCoP/TCoP) the decision routes through the state
// machine; the baselines serve directly.
func (r *runner) onRepair(p *peerNode, m repairMsg) {
	if p.core != nil {
		r.dispatch(p, &engine.Repair{Indices: m.Indices})
		return
	}
	r.serveRepair(p, m.Indices)
}

// serveRepair retransmits the listed content packets to the leaf.
func (r *runner) serveRepair(p *peerNode, indices []int64) {
	for _, k := range indices {
		if k >= 1 && k <= r.cfg.ContentLen {
			r.nw.Send(simnet.NodeID(p.id), r.leafID(), dataMsg{Pkt: seq.NewData(k)})
		}
	}
}

// run executes the protocol to completion and returns the metrics.
func (r *runner) run() Result {
	if r.cfg.Repair {
		r.eng.After(r.cfg.RepairInterval, r.leaf.repairCheck)
	}
	r.impl.start()
	if !r.cfg.DataPlane || !r.cfg.Loop {
		// Finite run: execute to quiescence (transmitters exhaust their
		// streams when Loop is off).
		r.eng.Run()
	} else {
		// Steady-state run: stop once the measurement window has closed
		// (or, if no peer ever activates, when everything quiesces).
		for !r.measureDone && r.eng.Step() {
		}
	}
	r.res.NetStats = r.nw.Stats()
	r.closeSpans()
	r.mirrorOutcomes()
	if r.fl != nil {
		now := r.eng.Now()
		r.res.PeerSent = make([]int64, r.cfg.N)
		var total int64
		for i := range r.peers {
			n := r.fl.Sends(i, now)
			r.res.PeerSent[i] = n
			total += n
		}
		r.met.dataSent.Add(total)
	} else if r.cfg.DataPlane {
		r.res.PeerSent = make([]int64, r.cfg.N)
		for i, p := range r.peers {
			r.res.PeerSent[i] = p.tx.sentTotal
		}
	}
	if r.cfg.TrackDelivery && r.leaf.recov != nil {
		// Every data key the recoverer holds is a content index in
		// 1..ContentLen (transmitters and repair only emit those), so the
		// counter equals the per-index scan it replaces.
		r.res.DeliveredData = int64(r.leaf.recov.DataPresent())
		r.res.RecoveredData = int64(r.leaf.recov.Recovered())
	}
	if r.fl != nil {
		if r.measureDone && r.cfg.Window > 0 {
			// Expected arrivals over the same window the packet plane
			// counts: each send arrives one mean latency later, and
			// Bernoulli loss thins the flow. The data/parity/dup breakdown
			// needs packet identities and stays zero on the fluid plane.
			arr := r.fl.Arrivals(r.winStart, r.winEnd, r.cfg.Delta+r.cfg.Jitter/2, 1-r.cfg.LossProb)
			r.res.ReceiptRate = arr / r.cfg.Window / r.cfg.Rate
		}
	} else if r.cfg.DataPlane && r.measureDone && r.cfg.Window > 0 {
		r.res.ReceiptRate = float64(r.leaf.winTotal) / r.cfg.Window / r.cfg.Rate
		r.res.DataPackets = r.leaf.winData
		r.res.ParityPackets = r.leaf.winParity
		r.res.DupPackets = r.leaf.winDup
		r.res.Overruns = r.leaf.overruns
	}
	return r.res
}

// closeSpans finishes every peer's long-lived spans and the root
// session span at the end of the run.
func (r *runner) closeSpans() {
	now := r.eng.Now()
	for _, p := range r.peers {
		p.spans.Finish(now)
	}
	if r.cfg.Spans != nil && r.sessionSpan != 0 {
		r.cfg.Spans.Add(span.Span{
			Trace: r.cfg.SpanTrace, ID: r.sessionSpan,
			Name: "session", Peer: -1, Start: r.sessionStart, End: now,
		})
	}
}

// Run executes the named protocol under cfg and returns its metrics.
func Run(proto Protocol, cfg Config) (Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	switch proto {
	case DCoP:
		r.impl = &dcop{r: r}
	case TCoP:
		r.impl = &tcop{r: r}
	case Broadcast:
		r.impl = &broadcast{r: r}
	case Unicast:
		r.impl = &unicast{r: r}
	case Centralized:
		r.impl = &centralized{r: r}
	case AMS:
		r.impl = &ams{r: r}
	default:
		return Result{}, fmt.Errorf("coord: unknown protocol %q", proto)
	}
	r.res.Protocol = proto
	return r.run(), nil
}

// ---- helpers shared by the protocols ------------------------------------

// initialAssignment computes the stream of the idx-th (0-based) of the H
// peers the leaf selected: Div(Esq(pkt, h), H, CP_i) at rate τ(h+1)/(hH).
// With heterogeneous bandwidths configured (and the selection shared),
// the division instead uses §2's time-slot allocation so faster peers
// carry proportionally more packets.
func (r *runner) initialAssignment(idx int, selected []overlay.PeerID) (seq.Sequence, float64) {
	if len(r.cfg.Bandwidths) > 0 && len(selected) > 0 {
		return r.heterogeneousAssignment(idx, selected)
	}
	rate := parity.PerPeerRate(r.cfg.Rate, r.cfg.Interval, r.cfg.H)
	if !r.cfg.DataPlane || r.cfg.fluid() {
		return nil, rate
	}
	return seq.Div(r.enhancedContent(), r.cfg.H, idx), rate
}

// heterogeneousAssignment allocates the enhanced sequence across the
// selected peers' channels with the §2 slot algorithm; peer rates are
// proportional to bandwidth.
func (r *runner) heterogeneousAssignment(idx int, selected []overlay.PeerID) (seq.Sequence, float64) {
	var total float64
	chans := make([]schedule.Channel, len(selected))
	for i, p := range selected {
		bw := r.cfg.Bandwidths[p]
		total += bw
		chans[i] = schedule.Channel{ID: i, SlotLen: schedule.SlotLenFromBandwidth(bw)}
	}
	share := r.cfg.Bandwidths[selected[idx]] / total
	rate := parity.ReceiptRate(r.cfg.Rate, r.cfg.Interval) * share
	if !r.cfg.DataPlane || r.cfg.fluid() {
		return nil, rate
	}
	e := r.enhancedContent()
	al := schedule.Allocate(len(e), chans)
	positions := al.PerChannel[idx]
	out := make(seq.Sequence, len(positions))
	for i, k := range positions {
		out[i] = e[k-1] // Allocate numbers packets 1..l
	}
	return out, rate
}

// enhancedContent memoizes Esq(content, Interval).
func (r *runner) enhancedContent() seq.Sequence {
	if r.enhanced == nil && r.content != nil {
		r.enhanced = parity.Enhance(r.content, r.cfg.Interval)
	}
	return r.enhanced
}

// perPeerRateAll is the rate of a 1/n division: τ(h+1)/(h·n).
func (r *runner) perPeerRateAll() float64 {
	return parity.PerPeerRate(r.cfg.Rate, r.cfg.Interval, r.cfg.N)
}

// shareOut and markOffset are the §3.3 hand-off algebra, now owned by
// the shared engine; the wrappers remain for the baselines (unicast's
// chain handover) and the algebra tests.
func shareOut(ps seq.Sequence, mark int, parentRate float64, p, k int) ([]seq.Sequence, float64) {
	return engine.ShareOut(ps, mark, parentRate, p, k)
}

func markOffset(sentOffset int, delta, rate float64) int {
	return engine.MarkOffset(sentOffset, delta, rate)
}

// currentOffset estimates how many packets a transmitter has sent, for
// filling c.SEQ when the data plane is off.
func (tx *transmitter) currentOffset() int {
	if tx.r.cfg.DataPlane && !tx.r.cfg.fluid() {
		return tx.pos
	}
	// Control-plane-only and fluid runs estimate the offset from the rate
	// — there is no per-packet position to read. The offset only fills
	// c.SEQ in outgoing controls; no protocol decision branches on it.
	return int((tx.r.eng.Now() - tx.startedAt) * tx.rate)
}

// viewMembers converts a view to the member list carried in messages.
func viewMembers(v overlay.View) []overlay.PeerID { return v.Members() }
