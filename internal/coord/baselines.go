package coord

import (
	"p2pmss/internal/parity"
	"p2pmss/internal/seq"
	"p2pmss/internal/simnet"
)

// broadcast implements the first baseline of §3.1: the leaf peer
// broadcasts the content request to all n contents peers; every peer
// immediately starts transmitting the whole enhanced sequence (maximally
// redundant — the leaf may overrun its buffer), while exchanging state
// control packets with every other peer in a simple group communication.
// Once a peer has heard from all others it switches to its 1/n division.
type broadcast struct {
	r *runner
}

func (b *broadcast) start() {
	r := b.r
	for i := 0; i < r.cfg.N; i++ {
		r.sendCtl(r.leafID(), simnet.NodeID(i), reqMsg{Rate: r.cfg.Rate, Index: i, Round: 1}, 1)
	}
}

func (b *broadcast) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		b.onRequest(p, msg)
	case stateMsg:
		b.onState(p, msg)
	}
}

func (b *broadcast) onRequest(p *peerNode, m reqMsg) {
	r := b.r
	p.view.Add(p.id)
	var full seq.Sequence
	rate := parity.ReceiptRate(r.cfg.Rate, r.cfg.Interval)
	if r.cfg.DataPlane {
		full = r.enhancedContent()
	}
	p.activate(m.Round, full, rate)
	// Group communication: one state control packet to every other peer.
	for j := 0; j < r.cfg.N; j++ {
		if j != int(p.id) {
			r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(j), stateMsg{Peer: p.id, Round: m.Round + 1}, m.Round+1)
		}
	}
}

func (b *broadcast) onState(p *peerNode, m stateMsg) {
	r := b.r
	p.view.Add(m.Peer)
	p.statesSeen++
	if p.statesSeen != r.cfg.N-1 {
		return
	}
	// Heard from everyone: converge to the 1/n division by peer rank.
	var part seq.Sequence
	if r.cfg.DataPlane {
		part = seq.Div(r.enhancedContent(), r.cfg.N, int(p.id))
	}
	p.tx.assign(part, r.perPeerRateAll())
}

// unicast implements the second baseline of §3.1: the leaf peer sends the
// content request to CP_0 only; each peer, after starting, informs the
// next peer, handing over half of its remaining schedule. Minimum
// redundancy (no re-enhancement — the chain merely partitions the stream),
// but it takes n rounds for all contents peers to synchronize.
type unicast struct {
	r *runner
}

func (u *unicast) start() {
	r := u.r
	r.sendCtl(r.leafID(), simnet.NodeID(0), reqMsg{Rate: r.cfg.Rate, Index: 0, Round: 1}, 1)
}

func (u *unicast) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		u.onRequest(p, msg)
	case ctlMsg:
		u.onControl(p, msg)
	}
}

func (u *unicast) onRequest(p *peerNode, m reqMsg) {
	r := u.r
	p.view.Add(p.id)
	var full seq.Sequence
	if r.cfg.DataPlane {
		full = r.enhancedContent()
	}
	p.activate(m.Round, full, parity.ReceiptRate(r.cfg.Rate, r.cfg.Interval))
	u.forward(p, m.Round+1)
}

func (u *unicast) onControl(p *peerNode, m ctlMsg) {
	p.view.Add(p.id)
	p.view.Add(m.Parent)
	p.activate(m.Round, m.AssignedSeq, m.ChildRate)
	u.forward(p, m.Round+1)
}

// forward hands half of p's remaining stream to the next peer in the
// chain. shareOut is called with interval 0: plain division, no added
// parity (minimum redundancy).
func (u *unicast) forward(p *peerNode, round int) {
	r := u.r
	next := int(p.id) + 1
	if next >= r.cfg.N {
		return
	}
	offset := p.tx.currentOffset()
	mark := markOffset(offset, r.cfg.Delta, p.tx.rate)
	parts, rate := shareOut(p.tx.s, mark, p.tx.rate, 0, 2)
	msg := ctlMsg{
		Parent:    p.id,
		SeqOffset: offset,
		Rate:      p.tx.rate,
		ChildRate: rate,
		Children:  1,
		ChildIdx:  1,
		Round:     round,
	}
	if parts != nil {
		msg.AssignedSeq = parts[1]
	}
	r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(next), msg, round)
	keep, given := splitParts(parts)
	p.tx.planShare(keep, given, p.tx.rate, rate, r.cfg.Delta)
}

// centralized implements the 2PC-style controller protocol of reference
// [5] (Itaya et al., ISM'05): the leaf asks one controller peer, which
// runs a prepare/ack/start exchange with every other contents peer — "at
// least three rounds to synchronize" (§1) — after which all n peers start
// transmitting their 1/n divisions simultaneously.
type centralized struct {
	r *runner
}

func (c *centralized) start() {
	r := c.r
	r.sendCtl(r.leafID(), simnet.NodeID(0), reqMsg{Rate: r.cfg.Rate, Index: 0, Round: 1}, 1)
}

func (c *centralized) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		c.onRequest(p, msg)
	case prepMsg:
		c.onPrep(p, msg)
	case ackMsg:
		c.onAck(p, msg)
	case startMsg:
		c.onStart(p, msg)
	}
}

func (c *centralized) onRequest(p *peerNode, m reqMsg) {
	r := c.r
	p.view.Add(p.id)
	for j := 1; j < r.cfg.N; j++ {
		r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(j), prepMsg{Index: j, Round: m.Round + 1}, m.Round+1)
	}
	if r.cfg.N == 1 {
		c.activateDivision(p, 0, m.Round)
		return
	}
	// Loss guard: commit with whoever acked after a round-trip budget.
	gen := p.tcopGen
	r.eng.After(2*(r.cfg.Delta+r.cfg.Jitter)+0.001, func() {
		if p.tcopGen == gen {
			c.commit(p, m.Round+3)
		}
	})
}

func (c *centralized) onPrep(p *peerNode, m prepMsg) {
	p.prepIdx = m.Index
	c.r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(0), ackMsg{Peer: p.id, Round: m.Round + 1}, m.Round+1)
}

func (c *centralized) onAck(p *peerNode, m ackMsg) {
	p.statesSeen++
	if p.statesSeen == c.r.cfg.N-1 {
		c.commit(p, m.Round+1)
	}
}

// commit is the controller's final round: tell every peer to start, then
// start itself.
func (c *centralized) commit(p *peerNode, round int) {
	if p.tcopFinal {
		return
	}
	p.tcopFinal = true
	p.tcopGen++
	r := c.r
	for j := 1; j < r.cfg.N; j++ {
		r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(j), startMsg{Index: j, Round: round}, round)
	}
	c.activateDivision(p, 0, round)
}

func (c *centralized) onStart(p *peerNode, m startMsg) {
	if p.active {
		return
	}
	c.activateDivision(p, m.Index, m.Round)
}

func (c *centralized) activateDivision(p *peerNode, idx, round int) {
	r := c.r
	var part seq.Sequence
	if r.cfg.DataPlane {
		part = seq.Div(r.enhancedContent(), r.cfg.N, idx)
	}
	p.activate(round, part, r.perPeerRateAll())
}
