package coord

import (
	"p2pmss/internal/groupcomm"
	"p2pmss/internal/overlay"
	"p2pmss/internal/seq"
	"p2pmss/internal/simnet"
)

// ams implements the asynchronous multi-source streaming model of the
// paper's precursors [3–5] (§1): every contents peer asynchronously
// starts transmitting its pre-agreed division as soon as the leaf's
// request arrives, and periodically exchanges state information with all
// the other contents peers through a causally ordering group
// communication protocol (reference [10], internal/groupcomm).
//
// The paper's critique — "the large communication overhead is implied
// since every contents peer sends state information to all the contents
// peers" — is directly measurable here: AMS costs n(n−1) control packets
// per state period, against DCoP's one-shot flooding.
type ams struct {
	r     *runner
	procs []*groupcomm.Process
}

// amsState is the state information a peer broadcasts: which packet it
// has most recently sent at what rate (§3.1's control packet content).
type amsState struct {
	Offset int
	Rate   float64
}

// amsMsg wraps a causal broadcast on the wire.
type amsMsg struct {
	M     groupcomm.Message
	Round int
}

func (a *ams) start() {
	r := a.r
	a.procs = make([]*groupcomm.Process, r.cfg.N)
	for i := 0; i < r.cfg.N; i++ {
		a.procs[i] = groupcomm.NewProcess(i, r.cfg.N, nil)
	}
	for i := 0; i < r.cfg.N; i++ {
		r.sendCtl(r.leafID(), simnet.NodeID(i), reqMsg{Rate: r.cfg.Rate, Index: i, Round: 1}, 1)
	}
}

func (a *ams) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		a.onRequest(p, msg)
	case amsMsg:
		a.onState(p, msg)
	}
}

func (a *ams) onRequest(p *peerNode, m reqMsg) {
	r := a.r
	p.view.Add(p.id)
	// Asynchronous start: the division by peer rank is pre-agreed, so no
	// coordination precedes transmission.
	var part seq.Sequence
	if r.cfg.DataPlane {
		part = seq.Div(r.enhancedContent(), r.cfg.N, int(p.id))
	}
	p.activate(m.Round, part, r.perPeerRateAll())
	// Periodic state exchange through the causal broadcast substrate.
	a.broadcastState(p, 1)
}

func (a *ams) broadcastState(p *peerNode, period int) {
	r := a.r
	proc := a.procs[p.id]
	gm := proc.Send(amsState{Offset: p.tx.currentOffset(), Rate: p.tx.rate})
	round := 1 + period
	for j := 0; j < r.cfg.N; j++ {
		if j != int(p.id) {
			r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(j), amsMsg{M: gm, Round: round}, round)
		}
	}
	r.res.StateMessages += int64(r.cfg.N - 1)
	if period < r.cfg.StatePeriods {
		r.eng.After(r.cfg.StatePeriod, func() {
			if !r.nw.Crashed(simnet.NodeID(p.id)) {
				a.broadcastState(p, period+1)
			}
		})
	}
}

func (a *ams) onState(p *peerNode, m amsMsg) {
	// Causal delivery: the groupcomm process buffers out-of-order state.
	if err := a.procs[p.id].Receive(m.M); err != nil {
		return
	}
	p.view.Add(overlay.PeerID(m.M.From))
}
