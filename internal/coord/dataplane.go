package coord

import (
	"fmt"
	"slices"

	"p2pmss/internal/des"
	"p2pmss/internal/parity"
	"p2pmss/internal/seq"
	"p2pmss/internal/simnet"
	"p2pmss/internal/span"
)

// transmitter is a contents peer's data-plane sender: it transmits the
// packets of its assigned subsequence to the leaf peer at its assigned
// rate, one packet per time slot (§2's slot model: slot length = 1/rate).
type transmitter struct {
	r    *runner
	node simnet.NodeID

	s    seq.Sequence
	rate float64
	pos  int
	gen  int
	ev   *des.Event

	startedAt float64 // activation time (control-plane-only bookkeeping)
	sentTotal int64
}

func newTransmitter(r *runner, node simnet.NodeID) *transmitter {
	return &transmitter{r: r, node: node}
}

// assign replaces the transmitter's stream and rate. On the fluid plane
// the sequence is always nil and the assignment routes to the ledger.
func (tx *transmitter) assign(s seq.Sequence, rate float64) {
	if tx.r.cfg.fluid() {
		tx.fluidAssign(rate)
		return
	}
	tx.gen++
	if tx.ev != nil {
		tx.ev.Cancel()
		tx.ev = nil
	}
	tx.s, tx.rate, tx.pos = s, rate, 0
	tx.startedAt = tx.r.eng.Now()
	if rate <= 0 || len(s) == 0 {
		return
	}
	// Randomize the phase of the first slot so that steady-state rate
	// measurements see each stream's average rate even when the window is
	// shorter than the slot length (sending early is harmless — the
	// packets are this peer's own share).
	gen := tx.gen
	tx.ev = tx.r.eng.After(tx.r.eng.Rand().Float64()/tx.rate, func() {
		if gen != tx.gen {
			return
		}
		tx.sendNext()
		if tx.pos < len(tx.s) || tx.r.cfg.Loop {
			tx.schedule()
		}
	})
}

// fluidAssign is assign on the fluid plane: no sequence, no per-packet
// events — the flow ledger records a new slot grid. The first-slot
// phase draw mirrors the packet plane's, so a fluid run consumes
// eng.Rand() at exactly the same points and (at zero jitter and loss)
// replays the identical control trajectory.
func (tx *transmitter) fluidAssign(rate float64) {
	now := tx.r.eng.Now()
	tx.rate, tx.startedAt = rate, now
	if rate <= 0 {
		tx.r.fl.Cut(int(tx.node), now)
		return
	}
	phase := tx.r.eng.Rand().Float64() / rate
	tx.r.fl.Start(int(tx.node), now, phase, 1/rate)
}

// merge unions an additional subsequence into the not-yet-sent remainder
// (DCoP's pkt_i := pkt_i ∪ pkt_ji for redundantly selected peers) and adds
// the new stream's rate.
func (tx *transmitter) merge(s seq.Sequence, rate float64) {
	var remaining seq.Sequence
	if tx.pos < len(tx.s) {
		remaining = tx.s[tx.pos:]
	}
	merged := seq.Union(remaining.Clone(), s)
	tx.assign(merged, tx.rate+rate)
}

// planShare schedules the parent's switch to its own share δ time units
// from now (§3.3: "the parent also changes the packet subsequence to
// pkt_jj and the rate … on δ time units after CP_j sends the control
// packet"). Rather than wholesale replacement, the switch subtracts the
// packets given to children and unions in the parent's own share, so it
// composes with assignments merged from other parents in the meantime —
// otherwise the parent would keep retransmitting its entire delegated
// subtree (massive duplication) or drop merged assignments (gaps).
func (tx *transmitter) planShare(keep seq.Sequence, given []seq.Sequence, oldRate, newRate, delta float64) {
	if tx.r.cfg.fluid() {
		// Same δ-deferred switch, same rate algebra, and the reassignment
		// draws its phase exactly where the packet plane's assign would.
		tx.r.eng.After(delta, func() {
			rate := tx.rate - oldRate + newRate
			if rate <= 0 {
				rate = newRate
			}
			tx.fluidAssign(rate)
		})
		return
	}
	if tx.s == nil {
		// Control-plane-only mode: just record the rate change.
		tx.r.eng.After(delta, func() {
			r := tx.rate - oldRate + newRate
			if r <= 0 {
				r = newRate
			}
			tx.rate = r
		})
		return
	}
	givenKeys := make(map[string]bool)
	for _, g := range given {
		for _, p := range g {
			givenKeys[p.Key()] = true
		}
	}
	tx.r.eng.After(delta, func() {
		var rest seq.Sequence
		if tx.pos < len(tx.s) {
			for _, p := range tx.s[tx.pos:] {
				if !givenKeys[p.Key()] {
					rest = append(rest, p)
				}
			}
		}
		rate := tx.rate - oldRate + newRate
		if rate <= 0 {
			rate = newRate
		}
		tx.assign(seq.Union(rest, keep), rate)
	})
}

func (tx *transmitter) schedule() {
	gen := tx.gen
	tx.ev = tx.r.eng.After(1/tx.rate, func() {
		if gen != tx.gen {
			return
		}
		tx.sendNext()
		if tx.pos < len(tx.s) || tx.r.cfg.Loop {
			tx.schedule()
		}
	})
}

func (tx *transmitter) sendNext() {
	if tx.pos >= len(tx.s) {
		if !tx.r.cfg.Loop || len(tx.s) == 0 {
			return
		}
		tx.pos = 0
	}
	pkt := tx.s[tx.pos]
	tx.pos++
	tx.sentTotal++
	tx.r.met.dataSent.Inc()
	tx.r.nw.Send(tx.node, tx.r.leafID(), dataMsg{Pkt: pkt})
}

// leafNode is the leaf peer LP_s: it receives data packets, enforces its
// maximum receipt rate ρ_s with a drain-at-ρ buffer (§3.1's buffer
// overrun), deduplicates, and measures arrival rate inside the
// experiment's window.
type leafNode struct {
	r     *runner
	seen  map[string]int
	recov *parity.Recoverer // non-nil when Config.TrackDelivery

	// Totals over the whole run.
	total, dup int64
	overruns   int64

	// Buffer model (active when cfg.LeafMaxRate > 0).
	bufLevel  float64
	lastDrain float64

	// Window counters.
	winTotal, winData, winParity, winDup int64

	// Playback model (Config.Playback): consumption of data packets in
	// content order at the content rate, starting PlaybackDelay after
	// the first arrival.
	playbackScheduled bool
	nextConsume       int64

	// Repair loop state (Config.Repair).
	lastProgress int64
	repairRounds int
	quietChecks  int
	// lastArrivalAt is the virtual time of the most recent arrival, for
	// stall-duration observability.
	lastArrivalAt float64
	// missing tracks the not-yet-present content indices incrementally
	// off the recoverer, so a repair check costs O(|missing|) instead of
	// rescanning all ContentLen indices every interval.
	missing map[int64]struct{}
}

func newLeaf(r *runner) *leafNode {
	l := &leafNode{r: r, seen: make(map[string]int)}
	if r.cfg.TrackDelivery {
		l.recov = parity.NewRecoverer()
	}
	if r.cfg.Repair {
		// Seed lastProgress so that even after the bounded quiet-period
		// checks in repairCheck are exhausted, the first fall-through
		// records progress (-1 never equals Present()) instead of burning
		// a repair round on a spurious request.
		l.lastProgress = -1
		l.missing = make(map[int64]struct{}, r.cfg.ContentLen)
		for k := int64(1); k <= r.cfg.ContentLen; k++ {
			l.missing[k] = struct{}{}
		}
		l.recov.OnData(func(k int64) { delete(l.missing, k) })
	}
	return l
}

// Receive implements simnet.Handler for data packets; coordination
// messages addressed to the leaf (TCoP confirmations are peer→peer, so
// none today) are ignored.
func (l *leafNode) Receive(from simnet.NodeID, m simnet.Message) {
	dm, ok := m.(dataMsg)
	if !ok {
		return
	}
	now := l.r.eng.Now()
	if l.r.cfg.LeafMaxRate > 0 {
		l.bufLevel -= (now - l.lastDrain) * l.r.cfg.LeafMaxRate
		if l.bufLevel < 0 {
			l.bufLevel = 0
		}
		l.lastDrain = now
		if l.bufLevel >= float64(l.r.cfg.LeafBuffer) {
			l.overruns++
			l.r.met.overruns.Inc()
			return // buffer overrun: the packet is lost (§3.1)
		}
		l.bufLevel++
	}
	l.total++
	if l.total == 1 {
		// Time-to-first-packet: coordination starts at virtual time 0,
		// so the first arrival's timestamp is the startup delay.
		l.r.met.timeToFirstPacket.Observe(now)
		if l.r.cfg.Spans != nil {
			l.r.cfg.Spans.Add(span.Span{
				Trace: l.r.cfg.SpanTrace, ID: l.r.cfg.Spans.NextID(),
				Parent: l.r.sessionSpan, Name: "first_packet",
				Peer: -1, Start: now, End: now,
			})
		}
	}
	l.lastArrivalAt = now
	if l.recov != nil {
		before := l.recov.Recovered()
		l.recov.Add(dm.Pkt)
		if d := l.recov.Recovered() - before; d > 0 {
			l.r.met.recovered.Add(int64(d))
		}
		l.r.met.delivered.Set(float64(l.recov.DataPresent()))
	}
	key := dm.Pkt.Key()
	l.seen[key]++
	isDup := l.seen[key] > 1
	if isDup {
		l.dup++
		l.r.met.arrivalsDup.Inc()
	} else if dm.Pkt.IsData() {
		l.r.met.arrivalsData.Inc()
	} else {
		l.r.met.arrivalsParity.Inc()
	}
	if l.r.measureOpen {
		l.winTotal++
		if isDup {
			l.winDup++
		} else if dm.Pkt.IsData() {
			l.winData++
		} else {
			l.winParity++
		}
	}
	if l.r.cfg.Playback && !l.playbackScheduled {
		l.playbackScheduled = true
		l.nextConsume = 1
		start := now + l.r.cfg.PlaybackDelay
		l.r.res.PlaybackStart = start
		l.r.eng.At(start, l.consume)
	}
}

// consume plays out the next data packet: it must be present (received
// or parity-recovered) by its deadline, else an underrun is counted and
// the packet is skipped — the §1 real-time constraint.
func (l *leafNode) consume() {
	k := l.nextConsume
	if k > l.r.cfg.ContentLen {
		return // playout finished
	}
	if !l.recov.HasData(k) {
		l.r.res.Underruns++
		l.r.met.underruns.Inc()
	}
	l.nextConsume++
	l.r.eng.After(1/l.r.cfg.Rate, l.consume)
}

func (l *leafNode) resetWindow() {
	l.winTotal, l.winData, l.winParity, l.winDup = 0, 0, 0, 0
}

func (l *leafNode) closeWindow() {}

// splitParts separates a shareOut result into the parent's own share and
// the children's shares; both are nil in control-plane-only mode.
func splitParts(parts []seq.Sequence) (keep seq.Sequence, given []seq.Sequence) {
	if len(parts) == 0 {
		return nil, nil
	}
	return parts[0], parts[1:]
}

// repairCheck implements the leaf-driven repair loop (Config.Repair):
// when no new data packet has arrived for a full interval and the
// content is incomplete, the leaf asks a random live peer to retransmit
// the missing packets.
func (l *leafNode) repairCheck() {
	r := l.r
	if len(l.missing) == 0 || l.repairRounds >= r.cfg.RepairMaxRounds {
		return // complete, or giving up
	}
	if l.recov.Present() == 0 && l.quietChecks < r.cfg.RepairMaxRounds {
		// Nothing has arrived yet: coordination and the first transmission
		// slot are still in flight, so a flat counter is a quiet period,
		// not a stall. Bounded by RepairMaxRounds so a run where no packet
		// ever arrives still falls through to the stall path below (and
		// repair, then give-up) instead of rescheduling forever.
		l.quietChecks++
		r.eng.After(r.cfg.RepairInterval, l.repairCheck)
		return
	}
	if cur := int64(l.recov.Present()); cur != l.lastProgress {
		l.lastProgress = cur
		r.eng.After(r.cfg.RepairInterval, l.repairCheck)
		return // still flowing; check again later
	}
	l.repairRounds++
	missing := l.missingData()
	const batch = 64
	if len(missing) > batch {
		missing = missing[:batch]
	}
	// Delivery stalled: record how long the leaf has been starved and
	// open a repair wave in the trace.
	now := r.eng.Now()
	r.met.stallDuration.Observe(now - l.lastArrivalAt)
	if r.cfg.Spans != nil {
		r.cfg.Spans.Add(span.Span{
			Trace: r.cfg.SpanTrace, ID: r.cfg.Spans.NextID(),
			Parent: r.sessionSpan, Name: "stall", Peer: -1,
			Start: l.lastArrivalAt, End: now,
			Detail: fmt.Sprintf("%d missing", len(l.missing)),
		})
	}
	// Pick a random live peer to serve the repair.
	alive := make([]simnet.NodeID, 0, r.cfg.N)
	for i := 0; i < r.cfg.N; i++ {
		if !r.nw.Crashed(simnet.NodeID(i)) {
			alive = append(alive, simnet.NodeID(i))
		}
	}
	if len(alive) == 0 {
		return
	}
	target := alive[r.eng.Rand().Intn(len(alive))]
	r.res.RepairRequests++
	r.met.repairRequests.Inc()
	r.trace(-1, "repair", "%d missing, asking node %d", len(missing), target)
	r.nw.Send(r.leafID(), target, repairMsg{Indices: missing})
	r.eng.After(r.cfg.RepairInterval, l.repairCheck)
}

// missingData lists the content indices not yet present, in order. It
// reads the incrementally maintained missing set rather than probing
// every index of the content.
func (l *leafNode) missingData() []int64 {
	out := make([]int64, 0, len(l.missing))
	for k := range l.missing {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
