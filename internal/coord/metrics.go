package coord

import (
	"p2pmss/internal/metrics"
	"p2pmss/internal/simnet"
)

// coordMetrics holds the runner's instrument handles, looked up once at
// construction so the data plane pays one atomic per event. The zero
// value (all nil) is the disabled state: every increment no-ops, which
// is what a run without Config.Metrics uses.
type coordMetrics struct {
	rounds, syncRounds, activePeers *metrics.Gauge
	activations                     *metrics.Counter
	activationRound                 *metrics.Histogram
	ctl                             map[string]*metrics.Counter
	dataSent                        *metrics.Counter
	arrivalsData, arrivalsParity    *metrics.Counter
	arrivalsDup, overruns           *metrics.Counter
	recovered                       *metrics.Counter
	delivered                       *metrics.Gauge
	repairRequests                  *metrics.Counter
	underruns                       *metrics.Counter

	// Coordination-latency histograms (virtual time units), fed by the
	// engine span trackers and the leaf.
	handshakeRTT      *metrics.Histogram
	commitLatency     *metrics.Histogram
	retryWaveDepth    *metrics.Histogram
	timeToFirstPacket *metrics.Histogram
	stallDuration     *metrics.Histogram
}

// ctlTypeNames maps every coordination message to its label value.
var ctlTypeNames = []string{
	"request", "control", "confirm", "commit", "state", "prepare", "ack", "start", "ams",
}

// ctlTypeName classifies a coordination message for the by-type counter.
func ctlTypeName(m simnet.Message) string {
	switch m.(type) {
	case reqMsg:
		return "request"
	case *ctlMsg, ctlMsg:
		return "control"
	case *confirmMsg, confirmMsg:
		return "confirm"
	case *commitMsg, commitMsg:
		return "commit"
	case stateMsg:
		return "state"
	case prepMsg:
		return "prepare"
	case ackMsg:
		return "ack"
	case startMsg:
		return "start"
	case amsMsg:
		return "ams"
	default:
		return "other"
	}
}

// newCoordMetrics builds the handle set on reg. On a nil registry every
// handle is nil (the map too), so all recording paths collapse to
// no-ops without further branching.
func newCoordMetrics(reg *metrics.Registry) coordMetrics {
	if reg == nil {
		return coordMetrics{}
	}
	cm := coordMetrics{
		rounds:          reg.Gauge("coord_rounds"),
		syncRounds:      reg.Gauge("coord_sync_rounds"),
		activePeers:     reg.Gauge("coord_active_peers"),
		activations:     reg.Counter("coord_activations_total"),
		activationRound: reg.Histogram("coord_activation_round", []float64{1, 2, 3, 4, 6, 8, 12, 16}),
		ctl:             make(map[string]*metrics.Counter, len(ctlTypeNames)+1),
		dataSent:        reg.Counter("coord_data_packets_sent_total"),
		arrivalsData:    reg.Counter("coord_leaf_arrivals_total", "kind", "data"),
		arrivalsParity:  reg.Counter("coord_leaf_arrivals_total", "kind", "parity"),
		arrivalsDup:     reg.Counter("coord_leaf_arrivals_total", "kind", "dup"),
		overruns:        reg.Counter("coord_leaf_overruns_total"),
		recovered:       reg.Counter("coord_leaf_recovered_total"),
		delivered:       reg.Gauge("coord_leaf_delivered_data"),
		repairRequests:  reg.Counter("coord_repair_requests_total"),
		underruns:       reg.Counter("coord_playback_underruns_total"),

		handshakeRTT:      reg.Histogram("coord_handshake_rtt", []float64{0.5, 1, 2, 4, 8, 16, 32, 64}),
		commitLatency:     reg.Histogram("coord_control_commit_latency", []float64{0.5, 1, 2, 4, 8, 16, 32, 64}),
		retryWaveDepth:    reg.Histogram("coord_retry_wave_depth", []float64{1, 2, 3, 4, 6, 8}),
		timeToFirstPacket: reg.Histogram("coord_time_to_first_packet", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
		stallDuration:     reg.Histogram("coord_stall_duration", []float64{1, 2, 4, 8, 16, 32, 64}),
	}
	for _, t := range ctlTypeNames {
		cm.ctl[t] = reg.Counter("coord_control_packets_total", "type", t)
	}
	cm.ctl["other"] = reg.Counter("coord_control_packets_total", "type", "other")
	return cm
}
