package coord

import (
	"testing"

	"p2pmss/internal/failure"
	"p2pmss/internal/overlay"
	"p2pmss/internal/seq"
	"p2pmss/internal/trace"
)

func baseCfg() Config {
	cfg := DefaultConfig()
	cfg.N = 40
	cfg.H = 5
	return cfg
}

func TestRunUnknownProtocol(t *testing.T) {
	if _, err := Run("nope", baseCfg()); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.H = 0 },
		func(c *Config) { c.H = c.N + 1 },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Interval = -1 },
		func(c *Config) { c.DataPlane, c.ContentLen = true, 0 },
		func(c *Config) { c.DataPlane, c.Window = true, 0 },
	}
	for i, mutate := range bad {
		cfg := baseCfg()
		mutate(&cfg)
		if _, err := Run(DCoP, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{N: 10, H: 4, Rate: 1, Seed: 1}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Interval != 3 {
		t.Errorf("Interval default = %d, want H-1 = 3", cfg.Interval)
	}
	if cfg.FirstFanout != 4 {
		t.Errorf("FirstFanout default = %d, want H", cfg.FirstFanout)
	}
	cfg = Config{N: 10, H: 1, Rate: 1}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Interval != 1 {
		t.Errorf("Interval for H=1 = %d, want 1", cfg.Interval)
	}
}

func TestDCoPActivatesAll(t *testing.T) {
	// Full activation requires gossip fanout on the order of log n
	// (the paper's reference [6]); H = 2 < log2(40) may legitimately
	// strand a few peers (coverage over 30 seeds averages ~91% with a
	// worst case near 77%), so only majority coverage is required there.
	for _, H := range []int{2, 5, 20, 40} {
		cfg := baseCfg()
		cfg.H = H
		res, err := Run(DCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		minActive := cfg.N
		if H < 5 {
			minActive = cfg.N * 3 / 4
		}
		if res.ActivePeers < minActive {
			t.Errorf("H=%d: active = %d, want >= %d", H, res.ActivePeers, minActive)
		}
		if res.Rounds < 1 || res.ControlPackets < int64(H) {
			t.Errorf("H=%d: implausible rounds=%d ctl=%d", H, res.Rounds, res.ControlPackets)
		}
	}
}

func TestTCoPActivatesAll(t *testing.T) {
	// TCoP may strand peers when selections keep hitting active peers;
	// with H not too small every peer should be reached for n=40.
	for _, H := range []int{5, 20, 40} {
		cfg := baseCfg()
		cfg.H = H
		res, err := Run(TCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ActivePeers != cfg.N {
			t.Errorf("H=%d: active = %d, want %d", H, res.ActivePeers, cfg.N)
		}
	}
}

// TCoP invariant: every peer has at most one parent (non-redundant).
func TestTCoPSingleParentInvariant(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := baseCfg()
		cfg.Seed = seed
		r, err := newRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.impl = &tcop{r: r}
		r.run()
		for _, p := range r.peers {
			if !p.active && p.tcopCommitted {
				t.Errorf("seed %d: peer %d committed but inactive", seed, p.id)
			}
		}
		// Count adopted children: each adopted exactly once across parents.
		children := map[int]int{}
		for _, p := range r.peers {
			for _, c := range p.tcopConfirmed {
				children[int(c)]++
			}
		}
		for c, n := range children {
			if n > 1 {
				t.Errorf("seed %d: peer %d confirmed by %d parents", seed, c, n)
			}
		}
	}
}

// DCoP redundancy: with a small universe and large fanout some peer is
// selected by multiple parents (the defining property vs TCoP).
func TestDCoPRedundantSelectionHappens(t *testing.T) {
	cfg := baseCfg()
	cfg.N = 20
	cfg.H = 10
	cfg.DataPlane = true
	cfg.Rate = 5
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DupPackets == 0 {
		t.Log("no duplicate arrivals in window; checking control volume instead")
		if res.ControlPackets <= int64(cfg.N) {
			t.Errorf("suspiciously few control packets: %d", res.ControlPackets)
		}
	}
}

func TestDCoPFewerRoundsThanTCoP(t *testing.T) {
	// The paper's headline comparison: DCoP synchronizes in fewer rounds
	// and fewer control packets than TCoP (its 3-round handshakes).
	var sumD, sumT, pktD, pktT int64
	for seed := int64(1); seed <= 10; seed++ {
		cfg := baseCfg()
		cfg.N = 60
		cfg.H = 8
		cfg.Seed = seed
		d, err := Run(DCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := Run(TCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sumD += int64(d.SyncRounds)
		sumT += int64(tc.SyncRounds)
		pktD += d.ControlPackets
		pktT += tc.ControlPackets
	}
	if sumD >= sumT {
		t.Errorf("DCoP rounds %d not < TCoP rounds %d", sumD, sumT)
	}
	if pktD >= pktT {
		t.Errorf("DCoP packets %d not < TCoP packets %d", pktD, pktT)
	}
}

func TestBroadcastBaseline(t *testing.T) {
	cfg := baseCfg()
	res, err := Run(Broadcast, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(cfg.N)
	if res.ControlPackets != n+n*(n-1) {
		t.Errorf("control packets = %d, want n + n(n-1) = %d", res.ControlPackets, n+n*(n-1))
	}
	if res.SyncRounds != 1 {
		t.Errorf("sync rounds = %d, want 1 (everyone starts on the request)", res.SyncRounds)
	}
	if res.ActivePeers != cfg.N {
		t.Errorf("active = %d", res.ActivePeers)
	}
}

func TestUnicastBaseline(t *testing.T) {
	cfg := baseCfg()
	res, err := Run(Unicast, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlPackets != int64(cfg.N) {
		t.Errorf("control packets = %d, want n = %d", res.ControlPackets, cfg.N)
	}
	if res.SyncRounds != cfg.N {
		t.Errorf("sync rounds = %d, want n = %d", res.SyncRounds, cfg.N)
	}
	if res.ActivePeers != cfg.N {
		t.Errorf("active = %d", res.ActivePeers)
	}
}

func TestCentralizedBaseline(t *testing.T) {
	cfg := baseCfg()
	res, err := Run(Centralized, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(cfg.N)
	// request + (n-1) prepares + (n-1) acks + (n-1) starts.
	if res.ControlPackets != 1+3*(n-1) {
		t.Errorf("control packets = %d, want %d", res.ControlPackets, 1+3*(n-1))
	}
	if res.SyncRounds != 4 {
		t.Errorf("sync rounds = %d, want 4", res.SyncRounds)
	}
	if res.ActivePeers != cfg.N {
		t.Errorf("active = %d", res.ActivePeers)
	}
}

func TestDeterminism(t *testing.T) {
	for _, proto := range Protocols {
		cfg := baseCfg()
		cfg.Seed = 7
		a, err := Run(proto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(proto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rounds != b.Rounds || a.ControlPackets != b.ControlPackets ||
			a.SyncTime != b.SyncTime || a.ActivePeers != b.ActivePeers {
			t.Errorf("%s: same seed diverged: %+v vs %+v", proto, a, b)
		}
	}
}

// End-to-end delivery: with the data plane on and a finite content, the
// leaf must end up holding every data packet (§2's completeness).
func TestDeliveryComplete(t *testing.T) {
	for _, proto := range Protocols {
		cfg := DefaultConfig()
		cfg.N = 12
		cfg.H = 4
		cfg.DataPlane = true
		cfg.Loop = false
		cfg.TrackDelivery = true
		cfg.ContentLen = 300
		cfg.Rate = 5
		res, err := Run(proto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveredData != cfg.ContentLen {
			t.Errorf("%s: delivered %d/%d data packets", proto, res.DeliveredData, cfg.ContentLen)
		}
	}
}

// §3.2's reliability: with packet loss on the data channels, parity
// recovery still reconstructs (nearly) all of the content, far beyond
// what arrived directly.
func TestDeliveryWithLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 12
	cfg.H = 4
	cfg.Interval = 2 // strong parity: one parity packet per 2 data packets
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 400
	cfg.Rate = 5
	cfg.LossProb = 0.03
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.DeliveredData) / float64(cfg.ContentLen)
	if frac < 0.97 {
		t.Errorf("delivered fraction %.3f with 3%% loss and h=2 parity", frac)
	}
	if res.RecoveredData == 0 {
		t.Error("parity recovery never used despite loss")
	}
}

// Peer crash tolerance (§3.2): if peers crash after coordination, the
// redundancy of DCoP plus parity keeps delivery high.
func TestPeerCrashTolerance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 12
	cfg.H = 6
	cfg.Interval = 2
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 300
	cfg.Rate = 10
	cfg.CrashPeers = []overlay.PeerID{3}
	cfg.CrashAt = 30
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.DeliveredData) / float64(cfg.ContentLen)
	if frac < 0.5 {
		t.Errorf("delivered fraction %.3f after one crash", frac)
	}
}

// The leaf's maximum receipt rate ρ_s (§3.1): the broadcast baseline,
// where every peer sends everything, overruns a rate-limited leaf buffer;
// DCoP at the same limit does not.
func TestBufferOverrun(t *testing.T) {
	mk := func(proto string) Result {
		cfg := DefaultConfig()
		cfg.N = 20
		cfg.H = 4
		cfg.DataPlane = true
		cfg.Rate = 2
		// ρ_s = 6τ: comfortably above DCoP's aggregate (≈τ(h+1)/h plus
		// transient redundancy) but far below broadcast's n·τ(h+1)/h ≈ 22τ.
		cfg.LeafMaxRate = 12
		cfg.LeafBuffer = 10
		cfg.ContentLen = 50000
		res, err := Run(proto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	b := mk(Broadcast)
	d := mk(DCoP)
	if b.Overruns == 0 {
		t.Error("broadcast baseline never overran a leaf limited to 5τ")
	}
	if d.Overruns > b.Overruns/5 {
		t.Errorf("DCoP overruns %d not far below broadcast %d", d.Overruns, b.Overruns)
	}
}

func TestCrashedPeersReduceActive(t *testing.T) {
	cfg := baseCfg()
	cfg.CrashPeers = []overlay.PeerID{0, 1, 2, 3, 4}
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivePeers > cfg.N-len(cfg.CrashPeers) {
		t.Errorf("active = %d with %d crashed", res.ActivePeers, len(cfg.CrashPeers))
	}
	// The rest still synchronize: crashed peers are simply never heard.
	if res.ActivePeers < cfg.N-len(cfg.CrashPeers)-5 {
		t.Errorf("too few active: %d", res.ActivePeers)
	}
}

func TestH1DegeneratesToSinglePeerStart(t *testing.T) {
	cfg := baseCfg()
	cfg.H = 1
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// H=1 floods one peer at a time but must still reach everyone.
	if res.ActivePeers != cfg.N {
		t.Errorf("active = %d", res.ActivePeers)
	}
}

func TestLeafSharesReducesControlTraffic(t *testing.T) {
	var with, without int64
	for seed := int64(1); seed <= 5; seed++ {
		cfg := baseCfg()
		cfg.N = 80
		cfg.H = 40
		cfg.Seed = seed
		cfg.LeafShares = true
		a, err := Run(DCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.LeafShares = false
		b, err := Run(DCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		with += a.ControlPackets
		without += b.ControlPackets
	}
	if with >= without {
		t.Errorf("sharing the initial selection did not reduce traffic: %d vs %d", with, without)
	}
}

func TestMarkOffset(t *testing.T) {
	if got := markOffset(10, 1, 4); got != 14 {
		t.Errorf("markOffset = %d, want 14", got)
	}
	if got := markOffset(0, 0.5, 3); got != 1 {
		t.Errorf("markOffset = %d, want 1 (floor of 1.5)", got)
	}
	if got := markOffset(5, 0, 10); got != 5 {
		t.Errorf("markOffset = %d, want 5", got)
	}
}

func TestShareOutPreservesPackets(t *testing.T) {
	// Every data packet after the mark appears in exactly one part, and
	// the parts are pairwise disjoint.
	ps := seq.Range(1, 60)
	parts, rate := shareOut(ps, 10, 2.0, 3, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	wantRate := 2.0 * 4 / (3 * 4)
	if rate != wantRate {
		t.Errorf("rate = %v, want %v", rate, wantRate)
	}
	var u seq.Sequence
	for i, p := range parts {
		for j := i + 1; j < len(parts); j++ {
			if !seq.Disjoint(p, parts[j]) {
				t.Fatalf("parts %d and %d overlap", i, j)
			}
		}
		u = seq.Union(u, p)
	}
	got := u.DataIndices()
	if len(got) != 50 || got[0] != 11 || got[len(got)-1] != 60 {
		t.Errorf("union covers %d data packets [%d..%d], want 50 [11..60]",
			len(got), got[0], got[len(got)-1])
	}
	if u.CountParity() == 0 {
		t.Error("no parity packets inserted")
	}

	// Interval 0: plain split, no parity, rate halves.
	parts, rate = shareOut(ps, 0, 2.0, 0, 2)
	if rate != 1.0 {
		t.Errorf("plain rate = %v, want 1", rate)
	}
	if seq.Union(parts[0], parts[1]).CountParity() != 0 {
		t.Error("plain split added parity")
	}

	// Nil stream (control-plane-only mode).
	parts, rate = shareOut(nil, 0, 3.0, 2, 3)
	if parts != nil || rate != 3.0*3/(2*3) {
		t.Errorf("nil stream: parts=%v rate=%v", parts, rate)
	}

	// Mark beyond the end: empty parts.
	parts, _ = shareOut(seq.Range(1, 5), 99, 1, 2, 2)
	if len(parts) != 2 || len(parts[0]) != 0 || len(parts[1]) != 0 {
		t.Errorf("mark past end: %v", parts)
	}
}

// TCoP tree well-formedness: every active non-initial peer was confirmed
// by exactly one parent, so confirmed edges = active peers − H initial.
func TestTCoPTreeEdgeCount(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := baseCfg()
		cfg.Seed = seed
		r, err := newRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.impl = &tcop{r: r}
		r.run()
		active, edges := 0, 0
		for _, p := range r.peers {
			if p.active {
				active++
			}
			edges += len(p.tcopConfirmed)
		}
		if edges != active-cfg.H {
			t.Errorf("seed %d: %d edges for %d active peers (H=%d)", seed, edges, active, cfg.H)
		}
	}
}

// A deterministic churn schedule (crash then rejoin) runs inside the
// simulation and leaves trace evidence; delivery still holds thanks to
// DCoP's redundancy plus parity.
func TestChurnScheduleInSimulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 12
	cfg.H = 6
	cfg.Interval = 2
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 300
	cfg.Rate = 10
	cfg.Trace = trace.New(4096)
	cfg.Churn = &failure.ChurnSchedule{Events: []failure.ChurnEvent{
		{At: 30, Peer: 3},
		{At: 60, Peer: 3, Join: true},
		{At: 35, Peer: 4},
	}}
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	churned := cfg.Trace.Filter("churn")
	if len(churned) != 3 {
		t.Errorf("trace has %d churn events, want 3", len(churned))
	}
	frac := float64(res.DeliveredData) / float64(cfg.ContentLen)
	if frac < 0.5 {
		t.Errorf("delivered fraction %.3f under churn", frac)
	}
}

func TestChurnScheduleRejectsBadTimes(t *testing.T) {
	cfg := baseCfg()
	cfg.Churn = &failure.ChurnSchedule{Events: []failure.ChurnEvent{{At: -2, Peer: 1}}}
	if _, err := Run(TCoP, cfg); err == nil {
		t.Error("negative churn time accepted")
	}
}
