package coord

import (
	"p2pmss/internal/engine"
	"p2pmss/internal/simnet"
)

// tcop drives the Tree-based Coordination Protocol of §3.5 — the
// non-redundant protocol in which each contents peer takes at most one
// parent via a three-round handshake (control c1, confirmation cc1,
// commit c2). All transitions — first-parent-wins adoption, the
// confirmation deadline, alternate-peer retry waves, commit-release —
// live in internal/engine; this driver only converts simnet messages to
// engine events.
type tcop struct {
	r *runner
}

func (t *tcop) start() {
	t.r.initEngine(false)
	t.r.startRequests()
}

func (t *tcop) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		s, rate := t.r.initialAssignment(msg.Index, msg.Selected)
		t.r.dispatchCtx(p, &engine.Request{Assigned: s, Rate: rate, Selected: msg.Selected, Round: msg.Round}, msg.Span)
	case *ctlMsg:
		t.r.dispatchCtx(p, &engine.Control{Msg: msg}, msg.Span)
	case *confirmMsg:
		t.r.dispatchCtx(p, &engine.Confirm{Msg: msg}, msg.Span)
	case *commitMsg:
		t.r.dispatchCtx(p, &engine.Commit{Msg: msg}, msg.Span)
	}
}
