package coord

import (
	"p2pmss/internal/overlay"
	"p2pmss/internal/simnet"
)

// tcop implements the Tree-based Coordination Protocol of §3.5 — the
// non-redundant protocol in which each contents peer takes at most one
// parent. Selection is a three-round handshake per tree level:
//
//  1. a parent sends control packets c1 to up to H candidates selected by
//     Aselect (excluding itself and peers it knows to be selected);
//  2. each candidate replies with a confirmation — positive iff it has no
//     parent yet (it takes the first parent whose control packet arrives);
//  3. the parent sends a commit c2 to the confirmed children, carrying
//     c2.n = H_j + 1 streams; children derive their subsequences from the
//     marked packet, the parent switches to its own share δ later.
//
// Per the pseudocode, a TCoP control packet's view carries only the
// sender and its current candidates (c1.VW_jj := 1; VW_jk := 1 for the
// selected), not the sender's accumulated view — one of the reasons TCoP
// floods more control packets than DCoP (Figure 11 vs Figure 10).
type tcop struct {
	r *runner
}

func (t *tcop) start() {
	r := t.r
	sel := overlay.SelectFrom(r.eng.Rand(), r.cfg.N, overlay.View{}, r.cfg.H)
	for u, cp := range sel {
		m := reqMsg{Rate: r.cfg.Rate, Index: u, Round: 1}
		if r.cfg.LeafShares {
			m.Selected = sel
		}
		r.sendCtl(r.leafID(), simnet.NodeID(cp), m, 1)
	}
}

func (t *tcop) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		t.onRequest(p, msg)
	case ctlMsg:
		t.onControl(p, msg)
	case confirmMsg:
		t.onConfirm(p, msg)
	case commitMsg:
		t.onCommit(p, msg)
	}
}

func (t *tcop) onRequest(p *peerNode, m reqMsg) {
	p.view.Add(p.id)
	p.view.AddAll(m.Selected)
	p.tcopParent = int(p.id) // leaf-rooted: no contents-peer parent to adopt
	s, rate := t.r.initialAssignment(m.Index, m.Selected)
	p.activate(m.Round, s, rate)
	t.selectChildren(p, m.Round+1)
}

// selectChildren runs Aselect and round 1 of the handshake.
func (t *tcop) selectChildren(p *peerNode, round int) {
	r := t.r
	children := overlay.Select(r.eng.Rand(), p.view, r.cfg.H)
	if len(children) == 0 {
		return // found no candidates: CP_j stops selecting (§3.5).
	}
	p.view.AddAll(children)
	p.tcopAwait = len(children)
	p.tcopConfirmed = nil
	p.tcopCtlRound = round
	p.tcopFinal = false

	// c1.VW carries only the sender and its candidates (pseudocode step 2).
	cv := overlay.NewView(r.cfg.N)
	cv.Add(p.id)
	cv.AddAll(children)
	vm := cv.Members()
	offset := p.tx.currentOffset()
	for _, cp := range children {
		msg := ctlMsg{
			Parent:    p.id,
			View:      vm,
			SeqOffset: offset,
			Rate:      p.tx.rate,
			Children:  len(children),
			Round:     round,
		}
		r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(cp), msg, round)
	}
	// Guard against lost confirmations: finalize with whatever arrived.
	gen := p.tcopGen
	r.eng.After(2*(r.cfg.Delta+r.cfg.Jitter)+0.001, func() {
		if p.tcopGen == gen {
			t.finalize(p)
		}
	})
}

// onControl is the candidate side of handshake round 1: take the first
// parent, refuse all others.
func (t *tcop) onControl(p *peerNode, m ctlMsg) {
	p.view.Add(p.id)
	p.view.Add(m.Parent)
	p.view.AddAll(m.View)
	accept := !p.active && p.tcopParent < 0
	if accept {
		p.tcopParent = int(m.Parent)
		// If the commit is lost, release the adoption so another parent
		// can take this peer later.
		adopted := m.Parent
		t.r.eng.After(4*(t.r.cfg.Delta+t.r.cfg.Jitter)+0.001, func() {
			if !p.active && p.tcopParent == int(adopted) && !p.tcopCommitted {
				p.tcopParent = -1
			}
		})
	}
	t.r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(m.Parent),
		confirmMsg{Child: p.id, Accept: accept, Round: m.Round + 1}, m.Round+1)
}

// onConfirm collects handshake round 2 at the parent.
func (t *tcop) onConfirm(p *peerNode, m confirmMsg) {
	if p.tcopFinal || p.tcopAwait == 0 {
		return // late confirmation after timeout finalization
	}
	p.tcopAwait--
	if m.Accept {
		p.tcopConfirmed = append(p.tcopConfirmed, m.Child)
	}
	if p.tcopAwait == 0 {
		t.finalize(p)
	}
}

// finalize is handshake round 3: commit to the confirmed children and
// split the parent's stream into c2.n = H_j+1 parts. Per the pseudocode
// (pkt_ji := Esq(pkt_j[m_j⟩, c2.n)) the re-enhancement uses parity
// interval c2.n — a per-node interval, unlike DCoP's global h; this is
// what makes TCoP's receipt-rate overhead larger (Figure 12).
func (t *tcop) finalize(p *peerNode) {
	if p.tcopFinal {
		return
	}
	p.tcopFinal = true
	p.tcopGen++
	r := t.r
	confirmed := p.tcopConfirmed
	if len(confirmed) == 0 {
		return // no child: CP_j stops (§3.5).
	}
	k := len(confirmed) + 1 // c2.n
	offset := p.tx.currentOffset()
	mark := markOffset(offset, r.cfg.Delta, p.tx.rate)
	parts, rate := shareOut(p.tx.s, mark, p.tx.rate, k, k)
	round := p.tcopCtlRound + 2
	for u, cp := range confirmed {
		msg := commitMsg{
			Parent:    p.id,
			Streams:   k,
			SeqOffset: offset,
			Rate:      rate,
			ChildIdx:  u + 1,
			Round:     round,
		}
		if parts != nil {
			msg.AssignedSeq = parts[u+1]
		}
		r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(cp), msg, round)
	}
	keep, given := splitParts(parts)
	p.tx.planShare(keep, given, p.tx.rate, rate, r.cfg.Delta)
}

// onCommit activates the child and recurses down the tree.
func (t *tcop) onCommit(p *peerNode, m commitMsg) {
	if p.tcopParent != int(m.Parent) || p.active {
		return // stale commit (we timed out and were re-adopted)
	}
	p.tcopCommitted = true
	p.activate(m.Round, m.AssignedSeq, m.Rate)
	t.selectChildren(p, m.Round+1)
}
