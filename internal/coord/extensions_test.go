package coord

import (
	"strings"
	"testing"

	"p2pmss/internal/overlay"
	"p2pmss/internal/simnet"
	"p2pmss/internal/trace"
)

// simnetLink builds link params matching cfg plus a bandwidth cap.
func simnetLink(cfg Config, bw float64) simnet.LinkParams {
	return simnet.LinkParams{Latency: cfg.Delta, Jitter: cfg.Jitter, LossProb: cfg.LossProb, Bandwidth: bw}
}

func TestAMSBaseline(t *testing.T) {
	cfg := baseCfg()
	cfg.StatePeriods = 3
	res, err := Run(AMS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivePeers != cfg.N {
		t.Errorf("active = %d", res.ActivePeers)
	}
	// Asynchronous start: everyone activates on the request (round 1).
	if res.SyncRounds != 1 {
		t.Errorf("sync rounds = %d, want 1", res.SyncRounds)
	}
	// State exchange: n(n-1) control packets per period.
	n := int64(cfg.N)
	wantStates := n * (n - 1) * int64(cfg.StatePeriods)
	if res.StateMessages != wantStates {
		t.Errorf("state messages = %d, want %d", res.StateMessages, wantStates)
	}
	if res.ControlPackets != n+wantStates {
		t.Errorf("control packets = %d, want %d", res.ControlPackets, n+wantStates)
	}
}

// The paper's critique of AMS: its state exchange costs far more control
// packets than DCoP's flooding.
func TestAMSCostsMoreThanDCoP(t *testing.T) {
	cfg := baseCfg()
	a, err := Run(AMS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ControlPackets <= d.ControlPackets {
		t.Errorf("AMS %d not above DCoP %d", a.ControlPackets, d.ControlPackets)
	}
}

func TestAMSDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 10
	cfg.H = 4
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 200
	cfg.Rate = 5
	res, err := Run(AMS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredData != cfg.ContentLen {
		t.Errorf("delivered %d/%d", res.DeliveredData, cfg.ContentLen)
	}
}

func TestBurstLossIsApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 10
	cfg.H = 4
	cfg.Interval = 2
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 400
	cfg.Rate = 5
	cfg.Burst = &BurstParams{PGoodToBad: 0.05, PBadToGood: 0.2, LossGood: 0, LossBad: 1}
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NetStats.Dropped == 0 {
		t.Error("burst model dropped nothing")
	}
	// h=2 parity plus repair-free recovery should still deliver most of
	// the content despite the bursts.
	if res.DeliveredData < cfg.ContentLen/2 {
		t.Errorf("delivered %d/%d under bursts", res.DeliveredData, cfg.ContentLen)
	}
}

func TestHeterogeneousBandwidthValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.Bandwidths = []float64{1, 2} // wrong length
	if _, err := Run(DCoP, cfg); err == nil {
		t.Error("wrong-length bandwidths accepted")
	}
	cfg = baseCfg()
	cfg.Bandwidths = make([]float64, cfg.N)
	if _, err := Run(DCoP, cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
	cfg = baseCfg()
	cfg.Bandwidths = uniformBandwidths(cfg.N, 1)
	cfg.LeafShares = false
	if _, err := Run(DCoP, cfg); err == nil {
		t.Error("heterogeneous without LeafShares accepted")
	}
}

func uniformBandwidths(n int, bw float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = bw
	}
	return out
}

// Heterogeneous division: faster initial peers transmit more packets,
// and the content still arrives completely.
func TestHeterogeneousAssignment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 8
	cfg.H = 4
	cfg.Interval = 3
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 400
	cfg.Rate = 5
	bws := uniformBandwidths(cfg.N, 1)
	bws[0], bws[1], bws[2], bws[3] = 8, 8, 8, 8 // some much faster peers
	cfg.Bandwidths = bws
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredData != cfg.ContentLen {
		t.Errorf("delivered %d/%d with heterogeneous division", res.DeliveredData, cfg.ContentLen)
	}
}

func TestHeterogeneousRatesProportional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 4
	cfg.H = 4
	cfg.Interval = 3
	cfg.Bandwidths = []float64{4, 2, 1, 1}
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	selected := []overlay.PeerID{0, 1, 2, 3}
	_, r0 := r.initialAssignment(0, selected)
	_, r1 := r.initialAssignment(1, selected)
	_, r2 := r.initialAssignment(2, selected)
	if !(r0 > r1 && r1 > r2) {
		t.Errorf("rates not ordered by bandwidth: %v %v %v", r0, r1, r2)
	}
	if ratio := r0 / r2; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("rate ratio %v, want 4", ratio)
	}
}

func TestPlaybackModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 10
	cfg.H = 4
	cfg.Interval = 2
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.Playback = true
	cfg.PlaybackDelay = 20 // generous startup buffer
	cfg.ContentLen = 300
	cfg.Rate = 5
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaybackStart <= 0 {
		t.Error("playback never started")
	}
	if res.Underruns != 0 {
		t.Errorf("underruns = %d with a 20-unit startup buffer", res.Underruns)
	}

	// With (almost) no startup buffer, the real-time constraint bites:
	// early packets are consumed before slower peers deliver them.
	cfg.PlaybackDelay = 0.01
	cfg.Seed = 2
	res, err = Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underruns == 0 {
		t.Error("zero startup buffer produced no underruns")
	}
}

func TestPlaybackRequiresDataPlane(t *testing.T) {
	cfg := baseCfg()
	cfg.Playback = true
	if _, err := Run(DCoP, cfg); err == nil {
		t.Error("playback without data plane accepted")
	}
}

func TestTraceRecordsRun(t *testing.T) {
	cfg := baseCfg()
	tr := trace.New(10000)
	cfg.Trace = tr
	if _, err := Run(DCoP, cfg); err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	if counts["activate"] == 0 || counts["control"] == 0 {
		t.Errorf("trace counts = %v", counts)
	}
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "activate") {
		t.Error("dump missing activations")
	}
}

func TestTraceRecordsCrashes(t *testing.T) {
	cfg := baseCfg()
	tr := trace.New(10000)
	cfg.Trace = tr
	cfg.CrashPeers = []overlay.PeerID{1, 2}
	cfg.CrashAt = 1.5
	if _, err := Run(DCoP, cfg); err != nil {
		t.Fatal(err)
	}
	if len(tr.Filter("crash")) != 2 {
		t.Errorf("crash events = %d", len(tr.Filter("crash")))
	}
}

// Repair protocol: with a crash and no parity, the leaf-driven
// retransmission still completes delivery.
func TestRepairRecoversAfterCrash(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 10
	cfg.H = 5
	cfg.Interval = 1000 // parity interval beyond any subsequence: no parity help
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.Repair = true
	cfg.ContentLen = 300
	cfg.Rate = 10
	cfg.CrashPeers = []overlay.PeerID{0, 1}
	cfg.CrashAt = 10
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredData != cfg.ContentLen {
		t.Errorf("delivered %d/%d with repair", res.DeliveredData, cfg.ContentLen)
	}
	if res.RepairRequests == 0 {
		t.Error("repair never triggered despite crashes")
	}

	// Control: without repair the same scenario loses content.
	cfg.Repair = false
	res, err = Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredData == cfg.ContentLen {
		t.Skip("crash happened to lose nothing this seed; repair effect not distinguishable")
	}
}

// Regression: the pre-streaming quiet period is not a stall. With a
// repair interval shorter than the coordination handshake (first check
// fires before any data packet can possibly have arrived), a clean run
// must not burn a repair round on a spurious 64-packet request.
func TestRepairQuietStartNotAStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 10
	cfg.H = 5
	cfg.Interval = 2
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.Repair = true
	cfg.RepairInterval = 1 // < 2δ: fires while coordination is in flight
	cfg.ContentLen = 200
	cfg.Rate = 10
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairRequests != 0 {
		t.Errorf("clean run issued %d spurious repair requests", res.RepairRequests)
	}
	if res.DeliveredData != cfg.ContentLen {
		t.Errorf("delivered %d/%d", res.DeliveredData, cfg.ContentLen)
	}
}

// The incrementally tracked missing set agrees with a full rescan of the
// recoverer at the moment repair batches are built: delivery completes
// and exactly the missing indices were requested (exercised end-to-end
// by TestRepairRecoversAfterCrash); here we pin the leaf-level
// bookkeeping directly.
func TestLeafMissingSetIncremental(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 6
	cfg.H = 3
	cfg.Interval = 2
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.Repair = true
	cfg.ContentLen = 50
	cfg.Rate = 10
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.impl = &dcop{r: r}
	r.run()
	for k := int64(1); k <= cfg.ContentLen; k++ {
		_, inSet := r.leaf.missing[k]
		if present := r.leaf.recov.HasData(k); present == inSet {
			t.Fatalf("t%d: present=%v but missing-set membership=%v", k, present, inSet)
		}
	}
	if got := r.leaf.missingData(); len(got) != len(r.leaf.missing) {
		t.Fatalf("missingData len %d != set size %d", len(got), len(r.leaf.missing))
	}
}

func TestRepairRequiresDataPlane(t *testing.T) {
	cfg := baseCfg()
	cfg.Repair = true
	if _, err := Run(DCoP, cfg); err == nil {
		t.Error("repair without data plane accepted")
	}
}

// Data-plane runs under link bandwidth limits: the §2 slot model at the
// network layer. Delivery still completes, just later.
func TestDataPlaneWithLinkBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 8
	cfg.H = 4
	cfg.Interval = 3
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 200
	cfg.Rate = 5
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Throttle every link to 2 messages per time unit.
	r.nw.SetDefaultLink(simnetLink(cfg, 2))
	r.impl = &dcop{r: r}
	res := r.run()
	if res.DeliveredData != cfg.ContentLen {
		t.Errorf("delivered %d/%d under bandwidth limit", res.DeliveredData, cfg.ContentLen)
	}
}

// End-to-end §2 proportionality: under the heterogeneous division, a
// peer with 4× bandwidth transmits roughly 4× the packets of a slow one.
func TestHeterogeneousLoadProportional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 4
	cfg.H = 4 // all peers selected directly: pure §2 division
	cfg.Interval = 3
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.ContentLen = 800
	cfg.Rate = 8
	cfg.Bandwidths = []float64{4, 2, 1, 1}
	res, err := Run(DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PeerSent) != 4 {
		t.Fatalf("PeerSent = %v", res.PeerSent)
	}
	var total int64
	for _, n := range res.PeerSent {
		total += n
	}
	if total == 0 {
		t.Fatal("nothing transmitted")
	}
	// Identify the bw-4 peer's share: it should carry ≈ 4/8 of the load.
	// (The leaf's selection order is random, but with H=N every peer is
	// selected and Bandwidths[i] applies to peer i directly.)
	shareFast := float64(res.PeerSent[0]) / float64(total)
	shareSlow := float64(res.PeerSent[2]) / float64(total)
	if ratio := shareFast / shareSlow; ratio < 3.0 || ratio > 5.0 {
		t.Errorf("fast/slow load ratio = %.2f (sent %v), want ≈4", ratio, res.PeerSent)
	}
	if res.DeliveredData != cfg.ContentLen {
		t.Errorf("delivered %d/%d", res.DeliveredData, cfg.ContentLen)
	}
}
