package coord

import (
	"math/rand"

	"p2pmss/internal/engine"
	"p2pmss/internal/seq"
	"p2pmss/internal/simnet"
	"p2pmss/internal/span"
)

// This file is the des/simnet driver for the shared coordination engine
// (internal/engine): it stamps virtual-time snapshots onto events,
// turns SetTimer effects into des events, Send effects into simnet
// messages (feeding send failures back into the engine so the live
// layer's churn tolerance is deterministically simulatable), and
// Activate/Merge/Handoff effects into transmitter operations.

// initEngine builds the per-peer engine cores. Called from the
// protocol's start() rather than newRunner because tests install
// protocol impls directly.
func (r *runner) initEngine(dcopMode bool) {
	ecfg := engine.Config{
		N:                r.cfg.N,
		H:                r.cfg.H,
		Interval:         r.cfg.Interval,
		FirstFanout:      r.cfg.FirstFanout,
		MarkDelta:        r.cfg.Delta,
		HandshakeTimeout: r.cfg.HandshakeTimeout,
		CommitRelease:    r.cfg.CommitRelease,
		Retries:          r.cfg.Retries,
		DCoP:             dcopMode,
	}
	if err := ecfg.Normalize(); err != nil {
		panic(err) // unreachable: Config.normalize validated the same fields
	}
	sm := engine.SpanMetrics{
		HandshakeRTT:   r.met.handshakeRTT,
		CommitLatency:  r.met.commitLatency,
		RetryWaveDepth: r.met.retryWaveDepth,
	}
	for _, p := range r.peers {
		rng := rand.New(rand.NewSource(engine.PeerSeed(r.cfg.Seed, p.id)))
		p.core = engine.NewPeer(ecfg, p.id, rng)
		p.spans = engine.NewSpanTracker(r.cfg.Spans, r.cfg.SpanTrace, int(p.id), sm)
		p.flight = engine.NewFlightObserver(r.cfg.Flight.Recorder("", int(p.id)))
	}
}

// leafRand is the leaf peer's private random stream, seeded exactly as
// the live layer seeds its leaf so the initial selection agrees.
func (r *runner) leafRand() *rand.Rand {
	return rand.New(rand.NewSource(engine.PeerSeed(r.cfg.Seed, engine.LeafID)))
}

// startRequests performs the leaf peer's step 1 for DCoP and TCoP:
// select H contents peers and send each a content request.
func (r *runner) startRequests() {
	sel, _ := engine.SelectInitial(r.leafRand(), r.cfg.N, r.cfg.H)
	var root span.Context
	if r.cfg.Spans != nil {
		// Root "session" span on the leaf track; closed in closeSpans.
		r.sessionSpan = r.cfg.Spans.NextID()
		r.sessionStart = r.eng.Now()
		root = span.Context{Trace: r.cfg.SpanTrace, Span: r.sessionSpan}
	}
	for u, cp := range sel {
		m := reqMsg{Rate: r.cfg.Rate, Index: u, Round: 1, Span: root}
		if r.cfg.LeafShares {
			m.Selected = sel
		}
		r.sendCtl(r.leafID(), simnet.NodeID(cp), m, 1)
	}
}

// snapshot stamps the peer's current data-plane state.
func (r *runner) snapshot(p *peerNode) engine.Snapshot {
	return engine.Snapshot{
		Offset: p.tx.currentOffset(),
		Stream: p.tx.s,
		Rate:   p.tx.rate,
	}
}

// dispatch feeds one event into the peer's engine core and applies the
// resulting effects. Events with no carried causal context (timers,
// repair) enter with the zero context; the span tracker's own state
// supplies the nesting.
func (r *runner) dispatch(p *peerNode, ev engine.Event) {
	r.dispatchCtx(p, ev, span.Context{})
}

// dispatchCtx is dispatch with the causal context the triggering
// message carried; the tracker derives spans from the event/effect
// pair and stamps outgoing messages before they are sent.
func (r *runner) dispatchCtx(p *peerNode, ev engine.Event, parent span.Context) {
	effs := p.core.Handle(ev, r.snapshot(p))
	p.spans.Observe(p.core, r.eng.Now(), ev, parent, effs)
	p.flight.Observe(r.eng.Now(), ev, effs)
	r.applyEffects(p, effs)
}

// applyEffects executes the engine's effects in order. Sends to crashed
// peers feed SendFailed back into the engine (its feedback batch is
// queued behind the remaining effects); the hand-off is buffered
// (copied out — the node is recycled) so that Absorb effects produced
// by those failures fold into it before it is planned. Every consumed
// batch goes back to the peer's free lists via Release; the messages
// themselves stay alive until simnet delivers (or discards) them.
func (r *runner) applyEffects(p *peerNode, effs []engine.Effect) {
	var handoff engine.Handoff
	haveHandoff := false
	batches := append(r.batchBuf[:0], effs)
	for bi := 0; bi < len(batches); bi++ {
		for _, eff := range batches[bi] {
			switch e := eff.(type) {
			case *engine.Send:
				to := simnet.NodeID(e.To)
				r.sendCtl(simnet.NodeID(p.id), to, e.Msg, msgRound(e.Msg))
				if r.nw.Crashed(to) {
					// The message is counted (it was transmitted) but will be
					// discarded at delivery; tell the engine now so it can
					// fail over or re-absorb deterministically.
					ev := &engine.SendFailed{To: e.To, Msg: e.Msg}
					fb := p.core.Handle(ev, r.snapshot(p))
					p.spans.Observe(p.core, r.eng.Now(), ev, msgSpanCtx(e.Msg), fb)
					p.flight.Observe(r.eng.Now(), ev, fb)
					if fb != nil {
						batches = append(batches, fb)
					}
				}
			case *engine.SetTimer:
				id := e.ID
				r.eng.After(e.Delay, func() { r.dispatch(p, &engine.TimerFired{Timer: id}) })
			case *engine.Activate:
				p.activate(e.Round, e.Seq, e.Rate)
			case *engine.Merge:
				p.activate(e.Round, e.Seq, e.Rate)
			case *engine.Handoff:
				handoff = *e
				haveHandoff = true
			case *engine.Absorb:
				if haveHandoff {
					handoff.Keep = seq.Union(handoff.Keep, e.Seq)
					handoff.NewRate += e.RateDelta
				} else if p.active {
					p.activate(p.depth, e.Seq, e.RateDelta)
				}
			case *engine.ServeRepair:
				r.serveRepair(p, e.Indices)
			}
		}
	}
	for _, b := range batches {
		p.core.Release(b)
	}
	r.batchBuf = batches[:0]
	if haveHandoff {
		p.tx.planShare(handoff.Keep, handoff.Given, handoff.OldRate, handoff.NewRate, r.cfg.Delta)
	}
}

// msgRound extracts the round number carried by an engine message.
func msgRound(m any) int {
	switch msg := m.(type) {
	case reqMsg:
		return msg.Round
	case *ctlMsg:
		return msg.Round
	case *confirmMsg:
		return msg.Round
	case *commitMsg:
		return msg.Round
	}
	return 0
}

// msgSpanCtx extracts the causal context stamped on an engine message.
func msgSpanCtx(m any) span.Context {
	switch msg := m.(type) {
	case reqMsg:
		return msg.Span
	case *ctlMsg:
		return msg.Span
	case *confirmMsg:
		return msg.Span
	case *commitMsg:
		return msg.Span
	}
	return span.Context{}
}

// mirrorOutcomes copies the engines' coordination outcomes onto the
// peer nodes (for the tree assertions in tests) and into the Result.
func (r *runner) mirrorOutcomes() {
	for _, p := range r.peers {
		if p.core == nil {
			return // baseline run: no engine cores
		}
		p.tcopCommitted = p.core.Committed()
		p.tcopConfirmed = p.core.Confirmed()
		r.res.Outcomes = append(r.res.Outcomes, p.core.Outcome())
	}
}
