package coord

import (
	"reflect"
	"testing"

	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/span"
	"p2pmss/internal/trace"
)

// The consolidated Obs bundle must be exactly equivalent to the legacy
// per-observer fields: the same run instrumented either way yields
// identical results, metrics snapshots, and span sets.
func TestObsEquivalentToLegacyFields(t *testing.T) {
	for _, proto := range Protocols {
		legacy := metricsTestConfig()
		legacy.Metrics = metrics.New()
		legacy.Trace = trace.New(1 << 16)
		legacy.Spans = span.NewCollector()
		legacy.Flight = flight.NewSet(64)

		bundled := metricsTestConfig()
		bundled.Obs = obs.Observability{
			Metrics: metrics.New(),
			Trace:   trace.New(1 << 16),
			Spans:   span.NewCollector(),
			Flight:  flight.NewSet(64),
		}

		r1, err := Run(proto, legacy)
		if err != nil {
			t.Fatalf("%s legacy: %v", proto, err)
		}
		r2, err := Run(proto, bundled)
		if err != nil {
			t.Fatalf("%s bundled: %v", proto, err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: bundled result differs from legacy:\n%+v\n%+v", proto, r1, r2)
		}
		s1, s2 := legacy.Metrics.Snapshot(), bundled.Obs.Metrics.Snapshot()
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: metrics snapshots differ", proto)
		}
		if len(s2.Counters) == 0 {
			t.Errorf("%s: bundled registry recorded nothing", proto)
		}
		sp1, sp2 := legacy.Spans.Spans(), bundled.Obs.Spans.Spans()
		if len(sp2) == 0 {
			t.Errorf("%s: bundled collector recorded no spans", proto)
		}
		if len(sp1) != len(sp2) {
			t.Errorf("%s: span counts differ: legacy %d bundled %d", proto, len(sp1), len(sp2))
		}
		if len(bundled.Obs.Trace.Events()) == 0 {
			t.Errorf("%s: bundled tracer recorded nothing", proto)
		}
	}
}

// Obs.SpanTrace labels the collected spans when the legacy field is
// unset, and the legacy field wins when both are present.
func TestObsSpanTracePrecedence(t *testing.T) {
	want := span.DeriveTrace("obs-test")
	cfg := metricsTestConfig()
	cfg.Obs.Spans = span.NewCollector()
	cfg.Obs.SpanTrace = want
	if _, err := Run(DCoP, cfg); err != nil {
		t.Fatal(err)
	}
	for _, s := range cfg.Obs.Spans.Spans() {
		if s.Trace != want {
			t.Fatalf("span trace %v, want %v", s.Trace, want)
		}
	}

	legacyWant := span.DeriveTrace("legacy-wins")
	cfg2 := metricsTestConfig()
	cfg2.SpanTrace = legacyWant
	cfg2.Obs.Spans = span.NewCollector()
	cfg2.Obs.SpanTrace = span.DeriveTrace("obs-loses")
	if _, err := Run(DCoP, cfg2); err != nil {
		t.Fatal(err)
	}
	spans := cfg2.Obs.Spans.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	for _, s := range spans {
		if s.Trace != legacyWant {
			t.Fatalf("span trace %v, want legacy %v", s.Trace, legacyWant)
		}
	}
}
