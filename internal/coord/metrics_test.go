package coord

import (
	"reflect"
	"testing"

	"p2pmss/internal/metrics"
	"p2pmss/internal/overlay"
)

// metricsTestConfig is a small data-plane run exercising most counters.
func metricsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 24
	cfg.H = 6
	cfg.DataPlane = true
	cfg.ContentLen = 400
	cfg.Loop = false
	cfg.TrackDelivery = true
	cfg.Seed = 7
	return cfg
}

// Instrumentation must never perturb the simulation: a run with a
// registry attached produces the identical Result to a bare run.
func TestMetricsDoNotPerturbResult(t *testing.T) {
	for _, proto := range Protocols {
		bare := metricsTestConfig()
		instr := metricsTestConfig()
		instr.Metrics = metrics.New()
		r1, err := Run(proto, bare)
		if err != nil {
			t.Fatalf("%s bare: %v", proto, err)
		}
		r2, err := Run(proto, instr)
		if err != nil {
			t.Fatalf("%s instrumented: %v", proto, err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: instrumented result differs from bare:\n%+v\n%+v", proto, r1, r2)
		}
	}
}

// A seeded run's metrics snapshot is deterministic: fresh registries on
// identical configs end up byte-for-byte equal.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	run := func() metrics.Snapshot {
		cfg := metricsTestConfig()
		cfg.Repair = true
		cfg.CrashPeers = []overlay.PeerID{1}
		cfg.Metrics = metrics.New()
		if _, err := Run(DCoP, cfg); err != nil {
			t.Fatal(err)
		}
		return cfg.Metrics.Snapshot()
	}
	s1, s2 := run(), run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("snapshots differ across identical seeded runs:\n%+v\n%+v", s1, s2)
	}
}

// The registry's counters agree with the Result struct they mirror.
func TestMetricsAgreeWithResult(t *testing.T) {
	for _, proto := range []string{DCoP, TCoP} {
		cfg := metricsTestConfig()
		reg := metrics.New()
		cfg.Metrics = reg
		res, err := Run(proto, cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		var ctlTotal, sent, activations int64
		var netSent, netDelivered int64
		for _, c := range snap.Counters {
			switch c.Name {
			case "coord_control_packets_total":
				ctlTotal += c.Value
			case "coord_data_packets_sent_total":
				sent = c.Value
			case "coord_activations_total":
				activations = c.Value
			case "simnet_messages_sent_total":
				netSent = c.Value
			case "simnet_messages_delivered_total":
				netDelivered = c.Value
			}
		}
		if ctlTotal != res.ControlPackets {
			t.Errorf("%s: control counter %d != result %d", proto, ctlTotal, res.ControlPackets)
		}
		if activations != int64(res.ActivePeers) {
			t.Errorf("%s: activations %d != active peers %d", proto, activations, res.ActivePeers)
		}
		var peerSent int64
		for _, n := range res.PeerSent {
			peerSent += n
		}
		if sent != peerSent {
			t.Errorf("%s: data sent counter %d != per-peer sum %d", proto, sent, peerSent)
		}
		if netSent != res.NetStats.Sent || netDelivered != res.NetStats.Delivered {
			t.Errorf("%s: simnet counters (%d,%d) != NetStats (%d,%d)",
				proto, netSent, netDelivered, res.NetStats.Sent, res.NetStats.Delivered)
		}
		var delivered float64
		for _, g := range snap.Gauges {
			if g.Name == "coord_leaf_delivered_data" {
				delivered = g.Value
			}
		}
		if int64(delivered) != res.DeliveredData {
			t.Errorf("%s: delivered gauge %v != result %d", proto, delivered, res.DeliveredData)
		}
		if res.DeliveredData == 0 {
			t.Errorf("%s: run delivered nothing; test exercised no counters", proto)
		}
	}
}
