package coord

import (
	"p2pmss/internal/overlay"
	"p2pmss/internal/simnet"
)

// dcop implements the Distributed Coordination Protocol of §3.4 — the
// redundant flooding protocol where a contents peer may be selected by
// multiple parents and merges (unions) the subsequences assigned to it.
//
// Step 1: the leaf peer selects H contents peers and sends each a content
// request. Step 2: a peer receiving the request starts transmitting its
// division of the enhanced sequence and floods control packets to up to H
// peers not in its view. Step 3: a peer receiving a control packet merges
// the sender's view, starts (or extends) its transmission from the marked
// packet, and — while its view is not full — floods further control
// packets. A peer whose Select(CP, CP_i, H) returns φ stops selecting.
type dcop struct {
	r *runner
}

func (d *dcop) start() {
	r := d.r
	sel := overlay.SelectFrom(r.eng.Rand(), r.cfg.N, overlay.View{}, r.cfg.H)
	for u, cp := range sel {
		m := reqMsg{Rate: r.cfg.Rate, Index: u, Round: 1}
		if r.cfg.LeafShares {
			m.Selected = sel
		}
		r.sendCtl(r.leafID(), simnet.NodeID(cp), m, 1)
	}
}

func (d *dcop) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		d.onRequest(p, msg)
	case ctlMsg:
		d.onControl(p, msg)
	}
}

// onRequest is step 2: activation by the leaf peer.
func (d *dcop) onRequest(p *peerNode, m reqMsg) {
	p.view.Add(p.id)
	p.view.AddAll(m.Selected)
	s, rate := d.r.initialAssignment(m.Index, m.Selected)
	p.activate(m.Round, s, rate)
	d.selectAndSend(p, d.r.cfg.FirstFanout, m.Round+1)
}

// onControl is step 3: activation (or extension) by a parent peer.
func (d *dcop) onControl(p *peerNode, m ctlMsg) {
	p.view.Add(p.id)
	p.view.Add(m.Parent)
	p.view.AddAll(m.View)
	p.activate(m.Round, m.AssignedSeq, m.ChildRate)
	if !p.view.Full() {
		d.selectAndSend(p, d.r.cfg.H, m.Round+1)
	}
}

// selectAndSend selects up to fanout peers outside p's view, hands each a
// division of p's remaining stream (re-enhanced with parity interval h),
// and switches p to its own share δ time units later (§3.3).
//
// Per §3.3 a parent takes at most H children over its lifetime ("a parent
// CP_j surely takes the number H of child contents peers"): the
// pseudocode's per-receipt re-selection therefore only tops the child set
// up to H — without the cap DCoP's redundant flooding would exceed
// TCoP's traffic at small H, contradicting the paper's Figure 10/11
// comparison.
func (d *dcop) selectAndSend(p *peerNode, fanout, round int) {
	r := d.r
	if remaining := r.cfg.H - p.childrenTaken; fanout > remaining {
		fanout = remaining
	}
	if fanout <= 0 {
		return
	}
	children := overlay.Select(r.eng.Rand(), p.view, fanout)
	if len(children) == 0 {
		return // Select returned φ: stop selecting child peers.
	}
	p.childrenTaken += len(children)
	p.view.AddAll(children)

	offset := p.tx.currentOffset()
	mark := markOffset(offset, r.cfg.Delta, p.tx.rate)
	parts, childRate := shareOut(p.tx.s, mark, p.tx.rate, r.cfg.Interval, len(children)+1)
	vm := viewMembers(p.view)
	for u, cp := range children {
		msg := ctlMsg{
			Parent:    p.id,
			View:      vm,
			SeqOffset: offset,
			Rate:      p.tx.rate,
			ChildRate: childRate,
			Children:  len(children),
			ChildIdx:  u + 1,
			Round:     round,
		}
		if parts != nil {
			msg.AssignedSeq = parts[u+1]
		}
		r.sendCtl(simnet.NodeID(p.id), simnet.NodeID(cp), msg, round)
	}
	// The parent changes its own subsequence to its share and reduces its
	// rate δ time units after sending the control packets (§3.3).
	keep, given := splitParts(parts)
	p.tx.planShare(keep, given, p.tx.rate, childRate, r.cfg.Delta)
}
