package coord

import (
	"p2pmss/internal/engine"
	"p2pmss/internal/simnet"
)

// dcop drives the Distributed Coordination Protocol of §3.4 — the
// redundant flooding protocol where a contents peer may be selected by
// multiple parents and merges (unions) the subsequences assigned to it.
// All transitions live in internal/engine; this driver only converts
// simnet messages to engine events (and computes the initial
// assignment, which needs the runner's content and bandwidth model).
type dcop struct {
	r *runner
}

func (d *dcop) start() {
	d.r.initEngine(true)
	d.r.startRequests()
}

func (d *dcop) deliver(p *peerNode, from simnet.NodeID, m simnet.Message) {
	switch msg := m.(type) {
	case reqMsg:
		s, rate := d.r.initialAssignment(msg.Index, msg.Selected)
		d.r.dispatchCtx(p, &engine.Request{Assigned: s, Rate: rate, Selected: msg.Selected, Round: msg.Round}, msg.Span)
	case *ctlMsg:
		d.r.dispatchCtx(p, &engine.Control{Msg: msg}, msg.Span)
	case *commitMsg:
		d.r.dispatchCtx(p, &engine.Commit{Msg: msg}, msg.Span)
	}
}
