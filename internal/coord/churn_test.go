package coord

import (
	"fmt"
	"testing"

	"p2pmss/internal/overlay"
)

// These tests pin down the property the engine extraction bought the
// simulator: the live layer's churn-tolerance machinery — handshake
// deadlines, alternate-peer retry waves, commit re-absorption — now runs
// under virtual time, so churn scenarios replay bit-identically.

func churnConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.N = 12
	cfg.H = 3
	cfg.Rate = 10
	cfg.Delta = 1
	cfg.Retries = 2
	cfg.Seed = seed
	return cfg
}

// outcomesFingerprint flattens a run's engine outcomes (tree shape,
// counters) into one comparable string.
func outcomesFingerprint(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := Run(TCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ""
	for _, o := range res.Outcomes {
		s += fmt.Sprintf("%d a=%v p=%d k=%v r=%d ab=%d c=%v\n",
			o.ID, o.Active, o.Parent, o.Children, o.Retried, o.Absorbed, o.Committed)
	}
	return s
}

// TestTCoPCrashFailoverDeterministic crash-stops peers before the run:
// controls to them fail at send time, parents pull alternates from the
// spare queue, and two runs of the same seed replay identically.
func TestTCoPCrashFailoverDeterministic(t *testing.T) {
	retriedSome := false
	for seed := int64(1); seed <= 6; seed++ {
		cfg := churnConfig(seed)
		cfg.CrashPeers = []overlay.PeerID{1, 4}
		a := outcomesFingerprint(t, cfg)
		b := outcomesFingerprint(t, cfg)
		if a != b {
			t.Fatalf("seed %d: two runs diverged\n%s\n--vs--\n%s", seed, a, b)
		}
		res, err := Run(TCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			if (o.ID == 1 || o.ID == 4) && o.Active {
				t.Fatalf("seed %d: crashed peer %d activated", seed, o.ID)
			}
			if o.Retried > 0 {
				retriedSome = true
			}
		}
	}
	if !retriedSome {
		t.Fatal("no seed exercised the alternate-peer failover path")
	}
}

// TestTCoPConfirmDeadlineRetryWave crashes peers after the controls
// reach them but before their confirmations go out (t=2.5 with δ=1:
// requests arrive at 1, controls at 2, confirmations at 3). The silent
// children trip the handshake deadline and a doubled-backoff retry wave
// goes to alternates — deterministically.
func TestTCoPConfirmDeadlineRetryWave(t *testing.T) {
	retriedSome := false
	for seed := int64(1); seed <= 6; seed++ {
		cfg := churnConfig(seed)
		cfg.CrashPeers = []overlay.PeerID{2, 7}
		cfg.CrashAt = 2.5
		a := outcomesFingerprint(t, cfg)
		if b := outcomesFingerprint(t, cfg); a != b {
			t.Fatalf("seed %d: two runs diverged\n%s\n--vs--\n%s", seed, a, b)
		}
		res, err := Run(TCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			retriedSome = retriedSome || o.Retried > 0
		}
	}
	if !retriedSome {
		t.Fatal("no seed tripped the handshake deadline into a retry wave")
	}
}

// TestTCoPCommitReabsorption crashes peers between their confirmation
// and the commit (t=3.5): the parent's commit send fails and the share
// folds back into the parent's own stream, observable as Absorbed > 0.
func TestTCoPCommitReabsorption(t *testing.T) {
	absorbedSome := false
	for seed := int64(1); seed <= 6; seed++ {
		cfg := churnConfig(seed)
		cfg.CrashPeers = []overlay.PeerID{3, 8}
		cfg.CrashAt = 3.5
		a := outcomesFingerprint(t, cfg)
		if b := outcomesFingerprint(t, cfg); a != b {
			t.Fatalf("seed %d: two runs diverged\n%s\n--vs--\n%s", seed, a, b)
		}
		res, err := Run(TCoP, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			absorbedSome = absorbedSome || o.Absorbed > 0
		}
	}
	if !absorbedSome {
		t.Fatal("no seed exercised commit re-absorption")
	}
}
