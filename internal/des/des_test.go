package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(3, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New(1)
	var times []float64
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancel after fire is a no-op.
	ev2 := e.At(2, func() {})
	e.Run()
	ev2.Cancel()
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Errorf("fired = %v", fired)
	}
	if e.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", e.Now())
	}
	e.RunFor(10)
	if len(fired) != 4 {
		t.Errorf("fired after RunFor = %v", fired)
	}
}

func TestPending(t *testing.T) {
	e := New(1)
	ev := e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d", e.Pending())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != c.Rand().Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("At(past) did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}
