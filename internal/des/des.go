// Package des provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, and a seeded random source. All
// simulation-side randomness in this repository flows from Engine.Rand so
// experiment runs are reproducible from a seed.
//
// Events scheduled for the same instant fire in scheduling order, which
// keeps runs deterministic across platforms.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a handle to a scheduled callback; it can be cancelled.
type Event struct {
	t     float64
	seq   int64
	fn    func()
	done  bool
	index int // position in the heap, -1 when popped/cancelled
}

// Time returns the virtual time the event fires at.
func (ev *Event) Time() float64 { return ev.t }

// Cancel prevents a pending event from firing. Cancelling an already
// fired or cancelled event is a no-op.
func (ev *Event) Cancel() { ev.done = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now     float64
	pq      eventHeap
	nextSeq int64
	rng     *rand.Rand
	fired   int64
}

// New returns an engine with its clock at 0 and randomness seeded with
// the given seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() int64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.done {
			n++
		}
	}
	return n
}

// At schedules fn to run at virtual time t (not before the current time).
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{t: t, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn to run d time units from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.done {
			continue
		}
		ev.done = true
		e.now = ev.t
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for d units of virtual time from now.
func (e *Engine) RunFor(d float64) { e.RunUntil(e.now + d) }

func (e *Engine) peek() (float64, bool) {
	for len(e.pq) > 0 {
		if e.pq[0].done {
			heap.Pop(&e.pq)
			continue
		}
		return e.pq[0].t, true
	}
	return 0, false
}
