package des

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < 1000; j++ {
			e.At(float64(j%97), func() {})
		}
		e.Run()
	}
}

func BenchmarkNestedEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(1)
		var chain func()
		n := 0
		chain = func() {
			n++
			if n < 1000 {
				e.After(1, chain)
			}
		}
		e.After(1, chain)
		e.Run()
	}
}
