package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	tr := New(10)
	tr.Record(1, 0, "activate", "peer %d at round %d", 0, 1)
	tr.Record(2, 1, "control", "to %d", 2)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != "activate" || !strings.Contains(evs[0].Detail, "round 1") {
		t.Errorf("event = %+v", evs[0])
	}
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Errorf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Record(float64(i), i, "k", "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	// Oldest evicted: remaining are e4, e5, e6 in order.
	for i, want := range []string{"e4", "e5", "e6"} {
		if evs[i].Detail != want {
			t.Errorf("evs[%d] = %q, want %q", i, evs[i].Detail, want)
		}
	}
	if tr.Dropped() != 4 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

func TestFilterAndCounts(t *testing.T) {
	tr := New(10)
	tr.Record(1, 0, "a", "x")
	tr.Record(2, 0, "b", "y")
	tr.Record(3, 0, "a", "z")
	if got := tr.Filter("a"); len(got) != 2 {
		t.Errorf("Filter(a) = %d", len(got))
	}
	c := tr.Counts()
	if c["a"] != 2 || c["b"] != 1 {
		t.Errorf("Counts = %v", c)
	}
}

func TestEnableDisable(t *testing.T) {
	tr := New(5)
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("still enabled")
	}
	tr.Record(1, 0, "k", "x")
	if tr.Len() != 0 {
		t.Error("recorded while disabled")
	}
	tr.SetEnabled(true)
	tr.Record(1, 0, "k", "x")
	if tr.Len() != 1 {
		t.Error("not recorded after enable")
	}
}

func TestDump(t *testing.T) {
	tr := New(10)
	tr.Record(2, 1, "b", "later")
	tr.Record(1, 0, "a", "earlier")
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "earlier") || !strings.Contains(out, "a=1") {
		t.Errorf("dump = %q", out)
	}
	// Sorted by time: "earlier" printed before "later".
	if strings.Index(out, "earlier") > strings.Index(out, "later") {
		t.Error("dump not time-sorted")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(float64(i), g, "k", "g%d", g)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 1000 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.Dropped() != 600 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	New(0)
}
