package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	tr := New(10)
	tr.Record(1, 0, "activate", "peer %d at round %d", 0, 1)
	tr.Record(2, 1, "control", "to %d", 2)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != "activate" || !strings.Contains(evs[0].Detail, "round 1") {
		t.Errorf("event = %+v", evs[0])
	}
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Errorf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Record(float64(i), i, "k", "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	// Oldest evicted: remaining are e4, e5, e6 in order.
	for i, want := range []string{"e4", "e5", "e6"} {
		if evs[i].Detail != want {
			t.Errorf("evs[%d] = %q, want %q", i, evs[i].Detail, want)
		}
	}
	if tr.Dropped() != 4 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

func TestFilterAndCounts(t *testing.T) {
	tr := New(10)
	tr.Record(1, 0, "a", "x")
	tr.Record(2, 0, "b", "y")
	tr.Record(3, 0, "a", "z")
	if got := tr.Filter("a"); len(got) != 2 {
		t.Errorf("Filter(a) = %d", len(got))
	}
	c := tr.Counts()
	if c["a"] != 2 || c["b"] != 1 {
		t.Errorf("Counts = %v", c)
	}
}

func TestEnableDisable(t *testing.T) {
	tr := New(5)
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("still enabled")
	}
	tr.Record(1, 0, "k", "x")
	if tr.Len() != 0 {
		t.Error("recorded while disabled")
	}
	tr.SetEnabled(true)
	tr.Record(1, 0, "k", "x")
	if tr.Len() != 1 {
		t.Error("not recorded after enable")
	}
}

func TestDump(t *testing.T) {
	tr := New(10)
	tr.Record(2, 1, "b", "later")
	tr.Record(1, 0, "a", "earlier")
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "earlier") || !strings.Contains(out, "a=1") {
		t.Errorf("dump = %q", out)
	}
	// Sorted by time: "earlier" printed before "later".
	if strings.Index(out, "earlier") > strings.Index(out, "later") {
		t.Error("dump not time-sorted")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(float64(i), g, "k", "g%d", g)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 1000 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.Dropped() != 600 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
}

// TestParallelRecordAndRead races writers against Events/Dump/Counts
// readers; run under -race this proves the tracer's locking covers every
// public path, and afterwards no increment may have been lost.
func TestParallelRecordAndRead(t *testing.T) {
	tr := New(256)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(float64(i), g, "k", "g%d-%d", g, i)
			}
		}(g)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.Events()
				tr.Counts()
				tr.Dump(io.Discard)      //nolint:errcheck
				tr.DumpJSONL(io.Discard) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := int64(tr.Len()) + tr.Dropped(); got != writers*perWriter {
		t.Errorf("held+dropped = %d, want %d", got, writers*perWriter)
	}
	if tr.Len() != 256 {
		t.Errorf("len = %d, want capacity 256", tr.Len())
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tr := New(10)
	tr.Record(2.5, 1, "control", "to %d", 3)
	tr.Record(1.25, -1, "repair", "asking node 0")
	var b strings.Builder
	if err := tr.DumpJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	want := []Event{
		{Time: 1.25, Node: -1, Kind: "repair", Detail: "asking node 0"},
		{Time: 2.5, Node: 1, Kind: "control", Detail: "to 3"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteJSONLOrderPreserved(t *testing.T) {
	events := []Event{{Time: 3, Kind: "c"}, {Time: 1, Kind: "a"}}
	var b strings.Builder
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	// WriteJSONL preserves the given order; sorting is DumpJSONL's job.
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"c"`) {
		t.Errorf("lines = %q", lines)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	New(0)
}
