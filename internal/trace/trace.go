// Package trace records structured simulation events — activations,
// control packets, stream hand-offs, crashes — into a bounded buffer for
// debugging and timeline analysis (cmd/msstrace renders them).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one recorded occurrence.
type Event struct {
	// Time is the (virtual) time of the event.
	Time float64 `json:"t"`
	// Node is the acting node (contents peer index, or -1 for the leaf).
	Node int `json:"node"`
	// Kind classifies the event ("activate", "control", "data", ...).
	Kind string `json:"kind"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail"`
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("%10.3f  node %3d  %-10s %s", e.Time, e.Node, e.Kind, e.Detail)
}

// Tracer collects events up to a capacity; once full, the oldest events
// are evicted (ring semantics). The zero value is unusable; use New.
// Tracer is safe for concurrent use (the live runtime records from many
// goroutines).
type Tracer struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	start   int // ring head
	dropped int64
	enabled bool
}

// New returns a tracer holding up to capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: capacity %d must be positive", capacity))
	}
	return &Tracer{cap: capacity, enabled: true}
}

// Enabled reports whether recording is on.
func (t *Tracer) Enabled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// SetEnabled toggles recording.
func (t *Tracer) SetEnabled(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = on
}

// Record appends an event (dropping the oldest beyond capacity).
func (t *Tracer) Record(time float64, node int, kind, format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		return
	}
	ev := Event{Time: time, Node: node, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.start] = ev
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Len returns how many events are currently held.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were evicted.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the held events in recording order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Filter returns the held events of one kind, in order.
func (t *Tracer) Filter(kind string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Counts tallies events per kind.
func (t *Tracer) Counts() map[string]int {
	out := make(map[string]int)
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}

// Dump writes the timeline (sorted by time, stable) to w, followed by a
// per-kind summary.
func (t *Tracer) Dump(w io.Writer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	for _, e := range evs {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	counts := t.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if _, err := fmt.Fprintf(w, "-- %d events", len(evs)); err != nil {
		return err
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, " (%d evicted)", d); err != nil {
			return err
		}
	}
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "  %s=%d", k, counts[k]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSONL writes events to w as JSON Lines: one compact JSON object
// per event, in the given order. The format round-trips through
// encoding/json, so downstream tools (jq, pandas) can stream it.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// DumpJSONL writes the held timeline (sorted by time, stable) to w as
// JSON Lines. It is the machine-readable counterpart of Dump; the
// per-kind summary is omitted — consumers aggregate themselves.
func (t *Tracer) DumpJSONL(w io.Writer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return WriteJSONL(w, evs)
}
