// Package obs consolidates the observability configuration shared by
// the simulated (coord) and live runtimes into one struct. Before it
// existed every config carried its own parallel Trace/Metrics/Spans/
// SpanTrace/Flight fields; Observability is the single place to set
// them, and each runtime folds it into its legacy fields during
// normalization, so the two spellings stay equivalent.
package obs

import (
	"p2pmss/internal/flight"
	"p2pmss/internal/metrics"
	"p2pmss/internal/span"
	"p2pmss/internal/trace"
)

// Observability bundles every optional observer a run can attach. The
// zero value attaches nothing. All observers are strictly passive:
// none of them feeds back into protocol behavior, so an instrumented
// run is event-for-event identical to a bare one.
type Observability struct {
	// Metrics, when non-nil, registers and updates the run's counters,
	// gauges and histograms on the registry.
	Metrics *metrics.Registry
	// Trace, when non-nil, records activations, control packets and
	// hand-offs. Simulation only: the live runtime has no virtual
	// clock to stamp trace events with, and ignores it.
	Trace *trace.Tracer
	// Spans, when non-nil, collects causal spans (handshake rounds,
	// confirmation waves, commits, hand-offs, streaming, leaf stalls).
	Spans *span.Collector
	// SpanTrace is the trace (session) ID spans are recorded under.
	// Zero lets each runtime derive one (from the seed in the sim,
	// from the session name in the live runtime).
	SpanTrace span.TraceID
	// Flight, when non-nil, records every peer's engine event/effect
	// stream into per-peer flight rings for topology forensics and
	// sim-vs-live divergence diffing.
	Flight *flight.Set
}
