package fluid

import (
	"math"
	"math/rand"
	"testing"
)

// bruteFlow replays one flow's send times tick by tick — the reference
// the closed-form ledger must match.
type bruteFlow struct {
	sends []float64
	downs []interval
}

func (b *bruteFlow) sendsBefore(until float64) int64 {
	var n int64
	for _, t := range b.sends {
		if t < until {
			n++
		}
	}
	return n
}

func (b *bruteFlow) deliveredIn(lo, hi float64) int64 {
	var n int64
	for _, t := range b.sends {
		if t < lo || t >= hi {
			continue
		}
		masked := false
		for _, d := range b.downs {
			if t >= d.from && t < d.to {
				masked = true
				break
			}
		}
		if !masked {
			n++
		}
	}
	return n
}

func TestLedgerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const horizon = 200.0
	for trial := 0; trial < 200; trial++ {
		l := NewLedger(1)
		var b bruteFlow
		now := 0.0
		open := segment{until: math.Inf(1)}
		emit := func(upTo float64) {
			if open.period <= 0 {
				return
			}
			for k := 0; ; k++ {
				ts := open.first + float64(k)*open.period
				if ts >= upTo {
					return
				}
				b.sends = append(b.sends, ts)
			}
		}
		masked := false
		for now < horizon {
			now += rng.Float64() * 20
			switch op := rng.Intn(4); op {
			case 0, 1: // reassign
				emit(now)
				rate := 0.2 + rng.Float64()*5
				phase := rng.Float64() / rate
				l.Start(0, now, phase, 1/rate)
				open = segment{first: now + phase, period: 1 / rate, until: math.Inf(1)}
			case 2: // crash
				if !masked {
					masked = true
					l.Mask(0, now)
					b.downs = append(b.downs, interval{from: now, to: math.Inf(1)})
				}
			case 3: // rejoin
				if masked {
					masked = false
					l.Unmask(0, now)
					b.downs[len(b.downs)-1].to = now
				}
			}
		}
		emit(horizon + 100) // past every probe below

		for probe := 0; probe < 20; probe++ {
			until := rng.Float64() * (horizon + 20)
			if got, want := l.Sends(0, until), b.sendsBefore(until); got != want {
				t.Fatalf("trial %d: Sends(%v) = %d, brute force %d", trial, until, got, want)
			}
			lo := rng.Float64() * horizon
			hi := lo + rng.Float64()*60
			got := l.Arrivals(lo, hi, 0, 1)
			want := float64(b.deliveredIn(lo, hi))
			if got != want {
				t.Fatalf("trial %d: Arrivals(%v,%v) = %v, brute force %v", trial, lo, hi, got, want)
			}
		}
	}
}

func TestLedgerBoundaries(t *testing.T) {
	l := NewLedger(2)
	// Flow 0: first send at 1.0, period 1 → sends at 1, 2, 3, ...
	l.Start(0, 0, 1.0, 1.0)
	if got := l.Sends(0, 1.0); got != 0 {
		t.Errorf("send exactly at the bound must be excluded: got %d", got)
	}
	if got := l.Sends(0, 1.0000001); got != 1 {
		t.Errorf("Sends just past first = %d, want 1", got)
	}
	if got := l.Sends(0, 10.5); got != 10 {
		t.Errorf("Sends(10.5) = %d, want 10", got)
	}
	// Cut at 5.0: the send at exactly 5.0 is cancelled.
	l.Cut(0, 5.0)
	if got := l.Sends(0, 100); got != 4 {
		t.Errorf("Sends after cut = %d, want 4 (at 1..4)", got)
	}
	// Arrivals map the window back by latency and thin by survival.
	l.Start(1, 0, 0.5, 1.0) // sends at 0.5, 1.5, 2.5, ...
	got := l.Arrivals(10.5, 14.5, 10, 0.75)
	// Sends in [0.5, 4.5): 0.5, 1.5, 2.5, 3.5 from flow 1; flow 0 adds 1..4.
	if want := 8 * 0.75; got != want {
		t.Errorf("Arrivals = %v, want %v", got, want)
	}
	// Zero-rate Start just cuts.
	l.Start(1, 3.0, 0.1, 0)
	if gotS := l.Sends(1, 100); gotS != 3 {
		t.Errorf("Sends after zero-period Start = %d, want 3", gotS)
	}
}

func TestLedgerMaskSuppressesArrivalsNotSends(t *testing.T) {
	l := NewLedger(1)
	l.Start(0, 0, 1.0, 1.0) // sends at 1, 2, 3, ...
	l.Mask(0, 2.5)
	l.Unmask(0, 5.5)
	if got := l.Sends(0, 8.5); got != 8 {
		t.Errorf("Sends must count through downtime: got %d, want 8", got)
	}
	// Sends at 3, 4, 5 are masked; 1, 2, 6, 7, 8 arrive.
	if got := l.Arrivals(0, 8.5, 0, 1); got != 5 {
		t.Errorf("Arrivals = %v, want 5", got)
	}
	// Double mask / unmatched unmask are no-ops.
	l.Mask(0, 9)
	l.Mask(0, 10)
	l.Unmask(0, 11)
	l.Unmask(0, 12)
	if got := l.Arrivals(8.5, 13, 0, 1); got != 2 {
		t.Errorf("Arrivals after re-mask = %v, want 2 (at 11 and 12)", got)
	}
}
