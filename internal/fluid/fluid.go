// Package fluid is the flow-level data plane: instead of materializing
// one DES event per data packet, each transmitter is modeled as a slot
// grid — a first-send time and a period — and packet counts over any
// interval are evaluated in closed form. A coordination hand-off or a
// DCoP merge cuts the current segment and opens a new one (with a fresh
// phase, mirroring the packet plane's randomized first slot), so the
// per-run cost is proportional to the number of coordination events,
// not to rate × time. That is what lets an mssim sweep reach n = 10⁵
// peers: the packet plane would schedule ~rate·n events per time unit,
// the fluid plane schedules none.
//
// Exactness: at zero jitter and zero loss the packet plane's send times
// are exactly the slot grid (modulo accumulated floating-point drift in
// its repeated After(1/rate) hops), so Sends and Arrivals agree with
// per-packet counting up to boundary ties. Jitter is folded in as its
// mean (latency + Jitter/2) and Bernoulli loss as a thinning factor, so
// with impairments the fluid counts are expectations, not samples.
package fluid

import "math"

// segment is one steady-state stretch of a flow: sends at
// first, first+period, first+2·period, … strictly before until.
type segment struct {
	first  float64
	period float64
	until  float64 // +Inf while the segment is open
}

// countIn returns the number of the segment's slot ticks in [lo, hi).
func (s segment) countIn(lo, hi float64) int64 {
	if s.period <= 0 {
		return 0
	}
	if lo < s.first {
		lo = s.first
	}
	if hi > s.until {
		hi = s.until
	}
	if hi <= lo {
		return 0
	}
	n := int64(math.Ceil((hi-s.first)/s.period)) - int64(math.Ceil((lo-s.first)/s.period))
	if n < 0 {
		return 0
	}
	return n
}

// interval is a half-open [from, to) downtime stretch of a flow's
// sender (crash until rejoin): sends on the grid still tick — the
// packet plane's transmitter keeps its slot schedule while crashed —
// but the network drops them, so they never arrive.
type interval struct {
	from, to float64
}

// Ledger tracks every flow of one run. Flow IDs are the contents-peer
// indices 0..n-1. The zero Ledger is not usable; call NewLedger.
type Ledger struct {
	flows [][]segment
	masks [][]interval
}

// NewLedger returns a ledger for n flows, all idle.
func NewLedger(n int) *Ledger {
	return &Ledger{flows: make([][]segment, n), masks: make([][]interval, n)}
}

// Start cuts flow id's open segment at now and opens a new one whose
// first send is at now+phase with the given period. A non-positive
// period just cuts (the flow goes idle), mirroring a zero-rate
// assignment in the packet plane.
func (l *Ledger) Start(id int, now, phase, period float64) {
	l.Cut(id, now)
	if period <= 0 {
		return
	}
	l.flows[id] = append(l.flows[id], segment{first: now + phase, period: period, until: math.Inf(1)})
}

// Cut closes flow id's open segment at now: the send scheduled at or
// after now never happens (the packet plane cancels the pending slot
// event on reassignment).
func (l *Ledger) Cut(id int, now float64) {
	segs := l.flows[id]
	if n := len(segs); n > 0 && math.IsInf(segs[n-1].until, 1) {
		segs[n-1].until = now
	}
}

// Mask opens a downtime interval for flow id at now: grid ticks keep
// counting toward Sends, but arrivals inside the mask are suppressed.
// A second Mask while one is open is a no-op.
func (l *Ledger) Mask(id int, now float64) {
	ms := l.masks[id]
	if n := len(ms); n > 0 && math.IsInf(ms[n-1].to, 1) {
		return
	}
	l.masks[id] = append(ms, interval{from: now, to: math.Inf(1)})
}

// Unmask closes flow id's open downtime interval at now (rejoin).
// Without an open mask it is a no-op.
func (l *Ledger) Unmask(id int, now float64) {
	ms := l.masks[id]
	if n := len(ms); n > 0 && math.IsInf(ms[n-1].to, 1) {
		ms[n-1].to = now
	}
}

// Sends returns how many packets flow id has put on the wire by until
// (exclusive), downtime included — the packet plane's transmitter
// counts a send attempt even while its node is crashed; the network is
// what drops it.
func (l *Ledger) Sends(id int, until float64) int64 {
	var n int64
	for _, s := range l.flows[id] {
		n += s.countIn(math.Inf(-1), until)
	}
	return n
}

// delivered returns how many of flow id's sends in [lo, hi) survive the
// sender's downtime masks.
func (l *Ledger) delivered(id int, lo, hi float64) int64 {
	var n int64
	for _, s := range l.flows[id] {
		n += s.countIn(lo, hi)
		for _, m := range l.masks[id] {
			mLo, mHi := m.from, m.to
			if mLo < lo {
				mLo = lo
			}
			if mHi > hi {
				mHi = hi
			}
			n -= s.countIn(mLo, mHi)
		}
	}
	return n
}

// Arrivals returns the expected number of packets arriving at the leaf
// inside the window [w0, w1), over all flows. latency is the mean
// one-way delay (Delta + Jitter/2); thin is the per-packet survival
// probability (1 - LossProb). A packet sent at t arrives at t+latency,
// so the window maps back to sends in [w0-latency, w1-latency).
func (l *Ledger) Arrivals(w0, w1, latency, thin float64) float64 {
	var n int64
	for id := range l.flows {
		n += l.delivered(id, w0-latency, w1-latency)
	}
	return float64(n) * thin
}
