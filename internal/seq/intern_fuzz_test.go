package seq

import (
	"testing"
)

// decodeSeq turns fuzzer bytes into a Sequence mixing data and parity
// packets from a small identity universe, so collisions between the two
// decoded sequences are common. High bit picks parity; the low bits
// pick which identities, so equal bytes decode to equal identities.
func decodeSeq(plan []byte) Sequence {
	var out Sequence
	for _, b := range plan {
		if b&0x80 != 0 {
			// Parity over a 3-packet group; 16 distinct identities.
			base := int64(b&0x0f) * 3
			out = append(out, NewParity(
				[]Packet{NewData(base), NewData(base + 1), NewData(base + 2)},
				MidPos(float64(base), float64(base+3)),
			))
		} else {
			out = append(out, NewData(int64(b&0x3f)))
		}
	}
	return out
}

// distinct counts the distinct identities of q.
func distinct(q Sequence) int {
	keys := make(map[string]bool, len(q))
	for _, p := range q {
		keys[p.Key()] = true
	}
	return len(keys)
}

// FuzzInternSetAlgebra checks that the interned-ID set (the engine's
// zero-alloc bookkeeping representation) agrees with the reference
// Sequence algebra on every fuzzer-chosen pair of sequences:
//
//   - Materialize after AddSeq ≡ Union (same identities, canonical order);
//   - IntersectCount ≡ |Intersect| counted by identity;
//   - Covers ≡ the subset relation Intersect(a, b) == distinct(b);
//   - AddSet ≡ AddSeq of the materialized sequence.
func FuzzInternSetAlgebra(f *testing.F) {
	f.Add([]byte{0}, []byte{0})
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{0x81, 0x81, 5}, []byte{0x81, 5, 9})
	f.Add([]byte{10, 20, 30, 0x8f}, []byte{})
	f.Add([]byte{63, 0x80, 0, 63}, []byte{0x80, 63, 1})
	f.Fuzz(func(t *testing.T, pa, pb []byte) {
		a, b := decodeSeq(pa), decodeSeq(pb)

		tab := NewTable()
		var sa, sb Set
		sa.AddSeq(tab, a)
		sb.AddSeq(tab, b)

		// Each set holds exactly its sequence's distinct identities.
		if sa.Len() != distinct(a) {
			t.Fatalf("sa.Len()=%d, distinct(a)=%d", sa.Len(), distinct(a))
		}
		if sb.Len() != distinct(b) {
			t.Fatalf("sb.Len()=%d, distinct(b)=%d", sb.Len(), distinct(b))
		}

		// IntersectCount agrees with the reference Intersect.
		ref := Intersect(a, b)
		if got, want := sa.IntersectCount(&sb), distinct(ref); got != want {
			t.Fatalf("IntersectCount=%d, |Intersect|=%d", got, want)
		}

		// Covers is the subset relation.
		wantCovers := distinct(ref) == distinct(b)
		if got := sa.Covers(&sb); got != wantCovers {
			t.Fatalf("Covers=%v, want %v (|a∩b|=%d |b|=%d)",
				got, wantCovers, distinct(ref), distinct(b))
		}

		// Union via AddSeq materializes to exactly the distinct
		// identities of a ∪ b, duplicate-free. (seq.Union itself assumes
		// duplicate-free operands, so the reference here is the identity
		// key set, which tolerates the duplicates decodeSeq produces.)
		var su Set
		su.AddSeq(tab, a)
		su.AddSeq(tab, b)
		got := su.Materialize(tab)
		wantKeys := make(map[string]bool)
		for _, p := range a {
			wantKeys[p.Key()] = true
		}
		for _, p := range b {
			wantKeys[p.Key()] = true
		}
		if len(got) != len(wantKeys) {
			t.Fatalf("union materialized %d packets, want %d distinct", len(got), len(wantKeys))
		}
		for _, p := range got {
			if !wantKeys[p.Key()] {
				t.Fatalf("union contains foreign identity %s", p.Key())
			}
		}

		// On duplicate-free operands the materialized union matches
		// seq.Union exactly, in canonical order.
		da, db := a.Clone(), b.Clone()
		da.Sort()
		db.Sort()
		da, db = dedupe(da), dedupe(db)
		tab2 := NewTable()
		var sd Set
		sd.AddSeq(tab2, da)
		sd.AddSeq(tab2, db)
		union := Union(da.Clone(), db)
		union.Sort()
		got2 := sd.Materialize(tab2)
		got2.Sort()
		if !Equal(got2, union) {
			t.Fatalf("Materialize(AddSeq da,db) != Union(da,db):\n%v\n%v", got2, union)
		}

		// AddSet agrees with AddSeq of the same identities, and is
		// idempotent.
		var sv Set
		sv.AddSeq(tab, a)
		sv.AddSet(&sb)
		sv.AddSet(&sb)
		if sv.Len() != su.Len() || !sv.Covers(&su) || !su.Covers(&sv) {
			t.Fatalf("AddSet union (%d ids) disagrees with AddSeq union (%d ids)", sv.Len(), su.Len())
		}

		// A set covers itself and its parts.
		if !su.Covers(&sa) || !su.Covers(&sb) {
			t.Fatal("union must cover both operands")
		}
		if sa.Len() > 0 && !sa.Covers(&sa) {
			t.Fatal("set must cover itself")
		}
	})
}
