// Package seq implements the packet-sequence algebra of Section 2 of the
// paper: packets (data and XOR-parity), ordered packet sequences, and the
// operations the coordination protocols are defined in terms of — prefix
// pkt⟨t], postfix pkt[t⟩, union, intersection, and round-robin division
// into per-peer subsequences.
//
// A multimedia content is a sequence of data packets t_1 … t_l. Parity
// packets are created by the parity package and cover a set of other
// packets (possibly parity packets themselves, since subsequences are
// re-enhanced at each coordination level, cf. §3.6's t⟨5,⟨7,8⟩⟩).
//
// Ordering. Every packet carries a Pos value fixing its place in the
// stream a peer transmits. Data packet t_k has Pos k; a parity packet
// inserted between two packets gets the midpoint of their positions, so
// sequences derived from a common ancestor interleave consistently and
// Union can merge them by position.
package seq

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind distinguishes content data packets from XOR parity packets.
type Kind uint8

const (
	// Data is an original content packet t_k.
	Data Kind = iota
	// Parity is an XOR parity packet covering a recovery segment.
	Parity
)

// String returns "data" or "parity".
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Parity:
		return "parity"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is the unit of transmission in the MSS model.
//
// The zero value is not a valid packet; construct packets with NewData and
// NewParity so identity and position are consistent.
type Packet struct {
	// Kind is Data or Parity.
	Kind Kind
	// Index is the 1-based content index of a data packet (t_Index).
	// Zero for parity packets.
	Index int64
	// Covers holds the identity keys of the packets a parity packet
	// protects, in stream order. Nil for data packets.
	Covers []string
	// Pos is the packet's position in the transmission stream. Data
	// packet t_k has Pos k; parity packets carry fractional positions.
	Pos float64
	// Payload is the packet body. Experiments that only count packets
	// leave it nil; the content and live layers fill it in.
	Payload []byte
	// key caches the identity string so the §2 set algebra never
	// re-derives it on the hot path. Unexported (and so absent from
	// serialized packets); Key() falls back to computing it for packets
	// decoded from the wire or built as struct literals.
	key string
}

// NewData returns the content data packet t_index (1-based).
func NewData(index int64) Packet {
	p := Packet{Kind: Data, Index: index, Pos: float64(index)}
	p.key = computeKey(p)
	return p
}

// NewDataPayload returns t_index carrying the given payload.
func NewDataPayload(index int64, payload []byte) Packet {
	p := NewData(index)
	p.Payload = payload
	return p
}

// NewParity returns a parity packet covering the given packets, positioned
// at pos. The covered packets' keys are recorded in stream order.
func NewParity(covered []Packet, pos float64) Packet {
	keys := make([]string, len(covered))
	for i, c := range covered {
		keys[i] = c.Key()
	}
	p := Packet{Kind: Parity, Covers: keys, Pos: pos}
	p.key = computeKey(p)
	return p
}

// Key returns the packet's identity: "t<k>" for data packet t_k and
// "p(<keys>)" for a parity packet, matching the paper's t⟨…⟩ notation.
// Two packets with equal keys carry the same bytes. Packets built with
// NewData/NewParity return a cached string; others compute it.
func (p Packet) Key() string {
	if p.key != "" {
		return p.key
	}
	return computeKey(p)
}

// computeKey derives the identity string from the packet's fields.
func computeKey(p Packet) string {
	if p.Kind == Data {
		return "t" + strconv.FormatInt(p.Index, 10)
	}
	return "p(" + strings.Join(p.Covers, ",") + ")"
}

// SameIdentity reports whether a and b are the same packet (equal
// identity keys) without building key strings: data packets compare by
// index, parity packets by their cached keys.
func SameIdentity(a, b Packet) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == Data {
		return a.Index == b.Index
	}
	return a.Key() == b.Key()
}

// IsData reports whether p is a content data packet.
func (p Packet) IsData() bool { return p.Kind == Data }

// String renders the packet in the paper's notation.
func (p Packet) String() string { return p.Key() }

// Sequence is an ordered sequence of packets, sorted by Pos (ties broken
// by identity key so ordering is total and deterministic).
type Sequence []Packet

// FromIndices builds the data packet sequence ⟨t_i : i ∈ idx⟩.
func FromIndices(idx ...int64) Sequence {
	s := make(Sequence, len(idx))
	for i, k := range idx {
		s[i] = NewData(k)
	}
	return s
}

// Range returns the content sequence ⟨t_lo, …, t_hi⟩ inclusive.
func Range(lo, hi int64) Sequence {
	if hi < lo {
		return nil
	}
	s := make(Sequence, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		s = append(s, NewData(k))
	}
	return s
}

// less orders packets by position, then identity key.
func less(a, b Packet) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Key() < b.Key()
}

// Sort sorts the sequence in place into canonical order.
func (s Sequence) Sort() {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// Sorted reports whether the sequence is in canonical order.
func (s Sequence) Sorted() bool {
	return sort.SliceIsSorted(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// Clone returns a copy of the sequence sharing packet payloads.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// Keys returns the identity keys of all packets in order.
func (s Sequence) Keys() []string {
	ks := make([]string, len(s))
	for i, p := range s {
		ks[i] = p.Key()
	}
	return ks
}

// String renders the sequence in the paper's ⟨…⟩ notation.
func (s Sequence) String() string {
	return "⟨" + strings.Join(s.Keys(), ", ") + "⟩"
}

// DataIndices returns the content indices of the data packets in s, in order.
func (s Sequence) DataIndices() []int64 {
	var out []int64
	for _, p := range s {
		if p.IsData() {
			out = append(out, p.Index)
		}
	}
	return out
}

// CountData returns the number of data packets in s.
func (s Sequence) CountData() int {
	n := 0
	for _, p := range s {
		if p.IsData() {
			n++
		}
	}
	return n
}

// CountParity returns the number of parity packets in s.
func (s Sequence) CountParity() int { return len(s) - s.CountData() }

// IndexOfData returns the offset of data packet t_k in s, or -1.
func (s Sequence) IndexOfData(k int64) int {
	for i, p := range s {
		if p.IsData() && p.Index == k {
			return i
		}
	}
	return -1
}

// IndexOfKey returns the offset of the packet with the given identity key,
// or -1 if absent.
func (s Sequence) IndexOfKey(key string) int {
	for i, p := range s {
		if p.Key() == key {
			return i
		}
	}
	return -1
}

// Prefix returns pkt⟨t] — the prefix of s up to and including the packet at
// offset i. It panics if i is out of range.
func (s Sequence) Prefix(i int) Sequence {
	return s[:i+1].Clone()
}

// Postfix returns pkt[t⟩ — the postfix of s from offset i (inclusive) to the
// end. It panics if i is out of range.
func (s Sequence) Postfix(i int) Sequence {
	return s[i:].Clone()
}

// PostfixFromData returns pkt[t_k⟩ for data packet t_k. If t_k is not in s,
// the postfix starts at the first packet positioned after t_k would be.
func (s Sequence) PostfixFromData(k int64) Sequence {
	if i := s.IndexOfData(k); i >= 0 {
		return s.Postfix(i)
	}
	for i, p := range s {
		if p.Pos >= float64(k) {
			return s.Postfix(i)
		}
	}
	return nil
}

// Union returns the sequence containing every packet of a and b exactly
// once, in canonical order (paper: pkt_i ∪ pkt_j). Both inputs must be in
// canonical order; the result is.
func Union(a, b Sequence) Sequence {
	out := make(Sequence, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case SameIdentity(a[i], b[j]):
			out = append(out, a[i])
			i++
			j++
		case less(a[i], b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return dedupe(out)
}

// Intersect returns the sequence of packets present in both a and b
// (paper: pkt_i ∩ pkt_j), in canonical order. Canonically ordered inputs
// intersect by a linear merge with no allocation beyond the result;
// unsorted inputs fall back to a membership map.
func Intersect(a, b Sequence) Sequence {
	if a.Sorted() && b.Sorted() {
		var out Sequence
		j := 0
		for _, p := range a {
			for j < len(b) && less(b[j], p) {
				j++
			}
			if j < len(b) && SameIdentity(b[j], p) {
				out = append(out, p)
			}
		}
		return out
	}
	inB := make(map[string]struct{}, len(b))
	for _, p := range b {
		inB[p.Key()] = struct{}{}
	}
	var out Sequence
	for _, p := range a {
		if _, ok := inB[p.Key()]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Disjoint reports whether a and b share no packets
// (pkt_i ∩ pkt_j = φ, the condition §3.2 imposes on subsequences).
func Disjoint(a, b Sequence) bool { return len(Intersect(a, b)) == 0 }

// dedupe removes adjacent duplicate identities from a sorted sequence.
func dedupe(s Sequence) Sequence {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, p := range s[1:] {
		if !SameIdentity(p, out[len(out)-1]) {
			out = append(out, p)
		}
	}
	return out
}

// Divide splits s into H subsequences by round-robin: the j-th packet
// (0-based) of s goes to subsequence j mod H, matching §3.2's division
// rule. It returns all H subsequences; Divide(s, H)[i] is Div(s, H, CP_i)
// for the i-th assigned peer (0-based).
func Divide(s Sequence, H int) []Sequence {
	if H <= 0 {
		panic(fmt.Sprintf("seq: Divide fanout H=%d must be positive", H))
	}
	out := make([]Sequence, H)
	for j, p := range s {
		i := j % H
		out[i] = append(out[i], p)
	}
	return out
}

// Div returns the i-th (0-based) of the H round-robin subsequences of s
// without materializing the others.
func Div(s Sequence, H, i int) Sequence {
	if H <= 0 || i < 0 || i >= H {
		panic(fmt.Sprintf("seq: Div(H=%d, i=%d) out of range", H, i))
	}
	var out Sequence
	for j := i; j < len(s); j += H {
		out = append(out, s[j])
	}
	return out
}

// Equal reports whether a and b contain the same packets in the same order.
func Equal(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !SameIdentity(a[i], b[i]) {
			return false
		}
	}
	return true
}

// MidPos returns a position strictly between lo and hi suitable for an
// inserted packet. When the arithmetic midpoint rounds onto an endpoint
// it falls back to the smallest representable value above lo, so nested
// insertions keep producing distinct positions until the interval is a
// single ulp wide. Only when no representable position exists strictly
// between lo and hi (adjacent, equal, or inverted endpoints) does it
// return lo; ordering then falls through to the identity tie-break.
func MidPos(lo, hi float64) float64 {
	m := lo + (hi-lo)/2
	if m > lo && m < hi {
		return m
	}
	if n := math.Nextafter(lo, hi); n > lo && n < hi {
		return n
	}
	return lo
}
