package seq

import (
	"math"
	"math/rand"
	"testing"
)

// randomSequence builds a canonical sequence of data packets (drawn from
// 1..span) with parity packets nested up to two levels, mimicking the
// §3.6 re-enhancement shapes.
func randomSequence(rng *rand.Rand, span int64) Sequence {
	var s Sequence
	for k := int64(1); k <= span; k++ {
		if rng.Intn(2) == 0 {
			s = append(s, NewData(k))
		}
	}
	// Sprinkle parity packets over random pairs, occasionally nesting.
	var parities []Packet
	for i := 0; i+1 < len(s); i += 2 {
		if rng.Intn(3) == 0 {
			p := NewParity([]Packet{s[i], s[i+1]}, MidPos(s[i].Pos, s[i+1].Pos))
			if rng.Intn(4) == 0 && len(parities) > 0 {
				q := parities[len(parities)-1]
				p = NewParity([]Packet{s[i], q}, MidPos(s[i].Pos, s[i].Pos+1))
			}
			parities = append(parities, p)
		}
	}
	s = append(s, parities...)
	s.Sort()
	return dedupe(s)
}

// canonical asserts the invariant every algebra result must satisfy:
// sorted by (Pos, key) with no duplicate identities.
func canonical(t *testing.T, label string, s Sequence) {
	t.Helper()
	if !s.Sorted() {
		t.Fatalf("%s: not in canonical order: %v", label, s)
	}
	for i := 1; i < len(s); i++ {
		if SameIdentity(s[i-1], s[i]) {
			t.Fatalf("%s: duplicate identity %v at %d", label, s[i], i)
		}
	}
}

// The cached identity must always agree with the computed key, for both
// constructors and for struct literals that bypass them.
func TestCachedIdentityEqualsComputedKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		for _, p := range randomSequence(rng, 40) {
			if p.Key() != computeKey(p) {
				t.Fatalf("cached key %q != computed %q", p.Key(), computeKey(p))
			}
		}
	}
	lit := Packet{Kind: Data, Index: 12}
	if lit.Key() != "t12" {
		t.Errorf("literal data key = %q", lit.Key())
	}
	plit := Packet{Kind: Parity, Covers: []string{"t1", "p(t2,t3)"}}
	if plit.Key() != "p(t1,p(t2,t3))" {
		t.Errorf("literal parity key = %q", plit.Key())
	}
	if !SameIdentity(lit, NewData(12)) {
		t.Error("literal and constructed t12 not identical")
	}
	if SameIdentity(lit, NewData(13)) || SameIdentity(lit, plit) {
		t.Error("distinct packets reported identical")
	}
}

// Union/Intersect invariants over arbitrary generated sequences
// (including parity packets): canonical results, no duplicates,
// inclusion-exclusion on sizes, intersection contained in both inputs.
func TestSetAlgebraInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		a := randomSequence(rng, 30)
		b := randomSequence(rng, 30)
		u := Union(a, b)
		x := Intersect(a, b)
		canonical(t, "union", u)
		canonical(t, "intersect", x)
		if len(u)+len(x) != len(a)+len(b) {
			t.Fatalf("|A∪B|+|A∩B| = %d+%d, want |A|+|B| = %d+%d",
				len(u), len(x), len(a), len(b))
		}
		for _, p := range x {
			if a.IndexOfKey(p.Key()) < 0 || b.IndexOfKey(p.Key()) < 0 {
				t.Fatalf("intersection element %v missing from an input", p)
			}
		}
		if !Equal(Intersect(a, b), Intersect(b, a)) {
			t.Fatal("intersection not commutative")
		}
	}
}

// Sorted and unsorted inputs must agree on Intersect (the sorted path is
// a merge, the unsorted path a membership map).
func TestIntersectSortedUnsortedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a := randomSequence(rng, 25)
		b := randomSequence(rng, 25)
		want := Intersect(a, b)
		shuffled := b.Clone()
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := Intersect(a, shuffled); !Equal(got, want) {
			t.Fatalf("Intersect with shuffled b = %v, want %v", got, want)
		}
	}
}

// Divide invariants on arbitrary sequences: parts are pairwise disjoint,
// round-robin sized, and concatenation order-preserving (their union is
// the input).
func TestDivideInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		s := randomSequence(rng, 40)
		H := 1 + rng.Intn(6)
		parts := Divide(s, H)
		total := 0
		u := Sequence(nil)
		for i, p := range parts {
			want := len(s) / H
			if i < len(s)%H {
				want++
			}
			if len(p) != want {
				t.Fatalf("part %d has %d packets, want %d", i, len(p), want)
			}
			total += len(p)
			for j := i + 1; j < len(parts); j++ {
				if !Disjoint(p, parts[j]) {
					t.Fatalf("parts %d and %d overlap", i, j)
				}
			}
			u = Union(u, p)
		}
		if total != len(s) || !Equal(u, s) {
			t.Fatalf("division loses packets: %d/%d", total, len(s))
		}
	}
}

// Repeated nested insertion: MidPos keeps producing strictly-between
// positions until the interval narrows to a single ulp, instead of
// collapsing onto lo as soon as the arithmetic midpoint rounds.
func TestMidPosNestedInsertion(t *testing.T) {
	lo, hi := 1.0, 2.0
	distinct := 0
	for i := 0; i < 200; i++ {
		if math.Nextafter(lo, hi) >= hi {
			// No representable position strictly between: the documented
			// lo fallback is all that is left.
			if m := MidPos(lo, hi); m != lo {
				t.Fatalf("ulp-wide interval: MidPos(%v,%v) = %v, want lo", lo, hi, m)
			}
			break
		}
		m := MidPos(lo, hi)
		if !(m > lo && m < hi) {
			t.Fatalf("insertion %d: MidPos(%v, %v) = %v not strictly between", i, lo, hi, m)
		}
		hi = m
		distinct++
	}
	// Halving from (1,2) admits 52 strictly-between positions before the
	// interval narrows to one ulp of 1.0 — the representable maximum for
	// this chain. Anything less means MidPos collapsed early.
	if distinct < 52 {
		t.Errorf("only %d distinct nested positions before collapse", distinct)
	}
	// On huge intervals lo + (hi-lo)/2 overflows to +Inf; the Nextafter
	// fallback must still return a strictly-between position.
	if m := MidPos(-math.MaxFloat64, math.MaxFloat64); !(m > -math.MaxFloat64 && m < math.MaxFloat64) {
		t.Errorf("overflowing interval: MidPos = %v, want strictly between", m)
	}
}
