package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDataKeyAndPos(t *testing.T) {
	p := NewData(7)
	if p.Key() != "t7" {
		t.Errorf("Key() = %q, want t7", p.Key())
	}
	if p.Pos != 7 {
		t.Errorf("Pos = %v, want 7", p.Pos)
	}
	if !p.IsData() {
		t.Error("IsData() = false, want true")
	}
}

func TestNewParityKeyNesting(t *testing.T) {
	inner := NewParity([]Packet{NewData(7), NewData(8)}, 7.5)
	if inner.Key() != "p(t7,t8)" {
		t.Errorf("inner key = %q", inner.Key())
	}
	outer := NewParity([]Packet{NewData(5), inner}, 5.5)
	if outer.Key() != "p(t5,p(t7,t8))" {
		t.Errorf("outer key = %q", outer.Key())
	}
	if outer.IsData() {
		t.Error("parity IsData() = true")
	}
}

func TestRangeAndIndices(t *testing.T) {
	s := Range(3, 6)
	want := []int64{3, 4, 5, 6}
	got := s.DataIndices()
	if len(got) != len(want) {
		t.Fatalf("DataIndices() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DataIndices() = %v, want %v", got, want)
		}
	}
	if Range(5, 4) != nil {
		t.Error("empty Range not nil")
	}
}

func TestPrefixPostfix(t *testing.T) {
	s := Range(1, 8)
	pre := s.Prefix(2) // ⟨t1,t2,t3⟩
	if !Equal(pre, FromIndices(1, 2, 3)) {
		t.Errorf("Prefix = %v", pre)
	}
	post := s.Postfix(5) // ⟨t6,t7,t8⟩
	if !Equal(post, FromIndices(6, 7, 8)) {
		t.Errorf("Postfix = %v", post)
	}
	// Mutating the views must not alias the original.
	pre[0] = NewData(99)
	if s[0].Index != 1 {
		t.Error("Prefix aliases original")
	}
}

func TestPostfixFromData(t *testing.T) {
	s := FromIndices(1, 3, 5, 7)
	got := s.PostfixFromData(5)
	if !Equal(got, FromIndices(5, 7)) {
		t.Errorf("PostfixFromData(5) = %v", got)
	}
	// Absent index: start from first packet at or after that position.
	got = s.PostfixFromData(4)
	if !Equal(got, FromIndices(5, 7)) {
		t.Errorf("PostfixFromData(4) = %v", got)
	}
	if s.PostfixFromData(100) != nil {
		t.Error("PostfixFromData beyond end should be nil")
	}
}

func TestUnionPaperExample(t *testing.T) {
	// §2: pkt1 ∪ pkt2 ∪ pkt3 = ⟨t1..t8⟩ for pkt1=⟨t1,t2,t4,t5⟩,
	// pkt2=⟨t3,t6⟩, pkt3=⟨t7,t8⟩.
	u := Union(Union(FromIndices(1, 2, 4, 5), FromIndices(3, 6)), FromIndices(7, 8))
	if !Equal(u, Range(1, 8)) {
		t.Errorf("union = %v", u)
	}
}

func TestUnionDedupes(t *testing.T) {
	a := FromIndices(1, 2, 3)
	b := FromIndices(2, 3, 4)
	u := Union(a, b)
	if !Equal(u, Range(1, 4)) {
		t.Errorf("union = %v", u)
	}
}

func TestIntersectAndDisjoint(t *testing.T) {
	a := FromIndices(1, 2, 4, 5)
	b := FromIndices(2, 5, 9)
	got := Intersect(a, b)
	if !Equal(got, FromIndices(2, 5)) {
		t.Errorf("intersect = %v", got)
	}
	if Disjoint(a, b) {
		t.Error("Disjoint = true for overlapping sequences")
	}
	if !Disjoint(FromIndices(1, 3), FromIndices(2, 4)) {
		t.Error("Disjoint = false for disjoint sequences")
	}
}

func TestDivideRoundRobin(t *testing.T) {
	s := Range(1, 7)
	parts := Divide(s, 3)
	if !Equal(parts[0], FromIndices(1, 4, 7)) {
		t.Errorf("part0 = %v", parts[0])
	}
	if !Equal(parts[1], FromIndices(2, 5)) {
		t.Errorf("part1 = %v", parts[1])
	}
	if !Equal(parts[2], FromIndices(3, 6)) {
		t.Errorf("part2 = %v", parts[2])
	}
	for i := 0; i < 3; i++ {
		if !Equal(Div(s, 3, i), parts[i]) {
			t.Errorf("Div(%d) != Divide[%d]", i, i)
		}
	}
}

func TestDividePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Divide(s, 0) did not panic")
		}
	}()
	Divide(Range(1, 3), 0)
}

// Property: Divide partitions — subsequences are pairwise disjoint and
// their union is the original sequence.
func TestDividePartitionProperty(t *testing.T) {
	f := func(n uint8, h uint8) bool {
		l := int64(n%50) + 1
		H := int(h%8) + 1
		s := Range(1, l)
		parts := Divide(s, H)
		u := Sequence(nil)
		for i, p := range parts {
			for j := i + 1; j < len(parts); j++ {
				if !Disjoint(p, parts[j]) {
					return false
				}
			}
			u = Union(u, p)
		}
		return Equal(u, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative, associative, idempotent on random
// subsequences of a common ancestor stream.
func TestUnionAlgebraProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sub := func() Sequence {
		var s Sequence
		for k := int64(1); k <= 30; k++ {
			if rng.Intn(2) == 0 {
				s = append(s, NewData(k))
			}
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := sub(), sub(), sub()
		if !Equal(Union(a, b), Union(b, a)) {
			t.Fatal("union not commutative")
		}
		if !Equal(Union(Union(a, b), c), Union(a, Union(b, c))) {
			t.Fatal("union not associative")
		}
		if !Equal(Union(a, a), a) {
			t.Fatal("union not idempotent")
		}
	}
}

func TestSortAndSorted(t *testing.T) {
	s := FromIndices(3, 1, 2)
	if s.Sorted() {
		t.Error("unsorted sequence reported sorted")
	}
	s.Sort()
	if !Equal(s, FromIndices(1, 2, 3)) {
		t.Errorf("after Sort = %v", s)
	}
	if !s.Sorted() {
		t.Error("sorted sequence reported unsorted")
	}
}

func TestCounts(t *testing.T) {
	s := Range(1, 4)
	s = append(s, NewParity([]Packet{s[0], s[1]}, 0.5))
	s.Sort()
	if s.CountData() != 4 || s.CountParity() != 1 {
		t.Errorf("counts = %d data, %d parity", s.CountData(), s.CountParity())
	}
}

func TestIndexOf(t *testing.T) {
	s := FromIndices(2, 4, 6)
	if i := s.IndexOfData(4); i != 1 {
		t.Errorf("IndexOfData(4) = %d", i)
	}
	if i := s.IndexOfData(5); i != -1 {
		t.Errorf("IndexOfData(5) = %d", i)
	}
	if i := s.IndexOfKey("t6"); i != 2 {
		t.Errorf("IndexOfKey(t6) = %d", i)
	}
	if i := s.IndexOfKey("p(t1,t2)"); i != -1 {
		t.Errorf("IndexOfKey missing = %d", i)
	}
}

func TestMidPos(t *testing.T) {
	if m := MidPos(1, 2); m <= 1 || m >= 2 {
		t.Errorf("MidPos(1,2) = %v", m)
	}
	if m := MidPos(1, 1); m != 1 {
		t.Errorf("MidPos degenerate = %v", m)
	}
}

func TestStringNotation(t *testing.T) {
	s := FromIndices(1, 2)
	if got := s.String(); got != "⟨t1, t2⟩" {
		t.Errorf("String() = %q", got)
	}
	if Data.String() != "data" || Parity.String() != "parity" {
		t.Error("Kind.String wrong")
	}
}
