package seq

import "testing"

func BenchmarkUnion(b *testing.B) {
	x := Range(1, 2000)
	var y Sequence
	for k := int64(1); k <= 4000; k += 2 {
		y = append(y, NewData(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}

func BenchmarkDivide(b *testing.B) {
	s := Range(1, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Divide(s, 16)
	}
}

func BenchmarkIntersect(b *testing.B) {
	x := Range(1, 2000)
	y := Range(1000, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

func BenchmarkPacketKey(b *testing.B) {
	p := NewParity([]Packet{NewData(12345), NewData(12346)}, 12345.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}
