package seq

import "testing"

func BenchmarkUnion(b *testing.B) {
	x := Range(1, 2000)
	var y Sequence
	for k := int64(1); k <= 4000; k += 2 {
		y = append(y, NewData(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}

func BenchmarkDivide(b *testing.B) {
	s := Range(1, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Divide(s, 16)
	}
}

func BenchmarkIntersect(b *testing.B) {
	x := Range(1, 2000)
	y := Range(1000, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

func BenchmarkPacketKey(b *testing.B) {
	p := NewParity([]Packet{NewData(12345), NewData(12346)}, 12345.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}

// BenchmarkUnionParity unions parity-enhanced streams, the shape the
// coordination hot path sees: before identity caching every comparison
// re-joined the cover strings of both operands.
func BenchmarkUnionParity(b *testing.B) {
	mk := func(lo int64) Sequence {
		var s Sequence
		for k := lo; k < lo+2000; k += 2 {
			d1, d2 := NewData(k), NewData(k+1)
			s = append(s, d1, NewParity([]Packet{d1, d2}, MidPos(d1.Pos, d2.Pos)), d2)
		}
		return s
	}
	x, y := mk(1), mk(1001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}

func BenchmarkEqual(b *testing.B) {
	x := Range(1, 5000)
	y := Range(1, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(x, y) {
			b.Fatal("sequences differ")
		}
	}
}
