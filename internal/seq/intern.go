package seq

import "slices"

// Packet interning. The engine's bookkeeping unions (pkt_i := pkt_i ∪
// pkt_ji on every merge) used to copy full Sequence values — O(len)
// packet structs per merge, every packet re-compared by identity key.
// A Table assigns each distinct packet identity a dense ID once, and a
// Set holds sorted IDs, so repeated unions are integer merges that
// reuse the set's capacity instead of reallocating packet slices.
//
// IDs are only meaningful relative to the Table that issued them.
// Tables are not safe for concurrent use; the engine gives each Peer
// its own, so no cross-goroutine coordination is needed.

// ID is a dense interned packet identity issued by a Table.
type ID int32

// Table interns packet identities. The first packet seen for an
// identity is kept as the representative returned by Packet.
type Table struct {
	byIndex map[int64]ID  // data packets, keyed by content index
	byKey   map[string]ID // parity packets, keyed by identity string
	pkts    []Packet
}

// NewTable returns an empty intern table.
func NewTable() *Table {
	return &Table{byIndex: make(map[int64]ID), byKey: make(map[string]ID)}
}

// Len returns the number of distinct identities interned.
func (t *Table) Len() int { return len(t.pkts) }

// Intern returns the ID of p's identity, assigning the next dense ID on
// first sight. Data packets intern by content index (no key-string
// hashing on the hot path); parity packets by identity key.
func (t *Table) Intern(p Packet) ID {
	if p.Kind == Data {
		if id, ok := t.byIndex[p.Index]; ok {
			return id
		}
		id := ID(len(t.pkts))
		t.byIndex[p.Index] = id
		t.pkts = append(t.pkts, p)
		return id
	}
	k := p.Key()
	if id, ok := t.byKey[k]; ok {
		return id
	}
	id := ID(len(t.pkts))
	t.byKey[k] = id
	t.pkts = append(t.pkts, p)
	return id
}

// Packet returns the representative packet of id. It panics if id was
// not issued by this table.
func (t *Table) Packet(id ID) Packet { return t.pkts[id] }

// Set is a set of interned packet identities, stored as sorted unique
// IDs. The zero value is the empty set. Mutating operations reuse the
// underlying array, so a long-lived set reaches a steady state with no
// allocation per union.
type Set struct {
	ids []ID
}

// Len returns |s|.
func (s *Set) Len() int { return len(s.ids) }

// IDs returns the sorted backing slice (shared, not a copy).
func (s *Set) IDs() []ID { return s.ids }

// Clear empties the set, keeping capacity.
func (s *Set) Clear() { s.ids = s.ids[:0] }

// Has reports whether id is in the set.
func (s *Set) Has(id ID) bool {
	_, ok := slices.BinarySearch(s.ids, id)
	return ok
}

// AddSeq unions the identities of q into the set (pkt_i := pkt_i ∪
// pkt_ji), interning through t. Amortized zero-allocation: new IDs are
// appended and the slice re-sorted only when something was added.
func (s *Set) AddSeq(t *Table, q Sequence) {
	if len(q) == 0 {
		return
	}
	sorted := len(s.ids)
	for _, p := range q {
		id := t.Intern(p)
		if _, ok := slices.BinarySearch(s.ids[:sorted], id); ok {
			continue
		}
		if slices.Contains(s.ids[sorted:], id) {
			continue
		}
		s.ids = append(s.ids, id)
	}
	if len(s.ids) > sorted {
		slices.Sort(s.ids)
	}
}

// AddSet unions o into s.
func (s *Set) AddSet(o *Set) {
	sorted := len(s.ids)
	for _, id := range o.ids {
		if _, ok := slices.BinarySearch(s.ids[:sorted], id); !ok {
			s.ids = append(s.ids, id)
		}
	}
	if len(s.ids) > sorted {
		slices.Sort(s.ids)
		s.ids = slices.Compact(s.ids)
	}
}

// IntersectCount returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectCount(o *Set) int {
	i, j, n := 0, 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] == o.ids[j]:
			n++
			i++
			j++
		case s.ids[i] < o.ids[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Covers reports whether every identity of o is in s (o ⊆ s).
func (s *Set) Covers(o *Set) bool {
	return s.IntersectCount(o) == o.Len()
}

// Materialize returns the set as a Sequence in canonical order,
// resolving representatives through t.
func (s *Set) Materialize(t *Table) Sequence {
	if len(s.ids) == 0 {
		return nil
	}
	out := make(Sequence, len(s.ids))
	for i, id := range s.ids {
		out[i] = t.Packet(id)
	}
	out.Sort()
	return out
}
