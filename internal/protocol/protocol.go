// Package protocol names the coordination protocols once, for every
// layer. The simulator (internal/coord) and the live runtime
// (internal/live) implement the same paper protocols but historically
// declared their own string constants; this package is the single source
// both alias so a Protocol value flows unchanged from a config file to
// either layer.
//
// Protocol is a string alias (not a defined type) so existing callers
// holding plain strings keep compiling.
package protocol

// Protocol identifies a coordination protocol.
type Protocol = string

const (
	// DCoP is the paper's redundant distributed coordination protocol
	// (§3.4): flooding where a peer may be selected by multiple parents.
	DCoP Protocol = "dcop"
	// TCoP is the non-redundant tree-based coordination protocol (§3.5):
	// a three-round handshake gives every peer at most one parent.
	TCoP Protocol = "tcop"
	// Broadcast is the §3.1 baseline where the leaf contacts all n peers
	// and peers exchange state in a group communication.
	Broadcast Protocol = "broadcast"
	// Unicast is the §3.1 chain baseline: one peer informs the next.
	Unicast Protocol = "unicast"
	// Centralized is the 2PC-style controller protocol of reference [5].
	Centralized Protocol = "centralized"
	// AMS is the asynchronous multi-source streaming precursor of the
	// paper's references [3–5].
	AMS Protocol = "ams"
)

// All lists every protocol the simulator implements.
var All = []Protocol{DCoP, TCoP, Broadcast, Unicast, Centralized, AMS}

// Live lists the protocols the live runtime implements.
var Live = []Protocol{TCoP, DCoP}

// Valid reports whether p names a simulated protocol.
func Valid(p Protocol) bool {
	for _, q := range All {
		if p == q {
			return true
		}
	}
	return false
}

// ValidLive reports whether p names a live-runtime protocol.
func ValidLive(p Protocol) bool {
	for _, q := range Live {
		if p == q {
			return true
		}
	}
	return false
}
