// Package flight is the per-peer flight recorder: a bounded ring buffer
// of the coordination engine's event/effect vocabulary, captured at the
// same driver-side interception point as engine.SpanTracker. Where span
// tracing answers "how long did coordination take", the flight recorder
// answers "what exactly did this peer see and emit, in what order" — the
// raw material for topology forensics and for diffing a live run against
// its deterministic simulation (see FirstDivergence).
//
// A nil *Recorder (or a nil *Set) is the disabled state: Record returns
// immediately with zero allocations, so drivers keep the call sites
// unconditional exactly as they do for spans and metrics.
package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one recorded occurrence on a peer's flight track: either an
// engine event the peer handled (Dir "ev") or an effect it emitted
// (Dir "eff"). The identity fields (Dir, Type, Other, Round, N) are
// driver-independent — a simulated and a live run of the same seed
// record the same identities in the same per-peer order — while Seq and
// T carry the recording driver's local ordering and clock (virtual time
// in the simulator, seconds since process start in the live runtime).
type Event struct {
	// Seq is the per-peer record sequence number (monotonic, counting
	// evicted records too).
	Seq uint64 `json:"seq"`
	// T is the driver time of the Handle call that produced the record.
	T float64 `json:"t"`
	// Session labels the streaming session on multi-session nodes
	// (empty for single-session drivers).
	Session string `json:"sess,omitempty"`
	// Peer is the recording peer's overlay id.
	Peer int `json:"peer"`
	// Dir is "ev" for handled events, "eff" for emitted effects.
	Dir string `json:"dir"`
	// Type names the event or effect kind (see engine.FlightObserver).
	Type string `json:"type"`
	// Other is the counterpart peer: send target, control/commit parent,
	// confirming child, joiner, or timer subject. Leaf is -1; 0 means
	// peer 0 or "none" depending on Type (identity comparison treats it
	// uniformly either way).
	Other int `json:"other,omitempty"`
	// Round is the protocol round carried by the event or effect.
	Round int `json:"round,omitempty"`
	// N is the record's magnitude: assigned-sequence length, repair
	// index count, hand-off share count, or timer generation.
	N int `json:"n,omitempty"`
}

// Key is the driver-independent identity of an event — everything but
// the local sequence number, timestamp and session label.
func (e Event) Key() Key {
	return Key{Peer: e.Peer, Dir: e.Dir, Type: e.Type, Other: e.Other, Round: e.Round, N: e.N}
}

// Key identifies an event across drivers (comparable, map-friendly).
type Key struct {
	Peer  int
	Dir   string
	Type  string
	Other int
	Round int
	N     int
}

func (k Key) String() string {
	return fmt.Sprintf("peer=%d %s %s other=%d round=%d n=%d", k.Peer, k.Dir, k.Type, k.Other, k.Round, k.N)
}

// Recorder is one peer's bounded flight ring. When the ring is full the
// oldest record is evicted (and counted); Seq keeps numbering across
// evictions so a dump reveals the gap. All methods are safe for
// concurrent use, and all are no-ops on a nil receiver.
type Recorder struct {
	session string
	peer    int
	cap     int

	mu      sync.Mutex
	buf     []Event
	start   int
	n       int
	seq     uint64
	evicted uint64
}

// NewRecorder returns a flight ring for one peer holding up to capacity
// records (capacity <= 0 picks DefaultCapacity). Most callers obtain
// recorders from a Set instead.
func NewRecorder(session string, peer, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{session: session, peer: peer, cap: capacity}
}

// DefaultCapacity is the per-peer ring size when a Set or Recorder is
// built with a non-positive capacity: enough for every coordination
// event of a typical session plus a margin, small enough to bound a
// 100-peer cluster's footprint.
const DefaultCapacity = 512

// Peer returns the recorder's peer id.
func (r *Recorder) Peer() int {
	if r == nil {
		return 0
	}
	return r.peer
}

// Record appends one event, stamping its Seq, Session and Peer. The
// caller fills T, Dir, Type, Other, Round and N.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	e.Session = r.session
	e.Peer = r.peer
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	if r.buf == nil {
		r.buf = make([]Event, r.cap)
	}
	if r.n < r.cap {
		r.buf[(r.start+r.n)%r.cap] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % r.cap
		r.evicted++
	}
	r.mu.Unlock()
}

// Events returns the buffered records oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%r.cap])
	}
	r.mu.Unlock()
	return out
}

// Evicted returns how many records the ring has dropped so far.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Set is a collection of per-peer recorders sharing one capacity. A nil
// Set hands out nil recorders, so wiring stays unconditional: a driver
// asks its (possibly nil) Set for a recorder and passes the (possibly
// nil) result to engine.NewFlightObserver.
type Set struct {
	capacity int

	mu   sync.Mutex
	recs map[setKey]*Recorder
	keys []setKey // insertion order, for deterministic iteration bases
}

type setKey struct {
	session string
	peer    int
}

// NewSet returns an empty recorder set whose rings hold perPeerCap
// records each (<= 0 picks DefaultCapacity).
func NewSet(perPeerCap int) *Set {
	if perPeerCap <= 0 {
		perPeerCap = DefaultCapacity
	}
	return &Set{capacity: perPeerCap, recs: make(map[setKey]*Recorder)}
}

// Recorder returns (creating on first use) the ring of the given
// session/peer pair. Single-session drivers pass session "". Returns
// nil on a nil Set.
func (s *Set) Recorder(session string, peer int) *Recorder {
	if s == nil {
		return nil
	}
	k := setKey{session: session, peer: peer}
	s.mu.Lock()
	r, ok := s.recs[k]
	if !ok {
		r = NewRecorder(session, peer, s.capacity)
		s.recs[k] = r
		s.keys = append(s.keys, k)
	}
	s.mu.Unlock()
	return r
}

// Events returns every buffered record across the set, sorted by
// (Session, Peer, Seq) — the deterministic per-peer ordering dumps and
// diffs rely on.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	recs := make([]*Recorder, 0, len(s.recs))
	for _, k := range s.keys {
		recs = append(recs, s.recs[k])
	}
	s.mu.Unlock()
	var out []Event
	for _, r := range recs {
		out = append(out, r.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Evicted sums the rings' eviction counters.
func (s *Set) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	recs := make([]*Recorder, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	s.mu.Unlock()
	var total uint64
	for _, r := range recs {
		total += r.Evicted()
	}
	return total
}

// DumpJSONL writes the set's events as JSON Lines in (Session, Peer,
// Seq) order. A nil Set writes nothing.
func (s *Set) DumpJSONL(w io.Writer) error {
	return WriteJSONL(w, s.Events())
}

// WriteJSONL writes events to w as JSON Lines, one compact object per
// line, in the given order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL event stream written by WriteJSONL. Blank
// lines are skipped; a malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("flight: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary is one (peer, type) group's share of a flight log.
type Summary struct {
	Session     string
	Peer        int
	Dir         string
	Type        string
	Count       int
	First, Last float64 // timestamps of the group's first/last record
}

// Summarize groups events by (session, peer, dir, type) and counts
// them, in (session, peer, dir, type) order — the `msstrace flight`
// table.
func Summarize(events []Event) []Summary {
	type gkey struct {
		sess     string
		peer     int
		dir, typ string
	}
	groups := make(map[gkey]*Summary)
	var order []gkey
	for _, e := range events {
		k := gkey{sess: e.Session, peer: e.Peer, dir: e.Dir, typ: e.Type}
		g, ok := groups[k]
		if !ok {
			g = &Summary{Session: e.Session, Peer: e.Peer, Dir: e.Dir, Type: e.Type, First: e.T, Last: e.T}
			groups[k] = g
			order = append(order, k)
		}
		g.Count++
		if e.T < g.First {
			g.First = e.T
		}
		if e.T > g.Last {
			g.Last = e.T
		}
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		out = append(out, *groups[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		if out[i].Dir != out[j].Dir {
			return out[i].Dir < out[j].Dir
		}
		return out[i].Type < out[j].Type
	})
	return out
}
