package flight

import (
	"fmt"
	"sort"
	"strings"
)

// Log is one run's flight record with a human label naming the side of
// a comparison ("sim seed=3", "live seed=3").
type Log struct {
	Label  string
	Events []Event
}

// DiffOptions tunes FirstDivergence.
type DiffOptions struct {
	// IncludeTimers compares timer_* delivery events too. They are
	// excluded by default: timer firings are clock artifacts, not
	// protocol decisions — the simulator delivers every scheduled
	// deadline in virtual time while a live run's wall-clock timers may
	// never fire before shutdown — so including them diffs the clocks,
	// not the protocols. SetTimer effects (the engine's decision to arm
	// a deadline) are always compared.
	IncludeTimers bool
	// Session restricts the comparison to one session label; empty
	// compares everything.
	Session string
}

// Divergence names the first place two flight logs disagree on one
// peer's track: either the events at Index differ, or one side's track
// ends early (the missing side's event is nil).
type Divergence struct {
	LabelA, LabelB string
	Session        string
	Peer           int
	// Index is the position in the peer's (filtered) track where the
	// logs first disagree.
	Index int
	// A and B are the disagreeing events; nil means that side's track
	// ended before Index.
	A, B *Event
}

// String renders the divergence report: peer, event identities, and
// both sides' timestamps (virtual time for a simulated log, wall
// seconds for a live one).
func (d *Divergence) String() string {
	if d == nil {
		return "flight: logs agree"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence at peer %d", d.Peer)
	if d.Session != "" {
		fmt.Fprintf(&b, " (session %s)", d.Session)
	}
	fmt.Fprintf(&b, ", event %d:\n", d.Index)
	side := func(label string, e *Event) {
		if e == nil {
			fmt.Fprintf(&b, "  %-12s <track ended after %d events>\n", label+":", d.Index)
			return
		}
		fmt.Fprintf(&b, "  %-12s t=%.6f %s %s other=%d round=%d n=%d\n",
			label+":", e.T, e.Dir, e.Type, e.Other, e.Round, e.N)
	}
	side(d.LabelA, d.A)
	side(d.LabelB, d.B)
	return b.String()
}

// FirstDivergence aligns two flight logs per peer track and returns the
// first event where they disagree, or nil when every track matches.
// Events are compared by driver-independent identity (Dir, Type, Other,
// Round, N) — never by timestamp, since the sides run on different
// clocks (DES virtual time vs wall time). Tracks are scanned in
// (session, peer) order and the lowest diverging track wins, so the
// report is deterministic.
func FirstDivergence(a, b Log, opt DiffOptions) *Divergence {
	ta := tracks(a.Events, opt)
	tb := tracks(b.Events, opt)
	keys := make(map[trackKey]bool, len(ta)+len(tb))
	for k := range ta {
		keys[k] = true
	}
	for k := range tb {
		keys[k] = true
	}
	order := make([]trackKey, 0, len(keys))
	for k := range keys {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].session != order[j].session {
			return order[i].session < order[j].session
		}
		return order[i].peer < order[j].peer
	})
	for _, k := range order {
		ea, eb := ta[k], tb[k]
		n := len(ea)
		if len(eb) < n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			if ea[i].Key() != eb[i].Key() {
				return &Divergence{
					LabelA: a.Label, LabelB: b.Label,
					Session: k.session, Peer: k.peer, Index: i,
					A: &ea[i], B: &eb[i],
				}
			}
		}
		if len(ea) != len(eb) {
			d := &Divergence{
				LabelA: a.Label, LabelB: b.Label,
				Session: k.session, Peer: k.peer, Index: n,
			}
			if len(ea) > n {
				d.A = &ea[n]
			}
			if len(eb) > n {
				d.B = &eb[n]
			}
			return d
		}
	}
	return nil
}

type trackKey struct {
	session string
	peer    int
}

// tracks splits a log into per-(session, peer) event tracks, applying
// the filter options and preserving each track's recorded order.
func tracks(events []Event, opt DiffOptions) map[trackKey][]Event {
	out := make(map[trackKey][]Event)
	for _, e := range events {
		if opt.Session != "" && e.Session != opt.Session {
			continue
		}
		if !opt.IncludeTimers && e.Dir == "ev" && strings.HasPrefix(e.Type, "timer_") {
			continue
		}
		k := trackKey{session: e.Session, peer: e.Peer}
		out[k] = append(out[k], e)
	}
	return out
}
