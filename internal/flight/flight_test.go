package flight

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder("", 3, 4)
	for i := 0; i < 10; i++ {
		r.Record(Event{T: float64(i), Dir: "ev", Type: fmt.Sprintf("e%d", i)})
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	// Oldest-first, only the newest 4 survive, with monotonic seq.
	for i, e := range events {
		if want := fmt.Sprintf("e%d", 6+i); e.Type != want {
			t.Errorf("event %d is %q, want %q", i, e.Type, want)
		}
		if e.Peer != 3 {
			t.Errorf("event %d stamped peer %d, want 3", i, e.Peer)
		}
		if i > 0 && events[i].Seq != events[i-1].Seq+1 {
			t.Errorf("seq not monotonic: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	if got := r.Evicted(); got != 6 {
		t.Errorf("Evicted() = %d, want 6", got)
	}
}

func TestNilRecorderAndSetAreNoOps(t *testing.T) {
	var r *Recorder
	r.Record(Event{Type: "x"}) // must not panic
	if r.Events() != nil || r.Evicted() != 0 || r.Peer() != 0 {
		t.Error("nil recorder leaked state")
	}
	var s *Set
	if s.Recorder("sess", 1) != nil {
		t.Error("nil set handed out a live recorder")
	}
	if s.Events() != nil || s.Evicted() != 0 {
		t.Error("nil set leaked state")
	}
	if err := s.DumpJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil set dump: %v", err)
	}
}

func TestSetEventsDeterministicOrder(t *testing.T) {
	s := NewSet(8)
	// Record interleaved across sessions and peers.
	s.Recorder("b", 1).Record(Event{T: 3, Dir: "ev", Type: "x"})
	s.Recorder("a", 2).Record(Event{T: 1, Dir: "ev", Type: "y"})
	s.Recorder("a", 0).Record(Event{T: 2, Dir: "ev", Type: "z"})
	s.Recorder("a", 0).Record(Event{T: 4, Dir: "eff", Type: "w"})
	events := s.Events()
	var got []string
	for _, e := range events {
		got = append(got, fmt.Sprintf("%s/%d/%s", e.Session, e.Peer, e.Type))
	}
	want := []string{"a/0/z", "a/0/w", "a/2/y", "b/1/x"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("order %v, want %v", got, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewSet(8)
	s.Recorder("s1", 0).Record(Event{T: 0.5, Dir: "ev", Type: "request", Other: -2, N: 3})
	s.Recorder("s1", 1).Record(Event{T: 1.25, Dir: "eff", Type: "send_control", Other: 4, Round: 2})
	var buf bytes.Buffer
	if err := s.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := s.Events()
	if len(back) != len(orig) {
		t.Fatalf("round-trip read %d events, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, back[i], orig[i])
		}
	}
}

func TestReadJSONLRejectsGarbageWithLineNumber(t *testing.T) {
	in := strings.NewReader("{\"peer\":1,\"dir\":\"ev\",\"type\":\"x\"}\n\nnot json\n")
	_, err := ReadJSONL(in)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want a line-3 parse error", err)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Peer: 0, T: 1, Dir: "ev", Type: "control"},
		{Peer: 0, T: 5, Dir: "ev", Type: "control"},
		{Peer: 0, T: 2, Dir: "eff", Type: "send_confirm_ok"},
		{Peer: 1, T: 3, Dir: "ev", Type: "control"},
	}
	sums := Summarize(events)
	if len(sums) != 3 {
		t.Fatalf("got %d groups, want 3", len(sums))
	}
	// Sorted by (session, peer, dir, type): "eff" < "ev" lexically.
	if sums[0].Type != "send_confirm_ok" || sums[1].Type != "control" || sums[2].Peer != 1 {
		t.Fatalf("group order %+v", sums)
	}
	ctl := sums[1]
	if ctl.Count != 2 || ctl.First != 1 || ctl.Last != 5 {
		t.Errorf("control group count=%d first=%v last=%v, want 2/1/5", ctl.Count, ctl.First, ctl.Last)
	}
}

// ev builds a minimal diff-comparable event.
func ev(peer int, dir, typ string, other, round, n int) Event {
	return Event{Peer: peer, Dir: dir, Type: typ, Other: other, Round: round, N: n}
}

func TestFirstDivergenceAgreement(t *testing.T) {
	a := []Event{ev(0, "ev", "request", -2, 0, 3), ev(0, "eff", "send_control", 1, 1, 2)}
	b := []Event{
		{Peer: 0, T: 99, Dir: "ev", Type: "request", Other: -2, N: 3}, // timestamps differ — irrelevant
		{Peer: 0, T: 7, Dir: "eff", Type: "send_control", Other: 1, Round: 1, N: 2},
	}
	if d := FirstDivergence(Log{"a", a}, Log{"b", b}, DiffOptions{}); d != nil {
		t.Errorf("identical identities reported divergent:\n%s", d)
	}
}

func TestFirstDivergenceFindsLowestPeer(t *testing.T) {
	a := []Event{
		ev(1, "ev", "control", 0, 1, 2),
		ev(5, "ev", "control", 0, 1, 2),
	}
	b := []Event{
		ev(1, "ev", "control", 0, 1, 3), // diverges at peer 1 (N differs)
		ev(5, "ev", "confirm_ok", 0, 1, 2),
	}
	d := FirstDivergence(Log{"sim", a}, Log{"live", b}, DiffOptions{})
	if d == nil {
		t.Fatal("no divergence reported")
	}
	if d.Peer != 1 || d.Index != 0 {
		t.Errorf("divergence at peer %d event %d, want peer 1 event 0", d.Peer, d.Index)
	}
	if d.A == nil || d.B == nil || d.A.N != 2 || d.B.N != 3 {
		t.Errorf("divergence events %+v vs %+v", d.A, d.B)
	}
	for _, want := range []string{"peer 1", "sim", "live", "t="} {
		if !strings.Contains(d.String(), want) {
			t.Errorf("report %q missing %q", d.String(), want)
		}
	}
}

func TestFirstDivergenceTrackLengthMismatch(t *testing.T) {
	a := []Event{ev(2, "ev", "control", 0, 1, 1), ev(2, "eff", "activate", 0, 1, 0)}
	b := []Event{ev(2, "ev", "control", 0, 1, 1)}
	d := FirstDivergence(Log{"a", a}, Log{"b", b}, DiffOptions{})
	if d == nil {
		t.Fatal("no divergence for a longer track")
	}
	if d.Peer != 2 || d.Index != 1 || d.A == nil || d.B != nil {
		t.Errorf("got %+v, want peer 2 index 1 with only side A present", d)
	}
	if !strings.Contains(d.String(), "track ended") {
		t.Errorf("report %q should note the ended track", d.String())
	}
}

func TestFirstDivergenceFiltersDeliveredTimers(t *testing.T) {
	// The sim delivers every armed deadline; a live run's wall timers may
	// never fire. Delivered timer events must not count as divergence —
	// but SetTimer effects (the decision to arm) must.
	a := []Event{
		ev(0, "eff", "set_timer_confirm", 3, 1, 0),
		ev(0, "ev", "timer_confirm", 3, 1, 0),
		ev(0, "ev", "commit", 1, 1, 0),
	}
	b := []Event{
		ev(0, "eff", "set_timer_confirm", 3, 1, 0),
		ev(0, "ev", "commit", 1, 1, 0),
	}
	if d := FirstDivergence(Log{"sim", a}, Log{"live", b}, DiffOptions{}); d != nil {
		t.Errorf("delivered timer event counted as divergence:\n%s", d)
	}
	if d := FirstDivergence(Log{"sim", a}, Log{"live", b}, DiffOptions{IncludeTimers: true}); d == nil {
		t.Error("IncludeTimers did not surface the timer-delivery difference")
	}
	// A missing SetTimer effect is a real protocol difference.
	c := []Event{
		ev(0, "ev", "commit", 1, 1, 0),
	}
	if d := FirstDivergence(Log{"sim", a}, Log{"live", c}, DiffOptions{}); d == nil {
		t.Error("missing set_timer effect not reported")
	}
}

func TestFirstDivergenceSessionFilter(t *testing.T) {
	a := []Event{
		{Session: "s1", Peer: 0, Dir: "ev", Type: "control"},
		{Session: "s2", Peer: 0, Dir: "ev", Type: "control"},
	}
	b := []Event{
		{Session: "s1", Peer: 0, Dir: "ev", Type: "control"},
		{Session: "s2", Peer: 0, Dir: "ev", Type: "confirm_no"},
	}
	if d := FirstDivergence(Log{"a", a}, Log{"b", b}, DiffOptions{Session: "s1"}); d != nil {
		t.Errorf("session filter leaked s2 divergence:\n%s", d)
	}
	d := FirstDivergence(Log{"a", a}, Log{"b", b}, DiffOptions{})
	if d == nil || d.Session != "s2" {
		t.Errorf("unfiltered diff = %+v, want s2 divergence", d)
	}
}
