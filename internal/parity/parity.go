// Package parity implements the XOR parity scheme of §3.2 of the paper:
// recovery segments, the Esq enhancement operator producing [pkt]^h, the
// per-peer division of enhanced sequences, and loss recovery at the leaf
// peer.
//
// A packet sequence pkt is split into recovery segments of h consecutive
// packets. For each segment one parity packet — the XOR of the segment's
// packets — is inserted into the stream. The paper's case analysis for the
// insertion offset (j = d mod h) contradicts its own worked example
// ⟨t⟨1,2⟩, t1, t2, t3, t⟨3,4⟩, t4, t5, t6, t⟨5,6⟩⟩; the example's pattern
// is a rotation over the h+1 possible offsets, parity of segment d landing
// at offset d mod (h+1). We implement the example (the rotation is what
// spreads parity packets across peers under round-robin division); see
// DESIGN.md §2.
//
// Because coordination re-enhances subsequences at every tree level
// (§3.6), segments may contain parity packets, producing nested parities
// such as t⟨5,⟨7,8⟩⟩. The Recoverer resolves nested parities to a
// fixpoint.
package parity

import (
	"fmt"
	"strconv"
	"strings"

	"p2pmss/internal/seq"
)

// Enhance implements Esq(pkt, h): it returns the enhanced sequence [pkt]^h
// obtained by inserting one XOR parity packet per recovery segment of h
// packets. h must be positive. A short final segment (fewer than h
// packets) still receives a parity packet so every packet is protected.
//
// |Enhance(s, h)| = |s|·(h+1)/h (up to the final partial segment).
func Enhance(s seq.Sequence, h int) seq.Sequence {
	if h <= 0 {
		panic(fmt.Sprintf("parity: Enhance interval h=%d must be positive", h))
	}
	if len(s) == 0 {
		return nil
	}
	out := make(seq.Sequence, 0, len(s)+len(s)/h+1)
	for d := 0; d*h < len(s); d++ {
		segStart := d * h
		segEnd := segStart + h
		if segEnd > len(s) {
			segEnd = len(s)
		}
		segment := s[segStart:segEnd]
		offset := d % (h + 1)
		if offset > len(segment) {
			offset = len(segment)
		}
		p := makeParity(s, segStart, segEnd, offset)
		out = append(out, segment[:offset]...)
		out = append(out, p)
		out = append(out, segment[offset:]...)
	}
	return out
}

// makeParity builds the parity packet for s[segStart:segEnd], positioned
// for insertion at the given offset within the segment.
func makeParity(s seq.Sequence, segStart, segEnd, offset int) seq.Packet {
	segment := s[segStart:segEnd]
	var lo, hi float64
	switch {
	case offset == 0:
		// Before the segment: between the previous packet and the first.
		hi = segment[0].Pos
		if segStart > 0 {
			lo = s[segStart-1].Pos
		} else {
			lo = hi - 1
		}
	case offset >= len(segment):
		// After the segment: between the last packet and the next.
		lo = segment[len(segment)-1].Pos
		if segEnd < len(s) {
			hi = s[segEnd].Pos
		} else {
			hi = lo + 1
		}
	default:
		lo = segment[offset-1].Pos
		hi = segment[offset].Pos
	}
	p := seq.NewParity(segment, seq.MidPos(lo, hi))
	p.Payload = XOR(payloads(segment))
	return p
}

func payloads(pkts []seq.Packet) [][]byte {
	out := make([][]byte, len(pkts))
	for i, p := range pkts {
		out[i] = p.Payload
	}
	return out
}

// XOR returns the bitwise exclusive-or of the given byte slices, padded to
// the longest length. It returns nil when every input is empty (the
// accounting-only mode used by the simulator, where payloads are nil).
func XOR(bufs [][]byte) []byte {
	maxLen := 0
	for _, b := range bufs {
		if len(b) > maxLen {
			maxLen = len(b)
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]byte, maxLen)
	for _, b := range bufs {
		for i, c := range b {
			out[i] ^= c
		}
	}
	return out
}

// CoversOf parses a parity identity key "p(a,b,…)" into the keys of the
// covered packets, honoring nesting. ok is false when key is not a parity
// key.
func CoversOf(key string) (covers []string, ok bool) {
	if !strings.HasPrefix(key, "p(") || !strings.HasSuffix(key, ")") {
		return nil, false
	}
	inner := key[2 : len(key)-1]
	if inner == "" {
		return nil, false
	}
	depth := 0
	start := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				covers = append(covers, inner[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, false
	}
	covers = append(covers, inner[start:])
	return covers, true
}

// DataKey returns the identity key "t<k>" of content data packet t_k.
func DataKey(k int64) string {
	return "t" + strconv.FormatInt(k, 10)
}

// DataIndexOf parses a data identity key "t<k>" back into its content
// index. ok is false when key is not a data key.
func DataIndexOf(key string) (k int64, ok bool) {
	if len(key) < 2 || key[0] != 't' {
		return 0, false
	}
	k, err := strconv.ParseInt(key[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return k, true
}

// Recoverer reconstructs lost packets at the leaf peer from received data
// and parity packets. Add every received packet, then call Recover (or
// rely on the incremental recovery Add performs). A packet is "present"
// once received or derived.
//
// Recovery rule: if a parity packet p(a,b,…,z) is present and exactly one
// of its covers is missing, the missing packet's payload is the XOR of the
// parity payload with the present covers' payloads. Derived parity packets
// recursively enable further recovery; Recover runs to a fixpoint.
type Recoverer struct {
	payload   map[string][]byte   // key → payload for present packets
	rules     map[string][]string // parity key → covered keys (known structure)
	recovered int
	// dataPresent counts the distinct data packets present, so callers
	// need not rescan the whole content to measure delivery.
	dataPresent int
	// onData, when set, is invoked with the content index of every data
	// packet that becomes present (received or recovered), exactly once
	// per index — the incremental feed for missing-set tracking.
	onData func(k int64)
}

// NewRecoverer returns an empty Recoverer.
func NewRecoverer() *Recoverer {
	return &Recoverer{
		payload: make(map[string][]byte),
		rules:   make(map[string][]string),
	}
}

// Add records a received packet and performs any recovery it enables.
func (r *Recoverer) Add(p seq.Packet) {
	r.AddKey(p.Key(), p.Payload)
}

// AddKey records a received packet by identity key and payload.
func (r *Recoverer) AddKey(key string, payload []byte) {
	if r.Has(key) {
		return
	}
	r.markPresent(key, payload)
	r.noteRule(key)
	r.fixpoint()
}

// markPresent is the single insertion point into the present-packet map:
// it maintains the data-packet counter and fires the OnData hook.
func (r *Recoverer) markPresent(key string, payload []byte) {
	r.payload[key] = payload
	if k, ok := DataIndexOf(key); ok {
		r.dataPresent++
		if r.onData != nil {
			r.onData(k)
		}
	}
}

// OnData registers fn to be called with the content index of every data
// packet that becomes present from now on (received or recovered), once
// per index. Pass nil to clear.
func (r *Recoverer) OnData(fn func(k int64)) { r.onData = fn }

// noteRule registers the recovery rule implied by a parity key, and
// recursively the rules of nested parity covers.
func (r *Recoverer) noteRule(key string) {
	covers, ok := CoversOf(key)
	if !ok {
		return
	}
	if _, seen := r.rules[key]; seen {
		return
	}
	r.rules[key] = covers
	for _, c := range covers {
		r.noteRule(c)
	}
}

// Has reports whether the packet with the given key is present (received
// or recovered).
func (r *Recoverer) Has(key string) bool {
	_, ok := r.payload[key]
	return ok
}

// HasData reports whether content data packet t_k is present.
func (r *Recoverer) HasData(k int64) bool {
	return r.Has(DataKey(k))
}

// DataPayload returns the payload of data packet t_k if present.
func (r *Recoverer) DataPayload(k int64) ([]byte, bool) {
	b, ok := r.payload[DataKey(k)]
	return b, ok
}

// Recovered returns how many packets have been derived (not directly
// received) so far.
func (r *Recoverer) Recovered() int { return r.recovered }

// Present returns the number of present packets (received + recovered).
func (r *Recoverer) Present() int { return len(r.payload) }

// DataPresent returns the number of distinct data packets present.
func (r *Recoverer) DataPresent() int { return r.dataPresent }

// fixpoint applies recovery rules until no further packet can be derived.
func (r *Recoverer) fixpoint() {
	for {
		progressed := false
		for pk, covers := range r.rules {
			if !r.Has(pk) {
				// The parity itself can be rebuilt if all covers are
				// present; that in turn may satisfy an outer rule.
				if r.allPresent(covers) {
					r.markPresent(pk, r.xorOf(covers, "", ""))
					r.recovered++
					progressed = true
				}
				continue
			}
			missing := ""
			nMissing := 0
			for _, c := range covers {
				if !r.Has(c) {
					missing = c
					nMissing++
					if nMissing > 1 {
						break
					}
				}
			}
			if nMissing == 1 {
				r.markPresent(missing, r.xorOf(covers, missing, pk))
				r.noteRule(missing)
				r.recovered++
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

func (r *Recoverer) allPresent(keys []string) bool {
	for _, k := range keys {
		if !r.Has(k) {
			return false
		}
	}
	return true
}

// xorOf XORs the payloads of the given present covers, excluding skip,
// and of the parity packet parityKey owning them when skip is non-empty
// (missing = p ⊕ others). The caller already holds the parity key, so it
// is never re-joined from the cover strings.
func (r *Recoverer) xorOf(covers []string, skip, parityKey string) []byte {
	bufs := make([][]byte, 0, len(covers)+1)
	for _, c := range covers {
		if skip != "" && c == skip {
			continue
		}
		bufs = append(bufs, r.payload[c])
	}
	if skip != "" {
		bufs = append(bufs, r.payload[parityKey])
	}
	return XOR(bufs)
}

// PerPeerRate returns the transmission rate τ(h+1)/(hH) each of H peers
// sends an h-enhanced division of a rate-τ content at (§3.2).
func PerPeerRate(contentRate float64, h, H int) float64 {
	return contentRate * float64(h+1) / float64(h*H)
}

// ReceiptRate returns the aggregate rate τ(h+1)/h arriving at the leaf
// peer when H peers send the h-enhanced division of a rate-τ content.
func ReceiptRate(contentRate float64, h int) float64 {
	return contentRate * float64(h+1) / float64(h)
}
