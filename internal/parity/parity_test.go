package parity

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"p2pmss/internal/seq"
)

// §3.2 worked example: [⟨t1..t6⟩]^2 =
// ⟨t⟨1,2⟩, t1, t2, t3, t⟨3,4⟩, t4, t5, t6, t⟨5,6⟩⟩.
func TestPaperEnhanceExample(t *testing.T) {
	got := Enhance(seq.Range(1, 6), 2).Keys()
	want := []string{"p(t1,t2)", "t1", "t2", "t3", "p(t3,t4)", "t4", "t5", "t6", "p(t5,t6)"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Enhance keys = %v, want %v", got, want)
	}
}

// §3.2: [pkt]^2 divided into three subsequences:
// [pkt]_1^2 = ⟨t⟨1,2⟩, t3, t5, …⟩, [pkt]_2^2 = ⟨t1, t⟨3,4⟩, t6, …⟩,
// [pkt]_3^2 = ⟨t2, t4, t⟨5,6⟩, …⟩.
func TestPaperDivisionExample(t *testing.T) {
	e := Enhance(seq.Range(1, 6), 2)
	parts := seq.Divide(e, 3)
	wants := [][]string{
		{"p(t1,t2)", "t3", "t5"},
		{"t1", "p(t3,t4)", "t6"},
		{"t2", "t4", "p(t5,t6)"},
	}
	for i, want := range wants {
		if got := parts[i].Keys(); !reflect.DeepEqual(got, want) {
			t.Errorf("part %d = %v, want %v", i+1, got, want)
		}
	}
}

// §3.6 example continued to 12 packets: the three divisions carry
// rotated parity positions so each peer sends some parity.
func TestPaperSection36Division(t *testing.T) {
	e := Enhance(seq.Range(1, 12), 2)
	parts := seq.Divide(e, 3)
	wants := [][]string{
		{"p(t1,t2)", "t3", "t5", "p(t7,t8)", "t9", "t11"},
		{"t1", "p(t3,t4)", "t6", "t7", "p(t9,t10)", "t12"},
		{"t2", "t4", "p(t5,t6)", "t8", "t10", "p(t11,t12)"},
	}
	for i, want := range wants {
		if got := parts[i].Keys(); !reflect.DeepEqual(got, want) {
			t.Errorf("part %d = %v, want %v", i+1, got, want)
		}
	}
}

// §3.6: re-enhancing a subsequence that already contains parity produces
// nested parities such as t⟨5,⟨7,8⟩⟩.
func TestNestedEnhance(t *testing.T) {
	e := Enhance(seq.Range(1, 16), 2)
	part := seq.Divide(e, 3)[0] // ⟨p(t1,t2), t3, t5, p(t7,t8), t9, t11, p(t13,t14), t15⟩
	tail := part.Postfix(2)     // from t5
	re := Enhance(tail, 2)
	want := []string{
		"p(t5,p(t7,t8))", "t5", "p(t7,t8)",
		"t9", "p(t9,t11)", "t11",
		"p(t13,t14)", "t15", "p(p(t13,t14),t15)",
	}
	if got := re.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("nested enhance = %v, want %v", got, want)
	}
}

func TestEnhanceLengthFormula(t *testing.T) {
	// |[pkt]^h| = |pkt|(h+1)/h when h divides |pkt|.
	for _, h := range []int{1, 2, 3, 5, 10} {
		l := 10 * h
		got := len(Enhance(seq.Range(1, int64(l)), h))
		want := l * (h + 1) / h
		if got != want {
			t.Errorf("h=%d: |[pkt]^h| = %d, want %d", h, got, want)
		}
	}
}

func TestEnhanceEmptyAndShortSegments(t *testing.T) {
	if Enhance(nil, 3) != nil {
		t.Error("Enhance(nil) != nil")
	}
	// 5 packets, h=3: final segment of 2 still gets a parity packet.
	e := Enhance(seq.Range(1, 5), 3)
	if e.CountParity() != 2 {
		t.Errorf("parity count = %d, want 2", e.CountParity())
	}
	if e.CountData() != 5 {
		t.Errorf("data count = %d, want 5", e.CountData())
	}
}

func TestEnhanceSortedPositions(t *testing.T) {
	for _, h := range []int{1, 2, 4, 7} {
		e := Enhance(seq.Range(1, 30), h)
		if !e.Sorted() {
			t.Errorf("h=%d: enhanced sequence not in canonical order: %v", h, e)
		}
	}
}

func TestXOR(t *testing.T) {
	a := []byte{0xF0, 0x0F}
	b := []byte{0x0F, 0xF0, 0xAA}
	got := XOR([][]byte{a, b})
	want := []byte{0xFF, 0xFF, 0xAA}
	if !bytes.Equal(got, want) {
		t.Errorf("XOR = %x, want %x", got, want)
	}
	if XOR(nil) != nil || XOR([][]byte{nil, nil}) != nil {
		t.Error("XOR of empties should be nil")
	}
	// x ⊕ x = 0.
	z := XOR([][]byte{a, a})
	for _, c := range z {
		if c != 0 {
			t.Errorf("x⊕x = %x", z)
		}
	}
}

func TestCoversOf(t *testing.T) {
	covers, ok := CoversOf("p(t5,p(t7,t8),t9)")
	if !ok {
		t.Fatal("CoversOf failed")
	}
	want := []string{"t5", "p(t7,t8)", "t9"}
	if !reflect.DeepEqual(covers, want) {
		t.Errorf("covers = %v, want %v", covers, want)
	}
	for _, bad := range []string{"t5", "p()", "p(t1", "", "q(t1)"} {
		if _, ok := CoversOf(bad); ok {
			t.Errorf("CoversOf(%q) unexpectedly ok", bad)
		}
	}
}

func TestRecoverSingleLoss(t *testing.T) {
	payload := func(k int64) []byte { return []byte{byte(k), byte(k * 3)} }
	var s seq.Sequence
	for k := int64(1); k <= 6; k++ {
		s = append(s, seq.NewDataPayload(k, payload(k)))
	}
	e := Enhance(s, 2)
	r := NewRecoverer()
	// Drop t3 (inside second segment with parity p(t3,t4)).
	for _, p := range e {
		if p.Key() != "t3" {
			r.Add(p)
		}
	}
	got, ok := r.DataPayload(3)
	if !ok {
		t.Fatal("t3 not recovered")
	}
	if !bytes.Equal(got, payload(3)) {
		t.Errorf("recovered t3 = %x, want %x", got, payload(3))
	}
	// Two derivations occur: t2 is derived early (p(t1,t2) ⊕ t1 before t2
	// arrives in stream order) and the dropped t3 is derived from p(t3,t4).
	if r.Recovered() != 2 {
		t.Errorf("Recovered() = %d, want 2", r.Recovered())
	}
}

// Reliability claim of §3.2: even if one packet per recovery segment is
// lost, every data packet is recovered.
func TestRecoverySegmentProperty(t *testing.T) {
	f := func(seed int64, hh, ll uint8) bool {
		h := int(hh%5) + 1
		l := int64(ll%40) + int64(h)
		rng := rand.New(rand.NewSource(seed))
		var s seq.Sequence
		for k := int64(1); k <= l; k++ {
			buf := make([]byte, 8)
			rng.Read(buf)
			s = append(s, seq.NewDataPayload(k, buf))
		}
		e := Enhance(s, h)
		// Drop exactly one packet from each (h+1)-packet enhanced segment.
		r := NewRecoverer()
		for i := 0; i < len(e); i += h + 1 {
			end := i + h + 1
			if end > len(e) {
				end = len(e)
			}
			drop := i + rng.Intn(end-i)
			for j := i; j < end; j++ {
				if j != drop {
					r.Add(e[j])
				}
			}
		}
		for k := int64(1); k <= l; k++ {
			want, _ := find(s, k)
			got, ok := r.DataPayload(k)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func find(s seq.Sequence, k int64) ([]byte, bool) {
	for _, p := range s {
		if p.IsData() && p.Index == k {
			return p.Payload, true
		}
	}
	return nil, false
}

// Nested recovery: losing an inner parity and recovering it from an outer
// parity, then using it to recover a data packet.
func TestNestedRecovery(t *testing.T) {
	p7 := seq.NewDataPayload(7, []byte{7})
	p8 := seq.NewDataPayload(8, []byte{8})
	inner := seq.NewParity([]seq.Packet{p7, p8}, 7.5)
	inner.Payload = XOR([][]byte{p7.Payload, p8.Payload})
	p5 := seq.NewDataPayload(5, []byte{5})
	outer := seq.NewParity([]seq.Packet{p5, inner}, 4.5)
	outer.Payload = XOR([][]byte{p5.Payload, inner.Payload})

	// Receive p5, p7, outer — inner parity and t8 both missing.
	r := NewRecoverer()
	r.Add(p5)
	r.Add(p7)
	r.Add(outer)
	// inner = outer ⊕ p5; then t8 = inner ⊕ t7.
	got, ok := r.DataPayload(8)
	if !ok {
		t.Fatal("t8 not recovered through nested parity")
	}
	if !bytes.Equal(got, []byte{8}) {
		t.Errorf("t8 = %x", got)
	}
}

func TestRecovererIdempotentAdd(t *testing.T) {
	r := NewRecoverer()
	p := seq.NewDataPayload(1, []byte{1})
	r.Add(p)
	r.Add(p)
	if r.Present() != 1 {
		t.Errorf("Present = %d", r.Present())
	}
}

func TestRateFormulas(t *testing.T) {
	// §3.2: each of H peers sends at τ(h+1)/(hH); leaf receives τ(h+1)/h.
	if got := PerPeerRate(30, 2, 3); got != 15 {
		t.Errorf("PerPeerRate = %v, want 15", got)
	}
	if got := ReceiptRate(30, 2); got != 45 {
		t.Errorf("ReceiptRate = %v, want 45", got)
	}
	// For h = H-1 each peer sends τ/(H-1)·… → aggregate τH/(H-1).
	H := 5
	agg := PerPeerRate(1, H-1, H) * float64(H)
	want := float64(H) / float64(H-1)
	if diff := agg - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("aggregate = %v, want %v", agg, want)
	}
}

func TestEnhancePanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Enhance(s, 0) did not panic")
		}
	}()
	Enhance(seq.Range(1, 3), 0)
}

func FuzzCoversOf(f *testing.F) {
	f.Add("p(t1,t2)")
	f.Add("p(t5,p(t7,t8),t9)")
	f.Add("p(p(t1,t2),p(t3,p(t4,t5)))")
	f.Add("t3")
	f.Add("p(")
	f.Add("p()")
	f.Add("p(,)")
	f.Add("p(a))")
	f.Add("p((a)")
	f.Add("")
	f.Fuzz(func(t *testing.T, key string) {
		covers, ok := CoversOf(key)
		if !ok {
			return
		}
		// Parsed covers joined back must reproduce the key, and every
		// accepted key is paren-balanced.
		rebuilt := "p(" + strings.Join(covers, ",") + ")"
		if rebuilt != key {
			t.Errorf("round trip: %q -> %v -> %q", key, covers, rebuilt)
		}
		if strings.Count(key, "(") != strings.Count(key, ")") {
			t.Errorf("accepted unbalanced key %q", key)
		}
	})
}
