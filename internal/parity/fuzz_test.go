package parity

import (
	"math/rand"
	"strconv"
	"testing"

	"p2pmss/internal/seq"
)

// Randomly nested parity packets round-trip through their identity keys:
// CoversOf(p.Key()) returns exactly p.Covers at every nesting level.
func TestCoversOfNestedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		pool := []seq.Packet{seq.NewData(int64(rng.Intn(50) + 1))}
		for depth := 0; depth < 1+rng.Intn(4); depth++ {
			n := 1 + rng.Intn(3)
			covered := make([]seq.Packet, 0, n)
			for i := 0; i < n; i++ {
				covered = append(covered, pool[rng.Intn(len(pool))])
			}
			p := seq.NewParity(covered, float64(trial))
			covers, ok := CoversOf(p.Key())
			if !ok {
				t.Fatalf("CoversOf rejected constructed key %q", p.Key())
			}
			if len(covers) != len(p.Covers) {
				t.Fatalf("CoversOf(%q) = %v, want %v", p.Key(), covers, p.Covers)
			}
			for i := range covers {
				if covers[i] != p.Covers[i] {
					t.Fatalf("cover %d = %q, want %q", i, covers[i], p.Covers[i])
				}
			}
			pool = append(pool, p)
		}
	}
}

// |Esq(pkt, h)| = |pkt| + ⌈|pkt|/h⌉: one parity packet per (possibly
// short final) recovery segment, for arbitrary lengths and intervals.
func TestEnhanceCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		l := int64(1 + rng.Intn(200))
		h := 1 + rng.Intn(12)
		s := seq.Range(1, l)
		e := Enhance(s, h)
		segments := (int(l) + h - 1) / h
		if len(e) != int(l)+segments {
			t.Fatalf("|Enhance(len %d, h %d)| = %d, want %d", l, h, len(e), int(l)+segments)
		}
		if e.CountData() != int(l) || e.CountParity() != segments {
			t.Fatalf("enhanced counts: %d data, %d parity", e.CountData(), e.CountParity())
		}
	}
}

// DataKey/DataIndexOf invert each other, and reject non-data keys.
func TestDataKeyRoundTrip(t *testing.T) {
	for _, k := range []int64{1, 7, 100000} {
		got, ok := DataIndexOf(DataKey(k))
		if !ok || got != k {
			t.Errorf("DataIndexOf(DataKey(%d)) = %d, %v", k, got, ok)
		}
	}
	for _, bad := range []string{"", "t", "p(t1,t2)", "x7", "tx"} {
		if _, ok := DataIndexOf(bad); ok {
			t.Errorf("DataIndexOf(%q) accepted", bad)
		}
	}
}

// deliverAndCheck feeds the kept packets of an enhanced sequence to a
// fresh Recoverer in the given order and asserts every data packet of
// the original sequence s ends up present with its original payload.
func deliverAndCheck(t *testing.T, s, kept seq.Sequence, order []int, label string) {
	t.Helper()
	r := NewRecoverer()
	for _, j := range order {
		r.Add(kept[j])
	}
	if got := r.DataPresent(); got != len(s) {
		t.Fatalf("%s: recovered %d/%d data packets", label, got, len(s))
	}
	for _, p := range s {
		b, ok := r.DataPayload(p.Index)
		if !ok {
			t.Fatalf("%s: t%d missing after recovery", label, p.Index)
		}
		if string(b[:len(p.Payload)]) != string(p.Payload) {
			t.Fatalf("%s: t%d payload corrupted", label, p.Index)
		}
	}
}

// dropPerGroup removes one random packet from every (h+1)-sized group
// of the enhanced sequence — the worst per-segment loss XOR parity can
// still cover.
func dropPerGroup(rng *rand.Rand, e seq.Sequence, h int) seq.Sequence {
	kept := make(seq.Sequence, 0, len(e))
	for g := 0; g*(h+1) < len(e); g++ {
		lo := g * (h + 1)
		hi := lo + h + 1
		if hi > len(e) {
			hi = len(e)
		}
		skip := lo + rng.Intn(hi-lo)
		for j := lo; j < hi; j++ {
			if j != skip {
				kept = append(kept, e[j])
			}
		}
	}
	return kept
}

// Recovery is delivery-order independent: with one loss per recovery
// segment, the same present set and payloads emerge whether packets
// arrive in order, reversed (every parity before the data it covers),
// or in any shuffle. Regression for the §3.2 decoder under reordering
// datagram transports.
func TestRecovererOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		l := int64(5 + rng.Intn(60))
		h := 1 + rng.Intn(5)
		var s seq.Sequence
		for k := int64(1); k <= l; k++ {
			buf := make([]byte, 8+rng.Intn(24))
			rng.Read(buf)
			s = append(s, seq.NewDataPayload(k, buf))
		}
		kept := dropPerGroup(rng, Enhance(s, h), h)
		inOrder := make([]int, len(kept))
		reversed := make([]int, len(kept))
		shuffled := make([]int, len(kept))
		for j := range kept {
			inOrder[j] = j
			reversed[j] = len(kept) - 1 - j
			shuffled[j] = j
		}
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		label := func(o string) string { return o + " (l=" + strconv.FormatInt(l, 10) + " h=" + strconv.Itoa(h) + ")" }
		deliverAndCheck(t, s, kept, inOrder, label("in-order"))
		deliverAndCheck(t, s, kept, reversed, label("reversed"))
		deliverAndCheck(t, s, kept, shuffled, label("shuffled"))
	}
}

// FuzzRecovererDeliveryOrder fuzzes the decoder with arbitrary content
// shapes, per-segment loss, and shuffled (including duplicated)
// delivery orders; any order must recover every data packet.
func FuzzRecovererDeliveryOrder(f *testing.F) {
	f.Add(int64(1), int64(20), 3)
	f.Add(int64(2), int64(7), 1)
	f.Add(int64(3), int64(50), 5)
	f.Add(int64(99), int64(1), 12)
	f.Fuzz(func(t *testing.T, seed, l int64, h int) {
		l = 1 + (l%200+200)%200
		h = 1 + (h%10+10)%10
		rng := rand.New(rand.NewSource(seed))
		var s seq.Sequence
		for k := int64(1); k <= l; k++ {
			buf := make([]byte, 4+rng.Intn(12))
			rng.Read(buf)
			s = append(s, seq.NewDataPayload(k, buf))
		}
		kept := dropPerGroup(rng, Enhance(s, h), h)
		order := make([]int, 0, len(kept)*2)
		for j := range kept {
			order = append(order, j)
			if rng.Intn(4) == 0 {
				order = append(order, j) // duplicate delivery
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		deliverAndCheck(t, s, kept, order, "fuzz")
	})
}

// The OnData hook fires exactly once per content index, for received and
// recovered packets alike, and DataPresent tracks it.
func TestRecovererDataHook(t *testing.T) {
	var s seq.Sequence
	rng := rand.New(rand.NewSource(2))
	for k := int64(1); k <= 20; k++ {
		buf := make([]byte, 16)
		rng.Read(buf)
		s = append(s, seq.NewDataPayload(k, buf))
	}
	e := Enhance(s, 4)
	r := NewRecoverer()
	seen := map[int64]int{}
	r.OnData(func(k int64) { seen[k]++ })
	for j, p := range e {
		if j%5 == 2 {
			continue // drop one packet per segment; parity recovers it
		}
		r.Add(p)
		r.Add(p) // duplicate delivery must not re-fire the hook
	}
	if len(seen) != 20 || r.DataPresent() != 20 {
		t.Fatalf("hook saw %d indices, DataPresent %d, want 20", len(seen), r.DataPresent())
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("t%d hook fired %d times", k, n)
		}
	}
	if r.Recovered() == 0 {
		t.Error("nothing was recovered; hook path for derived packets untested")
	}
}
