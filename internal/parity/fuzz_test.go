package parity

import (
	"math/rand"
	"testing"

	"p2pmss/internal/seq"
)

// Randomly nested parity packets round-trip through their identity keys:
// CoversOf(p.Key()) returns exactly p.Covers at every nesting level.
func TestCoversOfNestedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		pool := []seq.Packet{seq.NewData(int64(rng.Intn(50) + 1))}
		for depth := 0; depth < 1+rng.Intn(4); depth++ {
			n := 1 + rng.Intn(3)
			covered := make([]seq.Packet, 0, n)
			for i := 0; i < n; i++ {
				covered = append(covered, pool[rng.Intn(len(pool))])
			}
			p := seq.NewParity(covered, float64(trial))
			covers, ok := CoversOf(p.Key())
			if !ok {
				t.Fatalf("CoversOf rejected constructed key %q", p.Key())
			}
			if len(covers) != len(p.Covers) {
				t.Fatalf("CoversOf(%q) = %v, want %v", p.Key(), covers, p.Covers)
			}
			for i := range covers {
				if covers[i] != p.Covers[i] {
					t.Fatalf("cover %d = %q, want %q", i, covers[i], p.Covers[i])
				}
			}
			pool = append(pool, p)
		}
	}
}

// |Esq(pkt, h)| = |pkt| + ⌈|pkt|/h⌉: one parity packet per (possibly
// short final) recovery segment, for arbitrary lengths and intervals.
func TestEnhanceCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		l := int64(1 + rng.Intn(200))
		h := 1 + rng.Intn(12)
		s := seq.Range(1, l)
		e := Enhance(s, h)
		segments := (int(l) + h - 1) / h
		if len(e) != int(l)+segments {
			t.Fatalf("|Enhance(len %d, h %d)| = %d, want %d", l, h, len(e), int(l)+segments)
		}
		if e.CountData() != int(l) || e.CountParity() != segments {
			t.Fatalf("enhanced counts: %d data, %d parity", e.CountData(), e.CountParity())
		}
	}
}

// DataKey/DataIndexOf invert each other, and reject non-data keys.
func TestDataKeyRoundTrip(t *testing.T) {
	for _, k := range []int64{1, 7, 100000} {
		got, ok := DataIndexOf(DataKey(k))
		if !ok || got != k {
			t.Errorf("DataIndexOf(DataKey(%d)) = %d, %v", k, got, ok)
		}
	}
	for _, bad := range []string{"", "t", "p(t1,t2)", "x7", "tx"} {
		if _, ok := DataIndexOf(bad); ok {
			t.Errorf("DataIndexOf(%q) accepted", bad)
		}
	}
}

// The OnData hook fires exactly once per content index, for received and
// recovered packets alike, and DataPresent tracks it.
func TestRecovererDataHook(t *testing.T) {
	var s seq.Sequence
	rng := rand.New(rand.NewSource(2))
	for k := int64(1); k <= 20; k++ {
		buf := make([]byte, 16)
		rng.Read(buf)
		s = append(s, seq.NewDataPayload(k, buf))
	}
	e := Enhance(s, 4)
	r := NewRecoverer()
	seen := map[int64]int{}
	r.OnData(func(k int64) { seen[k]++ })
	for j, p := range e {
		if j%5 == 2 {
			continue // drop one packet per segment; parity recovers it
		}
		r.Add(p)
		r.Add(p) // duplicate delivery must not re-fire the hook
	}
	if len(seen) != 20 || r.DataPresent() != 20 {
		t.Fatalf("hook saw %d indices, DataPresent %d, want 20", len(seen), r.DataPresent())
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("t%d hook fired %d times", k, n)
		}
	}
	if r.Recovered() == 0 {
		t.Error("nothing was recovered; hook path for derived packets untested")
	}
}
