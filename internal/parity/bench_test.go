package parity

import (
	"math/rand"
	"testing"

	"p2pmss/internal/seq"
)

func BenchmarkEnhance(b *testing.B) {
	for _, h := range []int{1, 4, 16} {
		b.Run(name("h", h), func(b *testing.B) {
			s := seq.Range(1, 10000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Enhance(s, h)
			}
		})
	}
}

func BenchmarkXOR(b *testing.B) {
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 1024)
		rand.New(rand.NewSource(int64(i))).Read(bufs[i])
	}
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XOR(bufs)
	}
}

func BenchmarkRecoverWithLoss(b *testing.B) {
	var s seq.Sequence
	rng := rand.New(rand.NewSource(1))
	for k := int64(1); k <= 1000; k++ {
		buf := make([]byte, 64)
		rng.Read(buf)
		s = append(s, seq.NewDataPayload(k, buf))
	}
	e := Enhance(s, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRecoverer()
		for j, p := range e {
			if j%5 != 2 { // drop one packet per segment
				r.Add(p)
			}
		}
	}
}

func name(k string, v int) string {
	return k + "=" + string(rune('0'+v/10)) + string(rune('0'+v%10))
}
