package experiment

import (
	"strings"
	"testing"

	"p2pmss/internal/coord"
)

// smallOpts keeps unit-test sweeps fast; the full paper-scale sweeps run
// from the benchmark harness and cmd/mssim.
func smallOpts() Options {
	return Options{
		N:          40,
		Hs:         []int{5, 10, 20, 40},
		Seeds:      2,
		LeafShares: true,
		Rate:       2,
		ContentLen: 4000,
		Window:     60,
	}
}

func TestFigure10Shape(t *testing.T) {
	s, err := Figure10(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Rounds decrease (weakly) as H grows.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Rounds > s.Points[i-1].Rounds {
			t.Errorf("rounds increased from H=%d (%v) to H=%d (%v)",
				s.Points[i-1].H, s.Points[i-1].Rounds, s.Points[i].H, s.Points[i].Rounds)
		}
	}
	// At H=N a single round suffices: the leaf reaches everyone directly.
	last := s.Points[len(s.Points)-1]
	if last.SyncRounds != 1 {
		t.Errorf("H=N sync rounds = %v, want 1", last.SyncRounds)
	}
}

func TestFigure11Shape(t *testing.T) {
	o := smallOpts()
	d, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := Figure11(o)
	if err != nil {
		t.Fatal(err)
	}
	// TCoP's 3-round handshake: at every swept H below N, TCoP needs at
	// least as many rounds and at least as many control packets as DCoP.
	for i := range d.Points {
		dp, tp := d.Points[i], tc.Points[i]
		if dp.H == o.N {
			continue
		}
		if tp.Rounds < dp.Rounds {
			t.Errorf("H=%d: TCoP rounds %v < DCoP %v", dp.H, tp.Rounds, dp.Rounds)
		}
		if tp.ControlPackets < dp.ControlPackets {
			t.Errorf("H=%d: TCoP packets %v < DCoP %v", dp.H, tp.ControlPackets, dp.ControlPackets)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{10, 20, 40}
	o.Seeds = 3
	d, tc, err := Figure12(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Points {
		dp, tp := d.Points[i], tc.Points[i]
		// Receipt rate is at least (approximately) the content rate —
		// the leaf is not starved.
		if dp.ReceiptRate < 0.9 || tp.ReceiptRate < 0.9 {
			t.Errorf("H=%d: starved leaf: dcop %.3f tcop %.3f", dp.H, dp.ReceiptRate, tp.ReceiptRate)
		}
		// And bounded: nothing floods the leaf at many times τ.
		if dp.ReceiptRate > 3 || tp.ReceiptRate > 3 {
			t.Errorf("H=%d: excessive rate: dcop %.3f tcop %.3f", dp.H, dp.ReceiptRate, tp.ReceiptRate)
		}
	}
	// The paper's comparison at mid/large H: TCoP's per-node parity
	// intervals cost more than DCoP's global interval.
	dLast, tLast := d.Points[len(d.Points)-1], tc.Points[len(tc.Points)-1]
	if tLast.ReceiptRate < dLast.ReceiptRate-0.05 {
		t.Errorf("H=%d: TCoP rate %.3f well below DCoP %.3f (paper: TCoP higher)",
			dLast.H, tLast.ReceiptRate, dLast.ReceiptRate)
	}
	// Rates fall toward 1 as H grows (fewer parity packets, §4).
	if d.Points[0].ReceiptRate < d.Points[len(d.Points)-1].ReceiptRate {
		t.Errorf("DCoP rate not decreasing in H: %v", d.Points)
	}
}

func TestBaselinesTable(t *testing.T) {
	o := smallOpts()
	o.Seeds = 1
	rows, err := Baselines(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(coord.Protocols) {
		t.Fatalf("rows = %d, want %d", len(rows), len(coord.Protocols))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Protocol] = r
	}
	// §3.1 trade-offs.
	if byName["broadcast"].SyncRounds != 1 {
		t.Errorf("broadcast sync rounds = %v", byName["broadcast"].SyncRounds)
	}
	if byName["unicast"].SyncRounds != float64(o.N) {
		t.Errorf("unicast sync rounds = %v, want n", byName["unicast"].SyncRounds)
	}
	if byName["broadcast"].ControlPackets <= byName["dcop"].ControlPackets {
		t.Error("broadcast should cost more control packets than DCoP")
	}
	if byName["unicast"].ControlPackets >= byName["dcop"].ControlPackets {
		t.Error("unicast should cost fewer control packets than DCoP")
	}
	if byName["centralized"].SyncRounds < 3 {
		t.Errorf("centralized sync rounds = %v, want >= 3", byName["centralized"].SyncRounds)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	if o.N != 100 || o.Seeds != 5 || len(o.Hs) == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	// Hs beyond N are filtered.
	o = Options{N: 30}
	o.normalize()
	for _, h := range o.Hs {
		if h > 30 {
			t.Errorf("H=%d beyond N", h)
		}
	}
}

func TestRendering(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5}
	o.Seeds = 1
	s, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	FprintSeries(&b, "Figure 10", s)
	out := b.String()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "control-packets") {
		t.Errorf("table output: %q", out)
	}
	csv := SeriesCSV(s)
	if !strings.HasPrefix(csv, "protocol,h,") || !strings.Contains(csv, "dcop,5,") {
		t.Errorf("csv output: %q", csv)
	}
	var b2 strings.Builder
	FprintBaselines(&b2, "Baselines", []BaselineRow{{Protocol: "dcop", Rounds: 2}})
	if !strings.Contains(b2.String(), "dcop") {
		t.Error("baseline table missing row")
	}
	var b3 strings.Builder
	FprintRateSeries(&b3, "Figure 12", s, s)
	if !strings.Contains(b3.String(), "DCoP rate") {
		t.Error("rate table missing header")
	}
}

func TestPaperReferenceValues(t *testing.T) {
	// Guard the constants documented in EXPERIMENTS.md.
	if PaperReference.Fig10H60Rounds != 2 || PaperReference.Fig11H60Rounds != 6 {
		t.Error("paper reference rounds changed")
	}
	if PaperReference.Fig12H60DCoP >= PaperReference.Fig12H60TCoP {
		t.Error("paper reference rates inverted")
	}
}

func TestMinStartupDelay(t *testing.T) {
	cfg := coord.DefaultConfig()
	cfg.N = 12
	cfg.H = 5
	cfg.Interval = 3
	cfg.DataPlane = true
	cfg.Loop = false
	cfg.ContentLen = 300
	cfg.Rate = 5
	d, err := MinStartupDelay(coord.DCoP, cfg, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d >= 50 {
		t.Errorf("minimal startup delay = %v", d)
	}
	// Verify it is actually sufficient.
	cfg.Playback = true
	cfg.PlaybackDelay = d + 0.5
	res, err := coord.Run(coord.DCoP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underruns != 0 {
		t.Errorf("delay %v still yields %d underruns", d, res.Underruns)
	}
}

func TestSweepReportsCI(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5}
	o.Seeds = 4
	s, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Points[0]
	if p.ControlPacketsCI < 0 || p.RoundsCI < 0 {
		t.Errorf("negative CI: %+v", p)
	}
}
