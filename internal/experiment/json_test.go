package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"p2pmss/internal/coord"
	"p2pmss/internal/failure"
)

// TestScenarioStamping pins the archive contract: unimpaired records
// carry no scenario field at all (byte-compatible with pre-scenario
// archives), impaired records say exactly what they ran under.
func TestScenarioStamping(t *testing.T) {
	base := Options{N: 12, Hs: []int{4}, Seeds: 1}

	plain, err := SweepRecords(coord.TCoP, base, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Scenario != nil {
		t.Errorf("unimpaired record stamped %+v, want nil", plain[0].Scenario)
	}
	line, err := json.Marshal(plain[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(line), "scenario") {
		t.Errorf("unimpaired JSON leaks a scenario key: %s", line)
	}

	lossy := base
	lossy.LossProb = 0.05
	lossy.Burst = &coord.BurstParams{PGoodToBad: 0.01, PBadToGood: 0.2, LossBad: 0.5}
	lossy.Churn = &failure.ChurnSchedule{Events: []failure.ChurnEvent{{}, {}}}
	lossy.Retries = 3
	recs, err := SweepRecords(coord.TCoP, lossy, false)
	if err != nil {
		t.Fatal(err)
	}
	s := recs[0].Scenario
	if s == nil {
		t.Fatal("impaired record carries no scenario stamp")
	}
	if s.LossProb != 0.05 || s.Burst == nil || s.Burst.LossBad != 0.5 ||
		s.ChurnEvents != 2 || s.Retries != 3 {
		t.Errorf("scenario = %+v", s)
	}
	line, err = json.Marshal(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"loss_prob":0.05`, `"p_bad_to_good":0.2`, `"churn_events":2`} {
		if !strings.Contains(string(line), want) {
			t.Errorf("record JSON missing %s: %.200s", want, line)
		}
	}
}
