package experiment

import (
	"fmt"
	"io"
	"strings"

	"p2pmss/internal/stats"
)

// The scale sweep extends the paper's evaluation past its n = 100
// setting: the same Figure-10/12 quantities (rounds, control packets,
// sync time, leaf receipt rate) measured while n grows to 10⁵ peers at
// a fixed fanout. The per-packet data plane is quadratic-ish in wall
// time at that size (rate × virtual time events per run); the fluid
// plane (Options.PlaneMode = coord.PlaneFluid) is what makes the sweep
// ceiling reachable, so that is the intended configuration.

// ScalePoint is one overlay size of the scale sweep, averaged over
// seeds.
type ScalePoint struct {
	N              int
	Rounds         float64
	SyncRounds     float64
	ControlPackets float64
	ActivePeers    float64
	SyncTime       float64
	ReceiptRate    float64

	RoundsCI, ControlPacketsCI, ReceiptRateCI float64
}

// ScaleCurve runs the protocol at fanout H for every overlay size in
// ns, with the data plane on, and averages Options.Seeds runs per
// point. Options.N and Options.Hs are ignored; everything else
// (PlaneMode, Rate, ContentLen, Window, impairments, Parallel) applies.
func ScaleCurve(protocol string, o Options, H int, ns []int) ([]ScalePoint, error) {
	o.normalize()
	if len(ns) == 0 {
		return nil, fmt.Errorf("experiment: scale sweep needs at least one overlay size")
	}
	jobs := make([]runJob, 0, len(ns)*o.Seeds)
	for _, n := range ns {
		if H < 1 || H > n {
			return nil, fmt.Errorf("experiment: scale sweep H=%d out of range 1..n=%d", H, n)
		}
		p := o
		p.N = n
		for seed := 0; seed < o.Seeds; seed++ {
			jobs = append(jobs, runJob{protocol, p.pointConfig(H, seed, true)})
		}
	}
	results, err := runGrid(jobs, o.Parallel)
	if err != nil {
		return nil, err
	}
	out := make([]ScalePoint, 0, len(ns))
	idx := 0
	for _, n := range ns {
		p := ScalePoint{N: n}
		var rounds, syncRounds, packets, active, syncTime, rate stats.Sample
		for seed := 0; seed < o.Seeds; seed++ {
			res := results[idx]
			idx++
			rounds.Add(float64(res.Rounds))
			syncRounds.Add(float64(res.SyncRounds))
			packets.Add(float64(res.ControlPackets))
			active.Add(float64(res.ActivePeers))
			syncTime.Add(res.SyncTime)
			rate.Add(res.ReceiptRate)
		}
		p.Rounds = rounds.Mean()
		p.SyncRounds = syncRounds.Mean()
		p.ControlPackets = packets.Mean()
		p.ActivePeers = active.Mean()
		p.SyncTime = syncTime.Mean()
		p.ReceiptRate = rate.Mean()
		p.RoundsCI = rounds.CI95()
		p.ControlPacketsCI = packets.CI95()
		p.ReceiptRateCI = rate.CI95()
		out = append(out, p)
	}
	return out, nil
}

// FprintScaleCurve renders a scale sweep as an aligned table.
func FprintScaleCurve(w io.Writer, title string, pts []ScalePoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%8s %14s %12s %20s %12s %10s %14s\n",
		"n", "rounds", "sync-rounds", "control-packets", "active", "sync-time", "receipt-rate")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %8.2f ±%4.2f %12.2f %13.1f ±%5.1f %12.1f %10.2f %8.3f ±%5.3f\n",
			p.N, p.Rounds, p.RoundsCI, p.SyncRounds, p.ControlPackets, p.ControlPacketsCI,
			p.ActivePeers, p.SyncTime, p.ReceiptRate, p.ReceiptRateCI)
	}
}

// ScaleCurveCSV renders a scale sweep as CSV.
func ScaleCurveCSV(protocol string, pts []ScalePoint) string {
	var b strings.Builder
	b.WriteString("protocol,n,rounds,sync_rounds,control_packets,active_peers,sync_time,receipt_rate\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%.3f,%.3f,%.1f,%.1f,%.3f,%.4f\n",
			protocol, p.N, p.Rounds, p.SyncRounds, p.ControlPackets, p.ActivePeers, p.SyncTime, p.ReceiptRate)
	}
	return b.String()
}
