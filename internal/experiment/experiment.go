// Package experiment regenerates the paper's evaluation (§4): Figure 10
// (DCoP rounds and control packets vs H), Figure 11 (the same for TCoP),
// Figure 12 (leaf receipt rate vs H for both protocols), and a baseline
// comparison table for the §3.1 coordination schemes. Each point is
// averaged over several seeds; results are returned as printable tables
// and as raw series for the benchmark harness.
package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"

	"p2pmss/internal/coord"
	"p2pmss/internal/failure"
	"p2pmss/internal/gossip"
	"p2pmss/internal/stats"
)

// Options parameterizes an experiment sweep.
type Options struct {
	// N is the number of contents peers (the paper uses 100).
	N int
	// Hs lists the fanout values to sweep.
	Hs []int
	// Seeds is how many independent runs are averaged per point.
	Seeds int
	// LeafShares mirrors coord.Config.LeafShares.
	LeafShares bool
	// Rate, ContentLen, Window tune the data-plane runs of Figure 12.
	Rate       float64
	ContentLen int64
	Window     float64
	// Retries and HandshakeTimeout tune the engine's churn tolerance
	// (see coord.Config); zero keeps the coordination defaults.
	Retries          int
	HandshakeTimeout float64
	// LossProb, Burst, and Churn impair every run of the sweep (see the
	// same-named coord.Config fields). When any is set, the scenario is
	// stamped into each RunRecord so a JSONL archive is self-describing
	// — a record read months later says what loss/churn it ran under.
	LossProb float64
	Burst    *coord.BurstParams
	Churn    *failure.ChurnSchedule
	// Parallel is the number of worker goroutines sweep points fan out
	// over: 0 or 1 runs serially, a negative value selects
	// runtime.NumCPU(). Every run is an isolated deterministic DES
	// instance and results are collected by grid index, so tables,
	// series and SVGs are byte-identical at any setting.
	Parallel int
	// PlaneMode selects the data-plane simulation strategy of data-plane
	// sweeps (coord.PlanePacket or coord.PlaneFluid; empty = packet).
	// Control-plane-only figures ignore it.
	PlaneMode coord.DataPlaneMode
	// Instrument attaches a fresh metrics registry to every run and
	// includes its snapshot in the JSON records (SweepRecords,
	// BaselineRecords). Instrumentation never perturbs results: series
	// and tables are byte-identical with it on or off.
	Instrument bool
	// CollectSpans attaches a fresh span collector to every run and
	// carries each run's causal trace in RunRecord.Spans (one trace per
	// grid point). Like Instrument, collection never perturbs results.
	CollectSpans bool
}

// DefaultOptions returns the paper's setting: n = 100, H swept over
// 2..100, averaged over 5 seeds.
func DefaultOptions() Options {
	return Options{
		N:          100,
		Hs:         []int{2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Seeds:      5,
		LeafShares: true,
		Rate:       2,
		ContentLen: 30000,
		Window:     200,
	}
}

func (o *Options) normalize() {
	d := DefaultOptions()
	if o.N == 0 {
		o.N = d.N
	}
	if len(o.Hs) == 0 {
		for _, h := range d.Hs {
			if h <= o.N {
				o.Hs = append(o.Hs, h)
			}
		}
	}
	if o.Seeds == 0 {
		o.Seeds = d.Seeds
	}
	if o.Rate == 0 {
		o.Rate = d.Rate
	}
	if o.ContentLen == 0 {
		o.ContentLen = d.ContentLen
	}
	if o.Window == 0 {
		o.Window = d.Window
	}
}

// Point is one averaged sweep point. The *CI fields are 95% confidence
// half-widths of the corresponding means across seeds.
type Point struct {
	H              int
	Rounds         float64 // mean rounds to quiescence
	SyncRounds     float64 // mean rounds to full activation
	ControlPackets float64
	ActivePeers    float64
	SyncTime       float64
	ReceiptRate    float64
	DupRate        float64 // duplicate fraction of window arrivals

	RoundsCI, ControlPacketsCI, ReceiptRateCI float64
}

// Series is a sweep over H for one protocol.
type Series struct {
	Protocol string
	Points   []Point
}

// pointConfig resolves the coordination config of one sweep point.
func (o Options) pointConfig(H, seed int, dataPlane bool) coord.Config {
	cfg := coord.DefaultConfig()
	cfg.N = o.N
	cfg.H = H
	cfg.Seed = int64(seed + 1)
	cfg.LeafShares = o.LeafShares
	if o.Retries != 0 {
		cfg.Retries = o.Retries
	}
	if o.HandshakeTimeout != 0 {
		cfg.HandshakeTimeout = o.HandshakeTimeout
	}
	cfg.LossProb = o.LossProb
	cfg.Burst = o.Burst
	cfg.Churn = o.Churn
	if dataPlane {
		cfg.DataPlane = true
		cfg.PlaneMode = o.PlaneMode
		cfg.Rate = o.Rate
		cfg.ContentLen = o.ContentLen
		cfg.Window = o.Window
	}
	return cfg
}

// checkHs rejects sweep points outside 1..N up front, so a caller asking
// for an out-of-range sweep gets an error instead of a silently shorter
// series.
func (o Options) checkHs() error {
	for _, H := range o.Hs {
		if H < 1 || H > o.N {
			return fmt.Errorf("experiment: sweep point H=%d out of range 1..N=%d", H, o.N)
		}
	}
	return nil
}

// sweepJobs lays out the (H, seed) grid of one protocol's sweep in the
// aggregation order of aggregateSweep.
func sweepJobs(protocol string, o Options, dataPlane bool) []runJob {
	jobs := make([]runJob, 0, len(o.Hs)*o.Seeds)
	for _, H := range o.Hs {
		for seed := 0; seed < o.Seeds; seed++ {
			jobs = append(jobs, runJob{protocol, o.pointConfig(H, seed, dataPlane)})
		}
	}
	return jobs
}

// sweep runs the protocol for every H and seed, fanning the grid out
// over Options.Parallel workers.
func sweep(protocol string, o Options, dataPlane bool) (Series, error) {
	o.normalize()
	if err := o.checkHs(); err != nil {
		return Series{}, err
	}
	results, err := runGrid(sweepJobs(protocol, o, dataPlane), o.Parallel)
	if err != nil {
		return Series{}, err
	}
	return aggregateSweep(protocol, o, results), nil
}

// aggregateSweep averages per-(H, seed) results, laid out in sweepJobs
// order, into one series.
func aggregateSweep(protocol string, o Options, results []coord.Result) Series {
	s := Series{Protocol: protocol}
	idx := 0
	for _, H := range o.Hs {
		p := Point{H: H}
		var rounds, syncRounds, packets, active, syncTime, rate, dup stats.Sample
		for seed := 0; seed < o.Seeds; seed++ {
			res := results[idx]
			idx++
			rounds.Add(float64(res.Rounds))
			syncRounds.Add(float64(res.SyncRounds))
			packets.Add(float64(res.ControlPackets))
			active.Add(float64(res.ActivePeers))
			syncTime.Add(res.SyncTime)
			rate.Add(res.ReceiptRate)
			if tot := res.DataPackets + res.ParityPackets + res.DupPackets; tot > 0 {
				dup.Add(float64(res.DupPackets) / float64(tot))
			} else {
				dup.Add(0)
			}
		}
		p.Rounds = rounds.Mean()
		p.SyncRounds = syncRounds.Mean()
		p.ControlPackets = packets.Mean()
		p.ActivePeers = active.Mean()
		p.SyncTime = syncTime.Mean()
		p.ReceiptRate = rate.Mean()
		p.DupRate = dup.Mean()
		p.RoundsCI = rounds.CI95()
		p.ControlPacketsCI = packets.CI95()
		p.ReceiptRateCI = rate.CI95()
		s.Points = append(s.Points, p)
	}
	return s
}

// Figure10 reproduces "Rounds and number of control packets in DCoP".
func Figure10(o Options) (Series, error) { return sweep(coord.DCoP, o, false) }

// Figure11 reproduces "Rounds and number of control packets in TCoP".
func Figure11(o Options) (Series, error) { return sweep(coord.TCoP, o, false) }

// Figure12 reproduces "Receipt rate of leaf peer" for DCoP and TCoP.
// Both protocols' grids run on one worker pool so the sweep has a single
// fan-out barrier instead of two.
func Figure12(o Options) (dcop, tcop Series, err error) {
	o.normalize()
	if err := o.checkHs(); err != nil {
		return Series{}, Series{}, err
	}
	dj := sweepJobs(coord.DCoP, o, true)
	jobs := append(dj, sweepJobs(coord.TCoP, o, true)...)
	results, err := runGrid(jobs, o.Parallel)
	if err != nil {
		return Series{}, Series{}, err
	}
	dcop = aggregateSweep(coord.DCoP, o, results[:len(dj)])
	tcop = aggregateSweep(coord.TCoP, o, results[len(dj):])
	return dcop, tcop, nil
}

// BaselineRow is one protocol's entry in the baseline comparison.
type BaselineRow struct {
	Protocol       string
	Rounds         float64
	SyncRounds     float64
	ControlPackets float64
	SyncTime       float64
	ReceiptRate    float64
}

// Baselines compares all five coordination protocols at a fixed H,
// quantifying §3.1's trade-offs (broadcast: 1 round but O(n²) packets;
// unicast: n packets but n rounds; centralized: 3+ rounds; DCoP/TCoP in
// between).
func Baselines(o Options, H int) ([]BaselineRow, error) {
	o.normalize()
	if H < 1 || H > o.N {
		return nil, errOutOfRange(H, o.N)
	}
	jobs := make([]runJob, 0, len(coord.Protocols)*o.Seeds)
	for _, proto := range coord.Protocols {
		for seed := 0; seed < o.Seeds; seed++ {
			jobs = append(jobs, runJob{proto, o.pointConfig(H, seed, true)})
		}
	}
	results, err := runGrid(jobs, o.Parallel)
	if err != nil {
		return nil, err
	}
	var rows []BaselineRow
	idx := 0
	for _, proto := range coord.Protocols {
		var row BaselineRow
		row.Protocol = proto
		for seed := 0; seed < o.Seeds; seed++ {
			res := results[idx]
			idx++
			row.Rounds += float64(res.Rounds)
			row.SyncRounds += float64(res.SyncRounds)
			row.ControlPackets += float64(res.ControlPackets)
			row.SyncTime += res.SyncTime
			row.ReceiptRate += res.ReceiptRate
		}
		n := float64(o.Seeds)
		row.Rounds /= n
		row.SyncRounds /= n
		row.ControlPackets /= n
		row.SyncTime /= n
		row.ReceiptRate /= n
		rows = append(rows, row)
	}
	return rows, nil
}

func errOutOfRange(H, N int) error {
	return fmt.Errorf("experiment: baseline H=%d out of range 1..N=%d", H, N)
}

// GossipCoveragePoint is one fanout's mean coverage.
type GossipCoveragePoint struct {
	Fanout   int
	Coverage float64 // mean infected fraction
}

// GossipCoverage sweeps the gossip fanout and reports mean coverage —
// the reference-[6] phase transition explaining why DCoP needs H ≳ ln n
// to synchronize every contents peer.
func GossipCoverage(n int, fanouts []int, seeds int) ([]GossipCoveragePoint, error) {
	if len(fanouts) == 0 {
		fanouts = []int{1, 2, 3, 4, 5, 7, 10, 15}
	}
	if seeds <= 0 {
		seeds = 10
	}
	curve, err := gossip.CoverageCurve(n, fanouts, seeds, false)
	if err != nil {
		return nil, err
	}
	out := make([]GossipCoveragePoint, 0, len(fanouts))
	for _, f := range fanouts {
		out = append(out, GossipCoveragePoint{Fanout: f, Coverage: curve[f]})
	}
	return out, nil
}

// FprintGossipCoverage renders the coverage sweep.
func FprintGossipCoverage(w io.Writer, n int, pts []GossipCoveragePoint) {
	fmt.Fprintf(w, "Gossip coverage vs fanout (n=%d; ref [6] phase transition at ≈ln n = %.1f)\n",
		n, math.Log(float64(n)))
	fmt.Fprintf(w, "%8s %12s\n", "fanout", "coverage")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %11.1f%%\n", p.Fanout, p.Coverage*100)
	}
}

// MinStartupDelay binary-searches the smallest playback startup delay
// (in δ units, to the given precision) that yields glitch-free playout
// (zero underruns) for the protocol under cfg — the §1 real-time
// constraint turned into a measurable quantity.
func MinStartupDelay(protocol string, cfg coord.Config, maxDelay, precision float64) (float64, error) {
	underrunsAt := func(d float64) (int64, error) {
		c := cfg
		c.Playback = true
		c.PlaybackDelay = d
		res, err := coord.Run(protocol, c)
		if err != nil {
			return 0, err
		}
		return res.Underruns, nil
	}
	if u, err := underrunsAt(maxDelay); err != nil {
		return 0, err
	} else if u > 0 {
		return maxDelay, fmt.Errorf("experiment: underruns persist at max delay %v", maxDelay)
	}
	lo, hi := 0.0, maxDelay
	for hi-lo > precision {
		mid := (lo + hi) / 2
		u, err := underrunsAt(mid)
		if err != nil {
			return 0, err
		}
		if u == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// PaperReference holds the reference values quoted in the paper's text
// for comparison in EXPERIMENTS.md.
var PaperReference = struct {
	Fig10H60Rounds  float64 // "two rounds ... for H = 60"
	Fig10H60Packets float64 // "about 600 control packets"
	Fig11H60Rounds  float64 // "six rounds"
	Fig11H60Packets float64 // "about 7400 control packets"
	Fig12H60DCoP    float64 // "rate = 1.019 in DCoP"
	Fig12H60TCoP    float64 // "rate = 1.226 in TCoP"
}{2, 600, 6, 7400, 1.019, 1.226}

// ---- rendering ----------------------------------------------------------

// FprintSeries renders a coordination sweep as an aligned table.
func FprintSeries(w io.Writer, title string, s Series) {
	fmt.Fprintf(w, "%s (protocol %s)\n", title, s.Protocol)
	fmt.Fprintf(w, "%6s %14s %12s %20s %12s %10s\n",
		"H", "rounds", "sync-rounds", "control-packets", "active", "sync-time")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%6d %8.2f ±%4.2f %12.2f %13.1f ±%5.1f %12.1f %10.2f\n",
			p.H, p.Rounds, p.RoundsCI, p.SyncRounds, p.ControlPackets, p.ControlPacketsCI, p.ActivePeers, p.SyncTime)
	}
}

// FprintRateSeries renders a Figure 12 sweep pair.
func FprintRateSeries(w io.Writer, title string, dcop, tcop Series) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%6s %18s %18s %12s\n", "H", "DCoP rate", "TCoP rate", "DCoP dup%")
	tp := map[int]Point{}
	for _, p := range tcop.Points {
		tp[p.H] = p
	}
	for _, p := range dcop.Points {
		fmt.Fprintf(w, "%6d %10.3f ±%5.3f %10.3f ±%5.3f %12.1f\n",
			p.H, p.ReceiptRate, p.ReceiptRateCI, tp[p.H].ReceiptRate, tp[p.H].ReceiptRateCI, p.DupRate*100)
	}
}

// FprintBaselines renders the baseline comparison table.
func FprintBaselines(w io.Writer, title string, rows []BaselineRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-12s %8s %12s %16s %10s %12s\n",
		"protocol", "rounds", "sync-rounds", "control-packets", "sync-time", "receipt-rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.1f %12.1f %16.1f %10.2f %12.3f\n",
			r.Protocol, r.Rounds, r.SyncRounds, r.ControlPackets, r.SyncTime, r.ReceiptRate)
	}
}

// SeriesCSV renders a sweep as CSV.
func SeriesCSV(s Series) string {
	var b strings.Builder
	b.WriteString("protocol,h,rounds,sync_rounds,control_packets,active_peers,sync_time,receipt_rate,dup_rate\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%s,%d,%.3f,%.3f,%.1f,%.1f,%.3f,%.4f,%.4f\n",
			s.Protocol, p.H, p.Rounds, p.SyncRounds, p.ControlPackets, p.ActivePeers, p.SyncTime, p.ReceiptRate, p.DupRate)
	}
	return b.String()
}
