package experiment

import (
	"reflect"
	"strings"
	"testing"

	"p2pmss/internal/coord"
	"p2pmss/internal/span"
)

// TestTraceDeterministicAcrossWorkers is the observability twin of the
// parallel-sweep guarantee: collecting spans perturbs neither the
// results nor itself — the trace bytes are identical between the serial
// path and a parallel pool, and the results are byte-identical to an
// untraced sweep.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5, 10}
	o.Seeds = 2
	o.CollectSpans = true

	render := func(workers int) (string, []RunRecord) {
		oo := o
		oo.Parallel = workers
		recs, err := SweepRecords(coord.TCoP, oo, false)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := span.WriteJSONL(&b, Spans(recs)); err != nil {
			t.Fatal(err)
		}
		return b.String(), recs
	}
	t1, r1 := render(1)
	t8, r8 := render(8)
	if t1 != t8 {
		t.Error("trace bytes differ between serial and 8-worker sweeps")
	}
	if t1 == "" {
		t.Fatal("traced sweep produced no spans")
	}
	for i := range r1 {
		if !reflect.DeepEqual(r1[i].Result, r8[i].Result) {
			t.Errorf("run %d: result differs across worker counts", i)
		}
	}

	// Tracing never perturbs the simulation: an untraced sweep yields
	// the same results.
	bare := o
	bare.CollectSpans = false
	bareRecs, err := SweepRecords(coord.TCoP, bare, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bareRecs {
		if !reflect.DeepEqual(bareRecs[i].Result, r1[i].Result) {
			t.Errorf("run %d: traced result differs from bare", i)
		}
		if len(bareRecs[i].Spans) != 0 {
			t.Errorf("run %d: untraced record carries %d spans", i, len(bareRecs[i].Spans))
		}
		if len(r1[i].Spans) == 0 {
			t.Errorf("run %d: traced record carries no spans", i)
		}
	}
}

// TestTraceGridPointsGetDistinctTraces pins the per-grid-point trace
// derivation: H values sharing a seed must not collide into one trace.
func TestTraceGridPointsGetDistinctTraces(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5, 10}
	o.Seeds = 2
	o.CollectSpans = true
	recs, err := SweepRecords(coord.TCoP, o, false)
	if err != nil {
		t.Fatal(err)
	}
	traces := map[span.TraceID]bool{}
	for _, r := range recs {
		if len(r.Spans) == 0 {
			t.Fatalf("grid point H=%d seed=%d has no spans", r.H, r.Seed)
		}
		tr := r.Spans[0].Trace
		for _, s := range r.Spans {
			if s.Trace != tr {
				t.Fatalf("grid point H=%d seed=%d mixes traces", r.H, r.Seed)
			}
		}
		if traces[tr] {
			t.Fatalf("trace %x reused across grid points", uint64(tr))
		}
		traces[tr] = true
	}
	if len(traces) != len(recs) {
		t.Errorf("%d distinct traces for %d grid points", len(traces), len(recs))
	}
}

// TestTCoPCommitSpansParentedUnderConfirmWave is the issue's span
// acceptance check at the paper's scale: in a 100-peer TCoP run, every
// commit span must nest under a confirmation-wave span — the causal
// claim ("this commit concluded that retry wave") the tracing exists to
// make checkable.
func TestTCoPCommitSpansParentedUnderConfirmWave(t *testing.T) {
	o := smallOpts()
	o.N = 100
	o.Hs = []int{10}
	o.Seeds = 1
	o.CollectSpans = true
	recs, err := SweepRecords(coord.TCoP, o, false)
	if err != nil {
		t.Fatal(err)
	}
	spans := Spans(recs)
	byID := map[span.SpanID]span.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	commits := 0
	for _, s := range spans {
		if s.Name != "commit" {
			continue
		}
		commits++
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("commit span %d has dangling parent %d", s.ID, s.Parent)
		}
		if parent.Name != "confirm_wave" {
			t.Errorf("commit span %d parented under %q, want confirm_wave", s.ID, parent.Name)
		}
	}
	// Commit spans are recorded at recruiting parents (one per closed
	// wave), so a 100-peer H=10 tree yields at least the ~N/H internal
	// parents; require that so the check cannot pass vacuously.
	if commits < o.N/o.Hs[0] {
		t.Errorf("only %d commit spans in a %d-peer run, want >= %d", commits, o.N, o.N/o.Hs[0])
	}
}
