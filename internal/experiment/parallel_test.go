package experiment

import (
	"reflect"
	"strings"
	"testing"

	"p2pmss/internal/coord"
)

// renderAll captures every byte the harness can emit for a series, so
// the parallel/serial comparison covers tables and CSV alike.
func renderAll(t *testing.T, s Series) string {
	t.Helper()
	var b strings.Builder
	FprintSeries(&b, "golden", s)
	b.WriteString(SeriesCSV(s))
	return b.String()
}

// The tentpole guarantee: fanning the sweep grid out over a worker pool
// changes nothing about the results — series, tables and CSV are
// byte-identical to the serial path.
func TestParallelSweepByteIdentical(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5, 10, 20}

	serial := o
	serial.Parallel = 1
	par := o
	par.Parallel = 8

	s1, err := Figure10(serial)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Figure10(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("parallel series differs from serial:\n%+v\n%+v", s1, s2)
	}
	if g1, g2 := renderAll(t, s1), renderAll(t, s2); g1 != g2 {
		t.Errorf("rendered output differs:\n%s\n---\n%s", g1, g2)
	}
}

func TestParallelDataPlaneSweepByteIdentical(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5, 10}
	o.Seeds = 2
	o.ContentLen = 2000
	o.Window = 40

	serial := o
	serial.Parallel = 1
	par := o
	par.Parallel = -1 // NumCPU

	d1, t1, err := Figure12(serial)
	if err != nil {
		t.Fatal(err)
	}
	d2, t2, err := Figure12(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(t1, t2) {
		t.Error("parallel Figure12 differs from serial")
	}
	var b1, b2 strings.Builder
	FprintRateSeries(&b1, "golden", d1, t1)
	FprintRateSeries(&b2, "golden", d2, t2)
	if b1.String() != b2.String() {
		t.Errorf("rendered rate tables differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
}

func TestParallelBaselinesByteIdentical(t *testing.T) {
	o := smallOpts()
	o.Seeds = 1
	o.ContentLen = 1500
	o.Window = 40

	serial := o
	serial.Parallel = 1
	par := o
	par.Parallel = 6

	r1, err := Baselines(serial, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Baselines(par, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("parallel baselines differ:\n%+v\n%+v", r1, r2)
	}
}

// Instrumented JSON sweeps hold the same guarantee: per-run records —
// results and metrics snapshots included — are byte-identical between
// the serial path and any worker count, and identical result-wise to an
// uninstrumented sweep.
func TestParallelInstrumentedRecordsByteIdentical(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5, 10}
	o.Seeds = 2
	o.ContentLen = 2000
	o.Window = 40
	o.Instrument = true

	serial := o
	serial.Parallel = 1
	par := o
	par.Parallel = 8

	render := func(o Options) string {
		recs, err := SweepRecords(coord.DCoP, o, true)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := WriteRecordsJSONL(&b, recs); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	j1, j2 := render(serial), render(par)
	if j1 != j2 {
		t.Errorf("instrumented JSONL differs serial vs parallel:\n%s\n---\n%s", j1, j2)
	}
	if !strings.Contains(j1, `"metrics"`) || !strings.Contains(j1, "coord_control_packets_total") {
		t.Errorf("records missing metrics snapshots:\n%.400s", j1)
	}

	// The instrumented runs' results equal the bare runs' results.
	bare := serial
	bare.Instrument = false
	bareRecs, err := SweepRecords(coord.DCoP, bare, true)
	if err != nil {
		t.Fatal(err)
	}
	instrRecs, err := SweepRecords(coord.DCoP, serial, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bareRecs {
		if !reflect.DeepEqual(bareRecs[i].Result, instrRecs[i].Result) {
			t.Errorf("run %d: instrumented result differs from bare", i)
		}
		if instrRecs[i].Metrics == nil || bareRecs[i].Metrics != nil {
			t.Errorf("run %d: metrics presence wrong (instr=%v bare=%v)",
				i, instrRecs[i].Metrics != nil, bareRecs[i].Metrics != nil)
		}
	}
}

// An out-of-range sweep point is an error, not a silently shorter
// series.
func TestSweepRejectsOutOfRangeH(t *testing.T) {
	o := smallOpts()
	o.Hs = []int{5, o.N + 10}
	if _, err := Figure10(o); err == nil {
		t.Error("H > N accepted by Figure10")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unhelpful error: %v", err)
	}
	o.Hs = []int{0}
	if _, err := Figure10(o); err == nil {
		t.Error("H = 0 accepted by Figure10")
	}
	o = smallOpts()
	if _, _, err := Figure12(Options{N: o.N, Hs: []int{o.N + 1}}); err == nil {
		t.Error("H > N accepted by Figure12")
	}
	if _, err := Baselines(o, o.N+1); err == nil {
		t.Error("H > N accepted by Baselines")
	}
}

// Errors inside the pool surface deterministically: the lowest-indexed
// failing job wins regardless of worker count.
func TestRunGridDeterministicError(t *testing.T) {
	good := coord.DefaultConfig()
	good.N = 8
	good.H = 4
	bad1 := good
	bad1.Rate = -1 // invalid: distinct message
	bad2 := good
	bad2.N = -5 // invalid: distinct message
	jobs := []runJob{
		{coord.DCoP, good},
		{coord.DCoP, bad1},
		{coord.DCoP, bad2},
		{coord.DCoP, good},
	}
	_, errSerial := runGrid(jobs, 1)
	if errSerial == nil {
		t.Fatal("invalid job accepted")
	}
	for trial := 0; trial < 4; trial++ {
		_, errPar := runGrid(jobs, 4)
		if errPar == nil || errPar.Error() != errSerial.Error() {
			t.Fatalf("parallel error %v != serial %v", errPar, errSerial)
		}
	}
}
