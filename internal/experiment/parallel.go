package experiment

import (
	"runtime"
	"sync"

	"p2pmss/internal/coord"
)

// runJob is one grid point of a sweep: a protocol run under a fixed,
// fully-resolved configuration.
type runJob struct {
	protocol string
	cfg      coord.Config
}

// runGrid executes the jobs and returns their results in job order.
// workers <= 1 runs serially on the calling goroutine; workers < 0
// selects runtime.NumCPU(). Any other value fans the jobs out over a
// bounded worker pool.
//
// Determinism: each coord.Run is an isolated discrete-event simulation
// seeded from its own config, sharing no state with its neighbours, and
// results land in a slice indexed by job order — so the output (and
// anything rendered from it) is byte-identical for every worker count.
// Errors are likewise reported deterministically: the whole grid runs,
// then the error of the lowest-indexed failing job is returned.
func runGrid(jobs []runJob, workers int) ([]coord.Result, error) {
	results := make([]coord.Result, len(jobs))
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			res, err := coord.Run(j.protocol, j.cfg)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = coord.Run(jobs[i].protocol, jobs[i].cfg)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
