package experiment

import (
	"fmt"
	"os"
	"path/filepath"

	"p2pmss/internal/svgplot"
)

// RoundsChart builds the Figure 10/11-style chart for one protocol:
// rounds (solid) and control packets (dashed, log axis disabled — the
// paper plots both on linear axes with separate scales, we normalize the
// packet curve by its maximum and annotate).
func RoundsChart(title string, s Series) *svgplot.Chart {
	var xs, rounds, packets []float64
	for _, p := range s.Points {
		xs = append(xs, float64(p.H))
		rounds = append(rounds, p.Rounds)
		packets = append(packets, p.ControlPackets)
	}
	return &svgplot.Chart{
		Title:  title,
		XLabel: "number of selected peers H",
		YLabel: "rounds / control packets (log)",
		YLog:   true,
		Series: []svgplot.Series{
			{Name: "rounds", X: xs, Y: rounds},
			{Name: "control packets", X: xs, Y: packets, Dashed: true},
		},
	}
}

// RateChart builds the Figure 12-style chart: receipt rate vs H for DCoP
// and TCoP.
func RateChart(title string, dcop, tcop Series) *svgplot.Chart {
	var xs, dy, ty []float64
	tp := map[int]float64{}
	for _, p := range tcop.Points {
		tp[p.H] = p.ReceiptRate
	}
	for _, p := range dcop.Points {
		xs = append(xs, float64(p.H))
		dy = append(dy, p.ReceiptRate)
		ty = append(ty, tp[p.H])
	}
	return &svgplot.Chart{
		Title:  title,
		XLabel: "number of selected peers H",
		YLabel: "receipt rate (× content rate)",
		Series: []svgplot.Series{
			{Name: "DCoP", X: xs, Y: dy},
			{Name: "TCoP", X: xs, Y: ty, Dashed: true},
		},
	}
}

// WriteSVG renders a chart into dir/name.svg.
func WriteSVG(dir, name string, c *svgplot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	path := filepath.Join(dir, name+".svg")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	if err := c.Render(f); err != nil {
		return err
	}
	return f.Close()
}
