package experiment

import (
	"encoding/json"
	"io"

	"p2pmss/internal/coord"
	"p2pmss/internal/metrics"
)

// RunRecord is one (protocol, H, seed) grid point in machine-readable
// form: the full simulation result plus, when Options.Instrument is set,
// the run's metrics snapshot. One RunRecord is one JSON line.
type RunRecord struct {
	Protocol string            `json:"protocol"`
	H        int               `json:"h"`
	Seed     int64             `json:"seed"`
	Result   coord.Result      `json:"result"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
}

// runRecords executes the jobs (optionally with a fresh per-run registry
// each) and pairs every result with its grid coordinates. Registries are
// snapshotted only after runGrid returns — its pool join is the
// happens-before edge making the per-run counters safe to read — and the
// snapshot itself is sorted, so the byte output is deterministic at any
// worker count.
func runRecords(jobs []runJob, workers int, instrument bool) ([]RunRecord, error) {
	regs := make([]*metrics.Registry, len(jobs))
	if instrument {
		for i := range jobs {
			regs[i] = metrics.New()
			jobs[i].cfg.Metrics = regs[i]
		}
	}
	results, err := runGrid(jobs, workers)
	if err != nil {
		return nil, err
	}
	recs := make([]RunRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = RunRecord{
			Protocol: j.protocol,
			H:        j.cfg.H,
			Seed:     j.cfg.Seed,
			Result:   results[i],
		}
		if regs[i] != nil {
			s := regs[i].Snapshot()
			recs[i].Metrics = &s
		}
	}
	return recs, nil
}

// SweepRecords runs the protocol's (H, seed) grid and returns every
// per-run record, in grid order.
func SweepRecords(protocol string, o Options, dataPlane bool) ([]RunRecord, error) {
	o.normalize()
	if err := o.checkHs(); err != nil {
		return nil, err
	}
	return runRecords(sweepJobs(protocol, o, dataPlane), o.Parallel, o.Instrument)
}

// BaselineRecords runs every protocol at fixed H and returns the per-run
// records, in protocol-then-seed order.
func BaselineRecords(o Options, H int) ([]RunRecord, error) {
	o.normalize()
	if H < 1 || H > o.N {
		return nil, errOutOfRange(H, o.N)
	}
	jobs := make([]runJob, 0, len(coord.Protocols)*o.Seeds)
	for _, proto := range coord.Protocols {
		for seed := 0; seed < o.Seeds; seed++ {
			jobs = append(jobs, runJob{proto, o.pointConfig(H, seed, true)})
		}
	}
	return runRecords(jobs, o.Parallel, o.Instrument)
}

// WriteRecordsJSONL writes the records to w as JSON Lines, one compact
// object per run.
func WriteRecordsJSONL(w io.Writer, recs []RunRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
