package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"p2pmss/internal/coord"
	"p2pmss/internal/metrics"
	"p2pmss/internal/span"
)

// RunRecord is one (protocol, H, seed) grid point in machine-readable
// form: the full simulation result plus, when Options.Instrument is set,
// the run's metrics snapshot. One RunRecord is one JSON line. Spans
// (Options.CollectSpans) are carried separately from the JSON encoding —
// they go to the trace file, not the record stream.
type RunRecord struct {
	Protocol string            `json:"protocol"`
	H        int               `json:"h"`
	Seed     int64             `json:"seed"`
	Scenario *Scenario         `json:"scenario,omitempty"`
	Result   coord.Result      `json:"result"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
	Spans    []span.Span       `json:"-"`
}

// Scenario stamps a run's impairment and churn configuration into its
// record, so a JSONL archive is self-describing: a record produced
// under 5% loss or a churn schedule says so without needing the command
// line that produced it. Nil (omitted) for unimpaired runs, keeping
// their byte output identical to before scenarios existed.
type Scenario struct {
	// LossProb is the independent per-message drop probability.
	LossProb float64 `json:"loss_prob,omitempty"`
	// Burst echoes the Gilbert–Elliott parameters when bursty loss was on.
	Burst *coord.BurstParams `json:"burst,omitempty"`
	// ChurnEvents is how many crash/join events the churn schedule held.
	ChurnEvents int `json:"churn_events,omitempty"`
	// Retries and HandshakeTimeout echo the churn-tolerance tuning.
	Retries          int     `json:"retries,omitempty"`
	HandshakeTimeout float64 `json:"handshake_timeout,omitempty"`
	// PlaneMode names the data-plane strategy when it deviates from the
	// per-packet default ("fluid").
	PlaneMode string `json:"plane_mode,omitempty"`
}

// scenarioFor derives a run's scenario stamp from its resolved config,
// or nil when nothing deviates from the reliable-network default.
func scenarioFor(cfg coord.Config) *Scenario {
	s := Scenario{
		LossProb:         cfg.LossProb,
		Burst:            cfg.Burst,
		Retries:          cfg.Retries,
		HandshakeTimeout: cfg.HandshakeTimeout,
	}
	if cfg.Churn != nil {
		s.ChurnEvents = len(cfg.Churn.Events)
	}
	if cfg.PlaneMode == coord.PlaneFluid {
		s.PlaneMode = string(cfg.PlaneMode)
	}
	if s == (Scenario{}) {
		return nil
	}
	return &s
}

// runRecords executes the jobs (optionally with a fresh per-run registry
// and span collector each) and pairs every result with its grid
// coordinates. Registries and collectors are read only after runGrid
// returns — its pool join is the happens-before edge making the per-run
// state safe to read — and both snapshots are sorted, so the byte output
// is deterministic at any worker count.
func runRecords(jobs []runJob, workers int, instrument, collectSpans bool) ([]RunRecord, error) {
	regs := make([]*metrics.Registry, len(jobs))
	if instrument {
		for i := range jobs {
			regs[i] = metrics.New()
			jobs[i].cfg.Obs.Metrics = regs[i]
		}
	}
	cols := make([]*span.Collector, len(jobs))
	if collectSpans {
		for i := range jobs {
			cols[i] = span.NewCollector()
			jobs[i].cfg.Obs.Spans = cols[i]
			// One trace per grid point: the default seed-derived trace
			// would collide across H values sharing a seed.
			jobs[i].cfg.Obs.SpanTrace = span.DeriveTrace(fmt.Sprintf("%s/H=%d/seed=%d",
				jobs[i].protocol, jobs[i].cfg.H, jobs[i].cfg.Seed))
		}
	}
	results, err := runGrid(jobs, workers)
	if err != nil {
		return nil, err
	}
	recs := make([]RunRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = RunRecord{
			Protocol: j.protocol,
			H:        j.cfg.H,
			Seed:     j.cfg.Seed,
			Scenario: scenarioFor(j.cfg),
			Result:   results[i],
		}
		if regs[i] != nil {
			s := regs[i].Snapshot()
			recs[i].Metrics = &s
		}
		if cols[i] != nil {
			recs[i].Spans = cols[i].Spans()
		}
	}
	return recs, nil
}

// Spans concatenates the records' span sets in record (grid) order —
// deterministic because each run's collector is merged after the pool
// join and sorted per run.
func Spans(recs []RunRecord) []span.Span {
	var out []span.Span
	for _, r := range recs {
		out = append(out, r.Spans...)
	}
	return out
}

// SeriesFromRecords aggregates per-run records (in SweepRecords grid
// order) into the same averaged series the figure functions return, so
// a caller that needs both the table and the raw traces runs the grid
// once.
func SeriesFromRecords(protocol string, o Options, recs []RunRecord) Series {
	o.normalize()
	results := make([]coord.Result, len(recs))
	for i, r := range recs {
		results[i] = r.Result
	}
	return aggregateSweep(protocol, o, results)
}

// SweepRecords runs the protocol's (H, seed) grid and returns every
// per-run record, in grid order.
func SweepRecords(protocol string, o Options, dataPlane bool) ([]RunRecord, error) {
	o.normalize()
	if err := o.checkHs(); err != nil {
		return nil, err
	}
	return runRecords(sweepJobs(protocol, o, dataPlane), o.Parallel, o.Instrument, o.CollectSpans)
}

// BaselineRecords runs every protocol at fixed H and returns the per-run
// records, in protocol-then-seed order.
func BaselineRecords(o Options, H int) ([]RunRecord, error) {
	o.normalize()
	if H < 1 || H > o.N {
		return nil, errOutOfRange(H, o.N)
	}
	jobs := make([]runJob, 0, len(coord.Protocols)*o.Seeds)
	for _, proto := range coord.Protocols {
		for seed := 0; seed < o.Seeds; seed++ {
			jobs = append(jobs, runJob{proto, o.pointConfig(H, seed, true)})
		}
	}
	return runRecords(jobs, o.Parallel, o.Instrument, o.CollectSpans)
}

// BaselinesFromRecords aggregates per-run baseline records (in
// BaselineRecords order) into the comparison table rows.
func BaselinesFromRecords(o Options, recs []RunRecord) []BaselineRow {
	o.normalize()
	var rows []BaselineRow
	idx := 0
	for _, proto := range coord.Protocols {
		var row BaselineRow
		row.Protocol = proto
		for seed := 0; seed < o.Seeds && idx < len(recs); seed++ {
			res := recs[idx].Result
			idx++
			row.Rounds += float64(res.Rounds)
			row.SyncRounds += float64(res.SyncRounds)
			row.ControlPackets += float64(res.ControlPackets)
			row.SyncTime += res.SyncTime
			row.ReceiptRate += res.ReceiptRate
		}
		n := float64(o.Seeds)
		row.Rounds /= n
		row.SyncRounds /= n
		row.ControlPackets /= n
		row.SyncTime /= n
		row.ReceiptRate /= n
		rows = append(rows, row)
	}
	return rows
}

// WriteRecordsJSONL writes the records to w as JSON Lines, one compact
// object per run.
func WriteRecordsJSONL(w io.Writer, recs []RunRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
