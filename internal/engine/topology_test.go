package engine

import (
	"testing"

	"p2pmss/internal/metrics"
	"p2pmss/internal/overlay"
	"p2pmss/internal/seq"
)

// TestTopologySnapshotDerivesEdgesFromChildren checks the converter's
// core rule: edges come from the parents' committed Children lists,
// never from Outcome.Parent — DCoP peers keep Parent at -1 and
// leaf-rooted TCoP peers point Parent at themselves, so deriving edges
// from Parent would fabricate self-loops and drop DCoP edges entirely.
func TestTopologySnapshotDerivesEdgesFromChildren(t *testing.T) {
	outs := []Outcome{
		{ID: 0, Active: true, Parent: 0, Children: []PeerID{1, 2, 2}, // dup child must not dup the edge
			Assigned: seq.Range(1, 10), Round: 1},
		{ID: 1, Active: true, Parent: -1, Children: []PeerID{3}, // DCoP-style: no recorded parent
			Assigned: seq.Range(11, 15), Round: 2},
		{ID: 2, Active: true, Parent: 0, Assigned: seq.Range(16, 18), Round: 2},
		{ID: 3, Active: false, Parent: -1, Round: 0},
	}
	s := TopologySnapshot(outs, TopologyInfo{
		Protocol:   "DCoP",
		Time:       2.5,
		ContentLen: 20,
		Addr:       func(id PeerID) string { return map[PeerID]string{0: "a0"}[id] },
	})

	if s.Version != overlay.SnapshotVersion || s.Protocol != "DCoP" || s.Time != 2.5 {
		t.Errorf("header = %+v", s)
	}
	wantEdges := []overlay.Edge{{Parent: 0, Child: 1}, {Parent: 0, Child: 2}, {Parent: 1, Child: 3}}
	if len(s.Edges) != len(wantEdges) {
		t.Fatalf("edges %v, want %v", s.Edges, wantEdges)
	}
	for i, e := range wantEdges {
		if s.Edges[i] != e {
			t.Errorf("edge %d = %v, want %v", i, s.Edges[i], e)
		}
	}
	// No self-loop despite peer 0's Parent == 0.
	for _, e := range s.Edges {
		if e.Parent == e.Child {
			t.Errorf("self-loop edge %v", e)
		}
	}
	if s.Nodes[0].Addr != "a0" || s.Nodes[1].Addr != "" {
		t.Errorf("addrs = %q, %q", s.Nodes[0].Addr, s.Nodes[1].Addr)
	}
	// Coverage: active peers cover data 1..18 of 20.
	if want := 18.0 / 20.0; s.Health.Coverage != want {
		t.Errorf("coverage = %v, want %v", s.Health.Coverage, want)
	}
	if s.Health.ActivePeers != 3 || s.Health.Depth != 2 || s.Health.MaxFanout != 3 {
		t.Errorf("health = %+v", s.Health)
	}
	// Every active depth>1 peer has an incoming edge; inactive peer 3
	// never counts.
	if s.Health.OrphanedLeaves != 0 {
		t.Errorf("orphans = %d, want 0", s.Health.OrphanedLeaves)
	}
}

func TestTopologySnapshotZeroContentLen(t *testing.T) {
	outs := []Outcome{{ID: 0, Active: true, Assigned: seq.Range(1, 5), Round: 1}}
	s := TopologySnapshot(outs, TopologyInfo{})
	if s.Health.Coverage != 0 {
		t.Errorf("coverage = %v without a content length, want 0", s.Health.Coverage)
	}
}

func TestPublishTopology(t *testing.T) {
	reg := metrics.New()
	s := overlay.Snapshot{Health: overlay.Health{
		ActivePeers: 7, Depth: 3, MaxFanout: 4, OrphanedLeaves: 1, Coverage: 0.9,
	}}
	PublishTopology(reg, s, "session", "demo")
	snap := reg.Snapshot()
	want := map[string]float64{
		"overlay_depth":           3,
		"overlay_fanout":          4,
		"overlay_orphaned_leaves": 1,
		"overlay_active_peers":    7,
		"overlay_coverage_ratio":  0.9,
	}
	found := 0
	for _, g := range snap.Gauges {
		if v, ok := want[g.Name]; ok {
			found++
			if g.Value != v {
				t.Errorf("%s = %v, want %v", g.Name, g.Value, v)
			}
			if len(g.Labels) == 0 {
				t.Errorf("%s published without the session label", g.Name)
			}
		}
	}
	if found != len(want) {
		t.Errorf("found %d overlay gauges, want %d", found, len(want))
	}
	PublishTopology(nil, s) // nil registry must not panic
}
