package engine

import (
	"p2pmss/internal/metrics"
	"p2pmss/internal/overlay"
	"p2pmss/internal/seq"
)

// TopologyInfo labels a topology snapshot with run context.
type TopologyInfo struct {
	// Protocol is the run's protocol name ("TCoP", "DCoP", ...).
	Protocol string
	// Session labels the streaming session on multi-session nodes.
	Session string
	// Time is the capturing driver's clock at snapshot time.
	Time float64
	// ContentLen is the content length in data packets; zero leaves the
	// coverage ratio at 0 (control-plane-only runs).
	ContentLen int
	// Addr maps a peer id to its transport address (nil in the
	// simulator).
	Addr func(id PeerID) string
}

// TopologySnapshot walks per-peer coordination outcomes into a
// versioned overlay snapshot: slot assignments, the hand-off edges,
// per-peer role/depth, and the tree-health summary including the
// division coverage ratio. Edges derive from the parents' Children
// lists — the committed hand-offs — never from Outcome.Parent, which
// DCoP peers leave at -1 and leaf-rooted TCoP peers point at
// themselves.
func TopologySnapshot(outs []Outcome, info TopologyInfo) overlay.Snapshot {
	s := overlay.Snapshot{
		Version:  overlay.SnapshotVersion,
		Protocol: info.Protocol,
		Session:  info.Session,
		Time:     info.Time,
	}
	var union seq.Sequence
	for _, o := range outs {
		n := overlay.Node{
			ID:        int(o.ID),
			Active:    o.Active,
			Committed: o.Committed,
			Parent:    o.Parent,
			Depth:     o.Round,
			Assigned:  len(o.Assigned),
			Covered:   o.Assigned.CountData(),
			Retried:   o.Retried,
			Absorbed:  o.Absorbed,
		}
		if info.Addr != nil {
			n.Addr = info.Addr(o.ID)
		}
		seen := make(map[PeerID]bool, len(o.Children))
		for _, c := range o.Children {
			n.Children = append(n.Children, int(c))
			if !seen[c] {
				seen[c] = true
				s.Edges = append(s.Edges, overlay.Edge{Parent: int(o.ID), Child: int(c)})
			}
		}
		s.Nodes = append(s.Nodes, n)
		if o.Active && len(o.Assigned) > 0 {
			union = seq.Union(union, o.Assigned)
		}
	}
	s.ComputeHealth()
	if info.ContentLen > 0 {
		s.Health.Coverage = float64(union.CountData()) / float64(info.ContentLen)
	}
	return s
}

// PublishTopology writes a snapshot's tree-health gauges into the
// registry: overlay_depth, overlay_fanout, overlay_orphaned_leaves,
// overlay_active_peers and overlay_coverage_ratio, labeled with the
// given label pairs (typically session="..."). A nil registry is a
// no-op.
func PublishTopology(reg *metrics.Registry, s overlay.Snapshot, labels ...string) {
	if reg == nil {
		return
	}
	reg.Gauge("overlay_depth", labels...).Set(float64(s.Health.Depth))
	reg.Gauge("overlay_fanout", labels...).Set(float64(s.Health.MaxFanout))
	reg.Gauge("overlay_orphaned_leaves", labels...).Set(float64(s.Health.OrphanedLeaves))
	reg.Gauge("overlay_active_peers", labels...).Set(float64(s.Health.ActivePeers))
	reg.Gauge("overlay_coverage_ratio", labels...).Set(s.Health.Coverage)
}
