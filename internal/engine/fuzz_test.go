package engine_test

import (
	"testing"

	"p2pmss/internal/engine"
	"p2pmss/internal/seq"
)

// FuzzEngine drives a small overlay through fuzzer-chosen churn — per
// delivery, the plan bytes decide whether the message is dropped or its
// receiver crashes — and checks the engine's core invariants after
// every single event:
//
//   - no panics, under either protocol;
//   - TCoP: at most one parent ever (a committed peer's parent never
//     changes, and an active peer never re-adopts);
//   - DCoP: the assigned union only grows (pkt_i := pkt_i ∪ pkt_ji is
//     monotone) and the §3.3 lifetime cap holds;
//   - children lists never exceed the lifetime cap under DCoP.
func FuzzEngine(f *testing.F) {
	f.Add(int64(1), false, []byte{0})
	f.Add(int64(2), true, []byte{0})
	f.Add(int64(3), false, []byte{7, 1, 255, 3})
	f.Add(int64(4), true, []byte{2, 9, 4, 128, 33})
	f.Add(int64(5), false, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, seed int64, dcop bool, plan []byte) {
		if len(plan) == 0 {
			plan = []byte{0}
		}
		cfg := baseConfig(10, 3, dcop)
		h := newHarness(cfg, seed)

		step := 0
		h.dropWhen = func(to engine.PeerID, ev engine.Event) bool {
			b := plan[step%len(plan)]
			step++
			return b&0x0f == 1
		}
		h.crashWhen = func(to engine.PeerID, ev engine.Event) engine.PeerID {
			b := plan[(step+1)%len(plan)]
			if b&0x1f == 2 {
				return engine.PeerID(int(b>>5) % cfg.N)
			}
			return -1
		}

		prevAssigned := make(map[engine.PeerID]map[string]bool)
		prevParent := make(map[engine.PeerID]int)
		committedParent := make(map[engine.PeerID]int)
		h.afterHandle = func(to engine.PeerID) {
			p := h.peers[to]
			o := p.Outcome()
			// Assigned union is monotone under both protocols.
			seen := prevAssigned[to]
			cur := make(map[string]bool, len(o.Assigned))
			for _, k := range o.Assigned.Keys() {
				cur[k] = true
			}
			for k := range seen {
				if !cur[k] {
					t.Fatalf("peer %d: assigned union lost key %s", to, k)
				}
			}
			prevAssigned[to] = cur

			if dcop {
				if p.ChildrenTaken() > cfg.H {
					t.Fatalf("peer %d exceeded the lifetime fanout cap: %d > %d", to, p.ChildrenTaken(), cfg.H)
				}
			} else {
				// Once committed to a parent, the adoption never moves.
				if was, ok := committedParent[to]; ok && o.Parent != was {
					t.Fatalf("peer %d: committed parent changed %d -> %d", to, was, o.Parent)
				}
				if o.Committed {
					committedParent[to] = o.Parent
				}
				// An adoption can lapse to -1 (commit-release) but never
				// jump parent-to-parent without releasing in between.
				if was, ok := prevParent[to]; ok && was >= 0 && o.Parent >= 0 && o.Parent != was {
					t.Fatalf("peer %d: re-adopted %d -> %d without release", to, was, o.Parent)
				}
				prevParent[to] = o.Parent
			}
		}

		h.start(seq.Range(1, 30), 9, seed)
		h.run()
	})
}
