// Package engine is the transport-agnostic coordination core shared by
// the discrete-event simulator (internal/coord) and the live runtime
// (internal/live). It holds the DCoP (§3.4) and TCoP (§3.5) state
// machines as pure events-in / effects-out objects: a driver feeds a
// Peer one Event at a time together with a Snapshot of its data-plane
// state, and applies the returned Effects — sends, timers, stream
// activations and hand-offs — onto its own notion of time and I/O.
//
// The engine owns every protocol transition (control, confirmation and
// commit handling, handshake deadlines, alternate-peer retry waves,
// commit re-absorption, the §3.3 lifetime fanout cap); drivers own
// encoding, transports, clocks and the data plane. No goroutines, no
// clocks, no I/O: all randomness comes from the injected *rand.Rand, so
// a driver that replays the same events observes the same effects.
//
// Events, effects and messages are pointer types drawn from per-peer
// free lists (see pool.go): a driver that returns batches via
// Peer.Release and message nodes via ReleaseMsg runs a steady-state
// coordination round with (amortized) zero engine allocations. Both
// calls are optional — uncollected nodes fall back to the GC.
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"p2pmss/internal/overlay"
	"p2pmss/internal/parity"
	"p2pmss/internal/seq"
	"p2pmss/internal/span"
)

// PeerID identifies a contents peer (the overlay numbering 0..n-1). The
// simulator uses simnet node ids directly; the live layer maps roster
// addresses onto indices (out-of-roster joiners get ephemeral ids ≥ n,
// which the engine tracks but never adds to bounded views).
type PeerID = overlay.PeerID

// LeafID is the sentinel id of the leaf peer LP_s, which is not a
// contents peer and never appears in views.
const LeafID PeerID = -1

// Config parameterizes one peer's coordination state machine. Times
// (MarkDelta, HandshakeTimeout, CommitRelease) are in the driver's time
// unit — virtual time units in the simulator, seconds in the live
// runtime — and flow back out unchanged through SetTimer effects.
type Config struct {
	// N is the number of contents peers (the view size).
	N int
	// H is the selection fanout (§3.3): the lifetime cap on children per
	// parent, and the per-round handshake width.
	H int
	// Interval is the parity interval h for DCoP re-enhancement. TCoP
	// re-enhances with the per-node interval c2.n regardless (§3.5).
	Interval int
	// FirstFanout is the fanout of a leaf-selected DCoP peer's first
	// selection (§3.4 prose says H-1, pseudocode H). Zero means H.
	FirstFanout int
	// MarkDelta is the δ used to advance the marked packet: a parent
	// that reported offset o at rate r hands children the stream from
	// MarkOffset(o, MarkDelta, r).
	MarkDelta float64
	// HandshakeTimeout bounds each TCoP confirmation round; it doubles
	// on every retry wave.
	HandshakeTimeout float64
	// CommitRelease is how long an adopted child waits for the commit
	// before releasing the adoption so another parent can take it.
	CommitRelease float64
	// Retries bounds how many alternate peers a parent contacts when a
	// selected child refuses, is unreachable, or stays silent. Zero
	// disables retry waves (the paper's base protocol).
	Retries int
	// DCoP selects the redundant flooding protocol; false selects TCoP.
	DCoP bool
}

// Normalize applies defaults and validates.
func (c *Config) Normalize() error {
	if c.N <= 0 {
		return fmt.Errorf("engine: N=%d must be positive", c.N)
	}
	if c.H <= 0 {
		return fmt.Errorf("engine: H=%d must be positive", c.H)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("engine: parity interval %d must be positive", c.Interval)
	}
	if c.FirstFanout == 0 {
		c.FirstFanout = c.H
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	return nil
}

// Snapshot is the driver-owned data-plane state stamped onto every
// Handle call: the engine is pure and never watches a stream position
// advance, so the driver reports where its transmitter stands right now.
type Snapshot struct {
	// Offset is how many packets of Stream have been sent (c.SEQ).
	Offset int
	// Stream is the full current transmission sequence. Nil in the
	// simulator's control-plane-only mode, where divisions are not
	// materialized and effects carry rates only.
	Stream seq.Sequence
	// Rate is the current transmission rate.
	Rate float64
	// Pending reports whether a hand-off is already planned but not yet
	// applied (guards mid-stream Join grants).
	Pending bool
}

// ---- events -------------------------------------------------------------

// Event is an input to Peer.Handle. All events are pointer types; the
// engine never retains an event past the Handle call, so drivers may
// reuse scratch event structs between calls.
type Event interface{ isEvent() }

// Request is the leaf peer's content request c (§3.4 step 1). The
// driver resolves the content and precomputes the initial assignment
// (round-robin or the heterogeneous §2 slot allocation), because only
// the driver holds the content; the engine does the view bookkeeping and
// child selection.
type Request struct {
	Assigned seq.Sequence
	Rate     float64
	Selected []PeerID
	Round    int
}

// Control delivers a control packet c1.
type Control struct{ Msg *MsgControl }

// Confirm delivers a TCoP confirmation cc1.
type Confirm struct{ Msg *MsgConfirm }

// Commit delivers a TCoP commit c2 (also used for mid-stream Join
// grants under either protocol).
type Commit struct{ Msg *MsgCommit }

// TimerFired delivers a timer previously requested via SetTimer.
type TimerFired struct{ Timer TimerID }

// SendFailed reports that a Send effect could not be delivered (crashed
// or unreachable peer). TCoP controls fail over to alternates; assigned
// shares (DCoP controls, TCoP commits) are re-absorbed.
type SendFailed struct {
	To  PeerID
	Msg any
}

// Join volunteers a peer for the in-flight stream: an active peer hands
// the joiner a slice of its remaining stream.
type Join struct{ Joiner PeerID }

// Repair asks the peer to retransmit the listed content packets. The
// engine only decides whether to serve (it always does, per the leaf-
// driven repair protocol); the driver materializes the packets.
type Repair struct{ Indices []int64 }

func (*Request) isEvent()    {}
func (*Control) isEvent()    {}
func (*Confirm) isEvent()    {}
func (*Commit) isEvent()     {}
func (*TimerFired) isEvent() {}
func (*SendFailed) isEvent() {}
func (*Join) isEvent()       {}
func (*Repair) isEvent()     {}

// ---- messages -----------------------------------------------------------

// MsgControl is a control packet c1 from a parent contents peer. The
// paper's c carries the parent's view, SEQ, rate and child count; the
// child then derives its subsequence from the parent's schedule. Because
// parent and child compute the same deterministic division from the same
// (known) δ, the engine precomputes the division at the parent and
// carries the child's share in AssignedSeq (nil in control-plane-only
// mode; DCoP only — TCoP assigns at commit time).
//
// Message nodes created by the engine are pool-owned (see ReleaseMsg);
// nodes constructed by hand or decoded from the wire are plain GC'd
// values.
type MsgControl struct {
	Parent      overlay.PeerID
	View        []overlay.PeerID // c.VW
	SeqOffset   int              // offset of the most recently sent packet (c.SEQ)
	Rate        float64          // c.τ, the parent's transmission rate
	ChildRate   float64          // the derived per-child rate
	Children    int              // H_j, number of children selected
	ChildIdx    int              // which division (1..H_j) this child takes
	AssignedSeq seq.Sequence     // the child's division pkt_ji
	Round       int
	// Span is the causal context the message carries (zero when tracing
	// is disabled). Stamped by the driver-side SpanTracker, never by the
	// protocol logic.
	Span span.Context

	pl *pool
}

// MsgConfirm is TCoP's (positive or negative) confirmation cc1.
type MsgConfirm struct {
	Child  overlay.PeerID
	Accept bool
	Round  int
	Span   span.Context

	pl *pool
}

// MsgCommit is TCoP's second control packet c2.
type MsgCommit struct {
	Parent      overlay.PeerID
	Streams     int // c2.n = confirmed children + 1
	SeqOffset   int
	Rate        float64 // the per-stream rate
	ChildIdx    int     // 1..Streams-1
	AssignedSeq seq.Sequence
	Round       int
	Span        span.Context

	pl *pool
}

// ---- timers -------------------------------------------------------------

// TimerKind distinguishes the engine's timers.
type TimerKind int

const (
	// TimerConfirm is a TCoP confirmation-round deadline: on firing the
	// parent either launches a retry wave of alternates (doubled
	// deadline) or finalizes with the confirmations that arrived.
	TimerConfirm TimerKind = iota
	// TimerRelease releases a child's adoption when the commit never
	// arrives, so another parent can take it later.
	TimerRelease
)

// TimerID identifies a timer. Gen guards against stale firings (the
// engine bumps its generation whenever the timer's purpose lapses);
// Peer carries the adopted parent for TimerRelease.
type TimerID struct {
	Kind TimerKind
	Gen  int
	Peer PeerID
}

// ---- effects ------------------------------------------------------------

// Effect is an output of Peer.Handle, applied by the driver in order.
// All effects are pool-owned pointer types; see Peer.Release.
type Effect interface{ isEffect() }

// Send transmits Msg (a *MsgControl, *MsgConfirm or *MsgCommit) to peer
// To. If delivery fails the driver feeds back a SendFailed event.
type Send struct {
	To  PeerID
	Msg any
}

// SetTimer asks the driver to deliver TimerFired{ID} after Delay (in the
// driver's time unit). Stale timers need not be cancelled — the engine's
// generation guards ignore them.
type SetTimer struct {
	ID    TimerID
	Delay float64
}

// Activate installs the peer's first stream: it starts transmitting Seq
// at Rate.
type Activate struct {
	Seq   seq.Sequence
	Rate  float64
	Round int
}

// Merge unions an additional subsequence into the not-yet-sent remainder
// (DCoP's pkt_i := pkt_i ∪ pkt_ji for redundantly selected peers) and
// adds Rate to the current rate.
type Merge struct {
	Seq   seq.Sequence
	Rate  float64
	Round int
}

// Handoff schedules the parent's own switch after delegating to
// children: at the mark (δ after the sends), the driver subtracts the
// Given shares from the unsent remainder, unions in Keep, and adjusts
// the rate by NewRate-OldRate. Keep/Given are nil in control-plane-only
// mode (rate change only). Absorb effects arriving before the switch is
// applied fold back into it.
//
// A driver that buffers the hand-off past the Handle batch (both
// shipped drivers do) must copy the fields out: the node itself is
// recycled by Release.
type Handoff struct {
	Keep             seq.Sequence
	Given            []seq.Sequence
	OldRate, NewRate float64
	Mark             int
}

// Absorb returns an undeliverable child's share to the parent: the
// driver unions Seq back into the (possibly pending) stream and adds
// RateDelta, so delivery does not depend on repair.
type Absorb struct {
	Seq       seq.Sequence
	RateDelta float64
}

// ServeRepair asks the driver to retransmit the listed content packets
// to the requesting leaf.
type ServeRepair struct{ Indices []int64 }

func (*Send) isEffect()        {}
func (*SetTimer) isEffect()    {}
func (*Activate) isEffect()    {}
func (*Merge) isEffect()       {}
func (*Handoff) isEffect()     {}
func (*Absorb) isEffect()      {}
func (*ServeRepair) isEffect() {}

// ---- peer ---------------------------------------------------------------

// pendShare is an assigned child share still absorbable on send failure.
type pendShare struct {
	to   PeerID
	s    seq.Sequence
	rate float64
}

// Peer is one contents peer's coordination state machine.
type Peer struct {
	cfg Config
	id  PeerID
	rng *rand.Rand

	view      overlay.View
	active    bool
	parent    int // -1 = none; leaf-rooted peers point at themselves
	committed bool
	round     int // activation round (tree depth)

	// DCoP: children taken over the peer's lifetime (capped at H, §3.3).
	childrenTaken int
	// DCoP: assignments already delivered once, so network-duplicated
	// controls/commits don't re-merge or re-flood (see assignKey).
	seenAssign map[assignKey]bool

	// TCoP handshake state. outstanding is a small slice (≤ H entries)
	// scanned linearly; outstandingOpen distinguishes "no round in
	// flight" from "round open with every control answered".
	wanted          int
	outstanding     []PeerID
	outstandingOpen bool
	candQueue       []PeerID
	retryLeft       int
	confirmed       []PeerID
	ctlRound        int
	final           bool
	gen             int // confirmation-round generation
	relGen          int // adoption-release generation
	confirmDelay    float64

	// Open hand-off shares, absorbable while their send can still fail.
	// A slice, not a map: a peer hands out at most H+joins shares.
	shares []pendShare

	// Outcome bookkeeping. assigned is the interned union of every
	// subsequence ever assigned (pkt_i), so repeated DCoP merges are
	// integer set unions instead of packet-slice copies.
	children []PeerID
	tbl      *seq.Table
	assigned seq.Set
	retried  int
	absorbed int

	// Free lists and scratch buffers (selection, view membership,
	// restricted views) reused across Handle calls.
	pl         pool
	selBuf     []PeerID
	membersBuf []PeerID
	rviewBuf   []PeerID
	one        [1]PeerID
}

// NewPeer returns the state machine of contents peer id. The caller
// must have normalized cfg and owns the seeding of rng (see PeerSeed).
func NewPeer(cfg Config, id PeerID, rng *rand.Rand) *Peer {
	return &Peer{
		cfg:    cfg,
		id:     id,
		rng:    rng,
		view:   overlay.NewView(cfg.N),
		parent: -1,
	}
}

// Reset rewinds the state machine to its just-constructed state while
// keeping every internal capacity — view words, scratch buffers, free
// lists — so a harness can rerun rounds on the same peers without
// reallocating. The caller owns reseeding the injected rng.
func (p *Peer) Reset() {
	p.view.Clear()
	p.active = false
	p.parent = -1
	p.committed = false
	p.round = 0
	p.childrenTaken = 0
	clear(p.seenAssign)
	p.wanted = 0
	p.outstanding = p.outstanding[:0]
	p.outstandingOpen = false
	p.candQueue = nil
	p.retryLeft = 0
	p.confirmed = p.confirmed[:0]
	p.ctlRound = 0
	p.final = false
	p.gen = 0
	p.relGen = 0
	p.confirmDelay = 0
	p.shares = p.shares[:0]
	p.children = p.children[:0]
	p.tbl = nil
	p.assigned.Clear()
	p.retried = 0
	p.absorbed = 0
}

// Handle advances the state machine by one event and returns the
// effects for the driver to apply, in order. snap is the driver's
// data-plane state at this instant. The returned batch is pool-owned:
// apply it, then (optionally) give it back via Release.
func (p *Peer) Handle(ev Event, snap Snapshot) []Effect {
	switch e := ev.(type) {
	case *Request:
		return p.handleRequest(e, snap)
	case *Control:
		if p.cfg.DCoP {
			return p.dcopOnControl(e.Msg, snap)
		}
		return p.tcopOnControl(e.Msg)
	case *Confirm:
		if p.cfg.DCoP {
			return nil
		}
		return p.tcopOnConfirm(e.Msg, snap)
	case *Commit:
		if p.cfg.DCoP {
			return p.dcopOnCommit(e.Msg, snap)
		}
		return p.tcopOnCommit(e.Msg, snap)
	case *TimerFired:
		return p.onTimer(e.Timer, snap)
	case *SendFailed:
		return p.onSendFailed(e, snap)
	case *Join:
		return p.handleJoin(e, snap)
	case *Repair:
		effs := p.pl.slice()
		return append(effs, p.pl.serveRepair(e.Indices))
	}
	return nil
}

// handleRequest is activation by the leaf peer (§3.4/§3.5 step 2).
func (p *Peer) handleRequest(ev *Request, snap Snapshot) []Effect {
	if p.active {
		return nil
	}
	p.viewAdd(p.id)
	p.viewAddAll(ev.Selected)
	p.noteActivated(ev.Round, ev.Assigned)
	effs := p.pl.slice()
	effs = append(effs, p.pl.activate(ev.Assigned, ev.Rate, ev.Round))
	cur := afterActivate(ev.Assigned, ev.Rate)
	if p.cfg.DCoP {
		return p.dcopSelect(effs, p.cfg.FirstFanout, ev.Round+1, cur)
	}
	p.parent = int(p.id) // leaf-rooted: no contents-peer parent to adopt
	return p.tcopSelect(effs, ev.Round+1, cur)
}

// handleJoin hands a mid-stream joiner a slice: the remaining stream is
// divided in two at a mark (plain split, no added parity), the joiner is
// committed the second half, and this peer keeps the first. Declined
// when inactive or when a hand-off is already pending.
func (p *Peer) handleJoin(ev *Join, snap Snapshot) []Effect {
	if !p.active || snap.Pending || ev.Joiner == p.id || snap.Stream == nil {
		return nil
	}
	mark := MarkOffset(snap.Offset, p.cfg.MarkDelta, snap.Rate)
	if mark >= len(snap.Stream)-1 {
		return nil // too little left to be worth sharing
	}
	parts, rate := ShareOut(snap.Stream, mark, snap.Rate, 0, 2)
	p.viewAdd(ev.Joiner)
	p.noteShare(ev.Joiner, parts[1], rate)
	m := p.pl.msgCommit()
	m.Parent, m.Streams, m.SeqOffset = p.id, 2, snap.Offset
	m.Rate, m.ChildIdx, m.AssignedSeq, m.Round = rate, 1, parts[1], p.round+1
	keep, given := SplitParts(parts)
	effs := p.pl.slice()
	effs = append(effs, p.pl.send(ev.Joiner, m))
	return append(effs, p.pl.handoff(keep, given, snap.Rate, rate, mark))
}

// onSendFailed reacts to an undeliverable message: TCoP controls fail
// over to an alternate candidate (budget permitting); messages that
// carried an assigned share (DCoP controls, commits) are re-absorbed.
func (p *Peer) onSendFailed(ev *SendFailed, snap Snapshot) []Effect {
	switch ev.Msg.(type) {
	case *MsgControl:
		if p.cfg.DCoP {
			return p.absorb(ev.To)
		}
		if p.final || !p.outstandingOpen || !p.outstandingDrop(ev.To) {
			return nil
		}
		if repl, ok := p.pullAlternate(); ok {
			p.outstanding = append(p.outstanding, repl)
			effs := p.pl.slice()
			return append(effs, p.pl.send(repl, p.retryControl(snap, repl)))
		}
		return p.maybeFinalize(nil, snap)
	case *MsgCommit:
		return p.absorb(ev.To)
	}
	return nil
}

// absorb returns an undeliverable child's share to this peer.
func (p *Peer) absorb(to PeerID) []Effect {
	for i := len(p.shares) - 1; i >= 0; i-- {
		if p.shares[i].to != to {
			continue
		}
		sh := p.shares[i]
		p.shares[i] = p.shares[len(p.shares)-1]
		p.shares[len(p.shares)-1] = pendShare{}
		p.shares = p.shares[:len(p.shares)-1]
		p.dropChild(to)
		p.absorbed++
		effs := p.pl.slice()
		return append(effs, p.pl.absorbEff(sh.s, sh.rate))
	}
	return nil
}

// onTimer dispatches a timer firing; stale generations are ignored.
func (p *Peer) onTimer(id TimerID, snap Snapshot) []Effect {
	switch id.Kind {
	case TimerConfirm:
		return p.tcopOnConfirmTimeout(id, snap)
	case TimerRelease:
		if id.Gen != p.relGen {
			return nil
		}
		if !p.active && p.parent == int(id.Peer) && !p.committed {
			p.parent = -1 // commit lost: release so another parent can adopt
		}
	}
	return nil
}

// ---- shared internal helpers -------------------------------------------

// viewAdd records a peer in the view, ignoring ids outside 0..N-1
// (the leaf sentinel and live-layer ephemeral joiners).
func (p *Peer) viewAdd(id PeerID) {
	if id >= 0 && int(id) < p.cfg.N {
		p.view.Add(id)
	}
}

func (p *Peer) viewAddAll(ids []PeerID) {
	for _, id := range ids {
		p.viewAdd(id)
	}
}

// outstandingDrop removes id from the outstanding set, reporting
// whether it was present.
func (p *Peer) outstandingDrop(id PeerID) bool {
	for i, o := range p.outstanding {
		if o == id {
			p.outstanding[i] = p.outstanding[len(p.outstanding)-1]
			p.outstanding = p.outstanding[:len(p.outstanding)-1]
			return true
		}
	}
	return false
}

// noteActivated records a (first) activation for the outcome.
func (p *Peer) noteActivated(round int, s seq.Sequence) {
	p.active = true
	if round > p.round {
		p.round = round
	}
	p.noteAssigned(s)
}

// noteMerged records an additional assignment for the outcome.
func (p *Peer) noteMerged(round int, s seq.Sequence) {
	if round > p.round {
		p.round = round
	}
	p.noteAssigned(s)
}

// noteAssigned interns s into the peer's assigned set (pkt_i ∪= s).
func (p *Peer) noteAssigned(s seq.Sequence) {
	if len(s) == 0 {
		return
	}
	if p.tbl == nil {
		p.tbl = seq.NewTable()
	}
	p.assigned.AddSeq(p.tbl, s)
}

// noteShare records a handed-off share while its send may still fail.
// A re-share to the same peer (a joiner asking twice) replaces the open
// entry, mirroring the historical map semantics.
func (p *Peer) noteShare(to PeerID, s seq.Sequence, rate float64) {
	replaced := false
	for i := range p.shares {
		if p.shares[i].to == to {
			p.shares[i] = pendShare{to: to, s: s, rate: rate}
			replaced = true
			break
		}
	}
	if !replaced {
		p.shares = append(p.shares, pendShare{to: to, s: s, rate: rate})
	}
	p.children = append(p.children, to)
}

// dropChild removes the last occurrence of c from the children list.
func (p *Peer) dropChild(c PeerID) {
	for i := len(p.children) - 1; i >= 0; i-- {
		if p.children[i] == c {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
}

// restrictedView builds the sorted c1 view restricted to the sender and
// the given children in the peer's scratch buffer (valid until the next
// call). Out-of-range sender ids (live-layer ephemeral joiners) are
// skipped, like viewAdd.
func (p *Peer) restrictedView(children []PeerID) []PeerID {
	p.rviewBuf = p.rviewBuf[:0]
	if p.id >= 0 && int(p.id) < p.cfg.N {
		p.rviewBuf = append(p.rviewBuf, p.id)
	}
	p.rviewBuf = append(p.rviewBuf, children...)
	slices.Sort(p.rviewBuf)
	return p.rviewBuf
}

// afterActivate is the data-plane snapshot right after an Activate
// effect is applied: position zero on the new stream.
func afterActivate(s seq.Sequence, rate float64) Snapshot {
	return Snapshot{Offset: 0, Stream: s, Rate: rate}
}

// afterMerge is the data-plane snapshot right after a Merge effect: the
// unsent remainder unioned with the new share, position reset. In
// control-plane-only mode the transmitter is untouched, so the snapshot
// passes through unchanged.
func afterMerge(snap Snapshot, s seq.Sequence, rate float64) Snapshot {
	if snap.Stream == nil && s == nil {
		return snap
	}
	var remaining seq.Sequence
	if snap.Offset < len(snap.Stream) {
		remaining = snap.Stream[snap.Offset:]
	}
	return Snapshot{Offset: 0, Stream: seq.Union(remaining.Clone(), s), Rate: snap.Rate + rate}
}

// ---- outcome ------------------------------------------------------------

// Outcome is the coordination result of one peer, for conformance
// comparison across drivers and for tests.
type Outcome struct {
	ID     PeerID
	Active bool
	// Parent is the adopting parent (TCoP), the peer itself when
	// leaf-rooted, or -1.
	Parent    int
	Committed bool
	// Children lists the peers this peer handed shares to, in hand-off
	// order (absorbed-back children removed).
	Children []PeerID
	// Assigned is the union of every subsequence ever assigned to this
	// peer (§3.4's pkt_i after all merges), independent of what was
	// later handed off.
	Assigned seq.Sequence
	// Round is the peer's activation round (tree depth).
	Round int
	// Retried and Absorbed count alternate-peer retries and re-absorbed
	// hand-offs (churn-tolerance observability).
	Retried, Absorbed int
}

// Outcome returns the peer's current coordination outcome.
func (p *Peer) Outcome() Outcome {
	return Outcome{
		ID:        p.id,
		Active:    p.active,
		Parent:    p.parent,
		Committed: p.committed,
		Children:  append([]PeerID(nil), p.children...),
		Assigned:  p.assigned.Materialize(p.tbl),
		Round:     p.round,
		Retried:   p.retried,
		Absorbed:  p.absorbed,
	}
}

// Active reports whether the peer has activated.
func (p *Peer) Active() bool { return p.active }

// ParentID returns the adopting parent, the peer itself when
// leaf-rooted, or -1.
func (p *Peer) ParentID() int { return p.parent }

// Committed reports whether the peer received its TCoP commit.
func (p *Peer) Committed() bool { return p.committed }

// Confirmed returns the children confirmed in the peer's most recent
// handshake round. The slice is reused across rounds; copy to retain.
func (p *Peer) Confirmed() []PeerID { return p.confirmed }

// ChildrenTaken returns how many children the peer has taken over its
// lifetime (the §3.3 cap counter).
func (p *Peer) ChildrenTaken() int { return p.childrenTaken }

// RetriesUsed returns how many alternate peers have been contacted.
func (p *Peer) RetriesUsed() int { return p.retried }

// ---- shared math --------------------------------------------------------

// MarkOffset computes the §3.3 marked packet: the parent reported
// sending the packet at sentOffset when the control packet left; δ time
// units later it has sent ⌊δ·rate⌋ more packets. Flooring is the safe
// direction — overlap is a harmless duplicate, whereas overestimating
// the mark would leave packets nobody transmits.
func MarkOffset(sentOffset int, delta, rate float64) int {
	return sentOffset + int(math.Floor(delta*rate+1e-9))
}

// ShareOut computes the division of parent stream ps (from mark offset)
// into k parts using parity interval p: Esq then round-robin Div. It
// returns the k parts (part 0 is the parent's own share) and the
// per-stream rate that preserves aggregate content throughput,
// parentRate·(p+1)/(p·k). (The TCoP pseudocode sets τ_i := τ_j/c2.n,
// which silently loses the parity overhead's throughput; we keep the
// content flowing at the parent's pace — see DESIGN.md §2.)
//
// p ≤ 0 requests plain division with no added parity (minimum-redundancy
// handover), with rate parentRate/k. A nil ps (control-plane-only mode)
// yields nil parts.
func ShareOut(ps seq.Sequence, mark int, parentRate float64, p, k int) ([]seq.Sequence, float64) {
	var rate float64
	if p > 0 {
		rate = parentRate * float64(p+1) / float64(p*k)
	} else {
		rate = parentRate / float64(k)
	}
	if ps == nil {
		return nil, rate
	}
	if mark > len(ps) {
		mark = len(ps)
	}
	tail := ps[mark:]
	if len(tail) == 0 {
		return make([]seq.Sequence, k), rate
	}
	if p > 0 {
		tail = parity.Enhance(tail, p)
	} else {
		tail = tail.Clone()
	}
	return seq.Divide(tail, k), rate
}

// SplitParts separates a ShareOut result into the parent's own share
// and the children's shares; both are nil in control-plane-only mode.
func SplitParts(parts []seq.Sequence) (keep seq.Sequence, given []seq.Sequence) {
	if len(parts) == 0 {
		return nil, nil
	}
	return parts[0], parts[1:]
}

// PeerSeed derives the deterministic RNG seed of peer id from the run's
// base seed (SplitMix64-style mixing), so every peer owns an
// independent random stream and both drivers seed identically.
func PeerSeed(base int64, id PeerID) int64 {
	x := uint64(base) + 0x9e3779b97f4a7c15*uint64(int64(id)+2)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x & 0x7fffffffffffffff)
}

// SelectInitial is the leaf peer's step 1: it selects h of the n
// contents peers uniformly at random and returns the rest as failover
// spares, in preference order.
func SelectInitial(rng *rand.Rand, n, h int) (sel, spares []PeerID) {
	return overlay.SelectWithSpares(rng, overlay.NewView(n), h)
}
