package engine_test

import (
	"math/rand"
	"testing"

	"p2pmss/internal/engine"
	"p2pmss/internal/span"
)

// The BenchmarkSpanDisabled* family pins the disabled-tracing contract:
// with no collector and no histograms the tracker is nil and every call
// a driver makes per dispatch — Observe, Finish, MsgSpan, and the nil
// collector's NextID/Add — costs zero allocations. CI runs these
// through `benchjson -assert-zero-allocs BenchmarkSpanDisabled` and
// fails the build on any alloc/op.

// BenchmarkSpanDisabledObserve measures the per-dispatch overhead the
// sim and live drivers add when tracing is off: one Observe call on the
// nil tracker over a realistic control+timer effect batch.
func BenchmarkSpanDisabledObserve(b *testing.B) {
	cfg := baseConfig(10, 3, false)
	if err := cfg.Normalize(); err != nil {
		b.Fatal(err)
	}
	p := engine.NewPeer(cfg, 0, rand.New(rand.NewSource(1)))
	tr := engine.NewSpanTracker(nil, 0, 0, engine.SpanMetrics{})
	if tr != nil {
		b.Fatal("tracker with nil collector and no metrics must be nil")
	}
	effs := []engine.Effect{
		&engine.Send{To: 1, Msg: &engine.MsgControl{Children: 3, ChildIdx: 1}},
		&engine.Send{To: 2, Msg: &engine.MsgControl{Children: 3, ChildIdx: 2}},
		&engine.SetTimer{ID: engine.TimerID{Kind: engine.TimerConfirm}, Delay: 1},
	}
	// Box the event once, as the drivers do (events arrive as interface
	// values); the loop must measure Observe, not interface conversion.
	var ev engine.Event = &engine.TimerFired{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe(p, 0, ev, span.Context{}, effs)
	}
}

// BenchmarkSpanDisabledFinish measures the shutdown path on the nil
// tracker.
func BenchmarkSpanDisabledFinish(b *testing.B) {
	tr := engine.NewSpanTracker(nil, 0, 0, engine.SpanMetrics{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Finish(float64(i))
	}
}

// BenchmarkSpanDisabledMsgSpan measures the context extraction drivers
// run on every failed send.
func BenchmarkSpanDisabledMsgSpan(b *testing.B) {
	// Boxed once: drivers hold the message as `any` (Send.Msg) already.
	var m any = &engine.MsgControl{Children: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ctx := engine.MsgSpan(m); ctx.Valid() {
			b.Fatal("zero message claims a trace")
		}
	}
}

// BenchmarkSpanDisabledCollector measures the nil collector itself —
// the allocation-free no-op every guard relies on.
func BenchmarkSpanDisabledCollector(b *testing.B) {
	var c *span.Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := c.NextID()
		c.Add(span.Span{Trace: 1, ID: id})
	}
}
