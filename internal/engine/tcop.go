package engine

import "p2pmss/internal/overlay"

// TCoP (§3.5): the tree-based coordination protocol. A selected peer
// runs a three-round handshake with its prospective children — control
// c1, confirmations cc1, commit c2 — and only confirmed children join
// the tree, so every peer ends with at most one parent. Beyond the
// paper, a parent whose control is refused, undeliverable, or unanswered
// within HandshakeTimeout retries alternate candidates with a doubled
// deadline, up to Retries peers; a child whose commit never arrives
// releases its adoption after CommitRelease.

// tcopSelect begins a handshake round: pick up to H prospective
// children from outside the view, send each a restricted-view control
// packet, and arm the confirmation deadline. cur is the data-plane
// snapshot the controls should advertise.
func (p *Peer) tcopSelect(round int, cur Snapshot) []Effect {
	wave, spares := overlay.SelectWithSpares(p.rng, p.view, p.cfg.H)
	if len(wave) == 0 {
		return nil // view full: re-enhancement ends here
	}
	p.view.AddAll(wave)
	p.wanted = len(wave)
	p.outstanding = make(map[PeerID]bool, len(wave))
	for _, c := range wave {
		p.outstanding[c] = true
	}
	p.candQueue = spares
	p.retryLeft = p.cfg.Retries
	p.confirmed = nil
	p.ctlRound = round
	p.final = false
	p.confirmDelay = p.cfg.HandshakeTimeout

	// c1 carries a restricted view — only the sender and the selected
	// children — so children's own selections overlap and the flooding
	// stays redundant (§3.5).
	cv := overlay.NewView(p.cfg.N)
	p.addRestricted(cv, p.id)
	for _, c := range wave {
		p.addRestricted(cv, c)
	}
	effs := make([]Effect, 0, len(wave)+1)
	for _, c := range wave {
		effs = append(effs, Send{To: c, Msg: MsgControl{
			Parent: p.id, View: cv.Members(), SeqOffset: cur.Offset,
			Rate: cur.Rate, Children: len(wave), Round: round,
		}})
	}
	// Timer last: the simulator driver historically registered the
	// deadline after the sends, and effect order is driver-visible.
	effs = append(effs, SetTimer{ID: TimerID{Kind: TimerConfirm, Gen: p.gen}, Delay: p.confirmDelay})
	return effs
}

// addRestricted adds id to a scratch view, skipping out-of-range ids.
func (p *Peer) addRestricted(v overlay.View, id PeerID) {
	if id >= 0 && int(id) < p.cfg.N {
		v.Add(id)
	}
}

// tcopOnControl handles a prospective parent's c1: accept iff not yet
// transmitting and not already adopted (first parent wins, §3.5). A
// duplicated c1 from the peer's own adopted parent — a datagram network
// may deliver the control twice — is re-acknowledged with the same
// Accept verdict instead of a refusal: answering "no" to one's own
// parent lets a reordered duplicate refusal overtake the original
// acceptance and cost the child its slot. The re-ack does not re-arm
// the release deadline, so a parent that truly died still releases the
// adoption on schedule.
func (p *Peer) tcopOnControl(m MsgControl) []Effect {
	p.viewAdd(p.id)
	p.viewAdd(m.Parent)
	p.viewAddAll(m.View)
	accept := !p.active && p.parent < 0
	redundant := !p.active && p.parent == int(m.Parent)
	var effs []Effect
	if accept {
		p.parent = int(m.Parent)
		// If the commit never arrives (parent crashed between rounds),
		// release the adoption so a later parent can take this peer.
		// Registered before the send to preserve the simulator's
		// RNG-draw order.
		p.relGen++
		effs = append(effs, SetTimer{
			ID:    TimerID{Kind: TimerRelease, Gen: p.relGen, Peer: m.Parent},
			Delay: p.cfg.CommitRelease,
		})
	}
	return append(effs, Send{To: m.Parent, Msg: MsgConfirm{
		Child: p.id, Accept: accept || redundant, Round: m.Round + 1,
	}})
}

// tcopOnConfirm handles a child's cc1. Refusals pull an alternate
// candidate when the retry budget allows; otherwise the round completes
// with whoever confirmed.
func (p *Peer) tcopOnConfirm(m MsgConfirm, snap Snapshot) []Effect {
	if p.final || p.outstanding == nil || !p.outstanding[m.Child] {
		return nil // stale round or duplicate
	}
	delete(p.outstanding, m.Child)
	if m.Accept {
		p.confirmed = append(p.confirmed, m.Child)
		return p.maybeFinalize(snap)
	}
	if repl, ok := p.pullAlternate(); ok {
		p.outstanding[repl] = true
		return []Effect{Send{To: repl, Msg: p.retryControl(snap, repl)}}
	}
	return p.maybeFinalize(snap)
}

// pullAlternate draws the next failover candidate, spending one retry.
func (p *Peer) pullAlternate() (PeerID, bool) {
	if p.final || p.retryLeft <= 0 || len(p.candQueue) == 0 {
		return 0, false
	}
	repl := p.candQueue[0]
	p.candQueue = p.candQueue[1:]
	p.retryLeft--
	p.retried++
	return repl, true
}

// retryControl builds the c1 for a failover candidate: same round and
// child count as the original wave, view restricted to sender+candidate.
func (p *Peer) retryControl(snap Snapshot, repl PeerID) MsgControl {
	p.view.AddAll([]PeerID{repl})
	cv := overlay.NewView(p.cfg.N)
	p.addRestricted(cv, p.id)
	p.addRestricted(cv, repl)
	return MsgControl{
		Parent: p.id, View: cv.Members(), SeqOffset: snap.Offset,
		Rate: snap.Rate, Children: p.wanted, Round: p.ctlRound,
	}
}

// maybeFinalize closes the handshake round once every outstanding
// control has been answered and no further retry could raise the count.
func (p *Peer) maybeFinalize(snap Snapshot) []Effect {
	if p.final || p.outstanding == nil || len(p.outstanding) > 0 {
		return nil
	}
	if len(p.confirmed) >= p.wanted || len(p.candQueue) == 0 || p.retryLeft <= 0 {
		return p.tcopFinalize(snap)
	}
	return nil
}

// tcopOnConfirmTimeout fires the confirmation deadline: silent children
// are written off, and either a retry wave of alternates goes out with
// a doubled deadline, or the round finalizes with the confirmations in
// hand.
func (p *Peer) tcopOnConfirmTimeout(id TimerID, snap Snapshot) []Effect {
	if id.Gen != p.gen || p.final || p.outstanding == nil {
		return nil
	}
	need := len(p.outstanding)
	p.outstanding = make(map[PeerID]bool)
	var wave []PeerID
	for i := 0; i < need; i++ {
		repl, ok := p.pullAlternate()
		if !ok {
			break
		}
		wave = append(wave, repl)
	}
	if len(wave) == 0 {
		return p.tcopFinalize(snap)
	}
	p.gen++
	p.confirmDelay *= 2
	effs := make([]Effect, 0, len(wave)+1)
	for _, repl := range wave {
		p.outstanding[repl] = true
		effs = append(effs, Send{To: repl, Msg: p.retryControl(snap, repl)})
	}
	return append(effs, SetTimer{ID: TimerID{Kind: TimerConfirm, Gen: p.gen}, Delay: p.confirmDelay})
}

// tcopFinalize closes the round: divide the remaining stream into
// c2.n = confirmed+1 parts with parity interval c2.n, commit each
// confirmed child its part, and hand off own transmission to part 0.
func (p *Peer) tcopFinalize(snap Snapshot) []Effect {
	if p.final {
		return nil
	}
	p.final = true
	p.outstanding = nil
	p.gen++ // invalidate any in-flight confirmation deadline
	if len(p.confirmed) == 0 {
		return nil
	}
	k := len(p.confirmed) + 1
	mark := MarkOffset(snap.Offset, p.cfg.MarkDelta, snap.Rate)
	parts, rate := ShareOut(snap.Stream, mark, snap.Rate, k, k)
	effs := make([]Effect, 0, len(p.confirmed)+1)
	for i, c := range p.confirmed {
		assigned := seqAt(parts, i+1)
		p.noteShare(c, assigned, rate)
		effs = append(effs, Send{To: c, Msg: MsgCommit{
			Parent: p.id, Streams: k, SeqOffset: snap.Offset,
			Rate: rate, ChildIdx: i + 1, AssignedSeq: assigned,
			Round: p.ctlRound + 2,
		}})
	}
	keep, given := SplitParts(parts)
	return append(effs, Handoff{
		Keep: keep, Given: given, OldRate: snap.Rate, NewRate: rate, Mark: mark,
	})
}

// tcopOnCommit handles the parent's c2: adopt the assignment, start
// transmitting, and open the next handshake round toward the unknown
// part of the view. A commit is stale if the peer already transmits or
// has since been adopted by a different parent.
func (p *Peer) tcopOnCommit(m MsgCommit, snap Snapshot) []Effect {
	if p.active || (p.parent >= 0 && p.parent != int(m.Parent)) {
		return nil
	}
	p.parent = int(m.Parent)
	p.committed = true
	p.noteActivated(m.Round, m.AssignedSeq)
	effs := []Effect{Activate{Seq: m.AssignedSeq, Rate: m.Rate, Round: m.Round}}
	return append(effs, p.tcopSelect(m.Round+1, afterActivate(m.AssignedSeq, m.Rate))...)
}
