package engine

import "p2pmss/internal/overlay"

// TCoP (§3.5): the tree-based coordination protocol. A selected peer
// runs a three-round handshake with its prospective children — control
// c1, confirmations cc1, commit c2 — and only confirmed children join
// the tree, so every peer ends with at most one parent. Beyond the
// paper, a parent whose control is refused, undeliverable, or unanswered
// within HandshakeTimeout retries alternate candidates with a doubled
// deadline, up to Retries peers; a child whose commit never arrives
// releases its adoption after CommitRelease.

// tcopSelect begins a handshake round: pick up to H prospective
// children from outside the view, send each a restricted-view control
// packet, and arm the confirmation deadline. cur is the data-plane
// snapshot the controls should advertise; effects are appended to effs.
func (p *Peer) tcopSelect(effs []Effect, round int, cur Snapshot) []Effect {
	wave, spares := overlay.SelectWithSparesInto(p.rng, p.view, p.cfg.H, p.selBuf, true)
	if wave != nil {
		p.selBuf = wave[:0] // recapture the (possibly regrown) scratch array
	}
	if len(wave) == 0 {
		return effs // view full: re-enhancement ends here
	}
	p.view.AddAll(wave)
	p.wanted = len(wave)
	p.outstanding = append(p.outstanding[:0], wave...)
	p.outstandingOpen = true
	p.candQueue = spares
	p.retryLeft = p.cfg.Retries
	p.confirmed = p.confirmed[:0]
	p.ctlRound = round
	p.final = false
	p.confirmDelay = p.cfg.HandshakeTimeout

	// c1 carries a restricted view — only the sender and the selected
	// children — so children's own selections overlap and the flooding
	// stays redundant (§3.5).
	rv := p.restrictedView(wave)
	for _, c := range wave {
		m := p.pl.msgControl()
		m.Parent = p.id
		m.View = append(m.View[:0], rv...)
		m.SeqOffset, m.Rate = cur.Offset, cur.Rate
		m.Children, m.Round = len(wave), round
		effs = append(effs, p.pl.send(c, m))
	}
	// Timer last: the simulator driver historically registered the
	// deadline after the sends, and effect order is driver-visible.
	return append(effs, p.pl.setTimer(TimerID{Kind: TimerConfirm, Gen: p.gen}, p.confirmDelay))
}

// tcopOnControl handles a prospective parent's c1: accept iff not yet
// transmitting and not already adopted (first parent wins, §3.5). A
// duplicated c1 from the peer's own adopted parent — a datagram network
// may deliver the control twice — is re-acknowledged with the same
// Accept verdict instead of a refusal: answering "no" to one's own
// parent lets a reordered duplicate refusal overtake the original
// acceptance and cost the child its slot. The re-ack does not re-arm
// the release deadline, so a parent that truly died still releases the
// adoption on schedule.
func (p *Peer) tcopOnControl(m *MsgControl) []Effect {
	p.viewAdd(p.id)
	p.viewAdd(m.Parent)
	p.viewAddAll(m.View)
	accept := !p.active && p.parent < 0
	redundant := !p.active && p.parent == int(m.Parent)
	effs := p.pl.slice()
	if accept {
		p.parent = int(m.Parent)
		// If the commit never arrives (parent crashed between rounds),
		// release the adoption so a later parent can take this peer.
		// Registered before the send to preserve the simulator's
		// RNG-draw order.
		p.relGen++
		effs = append(effs, p.pl.setTimer(
			TimerID{Kind: TimerRelease, Gen: p.relGen, Peer: m.Parent},
			p.cfg.CommitRelease,
		))
	}
	cm := p.pl.msgConfirm()
	cm.Child, cm.Accept, cm.Round = p.id, accept || redundant, m.Round+1
	return append(effs, p.pl.send(m.Parent, cm))
}

// tcopOnConfirm handles a child's cc1. Refusals pull an alternate
// candidate when the retry budget allows; otherwise the round completes
// with whoever confirmed.
func (p *Peer) tcopOnConfirm(m *MsgConfirm, snap Snapshot) []Effect {
	if p.final || !p.outstandingOpen || !p.outstandingDrop(m.Child) {
		return nil // stale round or duplicate
	}
	if m.Accept {
		p.confirmed = append(p.confirmed, m.Child)
		return p.maybeFinalize(nil, snap)
	}
	if repl, ok := p.pullAlternate(); ok {
		p.outstanding = append(p.outstanding, repl)
		effs := p.pl.slice()
		return append(effs, p.pl.send(repl, p.retryControl(snap, repl)))
	}
	return p.maybeFinalize(nil, snap)
}

// pullAlternate draws the next failover candidate, spending one retry.
func (p *Peer) pullAlternate() (PeerID, bool) {
	if p.final || p.retryLeft <= 0 || len(p.candQueue) == 0 {
		return 0, false
	}
	repl := p.candQueue[0]
	p.candQueue = p.candQueue[1:]
	p.retryLeft--
	p.retried++
	return repl, true
}

// retryControl builds the c1 for a failover candidate: same round and
// child count as the original wave, view restricted to sender+candidate.
func (p *Peer) retryControl(snap Snapshot, repl PeerID) *MsgControl {
	p.viewAdd(repl)
	p.one[0] = repl
	rv := p.restrictedView(p.one[:])
	m := p.pl.msgControl()
	m.Parent = p.id
	m.View = append(m.View[:0], rv...)
	m.SeqOffset, m.Rate = snap.Offset, snap.Rate
	m.Children, m.Round = p.wanted, p.ctlRound
	return m
}

// maybeFinalize closes the handshake round once every outstanding
// control has been answered and no further retry could raise the count.
func (p *Peer) maybeFinalize(effs []Effect, snap Snapshot) []Effect {
	if p.final || !p.outstandingOpen || len(p.outstanding) > 0 {
		return effs
	}
	if len(p.confirmed) >= p.wanted || len(p.candQueue) == 0 || p.retryLeft <= 0 {
		return p.tcopFinalize(effs, snap)
	}
	return effs
}

// tcopOnConfirmTimeout fires the confirmation deadline: silent children
// are written off, and either a retry wave of alternates goes out with
// a doubled deadline, or the round finalizes with the confirmations in
// hand.
func (p *Peer) tcopOnConfirmTimeout(id TimerID, snap Snapshot) []Effect {
	if id.Gen != p.gen || p.final || !p.outstandingOpen {
		return nil
	}
	need := len(p.outstanding)
	p.outstanding = p.outstanding[:0]
	for i := 0; i < need; i++ {
		repl, ok := p.pullAlternate()
		if !ok {
			break
		}
		p.outstanding = append(p.outstanding, repl)
	}
	if len(p.outstanding) == 0 {
		return p.tcopFinalize(nil, snap)
	}
	p.gen++
	p.confirmDelay *= 2
	effs := p.pl.slice()
	for _, repl := range p.outstanding {
		effs = append(effs, p.pl.send(repl, p.retryControl(snap, repl)))
	}
	return append(effs, p.pl.setTimer(TimerID{Kind: TimerConfirm, Gen: p.gen}, p.confirmDelay))
}

// tcopFinalize closes the round: divide the remaining stream into
// c2.n = confirmed+1 parts with parity interval c2.n, commit each
// confirmed child its part, and hand off own transmission to part 0.
func (p *Peer) tcopFinalize(effs []Effect, snap Snapshot) []Effect {
	if p.final {
		return effs
	}
	p.final = true
	p.outstandingOpen = false
	p.outstanding = p.outstanding[:0]
	p.gen++ // invalidate any in-flight confirmation deadline
	if len(p.confirmed) == 0 {
		return effs
	}
	k := len(p.confirmed) + 1
	mark := MarkOffset(snap.Offset, p.cfg.MarkDelta, snap.Rate)
	parts, rate := ShareOut(snap.Stream, mark, snap.Rate, k, k)
	if effs == nil {
		effs = p.pl.slice()
	}
	for i, c := range p.confirmed {
		assigned := seqAt(parts, i+1)
		p.noteShare(c, assigned, rate)
		m := p.pl.msgCommit()
		m.Parent, m.Streams, m.SeqOffset = p.id, k, snap.Offset
		m.Rate, m.ChildIdx = rate, i+1
		m.AssignedSeq, m.Round = assigned, p.ctlRound+2
		effs = append(effs, p.pl.send(c, m))
	}
	keep, given := SplitParts(parts)
	return append(effs, p.pl.handoff(keep, given, snap.Rate, rate, mark))
}

// tcopOnCommit handles the parent's c2: adopt the assignment, start
// transmitting, and open the next handshake round toward the unknown
// part of the view. A commit is stale if the peer already transmits or
// has since been adopted by a different parent.
func (p *Peer) tcopOnCommit(m *MsgCommit, snap Snapshot) []Effect {
	if p.active || (p.parent >= 0 && p.parent != int(m.Parent)) {
		return nil
	}
	p.parent = int(m.Parent)
	p.committed = true
	p.noteActivated(m.Round, m.AssignedSeq)
	effs := p.pl.slice()
	effs = append(effs, p.pl.activate(m.AssignedSeq, m.Rate, m.Round))
	return p.tcopSelect(effs, m.Round+1, afterActivate(m.AssignedSeq, m.Rate))
}
