package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"p2pmss/internal/engine"
	"p2pmss/internal/parity"
	"p2pmss/internal/seq"
)

// harness is a minimal deterministic driver: unit-latency FIFO message
// delivery, timers firing (earliest first) only once the message queue
// drains, hand-offs applied immediately (key-based subtraction makes
// early application lossless). It exists to exercise the engine without
// either real driver, so invariants hold independent of transport.
type harness struct {
	cfg     engine.Config
	peers   []*engine.Peer
	sources []rand.Source
	streams []seq.Sequence
	rates   []float64
	crashed map[engine.PeerID]bool

	queue  []delivery
	qHead  int
	timers []timerEntry
	now    float64

	// Scratch reused across dispatches so a steady-state round through
	// the harness allocates (amortized) nothing: leaf requests, the
	// worklist of effect batches, and one scratch struct per event kind
	// (the engine never retains an event past Handle).
	reqBuf   []engine.Request
	batchBuf [][]engine.Effect
	evCtl    engine.Control
	evConf   engine.Confirm
	evCommit engine.Commit
	evTimer  engine.TimerFired
	evSF     engine.SendFailed

	// dropWhen, when non-nil, silently loses a delivery (message loss
	// without a crash); crashWhen marks a peer crashed just before a
	// delivery is attempted (the delivery is then lost too).
	dropWhen  func(to engine.PeerID, ev engine.Event) bool
	crashWhen func(to engine.PeerID, ev engine.Event) engine.PeerID

	// afterHandle observes a peer right after it processed an event
	// (used by the fuzzer to check per-step invariants).
	afterHandle func(to engine.PeerID)
}

// delivery is one queued message (msg set) or direct event (ev set).
type delivery struct {
	to  engine.PeerID
	msg any
	ev  engine.Event
}

type timerEntry struct {
	at float64
	to engine.PeerID
	id engine.TimerID
}

func newHarness(cfg engine.Config, seed int64) *harness {
	if err := cfg.Normalize(); err != nil {
		panic(err)
	}
	h := &harness{cfg: cfg, crashed: make(map[engine.PeerID]bool)}
	for i := 0; i < cfg.N; i++ {
		id := engine.PeerID(i)
		src := rand.NewSource(engine.PeerSeed(seed, id))
		h.sources = append(h.sources, src)
		h.peers = append(h.peers, engine.NewPeer(cfg, id, rand.New(src)))
		h.streams = append(h.streams, nil)
		h.rates = append(h.rates, 0)
	}
	return h
}

// reset rewinds the harness — peers, clocks, queues — to a fresh run
// of the given seed while keeping every capacity (the benchmark hot
// loop reruns rounds through one harness).
func (h *harness) reset(seed int64) {
	h.now = 0
	h.queue = h.queue[:0]
	h.qHead = 0
	h.timers = h.timers[:0]
	clear(h.crashed)
	for i, p := range h.peers {
		p.Reset()
		h.sources[i].Seed(engine.PeerSeed(seed, engine.PeerID(i)))
		h.streams[i] = nil
		h.rates[i] = 0
	}
}

func (h *harness) snap(id engine.PeerID) engine.Snapshot {
	return engine.Snapshot{Offset: 0, Stream: h.streams[id], Rate: h.rates[id]}
}

// start performs the leaf's step 1 over the given content sequence
// (nil content = control-plane-only mode, rates without divisions).
func (h *harness) start(content seq.Sequence, rate float64, leafSeed int64) {
	var enhanced seq.Sequence
	if content != nil {
		enhanced = parity.Enhance(content, h.cfg.Interval)
	}
	perPeer := parity.PerPeerRate(rate, h.cfg.Interval, h.cfg.H)
	lr := rand.New(rand.NewSource(engine.PeerSeed(leafSeed, engine.LeafID)))
	sel, _ := engine.SelectInitial(lr, h.cfg.N, h.cfg.H)
	h.reqBuf = h.reqBuf[:0]
	for u := range sel {
		var assigned seq.Sequence
		if enhanced != nil {
			assigned = seq.Div(enhanced, h.cfg.H, u)
		}
		h.reqBuf = append(h.reqBuf, engine.Request{
			Assigned: assigned,
			Rate:     perPeer,
			Selected: sel,
			Round:    1,
		})
	}
	for u, cp := range sel {
		h.queue = append(h.queue, delivery{to: cp, ev: &h.reqBuf[u]})
	}
}

// run drains messages FIFO, then fires the earliest timer, until quiet.
func (h *harness) run() {
	for {
		if h.qHead < len(h.queue) {
			d := h.queue[h.qHead]
			h.qHead++
			h.dispatch(d)
			continue
		}
		h.queue = h.queue[:0]
		h.qHead = 0
		if len(h.timers) == 0 {
			return
		}
		best := 0
		for i, t := range h.timers {
			if t.at < h.timers[best].at {
				best = i
			}
		}
		t := h.timers[best]
		h.timers = append(h.timers[:best], h.timers[best+1:]...)
		h.now = t.at
		h.evTimer = engine.TimerFired{Timer: t.id}
		h.deliver(t.to, &h.evTimer)
	}
}

// dispatch wraps a queued message in its (scratch) event, delivers it,
// and returns the consumed message node to its pool.
func (h *harness) dispatch(d delivery) {
	ev := d.ev
	switch m := d.msg.(type) {
	case *engine.MsgControl:
		h.evCtl.Msg = m
		ev = &h.evCtl
	case *engine.MsgConfirm:
		h.evConf.Msg = m
		ev = &h.evConf
	case *engine.MsgCommit:
		h.evCommit.Msg = m
		ev = &h.evCommit
	}
	h.deliver(d.to, ev)
	engine.ReleaseMsg(d.msg)
}

func (h *harness) deliver(to engine.PeerID, ev engine.Event) {
	if h.crashWhen != nil {
		if victim := h.crashWhen(to, ev); victim >= 0 {
			h.crashed[victim] = true
		}
	}
	if h.crashed[to] {
		return
	}
	if h.dropWhen != nil && h.dropWhen(to, ev) {
		return
	}
	h.apply(to, h.peers[to].Handle(ev, h.snap(to)))
	if h.afterHandle != nil {
		h.afterHandle(to)
	}
}

// apply executes effects exactly as the real drivers do: sends to
// crashed peers feed SendFailed back behind the remaining effects, the
// hand-off is buffered (copied out — the node is recycled) so Absorb
// folds into it, then applied. Every consumed batch is given back to
// the peer via Release.
func (h *harness) apply(to engine.PeerID, effs []engine.Effect) {
	p := h.peers[to]
	var handoff engine.Handoff
	haveHandoff := false
	batches := append(h.batchBuf[:0], effs)
	for bi := 0; bi < len(batches); bi++ {
		for _, eff := range batches[bi] {
			switch e := eff.(type) {
			case *engine.Send:
				if h.crashed[e.To] {
					h.evSF = engine.SendFailed{To: e.To, Msg: e.Msg}
					if fb := p.Handle(&h.evSF, h.snap(to)); fb != nil {
						batches = append(batches, fb)
					}
					engine.ReleaseMsg(e.Msg)
					continue
				}
				h.queue = append(h.queue, delivery{to: e.To, msg: e.Msg})
			case *engine.SetTimer:
				h.timers = append(h.timers, timerEntry{at: h.now + e.Delay, to: to, id: e.ID})
			case *engine.Activate:
				h.streams[to] = e.Seq
				h.rates[to] = e.Rate
			case *engine.Merge:
				h.streams[to] = seq.Union(h.streams[to], e.Seq)
				h.rates[to] += e.Rate
			case *engine.Handoff:
				handoff = *e
				haveHandoff = true
			case *engine.Absorb:
				if haveHandoff {
					handoff.Keep = seq.Union(handoff.Keep, e.Seq)
					handoff.NewRate += e.RateDelta
				} else {
					h.streams[to] = seq.Union(h.streams[to], e.Seq)
					h.rates[to] += e.RateDelta
				}
			}
		}
	}
	for _, b := range batches {
		p.Release(b)
	}
	h.batchBuf = batches[:0]
	if !haveHandoff {
		return
	}
	if len(handoff.Given) == 0 && handoff.Keep == nil && h.streams[to] == nil {
		// Control-plane-only: the hand-off is a rate change.
		rate := h.rates[to] - handoff.OldRate + handoff.NewRate
		if rate <= 0 {
			rate = handoff.NewRate
		}
		h.rates[to] = rate
		return
	}
	given := make(map[string]bool)
	for _, g := range handoff.Given {
		for _, pkt := range g {
			given[pkt.Key()] = true
		}
	}
	var rest seq.Sequence
	for _, pkt := range h.streams[to] {
		if !given[pkt.Key()] {
			rest = append(rest, pkt)
		}
	}
	h.streams[to] = seq.Union(rest, handoff.Keep)
	rate := h.rates[to] - handoff.OldRate + handoff.NewRate
	if rate <= 0 {
		rate = handoff.NewRate
	}
	h.rates[to] = rate
}

func (h *harness) outcomes() []engine.Outcome {
	out := make([]engine.Outcome, len(h.peers))
	for i, p := range h.peers {
		out[i] = p.Outcome()
	}
	return out
}

func baseConfig(n, hh int, dcop bool) engine.Config {
	return engine.Config{
		N: n, H: hh, Interval: 3,
		MarkDelta: 0.1, HandshakeTimeout: 1, CommitRelease: 4,
		Retries: hh, DCoP: dcop,
	}
}

// checkTree asserts TCoP's structural invariants: at most one parent per
// peer, committed implies an adopting parent, and every parent/child
// edge is mirrored in the parent's children list.
func checkTree(t *testing.T, outs []engine.Outcome) {
	t.Helper()
	children := make(map[engine.PeerID]map[engine.PeerID]int)
	for _, o := range outs {
		m := make(map[engine.PeerID]int)
		for _, c := range o.Children {
			m[c]++
			if m[c] > 1 {
				t.Errorf("peer %d lists child %d twice", o.ID, c)
			}
		}
		children[o.ID] = m
	}
	for _, o := range outs {
		if o.Committed {
			if o.Parent < 0 || o.Parent == int(o.ID) {
				t.Errorf("peer %d committed with parent %d", o.ID, o.Parent)
			}
			if children[engine.PeerID(o.Parent)][o.ID] != 1 {
				t.Errorf("peer %d's parent %d does not list it as a child", o.ID, o.Parent)
			}
		}
	}
}

// coverageKeys returns the union of assigned keys over active peers.
func coverageKeys(outs []engine.Outcome) map[string]bool {
	keys := make(map[string]bool)
	for _, o := range outs {
		if !o.Active {
			continue
		}
		for _, k := range o.Assigned.Keys() {
			keys[k] = true
		}
	}
	return keys
}

func TestEngineTCoPTreeInvariants(t *testing.T) {
	content := seq.Range(1, 60)
	for seed := int64(1); seed <= 5; seed++ {
		cfg := baseConfig(24, 4, false)
		h := newHarness(cfg, seed)
		h.start(content, 12, seed)
		h.run()
		outs := h.outcomes()
		checkTree(t, outs)
		active := 0
		edges := 0
		for _, o := range outs {
			if o.Active {
				active++
			}
			edges += len(o.Children)
		}
		if active != cfg.N {
			t.Errorf("seed %d: %d/%d peers active", seed, active, cfg.N)
		}
		// Every active peer except the H leaf-selected roots joined via
		// exactly one commit edge.
		if edges != active-cfg.H {
			t.Errorf("seed %d: %d edges for %d active peers (want %d)", seed, edges, active, active-cfg.H)
		}
		want := parity.Enhance(content, cfg.Interval).Keys()
		got := coverageKeys(outs)
		for _, k := range want {
			if !got[k] {
				t.Fatalf("seed %d: enhanced packet %s assigned to nobody", seed, k)
			}
		}
	}
}

func TestEngineDCoPFloodsAndCovers(t *testing.T) {
	content := seq.Range(1, 60)
	for seed := int64(1); seed <= 5; seed++ {
		cfg := baseConfig(24, 4, true)
		h := newHarness(cfg, seed)
		h.start(content, 12, seed)
		h.run()
		outs := h.outcomes()
		active := 0
		for _, o := range outs {
			if o.Active {
				active++
			}
		}
		if active < cfg.N*3/4 {
			t.Errorf("seed %d: only %d/%d peers active", seed, active, cfg.N)
		}
		want := parity.Enhance(content, cfg.Interval).Keys()
		got := coverageKeys(outs)
		for _, k := range want {
			if !got[k] {
				t.Fatalf("seed %d: enhanced packet %s assigned to nobody", seed, k)
			}
		}
	}
}

// TestEngineDCoPChildrenCapSmallH is the §3.3 regression for the
// lifetime fanout cap: even at tiny H, where redundant selection makes a
// peer's select fire repeatedly (once per merge), the children taken
// over a peer's lifetime never exceed H. The pre-engine live runtime
// lacked this cap.
func TestEngineDCoPChildrenCapSmallH(t *testing.T) {
	content := seq.Range(1, 40)
	for _, hh := range []int{1, 2, 3} {
		for seed := int64(1); seed <= 10; seed++ {
			cfg := baseConfig(16, hh, true)
			h := newHarness(cfg, seed)
			h.start(content, 8, seed)
			h.run()
			for i, p := range h.peers {
				if p.ChildrenTaken() > hh {
					t.Fatalf("H=%d seed %d: peer %d took %d children", hh, seed, i, p.ChildrenTaken())
				}
				if got := len(p.Outcome().Children); got > hh {
					t.Fatalf("H=%d seed %d: peer %d kept %d children", hh, seed, i, got)
				}
			}
		}
	}
}

// TestEngineTCoPRetryOnCrashedChild exercises the fail-over path: a
// selected child that is already crashed produces SendFailed, and the
// parent retries an alternate from its spare queue.
func TestEngineTCoPRetryOnCrashedChild(t *testing.T) {
	content := seq.Range(1, 60)
	cfg := baseConfig(12, 3, false)
	retriedSome := false
	for seed := int64(1); seed <= 8 && !retriedSome; seed++ {
		h := newHarness(cfg, seed)
		// Crash two peers the leaf did not select.
		lr := rand.New(rand.NewSource(engine.PeerSeed(seed, engine.LeafID)))
		sel, spares := engine.SelectInitial(lr, cfg.N, cfg.H)
		_ = sel
		h.crashed[spares[0]] = true
		h.crashed[spares[1]] = true
		h.start(content, 12, seed)
		h.run()
		outs := h.outcomes()
		checkTree(t, outs)
		for _, o := range outs {
			if h.crashed[o.ID] && o.Active {
				t.Fatalf("seed %d: crashed peer %d became active", seed, o.ID)
			}
			if o.Retried > 0 {
				retriedSome = true
			}
		}
	}
	if !retriedSome {
		t.Fatal("no seed exercised the alternate-peer retry path")
	}
}

// TestEngineTCoPCommitAbsorb crashes a child between its confirmation
// and the parent's commit: the commit send fails and the parent
// re-absorbs the share, so no packet is orphaned.
func TestEngineTCoPCommitAbsorb(t *testing.T) {
	content := seq.Range(1, 60)
	cfg := baseConfig(12, 3, false)
	h := newHarness(cfg, 1)
	crashedOne := false
	h.crashWhen = func(to engine.PeerID, ev engine.Event) engine.PeerID {
		if c, ok := ev.(*engine.Confirm); ok && c.Msg.Accept && !crashedOne {
			crashedOne = true
			return c.Msg.Child
		}
		return -1
	}
	h.start(content, 12, 1)
	h.run()
	absorbed := 0
	for _, o := range h.outcomes() {
		absorbed += o.Absorbed
	}
	if absorbed == 0 {
		t.Fatal("no share was re-absorbed after the post-confirm crash")
	}
	// Coverage must survive the crash: the absorbed share stays with the
	// parent, so the union over surviving active peers is still complete.
	want := parity.Enhance(content, cfg.Interval).Keys()
	outs := h.outcomes()
	got := make(map[string]bool)
	for i, o := range outs {
		if o.Active && !h.crashed[o.ID] {
			for _, pkt := range h.streams[i] {
				got[pkt.Key()] = true
			}
			_ = o
		}
	}
	// The harness applies hand-offs immediately, so each survivor's
	// stream is exactly what it will transmit; their union must cover
	// the enhanced content minus nothing.
	for _, k := range want {
		if !got[k] {
			t.Fatalf("packet %s orphaned by the crash", k)
		}
	}
}

// TestEngineTCoPCommitLostReleasesAdoption drops a commit in flight: the
// adopted child never hears c2, and after CommitRelease its adoption is
// released so a later parent could take it.
func TestEngineTCoPCommitLostReleasesAdoption(t *testing.T) {
	content := seq.Range(1, 60)
	cfg := baseConfig(12, 3, false)
	h := newHarness(cfg, 1)
	var victim engine.PeerID = -1
	h.dropWhen = func(to engine.PeerID, ev engine.Event) bool {
		if _, ok := ev.(*engine.Commit); ok && victim < 0 {
			victim = to
			return true
		}
		return false
	}
	h.start(content, 12, 1)
	h.run()
	if victim < 0 {
		t.Fatal("no commit was ever sent")
	}
	p := h.peers[victim]
	if p.Active() || p.Committed() {
		t.Fatalf("victim %d active=%v committed=%v after losing its commit", victim, p.Active(), p.Committed())
	}
	if p.ParentID() != -1 {
		t.Fatalf("victim %d still adopted by %d after CommitRelease", victim, p.ParentID())
	}
}

// TestEngineTCoPConfirmTimeoutRetryWave drops a control in flight: the
// child never answers, the parent's deadline fires, and a retry wave
// goes out to an alternate with a doubled deadline.
func TestEngineTCoPConfirmTimeoutRetryWave(t *testing.T) {
	content := seq.Range(1, 60)
	cfg := baseConfig(12, 3, false)
	h := newHarness(cfg, 1)
	dropped := false
	h.dropWhen = func(to engine.PeerID, ev engine.Event) bool {
		if _, ok := ev.(*engine.Control); ok && !dropped {
			dropped = true
			return true
		}
		return false
	}
	h.start(content, 12, 1)
	h.run()
	retried := 0
	for _, o := range h.outcomes() {
		retried += o.Retried
	}
	if retried == 0 {
		t.Fatal("confirmation timeout did not trigger a retry wave")
	}
	checkTree(t, h.outcomes())
}

// TestEngineDeterministicReplay runs the same seed twice and requires
// byte-identical outcomes — the property both drivers rely on.
func TestEngineDeterministicReplay(t *testing.T) {
	content := seq.Range(1, 60)
	for _, dcop := range []bool{false, true} {
		run := func() string {
			h := newHarness(baseConfig(20, 4, dcop), 7)
			h.start(content, 12, 7)
			h.run()
			return formatOutcomes(h.outcomes())
		}
		if a, b := run(), run(); a != b {
			t.Errorf("dcop=%v: two runs of the same seed diverged:\n%s\n--vs--\n%s", dcop, a, b)
		}
	}
}

func formatOutcomes(outs []engine.Outcome) string {
	s := ""
	for _, o := range outs {
		kids := append([]engine.PeerID(nil), o.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		keys := o.Assigned.Keys()
		sort.Strings(keys)
		s += fmt.Sprintf("%d active=%v parent=%d kids=%v assigned=%v\n", o.ID, o.Active, o.Parent, kids, keys)
	}
	return s
}

func TestConfigNormalize(t *testing.T) {
	bad := []engine.Config{
		{N: 0, H: 1, Interval: 1},
		{N: 1, H: 0, Interval: 1},
		{N: 1, H: 1, Interval: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an invalid config", cfg)
		}
	}
	cfg := engine.Config{N: 4, H: 2, Interval: 3, Retries: -5}
	if err := cfg.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if cfg.FirstFanout != 2 || cfg.Retries != 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestPeerSeedIndependence(t *testing.T) {
	seen := make(map[int64]engine.PeerID)
	for id := engine.PeerID(-1); id < 100; id++ {
		s := engine.PeerSeed(42, id)
		if s < 0 {
			t.Fatalf("PeerSeed(42, %d) = %d is negative", id, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("PeerSeed collision between ids %d and %d", prev, id)
		}
		seen[s] = id
	}
	if engine.PeerSeed(1, 0) == engine.PeerSeed(2, 0) {
		t.Error("PeerSeed ignores the base seed")
	}
}

func TestMarkOffsetFloors(t *testing.T) {
	cases := []struct {
		off  int
		d, r float64
		want int
	}{
		{0, 0, 10, 0},
		{5, 1, 10, 15},
		{5, 0.5, 3, 6},  // 1.5 floors to 1
		{2, 1, 1e-6, 2}, // negligible rate advances nothing
		{0, 0.3, 10, 3}, // 2.9999... + eps rounds to 3
	}
	for _, c := range cases {
		if got := engine.MarkOffset(c.off, c.d, c.r); got != c.want {
			t.Errorf("MarkOffset(%d,%v,%v) = %d, want %d", c.off, c.d, c.r, got, c.want)
		}
	}
}
