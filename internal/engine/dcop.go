package engine

import (
	"p2pmss/internal/overlay"
	"p2pmss/internal/seq"
)

// DCoP (§3.4): the redundant-flooding coordination protocol. Controls
// go out without a handshake; a peer selected by several parents merges
// the redundant assignments (pkt_i := pkt_i ∪ pkt_ji) and the flooding
// ends when views fill. The §3.3 fanout cap — at most H children over a
// parent's lifetime — bounds the per-peer coordination load.

// seqAt indexes a ShareOut parts slice that may be nil in
// control-plane-only mode.
func seqAt(parts []seq.Sequence, i int) seq.Sequence {
	if i < len(parts) {
		return parts[i]
	}
	return nil
}

// assignKey identifies one share assignment a parent issued to this
// peer. A DCoP parent never issues the same (round, child-index) slot
// twice — dcopSelect only ever picks children outside its view — so two
// deliveries with equal keys are the same packet duplicated by the
// network, and the merge pkt_i ∪ pkt_ji must apply once, not once per
// copy (a re-merge double-counts the child rate and burns a fresh
// flooding round out of the §3.3 lifetime budget).
type assignKey struct {
	parent    PeerID
	round     int
	childIdx  int
	seqOffset int
	streams   int
}

// firstDelivery records k and reports whether it was new.
func (p *Peer) firstDelivery(k assignKey) bool {
	if p.seenAssign[k] {
		return false
	}
	if p.seenAssign == nil {
		p.seenAssign = make(map[assignKey]bool)
	}
	p.seenAssign[k] = true
	return true
}

// dcopOnControl handles a parent's c1: merge when already transmitting,
// activate otherwise, then keep flooding while the view has holes.
// Duplicated deliveries of the same control are dropped (see assignKey).
func (p *Peer) dcopOnControl(m *MsgControl, snap Snapshot) []Effect {
	if !p.firstDelivery(assignKey{parent: m.Parent, round: m.Round, childIdx: m.ChildIdx, seqOffset: m.SeqOffset}) {
		return nil
	}
	p.viewAdd(p.id)
	p.viewAdd(m.Parent)
	p.viewAddAll(m.View)
	effs := p.pl.slice()
	var cur Snapshot
	if p.active {
		p.noteMerged(m.Round, m.AssignedSeq)
		effs = append(effs, p.pl.merge(m.AssignedSeq, m.ChildRate, m.Round))
		cur = afterMerge(snap, m.AssignedSeq, m.ChildRate)
	} else {
		p.noteActivated(m.Round, m.AssignedSeq)
		effs = append(effs, p.pl.activate(m.AssignedSeq, m.ChildRate, m.Round))
		cur = afterActivate(m.AssignedSeq, m.ChildRate)
	}
	if !p.view.Full() {
		effs = p.dcopSelect(effs, p.cfg.H, m.Round+1, cur)
	}
	return effs
}

// dcopOnCommit handles a mid-stream Join grant (the live layer reuses
// the commit packet to hand a joiner its slice; there is no handshake
// in DCoP, so a commit can arrive to an already-active peer too). A
// later, legitimate second grant differs in SeqOffset or Streams, which
// the dedup key includes; byte-identical re-deliveries merge once.
func (p *Peer) dcopOnCommit(m *MsgCommit, snap Snapshot) []Effect {
	if !p.firstDelivery(assignKey{parent: m.Parent, round: m.Round, childIdx: m.ChildIdx, seqOffset: m.SeqOffset, streams: m.Streams}) {
		return nil
	}
	p.viewAdd(m.Parent)
	effs := p.pl.slice()
	if p.active {
		p.noteMerged(m.Round, m.AssignedSeq)
		return append(effs, p.pl.merge(m.AssignedSeq, m.Rate, m.Round))
	}
	p.noteActivated(m.Round, m.AssignedSeq)
	effs = append(effs, p.pl.activate(m.AssignedSeq, m.Rate, m.Round))
	cur := afterActivate(m.AssignedSeq, m.Rate)
	if !p.view.Full() {
		effs = p.dcopSelect(effs, p.cfg.H, m.Round+1, cur)
	}
	return effs
}

// dcopSelect floods one selection round: pick up to fanout children
// outside the view (bounded by the lifetime cap), divide the remaining
// stream into len+1 parity-enhanced parts, send each child its part,
// and hand own transmission off to part 0. Effects append to effs.
func (p *Peer) dcopSelect(effs []Effect, fanout, round int, cur Snapshot) []Effect {
	if remaining := p.cfg.H - p.childrenTaken; fanout > remaining {
		fanout = remaining // §3.3: at most H children over a lifetime
	}
	if fanout <= 0 {
		return effs
	}
	children, _ := overlay.SelectWithSparesInto(p.rng, p.view, fanout, p.selBuf, false)
	if children != nil {
		p.selBuf = children[:0] // recapture the (possibly regrown) scratch array
	}
	if len(children) == 0 {
		return effs
	}
	p.childrenTaken += len(children)
	p.view.AddAll(children)

	mark := MarkOffset(cur.Offset, p.cfg.MarkDelta, cur.Rate)
	parts, childRate := ShareOut(cur.Stream, mark, cur.Rate, p.cfg.Interval, len(children)+1)
	p.membersBuf = p.view.MembersInto(p.membersBuf[:0])
	for i, c := range children {
		assigned := seqAt(parts, i+1)
		p.noteShare(c, assigned, childRate)
		m := p.pl.msgControl()
		m.Parent = p.id
		m.View = append(m.View[:0], p.membersBuf...)
		m.SeqOffset, m.Rate = cur.Offset, cur.Rate
		m.ChildRate, m.Children, m.ChildIdx = childRate, len(children), i+1
		m.AssignedSeq, m.Round = assigned, round
		effs = append(effs, p.pl.send(c, m))
	}
	keep, given := SplitParts(parts)
	return append(effs, p.pl.handoff(keep, given, cur.Rate, childRate, mark))
}
