package engine

import (
	"p2pmss/internal/metrics"
	"p2pmss/internal/span"
)

// SpanMetrics are the coordination-latency histograms a SpanTracker
// feeds. All fields are optional; nil histograms are no-ops (the
// metrics package's nil-receiver contract).
type SpanMetrics struct {
	// HandshakeRTT observes the duration of each completed TCoP
	// confirmation wave (control out → wave closed).
	HandshakeRTT *metrics.Histogram
	// CommitLatency observes control→commit latency: first control of a
	// handshake round out → commits sent.
	CommitLatency *metrics.Histogram
	// RetryWaveDepth observes how many confirmation waves (1 = no
	// retries) a finalized handshake round took.
	RetryWaveDepth *metrics.Histogram
}

func (m SpanMetrics) enabled() bool {
	return m.HandshakeRTT != nil || m.CommitLatency != nil || m.RetryWaveDepth != nil
}

// SpanTracker derives causal spans and latency observations from one
// peer's event/effect stream. It is driver-side instrumentation: the
// driver calls Observe between Peer.Handle and applying the effects,
// and the tracker — never the protocol logic — opens spans for the
// units the paper names (handshake rounds, confirmation retry waves,
// commits, hand-offs, per-peer streaming) and stamps outgoing messages
// with the span context their receiver should nest under.
//
// A nil *SpanTracker is the disabled tracker: Observe and Finish
// return immediately, with zero allocations (benchmarked in
// bench_span_test.go). NewSpanTracker returns nil when both the
// collector and the metrics are disabled, so drivers keep the call
// sites unconditional.
type SpanTracker struct {
	col   *span.Collector
	trace span.TraceID
	peer  int
	met   SpanMetrics

	// Open handshake round (TCoP): the enclosing "handshake" span and
	// the currently outstanding "confirm_wave" under it. The open flags
	// are tracked separately from the span IDs so the latency
	// histograms still fire in metrics-only mode (nil collector, whose
	// NextID is always 0).
	hsOpen    bool
	hs        span.SpanID
	hsParent  span.SpanID
	hsStart   float64
	waveOpen  bool
	wave      span.SpanID
	waveStart float64
	waveDepth int

	// Per-peer streaming span, opened at first activation.
	streaming   bool
	streamStart float64
}

// NewSpanTracker returns a tracker recording into col under trace,
// on the given peer track (use -1 for the leaf/driver track). Returns
// nil — the disabled tracker — when col is nil and met carries no
// histograms.
func NewSpanTracker(col *span.Collector, trace span.TraceID, peer int, met SpanMetrics) *SpanTracker {
	if col == nil && !met.enabled() {
		return nil
	}
	return &SpanTracker{col: col, trace: trace, peer: peer, met: met}
}

// instant records a zero-duration span and returns its context for
// stamping messages.
func (t *SpanTracker) instant(now float64, name string, parent span.SpanID) span.Context {
	id := t.col.NextID()
	t.col.Add(span.Span{
		Trace: t.trace, ID: id, Parent: parent,
		Name: name, Peer: t.peer, Start: now, End: now,
	})
	return span.Context{Trace: t.trace, Span: id}
}

// closeWave emits the outstanding confirmation wave as a span ending
// now and observes its duration as handshake RTT.
func (t *SpanTracker) closeWave(now float64) {
	if !t.waveOpen {
		return
	}
	t.col.Add(span.Span{
		Trace: t.trace, ID: t.wave, Parent: t.hs,
		Name: "confirm_wave", Peer: t.peer, Start: t.waveStart, End: now,
	})
	t.met.HandshakeRTT.Observe(now - t.waveStart)
	t.waveOpen = false
	t.wave = 0
}

// closeHandshake emits the enclosing handshake span ending now.
func (t *SpanTracker) closeHandshake(now float64) {
	if !t.hsOpen {
		return
	}
	t.col.Add(span.Span{
		Trace: t.trace, ID: t.hs, Parent: t.hsParent,
		Name: "handshake", Peer: t.peer, Start: t.hsStart, End: now,
	})
	t.hsOpen = false
	t.hs = 0
	t.waveDepth = 0
}

// Observe derives spans from one Handle call: p is the peer that just
// handled ev (already advanced), parent is the causal context the
// event arrived under (the span stamped on the triggering message, or
// zero), and effs is Handle's result. Outgoing protocol messages in
// effs are stamped in place with the span context their receiver
// should treat as parent. now is the driver's current time.
func (t *SpanTracker) Observe(p *Peer, now float64, ev Event, parent span.Context, effs []Effect) {
	if t == nil {
		return
	}
	local := parent.Span

	// Pre-scan the batch: the span structure depends on which effect
	// kinds appear together (e.g. controls+deadline = a new wave).
	var nCtl, nCommit int
	hasConfirmTimer := false
	hasReleaseTimer := false
	for _, e := range effs {
		switch eff := e.(type) {
		case *Send:
			switch eff.Msg.(type) {
			case *MsgControl:
				nCtl++
			case *MsgCommit:
				nCommit++
			}
		case *SetTimer:
			switch eff.ID.Kind {
			case TimerConfirm:
				hasConfirmTimer = true
			case TimerRelease:
				hasReleaseTimer = true
			}
		}
	}

	// Structural spans first (activation/merge), so the handshake the
	// same batch opens nests under them.
	var ctlCtx, commitCtx, confirmCtx span.Context
	for _, e := range effs {
		switch e.(type) {
		case *Activate:
			local = t.instant(now, "activate", local).Span
			if !t.streaming {
				t.streaming = true
				t.streamStart = now
			}
		case *Merge:
			local = t.instant(now, "merge", local).Span
		}
	}

	if nCtl > 0 {
		if hasConfirmTimer {
			// A fresh confirmation wave: tcopSelect or a timeout retry
			// wave. Open the enclosing handshake on the first one.
			if !t.hsOpen {
				t.hsOpen = true
				t.hs = t.col.NextID()
				t.hsParent = local
				t.hsStart = now
			} else {
				t.closeWave(now)
			}
			t.waveOpen = true
			t.wave = t.col.NextID()
			t.waveStart = now
			t.waveDepth++
			ctlCtx = span.Context{Trace: t.trace, Span: t.wave}
		} else if t.hsOpen {
			// Failover control inside the open wave (refusal or send
			// failure pulled an alternate).
			ctlCtx = span.Context{Trace: t.trace, Span: t.wave}
		} else {
			// DCoP select: no handshake, controls carry the assignment.
			ctlCtx = t.instant(now, "select", local)
		}
	}

	if nCommit > 0 {
		commitParent := local
		if t.waveOpen {
			commitParent = t.wave
		}
		if t.hsOpen {
			t.met.CommitLatency.Observe(now - t.hsStart)
			t.met.RetryWaveDepth.Observe(float64(t.waveDepth))
		}
		t.closeWave(now)
		commitCtx = t.instant(now, "commit", commitParent)
		t.closeHandshake(now)
	}

	// Remaining instants and message stamping (in place: message nodes
	// are unique per send, never shared across effects).
	for _, e := range effs {
		switch eff := e.(type) {
		case *Send:
			switch m := eff.Msg.(type) {
			case *MsgControl:
				m.Span = ctlCtx
			case *MsgCommit:
				m.Span = commitCtx
			case *MsgConfirm:
				if confirmCtx == (span.Context{}) {
					if m.Accept && hasReleaseTimer {
						// Adoption: the child accepted a prospective
						// parent and armed the commit-release guard.
						confirmCtx = t.instant(now, "adopt", local)
					} else {
						confirmCtx = span.Context{Trace: t.trace, Span: local}
					}
				}
				m.Span = confirmCtx
			}
		case *Handoff:
			t.instant(now, "handoff", local)
		case *Absorb:
			t.instant(now, "absorb", local)
		case *ServeRepair:
			t.instant(now, "repair_serve", local)
		}
	}

	// A handshake round can end without commits (every candidate
	// refused, failed, or stayed silent): the engine marked the round
	// final with nothing to send, so close the dangling spans here.
	if nCommit == 0 && t.hsOpen && !p.cfg.DCoP && p.final {
		t.closeWave(now)
		t.closeHandshake(now)
	}
}

// MsgSpan extracts the causal context stamped on an engine protocol
// message (zero for messages that carry none). Drivers use it to
// propagate the context of a failed send into the SendFailed feedback
// event.
func MsgSpan(m any) span.Context {
	switch msg := m.(type) {
	case *MsgControl:
		return msg.Span
	case *MsgConfirm:
		return msg.Span
	case *MsgCommit:
		return msg.Span
	}
	return span.Context{}
}

// Finish closes the tracker's long-lived spans at driver shutdown (or
// simulation end): any dangling handshake state and the per-peer
// streaming span.
func (t *SpanTracker) Finish(now float64) {
	if t == nil {
		return
	}
	t.closeWave(now)
	t.closeHandshake(now)
	if t.streaming {
		id := t.col.NextID()
		t.col.Add(span.Span{
			Trace: t.trace, ID: id,
			Name: "stream", Peer: t.peer, Start: t.streamStart, End: now,
		})
		t.streaming = false
	}
}
