package engine

import "p2pmss/internal/seq"

// Per-peer free lists. A coordination round used to allocate every
// event box, effect node, message and effect slice afresh — ~21k
// allocations for a 100-peer TCoP round. Events, effects and messages
// are pointer types precisely so the nodes can be recycled: a driver
// that calls Peer.Release after applying a batch, and ReleaseMsg once a
// protocol message has been fully consumed, runs a steady-state round
// with (amortized) zero engine allocations.
//
// Both calls are OPTIONAL. A driver that never releases anything —
// or that drops a batch on a crash path — simply leaves the nodes to
// the garbage collector; nothing leaks and nothing corrupts. The only
// contract is on the callers that DO release:
//
//   - Release(effs) must be called on the peer whose Handle returned
//     effs, at most once per batch, and only after the driver is done
//     reading every node in it (including any message stamping).
//   - Release does NOT recycle the messages hanging off *Send effects:
//     a message may still be in flight (the simulator delivers it with
//     latency; the live layer may still be encoding it). Whoever
//     consumes the message last calls ReleaseMsg.
//   - ReleaseMsg returns a message node to the pool of the peer that
//     created it (messages carry an unexported back-pointer). Messages
//     constructed by hand or decoded from the wire carry no pool and
//     ReleaseMsg is a no-op for them.
//
// Pools are per-peer and the engine is single-threaded per peer, so no
// locking is needed; in the simulator ReleaseMsg returns a node to the
// *sender's* pool from the receiver's dispatch, which is safe because
// the whole simulation runs on one goroutine. The live runtime never
// shares message nodes across peers (they cross as encoded bytes).
type pool struct {
	effs [][]Effect

	sends     []*Send
	timers    []*SetTimer
	activates []*Activate
	merges    []*Merge
	handoffs  []*Handoff
	absorbs   []*Absorb
	serves    []*ServeRepair

	ctls     []*MsgControl
	confirms []*MsgConfirm
	commits  []*MsgCommit
}

// slice returns an empty effect slice with recycled capacity.
func (pl *pool) slice() []Effect {
	if n := len(pl.effs); n > 0 {
		s := pl.effs[n-1]
		pl.effs = pl.effs[:n-1]
		return s
	}
	return make([]Effect, 0, 8)
}

func (pl *pool) send(to PeerID, msg any) *Send {
	if n := len(pl.sends); n > 0 {
		e := pl.sends[n-1]
		pl.sends = pl.sends[:n-1]
		e.To, e.Msg = to, msg
		return e
	}
	return &Send{To: to, Msg: msg}
}

func (pl *pool) setTimer(id TimerID, delay float64) *SetTimer {
	if n := len(pl.timers); n > 0 {
		e := pl.timers[n-1]
		pl.timers = pl.timers[:n-1]
		e.ID, e.Delay = id, delay
		return e
	}
	return &SetTimer{ID: id, Delay: delay}
}

func (pl *pool) activate(s seq.Sequence, rate float64, round int) *Activate {
	if n := len(pl.activates); n > 0 {
		e := pl.activates[n-1]
		pl.activates = pl.activates[:n-1]
		e.Seq, e.Rate, e.Round = s, rate, round
		return e
	}
	return &Activate{Seq: s, Rate: rate, Round: round}
}

func (pl *pool) merge(s seq.Sequence, rate float64, round int) *Merge {
	if n := len(pl.merges); n > 0 {
		e := pl.merges[n-1]
		pl.merges = pl.merges[:n-1]
		e.Seq, e.Rate, e.Round = s, rate, round
		return e
	}
	return &Merge{Seq: s, Rate: rate, Round: round}
}

func (pl *pool) handoff(keep seq.Sequence, given []seq.Sequence, oldRate, newRate float64, mark int) *Handoff {
	if n := len(pl.handoffs); n > 0 {
		e := pl.handoffs[n-1]
		pl.handoffs = pl.handoffs[:n-1]
		e.Keep, e.Given, e.OldRate, e.NewRate, e.Mark = keep, given, oldRate, newRate, mark
		return e
	}
	return &Handoff{Keep: keep, Given: given, OldRate: oldRate, NewRate: newRate, Mark: mark}
}

func (pl *pool) absorbEff(s seq.Sequence, rateDelta float64) *Absorb {
	if n := len(pl.absorbs); n > 0 {
		e := pl.absorbs[n-1]
		pl.absorbs = pl.absorbs[:n-1]
		e.Seq, e.RateDelta = s, rateDelta
		return e
	}
	return &Absorb{Seq: s, RateDelta: rateDelta}
}

func (pl *pool) serveRepair(indices []int64) *ServeRepair {
	if n := len(pl.serves); n > 0 {
		e := pl.serves[n-1]
		pl.serves = pl.serves[:n-1]
		e.Indices = indices
		return e
	}
	return &ServeRepair{Indices: indices}
}

// msgControl returns a zeroed control message with recycled View
// capacity, owned by this pool.
func (pl *pool) msgControl() *MsgControl {
	if n := len(pl.ctls); n > 0 {
		m := pl.ctls[n-1]
		pl.ctls = pl.ctls[:n-1]
		view := m.View[:0]
		*m = MsgControl{View: view, pl: pl}
		return m
	}
	return &MsgControl{pl: pl}
}

func (pl *pool) msgConfirm() *MsgConfirm {
	if n := len(pl.confirms); n > 0 {
		m := pl.confirms[n-1]
		pl.confirms = pl.confirms[:n-1]
		*m = MsgConfirm{pl: pl}
		return m
	}
	return &MsgConfirm{pl: pl}
}

func (pl *pool) msgCommit() *MsgCommit {
	if n := len(pl.commits); n > 0 {
		m := pl.commits[n-1]
		pl.commits = pl.commits[:n-1]
		*m = MsgCommit{pl: pl}
		return m
	}
	return &MsgCommit{pl: pl}
}

// Release returns a Handle batch — the nodes and the slice — to the
// peer's free lists. Call it on the peer whose Handle produced effs,
// after every node has been fully consumed. Message nodes hanging off
// *Send effects are NOT recycled here (they may still be in flight);
// see ReleaseMsg. Release(nil) is a no-op.
func (p *Peer) Release(effs []Effect) {
	if effs == nil {
		return
	}
	pl := &p.pl
	for i, e := range effs {
		switch v := e.(type) {
		case *Send:
			v.Msg = nil
			pl.sends = append(pl.sends, v)
		case *SetTimer:
			pl.timers = append(pl.timers, v)
		case *Activate:
			v.Seq = nil
			pl.activates = append(pl.activates, v)
		case *Merge:
			v.Seq = nil
			pl.merges = append(pl.merges, v)
		case *Handoff:
			v.Keep, v.Given = nil, nil
			pl.handoffs = append(pl.handoffs, v)
		case *Absorb:
			v.Seq = nil
			pl.absorbs = append(pl.absorbs, v)
		case *ServeRepair:
			v.Indices = nil
			pl.serves = append(pl.serves, v)
		}
		effs[i] = nil
	}
	pl.effs = append(pl.effs, effs[:0])
}

// ReleaseMsg returns a protocol message node to the pool of the peer
// that created it. Call it once, after the message's final consumer —
// the receiving Handle (plus observers) in the simulator, the encoder
// in the live layer — is done with it. Messages without a pool
// (hand-constructed, or decoded off the wire) are left to the GC.
func ReleaseMsg(m any) {
	switch v := m.(type) {
	case *MsgControl:
		if v.pl != nil {
			view := v.View[:0]
			pl := v.pl
			*v = MsgControl{View: view, pl: pl}
			pl.ctls = append(pl.ctls, v)
		}
	case *MsgConfirm:
		if v.pl != nil {
			pl := v.pl
			*v = MsgConfirm{pl: pl}
			pl.confirms = append(pl.confirms, v)
		}
	case *MsgCommit:
		if v.pl != nil {
			pl := v.pl
			*v = MsgCommit{pl: pl}
			pl.commits = append(pl.commits, v)
		}
	}
}
