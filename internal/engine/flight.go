package engine

import "p2pmss/internal/flight"

// FlightObserver records one peer's event/effect stream into a flight
// ring. Like the SpanTracker it is driver-side instrumentation at the
// same interception point — the driver calls Observe between
// Peer.Handle and applying the effects — and the engine core never
// knows it exists.
//
// A nil *FlightObserver is the disabled recorder: Observe returns
// immediately with zero allocations (benchmarked in
// bench_flight_test.go, CI-gated like the span path).
// NewFlightObserver returns nil when the recorder is nil, so drivers
// keep the call sites unconditional.
type FlightObserver struct {
	rec *flight.Recorder
}

// NewFlightObserver returns an observer recording into rec, or nil —
// the disabled observer — when rec is nil.
func NewFlightObserver(rec *flight.Recorder) *FlightObserver {
	if rec == nil {
		return nil
	}
	return &FlightObserver{rec: rec}
}

// Observe records the handled event and every returned effect, in
// order, stamped with the driver's current time. The recorded
// identities (type, counterpart, round, magnitude) are
// driver-independent, so a simulated and a live run of the same seed
// produce diffable tracks (see flight.FirstDivergence).
func (o *FlightObserver) Observe(now float64, ev Event, effs []Effect) {
	if o == nil {
		return
	}
	e := flight.Event{T: now, Dir: "ev"}
	switch v := ev.(type) {
	case *Request:
		e.Type = "request"
		e.Other = int(LeafID)
		e.Round = v.Round
		e.N = len(v.Assigned)
	case *Control:
		e.Type = "control"
		e.Other = int(v.Msg.Parent)
		e.Round = v.Msg.Round
		e.N = len(v.Msg.AssignedSeq)
	case *Confirm:
		if v.Msg.Accept {
			e.Type = "confirm_ok"
		} else {
			e.Type = "confirm_no"
		}
		e.Other = int(v.Msg.Child)
		e.Round = v.Msg.Round
	case *Commit:
		e.Type = "commit"
		e.Other = int(v.Msg.Parent)
		e.Round = v.Msg.Round
		e.N = len(v.Msg.AssignedSeq)
	case *TimerFired:
		e.Type = timerType("timer_", v.Timer.Kind)
		e.Other = int(v.Timer.Peer)
		e.N = v.Timer.Gen
	case *SendFailed:
		e.Type = "send_failed" + msgSuffix(v.Msg)
		e.Other = int(v.To)
	case *Join:
		e.Type = "join"
		e.Other = int(v.Joiner)
	case *Repair:
		e.Type = "repair"
		e.Other = int(LeafID)
		e.N = len(v.Indices)
	default:
		e.Type = "unknown"
	}
	o.rec.Record(e)

	for _, eff := range effs {
		f := flight.Event{T: now, Dir: "eff"}
		switch v := eff.(type) {
		case *Send:
			f.Other = int(v.To)
			switch m := v.Msg.(type) {
			case *MsgControl:
				f.Type = "send_control"
				f.Round = m.Round
				f.N = len(m.AssignedSeq)
			case *MsgConfirm:
				if m.Accept {
					f.Type = "send_confirm_ok"
				} else {
					f.Type = "send_confirm_no"
				}
				f.Round = m.Round
			case *MsgCommit:
				f.Type = "send_commit"
				f.Round = m.Round
				f.N = len(m.AssignedSeq)
			default:
				f.Type = "send"
			}
		case *SetTimer:
			f.Type = timerType("set_timer_", v.ID.Kind)
			f.Other = int(v.ID.Peer)
			f.N = v.ID.Gen
		case *Activate:
			f.Type = "activate"
			f.Round = v.Round
			f.N = len(v.Seq)
		case *Merge:
			f.Type = "merge"
			f.Round = v.Round
			f.N = len(v.Seq)
		case *Handoff:
			f.Type = "handoff"
			f.Other = v.Mark
			f.N = len(v.Given)
		case *Absorb:
			f.Type = "absorb"
			f.N = len(v.Seq)
		case *ServeRepair:
			f.Type = "serve_repair"
			f.Other = int(LeafID)
			f.N = len(v.Indices)
		default:
			f.Type = "unknown"
		}
		o.rec.Record(f)
	}
}

// timerType names a timer kind under the given prefix.
func timerType(prefix string, k TimerKind) string {
	switch k {
	case TimerConfirm:
		return prefix + "confirm"
	case TimerRelease:
		return prefix + "release"
	}
	return prefix + "other"
}

// msgSuffix names the message kind a SendFailed carried.
func msgSuffix(m any) string {
	switch m.(type) {
	case *MsgControl:
		return "_control"
	case *MsgConfirm:
		return "_confirm"
	case *MsgCommit:
		return "_commit"
	}
	return ""
}
