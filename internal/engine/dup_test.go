package engine_test

import (
	"math/rand"
	"testing"

	"p2pmss/internal/engine"
	"p2pmss/internal/seq"
)

// Regression tests for duplicate message delivery. Datagram transports
// deliver a packet zero, one, or several times; every engine handler
// must be idempotent per packet, not per handling.

func newTestPeer(t *testing.T, cfg engine.Config, id engine.PeerID) *engine.Peer {
	t.Helper()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	return engine.NewPeer(cfg, id, rand.New(rand.NewSource(engine.PeerSeed(1, id))))
}

func confirmsOf(effs []engine.Effect) []engine.MsgConfirm {
	var out []engine.MsgConfirm
	for _, e := range effs {
		if s, ok := e.(*engine.Send); ok {
			if m, ok := s.Msg.(*engine.MsgConfirm); ok {
				out = append(out, *m)
			}
		}
	}
	return out
}

func countTimers(effs []engine.Effect, kind engine.TimerKind) int {
	n := 0
	for _, e := range effs {
		if st, ok := e.(*engine.SetTimer); ok && st.ID.Kind == kind {
			n++
		}
	}
	return n
}

// TestTCoPDuplicateControlReconfirms: a duplicated c1 from the peer's
// own adopted parent must be re-acknowledged with Accept, not refused.
// Before the fix the duplicate drew Accept:false — and on a reordering
// network that refusal could overtake the original acceptance, making
// the parent replace its own child. The re-ack must not re-arm the
// commit-release deadline.
func TestTCoPDuplicateControlReconfirms(t *testing.T) {
	cfg := baseConfig(8, 2, false)
	p := newTestPeer(t, cfg, 1)
	c1 := &engine.Control{Msg: &engine.MsgControl{Parent: 0, Round: 1, Rate: 4, Children: 2}}

	first := confirmsOf(p.Handle(c1, engine.Snapshot{}))
	if len(first) != 1 || !first[0].Accept {
		t.Fatalf("original c1 answered %+v, want one acceptance", first)
	}

	effs := p.Handle(c1, engine.Snapshot{})
	dup := confirmsOf(effs)
	if len(dup) != 1 || !dup[0].Accept {
		t.Fatalf("duplicated c1 from adopted parent answered %+v, want re-acceptance", dup)
	}
	if n := countTimers(effs, engine.TimerRelease); n != 0 {
		t.Fatalf("duplicated c1 re-armed %d release timer(s)", n)
	}

	// First-parent-wins is untouched: a c1 from a different parent is
	// still refused.
	other := confirmsOf(p.Handle(&engine.Control{Msg: &engine.MsgControl{Parent: 3, Round: 1, Rate: 4, Children: 2}}, engine.Snapshot{}))
	if len(other) != 1 || other[0].Accept {
		t.Fatalf("rival parent's c1 answered %+v, want refusal", other)
	}
}

// TestDCoPDuplicateControlIgnored: re-delivering the same DCoP c1 must
// not merge the assignment (and its rate) a second time, and must not
// burn another flooding round out of the §3.3 lifetime child budget.
func TestDCoPDuplicateControlIgnored(t *testing.T) {
	cfg := baseConfig(8, 2, true)
	p := newTestPeer(t, cfg, 1)
	m := &engine.MsgControl{
		Parent: 0, Round: 1, ChildIdx: 1, Rate: 4, ChildRate: 2,
		Children: 2, AssignedSeq: seq.Range(1, 6),
	}

	first := p.Handle(&engine.Control{Msg: m}, engine.Snapshot{})
	if len(first) == 0 {
		t.Fatal("original c1 produced no effects")
	}
	taken := p.ChildrenTaken()

	snap := engine.Snapshot{Stream: m.AssignedSeq, Rate: m.ChildRate}
	if dup := p.Handle(&engine.Control{Msg: m}, snap); len(dup) != 0 {
		t.Fatalf("duplicated c1 produced effects: %+v", dup)
	}
	if p.ChildrenTaken() != taken {
		t.Fatalf("duplicated c1 took %d extra children", p.ChildrenTaken()-taken)
	}

	// A genuinely new assignment from another parent still merges.
	m2 := *m
	m2.Parent = 3
	m2.Round = 2
	merged := false
	for _, e := range p.Handle(&engine.Control{Msg: &m2}, snap) {
		if _, ok := e.(*engine.Merge); ok {
			merged = true
		}
	}
	if !merged {
		t.Fatal("fresh c1 from a second parent did not merge")
	}
}

// TestDCoPDuplicateCommitIgnored: a re-delivered join grant must merge
// once, while a later legitimate grant (different offset) still lands.
func TestDCoPDuplicateCommitIgnored(t *testing.T) {
	cfg := baseConfig(8, 2, true)
	p := newTestPeer(t, cfg, 1)
	// Activate the peer first so commits take the merge path.
	act := &engine.MsgControl{Parent: 0, Round: 1, ChildIdx: 1, Rate: 4, ChildRate: 2, Children: 2, AssignedSeq: seq.Range(1, 6)}
	p.Handle(&engine.Control{Msg: act}, engine.Snapshot{})
	snap := engine.Snapshot{Stream: act.AssignedSeq, Rate: act.ChildRate}

	grant := &engine.MsgCommit{Parent: 2, Streams: 2, SeqOffset: 4, Rate: 1, ChildIdx: 1, AssignedSeq: seq.Range(7, 10), Round: 3}
	merges := func(effs []engine.Effect) int {
		n := 0
		for _, e := range effs {
			if _, ok := e.(*engine.Merge); ok {
				n++
			}
		}
		return n
	}
	if n := merges(p.Handle(&engine.Commit{Msg: grant}, snap)); n != 1 {
		t.Fatalf("original grant merged %d times, want 1", n)
	}
	if effs := p.Handle(&engine.Commit{Msg: grant}, snap); len(effs) != 0 {
		t.Fatalf("duplicated grant produced effects: %+v", effs)
	}
	later := *grant
	later.SeqOffset = 9
	later.AssignedSeq = seq.Range(11, 14)
	if n := merges(p.Handle(&engine.Commit{Msg: &later}, snap)); n != 1 {
		t.Fatalf("later grant at a new offset merged %d times, want 1", n)
	}
}
