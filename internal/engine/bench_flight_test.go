package engine_test

import (
	"testing"

	"p2pmss/internal/engine"
	"p2pmss/internal/flight"
)

// The BenchmarkFlightDisabled* family pins the disabled flight-recorder
// contract: with no recorder the observer is nil and the per-dispatch
// Observe call costs zero allocations, exactly like the disabled span
// tracker. CI runs these through `benchjson -assert-zero-allocs
// BenchmarkFlightDisabled` and fails the build on any alloc/op.

// BenchmarkFlightDisabledObserve measures the per-dispatch overhead the
// sim and live drivers add when flight recording is off: one Observe
// call on the nil observer over a realistic control+timer effect batch.
func BenchmarkFlightDisabledObserve(b *testing.B) {
	o := engine.NewFlightObserver(nil)
	if o != nil {
		b.Fatal("observer with nil recorder must be nil")
	}
	effs := []engine.Effect{
		&engine.Send{To: 1, Msg: &engine.MsgControl{Children: 3, ChildIdx: 1}},
		&engine.Send{To: 2, Msg: &engine.MsgControl{Children: 3, ChildIdx: 2}},
		&engine.SetTimer{ID: engine.TimerID{Kind: engine.TimerConfirm}, Delay: 1},
	}
	// Box the event once, as the drivers do (events arrive as interface
	// values); the loop must measure Observe, not interface conversion.
	var ev engine.Event = &engine.TimerFired{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Observe(0, ev, effs)
	}
}

// BenchmarkFlightDisabledRecorder measures the nil recorder itself —
// the allocation-free no-op a nil flight.Set hands out.
func BenchmarkFlightDisabledRecorder(b *testing.B) {
	var s *flight.Set
	r := s.Recorder("", 0)
	if r != nil {
		b.Fatal("nil set must hand out nil recorders")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(flight.Event{T: float64(i)})
	}
}
