package engine_test

import (
	"testing"

	"p2pmss/internal/seq"
)

// The benchmarks run a full coordination round over a 100-peer overlay
// (H=10, 200-packet content) through the in-memory harness — the number
// that matters for the simulator, which runs thousands of such rounds
// per sweep. CI records the results in BENCH_engine.json.

func benchEngine(b *testing.B, dcop bool) {
	content := seq.Range(1, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := newHarness(baseConfig(100, 10, dcop), int64(i)+1)
		h.start(content, 25, int64(i)+1)
		h.run()
	}
}

func BenchmarkEngineTCoP(b *testing.B) { benchEngine(b, false) }
func BenchmarkEngineDCoP(b *testing.B) { benchEngine(b, true) }
