package engine_test

import "testing"

// The benchmarks run one full coordination round over a 100-peer
// overlay (H=10) through the in-memory harness in control-plane-only
// mode (rates and topology, no packet divisions) — the configuration
// the simulator's sweep ceilings run thousands of times per point. The
// harness and peers are built once and Reset per iteration, so the
// steady-state allocs/op is the engine's own footprint; CI gates it at
// ≤100 via `benchjson -assert-max-allocs 100` over BENCH_engine.json.

func benchEngine(b *testing.B, dcop bool) {
	h := newHarness(baseConfig(100, 10, dcop), 1)
	h.start(nil, 25, 1)
	h.run() // warm-up: populate free lists, scratch buffers, map buckets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i) + 1
		h.reset(seed)
		h.start(nil, 25, seed)
		h.run()
	}
}

func BenchmarkEngineTCoP(b *testing.B) { benchEngine(b, false) }
func BenchmarkEngineDCoP(b *testing.B) { benchEngine(b, true) }
