package gossip

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2pmss/internal/transport"
)

// This file is the wall-clock driver: periodic push rounds over real
// send callbacks (or a transport.Endpoint), with a dynamic candidate
// view instead of the DES driver's fixed 0..N-1 population. It carries
// state dissemination for long-lived swarms — each round the node
// pushes its current payload to Fanout targets — rather than the DES
// driver's one-shot rumor.

// LiveConfig parameterizes a wall-clock gossip loop.
type LiveConfig struct {
	// Self is this node's address; it is never selected as a target.
	Self string
	// Peers returns the current candidate targets (a dynamic membership
	// view; including Self is harmless). Called once per round.
	Peers func() []string
	// Payload returns the state to push this round; nil skips the round
	// (nothing to disseminate yet).
	Payload func() []byte
	// Send delivers one push. It runs on the round goroutine; slow or
	// blocking sends stretch the round.
	Send func(to string, payload []byte)
	// Fanout is how many targets each round pushes to (default 3).
	Fanout int
	// Interval is the round period (default 500 ms).
	Interval time.Duration
	// Directional applies the [7]-style preference to the live loop:
	// targets already pushed to are excluded until the candidate view is
	// exhausted, then the exclusion set resets — a stateful sweep instead
	// of independent random rounds.
	Directional bool
	// Seed makes target selection deterministic; 0 uses the clock.
	// Populations derive per-node seeds (e.g. by hashing Self into a
	// shared base seed) so every node walks its own reproducible stream.
	Seed int64
}

// Live is a running wall-clock gossip loop.
type Live struct {
	cfg LiveConfig
	rng *rand.Rand

	pushed map[string]bool // targets already pushed to (directional)

	poke    chan struct{}
	stopCh  chan struct{}
	stopped sync.Once
	done    chan struct{}
}

// StartLive begins the periodic push loop.
func StartLive(cfg LiveConfig) (*Live, error) {
	if cfg.Self == "" || cfg.Peers == nil || cfg.Payload == nil || cfg.Send == nil {
		return nil, fmt.Errorf("gossip: live loop needs Self, Peers, Payload and Send")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	l := &Live{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		pushed: make(map[string]bool),
		poke:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go l.loop()
	return l, nil
}

// SendOverEndpoint adapts a transport endpoint into a LiveConfig.Send:
// pushes travel as messages of the given type with no session scope.
// Delivery failures are dropped — gossip's redundancy is the retry.
func SendOverEndpoint(ep transport.Endpoint, msgType string) func(to string, payload []byte) {
	return func(to string, payload []byte) {
		ep.Send(to, transport.Msg{Type: msgType, From: ep.Name(), Payload: payload}) //nolint:errcheck // unreachable targets age out of the view
	}
}

// Poke triggers an immediate extra round (e.g. after a local state
// change worth disseminating before the next tick).
func (l *Live) Poke() {
	select {
	case l.poke <- struct{}{}:
	default:
	}
}

// Close stops the loop and waits for the round goroutine to exit.
func (l *Live) Close() error {
	l.stopped.Do(func() { close(l.stopCh) })
	<-l.done
	return nil
}

func (l *Live) loop() {
	defer close(l.done)
	tick := time.NewTicker(l.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.stopCh:
			return
		case <-tick.C:
		case <-l.poke:
		}
		l.round()
	}
}

// round pushes the current payload to Fanout selected targets.
func (l *Live) round() {
	all := l.cfg.Peers()
	cands := make([]string, 0, len(all))
	for _, a := range all {
		if a == l.cfg.Self {
			continue
		}
		if l.cfg.Directional && l.pushed[a] {
			continue
		}
		cands = append(cands, a)
	}
	if l.cfg.Directional && len(cands) == 0 {
		// The sweep exhausted the view: reset and start a new pass.
		clear(l.pushed)
		for _, a := range all {
			if a != l.cfg.Self {
				cands = append(cands, a)
			}
		}
	}
	targets := pickFanout(l.rng, cands, l.cfg.Fanout)
	if len(targets) == 0 {
		return
	}
	payload := l.cfg.Payload()
	if payload == nil {
		return
	}
	for _, t := range targets {
		l.pushed[t] = true
		l.cfg.Send(t, payload)
	}
}
