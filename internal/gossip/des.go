package gossip

import (
	"p2pmss/internal/des"
	"p2pmss/internal/simnet"
)

// This file is the discrete-event driver: the round engine wired to the
// simulated network, preserving the original Run semantics (and, per
// seed, the exact results) of the pre-split package.

// Run disseminates one rumor from node 0 and reports coverage.
func Run(cfg Config) (Result, error) {
	eng := des.New(cfg.Seed)
	nw := simnet.New(eng)
	nw.SetDefaultLink(simnet.LinkParams{Latency: cfg.Latency, LossProb: cfg.LossProb})

	g, err := NewEngine(cfg, eng.Rand(), func(from, to int, p Push) {
		nw.Send(simnet.NodeID(from), simnet.NodeID(to), p)
	}, eng.Now)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < cfg.N; i++ {
		to := i
		nw.AttachFunc(simnet.NodeID(i), func(from simnet.NodeID, m simnet.Message) {
			g.Deliver(to, m.(Push))
		})
	}

	eng.At(0, func() { g.Start(0) })
	eng.Run()
	return g.Result(), nil
}

// CoverageCurve sweeps the fanout and returns the mean infected fraction
// per fanout over the given number of seeds — the [6]-style phase
// transition around fanout ≈ ln(n).
func CoverageCurve(n int, fanouts []int, seeds int, directional bool) (map[int]float64, error) {
	out := make(map[int]float64, len(fanouts))
	for _, f := range fanouts {
		var sum float64
		for s := 0; s < seeds; s++ {
			res, err := Run(Config{N: n, Fanout: f, Seed: int64(s + 1), Directional: directional})
			if err != nil {
				return nil, err
			}
			sum += float64(res.Infected) / float64(n)
		}
		out[f] = sum / float64(seeds)
	}
	return out, nil
}
