package gossip

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// queuedPush is one in-flight push in the synchronous test harness.
type queuedPush struct {
	to int
	p  Push
}

// runWithDuplicates drives the engine with a synchronous queue that
// delivers every push `copies` times — the harness for the duplicate-
// delivery hardening tests. It returns the engine after the queue
// drains.
func runWithDuplicates(t *testing.T, cfg Config, copies int) *Engine {
	t.Helper()
	var queue []queuedPush
	e, err := NewEngine(cfg, rand.New(rand.NewSource(cfg.Seed)), func(from, to int, p Push) {
		for c := 0; c < copies; c++ {
			queue = append(queue, queuedPush{to: to, p: p})
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Start(0)
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		e.Deliver(q.to, q.p)
	}
	return e
}

// With Rounds=0 (the paper's flooding style) a node forwards exactly
// once upon first infection, even when the network duplicates every
// push: re-deliveries must not trigger re-pushes.
func TestRoundsZeroForwardsOnceUnderDuplicateDelivery(t *testing.T) {
	cfg := Config{N: 40, Fanout: 4, Seed: 7}
	e := runWithDuplicates(t, cfg, 3)
	res := e.Result()
	if res.Infected < 2 {
		t.Fatalf("dissemination never left the origin: %+v", res)
	}
	for i := 0; i < cfg.N; i++ {
		switch {
		case e.Infected(i) && e.Forwards(i) != 1:
			t.Errorf("infected node %d forwarded %d times, want exactly 1", i, e.Forwards(i))
		case !e.Infected(i) && e.Forwards(i) != 0:
			t.Errorf("uninfected node %d forwarded %d times", i, e.Forwards(i))
		}
	}
	// Flooding with one forward per node caps the push count at
	// Infected * Fanout regardless of how many duplicates arrive.
	if max := int64(res.Infected) * int64(cfg.Fanout); res.Messages > max {
		t.Errorf("messages = %d exceeds one-forward bound %d", res.Messages, max)
	}
}

// Multi-round mode under duplication stays within the per-node budget:
// the first-infection push plus at most Rounds re-pushes, no matter how
// many duplicate deliveries arrive.
func TestRoundsBudgetUnderDuplicateDelivery(t *testing.T) {
	cfg := Config{N: 30, Fanout: 3, Rounds: 2, Seed: 11}
	e := runWithDuplicates(t, cfg, 2)
	for i := 0; i < cfg.N; i++ {
		if f := e.Forwards(i); f > cfg.Rounds+1 {
			t.Errorf("node %d forwarded %d times, budget is %d", i, f, cfg.Rounds+1)
		}
	}
}

// Directional fanout 1 degenerates into a perfect sequential traversal:
// the accumulated known-set travels with the single push, so every hop
// lands on a fresh node. Coverage is exactly N with exactly N-1 pushes,
// for every seed — a structural property, not a statistical one.
func TestDirectionalFanoutOneIsPerfectChain(t *testing.T) {
	const n = 60
	for seed := int64(1); seed <= 8; seed++ {
		res, err := Run(Config{N: n, Fanout: 1, Seed: seed, Directional: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Infected != n || res.Messages != n-1 {
			t.Errorf("seed %d: infected=%d messages=%d, want %d and %d",
				seed, res.Infected, res.Messages, n, n-1)
		}
	}
}

// Coverage-vs-fanout properties of Directional mode, averaged over
// seeds: from fanout 2 up coverage is monotone non-decreasing and
// saturates past the [6] phase transition; message cost stays within
// the one-forward-per-node bound; and granting re-push rounds lifts
// coverage at every branching fanout (re-pushes are what heal the
// branches whose known-sets diverged).
func TestDirectionalCoverageVsFanout(t *testing.T) {
	n := 100
	fanouts := []int{2, 4, 8, 16}
	curve, err := CoverageCurve(n, fanouts, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fanouts); i++ {
		lo, hi := curve[fanouts[i-1]], curve[fanouts[i]]
		// Means over 10 seeds: allow a small statistical wobble but no
		// real regression as the fanout doubles.
		if hi < lo-0.05 {
			t.Errorf("directional coverage dropped as fanout grew: f=%d %.3f -> f=%d %.3f",
				fanouts[i-1], lo, fanouts[i], hi)
		}
	}
	if curve[8] < 0.95 {
		t.Errorf("directional coverage %.3f at fanout 8 below saturation", curve[8])
	}
	if curve[2] >= curve[8] {
		t.Errorf("no coverage growth across fanouts: %.3f vs %.3f", curve[2], curve[8])
	}
	for _, f := range fanouts {
		var repush float64
		var msgs int64
		for seed := int64(1); seed <= 10; seed++ {
			r0, err := Run(Config{N: n, Fanout: f, Seed: seed, Directional: true})
			if err != nil {
				t.Fatal(err)
			}
			msgs += r0.Messages
			r2, err := Run(Config{N: n, Fanout: f, Seed: seed, Directional: true, Rounds: 2})
			if err != nil {
				t.Fatal(err)
			}
			repush += float64(r2.Infected)
		}
		if max := int64(10 * n * f); msgs > max {
			t.Errorf("fanout %d: %d pushes exceed one-forward bound %d", f, msgs, max)
		}
		if repush/float64(10*n) < curve[f]-0.02 {
			t.Errorf("fanout %d: re-push rounds reduced coverage: %.3f vs %.3f",
				f, repush/float64(10*n), curve[f])
		}
	}
}

// The live driver's directional sweep pushes to every peer exactly once
// before resetting, and the same seed selects the same targets.
func TestLiveDirectionalSweep(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e", "f", "g"}
	newLoop := func(record func(to string)) *Live {
		return &Live{
			cfg: LiveConfig{
				Self:        "a",
				Peers:       func() []string { return peers },
				Payload:     func() []byte { return []byte("x") },
				Send:        func(to string, _ []byte) { record(to) },
				Fanout:      2,
				Directional: true,
				Seed:        42,
			},
			rng:    rand.New(rand.NewSource(42)),
			pushed: make(map[string]bool),
		}
	}
	var got []string
	l := newLoop(func(to string) { got = append(got, to) })
	for r := 0; r < 3; r++ { // ceil(6/2) = 3 rounds cover all six others
		l.round()
	}
	if len(got) != 6 {
		t.Fatalf("3 rounds at fanout 2 sent %d pushes, want 6: %v", len(got), got)
	}
	seen := make(map[string]int)
	for _, to := range got {
		seen[to]++
		if to == "a" {
			t.Errorf("pushed to self")
		}
	}
	for _, p := range peers[1:] {
		if seen[p] != 1 {
			t.Errorf("directional sweep hit %q %d times, want exactly once", p, seen[p])
		}
	}
	// Exhausting the view resets the sweep instead of going silent.
	l.round()
	if len(got) != 8 {
		t.Errorf("post-reset round sent %d total pushes, want 8", len(got))
	}
	// Determinism: a fresh loop with the same seed replays the sweep.
	var replay []string
	l2 := newLoop(func(to string) { replay = append(replay, to) })
	for r := 0; r < 4; r++ {
		l2.round()
	}
	if len(replay) != len(got) {
		t.Fatalf("replay diverged in length: %d vs %d", len(replay), len(got))
	}
	for i := range got {
		if replay[i] != got[i] {
			t.Fatalf("same seed diverged at push %d: %v vs %v", i, got, replay)
		}
	}
}

// StartLive ticks rounds on the wall clock and Close stops them.
func TestLiveLoopTicksAndCloses(t *testing.T) {
	var mu sync.Mutex
	sends := 0
	l, err := StartLive(LiveConfig{
		Self:     "self",
		Peers:    func() []string { return []string{"self", "other"} },
		Payload:  func() []byte { return []byte("p") },
		Send:     func(string, []byte) { mu.Lock(); sends++; mu.Unlock() },
		Fanout:   1,
		Interval: 5 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := sends
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d sends before deadline", n)
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
	mu.Lock()
	after := sends
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	final := sends
	mu.Unlock()
	if final != after {
		t.Errorf("rounds kept firing after Close: %d -> %d", after, final)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Errorf("second Close: %v", err)
	}
}

func TestStartLiveValidation(t *testing.T) {
	if _, err := StartLive(LiveConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}
