// Package gossip implements the probabilistic dissemination substrate the
// paper's flooding protocols build on (references [6] Kermarrec/Massoulié/
// Ganesh, "Probabilistic Reliable Dissemination in Large-Scale Systems",
// and [7] Lin/Marzullo, "Directional Gossip"). The round logic — who an
// infected node pushes to, when it re-pushes, what it learns from a push —
// lives in the transport-agnostic Engine; drivers supply delivery and a
// clock. Two drivers ship with the package: Run executes a dissemination
// over the discrete-event simulator (fanout/coverage studies, why DCoP
// needs H ≳ log n), and Live runs periodic wall-clock rounds over real
// send callbacks (the decentralized directory in internal/disco gossips
// catalog announcements through it).
package gossip

import (
	"fmt"
	"math/rand"
)

// Config parameterizes a gossip dissemination.
type Config struct {
	// N is the number of nodes.
	N int
	// Fanout is how many targets an infected node pushes to.
	Fanout int
	// Rounds bounds how many rounds each node forwards for; 0 means a
	// node forwards only once upon first infection (the paper's
	// flooding style).
	Rounds int
	// Latency is the per-hop delay.
	Latency float64
	// LossProb drops each push independently.
	LossProb float64
	// Directional enables the [7]-style weighting: nodes prefer targets
	// they have not heard from (approximated by excluding known-infected
	// nodes from selection, like DCoP's view exclusion).
	Directional bool
	// Seed seeds the run.
	Seed int64
}

// Result reports a dissemination outcome.
type Result struct {
	// Infected is how many nodes received the rumor.
	Infected int
	// Rounds is the highest hop count at which a node was first
	// infected.
	Rounds int
	// Messages is the number of pushes sent.
	Messages int64
	// Time is the virtual time of the last first-infection.
	Time float64
}

// Push is one rumor push on the wire: the sender's hop count plus the
// infected nodes it knows about (consumed in directional mode).
type Push struct {
	Hop   int
	Known []int // infected nodes the sender knows (directional mode)
}

type node struct {
	id       int
	infected bool
	hop      int
	known    map[int]bool
	forwards int
}

// Engine is the transport-agnostic push-gossip round engine: it decides
// who an infected node pushes to and what each delivery teaches the
// receiver, while the driver owns delivery (network, loss, latency) and
// the clock. Engine is not safe for concurrent use; drivers serialize
// Deliver/Start calls (the DES is single-threaded, Live runs one round
// goroutine).
type Engine struct {
	cfg   Config
	rng   *rand.Rand
	nodes []*node
	send  func(from, to int, p Push)
	now   func() float64
	res   Result
}

// NewEngine builds an engine over cfg.N nodes. send delivers one push
// (required); now stamps first-infection times (nil keeps Time at 0).
// The rng drives target selection — drivers that need reproducible
// results pass a seeded source and serialize deliveries.
func NewEngine(cfg Config, rng *rand.Rand, send func(from, to int, p Push), now func() float64) (*Engine, error) {
	if cfg.N <= 0 || cfg.Fanout <= 0 {
		return nil, fmt.Errorf("gossip: N=%d and Fanout=%d must be positive", cfg.N, cfg.Fanout)
	}
	if send == nil {
		return nil, fmt.Errorf("gossip: engine needs a send function")
	}
	if now == nil {
		now = func() float64 { return 0 }
	}
	e := &Engine{cfg: cfg, rng: rng, send: send, now: now}
	e.nodes = make([]*node, cfg.N)
	for i := range e.nodes {
		e.nodes[i] = &node{id: i, known: make(map[int]bool)}
	}
	return e, nil
}

// Start infects the origin node at hop 0, triggering its first pushes.
func (e *Engine) Start(origin int) {
	e.infect(e.nodes[origin], 0, nil)
}

// Deliver hands one push to its destination node, as the driver's
// network delivers it.
func (e *Engine) Deliver(to int, p Push) {
	e.infect(e.nodes[to], p.Hop, p.Known)
}

// Result reports the dissemination outcome so far.
func (e *Engine) Result() Result { return e.res }

// Infected reports whether a node has received the rumor.
func (e *Engine) Infected(id int) bool { return e.nodes[id].infected }

// Forwards reports how many forwarding rounds a node has initiated.
func (e *Engine) Forwards(id int) int { return e.nodes[id].forwards }

func (e *Engine) forward(n *node) {
	targets := selectTargets(e.rng, e.cfg, n)
	if len(targets) == 0 {
		return
	}
	knownList := knownOf(n)
	for _, t := range targets {
		n.known[t] = true
		e.res.Messages++
		e.send(n.id, t, Push{Hop: n.hop + 1, Known: knownList})
	}
}

func (e *Engine) infect(n *node, hop int, known []int) {
	for _, k := range known {
		n.known[k] = true
	}
	if n.infected {
		// Re-pushes in multi-round mode.
		if e.cfg.Rounds > 0 && n.forwards < e.cfg.Rounds {
			n.forwards++
			e.forward(n)
		}
		return
	}
	n.infected = true
	n.hop = hop
	n.known[n.id] = true
	e.res.Infected++
	if hop > e.res.Rounds {
		e.res.Rounds = hop
	}
	e.res.Time = e.now()
	n.forwards++
	e.forward(n)
}

func knownOf(n *node) []int {
	out := make([]int, 0, len(n.known))
	for k := range n.known {
		out = append(out, k)
	}
	return out
}

// selectTargets picks Fanout random targets; in directional mode,
// known-infected nodes are excluded (like DCoP's Select over CP − VW).
func selectTargets(rng *rand.Rand, cfg Config, n *node) []int {
	var cands []int
	for i := 0; i < cfg.N; i++ {
		if i == n.id {
			continue
		}
		if cfg.Directional && n.known[i] {
			continue
		}
		cands = append(cands, i)
	}
	return pickFanout(rng, cands, cfg.Fanout)
}

// pickFanout shuffles the candidates and truncates to the fanout — the
// one place the engine consumes randomness, shared by both drivers so a
// seed means the same selection everywhere.
func pickFanout[T any](rng *rand.Rand, cands []T, fanout int) []T {
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > fanout {
		cands = cands[:fanout]
	}
	return cands
}
