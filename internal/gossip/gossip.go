// Package gossip implements the probabilistic dissemination substrate the
// paper's flooding protocols build on (references [6] Kermarrec/Massoulié/
// Ganesh, "Probabilistic Reliable Dissemination in Large-Scale Systems",
// and [7] Lin/Marzullo, "Directional Gossip"). It provides a generic
// push-gossip round engine over the discrete-event simulator, used both to
// study fanout/coverage trade-offs (why DCoP needs H ≳ log n) and as a
// standalone reusable component.
package gossip

import (
	"fmt"
	"math/rand"

	"p2pmss/internal/des"
	"p2pmss/internal/simnet"
)

// Config parameterizes a gossip dissemination.
type Config struct {
	// N is the number of nodes.
	N int
	// Fanout is how many targets an infected node pushes to.
	Fanout int
	// Rounds bounds how many rounds each node forwards for; 0 means a
	// node forwards only once upon first infection (the paper's
	// flooding style).
	Rounds int
	// Latency is the per-hop delay.
	Latency float64
	// LossProb drops each push independently.
	LossProb float64
	// Directional enables the [7]-style weighting: nodes prefer targets
	// they have not heard from (approximated by excluding known-infected
	// nodes from selection, like DCoP's view exclusion).
	Directional bool
	// Seed seeds the run.
	Seed int64
}

// Result reports a dissemination outcome.
type Result struct {
	// Infected is how many nodes received the rumor.
	Infected int
	// Rounds is the highest hop count at which a node was first
	// infected.
	Rounds int
	// Messages is the number of pushes sent.
	Messages int64
	// Time is the virtual time of the last first-infection.
	Time float64
}

type push struct {
	hop   int
	known []int // infected nodes the sender knows (directional mode)
}

type node struct {
	id       int
	infected bool
	hop      int
	known    map[int]bool
	forwards int
}

// Run disseminates one rumor from node 0 and reports coverage.
func Run(cfg Config) (Result, error) {
	if cfg.N <= 0 || cfg.Fanout <= 0 {
		return Result{}, fmt.Errorf("gossip: N=%d and Fanout=%d must be positive", cfg.N, cfg.Fanout)
	}
	eng := des.New(cfg.Seed)
	nw := simnet.New(eng)
	nw.SetDefaultLink(simnet.LinkParams{Latency: cfg.Latency, LossProb: cfg.LossProb})

	nodes := make([]*node, cfg.N)
	var res Result
	rng := eng.Rand()

	var infect func(n *node, hop int, known []int)
	forward := func(n *node) {
		targets := selectTargets(rng, cfg, n)
		if len(targets) == 0 {
			return
		}
		knownList := knownOf(n)
		for _, t := range targets {
			n.known[t] = true
			res.Messages++
			nw.Send(simnet.NodeID(n.id), simnet.NodeID(t), push{hop: n.hop + 1, known: knownList})
		}
	}
	infect = func(n *node, hop int, known []int) {
		for _, k := range known {
			n.known[k] = true
		}
		if n.infected {
			// Re-pushes in multi-round mode.
			if cfg.Rounds > 0 && n.forwards < cfg.Rounds {
				n.forwards++
				forward(n)
			}
			return
		}
		n.infected = true
		n.hop = hop
		n.known[n.id] = true
		res.Infected++
		if hop > res.Rounds {
			res.Rounds = hop
		}
		res.Time = eng.Now()
		n.forwards++
		forward(n)
	}

	for i := 0; i < cfg.N; i++ {
		n := &node{id: i, known: make(map[int]bool)}
		nodes[i] = n
		nw.AttachFunc(simnet.NodeID(i), func(from simnet.NodeID, m simnet.Message) {
			p := m.(push)
			infect(n, p.hop, p.known)
		})
	}

	eng.At(0, func() { infect(nodes[0], 0, nil) })
	eng.Run()
	return res, nil
}

func knownOf(n *node) []int {
	out := make([]int, 0, len(n.known))
	for k := range n.known {
		out = append(out, k)
	}
	return out
}

// selectTargets picks Fanout random targets; in directional mode,
// known-infected nodes are excluded (like DCoP's Select over CP − VW).
func selectTargets(rng *rand.Rand, cfg Config, n *node) []int {
	var cands []int
	for i := 0; i < cfg.N; i++ {
		if i == n.id {
			continue
		}
		if cfg.Directional && n.known[i] {
			continue
		}
		cands = append(cands, i)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > cfg.Fanout {
		cands = cands[:cfg.Fanout]
	}
	return cands
}

// CoverageCurve sweeps the fanout and returns the mean infected fraction
// per fanout over the given number of seeds — the [6]-style phase
// transition around fanout ≈ ln(n).
func CoverageCurve(n int, fanouts []int, seeds int, directional bool) (map[int]float64, error) {
	out := make(map[int]float64, len(fanouts))
	for _, f := range fanouts {
		var sum float64
		for s := 0; s < seeds; s++ {
			res, err := Run(Config{N: n, Fanout: f, Seed: int64(s + 1), Directional: directional})
			if err != nil {
				return nil, err
			}
			sum += float64(res.Infected) / float64(n)
		}
		out[f] = sum / float64(seeds)
	}
	return out, nil
}
