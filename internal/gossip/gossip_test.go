package gossip

import (
	"math"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, Fanout: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(Config{N: 5, Fanout: 0}); err == nil {
		t.Error("Fanout=0 accepted")
	}
}

func TestFullCoverageWithLargeFanout(t *testing.T) {
	res, err := Run(Config{N: 50, Fanout: 49, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 50 {
		t.Errorf("infected = %d", res.Infected)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	// Flooding: every infected node forwards once → n(n-1) pushes.
	if res.Messages != 50*49 {
		t.Errorf("messages = %d, want %d", res.Messages, 50*49)
	}
}

func TestSingleNode(t *testing.T) {
	res, err := Run(Config{N: 1, Fanout: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected != 1 || res.Messages != 0 {
		t.Errorf("res = %+v", res)
	}
}

// The [6] phase transition: fanout ≥ ln(n)+c yields near-complete
// coverage; fanout 1 does not.
func TestCoveragePhaseTransition(t *testing.T) {
	n := 100
	curve, err := CoverageCurve(n, []int{1, int(math.Log(float64(n))) + 3}, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	low := curve[1]
	high := curve[int(math.Log(float64(n)))+3]
	if low > 0.9 {
		t.Errorf("fanout 1 coverage %.2f suspiciously high", low)
	}
	if high < 0.95 {
		t.Errorf("fanout ln(n)+3 coverage %.2f too low", high)
	}
	if high <= low {
		t.Errorf("no phase transition: %.2f vs %.2f", low, high)
	}
}

// Directional gossip ([7]) wastes fewer messages for the same coverage:
// excluding known-infected targets cannot reduce coverage.
func TestDirectionalNoWorseCoverage(t *testing.T) {
	var plain, directional float64
	var plainMsgs, dirMsgs int64
	for seed := int64(1); seed <= 10; seed++ {
		p, err := Run(Config{N: 80, Fanout: 6, Seed: seed, Rounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Run(Config{N: 80, Fanout: 6, Seed: seed, Rounds: 2, Directional: true})
		if err != nil {
			t.Fatal(err)
		}
		plain += float64(p.Infected)
		directional += float64(d.Infected)
		plainMsgs += p.Messages
		dirMsgs += d.Messages
	}
	if directional < plain*0.95 {
		t.Errorf("directional coverage %v much below plain %v", directional, plain)
	}
}

func TestLossReducesCoverage(t *testing.T) {
	noLoss, err := Run(Config{N: 100, Fanout: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(Config{N: 100, Fanout: 3, Seed: 5, LossProb: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Infected >= noLoss.Infected {
		t.Errorf("60%% loss did not reduce coverage: %d vs %d", lossy.Infected, noLoss.Infected)
	}
}

func TestRoundsGrowWithSmallerFanout(t *testing.T) {
	var small, large float64
	for seed := int64(1); seed <= 5; seed++ {
		s, err := Run(Config{N: 100, Fanout: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		l, err := Run(Config{N: 100, Fanout: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		small += float64(s.Rounds)
		large += float64(l.Rounds)
	}
	if small <= large {
		t.Errorf("fanout 2 rounds %v not above fanout 30 rounds %v", small, large)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(Config{N: 60, Fanout: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 60, Fanout: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestLatencyAccumulates(t *testing.T) {
	res, err := Run(Config{N: 40, Fanout: 3, Seed: 2, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < float64(res.Rounds)-0.001 {
		t.Errorf("time %v below rounds %d with unit latency", res.Time, res.Rounds)
	}
}

func BenchmarkGossip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{N: 200, Fanout: 6, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
