package failure

import (
	"testing"

	"p2pmss/internal/des"
	"p2pmss/internal/simnet"
)

func TestGilbertElliottValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad probability did not panic")
		}
	}()
	NewGilbertElliott(1.5, 0, 0, 0, 1)
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	// pGB=0.1, pBG=0.5 → stationary bad fraction = 0.1/(0.1+0.5) ≈ 1/6.
	// With lossGood=0, lossBad=1, expected loss ≈ 16.7%.
	g := NewGilbertElliott(0.1, 0.5, 0, 1, 42)
	for i := 0; i < 200000; i++ {
		g.Step()
	}
	rate := g.LossRate()
	if rate < 0.12 || rate > 0.22 {
		t.Errorf("loss rate %.3f, want ≈0.167", rate)
	}
	if g.BadVisits == 0 {
		t.Error("never entered burst state")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Losses should cluster: with sticky states, consecutive-loss runs
	// are much longer than under i.i.d. loss of the same rate.
	g := NewGilbertElliott(0.01, 0.2, 0, 1, 7)
	var runs, runLen, maxRun int
	inRun := false
	for i := 0; i < 100000; i++ {
		lost := g.Step()
		if lost {
			if !inRun {
				runs++
				inRun = true
				runLen = 0
			}
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else {
			inRun = false
		}
	}
	if runs == 0 {
		t.Fatal("no loss runs")
	}
	if maxRun < 5 {
		t.Errorf("max burst %d too short for a bursty channel", maxRun)
	}
}

func TestGilbertElliottNeverLoses(t *testing.T) {
	g := NewGilbertElliott(0.5, 0.5, 0, 0, 1)
	for i := 0; i < 1000; i++ {
		if g.Step() {
			t.Fatal("lossless channel dropped")
		}
	}
	if g.LossRate() != 0 {
		t.Error("loss rate nonzero")
	}
}

func TestChannelSetIndependence(t *testing.T) {
	cs := NewChannelSet(0.05, 0.3, 0, 1, 9)
	for i := 0; i < 5000; i++ {
		cs.Hook(0, 1)
		cs.Hook(2, 3)
	}
	a := cs.Channel(0, 1)
	b := cs.Channel(2, 3)
	if a == b {
		t.Fatal("channels shared")
	}
	if a.Messages < 5000 || b.Messages < 5000 {
		t.Errorf("messages %d/%d", a.Messages, b.Messages)
	}
	// Both see roughly the stationary rate but with different streams.
	if a.Dropped == b.Dropped && a.BadVisits == b.BadVisits {
		t.Error("suspiciously identical channels")
	}
}

func TestChannelSetAsSimnetHook(t *testing.T) {
	eng := des.New(1)
	nw := simnet.New(eng)
	cs := NewChannelSet(0.2, 0.2, 0, 1, 3)
	nw.BurstLoss = cs.Hook
	got := 0
	nw.AttachFunc(1, func(simnet.NodeID, simnet.Message) { got++ })
	const n = 2000
	for i := 0; i < n; i++ {
		nw.Send(0, 1, i)
	}
	eng.Run()
	if got == 0 || got == n {
		t.Errorf("delivered %d of %d — hook not effective", got, n)
	}
	st := nw.Stats()
	if st.Dropped != int64(n-got) {
		t.Errorf("dropped stat %d, want %d", st.Dropped, n-got)
	}
}

func TestCrashPlan(t *testing.T) {
	bad := CrashPlan{Peers: []simnet.NodeID{1}, Times: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched plan validated")
	}
	neg := CrashPlan{Peers: []simnet.NodeID{1}, Times: []float64{-1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative time validated")
	}

	eng := des.New(1)
	nw := simnet.New(eng)
	nw.AttachFunc(1, func(simnet.NodeID, simnet.Message) {})
	plan := CrashPlan{Peers: []simnet.NodeID{1}, Times: []float64{5}}
	if err := plan.Install(nw); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(4)
	if nw.Crashed(1) {
		t.Error("crashed early")
	}
	eng.RunUntil(6)
	if !nw.Crashed(1) {
		t.Error("did not crash on schedule")
	}
}

func TestDegradation(t *testing.T) {
	d := Degradation{At: 10, Factor: 0.25}
	if d.Multiplier(5) != 1 {
		t.Error("degraded early")
	}
	if d.Multiplier(10) != 0.25 {
		t.Error("not degraded at At")
	}
	zero := Degradation{At: 0, Factor: 0}
	if zero.Multiplier(5) != 1 {
		t.Error("zero factor should be ignored")
	}
}

func BenchmarkGilbertElliott(b *testing.B) {
	g := NewGilbertElliott(0.05, 0.3, 0.001, 0.5, 1)
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

func TestChurnScheduleValidateAndInstall(t *testing.T) {
	bad := ChurnSchedule{Events: []ChurnEvent{{At: -1, Peer: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative churn time validated")
	}

	eng := des.New(1)
	nw := simnet.New(eng)
	nw.AttachFunc(2, func(simnet.NodeID, simnet.Message) {})
	var seen []ChurnEvent
	s := ChurnSchedule{Events: []ChurnEvent{
		{At: 5, Peer: 2},
		{At: 9, Peer: 2, Join: true},
	}}
	if err := s.Install(nw, func(e ChurnEvent) { seen = append(seen, e) }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(6)
	if !nw.Crashed(2) {
		t.Error("peer did not crash on schedule")
	}
	eng.RunUntil(10)
	if nw.Crashed(2) {
		t.Error("peer did not rejoin on schedule")
	}
	if len(seen) != 2 || seen[0].Join || !seen[1].Join {
		t.Errorf("observe saw %+v", seen)
	}
}

func TestPeriodicChurn(t *testing.T) {
	s := PeriodicChurn(3, 2, 10, 4, 6)
	want := []ChurnEvent{
		{At: 10, Peer: 3},
		{At: 16, Peer: 3, Join: true},
		{At: 14, Peer: 4},
		{At: 20, Peer: 4, Join: true},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(s.Events), len(want))
	}
	for i, e := range s.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}

	stayDown := PeriodicChurn(0, 2, 1, 1, 0)
	if len(stayDown.Events) != 2 {
		t.Errorf("downAfter<=0 should emit crashes only, got %d events", len(stayDown.Events))
	}
}
